package odin

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// fleetSubsets gives each camera its own domain so the shared cluster set
// sees genuinely different concepts arriving interleaved.
var fleetSubsets = []Subset{NightData, DayData, SnowData}

// fleetFrames generates each stream's frame sequence up front, in stream
// order, so identically seeded servers produce identical frame sets
// regardless of how the streams are later driven.
func fleetFrames(srv *Server, streams, perStream int) [][]*Frame {
	out := make([][]*Frame, streams)
	for s := range out {
		out[s] = srv.GenerateFrames(fleetSubsets[s%len(fleetSubsets)], perStream)
	}
	return out
}

// TestDispatchedMatchesPerStream is the fleet determinism contract: with
// async training off, N streams routed through the dispatcher produce
// results bit-identical to per-stream Stream.Run sessions advancing the
// same frames in the same global order (round-robin by session join
// order), at every worker count. Run under -race in CI.
func TestDispatchedMatchesPerStream(t *testing.T) {
	const seed, streams, win, rounds = 17, 3, 8, 8
	const perStream = win * rounds

	// Reference: per-stream Run sessions on one shared server, driven in
	// lock-step — stream 0's window, stream 1's, stream 2's, next round —
	// which is exactly the merge order the dispatcher guarantees.
	ref, err := New(fastServerOptions(seed)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	frames := fleetFrames(ref, streams, perStream)
	ins := make([]chan *Frame, streams)
	outs := make([]<-chan StreamResult, streams)
	for s := 0; s < streams; s++ {
		st, err := ref.OpenStream(context.Background(), StreamOptions{
			Name: fmt.Sprintf("cam-%d", s), Workers: 2, MaxBatch: win,
		})
		if err != nil {
			t.Fatal(err)
		}
		ins[s] = make(chan *Frame)
		outs[s] = st.Run(context.Background(), ins[s])
	}
	want := make([][]string, streams)
	for r := 0; r < rounds; r++ {
		for s := 0; s < streams; s++ {
			for i := 0; i < win; i++ {
				ins[s] <- frames[s][r*win+i]
			}
			for i := 0; i < win; i++ {
				res, ok := <-outs[s]
				if !ok {
					t.Fatalf("stream %d ended early at round %d", s, r)
				}
				want[s] = append(want[s], res.Fingerprint())
			}
		}
	}
	for s := range ins {
		close(ins[s])
	}
	for s := range outs {
		for range outs[s] {
		}
	}
	wantStats := ref.Stats()
	if wantStats.DriftEvents == 0 {
		t.Fatal("fleet stream produced no drift events; the determinism test would be vacuous")
	}

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv, err := New(append(fastServerOptions(seed),
				WithDispatcher(true),
				WithMaxBatch(streams*win*rounds),
				WithMaxLinger(time.Minute),
				WithWorkers(workers),
			)...)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Bootstrap(context.Background(), nil); err != nil {
				t.Fatal(err)
			}
			frames := fleetFrames(srv, streams, perStream)

			// Start the Runs in stream order (join order = merge order),
			// THEN let the frames flow.
			dins := make([]chan *Frame, streams)
			douts := make([]<-chan StreamResult, streams)
			for s := 0; s < streams; s++ {
				st, err := srv.OpenStream(context.Background(), StreamOptions{
					Name: fmt.Sprintf("cam-%d", s), Workers: workers, MaxBatch: win,
				})
				if err != nil {
					t.Fatal(err)
				}
				dins[s] = make(chan *Frame, perStream)
				douts[s] = st.Run(context.Background(), dins[s])
			}
			for s := 0; s < streams; s++ {
				for _, f := range frames[s] {
					dins[s] <- f
				}
				close(dins[s])
			}
			var wg sync.WaitGroup
			for s := 0; s < streams; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					n := 0
					for res := range douts[s] {
						if res.Seq != n {
							t.Errorf("stream %d: out-of-order seq %d at %d", s, res.Seq, n)
							return
						}
						if key := res.Fingerprint(); key != want[s][n] {
							t.Errorf("stream %d frame %d diverged from per-stream run:\n got %s\nwant %s",
								s, n, key, want[s][n])
							return
						}
						n++
					}
					if n != perStream {
						t.Errorf("stream %d delivered %d/%d results", s, n, perStream)
					}
				}(s)
			}
			wg.Wait()
			if stats := srv.Stats(); !reflect.DeepEqual(stats, wantStats) {
				t.Fatalf("stats diverged: got %+v want %+v", stats, wantStats)
			}
		})
	}
}

// TestDispatchAsyncRecoveryConverges: with the full fleet mode on
// (dispatcher + async training), a drift event keeps serving frames with
// the previous-best model (flagged RecoveryPending), and the recovery
// converges — the trained model swaps in and later frames report the new
// generation.
func TestDispatchAsyncRecoveryConverges(t *testing.T) {
	srv, err := New(append(fastServerOptions(29),
		WithDispatcher(true),
		WithTrainAsync(true),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap on night only, so day is genuinely out of distribution.
	if err := srv.Bootstrap(context.Background(), srv.GenerateFrames(NightData, 80)); err != nil {
		t.Fatal(err)
	}
	st, err := srv.OpenStream(context.Background(), StreamOptions{Name: "cam-0", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *Frame)
	go func() {
		defer close(in)
		for _, f := range srv.GenerateFrames(DayData, 260) {
			in <- f
		}
	}()
	drifts, pending := 0, 0
	for res := range st.Run(context.Background(), in) {
		if res.Drift != nil {
			drifts++
		}
		if res.RecoveryPending {
			pending++
		}
	}
	if drifts == 0 {
		t.Fatal("day stream on a night-bootstrapped server should drift")
	}
	if pending == 0 {
		t.Fatal("no frame was served under a pending recovery; async training never deferred")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.WaitRecoveries(ctx); err != nil {
		t.Fatalf("recovery did not converge: %v", err)
	}
	if srv.PendingRecoveries() != 0 {
		t.Fatal("recoveries still pending after WaitRecoveries")
	}
	if srv.NumModels() == 0 {
		t.Fatal("no specialized model resident after recovery")
	}
	if srv.ModelGen() == 0 {
		t.Fatal("model generation never advanced")
	}
	res, err := st.Process(context.Background(), srv.GenerateFrames(DayData, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveryPending {
		t.Fatal("frame still flagged pending after convergence")
	}
	if res.ModelGen != srv.ModelGen() {
		t.Fatalf("frame generation %d, server generation %d", res.ModelGen, srv.ModelGen())
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDispatchOverlappingDrifts: two cameras drifting into different
// domains at the same time queue two recoveries; both converge and each
// cluster gets its model. Run under -race in CI.
func TestDispatchOverlappingDrifts(t *testing.T) {
	srv, err := New(append(fastServerOptions(31),
		WithDispatcher(true),
		WithTrainAsync(true),
		// Keep both recoveries on the cheap distilled lite models: the
		// overlap under test is in the trainer queue, not in specialized
		// retraining.
		WithLabelDelay(100_000),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(context.Background(), srv.GenerateFrames(NightData, 80)); err != nil {
		t.Fatal(err)
	}
	// Both cameras share a stable night phase (the temp cluster promotes
	// one night concept), then drift into different domains at different
	// times — two separate drift events whose async recoveries overlap in
	// the trainer queue.
	camFrames := [][]*Frame{
		append(srv.GenerateFrames(NightData, 300), srv.GenerateFrames(DayData, 500)...),
		append(srv.GenerateFrames(NightData, 800), srv.GenerateFrames(SnowData, 300)...),
	}
	var wg sync.WaitGroup
	for c := range camFrames {
		st, err := srv.OpenStream(context.Background(), StreamOptions{
			Name: fmt.Sprintf("cam-%d", c), Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(st *Stream, frames []*Frame) {
			defer wg.Done()
			in := make(chan *Frame)
			go func() {
				defer close(in)
				for _, f := range frames {
					in <- f
				}
			}()
			n := 0
			for res := range st.Run(context.Background(), in) {
				if len(res.ModelsUsed) == 0 {
					t.Errorf("%s: frame %d served by no model", st.Name(), res.Seq)
				}
				n++
			}
			if n != len(frames) {
				t.Errorf("%s: %d/%d results", st.Name(), n, len(frames))
			}
		}(st, camFrames[c])
	}
	wg.Wait()
	timeout := 180 * time.Second
	if raceEnabled {
		timeout = 600 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.WaitRecoveries(ctx); err != nil {
		t.Fatalf("overlapping recoveries did not converge: %v", err)
	}
	if got := srv.Stats().DriftEvents; got < 2 {
		t.Fatalf("expected ≥2 drift events (one per drifting camera), got %d", got)
	}
	if got := srv.NumModels(); got < 2 {
		t.Fatalf("expected ≥2 recovered models, got %d", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDispatchStreamJoinsAndLeavesMidBatch: a camera joining the fleet
// while another is mid-stream, and leaving before it ends, disturbs
// neither ordering nor completeness.
func TestDispatchStreamJoinsAndLeavesMidBatch(t *testing.T) {
	srv, err := New(append(fastServerOptions(37), WithDispatcher(true))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	const aFrames, bFrames = 60, 20
	framesA := srv.GenerateFrames(DayData, aFrames)
	framesB := srv.GenerateFrames(NightData, bFrames)

	stA, err := srv.OpenStream(context.Background(), StreamOptions{Name: "cam-a", MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	inA := make(chan *Frame)
	outA := stA.Run(context.Background(), inA)
	resA := make(chan int, 1)
	go func() {
		n := 0
		for res := range outA {
			if res.Seq != n {
				t.Errorf("cam-a out of order: seq %d at %d", res.Seq, n)
			}
			n++
		}
		resA <- n
	}()
	feedA := make(chan struct{})
	go func() {
		defer close(inA)
		for i, f := range framesA {
			if i == aFrames/3 {
				close(feedA) // cam-b joins once cam-a is mid-stream
			}
			inA <- f
		}
	}()

	<-feedA
	stB, err := srv.OpenStream(context.Background(), StreamOptions{Name: "cam-b", MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	inB := make(chan *Frame, bFrames)
	outB := stB.Run(context.Background(), inB)
	for _, f := range framesB {
		inB <- f
	}
	close(inB) // cam-b leaves while cam-a keeps streaming
	nB := 0
	for res := range outB {
		if res.Seq != nB {
			t.Fatalf("cam-b out of order: seq %d at %d", res.Seq, nB)
		}
		nB++
	}
	if nB != bFrames {
		t.Fatalf("cam-b delivered %d/%d results", nB, bFrames)
	}
	if nA := <-resA; nA != aFrames {
		t.Fatalf("cam-a delivered %d/%d results", nA, aFrames)
	}
	if got := srv.Stats().Frames; got != aFrames+bFrames {
		t.Fatalf("server saw %d frames, want %d", got, aFrames+bFrames)
	}
}

// TestDispatchCancelWithFramesInAssembler: cancelling a Run whose window
// sits in the dispatcher's assembler (the fleet is not ready — another
// joined camera is idle) withdraws the window: the session ends cleanly
// and the withdrawn frames are never advanced through the pipeline.
func TestDispatchCancelWithFramesInAssembler(t *testing.T) {
	srv, err := New(append(fastServerOptions(41),
		WithDispatcher(true),
		WithMaxBatch(1024),
		WithMaxLinger(time.Minute),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	stA, err := srv.OpenStream(context.Background(), StreamOptions{Name: "cam-a"})
	if err != nil {
		t.Fatal(err)
	}
	stB, err := srv.OpenStream(context.Background(), StreamOptions{Name: "cam-b"})
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	inA := make(chan *Frame, 4)
	outA := stA.Run(ctxA, inA)
	inB := make(chan *Frame)
	outB := stB.Run(context.Background(), inB) // joined but idle: blocks fleet-ready

	for _, f := range srv.GenerateFrames(DayData, 3) {
		inA <- f
	}
	// cam-a's window is now (or will shortly be) parked in the assembler;
	// cancel while it waits for the idle fleet.
	time.Sleep(20 * time.Millisecond)
	cancelA()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range outA {
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled session did not end; its window was not withdrawn")
	}
	if got := srv.Stats().Frames; got != 0 {
		t.Fatalf("withdrawn frames were advanced: server saw %d frames", got)
	}
	close(inB)
	for range outB {
	}
}

// TestDispatchOptionValidation pins the new options' eager validation.
func TestDispatchOptionValidation(t *testing.T) {
	for _, c := range []struct {
		name string
		opt  Option
	}{
		{"zero max batch", WithMaxBatch(0)},
		{"negative max batch", WithMaxBatch(-3)},
		{"zero linger", WithMaxLinger(0)},
		{"negative linger", WithMaxLinger(-time.Second)},
		{"zero label delay", WithLabelDelay(0)},
	} {
		if _, err := New(c.opt); err == nil {
			t.Errorf("%s: New should reject the option", c.name)
		}
	}
	if _, err := New(WithDispatcher(true), WithMaxBatch(16), WithMaxLinger(time.Millisecond), WithTrainAsync(true)); err != nil {
		t.Fatalf("valid fleet options rejected: %v", err)
	}
}

// TestWaitRecoveriesInlineNoop: with inline training, WaitRecoveries is an
// immediate no-op and PendingRecoveries stays 0.
func TestWaitRecoveriesInlineNoop(t *testing.T) {
	srv := sharedServer(t)
	if err := srv.WaitRecoveries(context.Background()); err != nil {
		t.Fatalf("inline WaitRecoveries: %v", err)
	}
	if srv.PendingRecoveries() != 0 {
		t.Fatal("inline training reports pending recoveries")
	}
}

// TestQueryCountPushdownMatchesFullPath: the server-level COUNT plan over
// the built-in bindings uses the pushdown (no detection materialisation)
// and still counts exactly what the full path counts.
func TestQueryCountPushdownMatchesFullPath(t *testing.T) {
	// Two identically seeded servers: the drift pipeline mutates cluster
	// state per query, so each path gets its own.
	mk := func() *Server {
		srv, err := New(fastServerOptions(43)...)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Bootstrap(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
		return srv
	}
	for _, model := range []string{"odin", "yolo"} {
		countSQL := "SELECT COUNT(detections) FROM s USING MODEL " + model + " WHERE class='car'"
		fullSQL := "SELECT detections FROM s USING MODEL " + model + " WHERE class='car'"

		a := mk()
		framesA := a.GenerateFrames(DayData, 12)
		pq, err := a.PrepareSQL(countSQL)
		if err != nil {
			t.Fatal(err)
		}
		if explain := pq.Explain(); !strings.Contains(explain, "count-pushdown") {
			t.Fatalf("%s COUNT plan not pushed down: %s", model, explain)
		}
		got, err := pq.Execute(context.Background(), framesA)
		if err != nil {
			t.Fatal(err)
		}

		b := mk()
		framesB := b.GenerateFrames(DayData, 12)
		want, err := b.Query(context.Background(), fullSQL, framesB)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count {
			t.Fatalf("%s: pushdown count %d, full path %d", model, got.Count, want.Count)
		}
		for i := range want.PerFrame {
			if got.PerFrame[i] != want.PerFrame[i] {
				t.Fatalf("%s frame %d: pushdown %d, full %d", model, i, got.PerFrame[i], want.PerFrame[i])
			}
		}
		if got.Detections != nil {
			t.Fatalf("%s: pushdown materialised detections", model)
		}
	}
}
