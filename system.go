package odin

import "context"

// Options configures a System.
//
// Deprecated: Options only serves the legacy System shim. New code should
// construct a Server with functional options (WithSeed, WithPolicy, ...).
type Options struct {
	// Seed drives all randomness; equal seeds give identical systems.
	Seed uint64

	// BootstrapFrames is the number of held-out frames used to train the
	// DA-GAN projection and the baseline detector (default 600).
	BootstrapFrames int
	// BootstrapEpochs is the DA-GAN epoch budget (default 8).
	BootstrapEpochs int
	// BaselineEpochs is the baseline detector epoch budget (default 40).
	BaselineEpochs int

	// MaxModels caps resident specialized models; 0 = unlimited.
	MaxModels int
	// DriftRecovery disables the drift pipeline when false (static mode).
	DriftRecovery *bool

	// Policy selects the model-selection policy: "delta-bm" (default),
	// "knn-u", "knn-w" or "most-recent".
	Policy string
}

// System is the pre-Server one-shot facade: a blocking, single-caller view
// of one Server.
//
// Deprecated: System remains only to keep existing callers compiling. It
// is a thin shim over Server; use Server and Stream for new code — they
// are concurrency-safe, sharded, and report misuse as errors instead of
// panicking.
type System struct {
	srv *Server
}

// NewSystem creates the legacy facade over a freshly constructed Server.
//
// Deprecated: use New with functional options.
func NewSystem(opts Options) (*System, error) {
	var o []Option
	if opts.Seed != 0 {
		o = append(o, WithSeed(opts.Seed))
	}
	if opts.BootstrapFrames > 0 {
		o = append(o, WithBootstrapFrames(opts.BootstrapFrames))
	}
	if opts.BootstrapEpochs > 0 {
		o = append(o, WithBootstrapEpochs(opts.BootstrapEpochs))
	}
	if opts.BaselineEpochs > 0 {
		o = append(o, WithBaselineEpochs(opts.BaselineEpochs))
	}
	if opts.MaxModels > 0 {
		o = append(o, WithMaxModels(opts.MaxModels))
	}
	if opts.DriftRecovery != nil {
		o = append(o, WithDriftRecovery(*opts.DriftRecovery))
	}
	pol, err := ParsePolicy(opts.Policy)
	if err != nil {
		return nil, err
	}
	o = append(o, WithPolicy(pol))
	srv, err := New(o...)
	if err != nil {
		return nil, err
	}
	return &System{srv: srv}, nil
}

// Server returns the underlying Server, easing incremental migration.
func (s *System) Server() *Server { return s.srv }

// GenerateFrames renders frames from a subset's domain distribution.
func (s *System) GenerateFrames(sub Subset, n int) []*Frame {
	return s.srv.GenerateFrames(sub, n)
}

// Bootstrap trains the DA-GAN projection and the baseline detector.
// A second call returns ErrAlreadyBootstrapped.
func (s *System) Bootstrap(boot []*Frame) error {
	return s.srv.Bootstrap(context.Background(), boot)
}

// Process runs one frame through the drift-aware pipeline.
//
// Deprecated: it keeps the legacy contract of panicking (with
// ErrNotBootstrapped) when called before Bootstrap; Stream.Process returns
// the error instead.
func (s *System) Process(f *Frame) Result {
	p, err := s.srv.pipe()
	if err != nil {
		panic(err)
	}
	return p.Process(f)
}

// Query parses and executes an aggregation query over frames. Unlike the
// pre-Server facade it returns ErrNotBootstrapped instead of panicking.
func (s *System) Query(sql string, frames []*Frame) (*QueryResult, error) {
	return s.srv.Query(context.Background(), sql, frames)
}

// RegisterModel binds a custom detection model for USING MODEL clauses.
// The built-in names "odin"/"yolo" are now reserved; like the other
// legacy-contract violations this shim surfaces, registering one panics.
func (s *System) RegisterModel(name string, fn func(*Frame) []Detection) {
	if err := s.srv.RegisterModel(name, fn); err != nil {
		panic(err)
	}
}

// RegisterFilter binds a custom frame pre-screen for USING FILTER clauses.
func (s *System) RegisterFilter(name string, fn func(*Frame) bool) {
	s.srv.RegisterFilter(name, fn)
}

// Stats returns pipeline telemetry (zero before Bootstrap).
func (s *System) Stats() Stats { return s.srv.Stats() }

// MemoryMB returns the simulated resident model memory.
func (s *System) MemoryMB() float64 { return s.srv.MemoryMB() }

// NumClusters returns the number of discovered concept clusters.
func (s *System) NumClusters() int { return s.srv.NumClusters() }

// NumModels returns the number of resident specialized models.
func (s *System) NumModels() int { return s.srv.NumModels() }
