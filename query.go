package odin

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"odin/internal/query"
)

// Typed query errors, re-exported from the planner so callers can test
// prepare-time failures with errors.Is without importing internal packages.
var (
	// ErrUnknownModel is returned by Prepare when a query references an
	// unregistered model.
	ErrUnknownModel = query.ErrUnknownModel
	// ErrUnknownFilter is returned by Prepare when a query references an
	// unregistered filter.
	ErrUnknownFilter = query.ErrUnknownFilter
	// ErrUnknownClass is returned by Prepare for an unknown WHERE class.
	ErrUnknownClass = query.ErrUnknownClass
	// ErrBadPredicate is returned by Prepare for a WHERE predicate on an
	// unsupported field.
	ErrBadPredicate = query.ErrBadPredicate
	// ErrMultipleModels is returned by Prepare when more than one query
	// level carries USING MODEL.
	ErrMultipleModels = query.ErrMultipleModels
	// ErrForeignQuery is returned when a PreparedQuery is used with a
	// server (or a stream of a server) other than the one that prepared it.
	ErrForeignQuery = errors.New("odin: prepared query belongs to a different server")
)

// Projection is what a query emits per frame set.
type Projection int

// Projections.
const (
	// Count projects the total and per-frame detection count —
	// SELECT COUNT(detections).
	Count Projection = iota
	// Detections projects the surviving detections per frame —
	// SELECT detections.
	Detections
	// AllFrames is the SELECT * pass-through.
	AllFrames
)

// Predicate is a typed WHERE condition. Construct with Class or ClassID.
type Predicate struct {
	field string
	value string
}

// Class restricts counted detections to a named object class ("car",
// "truck", "person", "traffic_light", "sign").
func Class(name string) Predicate { return Predicate{field: "class", value: name} }

// ClassID restricts counted detections to a numeric class id.
func ClassID(id int) Predicate { return Predicate{field: "class", value: strconv.Itoa(id)} }

// Query is the typed query builder: a programmatic, composable alternative
// to the SQL dialect. Builder calls return the receiver, so a query reads
// as one chain:
//
//	q := odin.Select(odin.Count).
//	    From("cam-0").
//	    UsingFilter("truck_filter").
//	    UsingModel("odin").
//	    Where(odin.Class("truck"))
//	pq, err := srv.Prepare(q)
//
// The zero builder is not useful; start with Select. Builders are cheap
// and single-use-or-reuse — compiling (Server.Prepare) never mutates one.
type Query struct {
	sel      Projection
	source   string
	filters  []string
	model    string
	where    *Predicate
	minScore *float64
	err      error // first construction error, surfaced by Prepare
}

// Select starts a query with the given projection. The source defaults to
// "stream" until From overrides it (the source name is informational — the
// frame set is supplied at execution time).
func Select(p Projection) *Query {
	q := &Query{sel: p, source: "stream"}
	if p != Count && p != Detections && p != AllFrames {
		q.err = fmt.Errorf("odin: invalid projection %d", int(p))
	}
	return q
}

// dialectKeywords are spellings the lexer reserves; a name that collides
// with one would render as a keyword token and break the SQL round trip.
var dialectKeywords = map[string]bool{
	"SELECT": true, "COUNT": true, "FROM": true, "USING": true,
	"MODEL": true, "FILTER": true, "WHERE": true, "AND": true,
}

// validIdent reports whether s is a dialect identifier — a letter or '_'
// followed by letters, digits, '_' or '-', and not a reserved keyword —
// so every name the builder accepts renders back to parseable SQL.
func validIdent(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '-'):
		default:
			return false
		}
	}
	return s != "" && !dialectKeywords[strings.ToUpper(s)]
}

// From names the frame source (diagnostics and Explain output only). The
// name must be a dialect identifier (letters, digits, '_', '-'), keeping
// SQL() parseable.
func (q *Query) From(source string) *Query {
	if !validIdent(source) {
		q.fail(fmt.Errorf("odin: invalid source name %q", source))
		return q
	}
	q.source = source
	return q
}

// UsingFilter appends lightweight pre-screen filters, applied in the order
// given before any model runs. Names must be dialect identifiers.
func (q *Query) UsingFilter(names ...string) *Query {
	for _, n := range names {
		if !validIdent(n) {
			q.fail(fmt.Errorf("odin: invalid filter name %q", n))
			return q
		}
		q.filters = append(q.filters, n)
	}
	return q
}

// UsingModel binds the detection model ("odin", "yolo", or a registered
// custom model). A query carries at most one model; the name must be a
// dialect identifier.
func (q *Query) UsingModel(name string) *Query {
	if !validIdent(name) {
		q.fail(fmt.Errorf("odin: invalid model name %q", name))
		return q
	}
	if q.model != "" && q.model != name {
		q.fail(fmt.Errorf("odin: model already set to %q", q.model))
		return q
	}
	q.model = name
	return q
}

// Where sets the class predicate applied to the model's detections.
func (q *Query) Where(p Predicate) *Query {
	q.where = &p
	return q
}

// WithMinScore overrides the server's detection-confidence floor for this
// query only.
func (q *Query) WithMinScore(s float64) *Query {
	if !(s >= 0 && s <= 1) { // written to also reject NaN
		q.fail(fmt.Errorf("odin: min score must be in [0,1], got %v", s))
		return q
	}
	v := s
	q.minScore = &v
	return q
}

// fail records the first construction error.
func (q *Query) fail(err error) {
	if q.err == nil {
		q.err = err
	}
}

// SQL renders the equivalent statement in the query dialect; the result
// parses back to the same plan via PrepareSQL, except that a WithMinScore
// override is not expressible in the dialect — a replayed statement
// compiles with the server's default floor.
func (q *Query) SQL() string {
	ast, err := q.ast()
	if err != nil {
		return ""
	}
	return ast.String()
}

// ast lowers the builder into the dialect's nested AST: each filter on its
// own sub-query level (the dialect allows one USING FILTER per level),
// model, predicate and projection on the outermost level.
func (q *Query) ast() (*query.Query, error) {
	if q.err != nil {
		return nil, q.err
	}
	var sel query.SelectKind
	switch q.sel {
	case Count:
		sel = query.SelectCount
	case Detections:
		sel = query.SelectDetections
	default:
		sel = query.SelectAll
	}
	cur := &query.Query{Select: query.SelectAll, Table: q.source}
	for i, f := range q.filters {
		if i == 0 {
			cur.UseFilter = f
		} else {
			cur = &query.Query{Select: query.SelectAll, Sub: cur, UseFilter: f}
		}
	}
	out := cur
	if len(q.filters) > 0 {
		out = &query.Query{Select: sel, Sub: cur}
	} else {
		out.Select = sel
	}
	out.UseModel = q.model
	if q.where != nil {
		out.Where = &query.Pred{Field: q.where.field, Value: q.where.value}
	}
	return out, nil
}

// PreparedQuery is a compiled, reusable query plan bound to the server
// that prepared it. Execution performs no parse or plan work; a prepared
// query is safe for concurrent and repeated Execute calls, and can be
// attached to live streams as a standing query via Stream.Subscribe.
type PreparedQuery struct {
	srv  *Server
	plan *query.Plan
	sql  string
	// pipelineShared marks plans whose model is the server's drift-aware
	// pipeline: continuous subscriptions reduce the stream session's own
	// ProcessBatch results instead of re-running detection.
	pipelineShared bool
}

// Prepare compiles a built query against the server's registries: filters
// are ordered ahead of the model, every model/filter/class reference is
// resolved now (typed errors — ErrUnknownModel, ErrUnknownFilter,
// ErrUnknownClass), and the score floor is frozen into the plan. Queries
// that reference only custom registered models prepare and run before
// Bootstrap; the built-in "odin"/"yolo" bindings exist only after it
// (ErrNotBootstrapped).
func (s *Server) Prepare(q *Query) (*PreparedQuery, error) {
	ast, err := q.ast()
	if err != nil {
		return nil, err
	}
	var opts []query.PrepareOption
	if q.minScore != nil {
		opts = append(opts, query.WithMinScore(*q.minScore))
	}
	return s.prepareAST(ast, ast.String(), opts...)
}

// PrepareSQL parses and compiles a statement in the query dialect.
func (s *Server) PrepareSQL(sql string) (*PreparedQuery, error) {
	ast, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.prepareAST(ast, sql)
}

// builtinModel reports whether name is one of the bindings Bootstrap
// installs.
func builtinModel(name string) bool { return name == "odin" || name == "yolo" }

// prepareAST compiles a parsed AST against the engine, mapping "unknown
// model" for a built-in binding on an un-bootstrapped server to the
// lifecycle error. sql is the statement the plan reports from SQL() —
// passed through rather than re-rendered, to keep the one-shot Query path
// lean.
func (s *Server) prepareAST(ast *query.Query, sql string, opts ...query.PrepareOption) (*PreparedQuery, error) {
	s.mu.Lock()
	closed, booted := s.closed, s.booted
	s.mu.Unlock()
	if closed {
		return nil, ErrServerClosed
	}
	plan, err := s.engine.Prepare(ast, opts...)
	if err != nil {
		if !booted && errors.Is(err, query.ErrUnknownModel) && builtinModel(modelOf(ast)) {
			return nil, ErrNotBootstrapped
		}
		return nil, err
	}
	return &PreparedQuery{
		srv:            s,
		plan:           plan,
		sql:            sql,
		pipelineShared: plan.ModelName() == "odin",
	}, nil
}

// modelOf returns the model name a query AST references ("" when none).
func modelOf(ast *query.Query) string {
	for cur := ast; cur != nil; cur = cur.Sub {
		if cur.UseModel != "" {
			return cur.UseModel
		}
	}
	return ""
}

// Execute runs the prepared plan over a frame set. Re-execution performs
// zero parse/plan work. The context cancels execution between model
// invocations.
func (pq *PreparedQuery) Execute(ctx context.Context, frames []*Frame) (*QueryResult, error) {
	if err := pq.srv.alive(); err != nil {
		return nil, err
	}
	return pq.plan.Execute(ctx, frames)
}

// Explain renders the compiled plan as a one-line stage pipeline, e.g.
//
//	scan(stream) -> filter(truck_filter) -> model(odin, batched) -> where(class='truck') -> min_score(0.30) -> count
func (pq *PreparedQuery) Explain() string { return pq.plan.Explain() }

// SQL returns the statement the plan was compiled from (builder queries
// render their dialect equivalent). A builder WithMinScore override is
// not part of the dialect: re-preparing the returned statement uses the
// server default floor — Explain, which renders the frozen threshold, is
// the faithful description of this plan.
func (pq *PreparedQuery) SQL() string { return pq.sql }
