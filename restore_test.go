package odin

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"odin/internal/checkpoint"
)

// checkpointedRun bootstraps a server, processes the first half of a drift
// stream sequentially, checkpoints, then finishes the stream, returning the
// checkpoint bytes, the full frame sequence, the per-frame fingerprints and
// the final stats. The midpoint is chosen inside the second phase so the
// checkpoint carries non-trivial state: clusters, a specialized model, a
// partially filled temp window and outlier ring.
func checkpointedRun(t *testing.T, seed uint64, perPhase int, opts ...Option) (ckpt []byte, frames []*Frame, fps []string, cutAt int, final Stats) {
	t.Helper()
	options := append(fastServerOptions(seed), opts...)
	ref, err := New(options...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	frames = driftStream(ref, perPhase)
	cutAt = perPhase + perPhase/2 // mid second phase
	st, err := ref.OpenStream(context.Background(), StreamOptions{Name: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	fps = make([]string, len(frames))
	for i, f := range frames {
		if i == cutAt {
			var buf bytes.Buffer
			if err := ref.Checkpoint(&buf); err != nil {
				t.Fatalf("checkpoint at frame %d: %v", i, err)
			}
			ckpt = buf.Bytes()
		}
		r, err := st.Process(context.Background(), f)
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = r.Fingerprint()
	}
	if ref.Stats().DriftEvents == 0 {
		t.Fatal("drift stream produced no drift events; the round-trip test would be vacuous")
	}
	return ckpt, frames, fps, cutAt, ref.Stats()
}

// TestCheckpointRestoreBitIdentical is the acceptance gate of the
// checkpoint subsystem: Checkpoint → Restore → replay of the rest of a
// drift scenario is bit-identical to the uninterrupted run, sequentially
// and at 1/4/8 workers (run under -race in CI).
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	const seed, perPhase = 11, 60
	ckpt, frames, want, cutAt, wantStats := checkpointedRun(t, seed, perPhase)
	tail := frames[cutAt:]

	// Sequential replay on a restored server.
	t.Run("sequential", func(t *testing.T) {
		srv, err := Restore(bytes.NewReader(ckpt), fastServerOptions(seed)...)
		if err != nil {
			t.Fatal(err)
		}
		st, err := srv.OpenStream(context.Background(), StreamOptions{Name: "restored"})
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range tail {
			r, err := st.Process(context.Background(), f)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Fingerprint(); got != want[cutAt+i] {
				t.Fatalf("frame %d diverged after restore:\n got  %s\n want %s", cutAt+i, got, want[cutAt+i])
			}
		}
		if got := srv.Stats(); !reflect.DeepEqual(got, wantStats) {
			t.Fatalf("stats diverged: got %+v want %+v", got, wantStats)
		}
	})

	// Sharded replay: restore once per worker count, drive via Run.
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv, err := Restore(bytes.NewReader(ckpt), fastServerOptions(seed)...)
			if err != nil {
				t.Fatal(err)
			}
			st, err := srv.OpenStream(context.Background(), StreamOptions{Name: "restored", Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			in := make(chan *Frame)
			out := st.Run(ctx, in)
			go func() {
				for _, f := range tail {
					in <- f
				}
				close(in)
			}()
			i := 0
			for r := range out {
				if got := r.Fingerprint(); got != want[cutAt+i] {
					t.Fatalf("frame %d diverged (workers=%d):\n got  %s\n want %s", cutAt+i, workers, got, want[cutAt+i])
				}
				i++
			}
			if i != len(tail) {
				t.Fatalf("got %d results, want %d", i, len(tail))
			}
			if got := srv.Stats(); !reflect.DeepEqual(got, wantStats) {
				t.Fatalf("stats diverged: got %+v want %+v", got, wantStats)
			}
		})
	}
}

// TestRestoreContinuesFrameGenerator asserts the generator's RNG position
// survives the round trip: frames generated after restore are identical to
// the ones the original server would have generated.
func TestRestoreContinuesFrameGenerator(t *testing.T) {
	const seed, perPhase = 11, 40
	ckpt, _, _, _, _ := checkpointedRun(t, seed, perPhase)

	orig, err := New(fastServerOptions(seed)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	// Advance the original generator to the same position the checkpoint
	// recorded (bootstrap + the full drift stream were generated pre-cut).
	driftStream(orig, perPhase)

	srv, err := Restore(bytes.NewReader(ckpt), fastServerOptions(seed)...)
	if err != nil {
		t.Fatal(err)
	}
	a := orig.GenerateFrames(DayData, 5)
	b := srv.GenerateFrames(DayData, 5)
	for i := range a {
		if a[i].Index != b[i].Index || !reflect.DeepEqual(a[i].Boxes, b[i].Boxes) ||
			!reflect.DeepEqual(a[i].Image.Pix, b[i].Image.Pix) {
			t.Fatalf("generated frame %d diverged after restore", i)
		}
	}
}

// TestRestoreIsBootstrapped asserts the restored server rejects a second
// Bootstrap and reports the checkpointed model state.
func TestRestoreIsBootstrapped(t *testing.T) {
	const seed, perPhase = 11, 40
	ckpt, _, _, cutAt, _ := checkpointedRun(t, seed, perPhase)
	srv, err := Restore(bytes.NewReader(ckpt), fastServerOptions(seed)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(context.Background(), nil); !errors.Is(err, ErrAlreadyBootstrapped) {
		t.Fatalf("Bootstrap after restore = %v, want ErrAlreadyBootstrapped", err)
	}
	if got := srv.Stats().Frames; got != cutAt {
		t.Fatalf("restored server reports %d processed frames, want %d", got, cutAt)
	}
}

// TestCheckpointErrorPaths exercises the typed sentinels of the envelope
// format through the public Restore path: wrong magic, unsupported
// version, truncation and corruption are distinguishable via errors.Is.
func TestCheckpointErrorPaths(t *testing.T) {
	const seed, perPhase = 11, 40
	ckpt, _, _, _, _ := checkpointedRun(t, seed, perPhase)

	restore := func(b []byte) error {
		_, err := Restore(bytes.NewReader(b), fastServerOptions(seed)...)
		return err
	}

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), ckpt...)
		copy(b, "NOTODIN!")
		if err := restore(b); !errors.Is(err, ErrCheckpointBadMagic) {
			t.Fatalf("got %v, want ErrCheckpointBadMagic", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		b := append([]byte(nil), ckpt...)
		b[8] = 99 // bump the little-endian version field
		if err := restore(b); !errors.Is(err, ErrCheckpointVersion) {
			t.Fatalf("got %v, want ErrCheckpointVersion", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 4, 20, len(ckpt) / 2, len(ckpt) - 1} {
			if err := restore(ckpt[:n]); !errors.Is(err, ErrCheckpointTruncated) {
				t.Fatalf("truncated at %d: got %v, want ErrCheckpointTruncated", n, err)
			}
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		b := append([]byte(nil), ckpt...)
		b[len(b)/2] ^= 0xff
		if err := restore(b); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("got %v, want ErrCheckpointCorrupt", err)
		}
	})
	t.Run("sentinels exported", func(t *testing.T) {
		// The facade sentinels alias the internal ones so both layers'
		// wrapping stays errors.Is-able.
		if !errors.Is(ErrCheckpointCorrupt, checkpoint.ErrCorrupt) {
			t.Fatal("facade sentinel does not alias internal sentinel")
		}
	})
}

// TestCheckpointAfterClose asserts the Close → Checkpoint shutdown
// contract: Close drains the trainer deterministically, Checkpoint still
// works on the closed server, and the checkpoint restores with no pending
// recoveries.
func TestCheckpointAfterClose(t *testing.T) {
	const seed, perPhase = 11, 60
	opts := append(fastServerOptions(seed), WithTrainAsync(true))
	srv, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	frames := driftStream(srv, perPhase)
	st, err := srv.OpenStream(context.Background(), StreamOptions{Name: "cam"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if _, err := st.Process(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := srv.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint after Close: %v", err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if n := restored.PendingRecoveries(); n != 0 {
		t.Fatalf("restored server has %d pending recoveries, want 0", n)
	}
	// The restored replica serves: process a few fresh frames.
	st2, err := restored.OpenStream(context.Background(), StreamOptions{Name: "cam"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range restored.GenerateFrames(SnowData, 5) {
		if _, err := st2.Process(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestoreCrossBackend audits the cross-dtype restore contract: a
// checkpoint written under Float64 restores under Float32 (same float64
// master weights served by float32 kernels) and replays the drift tail
// within the DESIGN.md §8 tolerance envelope — identical drift behaviour,
// detection scores within 1e-2 — while the f32 replica itself stays
// bit-identical across worker counts.
func TestRestoreCrossBackend(t *testing.T) {
	const seed, perPhase = 11, 60
	ckpt, frames, _, cutAt, wantStats := checkpointedRun(t, seed, perPhase)
	tail := frames[cutAt:]

	replay := func(backend Backend, workers int) (*Server, []Result) {
		srv, err := Restore(bytes.NewReader(ckpt), append(fastServerOptions(seed), WithBackend(backend))...)
		if err != nil {
			t.Fatal(err)
		}
		st, err := srv.OpenStream(context.Background(), StreamOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var results []Result
		for _, f := range tail {
			r, err := st.Process(context.Background(), f)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
		return srv, results
	}

	srv64, res64 := replay(Float64, 1)
	srv32, res32 := replay(Float32, 1)

	// Aggregate drift behaviour must agree exactly.
	if srv64.NumClusters() != srv32.NumClusters() {
		t.Errorf("cluster counts diverged: f64=%d f32=%d", srv64.NumClusters(), srv32.NumClusters())
	}
	if a, b := srv64.Stats(), srv32.Stats(); a.DriftEvents != b.DriftEvents || a.Frames != b.Frames {
		t.Errorf("stats diverged: f64=%+v f32=%+v", a, b)
	}
	if got := srv64.Stats(); !reflect.DeepEqual(got, wantStats) {
		t.Fatalf("f64 replay stats diverged from uninterrupted run: got %+v want %+v", got, wantStats)
	}

	// Detection-level agreement within the §8 envelope.
	mismatched := 0
	var maxScoreDelta float64
	for i := range res64 {
		d64, d32 := res64[i].Detections, res32[i].Detections
		if len(d64) != len(d32) {
			mismatched++
			continue
		}
		for j := range d64 {
			if d64[j].Box.Class != d32[j].Box.Class {
				mismatched++
				break
			}
			if d := math.Abs(d64[j].Score - d32[j].Score); d > maxScoreDelta {
				maxScoreDelta = d
			}
		}
	}
	if mismatched > len(res64)/10 {
		t.Errorf("%d/%d frames disagree across backends (allow ≤10%%)", mismatched, len(res64))
	}
	if maxScoreDelta > 1e-2 {
		t.Errorf("max detection score delta %g across backends exceeds 1e-2", maxScoreDelta)
	}

	// Within the f32 backend, the restored replica is bit-identical across
	// worker counts.
	want32 := make([]string, len(res32))
	for i, r := range res32 {
		want32[i] = r.Fingerprint()
	}
	for _, workers := range []int{4, 8} {
		_, res := replay(Float32, workers)
		for i, r := range res {
			if got := r.Fingerprint(); got != want32[i] {
				t.Fatalf("f32 frame %d diverged at workers=%d:\n got  %s\n want %s", i, workers, got, want32[i])
			}
		}
	}
}
