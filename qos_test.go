package odin

import (
	"context"
	"errors"
	"testing"
	"time"
)

// qosServer builds a bootstrapped server with the fast test options plus
// any QoS extras, closed with the test.
func qosServer(t *testing.T, seed uint64, extra ...Option) *Server {
	t.Helper()
	srv, err := New(append(fastServerOptions(seed), extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// feedAll pre-queues every frame on a closed channel, so the session sees
// the whole stream as already arrived.
func feedAll(frames []*Frame) chan *Frame {
	in := make(chan *Frame, len(frames))
	for _, f := range frames {
		in <- f
	}
	close(in)
	return in
}

// collectRun drives one Run session to completion and returns every
// StreamResult (drop markers included).
func collectRun(t *testing.T, srv *Server, frames []*Frame, o StreamOptions) []StreamResult {
	t.Helper()
	st, err := srv.OpenStream(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var rs []StreamResult
	for r := range st.Run(context.Background(), feedAll(frames)) {
		rs = append(rs, r)
	}
	return rs
}

// TestQoSAtCapacityBitIdentical is the determinism contract's first half:
// a QoS-enabled server held at full fidelity (all-zero script, blocking
// admission) produces results bit-identical to a server without QoS, at
// 1, 4 and 8 workers — including on a dispatched fleet.
func TestQoSAtCapacityBitIdentical(t *testing.T) {
	const n = 90
	base := qosServer(t, 11)
	baseFrames := base.GenerateFrames(NightData, n)
	want := collectRun(t, base, baseFrames, StreamOptions{MaxBatch: 10, Workers: 1})
	wantStats := base.Stats()
	if len(want) != n {
		t.Fatalf("baseline produced %d results for %d frames", len(want), n)
	}

	arms := []struct {
		name    string
		workers int
		extra   []Option
	}{
		{"w1", 1, nil},
		{"w4", 4, nil},
		{"w8", 8, nil},
		{"dispatched", 4, []Option{WithDispatcher(true)}},
	}
	for _, arm := range arms {
		opts := append([]Option{
			WithMaxQueue(8),
			WithAdaptiveFidelity(AdaptiveFidelity{Script: []int{0}}),
		}, arm.extra...)
		srv := qosServer(t, 11, opts...)
		frames := srv.GenerateFrames(NightData, n)
		got := collectRun(t, srv, frames, StreamOptions{MaxBatch: 10, Workers: arm.workers})
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", arm.name, len(got), len(want))
		}
		for i := range want {
			if got[i].Dropped {
				t.Fatalf("%s: frame %d dropped at capacity", arm.name, i)
			}
			if got[i].Seq != want[i].Seq || got[i].Fingerprint() != want[i].Fingerprint() {
				t.Fatalf("%s: frame %d diverged:\n got %s\nwant %s",
					arm.name, i, got[i].Fingerprint(), want[i].Fingerprint())
			}
		}
		if st := srv.Stats(); st != wantStats {
			t.Fatalf("%s: stats %+v, want %+v", arm.name, st, wantStats)
		}
	}
}

// TestQoSScriptedReplayDeterministic is the contract's second half: given
// the same admission decisions (a fidelity script over pinned MaxBatch
// windows), degraded results are bit-identical at any worker count.
func TestQoSScriptedReplayDeterministic(t *testing.T) {
	const n = 80
	script := []int{0, 1, 2, 3, 2, 1, 0}
	mk := func(workers int) []StreamResult {
		srv := qosServer(t, 7,
			WithMaxQueue(16),
			WithAdaptiveFidelity(AdaptiveFidelity{Script: script, SubsampleEvery: 3}),
		)
		frames := srv.GenerateFrames(NightData, n)
		return collectRun(t, srv, frames, StreamOptions{MaxBatch: 10, Workers: workers})
	}
	want := mk(1)
	if len(want) != n {
		t.Fatalf("%d results for %d frames", len(want), n)
	}
	seen := map[Fidelity]int{}
	for _, r := range want {
		seen[r.Fidelity]++
	}
	for _, f := range []Fidelity{FidelityFull, FidelityLite, FidelityCount, FidelitySkip} {
		if seen[f] == 0 {
			t.Fatalf("script never exercised fidelity %v: %v", f, seen)
		}
	}
	for _, workers := range []int{4, 8} {
		got := mk(workers)
		for i := range want {
			if got[i].Fingerprint() != want[i].Fingerprint() {
				t.Fatalf("workers=%d frame %d:\n got %s\nwant %s",
					workers, i, got[i].Fingerprint(), want[i].Fingerprint())
			}
		}
	}
}

// TestQoSDropAccounting pins the zero-silent-loss ledger: with a
// drop-newest queue and a stalled consumer, offered = delivered results +
// drop markers, sequence numbers stay contiguous, and the marker count
// agrees with both the stream's and the server's drop counters.
func TestQoSDropAccounting(t *testing.T) {
	const n = 48
	srv := qosServer(t, 5, WithMaxQueue(2), WithDropPolicy(DropNewest))
	frames := srv.GenerateFrames(DayData, n)
	st, err := srv.OpenStream(context.Background(), StreamOptions{MaxBatch: 4, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	out := st.Run(context.Background(), feedAll(frames))
	var results []StreamResult
	for r := range out {
		results = append(results, r)
		time.Sleep(2 * time.Millisecond) // stall so the queue overflows
	}
	if len(results) != n {
		t.Fatalf("ledger broken: %d results for %d offered frames", len(results), n)
	}
	drops := 0
	for i, r := range results {
		if r.Seq != i {
			t.Fatalf("result %d has seq %d; sequence must stay contiguous", i, r.Seq)
		}
		if r.Dropped {
			drops++
			if r.Frame != nil {
				t.Fatalf("drop marker %d carries a frame", i)
			}
		}
	}
	if drops == 0 {
		t.Fatal("stalled consumer never overflowed the 2-frame queue")
	}
	q := st.QoS()
	if !q.Enabled || q.Dropped != uint64(drops) {
		t.Fatalf("stream QoS %+v, want %d drops", q, drops)
	}
	if got := srv.Stats().Dropped; got != drops {
		t.Fatalf("server stats counted %d drops, markers say %d", got, drops)
	}
}

// TestQoSOfferAdmission exercises the non-blocking admission path: Offer
// requires an active QoS session, rejects with ErrOverloaded when the
// queue is full (counted as Rejected), and every admitted frame still
// yields a result.
func TestQoSOfferAdmission(t *testing.T) {
	srv := qosServer(t, 9, WithMaxQueue(2))
	frames := srv.GenerateFrames(DayData, 64)
	st, err := srv.OpenStream(context.Background(), StreamOptions{MaxBatch: 1, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if err := st.Offer(frames[0]); !errors.Is(err, ErrNoAdmission) {
		t.Fatalf("Offer before Run: %v, want ErrNoAdmission", err)
	}

	in := make(chan *Frame) // kept open: Offer is the only producer
	out := st.Run(context.Background(), in)
	admitted, rejected := 0, 0
	for _, f := range frames {
		switch err := st.Offer(f); {
		case err == nil:
			admitted++
		case errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Fatalf("Offer: %v", err)
		}
		time.Sleep(500 * time.Microsecond)
	}
	if rejected == 0 {
		t.Fatal("64 rapid offers against a 2-frame queue never overloaded")
	}
	close(in)
	var results []StreamResult
	for r := range out {
		if r.Dropped {
			t.Fatal("blocking-policy queue dropped a frame")
		}
		results = append(results, r)
	}
	if len(results) != admitted {
		t.Fatalf("%d results for %d admitted frames", len(results), admitted)
	}
	if q := st.QoS(); q.Rejected != uint64(rejected) {
		t.Fatalf("QoS counted %d rejections, Offer saw %d", q.Rejected, rejected)
	}
	if err := st.Offer(frames[0]); !errors.Is(err, ErrNoAdmission) {
		t.Fatalf("Offer after session end: %v, want ErrNoAdmission", err)
	}
}

// TestQoSSubscriptionDegradedWindows checks that standing queries under a
// degradation script report how many of each window's frames were served
// below full fidelity, with sequence ranges intact.
func TestQoSSubscriptionDegradedWindows(t *testing.T) {
	const n = 40
	srv := qosServer(t, 13,
		WithAdaptiveFidelity(AdaptiveFidelity{Script: []int{0, 1, 1, 0}}),
	)
	frames := srv.GenerateFrames(DayData, n)
	st, err := srv.OpenStream(context.Background(), StreamOptions{MaxBatch: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pq, err := srv.PrepareSQL("SELECT COUNT(detections) FROM stream USING MODEL odin")
	if err != nil {
		t.Fatal(err)
	}
	wins, err := st.Subscribe(context.Background(), pq, WindowOptions{Size: 10, Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	for range st.Run(context.Background(), feedAll(frames)) {
	}
	degraded := 0
	windows := 0
	for wr := range wins {
		if wr.Err != nil {
			t.Fatalf("window %d: %v", wr.Window, wr.Err)
		}
		if wr.EndSeq-wr.StartSeq != 9 {
			t.Fatalf("window %d spans [%d,%d], want width 10", wr.Window, wr.StartSeq, wr.EndSeq)
		}
		degraded += wr.Degraded
		windows++
	}
	if windows != n/10 {
		t.Fatalf("%d windows, want %d", windows, n/10)
	}
	// Script {0,1,1,0} over 10-frame logical windows degrades exactly the
	// middle twenty frames, all at Lite.
	if degraded != 20 {
		t.Fatalf("windows reported %d degraded frames, want 20", degraded)
	}
}

// TestQoSLiveControllerEngages exercises the hysteresis controller
// against real queue pressure (no script): a flooded queue with a slow
// consumer must degrade fidelity, and the occupancy signal must be the
// backlog the pop found — not the noisy post-pop depth.
func TestQoSLiveControllerEngages(t *testing.T) {
	srv := qosServer(t, 17,
		WithMaxQueue(8),
		WithAdaptiveFidelity(AdaptiveFidelity{Patience: 1}),
	)
	frames := srv.GenerateFrames(DayData, 80)
	st, err := srv.OpenStream(context.Background(), StreamOptions{MaxBatch: 2, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	degraded := 0
	for r := range st.Run(context.Background(), feedAll(frames)) {
		if r.Dropped {
			t.Fatal("blocking-policy queue dropped a frame")
		}
		if r.Fidelity.Degraded() {
			degraded++
		}
		time.Sleep(time.Millisecond) // stall so the queue pins full
	}
	if degraded == 0 {
		t.Fatal("flooded queue with a stalled consumer never degraded fidelity")
	}
	if q := st.QoS(); q.Transitions == 0 {
		t.Fatalf("controller recorded no transitions: %+v", q)
	}
}

// TestQoSOptionValidation pins the cross-option rules and the adaptive
// config bounds.
func TestQoSOptionValidation(t *testing.T) {
	if _, err := New(WithDropPolicy(DropOldest)); err == nil {
		t.Fatal("WithDropPolicy without WithMaxQueue must be rejected")
	}
	bad := []Option{
		WithMaxQueue(-1),
		WithDropPolicy(DropPolicy(9)),
		WithAdaptiveFidelity(AdaptiveFidelity{HighWater: 1.5}),
		WithAdaptiveFidelity(AdaptiveFidelity{HighWater: 0.2, LowWater: 0.6}),
		WithAdaptiveFidelity(AdaptiveFidelity{MaxLevel: 7}),
		WithAdaptiveFidelity(AdaptiveFidelity{Script: []int{0, 9}}),
	}
	for i, opt := range bad {
		if _, err := New(opt); err == nil {
			t.Errorf("bad option %d accepted", i)
		}
	}
	// Adaptive fidelity alone implies a default admission queue.
	srv, err := New(append(fastServerOptions(2), WithAdaptiveFidelity(AdaptiveFidelity{}))...)
	if err != nil {
		t.Fatal(err)
	}
	if srv.cfg.maxQueue != 64 {
		t.Fatalf("implied queue bound %d, want 64", srv.cfg.maxQueue)
	}
}
