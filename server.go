package odin

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"odin/internal/core"
	"odin/internal/detect"
	"odin/internal/dispatch"
	"odin/internal/gan"
	"odin/internal/obs"
	"odin/internal/query"
	"odin/internal/registry"
	"odin/internal/synth"
)

// Sentinel errors of the service layer. They replace the former panic
// paths of the one-shot System facade.
var (
	// ErrNotBootstrapped is returned when a method that needs trained
	// models runs before Bootstrap.
	ErrNotBootstrapped = errors.New("odin: server not bootstrapped (call Bootstrap first)")
	// ErrAlreadyBootstrapped is returned by a second Bootstrap call.
	ErrAlreadyBootstrapped = errors.New("odin: server already bootstrapped")
	// ErrServerClosed is returned after Close.
	ErrServerClosed = errors.New("odin: server closed")
	// ErrStreamClosed is returned by operations on a closed Stream.
	ErrStreamClosed = errors.New("odin: stream closed")
	// ErrReservedModel is returned when registering a model under a
	// built-in binding name ("odin", "yolo").
	ErrReservedModel = errors.New("odin: model name reserved for a built-in binding")
	// ErrOverloaded is returned by Stream.Offer when the admission queue
	// is full: the frame was rejected, counted, and stays with the caller.
	ErrOverloaded = errors.New("odin: stream overloaded (admission queue full)")
	// ErrNoAdmission is returned by Stream.Offer when there is no
	// admission queue to offer into — the server was built without
	// WithMaxQueue, or the stream has no active Run session.
	ErrNoAdmission = errors.New("odin: no admission queue (WithMaxQueue unset or no active Run session)")
)

// Server is a running ODIN service instance. It owns the bootstrapped
// model substrate — the DA-GAN projector, the heavyweight baseline, the
// model manager and the cluster state — and vends per-camera Stream
// sessions via OpenStream. All methods are safe for concurrent use.
//
// Concurrency: the per-frame inference path (projection and detection) is
// lock-free and shared; the mutating drift path (cluster assignment,
// outlier buffering, specializer training) is serialized behind a single
// synchronization point inside the core pipeline. N streams therefore
// share one model set, and a drift event recovered on one stream
// immediately serves all of them. See DESIGN.md §5.
type Server struct {
	cfg   config
	scene synth.SceneConfig

	// obs is the unified observability layer (WithObservability); nil when
	// disabled. It is set once at construction and never mutated, so reads
	// need no lock. Every instrumented subsystem holds the same pointer.
	obs *obs.Observer

	genMu sync.Mutex
	gen   *synth.SceneGen

	mu       sync.Mutex
	pipeline *core.Odin
	engine   *query.Engine
	dagan    *gan.DAGAN
	baseline *detect.GridDetector
	batcher  *dispatch.Batcher  // fleet dispatcher (WithDispatcher); nil otherwise
	trainer  *dispatch.Trainer  // async recovery trainer (WithTrainAsync); nil otherwise
	registry *registry.Registry // fleet model registry (WithFleetRecovery); nil otherwise
	booting  bool               // a Bootstrap is training outside the lock
	booted   bool
	closed   bool
}

// New creates a Server from functional options. The server owns no trained
// models yet; call Bootstrap before opening streams or running queries.
func New(opts ...Option) (*Server, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	// Cross-option QoS validation: a drop policy is meaningless without a
	// queue bound, and adaptive fidelity needs a queue to observe.
	if cfg.dropPolicySet && cfg.maxQueue == 0 {
		return nil, fmt.Errorf("odin: WithDropPolicy requires WithMaxQueue")
	}
	if cfg.adaptive != nil && cfg.maxQueue == 0 {
		cfg.maxQueue = 64
	}
	scene := synth.DefaultSceneConfig()
	engine := query.NewEngine()
	engine.SetMinScore(cfg.minScore)
	s := &Server{
		cfg:    cfg,
		scene:  scene,
		gen:    synth.NewSceneGen(cfg.seed, scene),
		engine: engine,
	}
	if cfg.obs {
		s.obs = obs.New(0)
		s.registerServerMetrics()
	}
	return s, nil
}

// GenerateFrames renders frames from a subset's domain distribution — the
// synthetic stand-in for reading dash-cam video (see DESIGN.md §1). Safe
// for concurrent use; concurrent callers draw from one seeded sequence.
func (s *Server) GenerateFrames(sub Subset, n int) []*Frame {
	s.genMu.Lock()
	defer s.genMu.Unlock()
	return s.gen.Dataset(sub, n)
}

// Bootstrap trains the DA-GAN projection and the heavyweight baseline
// detector, then assembles the drift pipeline. When boot is nil, bootstrap
// frames are generated from the full domain distribution (the paper trains
// on a held-out unlabeled split). The context is consulted between
// training phases; a second call — including one that overlaps a Bootstrap
// still training — returns ErrAlreadyBootstrapped. Training runs outside
// the server lock, so other methods stay responsive (and report
// ErrNotBootstrapped) while it is in progress.
func (s *Server) Bootstrap(ctx context.Context, boot []*Frame) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		return ErrServerClosed
	case s.booted, s.booting:
		s.mu.Unlock()
		return ErrAlreadyBootstrapped
	}
	s.booting = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.booting = false
		s.mu.Unlock()
	}()
	if err := ctx.Err(); err != nil {
		return err
	}
	if boot == nil {
		s.genMu.Lock()
		boot = s.gen.Dataset(synth.FullData, s.cfg.bootstrapFrames)
		s.genMu.Unlock()
	}

	enc := core.DownsampleEncoder(2)
	dgCfg := gan.Config{
		InputDim: core.EncodedDim(s.scene, 2),
		Latent:   16,
		Hidden:   []int{128, 48},
		LR:       0.001,
		Seed:     s.cfg.seed + 7,
		DType:    s.cfg.backend.dtype(),
	}
	dagan := core.TrainDAGAN(boot, enc, dgCfg, s.cfg.bootstrapEpochs, 32)
	if err := ctx.Err(); err != nil {
		return err
	}

	baseCfg := detect.YOLOConfig(s.scene.H, s.scene.W)
	baseCfg.Seed = s.cfg.seed + 9
	baseCfg.DType = s.cfg.backend.dtype()
	baseline := detect.NewGridDetector(baseCfg)
	baseline.Fit(detect.SamplesFromFrames(boot), s.cfg.baselineEpochs, 16)
	if err := ctx.Err(); err != nil {
		return err
	}

	pipeline, trainer, reg, batcher, err := s.assemble(dagan, baseline, nil, nil)
	if err != nil {
		return err
	}

	s.mu.Lock()
	if s.closed { // Close landed while training
		s.mu.Unlock()
		if trainer != nil {
			trainer.Close()
		}
		return ErrServerClosed
	}
	s.pipeline = pipeline
	s.dagan = dagan
	s.baseline = baseline
	s.batcher = batcher
	s.trainer = trainer
	s.registry = reg
	s.booted = true
	s.mu.Unlock()
	return nil
}

// assemble builds the drift pipeline, the fleet subsystem (trainer,
// registry, batcher) and the built-in query bindings around a trained
// substrate. When restored is non-nil the pipeline continues from that
// checkpoint snapshot instead of starting empty; regState, when non-nil,
// seeds a private fleet registry with checkpointed entries (ignored when
// the fleet shares a registry — that one is owned by the fleet, not this
// server's checkpoint).
func (s *Server) assemble(dagan *gan.DAGAN, baseline *detect.GridDetector, restored *core.PipelineState, regState *registry.State) (*core.Odin, *dispatch.Trainer, *registry.Registry, *dispatch.Batcher, error) {
	cfg := core.DefaultConfig(s.scene)
	cfg.Cluster.MaxClusters = s.cfg.maxModels
	cfg.Spec.DType = s.cfg.backend.dtype()
	cfg.DriftRecovery = s.cfg.driftRecovery
	cfg.AsyncTrain = s.cfg.trainAsync
	if s.cfg.labelDelay > 0 {
		cfg.Spec.LabelDelay = s.cfg.labelDelay
	}
	cfg.Selector.Policy, _ = s.cfg.policy.corePolicy() // validated by WithPolicy

	var pipeline *core.Odin
	if restored != nil {
		var err error
		pipeline, err = core.FromSnapshot(cfg, dagan, baseline, *restored)
		if err != nil {
			return nil, nil, nil, nil, err
		}
	} else {
		pipeline = core.New(cfg, dagan, baseline)
	}

	// The fleet subsystem: the trainer takes drift recoveries off the
	// serving path, the batcher merges Run-session windows across streams.
	var trainer *dispatch.Trainer
	var reg *registry.Registry
	if s.cfg.trainAsync {
		trainer = dispatch.NewTrainer(pipeline)
		trainer.SetObserver(s.obs)
		if fr := s.cfg.fleet; fr != nil {
			switch {
			case fr.Registry != nil:
				reg = fr.Registry.reg
			case regState != nil:
				var err error
				reg, err = registry.FromState(*regState)
				if err != nil {
					trainer.Close()
					return nil, nil, nil, nil, err
				}
			default:
				reg = registry.New(fr.Capacity)
			}
			pol := registry.Policy{AdoptDistance: fr.AdoptDistance, WarmDistance: fr.WarmDistance}
			source := fr.Source
			if source == "" {
				source = "server"
			}
			trainer.AttachRegistry(reg, source, pol)
		}
	}
	var batcher *dispatch.Batcher
	if s.cfg.dispatcher {
		batcher = dispatch.NewBatcher(pipeline, dispatch.Config{
			MaxBatch:  s.cfg.dispatchMaxBatch,
			MaxLinger: s.cfg.dispatchLinger,
			Workers:   s.cfg.workers,
		})
		batcher.SetObserver(s.obs)
	}
	pipeline.SetObserver(s.obs)

	// Built-in query models: the drift-aware pipeline (sharded + batched)
	// and the static baseline (batched forward pass).
	workers := s.cfg.workers
	s.engine.RegisterBatchModel("odin", func(frames []*synth.Frame) [][]detect.Detection {
		results := pipeline.ProcessBatch(frames, workers)
		dets := make([][]detect.Detection, len(results))
		for i, r := range results {
			dets[i] = r.Detections
		}
		return dets
	})
	s.engine.RegisterBatchModel("yolo", func(frames []*synth.Frame) [][]detect.Detection {
		imgs := make([]*synth.Image, len(frames))
		for i, f := range frames {
			imgs[i] = f.Image
		}
		return baseline.DetectBatch(imgs)
	})
	// COUNT projection pushdown: COUNT-only plans count inside the execute
	// stage instead of materialising detection boxes.
	s.engine.RegisterCountModel("odin", func(frames []*synth.Frame, class int, minScore float64) []int {
		return pipeline.CountBatch(frames, workers, class, minScore)
	})
	s.engine.RegisterCountModel("yolo", func(frames []*synth.Frame, class int, minScore float64) []int {
		imgs := make([]*synth.Image, len(frames))
		for i, f := range frames {
			imgs[i] = f.Image
		}
		return baseline.CountBatch(imgs, class, minScore)
	})
	return pipeline, trainer, reg, batcher, nil
}

// alive returns ErrServerClosed after Close, nil otherwise.
func (s *Server) alive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	return nil
}

// pipe returns the live pipeline or the reason there is none.
func (s *Server) pipe() (*core.Odin, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return nil, ErrServerClosed
	case !s.booted:
		return nil, ErrNotBootstrapped
	}
	return s.pipeline, nil
}

// OpenStream opens a processing session for one camera stream. Streams
// share the server's model set; Workers bounds the session's sharded
// fan-out. Returns ErrNotBootstrapped before Bootstrap.
func (s *Server) OpenStream(ctx context.Context, o StreamOptions) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, err := s.pipe(); err != nil {
		return nil, err
	}
	workers := o.Workers
	if workers <= 0 {
		workers = s.cfg.workers
	}
	maxBatch := o.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 4 * workers
		if maxBatch < 8 {
			maxBatch = 8
		}
	}
	buffer := o.Buffer
	if buffer <= 0 {
		buffer = maxBatch
	}
	weight := o.Weight
	if weight < 1 {
		weight = 1
	}
	return &Stream{
		srv:      s,
		name:     o.Name,
		workers:  workers,
		maxBatch: maxBatch,
		buffer:   buffer,
		weight:   weight,
		maxQueue: s.cfg.maxQueue,
		dropPol:  s.cfg.dropPolicy,
		adaptive: s.cfg.adaptive,
		done:     make(chan struct{}),
	}, nil
}

// Query parses, compiles and executes an aggregation query over frames —
// a thin parse-then-compile wrapper over PrepareSQL + Execute for one-shot
// calls; issue a query repeatedly via Prepare instead, which plans once.
// The built-in model names are "odin" (drift-aware pipeline, sharded
// across the server's worker budget) and "yolo" (static baseline,
// batched); more can be added with RegisterModel / RegisterFilter.
// Queries referencing only custom models run before Bootstrap; the
// built-in bindings require it. The context cancels execution between
// model invocations.
func (s *Server) Query(ctx context.Context, sql string, frames []*Frame) (*QueryResult, error) {
	pq, err := s.PrepareSQL(sql)
	if err != nil {
		return nil, err
	}
	return pq.Execute(ctx, frames)
}

// RegisterModel binds a custom per-frame detection model for USING MODEL
// clauses. May be called before Bootstrap; queries referencing only
// registered models are runnable immediately. The built-in names "odin"
// and "yolo" are reserved (ErrReservedModel) — continuous queries decide
// whether to reuse the stream's pipeline results by that binding.
func (s *Server) RegisterModel(name string, fn func(*Frame) []Detection) error {
	if builtinModel(name) {
		return fmt.Errorf("%w: %q", ErrReservedModel, name)
	}
	s.engine.RegisterModel(name, fn)
	return nil
}

// RegisterBatchModel binds a custom batch detection model, taking
// precedence over a per-frame binding of the same name. May be called
// before Bootstrap. Built-in names are reserved (ErrReservedModel).
func (s *Server) RegisterBatchModel(name string, fn func([]*Frame) [][]Detection) error {
	if builtinModel(name) {
		return fmt.Errorf("%w: %q", ErrReservedModel, name)
	}
	s.engine.RegisterBatchModel(name, fn)
	return nil
}

// RegisterFilter binds a custom frame pre-screen for USING FILTER clauses.
// May be called before Bootstrap.
func (s *Server) RegisterFilter(name string, fn func(*Frame) bool) {
	s.engine.RegisterFilter(name, fn)
}

// Stats returns pipeline telemetry. Before Bootstrap it is zero.
//
// Snapshot semantics: the snapshot is taken under the pipeline's single
// serialization lock, so it is internally consistent — the fidelity
// breakdown (FullFrames + LiteFrames + CountFrames + SkipFrames) always
// sums to Frames, and Outliers/DriftEvents/SimTime belong to the same
// instant. Every field is monotonically non-decreasing over the life of a
// bootstrapped server. While Run sessions are active a snapshot can lag
// the stream-side view (frames advance the pipeline before their results
// are emitted, and drop markers are ledgered as their batch drains); at
// quiescence — all Run sessions ended, WaitRecoveries drained — the
// server-level counters agree exactly with the per-stream ledgers: in
// particular Stats().Dropped equals the sum of Stream.QoS().Dropped over
// the streams that ever ran.
func (s *Server) Stats() Stats {
	p, err := s.pipe()
	if err != nil {
		return Stats{}
	}
	return p.Stats()
}

// MemoryMB returns the simulated resident model memory (0 before
// Bootstrap).
func (s *Server) MemoryMB() float64 {
	p, err := s.pipe()
	if err != nil {
		return 0
	}
	return p.MemoryMB()
}

// NumClusters returns the number of discovered concept clusters.
func (s *Server) NumClusters() int {
	p, err := s.pipe()
	if err != nil {
		return 0
	}
	return p.NumClusters()
}

// NumModels returns the number of resident specialized models.
func (s *Server) NumModels() int {
	p, err := s.pipe()
	if err != nil {
		return 0
	}
	return p.NumModels()
}

// ModelGen returns the model-set generation: it increments every time a
// trained model is swapped in (inline or async), and every StreamResult
// carries the generation that served it. 0 before Bootstrap.
func (s *Server) ModelGen() uint64 {
	p, err := s.pipe()
	if err != nil {
		return 0
	}
	return p.ModelGen()
}

// PendingRecoveries returns the number of drift recoveries scheduled but
// not yet swapped in. Always 0 with inline training (WithTrainAsync off).
func (s *Server) PendingRecoveries() int {
	p, err := s.pipe()
	if err != nil {
		return 0
	}
	return p.PendingRecoveries()
}

// WaitRecoveries blocks until every scheduled drift recovery has been
// swapped in or rolled back, or ctx is done. With inline training (or
// before Bootstrap) it returns nil immediately.
func (s *Server) WaitRecoveries(ctx context.Context) error {
	s.mu.Lock()
	tr := s.trainer
	s.mu.Unlock()
	if tr == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return tr.Wait(ctx)
}

// dispatcher returns the fleet batcher Run sessions route through (nil
// when WithDispatcher is off or Bootstrap has not run).
func (s *Server) dispatcher() *dispatch.Batcher {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batcher
}

// Close marks the server closed. Subsequent Bootstrap, OpenStream, Query
// and Stream operations return ErrServerClosed; in-flight frames finish.
// The async trainer (if any) is stopped deterministically: queued
// recoveries are dropped and roll back to the prior model, a job
// mid-training finishes and lands, and Close blocks until that drain is
// complete. Close → Checkpoint is therefore a valid shutdown sequence:
// Checkpoint is the one post-Close operation that still works, and a
// checkpoint taken after Close captures the final quiescent model set (no
// in-flight trainer jobs, PendingRecoveries == 0). See DESIGN.md §10.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	tr := s.trainer
	s.mu.Unlock()
	if tr != nil {
		tr.Close()
	}
	return nil
}
