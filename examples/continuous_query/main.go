// Continuous queries: attach a standing car-counting query to a live
// camera stream. The query is built with the typed builder, compiled once
// into a plan (printed via Explain), and subscribed to the stream — each
// window of frames emits one aggregate, computed from the same sharded
// pipeline results that serve the stream itself, so detection runs once
// per window no matter how many standing queries share the camera.
package main

import (
	"context"
	"fmt"
	"log"

	"odin"
)

func main() {
	srv, err := odin.New(
		odin.WithSeed(11),
		odin.WithBootstrapFrames(300),
		odin.WithBootstrapEpochs(4),
		odin.WithBaselineEpochs(15),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Println("bootstrapping...")
	if err := srv.Bootstrap(ctx, nil); err != nil {
		log.Fatal(err)
	}

	// Build and compile the standing query once.
	q := odin.Select(odin.Count).
		From("cam-0").
		UsingModel("odin").
		Where(odin.Class("car"))
	pq, err := srv.Prepare(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\nplan:  %s\n\n", pq.SQL(), pq.Explain())

	stream, err := srv.OpenStream(ctx, odin.StreamOptions{Name: "cam-0"})
	if err != nil {
		log.Fatal(err)
	}
	windows, err := stream.Subscribe(ctx, pq, odin.WindowOptions{Size: 25})
	if err != nil {
		log.Fatal(err)
	}

	// A drifting feed: night, then day, then snow — drift events recover
	// mid-subscription and the standing query keeps counting.
	in := make(chan *odin.Frame, 32)
	go func() {
		defer close(in)
		for _, sub := range []odin.Subset{odin.NightData, odin.DayData, odin.SnowData} {
			for _, f := range srv.GenerateFrames(sub, 75) {
				in <- f
			}
		}
	}()

	// Drain the per-frame results concurrently (they share the channel
	// budget with the subscription) and count drift events.
	drift := make(chan int)
	go func() {
		n := 0
		for res := range stream.Run(ctx, in) {
			if res.Drift != nil {
				n++
			}
		}
		drift <- n
	}()

	fmt.Println("window   frames    cars  cars/frame")
	total, frames := 0, 0
	for wr := range windows {
		n := wr.EndSeq - wr.StartSeq + 1
		total += wr.Count
		frames += n
		fmt.Printf("  %3d  [%3d-%3d]  %5d  %10.2f\n",
			wr.Window, wr.StartSeq, wr.EndSeq, wr.Count, float64(wr.Count)/float64(n))
	}
	fmt.Printf("\ntotal: %d cars in %d frames, %d drift events, %d clusters, %d specialist models\n",
		total, frames, <-drift, srv.NumClusters(), srv.NumModels())
}
