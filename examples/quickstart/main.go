// Quickstart: bootstrap an ODIN system, stream drifting dash-cam frames
// through it, and watch it detect drift and deploy specialized models.
package main

import (
	"fmt"
	"log"

	"odin"
)

func main() {
	// A small system: quick bootstrap budgets so this runs in ~a minute.
	sys, err := odin.New(odin.Options{
		Seed:            42,
		BootstrapFrames: 300,
		BootstrapEpochs: 4,
		BaselineEpochs:  15,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("bootstrapping (training DA-GAN projection + baseline detector)...")
	if err := sys.Bootstrap(nil); err != nil {
		log.Fatal(err)
	}

	// Phase 1: clear day-time driving. ODIN discovers its first concept
	// cluster and trains a specialist for it.
	fmt.Println("phase 1: streaming DAY frames")
	for _, f := range sys.GenerateFrames(odin.DayData, 400) {
		r := sys.Process(f)
		if r.Drift != nil {
			fmt.Printf("  drift detected at frame %d: new cluster %s\n",
				sys.Stats().Frames, r.Drift.Cluster.Label)
		}
	}

	// Phase 2: night falls — the input distribution shifts. ODIN detects
	// the drift and recovers with a night specialist.
	fmt.Println("phase 2: streaming NIGHT frames (drift!)")
	for _, f := range sys.GenerateFrames(odin.NightData, 400) {
		r := sys.Process(f)
		if r.Drift != nil {
			fmt.Printf("  drift detected at frame %d: new cluster %s\n",
				sys.Stats().Frames, r.Drift.Cluster.Label)
		}
	}

	st := sys.Stats()
	fmt.Println()
	fmt.Printf("frames processed:   %d\n", st.Frames)
	fmt.Printf("drift events:       %d\n", st.DriftEvents)
	fmt.Printf("clusters found:     %d\n", sys.NumClusters())
	fmt.Printf("specialist models:  %d\n", sys.NumModels())
	fmt.Printf("simulated FPS:      %.0f\n", st.FPS())
	fmt.Printf("model memory:       %.0f MB\n", sys.MemoryMB())
}
