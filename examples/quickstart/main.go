// Quickstart: boot an ODIN server, open a camera stream session, and
// watch the pipeline detect drift and deploy specialized models as the
// scene shifts from day to night.
package main

import (
	"context"
	"fmt"
	"log"

	"odin"
)

func main() {
	// A small server: quick bootstrap budgets so this runs in ~a minute.
	srv, err := odin.New(
		odin.WithSeed(42),
		odin.WithBootstrapFrames(300),
		odin.WithBootstrapEpochs(4),
		odin.WithBaselineEpochs(15),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("bootstrapping (training DA-GAN projection + baseline detector)...")
	if err := srv.Bootstrap(ctx, nil); err != nil {
		log.Fatal(err)
	}

	// One session for our single camera. Workers: 4 shards the per-frame
	// project→select→detect stages; results come back in frame order and
	// are identical to sequential processing.
	stream, err := srv.OpenStream(ctx, odin.StreamOptions{Name: "dash-cam", Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()

	// Phase 1: clear day-time driving — ODIN discovers its first concept
	// cluster. Phase 2: night falls, the input distribution shifts, ODIN
	// detects the drift and recovers with a night specialist.
	in := make(chan *odin.Frame, 32)
	go func() {
		defer close(in)
		for _, phase := range []odin.Subset{odin.DayData, odin.NightData} {
			fmt.Printf("streaming %v frames...\n", phase)
			for _, f := range srv.GenerateFrames(phase, 400) {
				in <- f
			}
		}
	}()

	for r := range stream.Run(ctx, in) {
		if r.Drift != nil {
			fmt.Printf("  drift detected at frame %d: new cluster %s\n",
				r.Seq+1, r.Drift.Cluster.Label)
		}
	}

	st := srv.Stats()
	fmt.Println()
	fmt.Printf("frames processed:   %d\n", st.Frames)
	fmt.Printf("drift events:       %d\n", st.DriftEvents)
	fmt.Printf("clusters found:     %d\n", srv.NumClusters())
	fmt.Printf("specialist models:  %d\n", srv.NumModels())
	fmt.Printf("simulated FPS:      %.0f\n", st.FPS())
	fmt.Printf("model memory:       %.0f MB\n", srv.MemoryMB())
}
