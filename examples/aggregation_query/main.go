// Aggregation queries: run the paper's §6.6 car-counting SQL over a
// drifting frame stream, comparing the static baseline model against the
// drift-aware ODIN pipeline (sharded across the server's worker budget).
package main

import (
	"context"
	"fmt"
	"log"

	"odin"
)

func main() {
	srv, err := odin.New(
		odin.WithSeed(7),
		odin.WithBootstrapFrames(300),
		odin.WithBootstrapEpochs(4),
		odin.WithBaselineEpochs(15),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Println("bootstrapping...")
	if err := srv.Bootstrap(ctx, nil); err != nil {
		log.Fatal(err)
	}

	// Warm the pipeline so drift recovery has produced specialists.
	fmt.Println("warming the pipeline on a drifting stream...")
	warm, err := srv.OpenStream(ctx, odin.StreamOptions{Name: "warmup"})
	if err != nil {
		log.Fatal(err)
	}
	in := make(chan *odin.Frame, 32)
	go func() {
		defer close(in)
		for _, sub := range []odin.Subset{odin.DayData, odin.NightData} {
			for _, f := range srv.GenerateFrames(sub, 350) {
				in <- f
			}
		}
	}()
	for range warm.Run(ctx, in) {
	}
	warm.Close()
	fmt.Printf("clusters: %d, specialist models: %d\n\n", srv.NumClusters(), srv.NumModels())

	// The query target: a fresh mixed-condition stream.
	frames := srv.GenerateFrames(odin.FullData, 120)

	// Ground truth for reference.
	trueCars := 0
	for _, f := range frames {
		for _, b := range f.Boxes {
			if b.Class == odin.ClassCar {
				trueCars++
			}
		}
	}
	fmt.Printf("ground truth: %d cars in %d frames\n\n", trueCars, len(frames))

	for _, model := range []string{"yolo", "odin"} {
		sql := fmt.Sprintf(
			"SELECT COUNT(detections) FROM stream USING MODEL %s WHERE class='car'", model)
		fmt.Println(sql)
		res, err := srv.Query(ctx, sql, frames)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  → %d cars (model frames: %d)\n\n", res.Count, res.ModelFrames)
	}

	// Nested form with a custom filter: only process frames a cheap
	// pre-screen says contain trucks.
	srv.RegisterFilter("truck_filter", func(f *odin.Frame) bool {
		// Toy filter for the example: pass frames whose ground truth has a
		// truck (a trained FilterNet plays this role in the benchmarks).
		for _, b := range f.Boxes {
			if b.Class == odin.ClassTruck {
				return true
			}
		}
		return false
	})
	sql := `SELECT COUNT(detections)
	        FROM (SELECT * FROM stream USING FILTER truck_filter)
	        USING MODEL odin WHERE class='truck'`
	res, err := srv.Query(ctx, sql, frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("filtered truck query:")
	fmt.Printf("  → %d trucks, %.0f%% of frames skipped by the filter\n",
		res.Count, res.DataReduction()*100)
}
