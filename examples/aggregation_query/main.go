// Aggregation queries: run the paper's §6.6 car-counting SQL over a
// drifting frame stream, comparing the static baseline model against the
// drift-aware ODIN pipeline.
package main

import (
	"fmt"
	"log"

	"odin"
)

func main() {
	sys, err := odin.New(odin.Options{
		Seed:            7,
		BootstrapFrames: 300,
		BootstrapEpochs: 4,
		BaselineEpochs:  15,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bootstrapping...")
	if err := sys.Bootstrap(nil); err != nil {
		log.Fatal(err)
	}

	// Warm the pipeline so drift recovery has produced specialists.
	fmt.Println("warming the pipeline on a drifting stream...")
	for _, sub := range []odin.Subset{odin.DayData, odin.NightData} {
		for _, f := range sys.GenerateFrames(sub, 350) {
			sys.Process(f)
		}
	}
	fmt.Printf("clusters: %d, specialist models: %d\n\n", sys.NumClusters(), sys.NumModels())

	// The query target: a fresh mixed-condition stream.
	frames := sys.GenerateFrames(odin.FullData, 120)

	// Ground truth for reference.
	trueCars := 0
	for _, f := range frames {
		for _, b := range f.Boxes {
			if b.Class == odin.ClassCar {
				trueCars++
			}
		}
	}
	fmt.Printf("ground truth: %d cars in %d frames\n\n", trueCars, len(frames))

	for _, model := range []string{"yolo", "odin"} {
		sql := fmt.Sprintf(
			"SELECT COUNT(detections) FROM stream USING MODEL %s WHERE class='car'", model)
		fmt.Println(sql)
		res, err := sys.Query(sql, frames)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  → %d cars (model frames: %d)\n\n", res.Count, res.ModelFrames)
	}

	// Nested form with a custom filter: only process frames a cheap
	// pre-screen says contain trucks.
	sys.RegisterFilter("truck_filter", func(f *odin.Frame) bool {
		// Toy filter for the example: pass frames whose ground truth has a
		// truck (a trained FilterNet plays this role in the benchmarks).
		for _, b := range f.Boxes {
			if b.Class == odin.ClassTruck {
				return true
			}
		}
		return false
	})
	sql := `SELECT COUNT(detections)
	        FROM (SELECT * FROM stream USING FILTER truck_filter)
	        USING MODEL odin WHERE class='truck'`
	res, err := sys.Query(sql, frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("filtered truck query:")
	fmt.Printf("  → %d trucks, %.0f%% of frames skipped by the filter\n",
		res.Count, res.DataReduction()*100)
}
