// Load-adaptive serving under overload: four cameras with mixed frame
// rates burst at ~4x what the server can sustain at full fidelity. Every
// stream has a bounded admission queue (no silent unbounded buffering),
// and the adaptive controller walks each overloaded stream down the
// fidelity ladder — lite model, count pushdown, subsampled counts — until
// service matches the offered rate, then restores full fidelity as the
// burst subsides.
//
// The demo prints each camera's open-loop p99 latency (measured from the
// frame's *scheduled* send time, so queueing delay counts), its fidelity
// mix, and the controller's level transitions. Compare a run with
// adaptive off (edit the WithAdaptiveFidelity line away, keeping
// WithMaxQueue): the same load then backs up the bounded queues and the
// p99 climbs by an order of magnitude.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"odin"
)

const cameras = 4

// shares is each camera's fraction of the offered load: a multi-rate
// fleet, so the hot cameras degrade deep while the cold ones barely do.
var shares = []float64{0.4, 0.3, 0.2, 0.1}

func main() {
	ctx := context.Background()
	fmt.Println("bootstrapping (seed 7)...")
	srv, err := odin.New(
		odin.WithSeed(7),
		odin.WithBootstrapFrames(150),
		odin.WithBootstrapEpochs(2),
		odin.WithBaselineEpochs(6),
		odin.WithTrainAsync(true),
		odin.WithMaxQueue(64),                              // bounded admission: overload is explicit
		odin.WithAdaptiveFidelity(odin.AdaptiveFidelity{}), // default watermarks + hysteresis
		odin.WithObservability(true),                       // metrics + lifecycle events, ~free
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Bootstrap(ctx, nil); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Calibrate the full-fidelity service rate with one unpaced stream,
	// then offer 4x that across the fleet.
	calib := srv.GenerateFrames(odin.FullData, 64)
	st, err := srv.OpenStream(ctx, odin.StreamOptions{Name: "calib", MaxBatch: 8, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	in := make(chan *odin.Frame, len(calib))
	for _, f := range calib {
		in <- f
	}
	close(in)
	start := time.Now()
	for range st.Run(ctx, in) {
	}
	rate := float64(len(calib)) / time.Since(start).Seconds()
	fmt.Printf("calibrated service rate: %.0f frames/sec at full fidelity; offering ~4x in bursts\n\n", rate)

	var wg sync.WaitGroup
	for c := 0; c < cameras; c++ {
		frames := srv.GenerateFrames(odin.FullData, int(shares[c]*480)+96)
		st, err := srv.OpenStream(ctx, odin.StreamOptions{
			Name:     fmt.Sprintf("cam-%d", c),
			MaxBatch: 8, Workers: 2, Buffer: 128,
			Weight: 1 + int(shares[c]*10), // hot cameras get more flush budget
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(c int, st *odin.Stream, frames []*odin.Frame) {
			defer wg.Done()
			sched := make([]time.Time, len(frames))
			pos := make(map[int]int, len(frames))
			for k, f := range frames {
				pos[f.Index] = k
			}
			in := make(chan *odin.Frame, 1)
			out := st.Run(ctx, in)

			go func() { // feeder: bursty absolute schedule, 4x overload
				defer close(in)
				gap := time.Duration(float64(time.Second) / (4 * shares[c] * rate))
				next := time.Now()
				for k, f := range frames {
					g := gap
					switch {
					case k >= len(frames)-96:
						g = time.Duration(float64(time.Second) * 16 / rate) // cool-down
					case ((k/20)+c)%2 == 0:
						g = gap / 2 // burst
					default:
						g = gap * 3 / 2 // lull
					}
					next = next.Add(g)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					sched[k] = next
					in <- f // blocks when the admission queue is full
				}
			}()

			var lat []float64
			fid := map[string]int{}
			for r := range out {
				lat = append(lat, float64(time.Since(sched[pos[r.Frame.Index]]).Microseconds())/1000)
				fid[r.Fidelity.String()]++
			}
			sort.Float64s(lat)
			q := st.QoS()
			fmt.Printf("cam-%d (%2.0f%% of load): %3d frames, p99 %7.1f ms, fidelity %v, %d level transitions (final level %d)\n",
				c, shares[c]*100, len(lat), lat[int(0.99*float64(len(lat)))], fid, q.Transitions, q.Level)
		}(c, st, frames)
	}
	wg.Wait()
	if err := srv.WaitRecoveries(ctx); err != nil {
		log.Fatal(err)
	}

	s := srv.Stats()
	fmt.Printf("\nserver fidelity ledger: %d full + %d lite + %d count + %d skip, %d dropped\n",
		s.FullFrames, s.LiteFrames, s.CountFrames, s.SkipFrames, s.Dropped)
	fmt.Println("every offered frame is accounted for: admission is bounded and explicit, loss is never silent.")

	// The same story, as the monitoring stack would see it: the Prometheus
	// exposition odin-serve exports at /metrics, filtered to the QoS and
	// fidelity families, plus the tail of the lifecycle-event ring.
	var page strings.Builder
	if err := srv.WriteMetrics(&page); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmetrics snapshot after the burst (filtered /metrics exposition):")
	for _, line := range strings.Split(page.String(), "\n") {
		if strings.HasPrefix(line, "odin_fidelity_frames_total") ||
			strings.HasPrefix(line, "odin_qos_") ||
			strings.HasPrefix(line, "odin_events_total") {
			fmt.Println("  " + line)
		}
	}
	events := srv.RecentEvents(6)
	fmt.Printf("last %d lifecycle events:\n", len(events))
	for _, e := range events {
		fmt.Printf("  #%d %-18s stream=%-6q %s\n", e.Seq, e.Kind, e.Stream, e.Detail)
	}
}
