// Drift detection in isolation: train a DA-GAN on one set of digit
// classes, then watch the ∆-band DETECTOR separate inliers from a drifting
// stream that introduces unseen classes — the paper's §4 pipeline on the
// MNIST-like substrate.
package main

import (
	"fmt"

	"odin/internal/cluster"
	"odin/internal/gan"
	"odin/internal/synth"
)

func main() {
	// Train the DA-GAN on thin slanted digits (1, 7) only — the "known world".
	known := []int{1, 7} // thin, slanted strokes — one visual concept
	train := rows(synth.DigitDataset(1, known, 120))
	cfg := gan.Config{InputDim: len(train[0]), Latent: 16, Hidden: []int{128, 48}, LR: 0.002, Seed: 5}
	fmt.Println("training DA-GAN on digits 1 and 7...")
	dg := gan.NewDAGAN(cfg)
	dg.Fit(train, 12, 32)

	// Stream known digits: a stable concept cluster should form.
	ccfg := cluster.DefaultConfig()
	ccfg.MinPoints = 50
	ccfg.StabilitySteps = 15
	set := cluster.NewSet(ccfg)

	fmt.Println("streaming known digits...")
	for _, li := range synth.DigitDataset(2, known, 150) {
		a := set.Observe(dg.Project(li.Image.Flat()))
		if a.Drift != nil {
			fmt.Printf("  cluster %s formed after %d points (band %v)\n",
				a.Drift.Cluster.Label, set.Seen(), a.Drift.Cluster.Band())
		}
	}

	// Now drift: digit 8 appears. Its projections fall outside the known
	// cluster's ∆-band, accumulate in the temporary cluster, stabilise,
	// and get promoted — that promotion is the drift signal.
	fmt.Println("streaming unseen digit 8 (drift)...")
	for _, li := range synth.DigitDataset(3, []int{8}, 150) {
		a := set.Observe(dg.Project(li.Image.Flat()))
		if a.Drift != nil {
			fmt.Printf("  DRIFT: new concept cluster %s at point %d\n",
				a.Drift.Cluster.Label, set.Seen())
		}
	}

	fmt.Printf("\npermanent clusters: %d, drift events: %d\n",
		len(set.Permanent), len(set.Events()))
	for _, c := range set.Permanent {
		fmt.Printf("  %s: %d points, ∆-band %v\n", c.Label, c.Size(), c.Band())
	}
}

func rows(ds []synth.LabeledImage) [][]float64 {
	out := make([][]float64, len(ds))
	for i, li := range ds {
		out[i] = li.Image.Flat()
	}
	return out
}
