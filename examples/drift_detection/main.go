// Drift detection end to end on the public API: bootstrap a Server on one
// environment (night dash-cam scenes — the "known world"), then feed a
// channel of frames that drifts into unseen conditions through a sharded
// Stream session. The ∆-band DETECTOR flags the new concepts as they
// stabilise, the SPECIALIZER trains models for them, and every drift event
// arrives on the result channel as Result.Drift — the paper's §4 pipeline
// behind odin.Server / odin.Stream.
package main

import (
	"context"
	"fmt"
	"log"

	"odin"
)

func main() {
	ctx := context.Background()

	srv, err := odin.New(
		odin.WithSeed(5),
		odin.WithBootstrapFrames(300),
		odin.WithBootstrapEpochs(4),
		odin.WithBaselineEpochs(12),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Train the DA-GAN projection and the baseline on night scenes only,
	// so day and snow are genuinely out of distribution.
	fmt.Println("bootstrapping on night scenes (the known world)...")
	if err := srv.Bootstrap(ctx, srv.GenerateFrames(odin.NightData, 300)); err != nil {
		log.Fatal(err)
	}

	stream, err := srv.OpenStream(ctx, odin.StreamOptions{Name: "cam-0", Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// The camera first sees more night (a stable concept cluster forms),
	// then the scene drifts: dawn breaks. After the drift event the
	// SPECIALIZER's day model is resident, so the final phase shows
	// recovery — day frames now served by the specialized model instead of
	// the heavyweight baseline.
	phases := []struct {
		name   string
		subset odin.Subset
		frames int
	}{
		{"night (stable)", odin.NightData, 150},
		{"day (drift)", odin.DayData, 150},
		{"day again (recovered)", odin.DayData, 100},
	}
	boundary := map[int]string{}
	start := 0
	for _, ph := range phases {
		boundary[start] = ph.name
		start += ph.frames
	}

	in := make(chan *odin.Frame)
	go func() {
		defer close(in)
		for _, ph := range phases {
			for _, f := range srv.GenerateFrames(ph.subset, ph.frames) {
				in <- f
			}
		}
	}()

	lastPhase := start - phases[len(phases)-1].frames
	served := map[string]int{}
	for res := range stream.Run(ctx, in) {
		if name, ok := boundary[res.Seq]; ok {
			fmt.Printf("--- streaming %s ---\n", name)
		}
		if res.Drift != nil {
			fmt.Printf("  DRIFT at frame %d: cluster %s promoted (%d seed frames) -> specializing\n",
				res.Seq, res.Drift.Cluster.Label, res.Drift.NumSeeds)
		}
		if res.Seq >= lastPhase {
			for _, m := range res.ModelsUsed {
				served[m]++
			}
		}
	}
	fmt.Printf("  models serving the recovered phase: %v\n", served)

	stats := srv.Stats()
	fmt.Printf("\nframes: %d, outliers: %d, drift events: %d\n",
		stats.Frames, stats.Outliers, stats.DriftEvents)
	fmt.Printf("permanent clusters: %d, specialized models resident: %d (%.1f MB simulated)\n",
		srv.NumClusters(), srv.NumModels(), srv.MemoryMB())
}
