// Fleet recovery end to end: four cameras, each with its OWN server (own
// drift detector, own cluster state, own stream of frames), share one
// model registry. The fleet bootstraps on the same night frames with the
// same seed, so all four latent substrates are comparable — the
// shared-substrate requirement of DESIGN.md §9. Dawn then breaks on every
// camera. The first camera to reach the new regime claims it in the
// registry and trains the recovery from scratch; the cameras behind it
// resolve the same regime signature and either adopt the published model
// outright or coalesce onto the in-flight build — one training serves the
// whole fleet instead of four.
//
// The tail of the run prints each camera's trainer breakdown
// (scratch/adopted/coalesced/warm) and the shared registry counters, so
// you can see the single scratch build and the three reuses.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"odin"
)

const (
	cameras   = 4
	dayFrames = 260
)

// newCamera builds one camera server wired to the shared registry. Every
// camera uses the same seed: regime signatures live in the bootstrap
// DA-GAN's latent space, so they are only comparable between servers that
// bootstrapped identically.
func newCamera(reg *odin.ModelRegistry, name string) *odin.Server {
	srv, err := odin.New(
		odin.WithSeed(29),
		odin.WithBootstrapFrames(150),
		odin.WithBootstrapEpochs(2),
		odin.WithBaselineEpochs(6),
		odin.WithLabelDelay(10000), // keep this demo on the fast distilled recovery
		odin.WithFleetRecovery(odin.FleetRecovery{Registry: reg, Source: name}),
	)
	if err != nil {
		log.Fatal(err)
	}
	return srv
}

func main() {
	ctx := context.Background()
	reg := odin.NewModelRegistry(16)

	srvs := make([]*odin.Server, cameras)
	for c := range srvs {
		srvs[c] = newCamera(reg, fmt.Sprintf("cam-%d", c))
	}

	// Identical boot frames on every camera → identical latent substrate.
	// Bootstrapping on night only makes dawn genuinely out of distribution.
	fmt.Println("bootstrapping 4 camera servers on the same night scenes...")
	boot := srvs[0].GenerateFrames(odin.NightData, 150)
	for _, srv := range srvs {
		if err := srv.Bootstrap(ctx, boot); err != nil {
			log.Fatal(err)
		}
	}

	// Each camera gets its own day draw: same regime, different frames.
	camFrames := make([][]*odin.Frame, cameras)
	for c := range camFrames {
		camFrames[c] = srvs[0].GenerateFrames(odin.DayData, dayFrames)
	}

	fmt.Printf("dawn breaks on all %d cameras (shared model registry)...\n", cameras)
	var wg sync.WaitGroup
	for c := range srvs {
		st, err := srvs[c].OpenStream(ctx, odin.StreamOptions{Name: fmt.Sprintf("cam-%d", c), Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(c int, st *odin.Stream, frames []*odin.Frame) {
			defer wg.Done()
			for i, f := range frames {
				res, err := st.Process(ctx, f)
				if err != nil {
					log.Fatal(err)
				}
				if res.Drift != nil {
					fmt.Printf("  DRIFT on cam-%d at frame %d: cluster %s promoted -> fleet recovery scheduled\n",
						c, i, res.Drift.Cluster.Label)
				}
			}
		}(c, st, camFrames[c])
	}
	wg.Wait()

	// Serving is done; let every recovery land (or attach to one that did).
	for _, srv := range srvs {
		if err := srv.WaitRecoveries(ctx); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nper-camera trainer breakdown (trained = scratch + adopted + coalesced + warm):")
	for c, srv := range srvs {
		ts := srv.TrainerStats()
		fmt.Printf("  cam-%d: %d trained = %d scratch + %d adopted + %d coalesced + %d warm   (gen %d, %d drift events)\n",
			c, ts.Trained, ts.Scratch, ts.Adopted, ts.Coalesced, ts.Warm,
			srv.ModelGen(), srv.Stats().DriftEvents)
	}
	rst := reg.Stats()
	fmt.Printf("shared registry: %d lookups -> %d miss (built), %d adopt + %d coalesce + %d warm (reused); %d models published\n",
		rst.Lookups, rst.Misses, rst.AdoptHits, rst.Coalesced, rst.WarmHits, rst.Published)
	fmt.Println("one scratch training recovered the whole fleet.")

	for _, srv := range srvs {
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
