// Fleet mode end to end: four cameras share one server through the fleet
// dispatcher, and one drift recovery — trained asynchronously, off the
// serving path — rescues all of them at once. The server bootstraps on
// night scenes; dawn then breaks on every camera simultaneously. The
// drift DETECTOR promotes a single shared day concept, the async trainer
// builds its specialized model in the background while every camera keeps
// streaming on the previous-best model (frames flagged RecoveryPending),
// and the swap lands for the whole fleet in one atomic pointer update —
// visible as the model generation stepping from 0 to 1 on every stream.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"odin"
)

const (
	cameras     = 4
	nightFrames = 80
	dayFrames   = 700
)

func main() {
	ctx := context.Background()

	srv, err := odin.New(
		odin.WithSeed(9),
		odin.WithBootstrapFrames(300),
		odin.WithBootstrapEpochs(4),
		odin.WithBaselineEpochs(12),
		odin.WithDispatcher(true),  // merge the cameras' windows into shared batches
		odin.WithTrainAsync(true),  // recoveries train off the serving path
		odin.WithLabelDelay(10000), // keep this demo on the fast distilled recovery
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("bootstrapping on night scenes (the known world)...")
	if err := srv.Bootstrap(ctx, srv.GenerateFrames(odin.NightData, 300)); err != nil {
		log.Fatal(err)
	}

	// Every camera streams the same story: night, then dawn breaks.
	camFrames := make([][]*odin.Frame, cameras)
	for c := range camFrames {
		camFrames[c] = append(srv.GenerateFrames(odin.NightData, nightFrames),
			srv.GenerateFrames(odin.DayData, dayFrames)...)
	}

	type camStats struct {
		frames, interim int
		drifts          int
		lastInterim     int // last frame still served by the previous-best model
	}
	stats := make([]camStats, cameras)

	fmt.Printf("streaming %d cameras through dawn (fleet-dispatched, async recovery)...\n", cameras)
	var wg sync.WaitGroup
	for c := 0; c < cameras; c++ {
		st, err := srv.OpenStream(ctx, odin.StreamOptions{Name: fmt.Sprintf("cam-%d", c)})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(c int, st *odin.Stream, frames []*odin.Frame) {
			defer wg.Done()
			in := make(chan *odin.Frame, len(frames))
			for _, f := range frames {
				in <- f
			}
			close(in)
			s := &stats[c]
			s.lastInterim = -1
			for res := range st.Run(ctx, in) {
				s.frames++
				if res.Drift != nil {
					s.drifts++
					fmt.Printf("  DRIFT detected on cam-%d at frame %d: cluster %s promoted -> async recovery scheduled\n",
						c, res.Seq, res.Drift.Cluster.Label)
				}
				if res.RecoveryPending {
					s.interim++ // served by the previous-best model while training
					s.lastInterim = res.Seq
				}
			}
		}(c, st, camFrames[c])
	}
	wg.Wait()

	// Serving is done; let any recovery still training land.
	if err := srv.WaitRecoveries(ctx); err != nil {
		log.Fatal(err)
	}

	total := srv.Stats()
	fmt.Printf("\nfleet: %d frames across %d cameras, %d drift events, %d recovered models resident (%.1f MB simulated)\n",
		total.Frames, cameras, total.DriftEvents, srv.NumModels(), srv.MemoryMB())
	fmt.Printf("model generation: %d — each recovery is one atomic swap serving every camera\n", srv.ModelGen())
	for c, s := range stats {
		swap := "the recoveries landed after its stream ended"
		if s.lastInterim >= 0 && s.lastInterim < s.frames-1 {
			swap = fmt.Sprintf("fully recovered from frame %d", s.lastInterim+1)
		}
		fmt.Printf("  cam-%d: %d frames, %d interim (previous-best) frames during recovery, %s\n",
			c, s.frames, s.interim, swap)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
