// Command odin-query executes an aggregation query against a generated
// dash-cam stream, using either the static baseline or the drift-aware
// ODIN pipeline (sharded across the server's worker budget). The query is
// prepared once — parse → plan → execute — and -explain prints the
// compiled plan instead of running it.
//
// Example:
//
//	odin-query -n 200 "SELECT COUNT(detections) FROM stream USING MODEL odin WHERE class='car'"
//	odin-query -explain "SELECT COUNT(detections) FROM (SELECT * FROM stream USING FILTER f) USING MODEL odin"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"odin"
	"odin/internal/query"
	"odin/internal/synth"
)

func main() {
	n := flag.Int("n", 200, "number of frames to generate")
	subset := flag.String("subset", "full", "frame distribution: full, day, night, rain, snow")
	seed := flag.Uint64("seed", 5, "random seed")
	warm := flag.Int("warm", 400, "warm-up frames per phase before querying (builds specialists)")
	explain := flag.Bool("explain", false, "print the compiled execution plan and exit without running")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: odin-query [flags] \"SELECT ...\"")
		os.Exit(2)
	}
	sql := flag.Arg(0)

	sub := map[string]odin.Subset{
		"full": odin.FullData, "day": odin.DayData, "night": odin.NightData,
		"rain": odin.RainData, "snow": odin.SnowData,
	}[*subset]

	srv, err := odin.New(
		odin.WithSeed(*seed),
		odin.WithBootstrapFrames(300),
		odin.WithBootstrapEpochs(4),
		odin.WithBaselineEpochs(20),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Fprintln(os.Stderr, "bootstrapping...")
	if err := srv.Bootstrap(ctx, nil); err != nil {
		log.Fatal(err)
	}

	// Prepare once: references are validated and the plan is compiled
	// before any frame is generated or processed.
	prepared, err := srv.PrepareSQL(sql)
	if err != nil {
		log.Fatal(err)
	}
	if *explain {
		fmt.Printf("query: %s\nplan:  %s\n", prepared.SQL(), prepared.Explain())
		return
	}

	if *warm > 0 {
		fmt.Fprintln(os.Stderr, "warming the pipeline (drift recovery)...")
		stream, err := srv.OpenStream(ctx, odin.StreamOptions{Name: "warmup"})
		if err != nil {
			log.Fatal(err)
		}
		in := make(chan *odin.Frame, 64)
		go func() {
			defer close(in)
			for _, s := range []odin.Subset{odin.DayData, odin.NightData} {
				for _, f := range srv.GenerateFrames(s, *warm) {
					in <- f
				}
			}
		}()
		for range stream.Run(ctx, in) {
		}
		stream.Close()
	}

	frames := srv.GenerateFrames(sub, *n)
	res, err := prepared.Execute(ctx, frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:    %s\n", sql)
	fmt.Printf("plan:     %s\n", prepared.Explain())
	fmt.Printf("frames:   %d scanned, %d filtered, %d processed by model\n",
		res.FramesScanned, res.FramesFiltered, res.ModelFrames)
	fmt.Printf("count:    %d\n", res.Count)
	if res.FramesFiltered > 0 {
		fmt.Printf("reduction: %.0f%%\n", res.DataReduction()*100)
	}

	// Report accuracy against ground truth for COUNT ... WHERE class queries.
	if q, err := query.Parse(sql); err == nil && q.Where != nil {
		for cls := 0; cls < synth.NumClasses; cls++ {
			if synth.ClassName(cls) == q.Where.Value {
				truth := query.TrueCounts(frames, cls)
				fmt.Printf("accuracy: %.3f (vs ground truth)\n",
					query.QueryAccuracy(res.PerFrame, truth))
			}
		}
	}
}
