// Command odin-demo streams a drifting dash-cam sequence through the full
// ODIN pipeline, printing drift events, model deployments and rolling
// accuracy as they happen.
package main

import (
	"flag"
	"fmt"
	"log"

	"odin"
	"odin/internal/detect"
	"odin/internal/synth"
)

func main() {
	frames := flag.Int("frames", 500, "frames per drift phase")
	seed := flag.Uint64("seed", 11, "random seed")
	policy := flag.String("policy", "delta-bm", "selection policy: delta-bm, knn-u, knn-w, most-recent")
	flag.Parse()

	sys, err := odin.New(odin.Options{
		Seed:            *seed,
		BootstrapFrames: 300,
		BootstrapEpochs: 4,
		BaselineEpochs:  20,
		Policy:          *policy,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bootstrapping ODIN (DA-GAN + baseline)...")
	if err := sys.Bootstrap(nil); err != nil {
		log.Fatal(err)
	}

	phases := []odin.Subset{odin.NightData, odin.DayData, odin.SnowData, odin.RainData}
	var dets [][]detect.Detection
	var truth [][]synth.Box
	window := 100

	for _, phase := range phases {
		fmt.Printf("\n--- phase: %v ---\n", phase)
		for _, f := range sys.GenerateFrames(phase, *frames) {
			r := sys.Process(f)
			if r.Drift != nil {
				fmt.Printf("frame %5d: DRIFT — new cluster %s (clusters=%d, models=%d, mem=%.0fMB)\n",
					sys.Stats().Frames, r.Drift.Cluster.Label,
					sys.NumClusters(), sys.NumModels(), sys.MemoryMB())
			}
			dets = append(dets, r.Detections)
			truth = append(truth, f.Boxes)
			if len(dets)%window == 0 {
				lo := len(dets) - window
				m := detect.MeanAveragePrecision(dets[lo:], truth[lo:], 0.5)
				fmt.Printf("frame %5d: rolling mAP %.3f, fps %.0f\n",
					sys.Stats().Frames, m.MAP, sys.Stats().FPS())
			}
		}
	}

	st := sys.Stats()
	fmt.Printf("\nsummary: %d frames, %d outliers, %d drift events, %d clusters, %d models, %.0f FPS, %.0f MB\n",
		st.Frames, st.Outliers, st.DriftEvents, sys.NumClusters(), sys.NumModels(), st.FPS(), sys.MemoryMB())
}
