// Command odin-demo streams a drifting dash-cam sequence through the full
// ODIN pipeline via the concurrent Server/Stream API, printing drift
// events, model deployments and rolling accuracy as they happen.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"odin"
	"odin/internal/detect"
	"odin/internal/synth"
)

func main() {
	frames := flag.Int("frames", 500, "frames per drift phase")
	seed := flag.Uint64("seed", 11, "random seed")
	policyFlag := flag.String("policy", "delta-bm", "selection policy: delta-bm, knn-u, knn-w, most-recent")
	workers := flag.Int("workers", 0, "sharded stream workers (0 = GOMAXPROCS)")
	flag.Parse()

	policy, err := odin.ParsePolicy(*policyFlag)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := odin.New(
		odin.WithSeed(*seed),
		odin.WithBootstrapFrames(300),
		odin.WithBootstrapEpochs(4),
		odin.WithBaselineEpochs(20),
		odin.WithPolicy(policy),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Println("bootstrapping ODIN (DA-GAN + baseline)...")
	if err := srv.Bootstrap(ctx, nil); err != nil {
		log.Fatal(err)
	}

	stream, err := srv.OpenStream(ctx, odin.StreamOptions{Name: "demo-cam", Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}

	phases := []odin.Subset{odin.NightData, odin.DayData, odin.SnowData, odin.RainData}
	in := make(chan *odin.Frame, 64)
	go func() {
		defer close(in)
		for _, phase := range phases {
			for _, f := range srv.GenerateFrames(phase, *frames) {
				in <- f
			}
		}
	}()

	var dets [][]detect.Detection
	var truth [][]synth.Box
	var simSecs float64
	window := 100
	for r := range stream.Run(ctx, in) {
		// Announce phase boundaries from the consumer so the transcript
		// is deterministic regardless of how far the producer ran ahead.
		if r.Seq%*frames == 0 {
			fmt.Printf("\n--- phase: %v ---\n", phases[r.Seq / *frames])
		}
		if r.Drift != nil {
			fmt.Printf("frame %5d: DRIFT — new cluster %s (clusters=%d, models=%d, mem=%.0fMB)\n",
				r.Seq+1, r.Drift.Cluster.Label,
				srv.NumClusters(), srv.NumModels(), srv.MemoryMB())
		}
		dets = append(dets, r.Detections)
		truth = append(truth, r.Frame.Boxes)
		simSecs += r.SimLatency
		if len(dets)%window == 0 {
			lo := len(dets) - window
			m := detect.MeanAveragePrecision(dets[lo:], truth[lo:], 0.5)
			// Simulated fps over the frames consumed so far (cost model,
			// DESIGN.md §1) — computed from delivered results, not live
			// server stats, so the transcript is deterministic.
			fmt.Printf("frame %5d: rolling mAP %.3f, fps %.0f\n",
				r.Seq+1, m.MAP, float64(len(dets))/simSecs)
		}
	}

	st := srv.Stats()
	fmt.Printf("\nsummary: %d frames, %d outliers, %d drift events, %d clusters, %d models, %.0f FPS, %.0f MB\n",
		st.Frames, st.Outliers, st.DriftEvents, srv.NumClusters(), srv.NumModels(), st.FPS(), srv.MemoryMB())
}
