package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"

	"odin"
	"odin/internal/checkpoint"
	"odin/internal/serveapi"
)

// app is the HTTP front-end over one odin.Server: stream sessions keyed by
// id, prepared queries keyed by id, and the checkpoint store.
//
// Locking: ckptMu is the consistency gate between frame traffic and
// checkpoint/restore — frame submission holds it shared, checkpoint and
// restore hold it exclusively, so a checkpoint cuts the stream history at a
// batch boundary (never mid-batch). mu guards the server pointer and the
// session/prepared maps and is always acquired after ckptMu.
type app struct {
	opts  func() []odin.Option
	store *checkpoint.DirStore // nil: no durable checkpoints
	// pprofOn mounts net/http/pprof under /debug/pprof/ (the -pprof flag).
	// Opt-in: profiling endpoints expose heap contents and should not ride
	// along on every deployment.
	pprofOn bool

	ckptMu sync.RWMutex

	mu       sync.Mutex
	srv      *odin.Server
	sessions map[string]*session
	prepared map[string]*odin.PreparedQuery
	nextID   uint64
	logger   *log.Logger
}

// session is one live stream: a Run loop fed by in, drained through out.
// Frame batches are serialized per session by mu; results come back in
// frame order, so batch k's results are exactly the next len(batch) reads.
type session struct {
	id     string
	st     *odin.Stream
	ctx    context.Context
	cancel context.CancelFunc
	in     chan *odin.Frame
	out    <-chan odin.StreamResult

	mu     sync.Mutex
	closed bool
}

func newApp(srv *odin.Server, store *checkpoint.DirStore, opts func() []odin.Option, logger *log.Logger) *app {
	if logger == nil {
		logger = log.New(os.Stderr, "odin-serve: ", log.LstdFlags)
	}
	return &app{
		opts:     opts,
		store:    store,
		srv:      srv,
		sessions: make(map[string]*session),
		prepared: make(map[string]*odin.PreparedQuery),
		logger:   logger,
	}
}

// handler builds the route table.
func (a *app) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /v1/stats", a.handleStats)
	mux.HandleFunc("GET /v1/generate", a.handleGenerate)
	mux.HandleFunc("POST /v1/streams", a.handleCreateStream)
	mux.HandleFunc("DELETE /v1/streams/{id}", a.handleCloseStream)
	mux.HandleFunc("POST /v1/streams/{id}/frames", a.handleFrames)
	mux.HandleFunc("GET /v1/streams/{id}/subscribe", a.handleSubscribe)
	mux.HandleFunc("POST /v1/query", a.handleQuery)
	mux.HandleFunc("POST /v1/prepared", a.handlePrepare)
	mux.HandleFunc("POST /v1/prepared/{id}/execute", a.handleExecute)
	mux.HandleFunc("POST /v1/checkpoint", a.handleCheckpointSave)
	mux.HandleFunc("GET /v1/checkpoint", a.handleCheckpointDownload)
	mux.HandleFunc("POST /v1/restore", a.handleRestore)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /v1/events", a.handleEvents)
	if a.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleMetrics serves the Prometheus text exposition. 404 when the server
// runs without observability (-obs=false) so scrapers fail loudly instead
// of graphing an empty page.
func (a *app) handleMetrics(w http.ResponseWriter, r *http.Request) {
	srv := a.server()
	if !srv.ObservabilityEnabled() {
		writeErr(w, http.StatusNotFound, odin.ErrObservabilityDisabled)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := srv.WriteMetrics(w); err != nil {
		a.logger.Printf("metrics write failed: %v", err)
	}
}

// handleEvents returns the recent lifecycle events, oldest first. ?n=K
// caps the count (default: the whole retained ring).
func (a *app) handleEvents(w http.ResponseWriter, r *http.Request) {
	srv := a.server()
	if !srv.ObservabilityEnabled() {
		writeErr(w, http.StatusNotFound, odin.ErrObservabilityDisabled)
		return
	}
	n := 0
	if s := r.URL.Query().Get("n"); s != "" {
		var err error
		n, err = strconv.Atoi(s)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", s))
			return
		}
	}
	evs := srv.RecentEvents(n)
	if evs == nil {
		evs = []odin.Event{}
	}
	writeJSON(w, http.StatusOK, struct {
		Events []odin.Event `json:"events"`
	}{evs})
}

func (a *app) server() *odin.Server {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.srv
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, serveapi.ErrorResponse{Error: err.Error()})
}

// statusOf maps facade sentinels to HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, odin.ErrNotBootstrapped):
		return http.StatusServiceUnavailable
	case errors.Is(err, odin.ErrServerClosed), errors.Is(err, odin.ErrStreamClosed):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (a *app) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Bootstrapped-ness isn't exposed directly; a prepare round-trip fails
	// with ErrNotBootstrapped on a cold server and is cheap on a warm one.
	_, err := a.server().PrepareSQL("SELECT COUNT(detections) FROM stream USING MODEL odin")
	writeJSON(w, http.StatusOK, serveapi.HealthResponse{OK: true, Booted: err == nil})
}

func (a *app) handleStats(w http.ResponseWriter, r *http.Request) {
	srv := a.server()
	st := srv.Stats()
	tr := srv.TrainerStats()
	reg := srv.RegistryStats()
	disp := srv.DispatchStats()
	resp := serveapi.StatsResponse{
		Frames:            st.Frames,
		Outliers:          st.Outliers,
		DriftEvents:       st.DriftEvents,
		SimTime:           st.SimTime,
		NumClusters:       srv.NumClusters(),
		NumModels:         srv.NumModels(),
		ModelGen:          srv.ModelGen(),
		PendingRecoveries: srv.PendingRecoveries(),
		MemoryMB:          srv.MemoryMB(),
		FullFrames:        st.FullFrames,
		LiteFrames:        st.LiteFrames,
		CountFrames:       st.CountFrames,
		SkipFrames:        st.SkipFrames,
		Dropped:           st.Dropped,
		Trainer: &serveapi.TrainerStats{
			Trained: tr.Trained, Scratch: tr.Scratch, Warm: tr.Warm,
			Adopted: tr.Adopted, Coalesced: tr.Coalesced,
			Dropped: tr.Dropped, Failed: tr.Failed,
		},
		Registry: &serveapi.RegistryStats{
			Size: reg.Size, Capacity: reg.Capacity, Lookups: reg.Lookups,
			AdoptHits: reg.AdoptHits, WarmHits: reg.WarmHits,
			Coalesced: reg.Coalesced, Misses: reg.Misses,
			Published: reg.Published, Evicted: reg.Evicted,
		},
		Dispatch: &serveapi.DispatchStats{
			Batches: disp.Batches, Windows: disp.Windows, Frames: disp.Frames,
			MaxMerge: disp.MaxMerge, PartialFlushes: disp.PartialFlushes,
			QueuedWindows: disp.QueuedWindows, QueuedFrames: disp.QueuedFrames,
		},
	}
	writeJSON(w, http.StatusOK, resp)
}

// subsetOf parses a subset name ("full", "day", "night", "rain", "snow").
func subsetOf(s string) (odin.Subset, error) {
	switch s {
	case "", "full":
		return odin.FullData, nil
	case "day":
		return odin.DayData, nil
	case "night":
		return odin.NightData, nil
	case "rain":
		return odin.RainData, nil
	case "snow":
		return odin.SnowData, nil
	}
	return 0, fmt.Errorf("unknown subset %q (want full|day|night|rain|snow)", s)
}

func (a *app) handleGenerate(w http.ResponseWriter, r *http.Request) {
	sub, err := subsetOf(r.URL.Query().Get("subset"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n := 10
	if s := r.URL.Query().Get("n"); s != "" {
		n, err = strconv.Atoi(s)
		if err != nil || n <= 0 || n > 10000 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", s))
			return
		}
	}
	frames := a.server().GenerateFrames(sub, n)
	resp := serveapi.GenerateResponse{Frames: make([]serveapi.Frame, len(frames))}
	for i, f := range frames {
		resp.Frames[i] = serveapi.FromFrame(f)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *app) handleCreateStream(w http.ResponseWriter, r *http.Request) {
	var req serveapi.CreateStreamRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	srv := a.server()
	st, err := srv.OpenStream(r.Context(), odin.StreamOptions{
		Name: req.Name, Workers: req.Workers, MaxBatch: req.MaxBatch,
		Weight: req.Weight,
	})
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan *odin.Frame)
	sess := &session{
		st:     st,
		ctx:    ctx,
		cancel: cancel,
		in:     in,
		out:    st.Run(ctx, in),
	}
	a.mu.Lock()
	a.nextID++
	sess.id = fmt.Sprintf("s%d", a.nextID)
	a.sessions[sess.id] = sess
	a.mu.Unlock()
	writeJSON(w, http.StatusOK, serveapi.CreateStreamResponse{ID: sess.id})
}

func (a *app) sessionOf(r *http.Request) (*session, error) {
	id := r.PathValue("id")
	a.mu.Lock()
	defer a.mu.Unlock()
	sess, ok := a.sessions[id]
	if !ok {
		return nil, fmt.Errorf("unknown stream session %q", id)
	}
	return sess, nil
}

func (a *app) handleCloseStream(w http.ResponseWriter, r *http.Request) {
	sess, err := a.sessionOf(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	a.mu.Lock()
	delete(a.sessions, sess.id)
	a.mu.Unlock()
	sess.close()
	w.WriteHeader(http.StatusNoContent)
}

// close shuts the session down: the input channel closes so the Run loop
// flushes remaining frames and subscriptions, then the session context is
// cancelled and the stream closed.
func (s *session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.in)
	for range s.out { // drain any in-flight results
	}
	s.cancel()
	s.st.Close()
}

func (a *app) handleFrames(w http.ResponseWriter, r *http.Request) {
	sess, err := a.sessionOf(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req serveapi.FramesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Frames) == 0 {
		writeJSON(w, http.StatusOK, serveapi.FramesResponse{})
		return
	}
	frames := make([]*odin.Frame, len(req.Frames))
	for i, wf := range req.Frames {
		frames[i] = serveapi.ToFrame(wf)
	}

	// Shared checkpoint gate: a checkpoint never cuts a batch in half.
	a.ckptMu.RLock()
	defer a.ckptMu.RUnlock()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		writeErr(w, http.StatusConflict, odin.ErrStreamClosed)
		return
	}
	go func() {
		for _, f := range frames {
			select {
			case sess.in <- f:
			case <-sess.ctx.Done():
				return
			}
		}
	}()
	// Every submitted frame yields exactly one result — real or an
	// admission-drop marker — so the batch's results are still exactly the
	// next len(frames) reads (the QoS layer's zero-silent-loss contract).
	resp := serveapi.FramesResponse{Results: make([]serveapi.Result, 0, len(frames))}
	for range frames {
		sr, ok := <-sess.out
		if !ok {
			sess.cancel() // unblock the feeder goroutine
			writeErr(w, http.StatusConflict, odin.ErrStreamClosed)
			return
		}
		if sr.Dropped {
			resp.Dropped++
			resp.Results = append(resp.Results, serveapi.Result{
				Seq: sr.Seq, ClusterID: -1, Dropped: true,
			})
			continue
		}
		res := sr.Result
		wr := serveapi.Result{
			Seq:             sr.Seq,
			Fingerprint:     res.Fingerprint(),
			ClusterID:       res.ClusterID,
			ModelsUsed:      res.ModelsUsed,
			ModelGen:        res.ModelGen,
			RecoveryPending: res.RecoveryPending,
			Drift:           res.Drift != nil,
			SimLatency:      res.SimLatency,
			Count:           res.Count,
			Detections:      serveapi.FromDetections(res.Detections),
		}
		if res.Fidelity.Degraded() {
			wr.Fidelity = res.Fidelity.String()
		}
		resp.Results = append(resp.Results, wr)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *app) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req serveapi.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	frames := make([]*odin.Frame, len(req.Frames))
	for i, wf := range req.Frames {
		frames[i] = serveapi.ToFrame(wf)
	}
	res, err := a.server().Query(r.Context(), req.SQL, frames)
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, fromQueryResult(res))
}

func fromQueryResult(res *odin.QueryResult) serveapi.QueryResult {
	out := serveapi.QueryResult{
		Count:          res.Count,
		PerFrame:       res.PerFrame,
		FramesScanned:  res.FramesScanned,
		FramesFiltered: res.FramesFiltered,
		ModelFrames:    res.ModelFrames,
	}
	for _, ds := range res.Detections {
		out.Detections = append(out.Detections, serveapi.FromDetections(ds))
	}
	return out
}

func (a *app) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req serveapi.PrepareRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	pq, err := a.server().PrepareSQL(req.SQL)
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	a.mu.Lock()
	a.nextID++
	id := fmt.Sprintf("q%d", a.nextID)
	a.prepared[id] = pq
	a.mu.Unlock()
	writeJSON(w, http.StatusOK, serveapi.PrepareResponse{ID: id, Explain: pq.Explain()})
}

func (a *app) preparedOf(id string) (*odin.PreparedQuery, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	pq, ok := a.prepared[id]
	if !ok {
		return nil, fmt.Errorf("unknown prepared query %q (re-prepare after restore)", id)
	}
	return pq, nil
}

func (a *app) handleExecute(w http.ResponseWriter, r *http.Request) {
	pq, err := a.preparedOf(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req serveapi.ExecuteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	frames := make([]*odin.Frame, len(req.Frames))
	for i, wf := range req.Frames {
		frames[i] = serveapi.ToFrame(wf)
	}
	res, err := pq.Execute(r.Context(), frames)
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, fromQueryResult(res))
}

// handleSubscribe attaches a standing query to a live session and streams
// its windows as server-sent events (one `data:` line per window).
func (a *app) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	sess, err := a.sessionOf(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	pq, err := a.preparedOf(r.URL.Query().Get("prepared"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	size := 25
	if s := r.URL.Query().Get("size"); s != "" {
		size, err = strconv.Atoi(s)
		if err != nil || size <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid window size %q", s))
			return
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	windows, err := sess.st.Subscribe(r.Context(), pq, odin.WindowOptions{Size: size})
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	for {
		var wr odin.WindowResult
		var ok bool
		// The windows channel closes only when a delivery attempt observes
		// the cancelled context — on an idle stream that may never happen,
		// so watch the request context directly too.
		select {
		case wr, ok = <-windows:
			if !ok {
				return
			}
		case <-r.Context().Done():
			return
		}
		ev := serveapi.WindowEvent{
			Window:          wr.Window,
			StartSeq:        wr.StartSeq,
			EndSeq:          wr.EndSeq,
			GenLo:           wr.GenLo,
			GenHi:           wr.GenHi,
			RecoveryPending: wr.RecoveryPending,
			Degraded:        wr.Degraded,
			Count:           wr.Count,
			PerFrame:        wr.PerFrame,
		}
		if wr.Err != nil {
			ev.Err = wr.Err.Error()
		}
		if _, err := fmt.Fprint(w, "data: "); err != nil {
			return
		}
		if err := enc.Encode(ev); err != nil { // Encode appends \n
			return
		}
		if _, err := fmt.Fprint(w, "\n"); err != nil {
			return
		}
		flusher.Flush()
	}
}

// checkpointLocked serializes the current server. Callers hold ckptMu
// exclusively (or have otherwise quiesced frame traffic).
func (a *app) checkpointLocked() (string, error) {
	if a.store == nil {
		return "", errors.New("no checkpoint store configured (start with -store)")
	}
	srv := a.server()
	return a.store.Save(func(f *os.File) error { return srv.Checkpoint(f) })
}

func (a *app) handleCheckpointSave(w http.ResponseWriter, r *http.Request) {
	a.ckptMu.Lock()
	path, err := a.checkpointLocked()
	a.ckptMu.Unlock()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	a.logger.Printf("checkpoint saved to %s", path)
	writeJSON(w, http.StatusOK, serveapi.CheckpointResponse{Path: path})
}

// handleCheckpointDownload streams the checkpoint envelope directly — a
// store-free way to move state between replicas (curl > state.ckpt).
func (a *app) handleCheckpointDownload(w http.ResponseWriter, r *http.Request) {
	a.ckptMu.Lock()
	defer a.ckptMu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := a.server().Checkpoint(w); err != nil {
		// Headers may be gone already; log and drop the connection.
		a.logger.Printf("checkpoint download failed: %v", err)
	}
}

func (a *app) handleRestore(w http.ResponseWriter, r *http.Request) {
	var req serveapi.RestoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	path := req.Path
	if path == "" {
		if a.store == nil {
			writeErr(w, http.StatusServiceUnavailable,
				errors.New("no checkpoint store configured and no path given"))
			return
		}
		var err error
		if path, err = a.store.Latest(); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
	}

	a.ckptMu.Lock()
	defer a.ckptMu.Unlock()
	a.mu.Lock()
	if len(a.sessions) != 0 {
		a.mu.Unlock()
		writeErr(w, http.StatusConflict,
			fmt.Errorf("%d stream sessions still open; close them before restore", len(a.sessions)))
		return
	}
	a.mu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	defer f.Close()
	restored, err := odin.Restore(f, a.opts()...)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}

	a.mu.Lock()
	old := a.srv
	a.srv = restored
	a.prepared = make(map[string]*odin.PreparedQuery) // bound to the old server
	a.mu.Unlock()
	old.Close()
	a.logger.Printf("restored from %s", path)
	writeJSON(w, http.StatusOK, serveapi.CheckpointResponse{Path: path})
}

// shutdown closes every session and the server, then — per the Close →
// Checkpoint contract — writes a final checkpoint to the store when one is
// configured. Close drains the async trainer deterministically first, so
// the shutdown checkpoint captures the final quiescent model set.
func (a *app) shutdown() {
	a.ckptMu.Lock()
	defer a.ckptMu.Unlock()

	a.mu.Lock()
	sessions := make([]*session, 0, len(a.sessions))
	for _, s := range a.sessions {
		sessions = append(sessions, s)
	}
	a.sessions = make(map[string]*session)
	srv := a.srv
	a.mu.Unlock()

	for _, s := range sessions {
		s.close()
	}
	srv.Close()
	if a.store != nil {
		path, err := a.store.Save(func(f *os.File) error { return srv.Checkpoint(f) })
		if err != nil {
			a.logger.Printf("shutdown checkpoint failed: %v", err)
		} else {
			a.logger.Printf("shutdown checkpoint saved to %s", path)
		}
	}
}
