// Command odin-serve exposes one ODIN server over HTTP/JSON: stream
// sessions, one-shot and prepared queries, SSE standing-query windows,
// stats, and checkpoint/restore. On SIGINT/SIGTERM it shuts down
// gracefully — open sessions drain, the server closes (which drains the
// async trainer deterministically), and a final checkpoint lands in the
// store, so the next `odin-serve -store DIR -restore latest` warm-starts
// exactly where this process stopped.
//
// Endpoints (see README.md for curl examples):
//
//	GET    /healthz
//	GET    /v1/stats
//	GET    /v1/generate?subset=night&n=10
//	POST   /v1/streams                      {"name","workers","max_batch"}
//	DELETE /v1/streams/{id}
//	POST   /v1/streams/{id}/frames          {"frames":[...]}
//	GET    /v1/streams/{id}/subscribe?prepared=q1&size=25   (SSE)
//	POST   /v1/query                        {"sql","frames"}
//	POST   /v1/prepared                     {"sql"}
//	POST   /v1/prepared/{id}/execute        {"frames"}
//	POST   /v1/checkpoint                   -> {"path"}
//	GET    /v1/checkpoint                   -> raw envelope bytes
//	POST   /v1/restore                      {"path"} (empty = store latest)
//	GET    /metrics                         Prometheus text exposition (-obs)
//	GET    /v1/events?n=50                  recent lifecycle events (-obs)
//	GET    /debug/pprof/                    net/http/pprof (only with -pprof)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"odin"
	"odin/internal/checkpoint"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8780", "listen address")
	storeDir := flag.String("store", "", "checkpoint store directory (empty: no durable checkpoints)")
	retain := flag.Int("retain", 3, "checkpoints to retain in the store")
	restoreFrom := flag.String("restore", "", "warm-start source: a checkpoint path, or 'latest' for the store's newest")
	seed := flag.Uint64("seed", 42, "bootstrap seed (ignored when restoring)")
	policyFlag := flag.String("policy", "delta-bm", "selector policy: delta-bm, knn-u, knn-w, random-k, all")
	backendFlag := flag.String("backend", "float64", "compute backend: float64 or float32")
	trainAsync := flag.Bool("train-async", true, "recover from drift asynchronously")
	dispatcher := flag.Bool("dispatcher", false, "enable the cross-stream batch dispatcher")
	maxQueue := flag.Int("max-queue", 0, "per-stream admission queue bound (0: unbounded legacy intake)")
	dropPolicy := flag.String("drop-policy", "block", "full-queue policy: block, drop-newest, drop-oldest")
	adaptive := flag.Bool("adaptive", false, "enable load-adaptive fidelity degradation under overload")
	labelDelay := flag.Int("label-delay", 0, "frames of label latency before recovery starts")
	maxModels := flag.Int("max-models", 8, "maximum concurrent specialized models (ignored when restoring)")
	minScore := flag.Float64("min-score", 0, "query score threshold override (0: engine default)")
	bootFrames := flag.Int("bootstrap-frames", 200, "frames in the bootstrap set (ignored when restoring)")
	bootEpochs := flag.Int("bootstrap-epochs", 3, "DA-GAN bootstrap epochs (ignored when restoring)")
	baseEpochs := flag.Int("baseline-epochs", 4, "baseline detector epochs (ignored when restoring)")
	obsOn := flag.Bool("obs", true, "enable the observability layer (/metrics and /v1/events)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger := log.New(os.Stderr, "odin-serve: ", log.LstdFlags)
	if err := run(*addr, *storeDir, *retain, *restoreFrom, *seed, *policyFlag,
		*backendFlag, *trainAsync, *dispatcher, *labelDelay, *maxModels,
		*minScore, *bootFrames, *bootEpochs, *baseEpochs,
		*maxQueue, *dropPolicy, *adaptive, *obsOn, *pprofOn, logger); err != nil {
		logger.Fatal(err)
	}
}

func run(addr, storeDir string, retain int, restoreFrom string, seed uint64,
	policyFlag, backendFlag string, trainAsync, dispatcher bool,
	labelDelay, maxModels int, minScore float64,
	bootFrames, bootEpochs, baseEpochs int,
	maxQueue int, dropPolicyFlag string, adaptive, obsOn, pprofOn bool, logger *log.Logger) error {

	policy, err := odin.ParsePolicy(policyFlag)
	if err != nil {
		return err
	}
	dropPol, err := odin.ParseDropPolicy(dropPolicyFlag)
	if err != nil {
		return err
	}
	var backend odin.Backend
	switch backendFlag {
	case "float64", "f64":
		backend = odin.Float64
	case "float32", "f32":
		backend = odin.Float32
	default:
		return fmt.Errorf("unknown backend %q (want float64 or float32)", backendFlag)
	}

	// Serving-topology options, shared by the fresh-boot and every restore
	// path (including POST /v1/restore): the checkpoint carries learned
	// state, these flags carry how to serve it.
	opts := func() []odin.Option {
		o := []odin.Option{
			odin.WithPolicy(policy),
			odin.WithBackend(backend),
			odin.WithTrainAsync(trainAsync),
			odin.WithDispatcher(dispatcher),
			odin.WithObservability(obsOn),
		}
		if labelDelay > 0 {
			o = append(o, odin.WithLabelDelay(labelDelay))
		}
		if minScore > 0 {
			o = append(o, odin.WithMinScore(minScore))
		}
		if maxQueue > 0 {
			o = append(o, odin.WithMaxQueue(maxQueue), odin.WithDropPolicy(dropPol))
		}
		if adaptive {
			o = append(o, odin.WithAdaptiveFidelity(odin.AdaptiveFidelity{}))
		}
		return o
	}

	var store *checkpoint.DirStore
	if storeDir != "" {
		if store, err = checkpoint.NewDirStore(storeDir, retain); err != nil {
			return err
		}
	}

	srv, err := boot(store, restoreFrom, seed, maxModels,
		bootFrames, bootEpochs, baseEpochs, opts, logger)
	if err != nil {
		return err
	}

	a := newApp(srv, store, opts, logger)
	a.pprofOn = pprofOn
	httpSrv := &http.Server{Addr: addr, Handler: a.handler()}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		logger.Printf("received %v, shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	a.shutdown()
	return nil
}

// boot builds the server: warm-started from a checkpoint when -restore is
// given, cold-bootstrapped otherwise.
func boot(store *checkpoint.DirStore, restoreFrom string, seed uint64,
	maxModels, bootFrames, bootEpochs, baseEpochs int,
	opts func() []odin.Option, logger *log.Logger) (*odin.Server, error) {

	if restoreFrom != "" {
		path := restoreFrom
		if path == "latest" {
			if store == nil {
				return nil, errors.New("-restore latest requires -store")
			}
			var err error
			if path, err = store.Latest(); err != nil {
				return nil, err
			}
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		start := time.Now()
		srv, err := odin.Restore(f, opts()...)
		if err != nil {
			return nil, err
		}
		logger.Printf("warm-started from %s in %v (%d frames seen, gen %d)",
			path, time.Since(start).Round(time.Millisecond), srv.Stats().Frames, srv.ModelGen())
		return srv, nil
	}

	all := append(opts(),
		odin.WithSeed(seed),
		odin.WithMaxModels(maxModels),
		odin.WithBootstrapFrames(bootFrames),
		odin.WithBootstrapEpochs(bootEpochs),
		odin.WithBaselineEpochs(baseEpochs),
	)
	srv, err := odin.New(all...)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	logger.Printf("bootstrapping (seed %d, %d frames, %d epochs)", seed, bootFrames, bootEpochs)
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		return nil, err
	}
	logger.Printf("bootstrapped in %v", time.Since(start).Round(time.Millisecond))
	return srv, nil
}
