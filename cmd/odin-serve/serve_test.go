package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"odin"
	"odin/internal/checkpoint"
	"odin/internal/serveapi"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// quickOptions is the fast bootstrap schedule the facade tests use.
func quickOptions(seed uint64) []odin.Option {
	return []odin.Option{
		odin.WithSeed(seed),
		odin.WithBootstrapFrames(80),
		odin.WithBootstrapEpochs(1),
		odin.WithBaselineEpochs(2),
	}
}

func quickServer(t *testing.T, seed uint64, extra ...odin.Option) *odin.Server {
	t.Helper()
	srv, err := odin.New(append(quickOptions(seed), extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// driftFrames generates a Night→Day stream from srv's generator.
func driftFrames(srv *odin.Server, perPhase int) []*odin.Frame {
	frames := srv.GenerateFrames(odin.NightData, perPhase)
	return append(frames, srv.GenerateFrames(odin.DayData, perPhase)...)
}

func postJSON[T any](t *testing.T, client *http.Client, url string, body any) T {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s = %d: %s", url, resp.StatusCode, raw)
	}
	var out T
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("POST %s: decode %q: %v", url, raw, err)
	}
	return out
}

// feedHTTP pushes frames through an HTTP stream session in batches and
// returns the fingerprints in frame order.
func feedHTTP(t *testing.T, client *http.Client, base, sessID string, frames []*odin.Frame, batch int) []string {
	t.Helper()
	fps := make([]string, 0, len(frames))
	seqBase := -1 // seqs are pipeline-global; a restored server resumes mid-sequence
	for i := 0; i < len(frames); i += batch {
		j := min(i+batch, len(frames))
		req := serveapi.FramesRequest{}
		for _, f := range frames[i:j] {
			req.Frames = append(req.Frames, serveapi.FromFrame(f))
		}
		resp := postJSON[serveapi.FramesResponse](t, client,
			base+"/v1/streams/"+sessID+"/frames", req)
		if len(resp.Results) != j-i {
			t.Fatalf("batch [%d:%d): got %d results", i, j, len(resp.Results))
		}
		for k, r := range resp.Results {
			if seqBase == -1 {
				seqBase = r.Seq
			}
			if r.Seq != seqBase+i+k {
				t.Fatalf("result %d has seq %d, want %d", i+k, r.Seq, seqBase+i+k)
			}
			fps = append(fps, r.Fingerprint)
		}
	}
	return fps
}

func openSession(t *testing.T, client *http.Client, base string, workers int) string {
	t.Helper()
	resp := postJSON[serveapi.CreateStreamResponse](t, client, base+"/v1/streams",
		serveapi.CreateStreamRequest{Name: "test", Workers: workers})
	if resp.ID == "" {
		t.Fatal("empty session id")
	}
	return resp.ID
}

// TestServeHTTPConformance is the cross-process determinism check of
// DESIGN.md §10: a replica fed the same frames over HTTP/JSON produces
// bit-identical fingerprints to an in-process stream.
func TestServeHTTPConformance(t *testing.T) {
	const seed, perPhase = 7, 50

	ref := quickServer(t, seed)
	frames := driftFrames(ref, perPhase)

	// In-process reference: sequential Process.
	st, err := ref.OpenStream(context.Background(), odin.StreamOptions{Name: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(frames))
	for i, f := range frames {
		res, err := st.Process(context.Background(), f)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Fingerprint()
	}
	st.Close()

	// HTTP replica: same seed and options, frames over the wire, sharded
	// session (workers=4) — ProcessBatch determinism extends over HTTP.
	replica := quickServer(t, seed)
	a := newApp(replica, nil, func() []odin.Option { return nil }, quietLogger())
	ts := httptest.NewServer(a.handler())
	defer ts.Close()

	sessID := openSession(t, ts.Client(), ts.URL, 4)
	got := feedHTTP(t, ts.Client(), ts.URL, sessID, frames, 16)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: HTTP fingerprint %s != in-process %s", i, got[i], want[i])
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+sessID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE session = %d", resp.StatusCode)
	}

	// Replica and reference agree on aggregate state too.
	var stats serveapi.StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/v1/stats", &stats)
	if stats.Frames != ref.Stats().Frames || stats.DriftEvents != ref.Stats().DriftEvents {
		t.Fatalf("replica stats %+v diverge from reference %+v", stats, ref.Stats())
	}
}

func getJSON(t *testing.T, client *http.Client, url string, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("GET %s: decode %q: %v", url, raw, err)
	}
}

// TestServeCheckpointRestoreEndpoints drives the full network warm-restart
// loop: feed, checkpoint, keep feeding, restore, and verify the replay of
// the post-checkpoint tail is bit-identical.
func TestServeCheckpointRestoreEndpoints(t *testing.T) {
	const seed, perPhase = 11, 40

	srv := quickServer(t, seed)
	frames := driftFrames(srv, perPhase)
	cut := perPhase + perPhase/2
	head, tail := frames[:cut], frames[cut:]

	store, err := checkpoint.NewDirStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	a := newApp(srv, store, func() []odin.Option { return quickOptions(seed) }, quietLogger())
	ts := httptest.NewServer(a.handler())
	defer ts.Close()
	client := ts.Client()

	sessID := openSession(t, client, ts.URL, 0)
	feedHTTP(t, client, ts.URL, sessID, head, 16)

	ck := postJSON[serveapi.CheckpointResponse](t, client, ts.URL+"/v1/checkpoint", struct{}{})
	if ck.Path == "" {
		t.Fatal("checkpoint returned empty path")
	}

	first := feedHTTP(t, client, ts.URL, sessID, tail, 16)

	// Restore refuses while the session is open.
	resp, err := client.Post(ts.URL+"/v1/restore", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("restore with open session = %d, want 409", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+sessID, nil)
	if resp, err = client.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	rk := postJSON[serveapi.CheckpointResponse](t, client, ts.URL+"/v1/restore", serveapi.RestoreRequest{})
	if rk.Path != ck.Path {
		t.Fatalf("restored from %s, want latest %s", rk.Path, ck.Path)
	}

	// The restored server rewound to the cut: replaying the tail matches
	// the original continuation bit-for-bit.
	sess2 := openSession(t, client, ts.URL, 4)
	second := feedHTTP(t, client, ts.URL, sess2, tail, 16)
	for i := range first {
		if second[i] != first[i] {
			t.Fatalf("tail frame %d after restore: %s != original %s", i, second[i], first[i])
		}
	}
}

// TestServeSubscribeSSE smoke-tests the standing-query window feed.
func TestServeSubscribeSSE(t *testing.T) {
	const seed, n = 3, 30

	srv := quickServer(t, seed)
	frames := srv.GenerateFrames(odin.NightData, n)

	a := newApp(srv, nil, func() []odin.Option { return nil }, quietLogger())
	ts := httptest.NewServer(a.handler())
	defer ts.Close()
	client := ts.Client()

	pq := postJSON[serveapi.PrepareResponse](t, client, ts.URL+"/v1/prepared",
		serveapi.PrepareRequest{SQL: "SELECT COUNT(detections) FROM stream USING MODEL odin"})
	sessID := openSession(t, client, ts.URL, 0)

	resp, err := client.Get(ts.URL + "/v1/streams/" + sessID + "/subscribe?prepared=" + pq.ID + "&size=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("subscribe content type = %q", ct)
	}

	// Read the SSE feed concurrently with frame submission — window
	// delivery applies backpressure to the stream, so an unread
	// subscription would stall the frames POST.
	events := make(chan serveapi.WindowEvent, 8)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev serveapi.WindowEvent
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) == nil {
				events <- ev
			}
		}
	}()

	feedHTTP(t, client, ts.URL, sessID, frames, 10)

	for want := 0; want < 3; want++ {
		ev, ok := <-events
		if !ok {
			t.Fatalf("SSE feed ended after %d windows, want 3", want)
		}
		if ev.Window != want {
			t.Fatalf("window %d arrived as %d", want, ev.Window)
		}
		wantStart := want * 10
		if ev.StartSeq != wantStart || ev.EndSeq != wantStart+9 {
			t.Fatalf("window %d spans [%d,%d], want [%d,%d]",
				want, ev.StartSeq, ev.EndSeq, wantStart, wantStart+9)
		}
		if ev.Err != "" {
			t.Fatalf("window %d error: %s", want, ev.Err)
		}
	}
}

// TestServeEndpointErrors covers the non-happy paths.
func TestServeEndpointErrors(t *testing.T) {
	srv := quickServer(t, 5)
	a := newApp(srv, nil, func() []odin.Option { return nil }, quietLogger())
	ts := httptest.NewServer(a.handler())
	defer ts.Close()
	client := ts.Client()

	var health serveapi.HealthResponse
	getJSON(t, client, ts.URL+"/healthz", &health)
	if !health.OK || !health.Booted {
		t.Fatalf("healthz = %+v", health)
	}

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/streams/nope/frames", `{"frames":[]}`, http.StatusNotFound},
		{"DELETE", "/v1/streams/nope", "", http.StatusNotFound},
		{"POST", "/v1/prepared/nope/execute", `{"frames":[]}`, http.StatusNotFound},
		{"POST", "/v1/prepared", `{"sql":"SELECT bogus FROM stream"}`, http.StatusBadRequest},
		{"POST", "/v1/checkpoint", "", http.StatusServiceUnavailable}, // no store
		{"POST", "/v1/restore", `{}`, http.StatusServiceUnavailable},  // no store, no path
		{"GET", "/v1/generate?subset=fog", "", http.StatusBadRequest},
		{"GET", "/v1/generate?subset=day&n=-1", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s = %d (%s), want %d", tc.method, tc.path, resp.StatusCode, raw, tc.want)
		}
		var e serveapi.ErrorResponse
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Fatalf("%s %s: error body %q not an ErrorResponse", tc.method, tc.path, raw)
		}
	}

	// Generate serves frames through the wire format.
	var gen serveapi.GenerateResponse
	getJSON(t, client, ts.URL+"/v1/generate?subset=day&n=3", &gen)
	if len(gen.Frames) != 3 {
		t.Fatalf("generate returned %d frames, want 3", len(gen.Frames))
	}
}

// TestServeShutdownCheckpoints verifies the graceful-shutdown contract:
// shutdown closes sessions and the server, then writes a final checkpoint
// that a new process can warm-start from.
func TestServeShutdownCheckpoints(t *testing.T) {
	const seed = 9
	srv := quickServer(t, seed)
	frames := driftFrames(srv, 30)

	store, err := checkpoint.NewDirStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	a := newApp(srv, store, func() []odin.Option { return quickOptions(seed) }, quietLogger())
	ts := httptest.NewServer(a.handler())
	defer ts.Close()

	sessID := openSession(t, ts.Client(), ts.URL, 0)
	feedHTTP(t, ts.Client(), ts.URL, sessID, frames, 15)

	a.shutdown() // leaves the session open on purpose: shutdown closes it

	path, err := store.Latest()
	if err != nil {
		t.Fatalf("no shutdown checkpoint: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := odin.Restore(f, quickOptions(seed)...)
	if err != nil {
		t.Fatalf("restore from shutdown checkpoint: %v", err)
	}
	defer restored.Close()
	if got := restored.Stats().Frames; got != len(frames) {
		t.Fatalf("restored server saw %d frames, want %d", got, len(frames))
	}
}

// TestServeObservabilityEndpoints exercises /metrics, /v1/events and the
// pprof gate: an instrumented server exposes the Prometheus page and the
// lifecycle event ring after traffic, an uninstrumented one 404s both, and
// /debug/pprof/ exists only when opted in.
func TestServeObservabilityEndpoints(t *testing.T) {
	const seed, perPhase = 7, 50

	srv := quickServer(t, seed, odin.WithObservability(true))
	a := newApp(srv, nil, func() []odin.Option { return nil }, quietLogger())
	ts := httptest.NewServer(a.handler())
	defer ts.Close()
	client := ts.Client()

	sessID := openSession(t, client, ts.URL, 2)
	feedHTTP(t, client, ts.URL, sessID, driftFrames(srv, perPhase), 10)

	// /metrics: Prometheus text exposition with the core families present
	// and the frame counter reflecting the traffic above.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	page := string(body)
	for _, want := range []string{
		"# TYPE odin_frames_total counter",
		"# TYPE odin_stage_seconds histogram",
		"# TYPE odin_events_total counter",
		"odin_fidelity_frames_total{fidelity=\"full\"}",
		"odin_stage_seconds_bucket{stage=\"project\",le=\"+Inf\"}",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("GET /metrics page missing %q", want)
		}
	}
	wantFrames := fmt.Sprintf("odin_frames_total %d", srv.Stats().Frames)
	if !strings.Contains(page, wantFrames) {
		t.Errorf("GET /metrics page missing %q", wantFrames)
	}

	// /v1/events: the Night→Day shift above must have produced drift and
	// recovery events, oldest first with monotone sequence numbers.
	var events struct {
		Events []odin.Event `json:"events"`
	}
	resp, err = client.Get(ts.URL + "/v1/events?n=64")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if srv.Stats().DriftEvents > 0 && len(events.Events) == 0 {
		t.Fatal("drift occurred but /v1/events is empty")
	}
	kinds := make(map[string]int)
	for i, ev := range events.Events {
		kinds[ev.Kind]++
		if i > 0 && ev.Seq <= events.Events[i-1].Seq {
			t.Fatalf("event seqs not increasing: %d then %d", events.Events[i-1].Seq, ev.Seq)
		}
	}
	if srv.Stats().DriftEvents > 0 && kinds[odin.EvDrift] == 0 {
		t.Errorf("no %q events after drift; kinds: %v", odin.EvDrift, kinds)
	}

	// Bad ?n= is a 400.
	resp, err = client.Get(ts.URL + "/v1/events?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/events?n=bogus = %d, want 400", resp.StatusCode)
	}

	// pprof is opt-in: absent by default, mounted with the flag.
	resp, err = client.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ without -pprof = %d, want 404", resp.StatusCode)
	}
	a.pprofOn = true
	tsProf := httptest.NewServer(a.handler())
	defer tsProf.Close()
	resp, err = tsProf.Client().Get(tsProf.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ with -pprof = %d, want 200", resp.StatusCode)
	}
}

// TestServeObservabilityDisabled: a server built without WithObservability
// 404s both observability endpoints.
func TestServeObservabilityDisabled(t *testing.T) {
	srv := quickServer(t, 11)
	a := newApp(srv, nil, func() []odin.Option { return nil }, quietLogger())
	ts := httptest.NewServer(a.handler())
	defer ts.Close()
	for _, path := range []string{"/metrics", "/v1/events"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on uninstrumented server = %d, want 404", path, resp.StatusCode)
		}
	}
}
