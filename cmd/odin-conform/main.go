// Command odin-conform is the cross-process conformance driver: it
// bootstraps an in-process reference server, replays a synthetic drift
// stream through it, feeds the same frames over HTTP to a running
// odin-serve replica, and compares fingerprints bit-for-bit. Exit code 0
// means every frame matched; 1 means divergence (or transport failure).
//
// The replica must have been started with the same seed, bootstrap
// schedule, backend, and policy, e.g.:
//
//	odin-serve -addr :8780 -seed 7 -bootstrap-frames 80 -bootstrap-epochs 1 -baseline-epochs 2 &
//	odin-conform -addr http://127.0.0.1:8780 -seed 7 -frames 50
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"odin"
	"odin/internal/serveapi"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8780", "base URL of the odin-serve replica")
	seed := flag.Uint64("seed", 7, "bootstrap seed (must match the replica's)")
	perPhase := flag.Int("frames", 50, "frames per drift phase (night, day)")
	workers := flag.Int("workers", 4, "replica stream session workers")
	batch := flag.Int("batch", 16, "frames per HTTP batch")
	bootFrames := flag.Int("bootstrap-frames", 80, "bootstrap frames (must match the replica's)")
	bootEpochs := flag.Int("bootstrap-epochs", 1, "bootstrap epochs (must match the replica's)")
	baseEpochs := flag.Int("baseline-epochs", 2, "baseline epochs (must match the replica's)")
	wait := flag.Duration("wait", 2*time.Minute, "how long to wait for the replica to report booted")
	flag.Parse()

	logger := log.New(os.Stderr, "odin-conform: ", log.LstdFlags)
	if err := run(*addr, *seed, *perPhase, *workers, *batch,
		*bootFrames, *bootEpochs, *baseEpochs, *wait, logger); err != nil {
		logger.Fatal(err)
	}
	logger.Print("PASS: replica fingerprints are bit-identical to in-process")
}

func run(addr string, seed uint64, perPhase, workers, batch,
	bootFrames, bootEpochs, baseEpochs int, wait time.Duration, logger *log.Logger) error {

	if err := waitBooted(addr, wait); err != nil {
		return err
	}

	logger.Printf("bootstrapping in-process reference (seed %d)", seed)
	ref, err := odin.New(
		odin.WithSeed(seed),
		odin.WithBootstrapFrames(bootFrames),
		odin.WithBootstrapEpochs(bootEpochs),
		odin.WithBaselineEpochs(baseEpochs),
	)
	if err != nil {
		return err
	}
	defer ref.Close()
	if err := ref.Bootstrap(context.Background(), nil); err != nil {
		return err
	}

	frames := ref.GenerateFrames(odin.NightData, perPhase)
	frames = append(frames, ref.GenerateFrames(odin.DayData, perPhase)...)

	st, err := ref.OpenStream(context.Background(), odin.StreamOptions{Name: "ref"})
	if err != nil {
		return err
	}
	want := make([]string, len(frames))
	for i, f := range frames {
		res, err := st.Process(context.Background(), f)
		if err != nil {
			return err
		}
		want[i] = res.Fingerprint()
	}
	st.Close()

	logger.Printf("replaying %d frames over HTTP (%d workers, batches of %d)", len(frames), workers, batch)
	var create serveapi.CreateStreamResponse
	if err := postJSON(addr+"/v1/streams",
		serveapi.CreateStreamRequest{Name: "conform", Workers: workers}, &create); err != nil {
		return err
	}
	mismatches := 0
	for i := 0; i < len(frames); i += batch {
		j := min(i+batch, len(frames))
		req := serveapi.FramesRequest{}
		for _, f := range frames[i:j] {
			req.Frames = append(req.Frames, serveapi.FromFrame(f))
		}
		var resp serveapi.FramesResponse
		if err := postJSON(addr+"/v1/streams/"+create.ID+"/frames", req, &resp); err != nil {
			return err
		}
		if len(resp.Results) != j-i {
			return fmt.Errorf("batch [%d:%d): got %d results", i, j, len(resp.Results))
		}
		for k, r := range resp.Results {
			if r.Fingerprint != want[i+k] {
				logger.Printf("frame %d: replica %s != reference %s", i+k, r.Fingerprint, want[i+k])
				mismatches++
			}
		}
	}
	req, err := http.NewRequest(http.MethodDelete, addr+"/v1/streams/"+create.ID, nil)
	if err == nil {
		if resp, derr := http.DefaultClient.Do(req); derr == nil {
			resp.Body.Close()
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("%d/%d frames diverged", mismatches, len(frames))
	}
	return nil
}

// waitBooted polls /healthz until the replica reports booted.
func waitBooted(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			var h serveapi.HealthResponse
			derr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if derr == nil && h.Booted {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica at %s not booted after %v", addr, wait)
		}
		time.Sleep(500 * time.Millisecond)
	}
}

func postJSON(url string, body, out any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s = %d: %s", url, resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, out)
}
