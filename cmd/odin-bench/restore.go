package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"odin"
	"odin/internal/exp"
	"odin/internal/obs"
)

// The restore benchmark measures what a checkpoint buys on restart:
// time-to-first-detection of a warm start (Restore from a checkpoint,
// process one frame) versus a cold start (New + Bootstrap from scratch,
// process one frame), on identically-seeded servers. The measurement
// self-gates — a warm start must be at least 5× faster than the cold
// re-bootstrap it replaces, and the restored server must replay the
// post-checkpoint stream bit-identically — and lands in BENCH_restore.json
// for CI tracking.

// restoreBenchResult is the JSON document written to -restoreout.
type restoreBenchResult struct {
	Scale            string  `json:"scale"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	WarmupFrames     int     `json:"warmup_frames"`
	CheckpointBytes  int     `json:"checkpoint_bytes"`
	CheckpointMillis float64 `json:"checkpoint_ms"`
	ColdTTFDMillis   float64 `json:"cold_ttfd_ms"`
	WarmTTFDMillis   float64 `json:"warm_ttfd_ms"`
	ReplayP50Millis  float64 `json:"replay_p50_ms"`
	ReplayP99Millis  float64 `json:"replay_p99_ms"`
	Speedup          float64 `json:"speedup_warm_vs_cold"`
	ReplayIdentical  bool    `json:"replay_identical"`
	GatePassed       bool    `json:"gate_passed"`
}

func restoreParams(scale exp.Scale) streamBenchParams {
	return streamParams(scale)
}

func runRestoreBench(scale exp.Scale, outPath string, w io.Writer) error {
	p := restoreParams(scale)
	const seed = 29

	boot := func() (*odin.Server, error) {
		srv, err := odin.New(
			odin.WithSeed(seed),
			odin.WithBootstrapFrames(p.bootFrames),
			odin.WithBootstrapEpochs(p.bootEpochs),
			odin.WithBaselineEpochs(p.baselineEpochs),
		)
		if err != nil {
			return nil, err
		}
		if err := srv.Bootstrap(context.Background(), nil); err != nil {
			return nil, err
		}
		return srv, nil
	}

	fmt.Fprintf(w, "Restore benchmark (%s scale): warm restart vs cold re-bootstrap\n", scale)

	// Build the donor: bootstrap, absorb a drift stream, checkpoint.
	donor, err := boot()
	if err != nil {
		return err
	}
	defer donor.Close()
	warmup := donor.GenerateFrames(odin.NightData, p.phaseLen)
	warmup = append(warmup, donor.GenerateFrames(odin.DayData, p.phaseLen)...)
	tail := donor.GenerateFrames(odin.SnowData, p.phaseLen)

	st, err := donor.OpenStream(context.Background(), odin.StreamOptions{Name: "donor"})
	if err != nil {
		return err
	}
	for _, f := range warmup {
		if _, err := st.Process(context.Background(), f); err != nil {
			return err
		}
	}

	var buf bytes.Buffer
	ckStart := time.Now()
	if err := donor.Checkpoint(&buf); err != nil {
		return err
	}
	ckMillis := float64(time.Since(ckStart).Microseconds()) / 1e3

	// Reference continuation: the donor keeps going through the tail.
	wantTail := make([]string, len(tail))
	for i, f := range tail {
		res, err := st.Process(context.Background(), f)
		if err != nil {
			return err
		}
		wantTail[i] = res.Fingerprint()
	}
	st.Close()

	// Warm start: restore the checkpoint, first detection, then the full
	// tail replay for the determinism check.
	warmStart := time.Now()
	restored, err := odin.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	defer restored.Close()
	rst, err := restored.OpenStream(context.Background(), odin.StreamOptions{Name: "warm"})
	if err != nil {
		return err
	}
	first, err := rst.Process(context.Background(), tail[0])
	if err != nil {
		return err
	}
	warmMillis := float64(time.Since(warmStart).Microseconds()) / 1e3

	identical := first.Fingerprint() == wantTail[0]
	replayMs := make([]float64, 0, len(tail)-1)
	for i, f := range tail[1:] {
		t0 := time.Now()
		res, err := rst.Process(context.Background(), f)
		if err != nil {
			return err
		}
		replayMs = append(replayMs, float64(time.Since(t0))/float64(time.Millisecond))
		if res.Fingerprint() != wantTail[i+1] {
			identical = false
		}
	}
	rst.Close()
	sort.Float64s(replayMs)

	// Cold start: a fresh server re-bootstraps from scratch before it can
	// serve its first detection.
	coldStart := time.Now()
	cold, err := boot()
	if err != nil {
		return err
	}
	defer cold.Close()
	cst, err := cold.OpenStream(context.Background(), odin.StreamOptions{Name: "cold"})
	if err != nil {
		return err
	}
	if _, err := cst.Process(context.Background(), tail[0]); err != nil {
		return err
	}
	coldMillis := float64(time.Since(coldStart).Microseconds()) / 1e3
	cst.Close()

	res := restoreBenchResult{
		Scale:            scale.String(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		WarmupFrames:     len(warmup),
		CheckpointBytes:  buf.Len(),
		CheckpointMillis: ckMillis,
		ColdTTFDMillis:   coldMillis,
		WarmTTFDMillis:   warmMillis,
		ReplayP50Millis:  obs.Percentile(replayMs, 0.50),
		ReplayP99Millis:  obs.Percentile(replayMs, 0.99),
		Speedup:          coldMillis / warmMillis,
		ReplayIdentical:  identical,
	}
	res.GatePassed = res.Speedup >= 5 && identical

	fmt.Fprintf(w, "  checkpoint: %d bytes in %.1f ms\n", res.CheckpointBytes, res.CheckpointMillis)
	fmt.Fprintf(w, "  cold start (bootstrap + first detection): %.1f ms\n", res.ColdTTFDMillis)
	fmt.Fprintf(w, "  warm start (restore + first detection):   %.1f ms\n", res.WarmTTFDMillis)
	fmt.Fprintf(w, "  speedup %.1fx, tail replay identical: %v (replay p50 %.2fms, p99 %.2fms)\n",
		res.Speedup, res.ReplayIdentical, res.ReplayP50Millis, res.ReplayP99Millis)

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "  wrote %s\n", outPath)

	if !res.GatePassed {
		return fmt.Errorf("restore gate failed: speedup %.2fx (want >= 5x), replay identical %v",
			res.Speedup, res.ReplayIdentical)
	}
	return nil
}
