package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"odin"
	"odin/internal/exp"
	"odin/internal/obs"
)

// The overload benchmark measures the QoS subsystem end to end: four
// cameras with mixed frame rates offer ~4x the server's calibrated
// service capacity in bursts, through bounded admission queues (Block
// policy), and the bench compares two arms on identical frame sequences:
//
//   - adaptive OFF: full fidelity always. The backlog grows for the whole
//     burst, so open-loop latency (result time minus the frame's
//     *scheduled* offer time — coordinated omission corrected) climbs to
//     seconds.
//   - adaptive ON: the per-stream hysteresis controller degrades fidelity
//     (lite model → count pushdown → subsampled counts) until service
//     matches the offered rate, then restores as the burst subsides.
//
// The gates, asserted after the JSON lands on disk:
//
//  1. Worst per-camera p99 with adaptation is at most 1/3 of the worst
//     per-camera p99 without it.
//  2. Zero silent frame loss: every offered frame yields exactly one
//     result in both arms, and a dedicated drop-oldest scenario checks
//     offered == delivered + drop markers == the stream's and server's
//     drop counters.
//  3. The controller actually moved: >=1 degrade and >=1 restore, and
//     every camera ends the run back at full fidelity.
//  4. At capacity (all-zero fidelity script, no load shedding), the QoS
//     path is bit-identical to a server without QoS at 1/4/8 workers.
//  5. Replaying the live run's admission decisions as a fidelity script
//     is deterministic: two replays at different worker counts produce
//     identical fingerprints.

// overloadMult is the sustained offered load as a multiple of the
// calibrated full-fidelity service rate.
const overloadMult = 4.0

// camShares is each camera's share of the offered load (multi-rate), and
// camWeights the matching dispatcher flush weights.
var (
	camShares  = []float64{0.4, 0.3, 0.2, 0.1}
	camWeights = []int{4, 3, 2, 1}
)

// overloadBenchResult is the JSON document written to -overloadout.
type overloadBenchResult struct {
	Scale           string            `json:"scale"`
	GOMAXPROCS      int               `json:"gomaxprocs"`
	ServiceFPS      float64           `json:"calibrated_service_fps"`
	OfferedMultiple float64           `json:"offered_multiple"`
	QueueBound      int               `json:"queue_bound"`
	Cameras         []overloadCam     `json:"cameras"`
	WorstOffP99Ms   float64           `json:"worst_p99_adaptive_off_ms"`
	WorstOnP99Ms    float64           `json:"worst_p99_adaptive_on_ms"`
	P99Improvement  float64           `json:"p99_improvement"` // off/on
	Transitions     int               `json:"fidelity_transitions"`
	FidelityOn      map[string]int    `json:"adaptive_on_fidelity_frames"`
	DropLedger      overloadDropStats `json:"drop_ledger"`
	IdentityWorkers []int             `json:"bit_identical_workers"`
	ReplayWindows   int               `json:"replay_script_windows"`
	ReplayIdentical bool              `json:"replay_identical"`
}

// overloadCam is one camera's offered load and per-arm latency tail.
type overloadCam struct {
	Cam         int     `json:"cam"`
	Share       float64 `json:"share"`
	Weight      int     `json:"weight"`
	Offered     int     `json:"offered"`
	OffP99Ms    float64 `json:"adaptive_off_p99_ms"`
	OffMaxMs    float64 `json:"adaptive_off_max_ms"`
	OnP99Ms     float64 `json:"adaptive_on_p99_ms"`
	OnMaxMs     float64 `json:"adaptive_on_max_ms"`
	OnDegraded  int     `json:"adaptive_on_degraded_frames"`
	Transitions int     `json:"adaptive_on_transitions"`
}

// overloadDropStats is the drop-oldest ledger scenario: every counter
// must agree or frames were lost silently.
type overloadDropStats struct {
	Policy        string `json:"policy"`
	Offered       int    `json:"offered"`
	Delivered     int    `json:"delivered"`
	Markers       int    `json:"drop_markers"`
	StreamDropped uint64 `json:"stream_dropped"`
	ServerDropped int    `json:"server_dropped"`
}

type overloadParams struct {
	bootFrames, bootEpochs, baselineEpochs int
	calibFrames                            int // per camera, calibration run
	burstFrames                            int // total across cameras, bursty phase
	tailFrames                             int // per camera, under-capacity cool-down
	queue                                  int // admission bound per stream
	identFrames                            int // bit-identity arm stream length
	maxBatch                               int
}

func overloadParamsFor(scale exp.Scale) overloadParams {
	if scale == exp.Full {
		return overloadParams{
			bootFrames: 600, bootEpochs: 8, baselineEpochs: 40,
			calibFrames: 480, burstFrames: 12000, tailFrames: 192,
			queue: 32, identFrames: 120, maxBatch: 8,
		}
	}
	return overloadParams{
		bootFrames: 150, bootEpochs: 2, baselineEpochs: 6,
		calibFrames: 192, burstFrames: 3600, tailFrames: 128,
		queue: 32, identFrames: 90, maxBatch: 8,
	}
}

// newOverloadServer builds one bootstrapped server on the default
// (FullData) bootstrap set.
func newOverloadServer(p overloadParams, extra ...odin.Option) (*odin.Server, error) {
	opts := append([]odin.Option{
		odin.WithSeed(73),
		odin.WithBootstrapFrames(p.bootFrames),
		odin.WithBootstrapEpochs(p.bootEpochs),
		odin.WithBaselineEpochs(p.baselineEpochs),
	}, extra...)
	srv, err := odin.New(opts...)
	if err != nil {
		return nil, err
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		return nil, err
	}
	return srv, nil
}

// genCamFrames generates every camera's frame sequence in a fixed order,
// so two servers with the same seed produce bit-identical fleets.
func genCamFrames(srv *odin.Server, p overloadParams) [][]*odin.Frame {
	out := make([][]*odin.Frame, len(camShares))
	for c, share := range camShares {
		n := int(share*float64(p.burstFrames)+0.5) + p.tailFrames
		out[c] = srv.GenerateFrames(odin.FullData, n)
	}
	return out
}

// overloadArmOptions are the serving options shared by the calibration
// run and both measured arms: async training with labels delayed beyond
// the stream, so drift recoveries (if any) neither stall serving nor
// differ between arms.
func overloadArmOptions() []odin.Option {
	return []odin.Option{odin.WithTrainAsync(true), odin.WithLabelDelay(1 << 20)}
}

// calibrateService measures the fleet's full-fidelity service rate
// (frames/sec aggregate) with the same topology the arms use: four
// concurrent streams, no pacing, no admission queue.
func calibrateService(p overloadParams) (float64, error) {
	srv, err := newOverloadServer(p, overloadArmOptions()...)
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, len(camShares))
	rates := make([]float64, len(camShares))
	for c := range camShares {
		frames := srv.GenerateFrames(odin.FullData, p.calibFrames)
		st, err := srv.OpenStream(context.Background(), odin.StreamOptions{
			Name: fmt.Sprintf("calib-%d", c), MaxBatch: p.maxBatch, Workers: 2,
		})
		if err != nil {
			return 0, err
		}
		wg.Add(1)
		go func(c int, st *odin.Stream, frames []*odin.Frame) {
			defer wg.Done()
			in := make(chan *odin.Frame, len(frames))
			for _, f := range frames {
				in <- f
			}
			close(in)
			// Time first result -> last result so stream-open and
			// pipeline warmup don't deflate the measured rate; an
			// underestimate here silently turns the "4x" offered
			// load into barely-over-capacity.
			n := 0
			var first, last time.Time
			for range st.Run(context.Background(), in) {
				if n == 0 {
					first = time.Now()
				}
				last = time.Now()
				n++
			}
			if n != len(frames) {
				errs <- fmt.Errorf("calibration delivered %d/%d results", n, len(frames))
				return
			}
			if n < 2 || !last.After(first) {
				errs <- fmt.Errorf("calibration stream %d too short to time", c)
				return
			}
			rates[c] = float64(n-1) / last.Sub(first).Seconds()
		}(c, st, frames)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	total := 0.0
	for _, r := range rates {
		total += r
	}
	return total, nil
}

// armCamStats is one camera's measured outcome in one arm.
type armCamStats struct {
	offered     int
	latMs       []float64 // sorted
	dropped     int
	degraded    int
	transitions int
	finalLevel  int
	fids        []odin.Fidelity // per delivered result, in seq order
}

// runOverloadArm drives the four-camera bursty schedule against one
// fresh server and returns per-camera open-loop latencies. Each camera's
// feeder follows an absolute schedule (hot 20-frame bursts at 2x its
// rate, lulls at 2/3, phase-shifted per camera) and latency is measured
// from the frame's scheduled time, so admission backpressure counts
// against the server — the open-loop view a real camera has.
func runOverloadArm(p overloadParams, serviceFPS float64, adaptive bool) ([]armCamStats, map[string]int, error) {
	extra := append(overloadArmOptions(), odin.WithMaxQueue(p.queue))
	if adaptive {
		extra = append(extra, odin.WithAdaptiveFidelity(odin.AdaptiveFidelity{}))
	}
	srv, err := newOverloadServer(p, extra...)
	if err != nil {
		return nil, nil, err
	}
	defer srv.Close()
	camFrames := genCamFrames(srv, p)

	stats := make([]armCamStats, len(camFrames))
	streams := make([]*odin.Stream, len(camFrames))
	var wg sync.WaitGroup
	errs := make(chan error, len(camFrames))
	for c := range camFrames {
		frames := camFrames[c]
		st, err := srv.OpenStream(context.Background(), odin.StreamOptions{
			Name:     fmt.Sprintf("cam-%d", c),
			MaxBatch: p.maxBatch, Workers: 2, Buffer: 2 * p.queue,
			Weight: camWeights[c],
		})
		if err != nil {
			return nil, nil, err
		}
		streams[c] = st
		stats[c].offered = len(frames)

		pos := make(map[int]int, len(frames))
		for k, f := range frames {
			pos[f.Index] = k
		}
		sched := make([]time.Time, len(frames))
		in := make(chan *odin.Frame, 1)
		out := st.Run(context.Background(), in)

		baseGap := time.Duration(float64(time.Second) / (overloadMult * camShares[c] * serviceFPS))
		tailGap := time.Duration(float64(time.Second) * 16 / serviceFPS)
		burstN := len(frames) - p.tailFrames

		wg.Add(1)
		go func(c int) { // feeder: absolute schedule, blocks on admission
			defer wg.Done()
			defer close(in)
			next := time.Now()
			for k, f := range frames {
				gap := tailGap
				if k < burstN {
					if ((k/20)+c)%2 == 0 {
						gap = baseGap / 2
					} else {
						gap = baseGap * 3 / 2
					}
				}
				next = next.Add(gap)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				sched[k] = next
				in <- f
			}
		}(c)

		wg.Add(1)
		go func(c int) { // consumer
			defer wg.Done()
			s := &stats[c]
			for r := range out {
				now := time.Now()
				if r.Dropped {
					s.dropped++
					continue
				}
				k, ok := pos[r.Frame.Index]
				if !ok {
					errs <- fmt.Errorf("cam %d: result for unknown frame %d", c, r.Frame.Index)
					return
				}
				s.latMs = append(s.latMs, float64(now.Sub(sched[k]).Microseconds())/1000)
				s.fids = append(s.fids, r.Fidelity)
				if r.Fidelity.Degraded() {
					s.degraded++
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, nil, err
	default:
	}

	fidCount := map[string]int{}
	for c := range stats {
		q := streams[c].QoS()
		stats[c].transitions = q.Transitions
		stats[c].finalLevel = q.Level
		for _, f := range stats[c].fids {
			fidCount[f.String()]++
		}
		sort.Float64s(stats[c].latMs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := srv.WaitRecoveries(ctx); err != nil {
		return nil, nil, fmt.Errorf("overload bench: recoveries did not converge: %w", err)
	}
	return stats, fidCount, nil
}

// runDropLedger checks the zero-silent-loss ledger under active
// shedding: a drop-oldest queue with a stalled consumer must account for
// every offered frame as either a delivered result or a drop marker, and
// the marker count must match the stream's and the server's counters.
func runDropLedger(p overloadParams) (overloadDropStats, error) {
	d := overloadDropStats{Policy: "drop-oldest", Offered: 160}
	srv, err := newOverloadServer(p, odin.WithMaxQueue(8), odin.WithDropPolicy(odin.DropOldest))
	if err != nil {
		return d, err
	}
	defer srv.Close()
	frames := srv.GenerateFrames(odin.FullData, d.Offered)
	st, err := srv.OpenStream(context.Background(), odin.StreamOptions{MaxBatch: 4, Buffer: 1})
	if err != nil {
		return d, err
	}
	in := make(chan *odin.Frame, len(frames))
	for _, f := range frames {
		in <- f
	}
	close(in)
	results := 0
	for r := range st.Run(context.Background(), in) {
		results++
		if r.Dropped {
			d.Markers++
		} else {
			d.Delivered++
		}
		time.Sleep(time.Millisecond) // stall so the queue sheds
	}
	d.StreamDropped = st.QoS().Dropped
	d.ServerDropped = srv.Stats().Dropped
	if results != d.Offered {
		return d, fmt.Errorf("overload bench: drop ledger broken: %d results for %d offered frames", results, d.Offered)
	}
	if d.Markers == 0 {
		return d, fmt.Errorf("overload bench: drop scenario shed nothing; the ledger check is vacuous")
	}
	if uint64(d.Markers) != d.StreamDropped || d.Markers != d.ServerDropped {
		return d, fmt.Errorf("overload bench: drop counters disagree: %d markers, stream %d, server %d",
			d.Markers, d.StreamDropped, d.ServerDropped)
	}
	return d, nil
}

// collectFingerprints runs frames through one stream and returns every
// result's fingerprint in sequence order.
func collectFingerprints(srv *odin.Server, frames []*odin.Frame, o odin.StreamOptions) ([]string, error) {
	st, err := srv.OpenStream(context.Background(), o)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	in := make(chan *odin.Frame, len(frames))
	for _, f := range frames {
		in <- f
	}
	close(in)
	var fps []string
	for r := range st.Run(context.Background(), in) {
		if r.Dropped {
			return nil, fmt.Errorf("unexpected drop marker at seq %d", r.Seq)
		}
		fps = append(fps, r.Fingerprint())
	}
	return fps, nil
}

// runIdentity asserts the determinism contract's first half: a QoS
// server pinned at full fidelity (all-zero script, blocking admission)
// is bit-identical to a server without QoS, at 1, 4 and 8 workers.
func runIdentity(p overloadParams) ([]int, error) {
	base, err := newOverloadServer(p)
	if err != nil {
		return nil, err
	}
	want, err := collectFingerprints(base, base.GenerateFrames(odin.NightData, p.identFrames),
		odin.StreamOptions{MaxBatch: 10, Workers: 1})
	base.Close()
	if err != nil {
		return nil, err
	}
	workers := []int{1, 4, 8}
	for _, w := range workers {
		srv, err := newOverloadServer(p, odin.WithMaxQueue(8),
			odin.WithAdaptiveFidelity(odin.AdaptiveFidelity{Script: []int{0}}))
		if err != nil {
			return nil, err
		}
		got, err := collectFingerprints(srv, srv.GenerateFrames(odin.NightData, p.identFrames),
			odin.StreamOptions{MaxBatch: 10, Workers: w})
		srv.Close()
		if err != nil {
			return nil, err
		}
		if len(got) != len(want) {
			return nil, fmt.Errorf("overload bench: identity arm workers=%d: %d results, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return nil, fmt.Errorf("overload bench: QoS at capacity diverged from non-QoS at workers=%d, frame %d:\n got %s\nwant %s",
					w, i, got[i], want[i])
			}
		}
	}
	return workers, nil
}

// deriveScript reduces a live run's per-result fidelities to a fidelity
// script over logical MaxBatch windows: a window containing any Skip
// frame replays at level 3 (subsampled counts); otherwise it replays at
// the deepest fidelity the window saw.
func deriveScript(fids []odin.Fidelity, maxBatch int) []int {
	if len(fids) == 0 {
		return []int{0}
	}
	script := make([]int, (len(fids)+maxBatch-1)/maxBatch)
	for w := range script {
		lvl := 0
		for i := w * maxBatch; i < (w+1)*maxBatch && i < len(fids); i++ {
			switch fids[i] {
			case odin.FidelitySkip:
				lvl = 3
			case odin.FidelityCount:
				if lvl < 2 {
					lvl = 2
				}
			case odin.FidelityLite:
				if lvl < 1 {
					lvl = 1
				}
			}
		}
		script[w] = lvl
	}
	return script
}

// runReplay asserts the determinism contract's second half on the live
// run's own admission decisions: replaying the derived script over the
// same frames is bit-identical at different worker counts.
func runReplay(p overloadParams, script []int) (bool, error) {
	mk := func(workers int) ([]string, error) {
		srv, err := newOverloadServer(p, odin.WithMaxQueue(p.queue),
			odin.WithAdaptiveFidelity(odin.AdaptiveFidelity{Script: script}))
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		frames := genCamFrames(srv, p)[0] // cam 0: the hottest camera's sequence
		return collectFingerprints(srv, frames,
			odin.StreamOptions{MaxBatch: p.maxBatch, Workers: workers})
	}
	w1, err := mk(1)
	if err != nil {
		return false, err
	}
	w4, err := mk(4)
	if err != nil {
		return false, err
	}
	if len(w1) != len(w4) {
		return false, fmt.Errorf("overload bench: replay lengths differ: %d vs %d", len(w1), len(w4))
	}
	for i := range w1 {
		if w1[i] != w4[i] {
			return false, fmt.Errorf("overload bench: replay diverged at frame %d:\n w1 %s\n w4 %s", i, w1[i], w4[i])
		}
	}
	return true, nil
}

// runOverloadBench measures the QoS subsystem under bursty overload and
// writes the JSON document to outPath; human-readable tables go to w.
func runOverloadBench(scale exp.Scale, outPath string, w io.Writer) error {
	p := overloadParamsFor(scale)
	doc := overloadBenchResult{
		Scale: scale.String(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		OfferedMultiple: overloadMult, QueueBound: p.queue,
	}

	fps, err := calibrateService(p)
	if err != nil {
		return err
	}
	doc.ServiceFPS = fps
	fmt.Fprintf(w, "Overload: calibrated fleet service rate %.1f f/s; offering %.0fx in bursts (queue=%d, GOMAXPROCS=%d)\n",
		fps, overloadMult, p.queue, doc.GOMAXPROCS)

	off, _, err := runOverloadArm(p, fps, false)
	if err != nil {
		return err
	}
	on, fidCount, err := runOverloadArm(p, fps, true)
	if err != nil {
		return err
	}
	doc.FidelityOn = fidCount

	for c := range off {
		cam := overloadCam{
			Cam: c, Share: camShares[c], Weight: camWeights[c], Offered: off[c].offered,
			OffP99Ms:   obs.Percentile(off[c].latMs, 0.99),
			OnP99Ms:    obs.Percentile(on[c].latMs, 0.99),
			OnDegraded: on[c].degraded, Transitions: on[c].transitions,
		}
		if n := len(off[c].latMs); n > 0 {
			cam.OffMaxMs = off[c].latMs[n-1]
		}
		if n := len(on[c].latMs); n > 0 {
			cam.OnMaxMs = on[c].latMs[n-1]
		}
		doc.Cameras = append(doc.Cameras, cam)
		doc.Transitions += on[c].transitions
		if cam.OffP99Ms > doc.WorstOffP99Ms {
			doc.WorstOffP99Ms = cam.OffP99Ms
		}
		if cam.OnP99Ms > doc.WorstOnP99Ms {
			doc.WorstOnP99Ms = cam.OnP99Ms
		}
		fmt.Fprintf(w, "  cam-%d (share %.0f%%, weight %d, %d frames):  p99 off %8.1f ms   on %8.1f ms   (%d degraded, %d transitions)\n",
			c, camShares[c]*100, camWeights[c], cam.Offered,
			cam.OffP99Ms, cam.OnP99Ms, cam.OnDegraded, cam.Transitions)
	}
	if doc.WorstOnP99Ms > 0 {
		doc.P99Improvement = doc.WorstOffP99Ms / doc.WorstOnP99Ms
	}
	fmt.Fprintf(w, "  worst per-camera p99: off %.1f ms, on %.1f ms (%.1fx better; %d fidelity transitions)\n",
		doc.WorstOffP99Ms, doc.WorstOnP99Ms, doc.P99Improvement, doc.Transitions)
	fmt.Fprintf(w, "  adaptive-on fidelity mix: %v\n", fidCount)

	if doc.DropLedger, err = runDropLedger(p); err != nil {
		return err
	}
	fmt.Fprintf(w, "  drop ledger (%s): %d offered = %d delivered + %d markers (stream %d, server %d)\n",
		doc.DropLedger.Policy, doc.DropLedger.Offered, doc.DropLedger.Delivered,
		doc.DropLedger.Markers, doc.DropLedger.StreamDropped, doc.DropLedger.ServerDropped)

	if doc.IdentityWorkers, err = runIdentity(p); err != nil {
		return err
	}
	fmt.Fprintf(w, "  at-capacity QoS bit-identical to non-QoS at workers %v\n", doc.IdentityWorkers)

	script := deriveScript(on[0].fids, p.maxBatch)
	doc.ReplayWindows = len(script)
	if doc.ReplayIdentical, err = runReplay(p, script); err != nil {
		return err
	}
	fmt.Fprintf(w, "  live-run script replay (%d windows) bit-identical at workers 1 vs 4\n", doc.ReplayWindows)

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "  wrote %s\n", outPath)

	// The JSON lands first so a regression still leaves the series for
	// debugging — but it must fail the run: this bench is the QoS
	// regression gate in CI.
	for c := range off {
		for arm, s := range map[string]armCamStats{"off": off[c], "on": on[c]} {
			if s.dropped != 0 || len(s.latMs) != s.offered {
				return fmt.Errorf("overload bench: cam %d (%s): %d results + %d drops for %d offered frames under Block admission",
					c, arm, len(s.latMs), s.dropped, s.offered)
			}
		}
		if on[c].finalLevel != 0 {
			return fmt.Errorf("overload bench: cam %d ended at fidelity level %d; the cool-down must restore full fidelity", c, on[c].finalLevel)
		}
	}
	if doc.Transitions < 2 {
		return fmt.Errorf("overload bench: only %d fidelity transitions; overload never engaged the controller", doc.Transitions)
	}
	degradedTotal := 0
	for c := range on {
		degradedTotal += on[c].degraded
	}
	if degradedTotal == 0 {
		return fmt.Errorf("overload bench: adaptive arm served every frame at full fidelity under %.0fx load", overloadMult)
	}
	if doc.WorstOnP99Ms*3 > doc.WorstOffP99Ms {
		return fmt.Errorf("overload bench: adaptive p99 %.1f ms not <= 1/3 of non-adaptive %.1f ms",
			doc.WorstOnP99Ms, doc.WorstOffP99Ms)
	}
	return nil
}
