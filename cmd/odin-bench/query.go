package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"odin"
	"odin/internal/exp"
)

// The query benchmark measures the two costs the prepared-query redesign
// is meant to eliminate: per-call parse/plan overhead (Server.Query vs a
// PreparedQuery executed repeatedly over the same frame set) and the
// overhead a standing Stream.Subscribe query adds to a bare Stream.Run
// session. Results are emitted as BENCH_query.json for CI tracking.

// queryBenchResult is the JSON document written to -queryout.
type queryBenchResult struct {
	Scale      string `json:"scale"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Prepared-query throughput vs per-call parse, over a cheap model so
	// the parse/plan cost is visible next to execution.
	QueryFrames     int     `json:"query_frames"`
	QueryIters      int     `json:"query_iters"`
	PerCallQPS      float64 `json:"per_call_parse_qps"`
	PreparedQPS     float64 `json:"prepared_qps"`
	PreparedSpeedup float64 `json:"prepared_speedup"`

	// Standing-query overhead on a live stream session.
	StreamFrames       int     `json:"stream_frames"`
	BareRunFPS         float64 `json:"bare_run_fps"`
	SubscribedRunFPS   float64 `json:"subscribed_run_fps"`
	SubscribedWindows  int     `json:"subscribed_windows"`
	SubscribeOverhead  float64 `json:"subscribe_overhead_frac"`
	SubscribeIdentical bool    `json:"subscribe_identical_to_offline"`
}

// queryBenchParams scales the benchmark.
type queryBenchParams struct {
	bootFrames, bootEpochs, baselineEpochs int
	queryFrames, queryIters                int
	streamFrames, windowSize               int
}

func queryParams(scale exp.Scale) queryBenchParams {
	if scale == exp.Full {
		return queryBenchParams{
			bootFrames: 600, bootEpochs: 8, baselineEpochs: 40,
			queryFrames: 64, queryIters: 400,
			streamFrames: 600, windowSize: 32,
		}
	}
	return queryBenchParams{
		bootFrames: 150, bootEpochs: 2, baselineEpochs: 6,
		queryFrames: 32, queryIters: 150,
		streamFrames: 180, windowSize: 30,
	}
}

func newQueryServer(p queryBenchParams) (*odin.Server, error) {
	srv, err := odin.New(
		odin.WithSeed(97),
		odin.WithBootstrapFrames(p.bootFrames),
		odin.WithBootstrapEpochs(p.bootEpochs),
		odin.WithBaselineEpochs(p.baselineEpochs),
	)
	if err != nil {
		return nil, err
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		return nil, err
	}
	return srv, nil
}

// runQueryBench measures prepared-query and subscription overhead and
// writes the JSON document to outPath; the human-readable table goes to w.
func runQueryBench(scale exp.Scale, outPath string, w io.Writer) error {
	p := queryParams(scale)
	ctx := context.Background()
	doc := queryBenchResult{
		Scale:       scale.String(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		QueryFrames: p.queryFrames,
		QueryIters:  p.queryIters,
	}
	fmt.Fprintf(w, "Query benchmark (GOMAXPROCS=%d)\n", doc.GOMAXPROCS)

	// Part 1 — prepared throughput vs per-call parse. A ground-truth
	// oracle model keeps execution cheap so the parse/plan share of each
	// call is visible.
	srv, err := newQueryServer(p)
	if err != nil {
		return err
	}
	srv.RegisterModel("oracle", func(f *odin.Frame) []odin.Detection {
		out := make([]odin.Detection, len(f.Boxes))
		for i, b := range f.Boxes {
			out[i] = odin.Detection{Box: b, Score: 0.99}
		}
		return out
	})
	frames := srv.GenerateFrames(odin.FullData, p.queryFrames)
	sql := "SELECT COUNT(detections) FROM (SELECT * FROM stream USING FILTER none) USING MODEL oracle WHERE class='car'"
	srv.RegisterFilter("none", func(*odin.Frame) bool { return true })

	start := time.Now()
	for i := 0; i < p.queryIters; i++ {
		if _, err := srv.Query(ctx, sql, frames); err != nil {
			return err
		}
	}
	doc.PerCallQPS = float64(p.queryIters) / time.Since(start).Seconds()

	pq, err := srv.PrepareSQL(sql)
	if err != nil {
		return err
	}
	start = time.Now()
	for i := 0; i < p.queryIters; i++ {
		if _, err := pq.Execute(ctx, frames); err != nil {
			return err
		}
	}
	doc.PreparedQPS = float64(p.queryIters) / time.Since(start).Seconds()
	doc.PreparedSpeedup = doc.PreparedQPS / doc.PerCallQPS
	fmt.Fprintf(w, "  per-call parse:  %10.0f queries/s\n", doc.PerCallQPS)
	fmt.Fprintf(w, "  prepared:        %10.0f queries/s  %.2fx\n", doc.PreparedQPS, doc.PreparedSpeedup)

	// Part 2 — standing-query overhead. Bare Run vs Run with one standing
	// COUNT subscription, on identically seeded servers; the subscription
	// aggregates are checked against an offline query on a third.
	streamFPS := func(subscribe bool) (float64, int, []int, int, error) {
		srv, err := newQueryServer(p)
		if err != nil {
			return 0, 0, nil, 0, err
		}
		frames := srv.GenerateFrames(odin.FullData, p.streamFrames)
		st, err := srv.OpenStream(ctx, odin.StreamOptions{Name: "bench", MaxBatch: 64})
		if err != nil {
			return 0, 0, nil, 0, err
		}
		defer st.Close()
		var wins <-chan odin.WindowResult
		if subscribe {
			pq, err := srv.PrepareSQL("SELECT COUNT(detections) FROM stream USING MODEL odin WHERE class='car'")
			if err != nil {
				return 0, 0, nil, 0, err
			}
			if wins, err = st.Subscribe(ctx, pq, odin.WindowOptions{Size: p.windowSize}); err != nil {
				return 0, 0, nil, 0, err
			}
		}
		in := make(chan *odin.Frame, len(frames))
		for _, f := range frames {
			in <- f
		}
		close(in)
		var perFrame []int
		count, windows := 0, 0
		collected := make(chan struct{})
		go func() {
			defer close(collected)
			if wins == nil {
				return
			}
			for wr := range wins {
				windows++
				count += wr.Count
				perFrame = append(perFrame, wr.PerFrame...)
			}
		}()
		start := time.Now()
		n := 0
		for range st.Run(ctx, in) {
			n++
		}
		secs := time.Since(start).Seconds()
		<-collected
		if n != len(frames) {
			return 0, 0, nil, 0, fmt.Errorf("query bench: run delivered %d/%d frames", n, len(frames))
		}
		return float64(n) / secs, count, perFrame, windows, nil
	}

	doc.StreamFrames = p.streamFrames
	bareFPS, _, _, _, err := streamFPS(false)
	if err != nil {
		return err
	}
	subFPS, subCount, subPerFrame, windows, err := streamFPS(true)
	if err != nil {
		return err
	}
	doc.BareRunFPS = bareFPS
	doc.SubscribedRunFPS = subFPS
	doc.SubscribedWindows = windows
	doc.SubscribeOverhead = 1 - subFPS/bareFPS

	// Offline reference for the identity check.
	refSrv, err := newQueryServer(p)
	if err != nil {
		return err
	}
	refFrames := refSrv.GenerateFrames(odin.FullData, p.streamFrames)
	ref, err := refSrv.Query(ctx, "SELECT COUNT(detections) FROM stream USING MODEL odin WHERE class='car'", refFrames)
	if err != nil {
		return err
	}
	doc.SubscribeIdentical = subCount == ref.Count && len(subPerFrame) == len(ref.PerFrame)
	if doc.SubscribeIdentical {
		for i := range ref.PerFrame {
			if subPerFrame[i] != ref.PerFrame[i] {
				doc.SubscribeIdentical = false
				break
			}
		}
	}
	fmt.Fprintf(w, "  bare Run:        %10.1f frames/s\n", doc.BareRunFPS)
	fmt.Fprintf(w, "  with standing query: %6.1f frames/s  (%d windows, overhead %.1f%%, identical=%v)\n",
		doc.SubscribedRunFPS, windows, doc.SubscribeOverhead*100, doc.SubscribeIdentical)

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "  wrote %s\n", outPath)
	// Like the stream bench, the identity check is a regression gate: a
	// standing query that diverges from the offline result fails the run.
	if !doc.SubscribeIdentical {
		return fmt.Errorf("query bench: subscription aggregates diverged from the offline query")
	}
	return nil
}
