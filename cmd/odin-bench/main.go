// Command odin-bench regenerates the paper's tables and figures, plus the
// streaming-throughput benchmark of the Server/Stream API.
//
// Usage:
//
//	odin-bench [-scale quick|full] [-exp all|fig1|fig2|fig4|fig5|table1|
//	            table2|fig8|table3|table4|table5|fig9|table6|table7|
//	            stream|query|dispatch|backend|fleet-recovery|restore|
//	            overload|obs]
//	            [-workers 1,2,4,8]
//	            [-streamout BENCH_stream.json] [-queryout BENCH_query.json]
//	            [-dispatchout BENCH_dispatch.json]
//	            [-backendout BENCH_backend.json]
//	            [-fleetrecoveryout BENCH_fleet_recovery.json]
//	            [-restoreout BENCH_restore.json]
//	            [-overloadout BENCH_overload.json]
//	            [-obsout BENCH_obs.json] [-v]
//
// Experiments share one context, so models trained for an earlier
// experiment are reused by later ones. Four experiments drive the public
// odin.Server API instead: "stream" compares sequential Stream.Process
// against sharded Stream.Run across a -workers sweep (default 1,2,4,8) on
// the Fig9 drift stream (frames/sec series → -streamout), "query" measures
// prepared-query throughput vs per-call parse plus the overhead of a
// standing Stream.Subscribe query vs a bare Run session (→ -queryout),
// "dispatch" measures the fleet dispatcher — per-stream vs cross-stream
// batched throughput at 1/2/4/8 cameras and the recovery-stall p99 with
// inline vs async drift training (→ -dispatchout), "backend" compares
// the float32 compute backend against the float64 reference on matmul/conv
// microkernels and end-to-end DetectBatch, gating a ≥1.5× float32 speedup
// (→ -backendout), "fleet-recovery" measures the fleet model registry —
// four cameras drifting through the same dawn, gating a ≥2× reduction in
// scratch trainings via adopt/coalesce plus bit-identical registry-on
// results across worker counts (→ -fleetrecoveryout), "restore"
// measures warm restart from a checkpoint against cold re-bootstrap,
// gating a ≥5× time-to-first-detection speedup plus a bit-identical
// post-checkpoint tail replay (→ -restoreout), and "overload" drives a
// four-camera bursty fleet at ~4× the calibrated service rate through
// bounded admission queues, gating that adaptive fidelity degradation
// bounds the worst per-camera p99 at ≤1/3 of the non-adaptive arm with
// zero silent frame loss, full-fidelity restoration after the burst,
// at-capacity bit-identity with the non-QoS path, and a deterministic
// script replay of the live run's admission decisions (→ -overloadout),
// and "obs" measures the observability layer's cost — gating ≤5% steady-
// state throughput overhead, zero added allocations per frame on the hot
// path, and bit-identical drift-stream fingerprints with obs on and off
// at 1/4/8 workers (→ -obsout).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"odin/internal/exp"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	expFlag := flag.String("exp", "all", "comma-separated experiment ids or 'all'")
	streamOut := flag.String("streamout", "BENCH_stream.json", "output path of the 'stream' experiment's JSON series")
	queryOut := flag.String("queryout", "BENCH_query.json", "output path of the 'query' experiment's JSON document")
	dispatchOut := flag.String("dispatchout", "BENCH_dispatch.json", "output path of the 'dispatch' experiment's JSON document")
	backendOut := flag.String("backendout", "BENCH_backend.json", "output path of the 'backend' experiment's JSON document")
	fleetRecoveryOut := flag.String("fleetrecoveryout", "BENCH_fleet_recovery.json", "output path of the 'fleet-recovery' experiment's JSON document")
	restoreOut := flag.String("restoreout", "BENCH_restore.json", "output path of the 'restore' experiment's JSON document")
	overloadOut := flag.String("overloadout", "BENCH_overload.json", "output path of the 'overload' experiment's JSON document")
	obsOut := flag.String("obsout", "BENCH_obs.json", "output path of the 'obs' experiment's JSON document")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts for the 'stream' experiment's sharded sweep")
	verbose := flag.Bool("v", false, "log model-training progress")
	flag.Parse()

	scale, err := exp.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	workers, err := parseWorkers(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx := exp.NewContext(scale)
	if *verbose {
		ctx.SetLog(os.Stderr)
	}

	runners := []struct {
		id  string
		run func()
	}{
		{"fig1", func() { exp.RunFig1(ctx, os.Stdout) }},
		{"fig2", func() { exp.RunFig2(ctx, os.Stdout) }},
		{"fig4", func() { exp.RunFig4(ctx, os.Stdout) }},
		{"fig5", func() { exp.RunFig5(ctx, os.Stdout) }},
		{"table1", func() { exp.RunTable1(ctx, os.Stdout) }},
		{"table2", func() { exp.RunTable2(ctx, os.Stdout) }},
		{"fig8", func() { exp.RunFig8(ctx, os.Stdout) }},
		{"table3", func() { exp.RunTable3(ctx, os.Stdout) }},
		{"table4", func() { exp.RunTable4(ctx, os.Stdout) }},
		{"table5", func() { exp.RunTable5(ctx, os.Stdout) }},
		{"fig9", func() { exp.RunFig9(ctx, os.Stdout) }},
		{"table6", func() { exp.RunTable6(ctx, os.Stdout) }},
		{"table7", func() { exp.RunTable7(ctx, os.Stdout) }},
		{"ablation", func() { exp.RunAblationBands(ctx, os.Stdout) }},
		{"stream", func() {
			if err := runStreamBench(scale, workers, *streamOut, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}},
		{"query", func() {
			if err := runQueryBench(scale, *queryOut, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}},
		{"dispatch", func() {
			if err := runDispatchBench(scale, *dispatchOut, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}},
		{"backend", func() {
			if err := runBackendBench(scale, *backendOut, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}},
		{"fleet-recovery", func() {
			if err := runFleetRecoveryBench(scale, *fleetRecoveryOut, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}},
		{"restore", func() {
			if err := runRestoreBench(scale, *restoreOut, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}},
		{"overload", func() {
			if err := runOverloadBench(scale, *overloadOut, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}},
		{"obs", func() {
			if err := runObsBench(scale, *obsOut, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}},
	}

	want := map[string]bool{}
	all := *expFlag == "all"
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	ran := 0
	for _, r := range runners {
		if !all && !want[r.id] {
			continue
		}
		start := time.Now()
		r.run()
		fmt.Printf("[%s completed in %s]\n", r.id, time.Since(start).Round(time.Second))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *expFlag)
		os.Exit(2)
	}
}

// parseWorkers parses the -workers sweep list ("1,2,4,8") into worker
// counts, rejecting empty lists and non-positive entries.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid -workers entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers list is empty")
	}
	return out, nil
}
