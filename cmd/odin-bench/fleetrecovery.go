package main

import (
	"context"
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"time"

	"odin/internal/core"
	"odin/internal/detect"
	"odin/internal/dispatch"
	"odin/internal/exp"
	"odin/internal/gan"
	"odin/internal/registry"
	"odin/internal/synth"
)

// The fleet-recovery benchmark measures cross-camera correlated recovery
// (DESIGN.md §9) on the dawn scenario: four cameras sharing a bootstrap
// substrate each live through a stable night phase, then dawn breaks on all
// of them. Without the registry every camera trains its own night and day
// recoveries from scratch — 4× identical work. With a shared model registry
// the first camera to claim each regime builds it and the rest adopt or
// coalesce, so the number of scratch trainings is per-regime, not
// per-camera.
//
// Each arm drives four core pipelines round-robin in fixed windows from one
// goroutine, with a trainer Wait barrier after every round so recoveries
// land at deterministic window boundaries. That makes the registry-on runs
// bit-reproducible, which the bench asserts by re-running the on arm across
// worker counts and comparing per-camera result fingerprints.
//
// Gates (the JSON lands on disk first so a regression still leaves the
// series for debugging):
//   - registry-on scratch trainings ≤ half of registry-off (the ≥2×
//     reduction headline), with adopt+coalesce hits > 0;
//   - per-camera drift-event and cluster counts identical on/off — the
//     registry changes recovery cost, never detection behaviour;
//   - registry-on fingerprints bit-identical across 1/4/8 workers.

// fleetRecoveryResult is the JSON document written to -fleetrecoveryout.
type fleetRecoveryResult struct {
	Scale           string `json:"scale"`
	GOMAXPROCS      int    `json:"gomaxprocs"`
	Cameras         int    `json:"cameras"`
	FramesPerCamera int    `json:"frames_per_camera"`
	Workers         []int  `json:"workers_swept"`

	Off fleetRecoveryArm `json:"registry_off"`
	On  fleetRecoveryArm `json:"registry_on"`

	ScratchReduction float64 `json:"scratch_reduction_off_over_on"`
	Deterministic    bool    `json:"on_bit_identical_across_workers"`
}

// fleetRecoveryArm summarises one arm: aggregated trainer counters,
// per-camera detection behaviour, and the per-camera result fingerprints of
// the workers=1 run.
type fleetRecoveryArm struct {
	Scratch   int `json:"scratch_trainings"`
	Warm      int `json:"warm_trainings"`
	Adopted   int `json:"adopted"`
	Coalesced int `json:"coalesced"`
	Trained   int `json:"trained_total"`
	Failed    int `json:"failed"`

	DriftEvents  []int    `json:"drift_events_per_camera"`
	Clusters     []int    `json:"clusters_per_camera"`
	Fingerprints []string `json:"fingerprints_per_camera"`

	AdoptHits    int `json:"registry_adopt_hits,omitempty"`
	CoalesceHits int `json:"registry_coalesce_hits,omitempty"`
	WarmHits     int `json:"registry_warm_hits,omitempty"`
	Misses       int `json:"registry_misses,omitempty"`
	Published    int `json:"registry_published,omitempty"`
}

type fleetRecoveryParams struct {
	bootFrames, bootEpochs, baselineEpochs int
	cameras, nightFrames, dayFrames        int
	window, liteEpochs                     int
}

func fleetRecoveryParamsFor(scale exp.Scale) fleetRecoveryParams {
	if scale == exp.Full {
		return fleetRecoveryParams{
			bootFrames: 600, bootEpochs: 8, baselineEpochs: 40,
			cameras: 4, nightFrames: 80, dayFrames: 160,
			window: 20, liteEpochs: 12,
		}
	}
	return fleetRecoveryParams{
		bootFrames: 150, bootEpochs: 2, baselineEpochs: 6,
		cameras: 4, nightFrames: 60, dayFrames: 100,
		window: 20, liteEpochs: 6,
	}
}

// fleetSubstrate is the shared bootstrap state every camera pipeline (and
// both arms) runs on: one DA-GAN projector and one baseline detector,
// trained once. Sharing it is what makes regime signatures comparable
// across cameras — and keeps the bench fast.
type fleetSubstrate struct {
	scene    synth.SceneConfig
	proj     gan.Projector
	baseline *detect.GridDetector
}

func buildFleetSubstrate(p fleetRecoveryParams) fleetSubstrate {
	scene := synth.DefaultSceneConfig()
	// Bootstrap on night only so dawn is genuinely out of distribution.
	boot := synth.NewSceneGen(91, scene).Dataset(synth.NightData, p.bootFrames)
	enc := core.DownsampleEncoder(2)
	dagan := core.TrainDAGAN(boot, enc, gan.Config{
		InputDim: core.EncodedDim(scene, 2),
		Latent:   16,
		Hidden:   []int{128, 48},
		LR:       0.001,
		Seed:     98,
	}, p.bootEpochs, 32)
	baseCfg := detect.YOLOConfig(scene.H, scene.W)
	baseCfg.Seed = 99
	baseline := detect.NewGridDetector(baseCfg)
	baseline.Fit(detect.SamplesFromFrames(boot), p.baselineEpochs, 16)
	return fleetSubstrate{scene: scene, proj: dagan, baseline: baseline}
}

// fleetCameraFrames regenerates the per-camera frame sequences for one run:
// every camera draws its own night and day frames from one seeded
// generator, so the sequences are identical across arms and worker counts
// but differ between cameras (same regimes, different frames).
func fleetCameraFrames(p fleetRecoveryParams, scene synth.SceneConfig) [][]*synth.Frame {
	gen := synth.NewSceneGen(137, scene)
	cams := make([][]*synth.Frame, p.cameras)
	for c := range cams {
		cams[c] = append(gen.Dataset(synth.NightData, p.nightFrames),
			gen.Dataset(synth.DayData, p.dayFrames)...)
	}
	return cams
}

// newFleetPipeline assembles one camera's async drift pipeline on the
// shared substrate, with the quick cluster profile (per-camera pipelines
// see each concept only once, so promotion must not need hundreds of
// frames) and lite-only recoveries.
func newFleetPipeline(p fleetRecoveryParams, sub fleetSubstrate) *core.Odin {
	cfg := core.DefaultConfig(sub.scene)
	cfg.Cluster.MinPoints = 40
	cfg.Cluster.StabilitySteps = 10
	cfg.Cluster.TempWindow = 80
	cfg.Spec.LiteEpochs = p.liteEpochs
	cfg.Spec.LabelDelay = 1 << 20 // lite-only: one recovery per regime
	cfg.Spec.MaxTrainFrames = 120
	cfg.AsyncTrain = true
	return core.New(cfg, sub.proj, sub.baseline)
}

// runFleetRecoveryArm drives the camera fleet through the dawn scenario and
// returns the arm summary. shared is the fleet registry (nil for the off
// arm). Cameras advance round-robin in windows of p.window frames from this
// goroutine, with a Wait barrier on every trainer after each round.
func runFleetRecoveryArm(p fleetRecoveryParams, sub fleetSubstrate, shared *registry.Registry, workers int) (fleetRecoveryArm, error) {
	cams := fleetCameraFrames(p, sub.scene)
	pipes := make([]*core.Odin, p.cameras)
	trainers := make([]*dispatch.Trainer, p.cameras)
	for c := range pipes {
		pipes[c] = newFleetPipeline(p, sub)
		trainers[c] = dispatch.NewTrainer(pipes[c])
		if shared != nil {
			trainers[c].AttachRegistry(shared, fmt.Sprintf("cam%d", c), registry.DefaultPolicy())
		}
	}
	defer func() {
		for _, tr := range trainers {
			tr.Close()
		}
	}()

	hashes := make([]string, p.cameras)
	fps := make([]hash.Hash64, p.cameras)
	for c := range fps {
		fps[c] = fnv.New64a()
	}

	total := p.nightFrames + p.dayFrames
	for start := 0; start < total; start += p.window {
		end := start + p.window
		if end > total {
			end = total
		}
		for c, pipe := range pipes {
			for _, r := range pipe.ProcessBatch(cams[c][start:end], workers) {
				fps[c].Write([]byte(r.Fingerprint()))
				fps[c].Write([]byte{'\n'})
			}
		}
		// Barrier: every scheduled recovery lands (or rolls back) before the
		// next round, so model swaps hit deterministic window boundaries.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		for _, tr := range trainers {
			if err := tr.Wait(ctx); err != nil {
				cancel()
				return fleetRecoveryArm{}, fmt.Errorf("fleet-recovery bench: recovery did not converge: %w", err)
			}
		}
		cancel()
	}

	var arm fleetRecoveryArm
	for c, tr := range trainers {
		st := tr.Stats()
		arm.Scratch += st.Scratch
		arm.Warm += st.Warm
		arm.Adopted += st.Adopted
		arm.Coalesced += st.Coalesced
		arm.Trained += st.Trained
		arm.Failed += st.Failed
		arm.DriftEvents = append(arm.DriftEvents, pipes[c].Stats().DriftEvents)
		arm.Clusters = append(arm.Clusters, pipes[c].NumClusters())
		hashes[c] = fmt.Sprintf("%016x", fps[c].Sum64())
	}
	arm.Fingerprints = hashes
	if shared != nil {
		rst := shared.Stats()
		arm.AdoptHits = rst.AdoptHits
		arm.CoalesceHits = rst.Coalesced
		arm.WarmHits = rst.WarmHits
		arm.Misses = rst.Misses
		arm.Published = rst.Published
	}
	return arm, nil
}

// equalInts reports element-wise equality.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalStrings reports element-wise equality.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runFleetRecoveryBench measures cross-camera correlated recovery and
// writes the JSON document to outPath; human-readable output goes to w.
func runFleetRecoveryBench(scale exp.Scale, outPath string, w io.Writer) error {
	p := fleetRecoveryParamsFor(scale)
	sub := buildFleetSubstrate(p)
	workersSweep := []int{1, 4, 8}

	doc := fleetRecoveryResult{
		Scale: scale.String(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Cameras: p.cameras, FramesPerCamera: p.nightFrames + p.dayFrames,
		Workers: workersSweep,
	}

	fmt.Fprintf(w, "Fleet recovery (dawn scenario: %d cameras × %d night + %d day frames, shared substrate)\n",
		p.cameras, p.nightFrames, p.dayFrames)

	off, err := runFleetRecoveryArm(p, sub, nil, 1)
	if err != nil {
		return err
	}
	doc.Off = off
	fmt.Fprintf(w, "  registry off: %2d scratch trainings   drifts=%v clusters=%v\n",
		off.Scratch, off.DriftEvents, off.Clusters)

	// Registry-on across the worker sweep: each run gets a fresh registry
	// (adoption within a run is the measurement; carrying entries across
	// runs would trivialise it).
	var on fleetRecoveryArm
	doc.Deterministic = true
	for i, workers := range workersSweep {
		reg := registry.New(16)
		arm, err := runFleetRecoveryArm(p, sub, reg, workers)
		if err != nil {
			return err
		}
		if i == 0 {
			on = arm
		} else if !equalStrings(arm.Fingerprints, on.Fingerprints) {
			doc.Deterministic = false
			fmt.Fprintf(w, "  registry on (workers=%d): FINGERPRINT MISMATCH %v vs %v\n",
				workers, arm.Fingerprints, on.Fingerprints)
			continue
		}
		fmt.Fprintf(w, "  registry on (workers=%d): %2d scratch + %d adopted + %d coalesced + %d warm   drifts=%v clusters=%v\n",
			workers, arm.Scratch, arm.Adopted, arm.Coalesced, arm.Warm, arm.DriftEvents, arm.Clusters)
	}
	doc.On = on
	if on.Scratch > 0 {
		doc.ScratchReduction = float64(off.Scratch) / float64(on.Scratch)
	}
	fmt.Fprintf(w, "  scratch-training reduction: %.1fx   (registry: %d misses, %d adopt, %d coalesce, %d warm)\n",
		doc.ScratchReduction, on.Misses, on.AdoptHits, on.CoalesceHits, on.WarmHits)

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "  wrote %s\n", outPath)

	// Gates — after the JSON lands so a regression leaves the series behind.
	if off.Scratch == 0 {
		return fmt.Errorf("fleet-recovery bench: registry-off arm trained nothing; the scenario is vacuous")
	}
	if on.Scratch*2 > off.Scratch {
		return fmt.Errorf("fleet-recovery bench: scratch trainings only dropped from %d to %d (< 2x)", off.Scratch, on.Scratch)
	}
	if on.Adopted+on.Coalesced == 0 {
		return fmt.Errorf("fleet-recovery bench: no adoption or coalescing happened")
	}
	if !equalInts(on.DriftEvents, off.DriftEvents) || !equalInts(on.Clusters, off.Clusters) {
		return fmt.Errorf("fleet-recovery bench: registry changed detection behaviour: drifts %v vs %v, clusters %v vs %v",
			on.DriftEvents, off.DriftEvents, on.Clusters, off.Clusters)
	}
	if on.Failed > 0 || off.Failed > 0 {
		return fmt.Errorf("fleet-recovery bench: recoveries failed (on=%d off=%d)", on.Failed, off.Failed)
	}
	if !doc.Deterministic {
		return fmt.Errorf("fleet-recovery bench: registry-on results differ across worker counts")
	}
	return nil
}
