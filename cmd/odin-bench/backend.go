package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"odin/internal/detect"
	"odin/internal/exp"
	"odin/internal/nn"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// The backend benchmark compares the float32 compute backend against the
// float64 reference on the kernels that dominate serving cost — square
// matmul and the detector's conv layer — and end to end on DetectBatch
// through the heavyweight YOLO baseline. It writes BENCH_backend.json and
// fails the run if float32 does not clear the minimum speedup on every
// kernel and on end-to-end throughput: this bench is the performance
// regression gate for the vectorized backend.

// backendMinSpeedup is the gate: float32 must beat float64 by at least
// this factor on every measured kernel and end to end.
const backendMinSpeedup = 1.5

// backendBenchResult is the JSON document written to -backendout.
type backendBenchResult struct {
	Scale      string               `json:"scale"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	MinSpeedup float64              `json:"min_speedup_gate"`
	Kernels    []backendKernelBench `json:"kernels"`
	E2E        backendE2EBench      `json:"e2e_detect_batch"`
}

// backendKernelBench is one microkernel's measurement.
type backendKernelBench struct {
	Name      string  `json:"name"`
	F64GFLOPS float64 `json:"f64_gflops"`
	F32GFLOPS float64 `json:"f32_gflops"`
	Speedup   float64 `json:"speedup"`
}

// backendE2EBench is the end-to-end DetectBatch measurement.
type backendE2EBench struct {
	BatchFrames int     `json:"frames_per_batch"`
	F64FPS      float64 `json:"f64_fps"`
	F32FPS      float64 `json:"f32_fps"`
	Speedup     float64 `json:"speedup"`
}

// benchSecs runs f repeatedly for at least minDur after one warmup call and
// returns the mean seconds per call.
func benchSecs(minDur time.Duration, f func()) float64 {
	f() // warmup: pools fill, shadows pack
	var iters int
	start := time.Now()
	for time.Since(start) < minDur {
		f()
		iters++
	}
	return time.Since(start).Seconds() / float64(iters)
}

// benchMatMul measures one square-matmul size in GFLOP/s for dtype dt.
func benchMatMul(dt tensor.DType, n int, minDur time.Duration) float64 {
	rng := tensor.NewRNG(uint64(n))
	a := tensor.NewOf(dt, n, n)
	b := tensor.NewOf(dt, n, n)
	dst := tensor.NewOf(dt, n, n)
	rng.FillNormal(a, 1)
	rng.FillNormal(b, 1)
	secs := benchSecs(minDur, func() { tensor.MatMulInto(dst, a, b) })
	return 2 * float64(n) * float64(n) * float64(n) / secs / 1e9
}

// benchConv measures a detector-shaped conv forward in GFLOP/s for dtype
// dt: 3→16 channels, 3×3 kernel, stride 2 on a 64×64 frame, batch 16 — the
// shape of the YOLO baseline's first (and widest) layer.
func benchConv(dt tensor.DType, minDur time.Duration) float64 {
	const (
		batch, inC, h, w = 16, 3, 64, 64
		outC, k, stride  = 16, 3, 2
	)
	rng := tensor.NewRNG(7)
	conv := nn.NewConv2D(inC, h, w, outC, k, stride, 1, rng)
	x := tensor.NewOf(dt, batch, inC*h*w)
	rng.FillNormal(x, 1)
	secs := benchSecs(minDur, func() {
		out := conv.Forward(x, false)
		nn.Recycle(out)
	})
	flops := 2 * float64(batch) * float64(conv.OutH) * float64(conv.OutW) *
		float64(k) * float64(k) * float64(inC) * float64(outC)
	return flops / secs / 1e9
}

// benchDetect measures end-to-end DetectBatch frames/sec through the
// heavyweight YOLO baseline on dtype dt. The weights are untrained — decode
// cost depends only on threshold crossings, and identical seeds give both
// backends the same weights, so the comparison is symmetric.
func benchDetect(dt tensor.DType, imgs []*synth.Image, minDur time.Duration) float64 {
	scene := synth.DefaultSceneConfig()
	cfg := detect.YOLOConfig(scene.H, scene.W)
	cfg.DType = dt
	det := detect.NewGridDetector(cfg)
	secs := benchSecs(minDur, func() { det.DetectBatch(imgs) })
	return float64(len(imgs)) / secs
}

// runBackendBench measures both backends and writes the JSON document to
// outPath; the human-readable table goes to w. Returns an error — failing
// the run — if float32 misses the speedup gate anywhere.
func runBackendBench(scale exp.Scale, outPath string, w io.Writer) error {
	minDur := 300 * time.Millisecond
	sizes := []int{256, 512}
	if scale == exp.Full {
		minDur = time.Second
		sizes = []int{256, 512, 1024}
	}
	doc := backendBenchResult{
		Scale:      scale.String(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		MinSpeedup: backendMinSpeedup,
	}
	fmt.Fprintf(w, "Compute backend comparison (float32 vs float64, GOMAXPROCS=%d, gate ≥%.1fx)\n",
		doc.GOMAXPROCS, backendMinSpeedup)

	for _, n := range sizes {
		k := backendKernelBench{
			Name:      fmt.Sprintf("matmul_%d", n),
			F64GFLOPS: benchMatMul(tensor.F64, n, minDur),
			F32GFLOPS: benchMatMul(tensor.F32, n, minDur),
		}
		k.Speedup = k.F32GFLOPS / k.F64GFLOPS
		doc.Kernels = append(doc.Kernels, k)
		fmt.Fprintf(w, "  %-12s f64 %7.2f GFLOP/s   f32 %7.2f GFLOP/s   %5.2fx\n",
			k.Name, k.F64GFLOPS, k.F32GFLOPS, k.Speedup)
	}
	ck := backendKernelBench{
		Name:      "conv3x3_s2",
		F64GFLOPS: benchConv(tensor.F64, minDur),
		F32GFLOPS: benchConv(tensor.F32, minDur),
	}
	ck.Speedup = ck.F32GFLOPS / ck.F64GFLOPS
	doc.Kernels = append(doc.Kernels, ck)
	fmt.Fprintf(w, "  %-12s f64 %7.2f GFLOP/s   f32 %7.2f GFLOP/s   %5.2fx\n",
		ck.Name, ck.F64GFLOPS, ck.F32GFLOPS, ck.Speedup)

	// End to end: one shared frame batch, fresh identically-seeded detectors.
	scene := synth.DefaultSceneConfig()
	gen := synth.NewSceneGen(91, scene)
	frames := gen.Dataset(synth.FullData, 32)
	imgs := make([]*synth.Image, len(frames))
	for i, f := range frames {
		imgs[i] = f.Image
	}
	doc.E2E = backendE2EBench{
		BatchFrames: len(imgs),
		F64FPS:      benchDetect(tensor.F64, imgs, minDur),
		F32FPS:      benchDetect(tensor.F32, imgs, minDur),
	}
	doc.E2E.Speedup = doc.E2E.F32FPS / doc.E2E.F64FPS
	fmt.Fprintf(w, "  DetectBatch  f64 %7.1f frames/s   f32 %7.1f frames/s   %5.2fx\n",
		doc.E2E.F64FPS, doc.E2E.F32FPS, doc.E2E.Speedup)

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "  wrote %s\n", outPath)

	// The JSON lands first so a miss still leaves the numbers on disk; then
	// the gate fails the run.
	for _, k := range doc.Kernels {
		if k.Speedup < backendMinSpeedup {
			return fmt.Errorf("backend bench: %s speedup %.2fx below the %.1fx gate", k.Name, k.Speedup, backendMinSpeedup)
		}
	}
	if doc.E2E.Speedup < backendMinSpeedup {
		return fmt.Errorf("backend bench: DetectBatch speedup %.2fx below the %.1fx gate", doc.E2E.Speedup, backendMinSpeedup)
	}
	return nil
}
