package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"odin"
	"odin/internal/exp"
)

// The obs benchmark gates the observability layer's core contract: it is
// free enough to leave on in production and strictly observational. Three
// gates, all measured on identically-seeded servers differing only in
// WithObservability:
//
//  1. Overhead: steady-state sequential throughput (night-only stream, no
//     drift, no events) with obs on must be within 5% of obs off.
//  2. Allocations: the instrumented hot path must add no allocations per
//     frame (atomic counters and pre-sized histogram buckets only;
//     lifecycle events allocate, but none fire in steady state).
//  3. Determinism: the Fig9 drift stream — which exercises drift events,
//     recoveries and stage tracing — must produce bit-identical
//     fingerprints with obs on and off at 1, 4 and 8 workers.
//
// Results land in BENCH_obs.json for CI tracking; any failed gate fails
// the run.

// obsBenchResult is the JSON document written to -obsout.
type obsBenchResult struct {
	Scale               string           `json:"scale"`
	GOMAXPROCS          int              `json:"gomaxprocs"`
	SteadyFrames        int              `json:"steady_frames"`
	OffFPS              float64          `json:"off_fps"`
	OnFPS               float64          `json:"on_fps"`
	OverheadPct         float64          `json:"overhead_pct"`
	OffAllocsPerFrame   float64          `json:"off_allocs_per_frame"`
	OnAllocsPerFrame    float64          `json:"on_allocs_per_frame"`
	AddedAllocsPerFrame float64          `json:"added_allocs_per_frame"`
	IdentityRuns        []obsIdentityRun `json:"identity_runs"`
	GatePassed          bool             `json:"gate_passed"`
}

// obsIdentityRun records one obs-on vs obs-off fingerprint comparison on
// the drift stream.
type obsIdentityRun struct {
	Workers   int  `json:"workers"`
	Frames    int  `json:"frames"`
	Identical bool `json:"identical"`
}

func runObsBench(scale exp.Scale, outPath string, w io.Writer) error {
	p := streamParams(scale)
	const seed = 77

	newServer := func(obsOn bool) (*odin.Server, error) {
		srv, err := odin.New(
			odin.WithSeed(seed),
			odin.WithBootstrapFrames(p.bootFrames),
			odin.WithBootstrapEpochs(p.bootEpochs),
			odin.WithBaselineEpochs(p.baselineEpochs),
			odin.WithObservability(obsOn),
		)
		if err != nil {
			return nil, err
		}
		if err := srv.Bootstrap(context.Background(), nil); err != nil {
			return nil, err
		}
		return srv, nil
	}

	// Steady-state arm: night-only frames match the bootstrap regime, so no
	// drift fires and no events allocate — this isolates the per-frame cost
	// of the tracer and metric callbacks themselves.
	steadyFrames := 4 * p.phaseLen
	measure := func(obsOn bool) (secs, allocsPerFrame float64, err error) {
		srv, err := newServer(obsOn)
		if err != nil {
			return 0, 0, err
		}
		defer srv.Close()
		frames := srv.GenerateFrames(odin.NightData, steadyFrames)
		st, err := srv.OpenStream(context.Background(), odin.StreamOptions{Name: "steady"})
		if err != nil {
			return 0, 0, err
		}
		defer st.Close()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for _, f := range frames {
			if _, err := st.Process(context.Background(), f); err != nil {
				return 0, 0, err
			}
		}
		secs = time.Since(start).Seconds()
		runtime.ReadMemStats(&m1)
		allocsPerFrame = float64(m1.Mallocs-m0.Mallocs) / float64(len(frames))
		return secs, allocsPerFrame, nil
	}

	// Interleave the arms across reps so clock drift and background GC hit
	// both sides equally; keep the best time and the cleanest alloc count
	// per arm (GC noise only ever inflates Mallocs deltas).
	const reps = 3
	bestOff, bestOn := -1.0, -1.0
	allocsOff, allocsOn := -1.0, -1.0
	for rep := 0; rep < reps; rep++ {
		offSecs, offAllocs, err := measure(false)
		if err != nil {
			return err
		}
		onSecs, onAllocs, err := measure(true)
		if err != nil {
			return err
		}
		if bestOff < 0 || offSecs < bestOff {
			bestOff = offSecs
		}
		if bestOn < 0 || onSecs < bestOn {
			bestOn = onSecs
		}
		if allocsOff < 0 || offAllocs < allocsOff {
			allocsOff = offAllocs
		}
		if allocsOn < 0 || onAllocs < allocsOn {
			allocsOn = onAllocs
		}
	}

	res := obsBenchResult{
		Scale:               scale.String(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		SteadyFrames:        steadyFrames,
		OffFPS:              float64(steadyFrames) / bestOff,
		OnFPS:               float64(steadyFrames) / bestOn,
		OffAllocsPerFrame:   allocsOff,
		OnAllocsPerFrame:    allocsOn,
		AddedAllocsPerFrame: allocsOn - allocsOff,
	}
	res.OverheadPct = (res.OffFPS - res.OnFPS) / res.OffFPS * 100

	fmt.Fprintf(w, "Observability overhead (steady night stream, %d frames, GOMAXPROCS=%d)\n",
		steadyFrames, res.GOMAXPROCS)
	fmt.Fprintf(w, "  obs off: %8.1f frames/s  %6.1f allocs/frame\n", res.OffFPS, res.OffAllocsPerFrame)
	fmt.Fprintf(w, "  obs on:  %8.1f frames/s  %6.1f allocs/frame\n", res.OnFPS, res.OnAllocsPerFrame)
	fmt.Fprintf(w, "  overhead %.2f%%, added allocs/frame %.2f\n", res.OverheadPct, res.AddedAllocsPerFrame)

	// Determinism arm: the Fig9 drift stream under both settings, sharded.
	// fingerprints replays the same seeded stream on a fresh server.
	fingerprints := func(obsOn bool, workers int) ([]string, error) {
		srv, err := newServer(obsOn)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		frames := fig9PublicStream(srv, p.phaseLen)
		st, err := srv.OpenStream(context.Background(),
			odin.StreamOptions{Name: fmt.Sprintf("fp%d", workers), Workers: workers, MaxBatch: 64})
		if err != nil {
			return nil, err
		}
		in := make(chan *odin.Frame, len(frames))
		for _, f := range frames {
			in <- f
		}
		close(in)
		out := make([]string, 0, len(frames))
		for res := range st.Run(context.Background(), in) {
			out = append(out, res.Fingerprint())
		}
		if len(out) != len(frames) {
			return nil, fmt.Errorf("obs bench: %d workers delivered %d/%d results", workers, len(out), len(frames))
		}
		return out, nil
	}
	for _, workers := range []int{1, 4, 8} {
		off, err := fingerprints(false, workers)
		if err != nil {
			return err
		}
		on, err := fingerprints(true, workers)
		if err != nil {
			return err
		}
		identical := len(off) == len(on)
		for i := range off {
			if !identical || off[i] != on[i] {
				identical = false
				break
			}
		}
		res.IdentityRuns = append(res.IdentityRuns,
			obsIdentityRun{Workers: workers, Frames: len(off), Identical: identical})
		fmt.Fprintf(w, "  drift stream workers=%d: obs on/off identical=%v\n", workers, identical)
	}

	allIdentical := true
	for _, run := range res.IdentityRuns {
		allIdentical = allIdentical && run.Identical
	}
	// The alloc gate allows < 1 added alloc/frame: zero at per-frame
	// granularity, with headroom for one-off runtime allocations (timer
	// wheels, map growth) that land inside the measured window.
	res.GatePassed = res.OverheadPct <= 5 && res.AddedAllocsPerFrame < 1 && allIdentical

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "  wrote %s\n", outPath)

	if !res.GatePassed {
		return fmt.Errorf("obs gate failed: overhead %.2f%% (want <= 5%%), added allocs/frame %.2f (want < 1), identical %v",
			res.OverheadPct, res.AddedAllocsPerFrame, allIdentical)
	}
	return nil
}
