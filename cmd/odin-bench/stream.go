package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"odin"
	"odin/internal/exp"
	"odin/internal/obs"
)

// The streaming-throughput benchmark measures the public Server/Stream API
// on the Fig9 drifting sequence: wall-clock frames/sec of sequential
// Stream.Process versus sharded Stream.Run across the -workers sweep
// (default 1, 2, 4 and 8 workers), with the sharded results checked
// frame-by-frame against the sequential ones (detections, cluster
// assignments, drift events and stats must all match). Results are emitted
// as BENCH_stream.json for CI tracking.

// streamBenchResult is the JSON document written to -streamout.
type streamBenchResult struct {
	Scale         string           `json:"scale"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	Frames        int              `json:"frames"`
	DriftEvents   int              `json:"drift_events"`
	SequentialFPS float64          `json:"sequential_fps"`
	SeqP50Ms      float64          `json:"sequential_p50_ms"`
	SeqP99Ms      float64          `json:"sequential_p99_ms"`
	Runs          []streamBenchRun `json:"runs"`
}

// streamBenchRun is one sharded configuration's measurement.
type streamBenchRun struct {
	Workers   int     `json:"workers"`
	FPS       float64 `json:"fps"`
	Speedup   float64 `json:"speedup_vs_sequential"`
	Identical bool    `json:"identical_to_sequential"`
}

// streamBenchParams scales the benchmark: quick keeps it in CI-smoke
// range, full matches the paper's Fig9 stream length.
type streamBenchParams struct {
	bootFrames, bootEpochs, baselineEpochs, phaseLen int
}

func streamParams(scale exp.Scale) streamBenchParams {
	if scale == exp.Full {
		return streamBenchParams{bootFrames: 600, bootEpochs: 8, baselineEpochs: 40, phaseLen: 375}
	}
	return streamBenchParams{bootFrames: 150, bootEpochs: 2, baselineEpochs: 6, phaseLen: 60}
}

// newStreamServer builds and bootstraps one server for the benchmark; each
// configuration gets a fresh identically-seeded server so cluster
// evolution starts from the same state.
func newStreamServer(p streamBenchParams) (*odin.Server, error) {
	srv, err := odin.New(
		odin.WithSeed(91),
		odin.WithBootstrapFrames(p.bootFrames),
		odin.WithBootstrapEpochs(p.bootEpochs),
		odin.WithBaselineEpochs(p.baselineEpochs),
	)
	if err != nil {
		return nil, err
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		return nil, err
	}
	return srv, nil
}

// fig9PublicStream rebuilds the paper's 4-phase drifting sequence (NIGHT,
// +DAY, +SNOW, +RAIN with unadjusted round-robin mixing) through the
// public API, one frame at a time so the interleaving matches
// exp.fig9Stream's shape.
func fig9PublicStream(srv *odin.Server, phaseLen int) []*odin.Frame {
	pools := [][]odin.Subset{
		{odin.NightData},
		{odin.NightData, odin.DayData},
		{odin.NightData, odin.DayData, odin.SnowData},
		{odin.NightData, odin.DayData, odin.SnowData, odin.RainData},
	}
	out := make([]*odin.Frame, 0, 4*phaseLen)
	idx := 0
	for _, pool := range pools {
		for i := 0; i < phaseLen; i++ {
			out = append(out, srv.GenerateFrames(pool[idx%len(pool)], 1)...)
			idx++
		}
	}
	return out
}

// runStreamBench measures sequential vs sharded throughput and writes the
// JSON document to outPath. The human-readable table goes to w. A sharded
// run that diverges from the sequential results (compared frame by frame
// via Result.Fingerprint) is an error — this bench doubles as the
// determinism regression gate in CI.
func runStreamBench(scale exp.Scale, workerSweep []int, outPath string, w io.Writer) error {
	p := streamParams(scale)
	doc := streamBenchResult{Scale: scale.String(), GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// Sequential reference: Stream.Process frame by frame.
	srv, err := newStreamServer(p)
	if err != nil {
		return err
	}
	frames := fig9PublicStream(srv, p.phaseLen)
	doc.Frames = len(frames)
	st, err := srv.OpenStream(context.Background(), odin.StreamOptions{Name: "seq"})
	if err != nil {
		return err
	}
	want := make([]string, len(frames))
	latMs := make([]float64, len(frames))
	start := time.Now()
	for i, f := range frames {
		t0 := time.Now()
		r, err := st.Process(context.Background(), f)
		if err != nil {
			return err
		}
		latMs[i] = float64(time.Since(t0)) / float64(time.Millisecond)
		want[i] = r.Fingerprint()
	}
	seqSecs := time.Since(start).Seconds()
	sort.Float64s(latMs)
	doc.SequentialFPS = float64(len(frames)) / seqSecs
	doc.SeqP50Ms = obs.Percentile(latMs, 0.50)
	doc.SeqP99Ms = obs.Percentile(latMs, 0.99)
	doc.DriftEvents = srv.Stats().DriftEvents
	fmt.Fprintf(w, "Streaming throughput (Fig9 drift stream, %d frames, GOMAXPROCS=%d)\n",
		len(frames), doc.GOMAXPROCS)
	fmt.Fprintf(w, "  sequential Process: %8.1f frames/s  p50 %.2fms  p99 %.2fms  (%d drift events)\n",
		doc.SequentialFPS, doc.SeqP50Ms, doc.SeqP99Ms, doc.DriftEvents)

	for _, workers := range workerSweep {
		srv, err := newStreamServer(p)
		if err != nil {
			return err
		}
		frames := fig9PublicStream(srv, p.phaseLen)
		stream, err := srv.OpenStream(context.Background(),
			odin.StreamOptions{Name: fmt.Sprintf("w%d", workers), Workers: workers, MaxBatch: 64})
		if err != nil {
			return err
		}
		in := make(chan *odin.Frame, len(frames))
		for _, f := range frames {
			in <- f
		}
		close(in)
		identical := true
		start := time.Now()
		n := 0
		for res := range stream.Run(context.Background(), in) {
			if identical && (res.Seq != n || res.Fingerprint() != want[n]) {
				identical = false
			}
			n++
		}
		secs := time.Since(start).Seconds()
		if n != len(frames) {
			return fmt.Errorf("stream bench: %d workers delivered %d/%d results", workers, n, len(frames))
		}
		run := streamBenchRun{
			Workers:   workers,
			FPS:       float64(n) / secs,
			Speedup:   (float64(n) / secs) / doc.SequentialFPS,
			Identical: identical,
		}
		doc.Runs = append(doc.Runs, run)
		fmt.Fprintf(w, "  Run workers=%d:      %8.1f frames/s  %5.2fx  identical=%v\n",
			run.Workers, run.FPS, run.Speedup, run.Identical)
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "  wrote %s\n", outPath)
	// The JSON is written first so a divergence still leaves the series on
	// disk for debugging — but it must fail the run: this bench is the
	// determinism regression gate in CI.
	for _, run := range doc.Runs {
		if !run.Identical {
			return fmt.Errorf("stream bench: %d-worker run diverged from sequential results", run.Workers)
		}
	}
	return nil
}
