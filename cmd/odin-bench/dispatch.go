package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"odin"
	"odin/internal/exp"
	"odin/internal/obs"
)

// The dispatch benchmark measures the fleet subsystem on two axes, both on
// the same drifting-fleet scenario (every camera: a stable night phase,
// then dawn breaks — one shared day recovery serves the whole fleet):
//
//  1. Fleet throughput: wall-clock frames/sec to serve N concurrent camera
//     streams through the drift, with per-stream Run sessions + inline
//     training (a drift event trains the specializer under the pipeline
//     lock, stalling every camera) versus the dispatched fleet — windows
//     merged across sessions into shared ProcessBatch calls and training
//     moved to the async trainer, so serving continues (on the
//     previous-best model) while the recovery trains. Dispatched
//     throughput must not fall below per-stream at ≥2 streams.
//  2. Recovery stall: per-frame serving latency of a fleet living through
//     a 4-phase drift sequence, inline vs async training. Inline training
//     blocks the whole fleet for the full training duration — those
//     samples are the stall; the fleet-wide p99 must drop measurably with
//     async training.
//
// Results are emitted as BENCH_dispatch.json for CI tracking; the
// throughput and stall requirements are asserted, so this bench is the
// fleet regression gate. (Raw cross-stream batch merging is throughput-
// neutral on this CPU substrate — the blocked kernels already saturate at
// batch 1, see DESIGN.md §7 — so the throughput axis measures what the
// fleet subsystem actually changes end to end: drift recovery off the
// serving path plus merged windows.)

// dispatchBenchResult is the JSON document written to -dispatchout.
type dispatchBenchResult struct {
	Scale           string        `json:"scale"`
	GOMAXPROCS      int           `json:"gomaxprocs"`
	FramesPerStream int           `json:"frames_per_stream"`
	Fleet           []fleetPoint  `json:"fleet"`
	RecoveryStall   recoveryStall `json:"recovery_stall"`
}

// fleetPoint compares per-stream/inline and dispatched/async throughput
// at one fleet size, on the same drifting scenario.
type fleetPoint struct {
	Streams       int     `json:"streams"`
	PerStreamFPS  float64 `json:"per_stream_inline_fps"`
	DispatchedFPS float64 `json:"dispatched_async_fps"`
	Speedup       float64 `json:"speedup_dispatched_vs_per_stream"`
	PerDrifts     int     `json:"per_stream_drift_events"`
	DispDrifts    int     `json:"dispatched_drift_events"`
}

// recoveryStall compares serving latency through a drift event.
type recoveryStall struct {
	Frames         int     `json:"frames"`
	InlineDrifts   int     `json:"inline_drift_events"`
	AsyncDrifts    int     `json:"async_drift_events"`
	InlineP99Ms    float64 `json:"inline_p99_ms"`
	AsyncP99Ms     float64 `json:"async_p99_ms"`
	InlineMaxMs    float64 `json:"inline_max_ms"`
	AsyncMaxMs     float64 `json:"async_max_ms"`
	P99Reduction   float64 `json:"p99_reduction"` // inline/async
	PendingInterim int     `json:"async_interim_frames"`
}

type dispatchBenchParams struct {
	bootFrames, bootEpochs, baselineEpochs int
	framesPerStream                        int
	stallStreams, stallPhase               int
}

func dispatchParams(scale exp.Scale) dispatchBenchParams {
	if scale == exp.Full {
		return dispatchBenchParams{
			bootFrames: 600, bootEpochs: 8, baselineEpochs: 40,
			framesPerStream: 240, stallStreams: 8, stallPhase: 60,
		}
	}
	return dispatchBenchParams{
		bootFrames: 150, bootEpochs: 2, baselineEpochs: 6,
		framesPerStream: 120, stallStreams: 8, stallPhase: 40,
	}
}

// newDispatchServer builds one bootstrapped server; boot selects the
// bootstrap subset (FullData for throughput, NightData for the stall
// scenario so day genuinely drifts).
func newDispatchServer(p dispatchBenchParams, boot odin.Subset, extra ...odin.Option) (*odin.Server, error) {
	opts := append([]odin.Option{
		odin.WithSeed(73),
		odin.WithBootstrapFrames(p.bootFrames),
		odin.WithBootstrapEpochs(p.bootEpochs),
		odin.WithBaselineEpochs(p.baselineEpochs),
	}, extra...)
	srv, err := odin.New(opts...)
	if err != nil {
		return nil, err
	}
	if err := srv.Bootstrap(context.Background(), srv.GenerateFrames(boot, p.bootFrames)); err != nil {
		return nil, err
	}
	return srv, nil
}

// runFleet drives streams cameras concurrently through the shared drift
// scenario (night stable, then dawn breaks on every camera) and returns
// the total serving frames/sec and drift events. With async training the
// clock stops when every frame has been served — the point of the async
// path is exactly that recoveries still training do not hold frames
// hostage; WaitRecoveries then runs untimed so the server closes cleanly.
func runFleet(srv *odin.Server, streams, perStream int) (float64, int, error) {
	defer srv.Close()
	night := perStream / 5
	camFrames := make([][]*odin.Frame, streams)
	for c := range camFrames {
		camFrames[c] = append(srv.GenerateFrames(odin.NightData, night),
			srv.GenerateFrames(odin.DayData, perStream-night)...)
	}
	sts := make([]*odin.Stream, streams)
	for c := range sts {
		st, err := srv.OpenStream(context.Background(), odin.StreamOptions{
			Name: fmt.Sprintf("cam-%d", c), MaxBatch: 8,
		})
		if err != nil {
			return 0, 0, err
		}
		sts[c] = st
	}
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	start := time.Now()
	for c := range sts {
		wg.Add(1)
		go func(st *odin.Stream, frames []*odin.Frame) {
			defer wg.Done()
			in := make(chan *odin.Frame, len(frames))
			for _, f := range frames {
				in <- f
			}
			close(in)
			n := 0
			for range st.Run(context.Background(), in) {
				n++
			}
			if n != len(frames) {
				errs <- fmt.Errorf("dispatch bench: camera delivered %d/%d results", n, len(frames))
			}
		}(sts[c], camFrames[c])
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	select {
	case err := <-errs:
		return 0, 0, err
	default:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := srv.WaitRecoveries(ctx); err != nil {
		return 0, 0, fmt.Errorf("dispatch bench: fleet recovery did not converge: %w", err)
	}
	return float64(streams*perStream) / secs, srv.Stats().DriftEvents, nil
}

// measureStall bootstraps on night, then drives a fleet of concurrent
// streams through a 4-phase drifting sequence (night → day → snow → rain),
// timing every Stream.Process call. With inline training every drift event
// stalls the whole fleet for the training duration — those samples are
// what the p99 captures. Returns the sorted per-frame latencies (ms),
// drift events, and interim (pending) frames.
func measureStall(p dispatchBenchParams, async bool) ([]float64, int, int, error) {
	var extra []odin.Option
	if async {
		extra = append(extra, odin.WithTrainAsync(true))
	}
	srv, err := newDispatchServer(p, odin.NightData, extra...)
	if err != nil {
		return nil, 0, 0, err
	}
	defer srv.Close()

	// Per-camera frame sequences: the same drift phases, generated
	// per-stream so the fleet moves through each concept together.
	camFrames := make([][]*odin.Frame, p.stallStreams)
	for c := range camFrames {
		var frames []*odin.Frame
		for _, sub := range []odin.Subset{odin.NightData, odin.DayData, odin.SnowData, odin.RainData} {
			frames = append(frames, srv.GenerateFrames(sub, p.stallPhase)...)
		}
		camFrames[c] = frames
	}

	var mu sync.Mutex
	var lat []float64
	interim := 0
	var wg sync.WaitGroup
	errs := make(chan error, p.stallStreams)
	for c := range camFrames {
		st, err := srv.OpenStream(context.Background(), odin.StreamOptions{Name: fmt.Sprintf("stall-%d", c)})
		if err != nil {
			return nil, 0, 0, err
		}
		wg.Add(1)
		go func(st *odin.Stream, frames []*odin.Frame) {
			defer wg.Done()
			for _, f := range frames {
				start := time.Now()
				res, err := st.Process(context.Background(), f)
				ms := float64(time.Since(start).Microseconds()) / 1000
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				lat = append(lat, ms)
				if res.RecoveryPending {
					interim++
				}
				mu.Unlock()
			}
		}(st, camFrames[c])
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, 0, 0, err
	default:
	}
	if async {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		if err := srv.WaitRecoveries(ctx); err != nil {
			return nil, 0, 0, fmt.Errorf("dispatch bench: async recovery did not converge: %w", err)
		}
	}
	drifts := srv.Stats().DriftEvents
	sort.Float64s(lat)
	return lat, drifts, interim, nil
}

// runDispatchBench measures the fleet dispatcher and writes the JSON
// document to outPath; the human-readable tables go to w.
func runDispatchBench(scale exp.Scale, outPath string, w io.Writer) error {
	p := dispatchParams(scale)
	doc := dispatchBenchResult{
		Scale: scale.String(), GOMAXPROCS: runtime.GOMAXPROCS(0), FramesPerStream: p.framesPerStream,
	}

	fmt.Fprintf(w, "Fleet throughput through drift (%d frames/stream, night→day, MaxBatch=8, GOMAXPROCS=%d)\n",
		p.framesPerStream, doc.GOMAXPROCS)
	// Recoveries stay on the distilled lite models (label delay beyond the
	// stream) so both modes train the same job set: one shared night
	// promotion, one shared day recovery, regardless of fleet size.
	noSpec := odin.WithLabelDelay(1 << 20)
	for _, streams := range []int{1, 2, 4, 8} {
		per, err := newDispatchServer(p, odin.NightData, noSpec)
		if err != nil {
			return err
		}
		perFPS, perDrifts, err := runFleet(per, streams, p.framesPerStream)
		if err != nil {
			return err
		}
		disp, err := newDispatchServer(p, odin.NightData, noSpec,
			odin.WithDispatcher(true), odin.WithMaxBatch(64), odin.WithTrainAsync(true))
		if err != nil {
			return err
		}
		dispFPS, dispDrifts, err := runFleet(disp, streams, p.framesPerStream)
		if err != nil {
			return err
		}
		pt := fleetPoint{
			Streams: streams, PerStreamFPS: perFPS, DispatchedFPS: dispFPS,
			Speedup: dispFPS / perFPS, PerDrifts: perDrifts, DispDrifts: dispDrifts,
		}
		doc.Fleet = append(doc.Fleet, pt)
		fmt.Fprintf(w, "  streams=%d:  per-stream/inline %8.1f f/s (%d drifts)   dispatched/async %8.1f f/s (%d drifts)   %.2fx\n",
			pt.Streams, pt.PerStreamFPS, pt.PerDrifts, pt.DispatchedFPS, pt.DispDrifts, pt.Speedup)
	}

	inline, inDrifts, _, err := measureStall(p, false)
	if err != nil {
		return err
	}
	async, asDrifts, interim, err := measureStall(p, true)
	if err != nil {
		return err
	}
	doc.RecoveryStall = recoveryStall{
		Frames:         len(inline),
		InlineDrifts:   inDrifts,
		AsyncDrifts:    asDrifts,
		InlineP99Ms:    obs.Percentile(inline, 0.99),
		AsyncP99Ms:     obs.Percentile(async, 0.99),
		InlineMaxMs:    inline[len(inline)-1],
		AsyncMaxMs:     async[len(async)-1],
		PendingInterim: interim,
	}
	if doc.RecoveryStall.AsyncP99Ms > 0 {
		doc.RecoveryStall.P99Reduction = doc.RecoveryStall.InlineP99Ms / doc.RecoveryStall.AsyncP99Ms
	}
	rs := doc.RecoveryStall
	fmt.Fprintf(w, "Recovery stall (4-phase drift, %d concurrent streams, %d frames total)\n",
		p.stallStreams, rs.Frames)
	fmt.Fprintf(w, "  inline training:  p99 %8.2f ms   max %8.2f ms   (%d drift events)\n",
		rs.InlineP99Ms, rs.InlineMaxMs, rs.InlineDrifts)
	fmt.Fprintf(w, "  async  training:  p99 %8.2f ms   max %8.2f ms   (%d drift events, %d interim frames)\n",
		rs.AsyncP99Ms, rs.AsyncMaxMs, rs.AsyncDrifts, rs.PendingInterim)
	fmt.Fprintf(w, "  recovery-stall p99 reduction: %.1fx\n", rs.P99Reduction)

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "  wrote %s\n", outPath)

	// The JSON lands on disk first so a regression still leaves the series
	// for debugging — but it must fail the run: this bench is the fleet
	// regression gate in CI.
	for _, pt := range doc.Fleet {
		if pt.Streams >= 2 && pt.PerDrifts == 0 {
			return fmt.Errorf("dispatch bench: no drift at %d streams; the fleet comparison is vacuous", pt.Streams)
		}
		if pt.Streams >= 2 && pt.DispatchedFPS < pt.PerStreamFPS {
			return fmt.Errorf("dispatch bench: dispatched throughput %.1f f/s below per-stream %.1f f/s at %d streams",
				pt.DispatchedFPS, pt.PerStreamFPS, pt.Streams)
		}
	}
	if rs.InlineDrifts == 0 || rs.AsyncDrifts == 0 {
		return fmt.Errorf("dispatch bench: stall scenario triggered no drift (inline=%d async=%d)", rs.InlineDrifts, rs.AsyncDrifts)
	}
	if rs.AsyncP99Ms >= rs.InlineP99Ms {
		return fmt.Errorf("dispatch bench: async recovery-stall p99 %.2fms not below inline %.2fms", rs.AsyncP99Ms, rs.InlineP99Ms)
	}
	return nil
}
