package odin

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// TestBackendDeterminismAcrossWorkers extends the facade determinism
// guarantee to both compute backends: under WithBackend(Float64) and
// WithBackend(Float32) alike, sharded Run at 1, 4 and 8 workers must
// reproduce sequential Process bit for bit — detections, drift events and
// stats. Within a backend the kernels guarantee exact reproducibility
// regardless of partitioning (DESIGN.md §8); across backends only the
// float32 tolerance holds, which TestBackendCrossParity covers.
func TestBackendDeterminismAcrossWorkers(t *testing.T) {
	const seed, perPhase = 17, 40
	for _, backend := range []Backend{Float64, Float32} {
		t.Run(backend.String(), func(t *testing.T) {
			opts := append(fastServerOptions(seed), WithBackend(backend))
			ref, err := New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Bootstrap(context.Background(), nil); err != nil {
				t.Fatal(err)
			}
			frames := driftStream(ref, perPhase)
			st, err := ref.OpenStream(context.Background(), StreamOptions{Name: "seq"})
			if err != nil {
				t.Fatal(err)
			}
			want := make([]string, len(frames))
			for i, f := range frames {
				r, err := st.Process(context.Background(), f)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = r.Fingerprint()
			}
			wantStats := ref.Stats()
			if wantStats.DriftEvents == 0 {
				t.Fatal("drift stream produced no drift events; the determinism test would be vacuous")
			}

			for _, workers := range []int{1, 4, 8} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					srv, err := New(opts...)
					if err != nil {
						t.Fatal(err)
					}
					if err := srv.Bootstrap(context.Background(), nil); err != nil {
						t.Fatal(err)
					}
					frames := driftStream(srv, perPhase)
					stream, err := srv.OpenStream(context.Background(), StreamOptions{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					in := make(chan *Frame)
					go func() {
						defer close(in)
						for _, f := range frames {
							in <- f
						}
					}()
					got := 0
					for res := range stream.Run(context.Background(), in) {
						if key := res.Fingerprint(); key != want[got] {
							t.Fatalf("frame %d diverged from sequential:\n got %s\nwant %s", got, key, want[got])
						}
						got++
					}
					if got != len(frames) {
						t.Fatalf("received %d/%d results", got, len(frames))
					}
					if stats := srv.Stats(); !reflect.DeepEqual(stats, wantStats) {
						t.Fatalf("stats diverged: got %+v want %+v", stats, wantStats)
					}
				})
			}
		})
	}
}

// TestBackendCrossParity bounds the float64/float32 divergence at the
// public API: identically seeded servers on the two backends must agree on
// aggregate drift behaviour (cluster and drift-event counts) and produce
// detections whose scores match to well under the decision thresholds. The
// models are trained independently per backend, so this is an end-to-end
// tolerance check, not a bit comparison.
func TestBackendCrossParity(t *testing.T) {
	const seed, perPhase = 23, 30
	run := func(backend Backend) (*Server, []Result) {
		srv, err := New(append(fastServerOptions(seed), WithBackend(backend))...)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Bootstrap(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
		st, err := srv.OpenStream(context.Background(), StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var results []Result
		for _, f := range driftStream(srv, perPhase) {
			r, err := st.Process(context.Background(), f)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
		return srv, results
	}

	srv64, res64 := run(Float64)
	srv32, res32 := run(Float32)

	if srv64.NumClusters() != srv32.NumClusters() {
		t.Errorf("cluster counts diverged across backends: f64=%d f32=%d",
			srv64.NumClusters(), srv32.NumClusters())
	}
	st64, st32 := srv64.Stats(), srv32.Stats()
	if st64.DriftEvents != st32.DriftEvents {
		t.Errorf("drift-event counts diverged across backends: f64=%d f32=%d",
			st64.DriftEvents, st32.DriftEvents)
	}

	// Detection-level agreement: same boxes from same-architecture models
	// whose training differed only in rounding. Scores should track closely;
	// allow a small fraction of frames to disagree on count (threshold
	// crossings) but not wholesale divergence.
	frames := len(res64)
	mismatched := 0
	var maxScoreDelta float64
	for i := 0; i < frames; i++ {
		d64, d32 := res64[i].Detections, res32[i].Detections
		if len(d64) != len(d32) {
			mismatched++
			continue
		}
		for j := range d64 {
			if d64[j].Box.Class != d32[j].Box.Class {
				mismatched++
				break
			}
			if d := math.Abs(d64[j].Score - d32[j].Score); d > maxScoreDelta {
				maxScoreDelta = d
			}
		}
	}
	if mismatched > frames/10 {
		t.Errorf("%d/%d frames disagree across backends (allow ≤10%%)", mismatched, frames)
	}
	if maxScoreDelta > 1e-2 {
		t.Errorf("max detection score delta %g across backends exceeds 1e-2", maxScoreDelta)
	}
}
