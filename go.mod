module odin

go 1.24
