// Package odin is the public API of the ODIN visual data analytics system
// (Suprem et al., PVLDB 2020): automated drift detection and recovery for
// video analytics. It wraps the internal DETECTOR / SPECIALIZER / SELECTOR
// pipeline, the synthetic dash-cam substrate and the aggregation query
// engine behind a concurrent service layer: a Server owns the bootstrapped
// model substrate (DA-GAN projector, baseline detector, model manager,
// cluster state) and vends per-camera Stream sessions that share it — so a
// drift event recovered on one stream benefits every stream.
//
// Typical use:
//
//	srv, err := odin.New(odin.WithSeed(1), odin.WithPolicy(odin.PolicyDeltaBM))
//	if err != nil { ... }
//	if err := srv.Bootstrap(ctx, nil); err != nil { ... } // train DA-GAN + baseline
//
//	stream, err := srv.OpenStream(ctx, odin.StreamOptions{Name: "cam-0", Workers: 4})
//	for res := range stream.Run(ctx, frames) { // sharded, results in frame order
//	    if res.Drift != nil { ... }
//	}
//
//	pq, err := srv.Prepare(odin.Select(odin.Count).UsingModel("odin").Where(odin.Class("car")))
//	out, err := pq.Execute(ctx, frames)            // compiled once, zero parse/plan per call
//	windows, err := stream.Subscribe(ctx, pq, odin.WindowOptions{Size: 25})
//	for wr := range windows { ... }                // standing query: one aggregate per window
//
// One-shot string SQL remains available via Server.Query / PrepareSQL
// ("SELECT COUNT(detections) FROM stream USING MODEL odin WHERE
// class='car'"). Single frames can also be processed synchronously with
// Stream.Process. The pre-Server blocking facade survives as the
// deprecated System shim (see NewSystem).
package odin

import (
	"fmt"

	"odin/internal/core"
	"odin/internal/detect"
	"odin/internal/qos"
	"odin/internal/query"
	"odin/internal/synth"
)

// Re-exported domain types, so callers need only this package.
type (
	// Frame is one video frame with ground truth and domain metadata.
	Frame = synth.Frame
	// Box is an object bounding box.
	Box = synth.Box
	// Detection is one detected object with a confidence score.
	Detection = detect.Detection
	// Result is the outcome of processing one frame.
	Result = core.Result
	// Stats is pipeline telemetry (frames, outliers, drift events,
	// simulated throughput).
	Stats = core.Stats
	// Subset identifies one of the paper's five evaluation data subsets.
	Subset = synth.Subset
	// Domain is a (time-of-day, weather, location) environment condition.
	Domain = synth.Domain
	// QueryResult is the output of an aggregation query.
	QueryResult = query.Result
	// Fidelity is the per-frame treatment level of the QoS layer; every
	// Result carries the fidelity that served it (FidelityFull unless the
	// adaptive controller degraded the stream).
	Fidelity = qos.Fidelity
	// DropPolicy selects what a full admission queue (WithMaxQueue) does
	// with new frames.
	DropPolicy = qos.DropPolicy
)

// Fidelity ladder, re-exported (see WithAdaptiveFidelity). Ordered from
// most to least work per frame.
const (
	FidelityFull  = qos.Full
	FidelityLite  = qos.Lite
	FidelityCount = qos.Count
	FidelitySkip  = qos.Skip
)

// Admission-queue drop policies, re-exported (see WithDropPolicy).
const (
	DropBlock  = qos.Block
	DropNewest = qos.DropNewest
	DropOldest = qos.DropOldest
)

// ParseDropPolicy maps a CLI string ("block", "drop-newest",
// "drop-oldest") to a DropPolicy.
func ParseDropPolicy(s string) (DropPolicy, error) {
	return qos.ParseDropPolicy(s)
}

// Evaluation subsets, re-exported.
const (
	FullData  = synth.FullData
	DayData   = synth.DayData
	NightData = synth.NightData
	RainData  = synth.RainData
	SnowData  = synth.SnowData
)

// Object classes, re-exported.
const (
	ClassCar          = synth.ClassCar
	ClassTruck        = synth.ClassTruck
	ClassPerson       = synth.ClassPerson
	ClassTrafficLight = synth.ClassTrafficLight
	ClassSign         = synth.ClassSign
)

// Policy selects the SELECTOR's model-ensemble policy (§5.3).
type Policy int

// Selection policies.
const (
	// PolicyDeltaBM runs the models of every cluster whose ∆-band contains
	// the frame, falling back to KNN-W outside all bands (the default).
	PolicyDeltaBM Policy = iota
	// PolicyKNNU runs the k nearest models, unweighted.
	PolicyKNNU
	// PolicyKNNW runs the k nearest models, weighted inversely to distance.
	PolicyKNNW
	// PolicyMostRecent always runs the most recently trained model (the
	// "-SELECTOR" ablation).
	PolicyMostRecent
)

// String returns the policy's CLI name (the form ParsePolicy accepts).
func (p Policy) String() string {
	switch p {
	case PolicyDeltaBM:
		return "delta-bm"
	case PolicyKNNU:
		return "knn-u"
	case PolicyKNNW:
		return "knn-w"
	case PolicyMostRecent:
		return "most-recent"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy maps a CLI string ("delta-bm", "knn-u", "knn-w",
// "most-recent"; empty means the default) to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "delta-bm":
		return PolicyDeltaBM, nil
	case "knn-u":
		return PolicyKNNU, nil
	case "knn-w":
		return PolicyKNNW, nil
	case "most-recent":
		return PolicyMostRecent, nil
	}
	return PolicyDeltaBM, fmt.Errorf("odin: unknown policy %q", s)
}

// corePolicy maps the public constant to the internal selector policy.
func (p Policy) corePolicy() (core.Policy, error) {
	switch p {
	case PolicyDeltaBM:
		return core.PolicyDeltaBM, nil
	case PolicyKNNU:
		return core.PolicyKNNU, nil
	case PolicyKNNW:
		return core.PolicyKNNW, nil
	case PolicyMostRecent:
		return core.PolicyMostRecent, nil
	}
	return core.PolicyDeltaBM, fmt.Errorf("odin: invalid policy %v", int(p))
}
