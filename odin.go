// Package odin is the public API of the ODIN visual data analytics system
// (Suprem et al., PVLDB 2020): automated drift detection and recovery for
// video analytics. It wraps the internal DETECTOR / SPECIALIZER / SELECTOR
// pipeline, the synthetic dash-cam substrate and the aggregation query
// engine behind a small facade.
//
// Typical use:
//
//	sys, err := odin.New(odin.Options{Seed: 1})
//	sys.Bootstrap(nil) // train DA-GAN + baseline on generated data
//	for _, frame := range stream {
//	    r := sys.Process(frame)
//	    if r.Drift != nil { ... }
//	}
//	out, err := sys.Query("SELECT COUNT(detections) FROM stream USING MODEL odin WHERE class='car'", frames)
package odin

import (
	"fmt"

	"odin/internal/core"
	"odin/internal/detect"
	"odin/internal/gan"
	"odin/internal/query"
	"odin/internal/synth"
)

// Re-exported domain types, so callers need only this package.
type (
	// Frame is one video frame with ground truth and domain metadata.
	Frame = synth.Frame
	// Box is an object bounding box.
	Box = synth.Box
	// Detection is one detected object with a confidence score.
	Detection = detect.Detection
	// Result is the outcome of processing one frame.
	Result = core.Result
	// Subset identifies one of the paper's five evaluation data subsets.
	Subset = synth.Subset
	// Domain is a (time-of-day, weather, location) environment condition.
	Domain = synth.Domain
	// QueryResult is the output of an aggregation query.
	QueryResult = query.Result
)

// Evaluation subsets, re-exported.
const (
	FullData  = synth.FullData
	DayData   = synth.DayData
	NightData = synth.NightData
	RainData  = synth.RainData
	SnowData  = synth.SnowData
)

// Object classes, re-exported.
const (
	ClassCar          = synth.ClassCar
	ClassTruck        = synth.ClassTruck
	ClassPerson       = synth.ClassPerson
	ClassTrafficLight = synth.ClassTrafficLight
	ClassSign         = synth.ClassSign
)

// Options configures a System.
type Options struct {
	// Seed drives all randomness; equal seeds give identical systems.
	Seed uint64

	// BootstrapFrames is the number of held-out frames used to train the
	// DA-GAN projection and the baseline detector (default 600).
	BootstrapFrames int
	// BootstrapEpochs is the DA-GAN epoch budget (default 8).
	BootstrapEpochs int
	// BaselineEpochs is the baseline detector epoch budget (default 40).
	BaselineEpochs int

	// MaxModels caps resident specialized models; 0 = unlimited.
	MaxModels int
	// DriftRecovery disables the drift pipeline when false (static mode).
	DriftRecovery *bool

	// Policy selects the model-selection policy: "delta-bm" (default),
	// "knn-u", "knn-w" or "most-recent".
	Policy string
}

// System is a running ODIN instance.
type System struct {
	opts  Options
	scene synth.SceneConfig
	gen   *synth.SceneGen

	pipeline *core.Odin
	engine   *query.Engine
	booted   bool
}

// New creates a System. Call Bootstrap before Process or Query.
func New(opts Options) (*System, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.BootstrapFrames <= 0 {
		opts.BootstrapFrames = 600
	}
	if opts.BootstrapEpochs <= 0 {
		opts.BootstrapEpochs = 8
	}
	if opts.BaselineEpochs <= 0 {
		opts.BaselineEpochs = 40
	}
	switch opts.Policy {
	case "", "delta-bm", "knn-u", "knn-w", "most-recent":
	default:
		return nil, fmt.Errorf("odin: unknown policy %q", opts.Policy)
	}
	scene := synth.DefaultSceneConfig()
	return &System{
		opts:  opts,
		scene: scene,
		gen:   synth.NewSceneGen(opts.Seed, scene),
	}, nil
}

// GenerateFrames renders frames from a subset's domain distribution — the
// synthetic stand-in for reading dash-cam video (see DESIGN.md §1).
func (s *System) GenerateFrames(sub Subset, n int) []*Frame {
	return s.gen.Dataset(sub, n)
}

// Bootstrap trains the DA-GAN projection and the heavyweight baseline
// detector. When boot is nil, bootstrap frames are generated from the full
// domain distribution (the paper trains on a held-out unlabeled split).
func (s *System) Bootstrap(boot []*Frame) error {
	if s.booted {
		return fmt.Errorf("odin: system already bootstrapped")
	}
	if boot == nil {
		boot = s.gen.Dataset(synth.FullData, s.opts.BootstrapFrames)
	}
	enc := core.DownsampleEncoder(2)
	dgCfg := gan.Config{
		InputDim: core.EncodedDim(s.scene, 2),
		Latent:   16,
		Hidden:   []int{128, 48},
		LR:       0.001,
		Seed:     s.opts.Seed + 7,
	}
	dagan := core.TrainDAGAN(boot, enc, dgCfg, s.opts.BootstrapEpochs, 32)

	baseCfg := detect.YOLOConfig(s.scene.H, s.scene.W)
	baseCfg.Seed = s.opts.Seed + 9
	baseline := detect.NewGridDetector(baseCfg)
	baseline.Fit(detect.SamplesFromFrames(boot), s.opts.BaselineEpochs, 16)

	cfg := core.DefaultConfig(s.scene)
	cfg.Cluster.MaxClusters = s.opts.MaxModels
	if s.opts.DriftRecovery != nil {
		cfg.DriftRecovery = *s.opts.DriftRecovery
	}
	switch s.opts.Policy {
	case "knn-u":
		cfg.Selector.Policy = core.PolicyKNNU
	case "knn-w":
		cfg.Selector.Policy = core.PolicyKNNW
	case "most-recent":
		cfg.Selector.Policy = core.PolicyMostRecent
	}
	s.pipeline = core.New(cfg, dagan, baseline)

	s.engine = query.NewEngine()
	s.engine.RegisterModel("odin", func(f *Frame) []Detection {
		return s.pipeline.Process(f).Detections
	})
	s.engine.RegisterModel("yolo", func(f *Frame) []Detection {
		return baseline.Detect(f.Image)
	})
	s.booted = true
	return nil
}

// Process runs one frame through the drift-aware pipeline.
func (s *System) Process(f *Frame) Result {
	s.mustBoot()
	return s.pipeline.Process(f)
}

// Query parses and executes an aggregation query over frames. The built-in
// model names are "odin" (drift-aware pipeline) and "yolo" (static
// baseline); more can be added with RegisterModel / RegisterFilter.
func (s *System) Query(sql string, frames []*Frame) (*QueryResult, error) {
	s.mustBoot()
	return s.engine.Run(sql, frames)
}

// RegisterModel binds a custom detection model for USING MODEL clauses.
func (s *System) RegisterModel(name string, fn func(*Frame) []Detection) {
	s.mustBoot()
	s.engine.RegisterModel(name, fn)
}

// RegisterFilter binds a custom frame pre-screen for USING FILTER clauses.
func (s *System) RegisterFilter(name string, fn func(*Frame) bool) {
	s.mustBoot()
	s.engine.RegisterFilter(name, fn)
}

// Stats returns pipeline telemetry (frames, outliers, drift events,
// simulated throughput).
func (s *System) Stats() core.Stats {
	s.mustBoot()
	return s.pipeline.Stats()
}

// MemoryMB returns the simulated resident model memory.
func (s *System) MemoryMB() float64 {
	s.mustBoot()
	return s.pipeline.MemoryMB()
}

// NumClusters returns the number of discovered concept clusters.
func (s *System) NumClusters() int {
	s.mustBoot()
	return len(s.pipeline.Detector.Clusters.Permanent)
}

// NumModels returns the number of resident specialized models.
func (s *System) NumModels() int {
	s.mustBoot()
	return s.pipeline.Manager.NumModels()
}

func (s *System) mustBoot() {
	if !s.booted {
		panic("odin: call Bootstrap before using the system")
	}
}
