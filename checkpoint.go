package odin

import (
	"context"
	"fmt"
	"io"

	"odin/internal/checkpoint"
	"odin/internal/detect"
	"odin/internal/gan"
	"odin/internal/obs"
	"odin/internal/query"
	"odin/internal/synth"
)

// Checkpoint error sentinels, re-exported so callers can errors.Is against
// the failure modes Restore distinguishes.
var (
	// ErrCheckpointBadMagic marks a stream that is not an ODIN checkpoint.
	ErrCheckpointBadMagic = checkpoint.ErrBadMagic
	// ErrCheckpointVersion marks a checkpoint written by an incompatible
	// format version.
	ErrCheckpointVersion = checkpoint.ErrVersionMismatch
	// ErrCheckpointTruncated marks a checkpoint stream that ends early.
	ErrCheckpointTruncated = checkpoint.ErrTruncated
	// ErrCheckpointCorrupt marks a checkpoint whose bytes fail the CRC or
	// whose payload fails to decode.
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
)

// Checkpoint serializes the server's full recoverable state to w in the
// versioned binary format of DESIGN.md §10: the bootstrapped DA-GAN
// substrate, the baseline and every specialized detector (keyed by cluster,
// with the ModelGen counter), the cluster/∆-band drift-detector state, the
// outlier ring, the frame generator's position and — for a private fleet
// registry — the registry entries with their regime signatures.
//
// Checkpoint first waits for training quiescence: every scheduled async
// recovery lands or rolls back before state is captured (equivalent to
// WaitRecoveries), so a checkpoint never contains a half-applied model
// swap. Callers must pause frame submission for the duration of the call —
// frames processed concurrently with Checkpoint land nondeterministically
// on one side of the cut. Checkpoint also works after Close (the one
// post-Close operation that does): Close drains the trainer
// deterministically first, which is what makes checkpoint-on-shutdown
// well-defined. Servers sharing a fleet registry checkpoint their own
// state only; the shared registry belongs to the fleet, not to any one
// server's checkpoint.
//
// Restore the result with Restore. Weights are stored as float64 masters
// regardless of WithBackend, so a checkpoint can be restored under either
// backend.
func (s *Server) Checkpoint(w io.Writer) error {
	s.mu.Lock()
	if !s.booted {
		s.mu.Unlock()
		return ErrNotBootstrapped
	}
	pipeline, dagan, baseline := s.pipeline, s.dagan, s.baseline
	trainer := s.trainer
	reg := s.registry
	sharedReg := s.cfg.fleet != nil && s.cfg.fleet.Registry != nil
	s.mu.Unlock()

	// Quiescence: every scheduled recovery must land or roll back before we
	// capture state — the snapshot does not carry in-flight jobs. On a
	// closed server the trainer has already drained; Wait returns at once.
	if trainer != nil {
		if err := trainer.Wait(context.Background()); err != nil {
			return fmt.Errorf("odin: checkpoint: draining trainer: %w", err)
		}
	}

	s.genMu.Lock()
	genState := s.gen.State()
	s.genMu.Unlock()

	payload := &checkpoint.Payload{
		Seed:     s.cfg.seed,
		Scene:    s.scene,
		Gen:      genState,
		DAGAN:    dagan.State(),
		Baseline: baseline.State(),
		Pipeline: pipeline.Snapshot(),
	}
	if reg != nil && !sharedReg {
		st := reg.State()
		payload.Registry = &st
	}
	if err := checkpoint.Write(w, s.cfg.backend.dtype(), payload); err != nil {
		return err
	}
	s.obs.Event(obs.EvCheckpointSave, "", -1, int(pipeline.ModelGen()),
		fmt.Sprintf("%d models", len(payload.Pipeline.Manager.Models)))
	return nil
}

// Restore rebuilds a Server from a checkpoint written by Checkpoint and
// warm-starts it: the returned server is already bootstrapped (Bootstrap
// returns ErrAlreadyBootstrapped) and continues exactly where the
// checkpointed one stopped — same clusters, same models, same ∆-band
// state, same frame-generator position, same derived training seeds.
//
// Options supply the serving topology exactly as they do for a fresh
// server: workers, dispatcher, async training, fleet recovery, policy,
// backend, label delay, min score. Pass the same options the original
// server ran with to continue bit-identically (per backend — see below).
// Learned state always comes from the checkpoint; in particular the stored
// base seed overrides WithSeed (derived seeds must match the original),
// and the restored cluster geometry overrides WithMaxModels. Bootstrap
// schedule options (WithBootstrapFrames/Epochs, WithBaselineEpochs) are
// accepted and ignored — nothing is retrained.
//
// Cross-backend restore: weights are float64 masters in the file, so a
// checkpoint written under Float64 restores under Float32 (and vice
// versa). Within one backend, restore is bit-identical; across backends,
// results agree within the DESIGN.md §8 tolerance envelope.
//
// A fleet registry restores as follows: WithFleetRecovery sharing a
// registry adopts the shared (live) one and ignores checkpointed entries;
// WithFleetRecovery without a shared registry restores the checkpointed
// entries into the private registry; no WithFleetRecovery drops them.
func Restore(r io.Reader, opts ...Option) (*Server, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}

	payload, _, err := checkpoint.Read(r)
	if err != nil {
		return nil, fmt.Errorf("odin: restore: %w", err)
	}
	// Serve the stored weights with the backend the caller asked for; the
	// masters in the payload are dtype-independent.
	payload.SetDType(cfg.backend.dtype())
	// The stored seed governs every derived seed (specializer sequence);
	// it must survive restart for post-restore training to match.
	cfg.seed = payload.Seed

	engine := query.NewEngine()
	engine.SetMinScore(cfg.minScore)
	s := &Server{
		cfg:    cfg,
		scene:  payload.Scene,
		gen:    synth.GenFromState(payload.Gen),
		engine: engine,
	}
	if cfg.obs {
		s.obs = obs.New(0)
		s.registerServerMetrics()
	}

	dagan, err := gan.FromState(payload.DAGAN)
	if err != nil {
		return nil, fmt.Errorf("odin: restore projector: %w", err)
	}
	baseline, err := detect.FromState(payload.Baseline)
	if err != nil {
		return nil, fmt.Errorf("odin: restore baseline: %w", err)
	}
	pipeline, trainer, reg, batcher, err := s.assemble(dagan, baseline, &payload.Pipeline, payload.Registry)
	if err != nil {
		return nil, fmt.Errorf("odin: restore: %w", err)
	}

	s.mu.Lock()
	s.pipeline = pipeline
	s.dagan = dagan
	s.baseline = baseline
	s.batcher = batcher
	s.trainer = trainer
	s.registry = reg
	s.booted = true
	s.mu.Unlock()
	s.obs.Event(obs.EvCheckpointRestore, "", -1, int(pipeline.ModelGen()),
		fmt.Sprintf("%d models", len(payload.Pipeline.Manager.Models)))
	return s, nil
}
