//go:build !race

package odin

// raceEnabled scales test timeouts under the race detector.
const raceEnabled = false
