package odin

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// obsServer builds a bootstrapped server with the observability layer on,
// plus any extra options.
func obsServer(t *testing.T, seed uint64, extra ...Option) *Server {
	t.Helper()
	return qosServer(t, seed, append([]Option{WithObservability(true)}, extra...)...)
}

// obsDriftFrames generates a two-phase Night→Day stream; the day phase
// drifts away from the night-bootstrapped models, so drift events and
// recoveries fire.
func obsDriftFrames(srv *Server, perPhase int) []*Frame {
	fs := srv.GenerateFrames(NightData, perPhase)
	return append(fs, srv.GenerateFrames(DayData, perPhase)...)
}

// goldenFamilies is every metric family the facade registers, with its
// exposition type. registerServerMetrics registers all of them up front
// (subsystem absent → reads zero), so the set is identical on every server
// built WithObservability — a new family must be added here to ship.
var goldenFamilies = map[string]string{
	"odin_frames_total":                   "counter",
	"odin_outliers_total":                 "counter",
	"odin_drift_events_total":             "counter",
	"odin_dropped_frames_total":           "counter",
	"odin_sim_gpu_seconds_total":          "counter",
	"odin_fidelity_frames_total":          "counter",
	"odin_trainer_jobs_total":             "counter",
	"odin_registry_lookups_total":         "counter",
	"odin_registry_published_total":       "counter",
	"odin_registry_evicted_total":         "counter",
	"odin_dispatch_batches_total":         "counter",
	"odin_dispatch_windows_total":         "counter",
	"odin_dispatch_frames_total":          "counter",
	"odin_dispatch_partial_flushes_total": "counter",
	"odin_events_total":                   "counter",
	"odin_qos_dropped_frames_total":       "counter",
	"odin_qos_rejected_frames_total":      "counter",
	"odin_stage_frames_total":             "counter",
	"odin_model_generation":               "gauge",
	"odin_resident_models":                "gauge",
	"odin_clusters":                       "gauge",
	"odin_pending_recoveries":             "gauge",
	"odin_model_memory_mb":                "gauge",
	"odin_registry_models":                "gauge",
	"odin_registry_capacity":              "gauge",
	"odin_dispatch_max_merge":             "gauge",
	"odin_dispatch_queued_windows":        "gauge",
	"odin_dispatch_queued_frames":         "gauge",
	"odin_stage_seconds":                  "histogram",
	"odin_dispatch_merge_windows":         "histogram",
	"odin_train_build_seconds":            "histogram",
}

// scrape renders the server's metrics page and returns it as a string.
func scrape(t *testing.T, srv *Server) string {
	t.Helper()
	var buf bytes.Buffer
	if err := srv.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	return buf.String()
}

// metricValue extracts one un-labeled sample's value from an exposition
// page.
func metricValue(t *testing.T, page, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample for %s", name)
	return 0
}

// TestObsMetricsGoldenFamilies pins the exposition format: every golden
// family is present with the right TYPE, paired with a HELP line, carries
// at least one sample, and no family outside the golden set appears.
func TestObsMetricsGoldenFamilies(t *testing.T) {
	srv := obsServer(t, 7)
	st, err := srv.OpenStream(context.Background(), StreamOptions{Name: "golden"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, f := range obsDriftFrames(srv, 40) {
		if _, err := st.Process(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}

	page := scrape(t, srv)
	types := map[string]string{}
	helps := map[string]bool{}
	samples := map[string]int{}
	for _, line := range strings.Split(page, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if prev, dup := types[fields[2]]; dup {
				t.Fatalf("family %s declared twice (%s, %s)", fields[2], prev, fields[3])
			}
			types[fields[2]] = fields[3]
		case strings.HasPrefix(line, "# HELP "):
			helps[strings.Fields(line)[2]] = true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unexpected comment line %q", line)
		default:
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			// _bucket/_sum/_count samples belong to their histogram family.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(name, suf); ok && types[base] == "histogram" {
					name = base
					break
				}
			}
			samples[name]++
		}
	}

	for fam, typ := range goldenFamilies {
		if types[fam] != typ {
			t.Errorf("family %s: TYPE %q, want %q", fam, types[fam], typ)
		}
		if !helps[fam] {
			t.Errorf("family %s: no HELP line", fam)
		}
		if samples[fam] == 0 {
			t.Errorf("family %s: no samples", fam)
		}
	}
	for fam := range types {
		if _, ok := goldenFamilies[fam]; !ok {
			t.Errorf("family %s not in the golden set — add it to goldenFamilies", fam)
		}
	}

	// Spot-check the scrape against the authoritative ledgers.
	stats := srv.Stats()
	if got := metricValue(t, page, "odin_frames_total"); got != float64(stats.Frames) {
		t.Errorf("odin_frames_total %v, want %d", got, stats.Frames)
	}
	if got := metricValue(t, page, "odin_drift_events_total"); got != float64(stats.DriftEvents) {
		t.Errorf("odin_drift_events_total %v, want %d", got, stats.DriftEvents)
	}
}

// TestObsDisabledFacade pins the disabled contract: a server built without
// WithObservability reports disabled, refuses scrapes with the sentinel
// error, and returns no events.
func TestObsDisabledFacade(t *testing.T) {
	srv := qosServer(t, 13)
	if srv.ObservabilityEnabled() {
		t.Fatal("observability should default off")
	}
	if err := srv.WriteMetrics(io.Discard); !errors.Is(err, ErrObservabilityDisabled) {
		t.Fatalf("WriteMetrics: %v, want ErrObservabilityDisabled", err)
	}
	if evs := srv.RecentEvents(0); evs != nil {
		t.Fatalf("RecentEvents on disabled server: %v", evs)
	}
	if !obsServer(t, 13).ObservabilityEnabled() {
		t.Fatal("WithObservability(true) not reflected by ObservabilityEnabled")
	}
}

// TestObsRecentEventsSeq checks the lifecycle ring after a drift stream:
// events present, sequence numbers strictly increasing, drift among them,
// and RecentEvents(n) returns the tail.
func TestObsRecentEventsSeq(t *testing.T) {
	srv := obsServer(t, 17)
	st, err := srv.OpenStream(context.Background(), StreamOptions{Name: "ev"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, f := range obsDriftFrames(srv, 40) {
		if _, err := st.Process(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	evs := srv.RecentEvents(0)
	if len(evs) == 0 {
		t.Fatal("drift stream produced no lifecycle events")
	}
	sawDrift := false
	for i, e := range evs {
		if i > 0 && e.Seq <= evs[i-1].Seq {
			t.Fatalf("event %d: seq %d after %d", i, e.Seq, evs[i-1].Seq)
		}
		if e.Kind == EvDrift {
			sawDrift = true
		}
	}
	if srv.Stats().DriftEvents > 0 && !sawDrift {
		t.Fatal("stats count drift events but the ring has none")
	}
	if tail := srv.RecentEvents(2); len(evs) >= 2 {
		if len(tail) != 2 || tail[1].Seq != evs[len(evs)-1].Seq {
			t.Fatalf("RecentEvents(2) = %v, want the last two of %d", tail, len(evs))
		}
	}
}

// TestObsFingerprintParityWorkers is the determinism contract:
// instrumentation is strictly observational, so the drift stream's
// fingerprints are bit-identical with observability on and off at 1, 4
// and 8 workers.
func TestObsFingerprintParityWorkers(t *testing.T) {
	const seed, perPhase = 21, 45
	off := qosServer(t, seed)
	offFrames := obsDriftFrames(off, perPhase)
	on := obsServer(t, seed)
	onFrames := obsDriftFrames(on, perPhase)

	for _, workers := range []int{1, 4, 8} {
		want := collectRun(t, off, offFrames, StreamOptions{Workers: workers, MaxBatch: 16})
		got := collectRun(t, on, onFrames, StreamOptions{Workers: workers, MaxBatch: 16})
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results with obs, %d without", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Fingerprint() != want[i].Fingerprint() {
				t.Fatalf("workers=%d: result %d diverged with observability on", workers, i)
			}
		}
	}
}

// TestObsDropLedgerConsistency is the cross-layer accounting contract: at
// quiescence, the per-stream QoS drop counters, the server-level
// Stats().Dropped ledger, and both exported drop metrics all agree.
func TestObsDropLedgerConsistency(t *testing.T) {
	srv := obsServer(t, 5, WithMaxQueue(2), WithDropPolicy(DropNewest))
	var streams []*Stream
	dropsSeen := 0
	for _, name := range []string{"cam0", "cam1"} {
		frames := srv.GenerateFrames(DayData, 48)
		st, err := srv.OpenStream(context.Background(),
			StreamOptions{Name: name, MaxBatch: 4, Buffer: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		streams = append(streams, st)
		for r := range st.Run(context.Background(), feedAll(frames)) {
			if r.Dropped {
				dropsSeen++
			}
			time.Sleep(2 * time.Millisecond) // stall so the queue overflows
		}
	}
	if dropsSeen == 0 {
		t.Fatal("stalled consumers never overflowed the 2-frame queues")
	}

	var sum uint64
	for _, st := range streams {
		sum += st.QoS().Dropped
	}
	if sum != uint64(dropsSeen) {
		t.Fatalf("stream QoS counters sum to %d, drop markers say %d", sum, dropsSeen)
	}
	if got := srv.Stats().Dropped; uint64(got) != sum {
		t.Fatalf("Stats().Dropped = %d, stream QoS counters sum to %d", got, sum)
	}
	page := scrape(t, srv)
	if got := metricValue(t, page, "odin_dropped_frames_total"); got != float64(sum) {
		t.Fatalf("odin_dropped_frames_total %v, want %d", got, sum)
	}
	if got := metricValue(t, page, "odin_qos_dropped_frames_total"); got != float64(sum) {
		t.Fatalf("odin_qos_dropped_frames_total %v, want %d", got, sum)
	}
}

// TestObsScrapeRace hammers the read-side facade (metric scrapes and
// event-ring reads) while two sharded Run sessions process drifting
// streams — the -race gate for the registry's lock discipline.
func TestObsScrapeRace(t *testing.T) {
	srv := obsServer(t, 31)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for _, name := range []string{"a", "b"} {
		frames := obsDriftFrames(srv, 30)
		st, err := srv.OpenStream(context.Background(),
			StreamOptions{Name: name, Workers: 4, MaxBatch: 8})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer st.Close()
			for range st.Run(context.Background(), feedAll(frames)) {
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()

	for {
		select {
		case <-done:
			return
		default:
			if err := srv.WriteMetrics(io.Discard); err != nil {
				t.Errorf("WriteMetrics under load: %v", err)
				return
			}
			srv.RecentEvents(16)
		}
	}
}
