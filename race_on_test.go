//go:build race

package odin

// raceEnabled scales test timeouts under the race detector (roughly a
// 10–20× slowdown on the training-heavy fleet tests).
const raceEnabled = true
