package detect

import (
	"odin/internal/nn"
	"odin/internal/synth"
)

// Sample pairs a frame image with its training boxes (ground truth for
// specialized training, teacher outputs for distillation).
type Sample struct {
	Image *synth.Image
	Boxes []synth.Box
}

// SamplesFromFrames converts frames with ground truth into training
// samples — the oracle-label path of §5.2.
func SamplesFromFrames(frames []*synth.Frame) []Sample {
	out := make([]Sample, len(frames))
	for i, f := range frames {
		out[i] = Sample{Image: f.Image, Boxes: f.Boxes}
	}
	return out
}

// DistillSamples labels frames with a teacher's detections instead of
// ground truth — the student-teacher path used to train YOLO-Lite without
// oracle labels (§5.2). Only confident teacher detections become labels.
// Batch-capable teachers label whole frame batches per network pass.
func DistillSamples(teacher Detector, frames []*synth.Frame, minScore float64) []Sample {
	imgs := make([]*synth.Image, len(frames))
	for i, f := range frames {
		imgs[i] = f.Image
	}
	dets := detectAll(teacher, imgs)
	out := make([]Sample, len(frames))
	for i, f := range frames {
		var boxes []synth.Box
		for _, d := range dets[i] {
			if d.Score >= minScore {
				boxes = append(boxes, d.Box)
			}
		}
		out[i] = Sample{Image: f.Image, Boxes: boxes}
	}
	return out
}

// TrainEpoch runs one epoch of minibatch training and returns the mean
// loss per sample.
func (g *GridDetector) TrainEpoch(samples []Sample, batch int) float64 {
	if batch <= 0 {
		batch = 16
	}
	perm := g.rng.Perm(len(samples))
	var total float64
	count := 0
	for start := 0; start < len(perm); start += batch {
		end := start + batch
		if end > len(perm) {
			end = len(perm)
		}
		idx := perm[start:end]
		x := loadRows(g.Cfg.DType, len(idx), samples[0].Image.Dim(),
			func(i int) []float64 { return samples[idx[i]].Image.Flat() })
		out := g.Net.Forward(x, true)
		grad := nn.GetMatRawOf(out.DType(), out.R, out.C)
		var row64 []float64
		for i, id := range idx {
			target, objMask := g.buildTargets(samples[id].Boxes)
			row := out.Row64(i, row64)
			if out.V32 != nil {
				row64 = row // reuse the widening buffer across the batch
			}
			loss, gr := g.lossGrad(row, target, objMask)
			total += loss
			grad.SetRow(i, gr)
			count++
		}
		// Mean gradient over the batch.
		grad.Scale(1 / float64(len(idx)))
		g.Net.ZeroGrad()
		dx := g.Net.Backward(grad)
		nn.ClipGrads(g.Net.Params(), 10)
		g.opt.Step(g.Net.Params())
		nn.Recycle(x, out, grad, dx)
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Fit trains for the given number of epochs and returns the final epoch's
// mean loss.
func (g *GridDetector) Fit(samples []Sample, epochs, batch int) float64 {
	var last float64
	for e := 0; e < epochs; e++ {
		last = g.TrainEpoch(samples, batch)
	}
	return last
}
