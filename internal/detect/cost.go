package detect

import "fmt"

// ConvSpec describes one convolutional layer of a full-scale architecture:
// In→Out channels, K×K kernel, stride, and an optional following 2×2
// pooling step (PoolAfter == 2 halves the spatial dims).
type ConvSpec struct {
	In, Out   int
	K         int
	Stride    int
	PoolAfter int // 1 (or 0) = none, 2 = halve spatial dims after this layer

	// AtH/AtW, when non-zero, pin this layer's input resolution — used for
	// detection-head branches that run at an upsampled scale rather than
	// the backbone's sequential resolution.
	AtH, AtW int
}

// Arch is an analytic description of a full-scale detector architecture —
// the paper's YOLOv3 / YOLOv3-tiny / pruned-tiny networks — from which
// parameter counts, per-frame FLOPs, model size and simulated throughput
// are derived. Accuracy in this repository comes from really training the
// miniature GridDetector; throughput and memory are architecture
// properties, so they are computed from the very layer structures the
// paper reports (see DESIGN.md §1).
type Arch struct {
	Name           string
	InputH, InputW int
	Layers         []ConvSpec
}

// Params returns the number of weights (kernels + biases).
func (a Arch) Params() int64 {
	var total int64
	for _, l := range a.Layers {
		total += int64(l.K*l.K*l.In*l.Out) + int64(l.Out)
	}
	return total
}

// SizeMB returns the fp32 model size in megabytes.
func (a Arch) SizeMB() float64 {
	return float64(a.Params()) * 4 / (1024 * 1024)
}

// FLOPs returns multiply-add operations (counted as 2 FLOPs) per frame.
func (a Arch) FLOPs() int64 {
	h, w := a.InputH, a.InputW
	var total int64
	for _, l := range a.Layers {
		if l.AtH > 0 {
			h, w = l.AtH, l.AtW
		}
		stride := l.Stride
		if stride <= 0 {
			stride = 1
		}
		oh := (h + stride - 1) / stride
		ow := (w + stride - 1) / stride
		total += 2 * int64(l.K*l.K*l.In*l.Out) * int64(oh*ow)
		h, w = oh, ow
		if l.PoolAfter == 2 {
			h = (h + 1) / 2
			w = (w + 1) / 2
		}
	}
	return total
}

// NumConvLayers returns the conv-layer count (the pruning unit of §5.2).
func (a Arch) NumConvLayers() int { return len(a.Layers) }

// String summarises the architecture.
func (a Arch) String() string {
	return fmt.Sprintf("%s(%d conv layers, %.1fM params, %.1f GFLOPs)",
		a.Name, len(a.Layers), float64(a.Params())/1e6, float64(a.FLOPs())/1e9)
}

// Device is a simulated accelerator with an effective throughput and a
// fixed per-frame overhead (kernel launch, transfer, NMS).
type Device struct {
	Name             string
	FLOPS            float64 // effective sustained FLOP/s
	PerFrameOverhead float64 // seconds
}

// FPS returns the simulated frames-per-second of an architecture on the
// device.
func (d Device) FPS(a Arch) float64 {
	t := float64(a.FLOPs())/d.FLOPS + d.PerFrameOverhead
	return 1 / t
}

// PaperDevice returns the simulated accelerator calibrated on exactly two
// of the paper's Table 4 measurements — YOLOv3 at 24 FPS and YOLOv3-tiny
// at 140 FPS on a Tesla P100 — by solving for effective FLOP/s and
// per-frame overhead. The third row (pruned tiny at 144 FPS) is then a
// genuine prediction of the cost model.
func PaperDevice() Device {
	return Device{
		Name:             "sim-P100",
		FLOPS:            1.75e12,  // effective sustained throughput
		PerFrameOverhead: 0.003945, // ≈4 ms launch/transfer/NMS overhead
	}
}

// YOLOv3Arch approximates the full YOLOv3 network (darknet-53 backbone plus
// detection heads) at 416×416 — the paper's heavyweight baseline, ≈62M
// parameters / ≈237 MB / ≈66 GFLOPs.
func YOLOv3Arch() Arch {
	var ls []ConvSpec
	conv := func(in, out, k, s int) {
		ls = append(ls, ConvSpec{In: in, Out: out, K: k, Stride: s})
	}
	res := func(ch, n int) {
		for i := 0; i < n; i++ {
			conv(ch, ch/2, 1, 1)
			conv(ch/2, ch, 3, 1)
		}
	}
	conv(3, 32, 3, 1)
	conv(32, 64, 3, 2)
	res(64, 1)
	conv(64, 128, 3, 2)
	res(128, 2)
	conv(128, 256, 3, 2)
	res(256, 8)
	conv(256, 512, 3, 2)
	res(512, 8)
	conv(512, 1024, 3, 2)
	res(1024, 4)
	// Detection head, large scale (13×13).
	conv(1024, 512, 1, 1)
	conv(512, 1024, 3, 1)
	conv(1024, 512, 1, 1)
	conv(512, 1024, 3, 1)
	conv(1024, 512, 1, 1)
	conv(512, 1024, 3, 1)
	conv(1024, 255, 1, 1)
	// Medium-scale head (26×26 after upsample + concat with the 512-wide
	// backbone feature).
	at := func(in, out, k, h int) {
		ls = append(ls, ConvSpec{In: in, Out: out, K: k, Stride: 1, AtH: h, AtW: h})
	}
	at(512, 256, 1, 13) // upsample feeder
	at(768, 256, 1, 26)
	at(256, 512, 3, 26)
	at(512, 256, 1, 26)
	at(256, 512, 3, 26)
	at(512, 256, 1, 26)
	at(256, 512, 3, 26)
	at(512, 255, 1, 26)
	// Small-scale head (52×52).
	at(256, 128, 1, 26) // upsample feeder
	at(384, 128, 1, 52)
	at(128, 256, 3, 52)
	at(256, 128, 1, 52)
	at(128, 256, 3, 52)
	at(256, 128, 1, 52)
	at(128, 256, 3, 52)
	at(256, 255, 1, 52)
	return Arch{Name: "YOLOv3", InputH: 416, InputW: 416, Layers: ls}
}

// YOLOv3TinyArch approximates YOLOv3-tiny at 416×416 — the architecture
// of YOLO-LITE, ≈8.8M parameters / ≈35 MB / ≈5.6 GFLOPs.
func YOLOv3TinyArch() Arch {
	ls := []ConvSpec{
		{In: 3, Out: 16, K: 3, Stride: 1, PoolAfter: 2},    // 416 → 208
		{In: 16, Out: 32, K: 3, Stride: 1, PoolAfter: 2},   // 208 → 104
		{In: 32, Out: 64, K: 3, Stride: 1, PoolAfter: 2},   // 104 → 52
		{In: 64, Out: 128, K: 3, Stride: 1, PoolAfter: 2},  // 52 → 26
		{In: 128, Out: 256, K: 3, Stride: 1, PoolAfter: 2}, // 26 → 13
		{In: 256, Out: 512, K: 3, Stride: 1},
		{In: 512, Out: 1024, K: 3, Stride: 1},
		{In: 1024, Out: 256, K: 1, Stride: 1},
		{In: 256, Out: 512, K: 3, Stride: 1},
		{In: 512, Out: 255, K: 1, Stride: 1},
		// Second-scale branch at 26×26.
		{In: 256, Out: 128, K: 1, Stride: 1, AtH: 13, AtW: 13},
		{In: 384, Out: 256, K: 3, Stride: 1, AtH: 26, AtW: 26},
		{In: 256, Out: 255, K: 1, Stride: 1, AtH: 26, AtW: 26},
	}
	return Arch{Name: "YOLOv3-tiny", InputH: 416, InputW: 416, Layers: ls}
}

// PrunedTinyArch is the 9-conv-layer pruned network of YOLO-SPECIALIZED
// (§5.2: "YOLO-SPECIALIZED only contains 9 convolutional layers", batch
// normalisation removed) — ≈34 MB, slightly cheaper than tiny.
func PrunedTinyArch() Arch {
	ls := []ConvSpec{
		{In: 3, Out: 16, K: 3, Stride: 1, PoolAfter: 2},    // 416 → 208
		{In: 16, Out: 32, K: 3, Stride: 1, PoolAfter: 2},   // 208 → 104
		{In: 32, Out: 64, K: 3, Stride: 1, PoolAfter: 2},   // 104 → 52
		{In: 64, Out: 128, K: 3, Stride: 1, PoolAfter: 2},  // 52 → 26
		{In: 128, Out: 256, K: 3, Stride: 1, PoolAfter: 2}, // 26 → 13
		{In: 256, Out: 512, K: 3, Stride: 1},
		{In: 512, Out: 1280, K: 3, Stride: 1},
		{In: 1280, Out: 896, K: 1, Stride: 1},
		{In: 896, Out: 255, K: 1, Stride: 1},
	}
	return Arch{Name: "pruned-tiny", InputH: 416, InputW: 416, Layers: ls}
}

// ArchForKind maps a model kind to its full-scale architecture.
func ArchForKind(k Kind) Arch {
	switch k {
	case KindYOLO:
		return YOLOv3Arch()
	case KindSpecialized:
		return PrunedTinyArch()
	default:
		return YOLOv3TinyArch()
	}
}

// Cost summarises a model's simulated deployment footprint.
type Cost struct {
	SizeMB float64
	FPS    float64
	Params int64
	GFLOPs float64
}

// CostOf returns the simulated cost of a model kind on the paper's device.
func CostOf(k Kind) Cost {
	a := ArchForKind(k)
	d := PaperDevice()
	return Cost{
		SizeMB: a.SizeMB(),
		FPS:    d.FPS(a),
		Params: a.Params(),
		GFLOPs: float64(a.FLOPs()) / 1e9,
	}
}
