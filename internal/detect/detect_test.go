package detect

import (
	"math"
	"sync"
	"testing"

	"odin/internal/synth"
)

// tinySpecConfig returns a fast config for unit tests.
func tinySpecConfig() GridConfig {
	cfg := SpecializedConfig(27, 48)
	return cfg
}

func TestGridGeometry(t *testing.T) {
	d := NewGridDetector(tinySpecConfig())
	if d.GH != 7 || d.GW != 12 {
		t.Fatalf("grid %dx%d, want 7x12", d.GH, d.GW)
	}
	if d.NumParams() <= 0 {
		t.Fatal("no parameters")
	}
}

func TestBuildTargets(t *testing.T) {
	d := NewGridDetector(tinySpecConfig())
	boxes := []synth.Box{{Class: synth.ClassCar, X: 10, Y: 12, W: 8, H: 4}}
	target, mask := d.buildTargets(boxes)
	// Centre (14, 14): cell x = 14/4 = 3, cell y = 14/(27/7)=14/3.857 = 3.
	nOn := 0
	for _, m := range mask {
		if m {
			nOn++
		}
	}
	if nOn != 1 {
		t.Fatalf("expected exactly 1 object cell, got %d", nOn)
	}
	cell := -1
	for i, m := range mask {
		if m {
			cell = i
		}
	}
	gy, gx := cell/d.GW, cell%d.GW
	if target[d.cellIndex(0, gy, gx)] != 1 {
		t.Fatal("objectness target not set")
	}
	if target[d.cellIndex(1+synth.ClassCar, gy, gx)] != 1 {
		t.Fatal("class target not set")
	}
	off := 1 + d.Cfg.Classes
	tw := target[d.cellIndex(off+2, gy, gx)]
	if math.Abs(tw-8.0/48) > 1e-9 {
		t.Fatalf("width target %v, want %v", tw, 8.0/48)
	}
}

func TestBuildTargetsCollisionKeepsLarger(t *testing.T) {
	d := NewGridDetector(tinySpecConfig())
	// Two boxes with the same centre cell; the larger must win.
	boxes := []synth.Box{
		{Class: synth.ClassPerson, X: 13, Y: 13, W: 2, H: 2},
		{Class: synth.ClassTruck, X: 10, Y: 11, W: 8, H: 6},
	}
	target, mask := d.buildTargets(boxes)
	cell := -1
	for i, m := range mask {
		if m {
			cell = i
		}
	}
	if cell < 0 {
		t.Fatal("no object cell")
	}
	gy, gx := cell/d.GW, cell%d.GW
	if target[d.cellIndex(1+synth.ClassTruck, gy, gx)] != 1 {
		t.Fatal("larger box (truck) should own the cell")
	}
}

func TestNMSSuppressesDuplicates(t *testing.T) {
	dets := []Detection{
		{Box: synth.Box{Class: 0, X: 10, Y: 10, W: 8, H: 4}, Score: 0.9},
		{Box: synth.Box{Class: 0, X: 10.5, Y: 10, W: 8, H: 4}, Score: 0.7}, // overlaps first
		{Box: synth.Box{Class: 0, X: 30, Y: 10, W: 8, H: 4}, Score: 0.8},   // distinct
		{Box: synth.Box{Class: 1, X: 10, Y: 10, W: 8, H: 4}, Score: 0.6},   // other class
	}
	keep := NMS(dets, 0.45)
	if len(keep) != 3 {
		t.Fatalf("NMS kept %d, want 3", len(keep))
	}
	if keep[0].Score != 0.9 {
		t.Fatal("NMS must keep highest score first")
	}
}

func TestNMSEmptyInput(t *testing.T) {
	if out := NMS(nil, 0.45); len(out) != 0 {
		t.Fatal("NMS of empty input should be empty")
	}
}

func TestMAPPerfectDetections(t *testing.T) {
	truth := [][]synth.Box{
		{{Class: 0, X: 5, Y: 5, W: 8, H: 4}, {Class: 1, X: 20, Y: 10, W: 6, H: 6}},
		{{Class: 0, X: 12, Y: 8, W: 8, H: 4}},
	}
	dets := [][]Detection{
		{{Box: truth[0][0], Score: 0.9}, {Box: truth[0][1], Score: 0.8}},
		{{Box: truth[1][0], Score: 0.95}},
	}
	res := MeanAveragePrecision(dets, truth, 0.5)
	if math.Abs(res.MAP-1) > 1e-9 {
		t.Fatalf("perfect detections should give mAP=1, got %v", res.MAP)
	}
	if res.Counts[0] != 2 || res.Counts[1] != 1 {
		t.Fatalf("GT counts wrong: %v", res.Counts)
	}
}

func TestMAPMissedAndSpurious(t *testing.T) {
	truth := [][]synth.Box{
		{{Class: 0, X: 5, Y: 5, W: 8, H: 4}, {Class: 0, X: 30, Y: 5, W: 8, H: 4}},
	}
	// One correct detection, one spurious, one GT missed.
	dets := [][]Detection{
		{
			{Box: truth[0][0], Score: 0.9},
			{Box: synth.Box{Class: 0, X: 20, Y: 20, W: 4, H: 4}, Score: 0.5},
		},
	}
	res := MeanAveragePrecision(dets, truth, 0.5)
	if res.MAP <= 0 || res.MAP >= 1 {
		t.Fatalf("partial detections should give 0<mAP<1: %v", res.MAP)
	}
}

func TestMAPDuplicateDetectionsPenalised(t *testing.T) {
	gt1 := synth.Box{Class: 0, X: 5, Y: 5, W: 8, H: 4}
	gt2 := synth.Box{Class: 0, X: 30, Y: 5, W: 8, H: 4}
	truth := [][]synth.Box{{gt1, gt2}}
	// A duplicate of gt1 outranks the gt2 match: the duplicate is an FP
	// in the middle of the ranking and must depress interpolated AP.
	dets := [][]Detection{{
		{Box: gt1, Score: 0.9},
		{Box: gt1, Score: 0.8}, // duplicate → FP
		{Box: gt2, Score: 0.7},
	}}
	res := MeanAveragePrecision(dets, truth, 0.5)
	// AP = 0.5·1 + 0.5·(2/3) = 0.8333…
	if math.Abs(res.MAP-5.0/6) > 1e-9 {
		t.Fatalf("duplicate-FP AP = %v, want %v", res.MAP, 5.0/6)
	}
}

func TestMAPEmpty(t *testing.T) {
	res := MeanAveragePrecision(nil, nil, 0.5)
	if res.MAP != 0 {
		t.Fatal("empty evaluation should be 0")
	}
}

func TestMAPMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeanAveragePrecision(make([][]Detection, 2), make([][]synth.Box, 3), 0.5)
}

func TestDetectorLearns(t *testing.T) {
	gen := synth.NewSceneGen(7, synth.DefaultSceneConfig())
	train := gen.Dataset(synth.DayData, 250)
	test := gen.Dataset(synth.DayData, 40)

	d := NewGridDetector(tinySpecConfig())
	before := EvaluateDetector(d, test, 0.5).MAP
	first := d.TrainEpoch(SamplesFromFrames(train), 16)
	last := d.Fit(SamplesFromFrames(train), 24, 16)
	after := EvaluateDetector(d, test, 0.5).MAP
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if after <= before || after < 0.05 {
		t.Fatalf("detector failed to learn: before=%v after=%v", before, after)
	}
}

func TestSpecializationBeatsCrossDomain(t *testing.T) {
	gen := synth.NewSceneGen(9, synth.DefaultSceneConfig())
	trainNight := gen.Dataset(synth.NightData, 250)
	testNight := gen.Dataset(synth.NightData, 40)

	spec := NewGridDetector(tinySpecConfig())
	spec.Fit(SamplesFromFrames(trainNight), 25, 16)

	dayCfg := tinySpecConfig()
	dayCfg.Seed = 11
	specDay := NewGridDetector(dayCfg)
	specDay.Fit(SamplesFromFrames(gen.Dataset(synth.DayData, 250)), 25, 16)

	own := EvaluateDetector(spec, testNight, 0.5).MAP
	cross := EvaluateDetector(specDay, testNight, 0.5).MAP
	if own <= cross {
		t.Fatalf("night specialist (%v) must beat day specialist (%v) on night data", own, cross)
	}
}

func TestDistillationApproximatesTeacher(t *testing.T) {
	gen := synth.NewSceneGen(13, synth.DefaultSceneConfig())
	train := gen.Dataset(synth.DayData, 300)
	test := gen.Dataset(synth.DayData, 40)

	teacher := NewGridDetector(tinySpecConfig())
	teacher.Fit(SamplesFromFrames(train), 45, 16)
	tMAP := EvaluateDetector(teacher, test, 0.5).MAP

	// Student trained only on teacher outputs — no ground truth.
	distilled := DistillSamples(teacher, train, 0.4)
	liteCfg := LiteConfig(27, 48)
	student := NewGridDetector(liteCfg)
	student.Fit(distilled, 45, 16)
	sMAP := EvaluateDetector(student, test, 0.5).MAP

	if tMAP < 0.1 {
		t.Fatalf("teacher too weak for the test: %v", tMAP)
	}
	// The student must recover a meaningful share of teacher accuracy.
	if sMAP < tMAP*0.35 {
		t.Fatalf("student mAP %v too far below teacher %v", sMAP, tMAP)
	}
}

func TestDetectBatchMatchesSingle(t *testing.T) {
	gen := synth.NewSceneGen(17, synth.DefaultSceneConfig())
	frames := gen.Dataset(synth.DayData, 4)
	d := NewGridDetector(tinySpecConfig())
	imgs := make([]*synth.Image, len(frames))
	for i, f := range frames {
		imgs[i] = f.Image
	}
	batch := d.DetectBatch(imgs)
	for i, f := range frames {
		single := d.Detect(f.Image)
		if len(single) != len(batch[i]) {
			t.Fatalf("frame %d: batch %d dets, single %d", i, len(batch[i]), len(single))
		}
	}
	if d.DetectBatch(nil) != nil {
		t.Fatal("empty batch should return nil")
	}
}

func TestCountClass(t *testing.T) {
	dets := []Detection{
		{Box: synth.Box{Class: 0}, Score: 0.9},
		{Box: synth.Box{Class: 0}, Score: 0.3},
		{Box: synth.Box{Class: 1}, Score: 0.9},
	}
	if CountClass(dets, 0, 0.5) != 1 {
		t.Fatal("CountClass with threshold")
	}
	if CountClass(dets, 0, 0) != 2 {
		t.Fatal("CountClass without threshold")
	}
}

func TestKindString(t *testing.T) {
	if KindYOLO.String() != "YOLO" || KindSpecialized.String() != "YOLO-SPECIALIZED" || KindLite.String() != "YOLO-LITE" {
		t.Fatal("kind names")
	}
}

// --- Cost model tests: these pin the Table 4 reproduction. ---

func TestCostModelMatchesPaperTable4(t *testing.T) {
	yolo := CostOf(KindYOLO)
	lite := CostOf(KindLite)
	spec := CostOf(KindSpecialized)

	// Paper Table 4: YOLO 237 MB / 24 FPS; tiny 35 MB / 140 FPS;
	// pruned tiny 34 MB / 144 FPS. Allow a few percent of slack.
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}
	if !within(yolo.SizeMB, 237, 0.05) {
		t.Fatalf("YOLO size %.1f MB, paper 237", yolo.SizeMB)
	}
	if !within(yolo.FPS, 24, 0.05) {
		t.Fatalf("YOLO FPS %.1f, paper 24", yolo.FPS)
	}
	if !within(lite.SizeMB, 35, 0.06) {
		t.Fatalf("Lite size %.1f MB, paper 35", lite.SizeMB)
	}
	if !within(lite.FPS, 140, 0.05) {
		t.Fatalf("Lite FPS %.1f, paper 140", lite.FPS)
	}
	if !within(spec.SizeMB, 34, 0.06) {
		t.Fatalf("Specialized size %.1f MB, paper 34", spec.SizeMB)
	}
	if !within(spec.FPS, 144, 0.08) {
		t.Fatalf("Specialized FPS %.1f, paper 144", spec.FPS)
	}
	// The headline ratios: specialized ≈6× faster and ≈7× smaller.
	if r := spec.FPS / yolo.FPS; r < 5.5 || r > 7 {
		t.Fatalf("speedup ratio %.2f outside the paper's ~6x", r)
	}
	if r := float64(yolo.Params) / float64(spec.Params); r < 6 || r > 8 {
		t.Fatalf("parameter ratio %.2f outside the paper's ~7x", r)
	}
}

func TestPrunedArchHas9Layers(t *testing.T) {
	if n := PrunedTinyArch().NumConvLayers(); n != 9 {
		t.Fatalf("pruned arch has %d conv layers, paper says 9", n)
	}
}

func TestArchFLOPsPositiveAndOrdered(t *testing.T) {
	y := YOLOv3Arch().FLOPs()
	tn := YOLOv3TinyArch().FLOPs()
	p := PrunedTinyArch().FLOPs()
	if !(y > tn && tn > p && p > 0) {
		t.Fatalf("FLOPs ordering violated: yolo=%d tiny=%d pruned=%d", y, tn, p)
	}
}

func TestDeviceFPSMonotone(t *testing.T) {
	d := PaperDevice()
	fast := Device{Name: "fast", FLOPS: d.FLOPS * 2, PerFrameOverhead: d.PerFrameOverhead}
	a := YOLOv3Arch()
	if fast.FPS(a) <= d.FPS(a) {
		t.Fatal("faster device must give higher FPS")
	}
}

func TestSamplesFromFrames(t *testing.T) {
	gen := synth.NewSceneGen(21, synth.DefaultSceneConfig())
	frames := gen.Dataset(synth.DayData, 3)
	samples := SamplesFromFrames(frames)
	if len(samples) != 3 {
		t.Fatal("sample count")
	}
	for i := range samples {
		if samples[i].Image != frames[i].Image || len(samples[i].Boxes) != len(frames[i].Boxes) {
			t.Fatal("sample content mismatch")
		}
	}
}

// TestDetectSteadyStateAllocs pins the streaming hot path: the per-frame
// Detect input wrapper is recycled (vecWrap) and the whole inference pass
// draws from the workspace pool, so a frame that decodes no boxes costs at
// most the parallel-loop closure headers (ROADMAP: "recycle the remaining
// inference paths").
func TestDetectSteadyStateAllocs(t *testing.T) {
	d := NewGridDetector(tinySpecConfig())
	// An impossible threshold isolates the network pass from the (output)
	// detection slices, which are real results and legitimately allocate.
	d.ScoreThreshold = 2
	gen := synth.NewSceneGen(13, synth.DefaultSceneConfig())
	img := gen.GenerateSubset(synth.DayData).Image

	d.Detect(img) // warm the pool
	avg := testing.AllocsPerRun(20, func() { d.Detect(img) })
	// Residue: three parallel-loop closure headers per conv layer; every
	// matrix (input wrapper included) is recycled.
	if avg > 12 {
		t.Fatalf("Detect allocates %.0f/op at steady state, want recycled wrapper + pooled pass (≤12)", avg)
	}
}

// TestDetectConcurrentMatchesSequential pins concurrent Detect calls on one
// shared detector to the sequential results — the property the sharded
// stream pipeline relies on when several workers serve frames from the
// same model.
func TestDetectConcurrentMatchesSequential(t *testing.T) {
	gen := synth.NewSceneGen(17, synth.DefaultSceneConfig())
	cfg := tinySpecConfig()
	cfg.H, cfg.W = synth.DefaultSceneConfig().H, synth.DefaultSceneConfig().W
	d := NewGridDetector(cfg)
	d.ScoreThreshold = 0.4 // random net hovers near 0.5; keep some boxes
	const n = 8
	imgs := make([]*synth.Image, n)
	want := make([][]Detection, n)
	for i := range imgs {
		imgs[i] = gen.GenerateSubset(synth.DayData).Image
		want[i] = d.Detect(imgs[i])
	}
	var wg sync.WaitGroup
	bad := make(chan string, 1)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				i := (g + rep) % n
				got := d.Detect(imgs[i])
				if len(got) != len(want[i]) {
					select {
					case bad <- "detection count diverged under concurrency":
					default:
					}
					return
				}
				for k := range got {
					if got[k] != want[i][k] {
						select {
						case bad <- "detection diverged under concurrency":
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(bad)
	if msg, ok := <-bad; ok {
		t.Fatal(msg)
	}
}
