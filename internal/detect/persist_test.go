package detect

import (
	"bytes"
	"testing"

	"odin/internal/synth"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	gen := synth.NewSceneGen(31, synth.DefaultSceneConfig())
	train := gen.Dataset(synth.DayData, 80)
	d := NewGridDetector(SpecializedConfig(27, 48))
	d.Fit(SamplesFromFrames(train), 4, 16)

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg.Kind != KindSpecialized || loaded.GH != d.GH || loaded.GW != d.GW {
		t.Fatalf("loaded config mismatch: %+v", loaded.Cfg)
	}
	// Identical predictions on fresh frames.
	for _, f := range gen.Dataset(synth.DayData, 5) {
		a := d.Detect(f.Image)
		b := loaded.Detect(f.Image)
		if len(a) != len(b) {
			t.Fatalf("detection count differs: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Score != b[i].Score || a[i].Box != b[i].Box {
				t.Fatal("loaded model predictions differ")
			}
		}
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage input should fail to load")
	}
}

func TestSaveLoadWithBatchNorm(t *testing.T) {
	d := NewGridDetector(YOLOConfig(27, 48))
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Cfg.BatchNorm {
		t.Fatal("batch-norm flag lost")
	}
}
