package detect

import (
	"fmt"
	"testing"

	"odin/internal/synth"
)

// countTestImgs renders a deterministic image set; the detector is used
// untrained (random head weights put roughly half the cells above the
// objectness threshold), which exercises decode, NMS and the score/class
// predicates heavily.
func countTestImgs(n int) []*synth.Image {
	scene := synth.DefaultSceneConfig()
	gen := synth.NewSceneGen(21, scene)
	imgs := make([]*synth.Image, n)
	for i := range imgs {
		imgs[i] = gen.GenerateSubset(synth.FullData).Image
	}
	return imgs
}

// TestCountBatchMatchesDetectBatch is the pushdown correctness gate: for
// every class/score combination, CountBatch must equal the filtered
// DetectBatch output exactly — same decode arithmetic, same (stable) NMS
// suppression.
func TestCountBatchMatchesDetectBatch(t *testing.T) {
	scene := synth.DefaultSceneConfig()
	g := NewGridDetector(YOLOConfig(scene.H, scene.W))
	imgs := countTestImgs(24)
	dets := g.DetectBatch(imgs)

	for _, class := range []int{-1, 0, 1, 3} {
		for _, minScore := range []float64{0, 0.25, 0.4, 0.8} {
			t.Run(fmt.Sprintf("class=%d,min=%.2f", class, minScore), func(t *testing.T) {
				counts := g.CountBatch(imgs, class, minScore)
				if len(counts) != len(imgs) {
					t.Fatalf("got %d counts for %d images", len(counts), len(imgs))
				}
				for i := range imgs {
					want := 0
					for _, d := range dets[i] {
						if d.Score >= minScore && (class < 0 || d.Box.Class == class) {
							want++
						}
					}
					if counts[i] != want {
						t.Fatalf("image %d: count %d, want %d", i, counts[i], want)
					}
				}
			})
		}
	}
}

// TestCountBatchBoxAllocFree pins the pushdown's promise: counting
// materialises no per-box or per-frame Detection slices. The whole batched
// call stays under one allocation per frame (the counts slice plus pooled
// scratch churn), where DetectBatch necessarily allocates several per
// frame just for the boxes.
func TestCountBatchBoxAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector (sync.Pool reuse is randomised)")
	}
	scene := synth.DefaultSceneConfig()
	g := NewGridDetector(YOLOConfig(scene.H, scene.W))
	imgs := countTestImgs(16)
	g.CountBatch(imgs, -1, 0.3) // warm the scratch and workspace pools

	perCall := testing.AllocsPerRun(20, func() {
		g.CountBatch(imgs, -1, 0.3)
	})
	if perFrame := perCall / float64(len(imgs)); perFrame >= 1 {
		t.Fatalf("CountBatch allocates %.1f objects per frame (%.0f per call); boxes are leaking into the counting path", perFrame, perCall)
	}

	detect := testing.AllocsPerRun(20, func() {
		g.DetectBatch(imgs)
	})
	if detect <= perCall {
		t.Fatalf("DetectBatch (%v allocs) should cost more than CountBatch (%v)", detect, perCall)
	}
}

func BenchmarkCountBatch(b *testing.B) {
	scene := synth.DefaultSceneConfig()
	g := NewGridDetector(YOLOConfig(scene.H, scene.W))
	imgs := countTestImgs(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountBatch(imgs, 0, 0.3)
	}
}

func BenchmarkDetectBatchCount(b *testing.B) {
	scene := synth.DefaultSceneConfig()
	g := NewGridDetector(YOLOConfig(scene.H, scene.W))
	imgs := countTestImgs(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, dets := range g.DetectBatch(imgs) {
			for _, d := range dets {
				if d.Score >= 0.3 && d.Box.Class == 0 {
					n++
				}
			}
		}
		_ = n
	}
}
