package detect

import (
	"sync"

	"odin/internal/nn"
	"odin/internal/synth"
)

// This file is the detector half of the COUNT projection pushdown: when a
// query only wants counts, decoding every cell into freshly allocated
// Detection slices (plus per-cell logits and probabilities) is pure waste.
// CountBatch decodes into recycled scratch, suppresses in place and counts
// — no box materialisation, no per-frame allocation — while reproducing
// Detect's output exactly: the same decode arithmetic (SoftmaxInto shares
// the softmax op order), and a stable in-place sort matching NMS's
// sort.SliceStable so score ties suppress identically.

// countScratch recycles the per-row decode state of the counting path. A
// sync.Pool rather than the workspace pool because counting runs
// concurrently across stream shards and the slices are tiny.
type countScratch struct {
	dets       []Detection
	suppressed []bool
	logits     []float64
	probs      []float64
	row64      []float64 // widening buffer for the float32 backend
}

var countPool = sync.Pool{New: func() any { return new(countScratch) }}

// CountBatch counts, per image, the post-NMS detections that clear
// minScore and whose class matches class (class < 0 accepts every class).
// It is exactly len(DetectBatch output filtered by score and class) but
// materialises no Detection slices: one batched forward pass, then each
// row decodes into recycled scratch. Like Detect, it mutates no detector
// state and is safe for concurrent use.
func (g *GridDetector) CountBatch(imgs []*synth.Image, class int, minScore float64) []int {
	if len(imgs) == 0 {
		return nil
	}
	batch := loadRows(g.Cfg.DType, len(imgs), imgs[0].Dim(), func(i int) []float64 { return imgs[i].Flat() })
	out := g.Net.Predict(batch)
	counts := make([]int, len(imgs))
	sc := countPool.Get().(*countScratch)
	for i := range imgs {
		row := out.Row64(i, sc.row64)
		if out.V32 != nil {
			sc.row64 = row // keep the grown widening buffer
		}
		counts[i] = g.countRow(row, class, minScore, sc)
	}
	countPool.Put(sc)
	nn.Recycle(batch, out)
	return counts
}

// countRow decodes one head output row into sc's scratch, applies NMS in
// place and counts the survivors passing the score floor and class
// predicate. The arithmetic mirrors decode exactly.
func (g *GridDetector) countRow(row []float64, class int, minScore float64, sc *countScratch) int {
	cellW := float64(g.Cfg.W) / float64(g.GW)
	cellH := float64(g.Cfg.H) / float64(g.GH)
	if cap(sc.logits) < g.Cfg.Classes {
		sc.logits = make([]float64, g.Cfg.Classes)
		sc.probs = make([]float64, g.Cfg.Classes)
	}
	logits := sc.logits[:g.Cfg.Classes]
	probs := sc.probs[:g.Cfg.Classes]
	dets := sc.dets[:0]
	for gy := 0; gy < g.GH; gy++ {
		for gx := 0; gx < g.GW; gx++ {
			obj := nn.SigmoidScalar(row[g.cellIndex(0, gy, gx)])
			if obj < g.ScoreThreshold {
				continue
			}
			for c := 0; c < g.Cfg.Classes; c++ {
				logits[c] = row[g.cellIndex(1+c, gy, gx)]
			}
			nn.SoftmaxInto(probs, logits)
			bestC, bestP := 0, probs[0]
			for c, p := range probs {
				if p > bestP {
					bestC, bestP = c, p
				}
			}
			off := 1 + g.Cfg.Classes
			tx := nn.SigmoidScalar(row[g.cellIndex(off, gy, gx)])
			ty := nn.SigmoidScalar(row[g.cellIndex(off+1, gy, gx)])
			tw := nn.SigmoidScalar(row[g.cellIndex(off+2, gy, gx)])
			th := nn.SigmoidScalar(row[g.cellIndex(off+3, gy, gx)])
			w := tw * float64(g.Cfg.W)
			h := th * float64(g.Cfg.H)
			cx := (float64(gx) + tx) * cellW
			cy := (float64(gy) + ty) * cellH
			dets = append(dets, Detection{
				Box: synth.Box{
					Class: bestC,
					X:     cx - w/2, Y: cy - h/2, W: w, H: h,
				},
				Score: obj * bestP,
			})
		}
	}

	// Stable insertion sort by descending score — the same permutation
	// NMS's sort.SliceStable produces.
	for i := 1; i < len(dets); i++ {
		d := dets[i]
		j := i - 1
		for j >= 0 && dets[j].Score < d.Score {
			dets[j+1] = dets[j]
			j--
		}
		dets[j+1] = d
	}

	suppressed := sc.suppressed[:0]
	for range dets {
		suppressed = append(suppressed, false)
	}
	count := 0
	for i := range dets {
		if suppressed[i] {
			continue
		}
		if dets[i].Score >= minScore && (class < 0 || dets[i].Box.Class == class) {
			count++
		}
		for j := i + 1; j < len(dets); j++ {
			if suppressed[j] || dets[j].Box.Class != dets[i].Box.Class {
				continue
			}
			if dets[i].Box.IoU(dets[j].Box) > g.NMSIoU {
				suppressed[j] = true
			}
		}
	}
	sc.dets = dets
	sc.suppressed = suppressed
	return count
}
