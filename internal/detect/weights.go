package detect

import "fmt"

// CopyWeightsFrom overwrites g's master weights with src's — the warm-start
// path of fleet recovery, where a regime-adjacent model from another camera
// seeds training instead of random initialisation. Both detectors must have
// identical parameter shapes (same GridConfig architecture); on any
// mismatch nothing is copied and the caller falls back to scratch
// initialisation. Master weights are always float64 regardless of compute
// backend, so the copy is backend-agnostic; Invalidate drops any float32
// shadows so the next forward repacks from the copied weights.
//
// Optimizer state (Adam moments) is NOT copied: the warm start adapts the
// borrowed weights to the new camera's frames with fresh momentum, which is
// the behaviour we want when the regimes are close but not identical.
func (g *GridDetector) CopyWeightsFrom(src *GridDetector) error {
	dst, from := g.Net.Params(), src.Net.Params()
	if len(dst) != len(from) {
		return fmt.Errorf("detect: warm-start layer mismatch: %d params vs %d", len(dst), len(from))
	}
	for i := range dst {
		if dst[i].W.R != from[i].W.R || dst[i].W.C != from[i].W.C {
			return fmt.Errorf("detect: warm-start shape mismatch at %s: %dx%d vs %dx%d",
				dst[i].Name, dst[i].W.R, dst[i].W.C, from[i].W.R, from[i].W.C)
		}
	}
	for i := range dst {
		copy(dst[i].W.V, from[i].W.V)
		dst[i].Invalidate()
	}
	return nil
}
