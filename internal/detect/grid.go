// Package detect is the object-detection substrate standing in for the
// paper's YOLOv3 family (§5.2): a trainable single-pass grid detector
// (miniature YOLO) in three capacities — YOLO (heavyweight baseline),
// YOLO-Specialized (pruned, per-cluster) and YOLO-Lite (student distilled
// from YOLO outputs) — plus mAP evaluation and an analytic architecture
// cost model that reproduces the paper's throughput and memory numbers
// from its reported layer structures.
package detect

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"odin/internal/nn"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// Detection is one predicted box with a confidence score.
type Detection struct {
	Box   synth.Box
	Score float64
}

// Detector is anything that can find objects in a frame. The ODIN core and
// the query engine depend only on this interface.
type Detector interface {
	Detect(img *synth.Image) []Detection
}

// BatchDetector is implemented by detectors that can amortise network
// overhead across many frames at once; evaluation and distillation prefer
// it when available.
type BatchDetector interface {
	Detector
	DetectBatch(imgs []*synth.Image) [][]Detection
}

// Kind labels the three model families of §5.2.
type Kind int

// Model kinds.
const (
	KindYOLO        Kind = iota // heavyweight baseline
	KindSpecialized             // pruned per-cluster model
	KindLite                    // distilled student
)

// String returns the paper's model name.
func (k Kind) String() string {
	switch k {
	case KindYOLO:
		return "YOLO"
	case KindSpecialized:
		return "YOLO-SPECIALIZED"
	case KindLite:
		return "YOLO-LITE"
	}
	return "unknown"
}

// GridConfig describes a grid detector network.
type GridConfig struct {
	Kind    Kind
	H, W    int // input frame size
	Classes int

	// Channels per backbone conv layer; layer i halves the spatial
	// resolution when Strides[i] == 2.
	Channels []int
	Strides  []int

	// BatchNorm inserts batch normalisation after each backbone conv. The
	// paper's heavyweight YOLO uses it; the pruned specialized models drop
	// it (§5.2).
	BatchNorm bool

	LR   float64
	Seed uint64

	// DType selects the compute backend the detector runs on. The zero
	// value is float64 (the reference backend); tensor.F32 stores frame
	// batches and activations in float32 and runs the vectorized kernels
	// (master weights stay float64, see nn.Param).
	DType tensor.DType
}

// YOLOConfig returns the heavyweight baseline configuration.
func YOLOConfig(h, w int) GridConfig {
	return GridConfig{
		Kind: KindYOLO, H: h, W: w, Classes: synth.NumClasses,
		Channels:  []int{16, 24, 24},
		Strides:   []int{2, 2, 1},
		BatchNorm: true,
		LR:        0.002,
		Seed:      1,
	}
}

// SpecializedConfig returns the pruned per-cluster configuration: fewer
// layers and channels, no batch normalisation.
func SpecializedConfig(h, w int) GridConfig {
	return GridConfig{
		Kind: KindSpecialized, H: h, W: w, Classes: synth.NumClasses,
		Channels:  []int{10, 14},
		Strides:   []int{2, 2},
		BatchNorm: false,
		LR:        0.003,
		Seed:      2,
	}
}

// LiteConfig returns the distillation-student configuration (same shape as
// Specialized, trained from teacher outputs).
func LiteConfig(h, w int) GridConfig {
	cfg := SpecializedConfig(h, w)
	cfg.Kind = KindLite
	cfg.Seed = 3
	return cfg
}

// GridDetector is a single-pass detector: a conv backbone reduces the frame
// to a GH×GW grid; a 1×1 conv head predicts, per cell, an objectness logit,
// class logits and a box (cx, cy offsets within the cell plus width/height
// relative to the frame) — the YOLO formulation of §5.2 at miniature scale.
type GridDetector struct {
	Cfg    GridConfig
	Net    *nn.Network
	GH, GW int

	// Decode thresholds.
	ScoreThreshold float64
	NMSIoU         float64

	opt nn.Optimizer
	rng *tensor.RNG
}

// cellChannels returns the per-cell prediction width: 1 objectness +
// classes + 4 box parameters.
func (c GridConfig) cellChannels() int { return 1 + c.Classes + 4 }

// NewGridDetector builds the network from the configuration.
func NewGridDetector(cfg GridConfig) *GridDetector {
	if len(cfg.Channels) != len(cfg.Strides) || len(cfg.Channels) == 0 {
		panic(fmt.Sprintf("detect: invalid grid config %+v", cfg))
	}
	rng := tensor.NewRNG(cfg.Seed)
	var layers []nn.Layer
	inC, h, w := 3, cfg.H, cfg.W
	for i, ch := range cfg.Channels {
		conv := nn.NewConv2D(inC, h, w, ch, 3, cfg.Strides[i], 1, rng)
		layers = append(layers, conv)
		if cfg.BatchNorm {
			layers = append(layers, nn.NewBatchNorm(conv.OutSize()))
		}
		layers = append(layers, nn.NewLeakyReLU(0.1))
		inC, h, w = ch, conv.OutH, conv.OutW
	}
	head := nn.NewConv2D(inC, h, w, cfg.cellChannels(), 1, 1, 0, rng)
	layers = append(layers, head)
	return &GridDetector{
		Cfg:            cfg,
		Net:            nn.NewNetwork(cfg.Kind.String(), layers...),
		GH:             h,
		GW:             w,
		ScoreThreshold: 0.5,
		NMSIoU:         0.45,
		opt:            nn.NewAdam(cfg.LR),
		rng:            rng,
	}
}

// NumParams returns the number of trainable scalars in the miniature net.
func (g *GridDetector) NumParams() int { return g.Net.NumParams() }

// cellIndex returns the flattened output index of channel ch at grid cell
// (gy, gx). The head output is channel-major: ch × GH × GW.
func (g *GridDetector) cellIndex(ch, gy, gx int) int {
	return ch*g.GH*g.GW + gy*g.GW + gx
}

// vecWrap recycles the 1×dim Mat headers that wrap a frame's pixel slice
// for Predict, so the streaming hot path allocates nothing per frame (the
// header aliases the image storage; no pixels are copied). A sync.Pool —
// rather than the workspace pool — because headers carry no backing array
// and Detect runs concurrently across stream shards.
var vecWrap = sync.Pool{New: func() any { return new(tensor.Mat) }}

// row64Pool recycles the widening buffers the float32 decode paths use, so
// counting and detection stay allocation-light under the float32 backend
// too. (The float64 paths never touch it.)
var row64Pool = sync.Pool{New: func() any { return new([]float64) }}

// loadRows stacks n flattened pixel rows into a workspace batch of dtype
// dt; row(i) supplies the i-th row. SetRow degrades to a plain copy on the
// float64 path and narrows element-wise on float32.
func loadRows(dt tensor.DType, n, dim int, row func(i int) []float64) *tensor.Mat {
	m := nn.GetMatRawOf(dt, n, dim)
	for i := 0; i < n; i++ {
		m.SetRow(i, row(i))
	}
	return m
}

// Detect runs the network on one frame and decodes detections. It mutates
// no detector state, so concurrent calls on a shared detector are safe.
func (g *GridDetector) Detect(img *synth.Image) []Detection {
	if g.Cfg.DType == tensor.F32 {
		in := nn.GetMatRawOf(tensor.F32, 1, img.Dim())
		in.SetRow(0, img.Flat())
		out := g.Net.Predict(in)
		buf := row64Pool.Get().(*[]float64)
		*buf = out.Row64(0, *buf)
		dets := g.decode(*buf)
		row64Pool.Put(buf)
		nn.Recycle(in, out)
		return dets
	}
	in := vecWrap.Get().(*tensor.Mat)
	in.R, in.C, in.V = 1, img.Dim(), img.Flat()
	out := g.Net.Predict(in)
	dets := g.decode(out.Row(0))
	nn.Recycle(out)
	in.V = nil // do not pin the image past the call
	vecWrap.Put(in)
	return dets
}

// DetectBatch runs the network on many frames at once, drawing the batch
// from the workspace pool and handing it back once decoded.
func (g *GridDetector) DetectBatch(imgs []*synth.Image) [][]Detection {
	if len(imgs) == 0 {
		return nil
	}
	batch := loadRows(g.Cfg.DType, len(imgs), imgs[0].Dim(), func(i int) []float64 { return imgs[i].Flat() })
	out := g.Net.Predict(batch)
	res := make([][]Detection, len(imgs))
	if out.V32 == nil {
		for i := range imgs {
			res[i] = g.decode(out.Row(i))
		}
	} else {
		buf := row64Pool.Get().(*[]float64)
		for i := range imgs {
			*buf = out.Row64(i, *buf)
			res[i] = g.decode(*buf)
		}
		row64Pool.Put(buf)
	}
	nn.Recycle(batch, out)
	return res
}

// decode converts one raw head output row into thresholded, NMS-filtered
// detections.
func (g *GridDetector) decode(row []float64) []Detection {
	cellW := float64(g.Cfg.W) / float64(g.GW)
	cellH := float64(g.Cfg.H) / float64(g.GH)
	var dets []Detection
	for gy := 0; gy < g.GH; gy++ {
		for gx := 0; gx < g.GW; gx++ {
			obj := nn.SigmoidScalar(row[g.cellIndex(0, gy, gx)])
			if obj < g.ScoreThreshold {
				continue
			}
			logits := make([]float64, g.Cfg.Classes)
			for c := 0; c < g.Cfg.Classes; c++ {
				logits[c] = row[g.cellIndex(1+c, gy, gx)]
			}
			probs := nn.Softmax(logits)
			bestC, bestP := 0, probs[0]
			for c, p := range probs {
				if p > bestP {
					bestC, bestP = c, p
				}
			}
			off := 1 + g.Cfg.Classes
			tx := nn.SigmoidScalar(row[g.cellIndex(off, gy, gx)])
			ty := nn.SigmoidScalar(row[g.cellIndex(off+1, gy, gx)])
			tw := nn.SigmoidScalar(row[g.cellIndex(off+2, gy, gx)])
			th := nn.SigmoidScalar(row[g.cellIndex(off+3, gy, gx)])
			w := tw * float64(g.Cfg.W)
			h := th * float64(g.Cfg.H)
			cx := (float64(gx) + tx) * cellW
			cy := (float64(gy) + ty) * cellH
			dets = append(dets, Detection{
				Box: synth.Box{
					Class: bestC,
					X:     cx - w/2, Y: cy - h/2, W: w, H: h,
				},
				Score: obj * bestP, // C = P(obj) · P(class|obj)
			})
		}
	}
	return NMS(dets, g.NMSIoU)
}

// NMS applies per-class non-maximum suppression, keeping the highest-score
// box of each overlapping group. The sort is stable so the counting path
// (count.go), which sorts in place without allocating, suppresses exactly
// the same boxes on score ties.
func NMS(dets []Detection, iouThr float64) []Detection {
	sort.SliceStable(dets, func(a, b int) bool { return dets[a].Score > dets[b].Score })
	var keep []Detection
	suppressed := make([]bool, len(dets))
	for i := range dets {
		if suppressed[i] {
			continue
		}
		keep = append(keep, dets[i])
		for j := i + 1; j < len(dets); j++ {
			if suppressed[j] || dets[j].Box.Class != dets[i].Box.Class {
				continue
			}
			if dets[i].Box.IoU(dets[j].Box) > iouThr {
				suppressed[j] = true
			}
		}
	}
	return keep
}

// buildTargets encodes ground-truth boxes into the head's target layout and
// an object mask. For each GT box, the cell containing its centre is
// responsible for predicting it.
func (g *GridDetector) buildTargets(boxes []synth.Box) (target []float64, objMask []bool) {
	n := g.Cfg.cellChannels() * g.GH * g.GW
	target = make([]float64, n)
	objMask = make([]bool, g.GH*g.GW)
	cellW := float64(g.Cfg.W) / float64(g.GW)
	cellH := float64(g.Cfg.H) / float64(g.GH)
	area := make([]float64, g.GH*g.GW)
	for _, b := range boxes {
		cx := b.X + b.W/2
		cy := b.Y + b.H/2
		gx := int(cx / cellW)
		gy := int(cy / cellH)
		if gx < 0 {
			gx = 0
		}
		if gx >= g.GW {
			gx = g.GW - 1
		}
		if gy < 0 {
			gy = 0
		}
		if gy >= g.GH {
			gy = g.GH - 1
		}
		cell := gy*g.GW + gx
		if objMask[cell] && area[cell] >= b.W*b.H {
			continue // keep the larger box when two centres collide
		}
		objMask[cell] = true
		area[cell] = b.W * b.H
		target[g.cellIndex(0, gy, gx)] = 1
		for c := 0; c < g.Cfg.Classes; c++ {
			target[g.cellIndex(1+c, gy, gx)] = 0
		}
		target[g.cellIndex(1+b.Class, gy, gx)] = 1
		off := 1 + g.Cfg.Classes
		target[g.cellIndex(off, gy, gx)] = cx/cellW - float64(gx)
		target[g.cellIndex(off+1, gy, gx)] = cy/cellH - float64(gy)
		target[g.cellIndex(off+2, gy, gx)] = b.W / float64(g.Cfg.W)
		target[g.cellIndex(off+3, gy, gx)] = b.H / float64(g.Cfg.H)
	}
	return target, objMask
}

// lossGrad computes the YOLO-style loss and its gradient for one sample:
// objectness BCE (down-weighted on empty cells), class cross-entropy and
// box regression on object cells.
func (g *GridDetector) lossGrad(row, target []float64, objMask []bool) (float64, []float64) {
	const (
		lambdaNoObj = 0.5
		lambdaCoord = 5.0
		lambdaClass = 1.0
	)
	grad := make([]float64, len(row))
	var loss float64
	cells := g.GH * g.GW
	for cell := 0; cell < cells; cell++ {
		gy := cell / g.GW
		gx := cell % g.GW
		oi := g.cellIndex(0, gy, gx)
		p := nn.SigmoidScalar(row[oi])
		t := target[oi]
		w := lambdaNoObj
		if objMask[cell] {
			w = 1
		}
		// BCE-with-logits on objectness.
		loss += w * (math.Max(row[oi], 0) - row[oi]*t + math.Log1p(math.Exp(-math.Abs(row[oi]))))
		grad[oi] = w * (p - t)

		if !objMask[cell] {
			continue
		}
		// Class cross-entropy over softmax.
		logits := make([]float64, g.Cfg.Classes)
		var tc int
		for c := 0; c < g.Cfg.Classes; c++ {
			logits[c] = row[g.cellIndex(1+c, gy, gx)]
			if target[g.cellIndex(1+c, gy, gx)] > 0.5 {
				tc = c
			}
		}
		probs := nn.Softmax(logits)
		loss += -lambdaClass * math.Log(math.Max(probs[tc], 1e-9))
		for c := 0; c < g.Cfg.Classes; c++ {
			ci := g.cellIndex(1+c, gy, gx)
			gval := probs[c]
			if c == tc {
				gval -= 1
			}
			grad[ci] = lambdaClass * gval
		}
		// Box regression: MSE on sigmoid-squashed offsets.
		off := 1 + g.Cfg.Classes
		for k := 0; k < 4; k++ {
			bi := g.cellIndex(off+k, gy, gx)
			pb := nn.SigmoidScalar(row[bi])
			tb := target[bi]
			d := pb - tb
			loss += lambdaCoord * d * d
			grad[bi] = lambdaCoord * 2 * d * pb * (1 - pb)
		}
	}
	return loss, grad
}
