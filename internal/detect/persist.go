package detect

import (
	"encoding/gob"
	"fmt"
	"io"

	"odin/internal/nn"
)

// persistHeader describes a saved detector so Load can rebuild the same
// architecture before restoring weights.
type persistHeader struct {
	Kind      int
	H, W      int
	Classes   int
	Channels  []int
	Strides   []int
	BatchNorm bool
	LR        float64
	Seed      uint64
}

// Save serialises the detector (architecture + weights) to w. A saved
// specialized model can be redeployed without retraining — the
// MODELMANAGER's persistence path.
func (g *GridDetector) Save(w io.Writer) error {
	h := persistHeader{
		Kind: int(g.Cfg.Kind), H: g.Cfg.H, W: g.Cfg.W, Classes: g.Cfg.Classes,
		Channels: g.Cfg.Channels, Strides: g.Cfg.Strides,
		BatchNorm: g.Cfg.BatchNorm, LR: g.Cfg.LR, Seed: g.Cfg.Seed,
	}
	if err := gob.NewEncoder(w).Encode(h); err != nil {
		return fmt.Errorf("detect: encode header: %w", err)
	}
	return nn.SaveWeights(g.Net, w)
}

// Load restores a detector previously written with Save.
func Load(r io.Reader) (*GridDetector, error) {
	var h persistHeader
	if err := gob.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("detect: decode header: %w", err)
	}
	cfg := GridConfig{
		Kind: Kind(h.Kind), H: h.H, W: h.W, Classes: h.Classes,
		Channels: h.Channels, Strides: h.Strides,
		BatchNorm: h.BatchNorm, LR: h.LR, Seed: h.Seed,
	}
	d := NewGridDetector(cfg)
	if err := nn.LoadWeights(d.Net, r); err != nil {
		return nil, err
	}
	return d, nil
}
