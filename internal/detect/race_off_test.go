//go:build !race

package detect

// raceEnabled gates allocation-count assertions.
const raceEnabled = false
