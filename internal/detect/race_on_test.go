//go:build race

package detect

// raceEnabled gates allocation-count assertions: the race detector
// randomises sync.Pool reuse, so alloc counts are not meaningful under it.
const raceEnabled = true
