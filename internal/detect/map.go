package detect

import (
	"sort"

	"odin/internal/synth"
)

// EvalResult carries detection-quality metrics over a test set.
type EvalResult struct {
	MAP      float64         // mean average precision @ IoU 0.5
	PerClass map[int]float64 // AP per class (classes present in GT)
	Counts   map[int]int     // GT instances per class
}

// scoredDet is one detection tagged with its frame.
type scoredDet struct {
	frame int
	det   Detection
}

// MeanAveragePrecision computes mAP@0.5 over frames with ground truth:
// per class, detections are sorted by score and greedily matched to unused
// GT boxes at IoU ≥ iouThr, producing a precision–recall curve whose
// all-point interpolated area is that class's AP; mAP averages over the
// classes present in the ground truth — the COCO-API protocol the paper's
// implementation uses.
func MeanAveragePrecision(detections [][]Detection, truth [][]synth.Box, iouThr float64) EvalResult {
	if len(detections) != len(truth) {
		panic("detect: detections/truth length mismatch")
	}
	byClass := make(map[int][]scoredDet)
	gtCount := make(map[int]int)
	for f, dets := range detections {
		for _, d := range dets {
			byClass[d.Box.Class] = append(byClass[d.Box.Class], scoredDet{f, d})
		}
	}
	for _, boxes := range truth {
		for _, b := range boxes {
			gtCount[b.Class]++
		}
	}

	res := EvalResult{PerClass: make(map[int]float64), Counts: gtCount}
	var sum float64
	var nClasses int
	for class, total := range gtCount {
		ap := averagePrecision(byClass[class], truth, class, total, iouThr)
		res.PerClass[class] = ap
		sum += ap
		nClasses++
	}
	if nClasses > 0 {
		res.MAP = sum / float64(nClasses)
	}
	return res
}

func averagePrecision(dets []scoredDet, truth [][]synth.Box, class, totalGT int, iouThr float64) float64 {
	if totalGT == 0 {
		return 0
	}
	sort.Slice(dets, func(a, b int) bool { return dets[a].det.Score > dets[b].det.Score })
	used := make(map[[2]int]bool) // (frame, gtIndex) consumed
	tp := make([]bool, len(dets))
	for i, sd := range dets {
		bestIoU := 0.0
		bestJ := -1
		for j, gt := range truth[sd.frame] {
			if gt.Class != class || used[[2]int{sd.frame, j}] {
				continue
			}
			if iou := sd.det.Box.IoU(gt); iou > bestIoU {
				bestIoU = iou
				bestJ = j
			}
		}
		if bestJ >= 0 && bestIoU >= iouThr {
			tp[i] = true
			used[[2]int{sd.frame, bestJ}] = true
		}
	}
	// Precision-recall curve.
	var cumTP, cumFP float64
	precisions := make([]float64, len(dets))
	recalls := make([]float64, len(dets))
	for i := range dets {
		if tp[i] {
			cumTP++
		} else {
			cumFP++
		}
		precisions[i] = cumTP / (cumTP + cumFP)
		recalls[i] = cumTP / float64(totalGT)
	}
	// All-point interpolation: make precision monotonically non-increasing
	// from the right, then integrate over recall steps.
	for i := len(precisions) - 2; i >= 0; i-- {
		if precisions[i+1] > precisions[i] {
			precisions[i] = precisions[i+1]
		}
	}
	var ap float64
	prevRecall := 0.0
	for i := range dets {
		if recalls[i] > prevRecall {
			ap += (recalls[i] - prevRecall) * precisions[i]
			prevRecall = recalls[i]
		}
	}
	return ap
}

// evalBatch is the frame-batch size detectAll hands to batch-capable
// detectors so the conv stack runs one big im2col matmul per batch instead
// of a batch-1 pass per frame.
const evalBatch = 32

// detectAll runs a detector over every image, chunked through DetectBatch
// when the detector supports it.
func detectAll(d Detector, imgs []*synth.Image) [][]Detection {
	dets := make([][]Detection, len(imgs))
	bd, ok := d.(BatchDetector)
	if !ok {
		for i, im := range imgs {
			dets[i] = d.Detect(im)
		}
		return dets
	}
	for start := 0; start < len(imgs); start += evalBatch {
		end := start + evalBatch
		if end > len(imgs) {
			end = len(imgs)
		}
		copy(dets[start:end], bd.DetectBatch(imgs[start:end]))
	}
	return dets
}

// EvaluateDetector runs a detector over frames and scores it against their
// ground truth. Detectors that implement BatchDetector (the grid detectors
// do) are driven in batches.
func EvaluateDetector(d Detector, frames []*synth.Frame, iouThr float64) EvalResult {
	imgs := make([]*synth.Image, len(frames))
	truth := make([][]synth.Box, len(frames))
	for i, f := range frames {
		imgs[i] = f.Image
		truth[i] = f.Boxes
	}
	return MeanAveragePrecision(detectAll(d, imgs), truth, iouThr)
}

// CountClass counts detections of a class above a score threshold — the
// primitive behind the paper's aggregation queries (§6.6).
func CountClass(dets []Detection, class int, minScore float64) int {
	n := 0
	for _, d := range dets {
		if d.Box.Class == class && d.Score >= minScore {
			n++
		}
	}
	return n
}
