package detect

import (
	"fmt"

	"odin/internal/nn"
)

// State is a value snapshot of a GridDetector: architecture config, decode
// thresholds, training RNG and the full network state (weights plus
// BatchNorm running statistics — the part the params-only weight files
// miss). Optimizer moments are not captured; a restored detector serves
// inference bit-identically, resumed training restarts Adam. Override
// Cfg.DType before FromState to rebuild under a different compute backend
// (stored weights are always float64 masters).
type State struct {
	Cfg            GridConfig
	ScoreThreshold float64
	NMSIoU         float64
	RNG            uint64
	Net            nn.NetState
}

// State snapshots the detector.
func (g *GridDetector) State() State {
	return State{
		Cfg:            g.Cfg,
		ScoreThreshold: g.ScoreThreshold,
		NMSIoU:         g.NMSIoU,
		RNG:            g.rng.State(),
		Net:            nn.CaptureState(g.Net),
	}
}

// FromState rebuilds a detector from a snapshot: the backbone is rebuilt
// from st.Cfg (validating the stored weight shapes against it) and the
// stored weights and running statistics loaded over it.
func FromState(st State) (*GridDetector, error) {
	if len(st.Cfg.Channels) != len(st.Cfg.Strides) || len(st.Cfg.Channels) == 0 {
		return nil, fmt.Errorf("detect: restore: invalid grid config %+v", st.Cfg)
	}
	g := NewGridDetector(st.Cfg)
	g.ScoreThreshold = st.ScoreThreshold
	g.NMSIoU = st.NMSIoU
	g.rng.SetState(st.RNG)
	if err := nn.RestoreState(g.Net, st.Net); err != nil {
		return nil, err
	}
	return g, nil
}
