// Package checkpoint defines ODIN's durable state format: a self-describing
// binary envelope (magic / version / dtype header, gob payload, CRC32
// trailer) around the full recoverable state of a Server — substrate
// projector, baseline and specialized detectors, cluster/∆-band detector
// state, registry entries — plus an atomic-rename file store with retention.
//
// Format (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "ODINCKPT"
//	8       4     format version (uint32)
//	12      1     storage dtype of the writing server (tensor.DType)
//	13      3     reserved (zero)
//	16      8     payload length in bytes (uint64)
//	24      n     gob-encoded Payload
//	24+n    4     CRC32 (IEEE) over bytes [0, 24+n)
//
// Weights inside the payload are always float64 masters regardless of the
// writer's compute backend, so a checkpoint written under one backend can be
// restored under the other; the header dtype records provenance only.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"odin/internal/core"
	"odin/internal/detect"
	"odin/internal/gan"
	"odin/internal/registry"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// Magic identifies an ODIN checkpoint stream.
const Magic = "ODINCKPT"

// Version is the current format version. Readers accept exactly this
// version; any other fails with ErrVersionMismatch (no cross-version
// migration exists yet — bump the version on any Payload change).
const Version uint32 = 1

const headerSize = 8 + 4 + 1 + 3 + 8

// Typed sentinel errors for the failure modes a reader distinguishes; all
// are errors.Is-able through whatever wrapping the facade adds.
var (
	// ErrBadMagic marks a stream that is not an ODIN checkpoint at all.
	ErrBadMagic = errors.New("checkpoint: bad magic (not an ODIN checkpoint)")
	// ErrVersionMismatch marks a checkpoint written by an incompatible
	// format version.
	ErrVersionMismatch = errors.New("checkpoint: unsupported format version")
	// ErrTruncated marks a stream that ends before the declared payload
	// and trailer are complete.
	ErrTruncated = errors.New("checkpoint: truncated stream")
	// ErrCorrupt marks a complete stream whose bytes fail the CRC or whose
	// payload fails to decode.
	ErrCorrupt = errors.New("checkpoint: corrupt payload")
)

// Payload is the full recoverable state of a Server.
type Payload struct {
	// Seed is the server's base seed: it determines every derived seed
	// (projector, baseline, specializer sequence) and must survive restart
	// so post-restore training jobs draw the same seeds.
	Seed uint64
	// Scene is the synthetic scene geometry.
	Scene synth.SceneConfig
	// Gen is the frame generator's progress (RNG state + frame counter).
	Gen synth.GenState
	// DAGAN is the bootstrapped substrate projector.
	DAGAN gan.State
	// Baseline is the full-size reference detector.
	Baseline detect.State
	// Pipeline is the drift-detection and recovery state: cluster set,
	// specialized models, outlier ring, stats.
	Pipeline core.PipelineState
	// Registry is the fleet model registry, nil when the server had none
	// (or used a registry shared with other servers — shared registries
	// are owned by the fleet, not one server's checkpoint).
	Registry *registry.State
}

// SetDType rewrites every stored architecture config to the given compute
// backend, so a checkpoint written under one backend restores under
// another. Weights are float64 masters either way; this only switches which
// kernel set serves them.
func (p *Payload) SetDType(dt tensor.DType) {
	p.DAGAN.Cfg.DType = dt
	p.Baseline.Cfg.DType = dt
	for i := range p.Pipeline.Manager.Models {
		p.Pipeline.Manager.Models[i].Det.Cfg.DType = dt
	}
	if p.Pipeline.Manager.MostRecentOwn != nil {
		p.Pipeline.Manager.MostRecentOwn.Det.Cfg.DType = dt
	}
	if p.Registry != nil {
		for i := range p.Registry.Entries {
			p.Registry.Entries[i].Model.Det.Cfg.DType = dt
		}
	}
}

// Write serializes the payload to w in the envelope format. dtype records
// the writing server's compute backend in the header.
func Write(w io.Writer, dtype tensor.DType, p *Payload) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(p); err != nil {
		return fmt.Errorf("checkpoint: encode payload: %w", err)
	}

	buf := make([]byte, headerSize, headerSize+body.Len()+4)
	copy(buf[0:8], Magic)
	binary.LittleEndian.PutUint32(buf[8:12], Version)
	buf[12] = byte(dtype)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(body.Len()))
	buf = append(buf, body.Bytes()...)

	crc := crc32.ChecksumIEEE(buf)
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	buf = append(buf, trailer[:]...)

	_, err := w.Write(buf)
	return err
}

// Read parses an envelope from r, verifies magic, version and CRC, and
// decodes the payload. The returned dtype is the writer's compute backend
// as recorded in the header.
func Read(r io.Reader) (*Payload, tensor.DType, error) {
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, 0, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	if string(header[0:8]) != Magic {
		return nil, 0, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(header[8:12]); v != Version {
		return nil, 0, fmt.Errorf("%w: file is v%d, reader is v%d", ErrVersionMismatch, v, Version)
	}
	dtype := tensor.DType(header[12])
	plen := binary.LittleEndian.Uint64(header[16:24])
	const maxPayload = 1 << 32 // 4 GiB sanity bound against nonsense lengths
	if plen > maxPayload {
		return nil, 0, fmt.Errorf("%w: declared payload of %d bytes", ErrCorrupt, plen)
	}

	body := make([]byte, plen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, fmt.Errorf("%w: reading %d-byte payload: %v", ErrTruncated, plen, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: reading CRC trailer: %v", ErrTruncated, err)
	}

	crc := crc32.NewIEEE()
	crc.Write(header)
	crc.Write(body)
	if got := binary.LittleEndian.Uint32(trailer[:]); got != crc.Sum32() {
		return nil, 0, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorrupt, got, crc.Sum32())
	}

	var p Payload
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&p); err != nil {
		return nil, 0, fmt.Errorf("%w: decode payload: %v", ErrCorrupt, err)
	}
	return &p, dtype, nil
}
