package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func save(t *testing.T, s *DirStore, content string) string {
	t.Helper()
	path, err := s.Save(func(w *os.File) error {
		_, err := w.WriteString(content)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDirStoreSaveLatestList(t *testing.T) {
	s, err := NewDirStore(filepath.Join(t.TempDir(), "ckpt"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest on empty store = %v, want ErrNoCheckpoint", err)
	}

	p1 := save(t, s, "one")
	p2 := save(t, s, "two")
	p3 := save(t, s, "three")

	latest, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest != p3 {
		t.Fatalf("Latest = %s, want %s", latest, p3)
	}
	paths, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{p1, p2, p3}
	if len(paths) != len(want) {
		t.Fatalf("List = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("List[%d] = %s, want %s", i, paths[i], want[i])
		}
	}
	b, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "three" {
		t.Fatalf("latest content = %q, want %q", b, "three")
	}
}

func TestDirStoreRetention(t *testing.T) {
	s, err := NewDirStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		save(t, s, "x")
	}
	paths, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("retained %d checkpoints, want 2", len(paths))
	}
	// Sequence numbers keep rising across pruning: the survivors are the
	// 4th and 5th saves.
	if !strings.Contains(paths[1], "checkpoint-0000000000000005") {
		t.Fatalf("unexpected newest survivor %s", paths[1])
	}
}

func TestDirStoreFailedSaveLeavesNoTrace(t *testing.T) {
	s, err := NewDirStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	save(t, s, "good")
	boom := errors.New("boom")
	if _, err := s.Save(func(w *os.File) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Save error = %v, want boom", err)
	}
	paths, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("store holds %d checkpoints after failed save, want 1", len(paths))
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store dir holds %d files after failed save, want 1 (no staging leftovers)", len(entries))
	}
}

func TestDirStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"notes.txt", "checkpoint-abc.ckpt", "checkpoint-1.bak"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p := save(t, s, "real")
	paths, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != p {
		t.Fatalf("List = %v, want just %s", paths, p)
	}
}
