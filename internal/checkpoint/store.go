package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrNoCheckpoint is returned by Latest when the store holds no checkpoints.
var ErrNoCheckpoint = errors.New("checkpoint: store is empty")

// DirStore is a directory of sequence-numbered checkpoint files with
// crash-safe writes: a checkpoint is staged to a temporary file, fsynced,
// then atomically renamed into place, so readers never observe a partial
// file and a crash mid-save leaves the previous checkpoint intact. Old
// checkpoints beyond the retention bound are pruned after each save.
type DirStore struct {
	mu     sync.Mutex
	dir    string
	retain int
}

const storeExt = ".ckpt"

// NewDirStore opens (creating if needed) a checkpoint directory. retain
// bounds how many checkpoints are kept; values < 1 keep exactly one.
func NewDirStore(dir string, retain int) (*DirStore, error) {
	if retain < 1 {
		retain = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store dir: %w", err)
	}
	return &DirStore{dir: dir, retain: retain}, nil
}

// Dir returns the store directory.
func (s *DirStore) Dir() string { return s.dir }

// Save writes one checkpoint through fn (which receives the staged file)
// and atomically publishes it, returning the final path.
func (s *DirStore) Save(fn func(w *os.File) error) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	seq := s.nextSeqLocked()
	final := filepath.Join(s.dir, fmt.Sprintf("checkpoint-%016d%s", seq, storeExt))

	tmp, err := os.CreateTemp(s.dir, ".staging-*")
	if err != nil {
		return "", fmt.Errorf("checkpoint: stage file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename

	if err := fn(tmp); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("checkpoint: sync staged file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("checkpoint: close staged file: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("checkpoint: publish: %w", err)
	}
	s.pruneLocked()
	return final, nil
}

// List returns the stored checkpoint paths, oldest first.
func (s *DirStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.listLocked()
}

// Latest returns the newest checkpoint path, or ErrNoCheckpoint.
func (s *DirStore) Latest() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths, err := s.listLocked()
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", ErrNoCheckpoint
	}
	return paths[len(paths)-1], nil
}

func (s *DirStore) listLocked() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list store: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if seqOf(e.Name()) >= 0 {
			paths = append(paths, filepath.Join(s.dir, e.Name()))
		}
	}
	sort.Strings(paths) // zero-padded sequence numbers sort chronologically
	return paths, nil
}

// nextSeqLocked returns one past the highest sequence number present.
func (s *DirStore) nextSeqLocked() int64 {
	paths, err := s.listLocked()
	if err != nil || len(paths) == 0 {
		return 1
	}
	return seqOf(filepath.Base(paths[len(paths)-1])) + 1
}

// pruneLocked deletes the oldest checkpoints beyond the retention bound.
func (s *DirStore) pruneLocked() {
	paths, err := s.listLocked()
	if err != nil {
		return
	}
	for len(paths) > s.retain {
		os.Remove(paths[0])
		paths = paths[1:]
	}
}

// seqOf parses a stored file name's sequence number, or -1 when the name is
// not a checkpoint file.
func seqOf(name string) int64 {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, storeExt) {
		return -1
	}
	num := strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), storeExt)
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n < 0 {
		return -1
	}
	return n
}
