package nn

import (
	"math"

	"odin/internal/tensor"
)

// BatchNorm normalises each feature column over the batch during training
// and tracks running statistics for inference. The paper's heavyweight YOLO
// baseline uses batch normalisation; the pruned YOLO-Specialized models drop
// it (§5.2), which this substrate mirrors.
//
// Statistics are accumulated in float64 on both backends: means, variances,
// running estimates and the backward reductions never round at 24 bits, so
// the float32 backend loses precision only in the activations themselves.
type BatchNorm struct {
	Dim      int
	Eps      float64
	Momentum float64

	Gamma *Param
	Beta  *Param

	RunMean []float64
	RunVar  []float64

	// Caches for backward, plus per-call statistics scratch retained across
	// steps so a training step allocates nothing.
	lastXHat *tensor.Mat
	lastStd  []float64
	lastN    int
	mean     []float64
	variance []float64
	sumG     []float64
	sumGX    []float64
}

// NewBatchNorm builds a batch-normalisation layer over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	b := &BatchNorm{
		Dim:      dim,
		Eps:      1e-5,
		Momentum: 0.9,
		Gamma:    newParam("bn.gamma", 1, dim),
		Beta:     newParam("bn.beta", 1, dim),
		RunMean:  make([]float64, dim),
		RunVar:   make([]float64, dim),
		lastStd:  make([]float64, dim),
		mean:     make([]float64, dim),
		variance: make([]float64, dim),
		sumG:     make([]float64, dim),
		sumGX:    make([]float64, dim),
	}
	b.Gamma.W.Fill(1)
	for i := range b.RunVar {
		b.RunVar[i] = 1
	}
	return b
}

// bnAffine applies the precomputed y = scale*x + shift rows in the storage
// dtype (the inference hot path: two flops per element).
func bnAffine[T float](xV, outV []T, scale, shift []T, dim, rows int) {
	for i := 0; i < rows; i++ {
		src := xV[i*dim : (i+1)*dim]
		dst := outV[i*dim : (i+1)*dim]
		for j, v := range src {
			dst[j] = scale[j]*v + shift[j]
		}
	}
}

// bnBatchStats accumulates per-column mean and variance in float64.
func bnBatchStats[T float](xV []T, dim, rows int, mean, variance []float64) {
	for j := range mean {
		mean[j] = 0
		variance[j] = 0
	}
	for i := 0; i < rows; i++ {
		for j, v := range xV[i*dim : (i+1)*dim] {
			mean[j] += float64(v)
		}
	}
	n := float64(rows)
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < rows; i++ {
		for j, v := range xV[i*dim : (i+1)*dim] {
			d := float64(v) - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
	}
}

// bnNormalize writes xhat and the affine output, computing each element in
// float64 and rounding once into the storage dtype.
func bnNormalize[T float](xV, xhV, outV []T, mean, std, gamma, beta []float64, dim, rows int) {
	for i := 0; i < rows; i++ {
		src := xV[i*dim : (i+1)*dim]
		xh := xhV[i*dim : (i+1)*dim]
		dst := outV[i*dim : (i+1)*dim]
		for j := range src {
			h := (float64(src[j]) - mean[j]) / std[j]
			xh[j] = T(h)
			dst[j] = T(gamma[j]*h + beta[j])
		}
	}
}

// Forward normalises the batch with batch statistics (train) or running
// statistics (inference). Inference draws its scratch from the workspace
// pool and writes no layer state, so concurrent inference is race-free.
func (b *BatchNorm) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != b.Dim {
		panic("nn: batchnorm width mismatch")
	}
	dt := x.DType()
	out := ws.GetRawOf(dt, x.R, x.C)
	if !train || x.R == 1 {
		// Precompute the affine form y = scale*x + shift of the running-stat
		// normalisation so the row loop is two flops per element.
		sc := ws.GetRawOf(dt, 2, b.Dim)
		if dt == tensor.F32 {
			scale := sc.Row32(0)
			shift := sc.Row32(1)
			for j := 0; j < b.Dim; j++ {
				s := b.Gamma.W.V[j] / math.Sqrt(b.RunVar[j]+b.Eps)
				scale[j] = float32(s)
				shift[j] = float32(b.Beta.W.V[j] - s*b.RunMean[j])
			}
			bnAffine(x.V32, out.V32, scale, shift, b.Dim, x.R)
		} else {
			scale := sc.Row(0)
			shift := sc.Row(1)
			for j := 0; j < b.Dim; j++ {
				s := b.Gamma.W.V[j] / math.Sqrt(b.RunVar[j]+b.Eps)
				scale[j] = s
				shift[j] = b.Beta.W.V[j] - s*b.RunMean[j]
			}
			bnAffine(x.V, out.V, scale, shift, b.Dim, x.R)
		}
		ws.Put(sc)
		if train {
			b.lastXHat = nil // single-row training backward uses running stats
		}
		return out
	}
	mean, variance := b.mean, b.variance
	if dt == tensor.F32 {
		bnBatchStats(x.V32, b.Dim, x.R, mean, variance)
	} else {
		bnBatchStats(x.V, b.Dim, x.R, mean, variance)
	}
	for j := range variance {
		b.lastStd[j] = math.Sqrt(variance[j] + b.Eps)
	}
	if b.lastXHat == nil || b.lastXHat.R != x.R || b.lastXHat.C != x.C || b.lastXHat.DType() != dt {
		b.lastXHat = tensor.NewOf(dt, x.R, x.C)
	}
	if dt == tensor.F32 {
		bnNormalize(x.V32, b.lastXHat.V32, out.V32, mean, b.lastStd, b.Gamma.W.V, b.Beta.W.V, b.Dim, x.R)
	} else {
		bnNormalize(x.V, b.lastXHat.V, out.V, mean, b.lastStd, b.Gamma.W.V, b.Beta.W.V, b.Dim, x.R)
	}
	b.lastN = x.R
	for j := range mean {
		b.RunMean[j] = b.Momentum*b.RunMean[j] + (1-b.Momentum)*mean[j]
		b.RunVar[j] = b.Momentum*b.RunVar[j] + (1-b.Momentum)*variance[j]
	}
	return out
}

// bnScaleRows is the inference-mode backward: dx = g * scale, column-wise.
func bnScaleRows[T float](gV, dxV []T, scale []float64, dim, rows int) {
	for i := 0; i < rows; i++ {
		src := gV[i*dim : (i+1)*dim]
		dst := dxV[i*dim : (i+1)*dim]
		for j, g := range src {
			dst[j] = T(float64(g) * scale[j])
		}
	}
}

// bnReduce accumulates the backward column sums Σg and Σg·x̂ in float64 and
// folds them into the master parameter gradients.
func bnReduce[T float](gV, xhV []T, sumG, sumGX, betaG, gammaG []float64, dim, rows int) {
	for j := 0; j < dim; j++ {
		sumG[j] = 0
		sumGX[j] = 0
	}
	for i := 0; i < rows; i++ {
		g := gV[i*dim : (i+1)*dim]
		xh := xhV[i*dim : (i+1)*dim]
		for j := range g {
			gj := float64(g[j])
			xj := float64(xh[j])
			sumG[j] += gj
			sumGX[j] += gj * xj
			betaG[j] += gj
			gammaG[j] += gj * xj
		}
	}
}

// bnInputGrad writes the standard batch-norm input gradient, computed in
// float64 per element and rounded once into the storage dtype.
func bnInputGrad[T float](gV, xhV, dxV []T, gamma, std, sumG, sumGX []float64, n float64, dim, rows int) {
	for i := 0; i < rows; i++ {
		g := gV[i*dim : (i+1)*dim]
		xh := xhV[i*dim : (i+1)*dim]
		dst := dxV[i*dim : (i+1)*dim]
		for j := range g {
			dst[j] = T(gamma[j] / (n * std[j]) *
				(n*float64(g[j]) - sumG[j] - float64(xh[j])*sumGX[j]))
		}
	}
}

// Backward implements the standard batch-norm gradient.
func (b *BatchNorm) Backward(grad *tensor.Mat) *tensor.Mat {
	dt := grad.DType()
	dx := ws.GetRawOf(dt, grad.R, grad.C)
	if b.lastXHat == nil {
		// Inference-mode backward (running stats are constants).
		scale := b.sumG[:b.Dim]
		for j := 0; j < b.Dim; j++ {
			scale[j] = b.Gamma.W.V[j] / math.Sqrt(b.RunVar[j]+b.Eps)
		}
		if dt == tensor.F32 {
			bnScaleRows(grad.V32, dx.V32, scale, b.Dim, grad.R)
		} else {
			bnScaleRows(grad.V, dx.V, scale, b.Dim, grad.R)
		}
		return dx
	}
	n := float64(b.lastN)
	if dt == tensor.F32 {
		bnReduce(grad.V32, b.lastXHat.V32, b.sumG, b.sumGX, b.Beta.Grad.V, b.Gamma.Grad.V, b.Dim, grad.R)
		bnInputGrad(grad.V32, b.lastXHat.V32, dx.V32, b.Gamma.W.V, b.lastStd, b.sumG, b.sumGX, n, b.Dim, grad.R)
	} else {
		bnReduce(grad.V, b.lastXHat.V, b.sumG, b.sumGX, b.Beta.Grad.V, b.Gamma.Grad.V, b.Dim, grad.R)
		bnInputGrad(grad.V, b.lastXHat.V, dx.V, b.Gamma.W.V, b.lastStd, b.sumG, b.sumGX, n, b.Dim, grad.R)
	}
	return dx
}

// Params returns the scale and shift parameters.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }
