package nn

import (
	"math"

	"odin/internal/tensor"
)

// BatchNorm normalises each feature column over the batch during training
// and tracks running statistics for inference. The paper's heavyweight YOLO
// baseline uses batch normalisation; the pruned YOLO-Specialized models drop
// it (§5.2), which this substrate mirrors.
type BatchNorm struct {
	Dim      int
	Eps      float64
	Momentum float64

	Gamma *Param
	Beta  *Param

	RunMean []float64
	RunVar  []float64

	// Caches for backward, plus per-call statistics scratch retained across
	// steps so a training step allocates nothing.
	lastXHat *tensor.Mat
	lastStd  []float64
	lastN    int
	mean     []float64
	variance []float64
	sumG     []float64
	sumGX    []float64
}

// NewBatchNorm builds a batch-normalisation layer over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	b := &BatchNorm{
		Dim:      dim,
		Eps:      1e-5,
		Momentum: 0.9,
		Gamma:    newParam("bn.gamma", 1, dim),
		Beta:     newParam("bn.beta", 1, dim),
		RunMean:  make([]float64, dim),
		RunVar:   make([]float64, dim),
		lastStd:  make([]float64, dim),
		mean:     make([]float64, dim),
		variance: make([]float64, dim),
		sumG:     make([]float64, dim),
		sumGX:    make([]float64, dim),
	}
	b.Gamma.W.Fill(1)
	for i := range b.RunVar {
		b.RunVar[i] = 1
	}
	return b
}

// Forward normalises the batch with batch statistics (train) or running
// statistics (inference). Inference draws its scratch from the workspace
// pool and writes no layer state, so concurrent inference is race-free.
func (b *BatchNorm) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != b.Dim {
		panic("nn: batchnorm width mismatch")
	}
	out := ws.GetRaw(x.R, x.C)
	if !train || x.R == 1 {
		// Precompute the affine form y = scale*x + shift of the running-stat
		// normalisation so the row loop is two flops per element.
		sc := ws.GetRaw(2, b.Dim)
		scale := sc.Row(0)
		shift := sc.Row(1)
		for j := 0; j < b.Dim; j++ {
			s := b.Gamma.W.V[j] / math.Sqrt(b.RunVar[j]+b.Eps)
			scale[j] = s
			shift[j] = b.Beta.W.V[j] - s*b.RunMean[j]
		}
		for i := 0; i < x.R; i++ {
			src, dst := x.Row(i), out.Row(i)
			for j, v := range src {
				dst[j] = scale[j]*v + shift[j]
			}
		}
		ws.Put(sc)
		if train {
			b.lastXHat = nil // single-row training backward uses running stats
		}
		return out
	}
	n := float64(x.R)
	mean, variance := b.mean, b.variance
	for j := range mean {
		mean[j] = 0
		variance[j] = 0
	}
	for i := 0; i < x.R; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < x.R; i++ {
		for j, v := range x.Row(i) {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
		b.lastStd[j] = math.Sqrt(variance[j] + b.Eps)
	}
	if b.lastXHat == nil || b.lastXHat.R != x.R || b.lastXHat.C != x.C {
		b.lastXHat = tensor.New(x.R, x.C)
	}
	xhat := b.lastXHat
	for i := 0; i < x.R; i++ {
		src, xh, dst := x.Row(i), xhat.Row(i), out.Row(i)
		for j := range src {
			h := (src[j] - mean[j]) / b.lastStd[j]
			xh[j] = h
			dst[j] = b.Gamma.W.V[j]*h + b.Beta.W.V[j]
		}
	}
	b.lastN = x.R
	for j := range mean {
		b.RunMean[j] = b.Momentum*b.RunMean[j] + (1-b.Momentum)*mean[j]
		b.RunVar[j] = b.Momentum*b.RunVar[j] + (1-b.Momentum)*variance[j]
	}
	return out
}

// Backward implements the standard batch-norm gradient.
func (b *BatchNorm) Backward(grad *tensor.Mat) *tensor.Mat {
	dx := ws.GetRaw(grad.R, grad.C)
	if b.lastXHat == nil {
		// Inference-mode backward (running stats are constants).
		scale := b.sumG[:b.Dim]
		for j := 0; j < b.Dim; j++ {
			scale[j] = b.Gamma.W.V[j] / math.Sqrt(b.RunVar[j]+b.Eps)
		}
		for i := 0; i < grad.R; i++ {
			src, dst := grad.Row(i), dx.Row(i)
			for j, g := range src {
				dst[j] = g * scale[j]
			}
		}
		return dx
	}
	n := float64(b.lastN)
	sumG, sumGX := b.sumG, b.sumGX
	for j := range sumG {
		sumG[j] = 0
		sumGX[j] = 0
	}
	for i := 0; i < grad.R; i++ {
		g, xh := grad.Row(i), b.lastXHat.Row(i)
		for j := range g {
			sumG[j] += g[j]
			sumGX[j] += g[j] * xh[j]
			b.Beta.Grad.V[j] += g[j]
			b.Gamma.Grad.V[j] += g[j] * xh[j]
		}
	}
	for i := 0; i < grad.R; i++ {
		g, xh, dst := grad.Row(i), b.lastXHat.Row(i), dx.Row(i)
		for j := range g {
			dst[j] = b.Gamma.W.V[j] / (n * b.lastStd[j]) *
				(n*g[j] - sumG[j] - xh[j]*sumGX[j])
		}
	}
	return dx
}

// Params returns the scale and shift parameters.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }
