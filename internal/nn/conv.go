package nn

import (
	"fmt"
	"math"

	"odin/internal/tensor"
)

// Conv2D is a 2-D convolution over channel-major C×H×W rows, implemented
// with batch-level im2col: the whole batch is unrolled into one patch
// matrix with a column per output pixel, so forward and backward are each
// a single large matrix multiply instead of one small multiply per sample.
// Output rows are flattened OutC×OutH×OutW. The compute dtype follows the
// input batch: float32 batches unroll into float32 patch matrices and
// multiply against the float32 weight shadows.
type Conv2D struct {
	InC, InH, InW  int
	OutC           int
	K, Stride, Pad int
	OutH, OutW     int

	Weight *Param // OutC × (K*K*InC)
	Bias   *Param // 1 × OutC

	// cols is the batched im2col workspace, (K*K*InC) × (R*OutH*OutW),
	// retained across steps (it is also the backward cache) and reallocated
	// only when the batch size or dtype changes.
	cols  *tensor.Mat
	lastN int
}

// NewConv2D builds a conv layer. Output spatial dims follow the standard
// formula out = (in + 2*pad - k)/stride + 1; the construction panics when
// the geometry does not divide evenly, surfacing architecture typos early.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: conv2d produces empty output for input %dx%dx%d k=%d s=%d p=%d", inC, inH, inW, k, stride, pad))
	}
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, K: k, Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
		Weight: newParam("conv.W", outC, k*k*inC),
		Bias:   newParam("conv.b", 1, outC),
	}
	fanIn := float64(k * k * inC)
	bound := math.Sqrt(6.0 / fanIn)
	rng.FillUniform(c.Weight.W, -bound, bound)
	return c
}

// OutSize returns the flattened output width OutC*OutH*OutW.
func (c *Conv2D) OutSize() int { return c.OutC * c.OutH * c.OutW }

// InSize returns the flattened input width InC*InH*InW.
func (c *Conv2D) InSize() int { return c.InC * c.InH * c.InW }

// patchRows returns the patch-matrix height K*K*InC.
func (c *Conv2D) patchRows() int { return c.K * c.K * c.InC }

// im2colInto unrolls one flattened sample into the column block
// [off, off+OutH*OutW) of the batched patch matrix (colsV with row stride
// colsC). Padded positions are written as zeros because the workspace is
// reused across steps.
func im2colInto[T float](c *Conv2D, row []T, colsV []T, colsC, off int) {
	spatial := c.OutH * c.OutW
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				base := ((ch*c.K+ky)*c.K + kx) * colsC
				crow := colsV[base+off : base+off+spatial]
				idx := 0
				for oy := 0; oy < c.OutH; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= c.InH {
						for ox := 0; ox < c.OutW; ox++ {
							crow[idx] = 0
							idx++
						}
						continue
					}
					rbase := chOff + iy*c.InW
					for ox := 0; ox < c.OutW; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix >= 0 && ix < c.InW {
							crow[idx] = row[rbase+ix]
						} else {
							crow[idx] = 0
						}
						idx++
					}
				}
			}
		}
	}
}

// col2imInto scatters the column block [off, off+OutH*OutW) of a patch
// gradient back into one flattened sample gradient.
func col2imInto[T float](c *Conv2D, colsV []T, colsC, off int, dst []T) {
	spatial := c.OutH * c.OutW
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				base := ((ch*c.K+ky)*c.K + kx) * colsC
				crow := colsV[base+off : base+off+spatial]
				idx := 0
				for oy := 0; oy < c.OutH; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= c.InH {
						idx += c.OutW
						continue
					}
					rbase := chOff + iy*c.InW
					for ox := 0; ox < c.OutW; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix >= 0 && ix < c.InW {
							dst[rbase+ix] += crow[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// convRegroup rewrites the channel-major matmul output yV (row stride yC)
// into per-sample rows of outV (row stride outC·spatial), adding the channel
// bias in the same pass. Samples [n0,n1).
func convRegroup[T float](outV, yV, bias []T, nOutC, spatial, yC int, n0, n1 int) {
	outW := nOutC * spatial
	for n := n0; n < n1; n++ {
		orow := outV[n*outW : (n+1)*outW]
		for oc := 0; oc < nOutC; oc++ {
			src := yV[oc*yC+n*spatial : oc*yC+(n+1)*spatial]
			dst := orow[oc*spatial : (oc+1)*spatial]
			b := bias[oc]
			for i, v := range src {
				dst[i] = v + b
			}
		}
	}
}

// convRegroupBack transposes per-sample gradient rows gradV back into the
// channel-major layout gV (row stride gC) used by the gradient matmuls.
func convRegroupBack[T float](gV, gradV []T, nOutC, spatial, gC int, n0, n1 int) {
	gradW := nOutC * spatial
	for n := n0; n < n1; n++ {
		grow := gradV[n*gradW : (n+1)*gradW]
		for oc := 0; oc < nOutC; oc++ {
			copy(gV[oc*gC+n*spatial:oc*gC+(n+1)*spatial], grow[oc*spatial:(oc+1)*spatial])
		}
	}
}

// Forward convolves the batch: one im2col pass, one weight×patches multiply
// and a bias-fused regroup into row-major output. Training retains the
// patch matrix as the backward cache; inference draws it from the workspace
// pool and writes no layer state, so concurrent inference is race-free.
func (c *Conv2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != c.InSize() {
		panic(fmt.Sprintf("nn: conv2d input width %d, want %d", x.C, c.InSize()))
	}
	dt := x.DType()
	r := x.R
	spatial := c.OutH * c.OutW
	rows := c.patchRows()
	var cols *tensor.Mat
	if train {
		c.lastN = r
		if c.cols == nil || c.cols.R != rows || c.cols.C != r*spatial || c.cols.DType() != dt {
			c.cols = tensor.NewOf(dt, rows, r*spatial)
		}
		cols = c.cols
	} else {
		// im2colInto writes every element (pads as zeros), so raw reuse is safe.
		cols = ws.GetRawOf(dt, rows, r*spatial)
	}
	if dt == tensor.F32 {
		tensor.Parallel(r, r*rows*spatial, func(n0, n1 int) {
			for n := n0; n < n1; n++ {
				im2colInto(c, x.Row32(n), cols.V32, cols.C, n*spatial)
			}
		})
	} else {
		tensor.Parallel(r, r*rows*spatial, func(n0, n1 int) {
			for n := n0; n < n1; n++ {
				im2colInto(c, x.Row(n), cols.V, cols.C, n*spatial)
			}
		})
	}

	wt, bias := c.Weight.W, c.Bias.W
	if dt == tensor.F32 {
		wt, bias = c.Weight.W32(), c.Bias.W32()
	}

	// y holds the whole batch channel-major: y[oc][n*spatial+s].
	y := ws.GetRawOf(dt, c.OutC, r*spatial)
	tensor.MatMulInto(y, wt, cols)
	if !train {
		ws.Put(cols)
	}

	// Regroup into per-sample rows, adding the channel bias in the same pass.
	out := ws.GetRawOf(dt, r, c.OutSize())
	if dt == tensor.F32 {
		tensor.Parallel(r, r*c.OutC*spatial, func(n0, n1 int) {
			convRegroup(out.V32, y.V32, bias.V32, c.OutC, spatial, y.C, n0, n1)
		})
	} else {
		tensor.Parallel(r, r*c.OutC*spatial, func(n0, n1 int) {
			convRegroup(out.V, y.V, bias.V, c.OutC, spatial, y.C, n0, n1)
		})
	}
	ws.Put(y)
	return out
}

// Backward accumulates weight/bias gradients and returns the input
// gradient. The whole batch is regrouped into one channel-major gradient
// matrix so the weight gradient is a single G×patchesᵀ multiply and the
// patch gradient a single Wᵀ×G multiply. Matmuls run in the gradient's
// dtype; the results accumulate into the float64 master gradients.
func (c *Conv2D) Backward(grad *tensor.Mat) *tensor.Mat {
	dt := grad.DType()
	r := grad.R
	spatial := c.OutH * c.OutW
	rows := c.patchRows()

	// Regroup grad rows channel-major (the transpose of the forward scatter).
	g := ws.GetRawOf(dt, c.OutC, r*spatial)
	if dt == tensor.F32 {
		tensor.Parallel(r, r*c.OutC*spatial, func(n0, n1 int) {
			convRegroupBack(g.V32, grad.V32, c.OutC, spatial, g.C, n0, n1)
		})
	} else {
		tensor.Parallel(r, r*c.OutC*spatial, func(n0, n1 int) {
			convRegroupBack(g.V, grad.V, c.OutC, spatial, g.C, n0, n1)
		})
	}

	// Bias gradient: per-channel sum over every sample and position,
	// accumulated in float64 on both backends.
	for oc := 0; oc < c.OutC; oc++ {
		var s float64
		if dt == tensor.F32 {
			for _, v := range g.Row32(oc) {
				s += float64(v)
			}
		} else {
			for _, v := range g.Row(oc) {
				s += v
			}
		}
		c.Bias.Grad.V[oc] += s
	}

	// Weight gradient: G × patchesᵀ across the whole batch at once.
	dW := ws.GetRawOf(dt, c.OutC, rows)
	tensor.MatMulBTInto(dW, g, c.cols)
	c.Weight.Grad.Add(dW)
	ws.Put(dW)

	wt := c.Weight.W
	if dt == tensor.F32 {
		wt = c.Weight.W32()
	}

	// Input gradient: Wᵀ × G, scattered back per sample by col2im.
	dCols := ws.GetRawOf(dt, rows, r*spatial)
	tensor.MatMulATInto(dCols, wt, g)
	dx := ws.GetOf(dt, r, c.InSize())
	if dt == tensor.F32 {
		tensor.Parallel(r, r*rows*spatial, func(n0, n1 int) {
			for n := n0; n < n1; n++ {
				col2imInto(c, dCols.V32, dCols.C, n*spatial, dx.Row32(n))
			}
		})
	} else {
		tensor.Parallel(r, r*rows*spatial, func(n0, n1 int) {
			for n := n0; n < n1; n++ {
				col2imInto(c, dCols.V, dCols.C, n*spatial, dx.Row(n))
			}
		})
	}
	ws.Put(g, dCols)
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Upsample2D performs nearest-neighbour spatial upsampling by an integer
// factor, used by decoders instead of transposed convolutions.
type Upsample2D struct {
	InC, InH, InW int
	Scale         int
	OutH, OutW    int
}

// NewUpsample2D builds a nearest-neighbour upsampler.
func NewUpsample2D(inC, inH, inW, scale int) *Upsample2D {
	return &Upsample2D{
		InC: inC, InH: inH, InW: inW, Scale: scale,
		OutH: inH * scale, OutW: inW * scale,
	}
}

// OutSize returns the flattened output width.
func (u *Upsample2D) OutSize() int { return u.InC * u.OutH * u.OutW }

func upsampleRow[T float](u *Upsample2D, src, dst []T) {
	for ch := 0; ch < u.InC; ch++ {
		sOff := ch * u.InH * u.InW
		dOff := ch * u.OutH * u.OutW
		for y := 0; y < u.OutH; y++ {
			sy := y / u.Scale
			for xx := 0; xx < u.OutW; xx++ {
				dst[dOff+y*u.OutW+xx] = src[sOff+sy*u.InW+xx/u.Scale]
			}
		}
	}
}

// Forward replicates each input pixel into a Scale×Scale block.
func (u *Upsample2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != u.InC*u.InH*u.InW {
		panic("nn: upsample input width mismatch")
	}
	out := ws.GetRawOf(x.DType(), x.R, u.OutSize())
	if x.V32 != nil {
		tensor.Parallel(x.R, x.R*u.OutSize(), func(n0, n1 int) {
			for n := n0; n < n1; n++ {
				upsampleRow(u, x.Row32(n), out.Row32(n))
			}
		})
	} else {
		tensor.Parallel(x.R, x.R*u.OutSize(), func(n0, n1 int) {
			for n := n0; n < n1; n++ {
				upsampleRow(u, x.Row(n), out.Row(n))
			}
		})
	}
	return out
}

func upsampleBackRow[T float](u *Upsample2D, src, dst []T) {
	for ch := 0; ch < u.InC; ch++ {
		sOff := ch * u.OutH * u.OutW
		dOff := ch * u.InH * u.InW
		for y := 0; y < u.OutH; y++ {
			sy := y / u.Scale
			for xx := 0; xx < u.OutW; xx++ {
				dst[dOff+sy*u.InW+xx/u.Scale] += src[sOff+y*u.OutW+xx]
			}
		}
	}
}

// Backward sums gradients over each Scale×Scale block.
func (u *Upsample2D) Backward(grad *tensor.Mat) *tensor.Mat {
	dx := ws.GetOf(grad.DType(), grad.R, u.InC*u.InH*u.InW)
	if grad.V32 != nil {
		tensor.Parallel(grad.R, grad.R*u.OutSize(), func(n0, n1 int) {
			for n := n0; n < n1; n++ {
				upsampleBackRow(u, grad.Row32(n), dx.Row32(n))
			}
		})
	} else {
		tensor.Parallel(grad.R, grad.R*u.OutSize(), func(n0, n1 int) {
			for n := n0; n < n1; n++ {
				upsampleBackRow(u, grad.Row(n), dx.Row(n))
			}
		})
	}
	return dx
}

// Params returns nil: upsampling has no trainable parameters.
func (u *Upsample2D) Params() []*Param { return nil }
