package nn

import (
	"fmt"
	"math"

	"odin/internal/tensor"
)

// Conv2D is a 2-D convolution over channel-major C×H×W rows, implemented
// with batch-level im2col: the whole batch is unrolled into one patch
// matrix with a column per output pixel, so forward and backward are each
// a single large matrix multiply instead of one small multiply per sample.
// Output rows are flattened OutC×OutH×OutW.
type Conv2D struct {
	InC, InH, InW  int
	OutC           int
	K, Stride, Pad int
	OutH, OutW     int

	Weight *Param // OutC × (K*K*InC)
	Bias   *Param // 1 × OutC

	// cols is the batched im2col workspace, (K*K*InC) × (R*OutH*OutW),
	// retained across steps (it is also the backward cache) and reallocated
	// only when the batch size changes.
	cols  *tensor.Mat
	lastN int
}

// NewConv2D builds a conv layer. Output spatial dims follow the standard
// formula out = (in + 2*pad - k)/stride + 1; the construction panics when
// the geometry does not divide evenly, surfacing architecture typos early.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: conv2d produces empty output for input %dx%dx%d k=%d s=%d p=%d", inC, inH, inW, k, stride, pad))
	}
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, K: k, Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
		Weight: newParam("conv.W", outC, k*k*inC),
		Bias:   newParam("conv.b", 1, outC),
	}
	fanIn := float64(k * k * inC)
	bound := math.Sqrt(6.0 / fanIn)
	rng.FillUniform(c.Weight.W, -bound, bound)
	return c
}

// OutSize returns the flattened output width OutC*OutH*OutW.
func (c *Conv2D) OutSize() int { return c.OutC * c.OutH * c.OutW }

// InSize returns the flattened input width InC*InH*InW.
func (c *Conv2D) InSize() int { return c.InC * c.InH * c.InW }

// patchRows returns the patch-matrix height K*K*InC.
func (c *Conv2D) patchRows() int { return c.K * c.K * c.InC }

// im2colInto unrolls one flattened sample into the column block
// [off, off+OutH*OutW) of the batched patch matrix. Padded positions are
// written as zeros because the workspace is reused across steps.
func (c *Conv2D) im2colInto(row []float64, cols *tensor.Mat, off int) {
	spatial := c.OutH * c.OutW
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				crow := cols.Row((ch*c.K+ky)*c.K + kx)[off : off+spatial]
				idx := 0
				for oy := 0; oy < c.OutH; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= c.InH {
						for ox := 0; ox < c.OutW; ox++ {
							crow[idx] = 0
							idx++
						}
						continue
					}
					base := chOff + iy*c.InW
					for ox := 0; ox < c.OutW; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix >= 0 && ix < c.InW {
							crow[idx] = row[base+ix]
						} else {
							crow[idx] = 0
						}
						idx++
					}
				}
			}
		}
	}
}

// col2imInto scatters the column block [off, off+OutH*OutW) of a patch
// gradient back into one flattened sample gradient.
func (c *Conv2D) col2imInto(cols *tensor.Mat, off int, dst []float64) {
	spatial := c.OutH * c.OutW
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				crow := cols.Row((ch*c.K+ky)*c.K + kx)[off : off+spatial]
				idx := 0
				for oy := 0; oy < c.OutH; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= c.InH {
						idx += c.OutW
						continue
					}
					base := chOff + iy*c.InW
					for ox := 0; ox < c.OutW; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix >= 0 && ix < c.InW {
							dst[base+ix] += crow[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// Forward convolves the batch: one im2col pass, one weight×patches multiply
// and a bias-fused regroup into row-major output. Training retains the
// patch matrix as the backward cache; inference draws it from the workspace
// pool and writes no layer state, so concurrent inference is race-free.
func (c *Conv2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != c.InSize() {
		panic(fmt.Sprintf("nn: conv2d input width %d, want %d", x.C, c.InSize()))
	}
	r := x.R
	spatial := c.OutH * c.OutW
	rows := c.patchRows()
	var cols *tensor.Mat
	if train {
		c.lastN = r
		if c.cols == nil || c.cols.R != rows || c.cols.C != r*spatial {
			c.cols = tensor.New(rows, r*spatial)
		}
		cols = c.cols
	} else {
		// im2colInto writes every element (pads as zeros), so raw reuse is safe.
		cols = ws.GetRaw(rows, r*spatial)
	}
	tensor.Parallel(r, r*rows*spatial, func(n0, n1 int) {
		for n := n0; n < n1; n++ {
			c.im2colInto(x.Row(n), cols, n*spatial)
		}
	})

	// y holds the whole batch channel-major: y[oc][n*spatial+s].
	y := ws.GetRaw(c.OutC, r*spatial)
	tensor.MatMulInto(y, c.Weight.W, cols)
	if !train {
		ws.Put(cols)
	}

	// Regroup into per-sample rows, adding the channel bias in the same pass.
	out := ws.GetRaw(r, c.OutSize())
	bias := c.Bias.W.V
	tensor.Parallel(r, r*c.OutC*spatial, func(n0, n1 int) {
		for n := n0; n < n1; n++ {
			orow := out.Row(n)
			for oc := 0; oc < c.OutC; oc++ {
				src := y.Row(oc)[n*spatial : (n+1)*spatial]
				dst := orow[oc*spatial : (oc+1)*spatial]
				b := bias[oc]
				for i, v := range src {
					dst[i] = v + b
				}
			}
		}
	})
	ws.Put(y)
	return out
}

// Backward accumulates weight/bias gradients and returns the input
// gradient. The whole batch is regrouped into one channel-major gradient
// matrix so the weight gradient is a single G×patchesᵀ multiply and the
// patch gradient a single Wᵀ×G multiply.
func (c *Conv2D) Backward(grad *tensor.Mat) *tensor.Mat {
	r := grad.R
	spatial := c.OutH * c.OutW
	rows := c.patchRows()

	// Regroup grad rows channel-major (the transpose of the forward scatter).
	g := ws.GetRaw(c.OutC, r*spatial)
	tensor.Parallel(r, r*c.OutC*spatial, func(n0, n1 int) {
		for n := n0; n < n1; n++ {
			grow := grad.Row(n)
			for oc := 0; oc < c.OutC; oc++ {
				copy(g.Row(oc)[n*spatial:(n+1)*spatial], grow[oc*spatial:(oc+1)*spatial])
			}
		}
	})

	// Bias gradient: per-channel sum over every sample and position.
	for oc := 0; oc < c.OutC; oc++ {
		var s float64
		for _, v := range g.Row(oc) {
			s += v
		}
		c.Bias.Grad.V[oc] += s
	}

	// Weight gradient: G × patchesᵀ across the whole batch at once.
	dW := ws.GetRaw(c.OutC, rows)
	tensor.MatMulBTInto(dW, g, c.cols)
	c.Weight.Grad.Add(dW)
	ws.Put(dW)

	// Input gradient: Wᵀ × G, scattered back per sample by col2im.
	dCols := ws.GetRaw(rows, r*spatial)
	tensor.MatMulATInto(dCols, c.Weight.W, g)
	dx := ws.Get(r, c.InSize())
	tensor.Parallel(r, r*rows*spatial, func(n0, n1 int) {
		for n := n0; n < n1; n++ {
			c.col2imInto(dCols, n*spatial, dx.Row(n))
		}
	})
	ws.Put(g, dCols)
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Upsample2D performs nearest-neighbour spatial upsampling by an integer
// factor, used by decoders instead of transposed convolutions.
type Upsample2D struct {
	InC, InH, InW int
	Scale         int
	OutH, OutW    int
}

// NewUpsample2D builds a nearest-neighbour upsampler.
func NewUpsample2D(inC, inH, inW, scale int) *Upsample2D {
	return &Upsample2D{
		InC: inC, InH: inH, InW: inW, Scale: scale,
		OutH: inH * scale, OutW: inW * scale,
	}
}

// OutSize returns the flattened output width.
func (u *Upsample2D) OutSize() int { return u.InC * u.OutH * u.OutW }

// Forward replicates each input pixel into a Scale×Scale block.
func (u *Upsample2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != u.InC*u.InH*u.InW {
		panic("nn: upsample input width mismatch")
	}
	out := ws.GetRaw(x.R, u.OutSize())
	tensor.Parallel(x.R, x.R*u.OutSize(), func(n0, n1 int) {
		for n := n0; n < n1; n++ {
			src := x.Row(n)
			dst := out.Row(n)
			for ch := 0; ch < u.InC; ch++ {
				sOff := ch * u.InH * u.InW
				dOff := ch * u.OutH * u.OutW
				for y := 0; y < u.OutH; y++ {
					sy := y / u.Scale
					for xx := 0; xx < u.OutW; xx++ {
						dst[dOff+y*u.OutW+xx] = src[sOff+sy*u.InW+xx/u.Scale]
					}
				}
			}
		}
	})
	return out
}

// Backward sums gradients over each Scale×Scale block.
func (u *Upsample2D) Backward(grad *tensor.Mat) *tensor.Mat {
	dx := ws.Get(grad.R, u.InC*u.InH*u.InW)
	tensor.Parallel(grad.R, grad.R*u.OutSize(), func(n0, n1 int) {
		for n := n0; n < n1; n++ {
			src := grad.Row(n)
			dst := dx.Row(n)
			for ch := 0; ch < u.InC; ch++ {
				sOff := ch * u.OutH * u.OutW
				dOff := ch * u.InH * u.InW
				for y := 0; y < u.OutH; y++ {
					sy := y / u.Scale
					for xx := 0; xx < u.OutW; xx++ {
						dst[dOff+sy*u.InW+xx/u.Scale] += src[sOff+y*u.OutW+xx]
					}
				}
			}
		}
	})
	return dx
}

// Params returns nil: upsampling has no trainable parameters.
func (u *Upsample2D) Params() []*Param { return nil }
