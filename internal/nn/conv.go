package nn

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"odin/internal/tensor"
)

// convWorkers bounds the per-layer batch parallelism.
var convWorkers = runtime.GOMAXPROCS(0)

// parallelFor runs fn(i) for i in [0, n) across up to convWorkers
// goroutines. Small batches run inline to avoid scheduling overhead.
func parallelFor(n int, fn func(i int)) {
	workers := convWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Conv2D is a 2-D convolution over channel-major C×H×W rows, implemented
// with im2col so the inner loop is a matrix multiply. Output rows are
// flattened OutC×OutH×OutW.
type Conv2D struct {
	InC, InH, InW  int
	OutC           int
	K, Stride, Pad int
	OutH, OutW     int

	Weight *Param // OutC × (K*K*InC)
	Bias   *Param // 1 × OutC

	lastCols []*tensor.Mat // im2col matrices per batch sample
	lastN    int
}

// NewConv2D builds a conv layer. Output spatial dims follow the standard
// formula out = (in + 2*pad - k)/stride + 1; the construction panics when
// the geometry does not divide evenly, surfacing architecture typos early.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: conv2d produces empty output for input %dx%dx%d k=%d s=%d p=%d", inC, inH, inW, k, stride, pad))
	}
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, K: k, Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
		Weight: newParam("conv.W", outC, k*k*inC),
		Bias:   newParam("conv.b", 1, outC),
	}
	fanIn := float64(k * k * inC)
	bound := math.Sqrt(6.0 / fanIn)
	rng.FillUniform(c.Weight.W, -bound, bound)
	return c
}

// OutSize returns the flattened output width OutC*OutH*OutW.
func (c *Conv2D) OutSize() int { return c.OutC * c.OutH * c.OutW }

// InSize returns the flattened input width InC*InH*InW.
func (c *Conv2D) InSize() int { return c.InC * c.InH * c.InW }

// im2col unrolls one flattened sample into a (K*K*InC) × (OutH*OutW) patch
// matrix.
func (c *Conv2D) im2col(row []float64) *tensor.Mat {
	cols := tensor.New(c.K*c.K*c.InC, c.OutH*c.OutW)
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				crow := cols.Row((ch*c.K+ky)*c.K + kx)
				idx := 0
				for oy := 0; oy < c.OutH; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					for ox := 0; ox < c.OutW; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if iy >= 0 && iy < c.InH && ix >= 0 && ix < c.InW {
							crow[idx] = row[chOff+iy*c.InW+ix]
						}
						idx++
					}
				}
			}
		}
	}
	return cols
}

// col2im scatters a patch-matrix gradient back into a flattened sample
// gradient.
func (c *Conv2D) col2im(cols *tensor.Mat, dst []float64) {
	for ch := 0; ch < c.InC; ch++ {
		chOff := ch * c.InH * c.InW
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				crow := cols.Row((ch*c.K+ky)*c.K + kx)
				idx := 0
				for oy := 0; oy < c.OutH; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					for ox := 0; ox < c.OutW; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if iy >= 0 && iy < c.InH && ix >= 0 && ix < c.InW {
							dst[chOff+iy*c.InW+ix] += crow[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// Forward convolves each sample in the batch.
func (c *Conv2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != c.InSize() {
		panic(fmt.Sprintf("nn: conv2d input width %d, want %d", x.C, c.InSize()))
	}
	c.lastN = x.R
	c.lastCols = make([]*tensor.Mat, x.R)
	out := tensor.New(x.R, c.OutSize())
	spatial := c.OutH * c.OutW
	parallelFor(x.R, func(n int) {
		cols := c.im2col(x.Row(n))
		c.lastCols[n] = cols
		y := tensor.New(c.OutC, spatial)
		tensor.MatMulInto(y, c.Weight.W, cols)
		orow := out.Row(n)
		for oc := 0; oc < c.OutC; oc++ {
			b := c.Bias.W.V[oc]
			yrow := y.Row(oc)
			dst := orow[oc*spatial : (oc+1)*spatial]
			for i, v := range yrow {
				dst[i] = v + b
			}
		}
	})
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
// The batch dimension is processed in parallel with per-sample gradient
// buffers merged at the end.
func (c *Conv2D) Backward(grad *tensor.Mat) *tensor.Mat {
	spatial := c.OutH * c.OutW
	dx := tensor.New(grad.R, c.InSize())
	dWs := make([]*tensor.Mat, grad.R)
	dBs := make([][]float64, grad.R)
	parallelFor(grad.R, func(n int) {
		g := tensor.New(c.OutC, spatial)
		grow := grad.Row(n)
		for oc := 0; oc < c.OutC; oc++ {
			copy(g.Row(oc), grow[oc*spatial:(oc+1)*spatial])
		}
		// Bias gradient: sum over spatial positions.
		db := make([]float64, c.OutC)
		for oc := 0; oc < c.OutC; oc++ {
			var s float64
			for _, v := range g.Row(oc) {
				s += v
			}
			db[oc] = s
		}
		dBs[n] = db
		// Weight gradient: g × colsᵀ.
		dW := tensor.New(c.Weight.W.R, c.Weight.W.C)
		tensor.MatMulBTInto(dW, g, c.lastCols[n])
		dWs[n] = dW
		// Input gradient: Wᵀ × g, scattered by col2im.
		dCols := tensor.New(c.K*c.K*c.InC, spatial)
		tensor.MatMulATInto(dCols, c.Weight.W, g)
		c.col2im(dCols, dx.Row(n))
	})
	for n := 0; n < grad.R; n++ {
		c.Weight.Grad.Add(dWs[n])
		for oc, v := range dBs[n] {
			c.Bias.Grad.V[oc] += v
		}
	}
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Upsample2D performs nearest-neighbour spatial upsampling by an integer
// factor, used by decoders instead of transposed convolutions.
type Upsample2D struct {
	InC, InH, InW int
	Scale         int
	OutH, OutW    int
}

// NewUpsample2D builds a nearest-neighbour upsampler.
func NewUpsample2D(inC, inH, inW, scale int) *Upsample2D {
	return &Upsample2D{
		InC: inC, InH: inH, InW: inW, Scale: scale,
		OutH: inH * scale, OutW: inW * scale,
	}
}

// OutSize returns the flattened output width.
func (u *Upsample2D) OutSize() int { return u.InC * u.OutH * u.OutW }

// Forward replicates each input pixel into a Scale×Scale block.
func (u *Upsample2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != u.InC*u.InH*u.InW {
		panic("nn: upsample input width mismatch")
	}
	out := tensor.New(x.R, u.OutSize())
	for n := 0; n < x.R; n++ {
		src := x.Row(n)
		dst := out.Row(n)
		for ch := 0; ch < u.InC; ch++ {
			sOff := ch * u.InH * u.InW
			dOff := ch * u.OutH * u.OutW
			for y := 0; y < u.OutH; y++ {
				sy := y / u.Scale
				for xx := 0; xx < u.OutW; xx++ {
					dst[dOff+y*u.OutW+xx] = src[sOff+sy*u.InW+xx/u.Scale]
				}
			}
		}
	}
	return out
}

// Backward sums gradients over each Scale×Scale block.
func (u *Upsample2D) Backward(grad *tensor.Mat) *tensor.Mat {
	dx := tensor.New(grad.R, u.InC*u.InH*u.InW)
	for n := 0; n < grad.R; n++ {
		src := grad.Row(n)
		dst := dx.Row(n)
		for ch := 0; ch < u.InC; ch++ {
			sOff := ch * u.OutH * u.OutW
			dOff := ch * u.InH * u.InW
			for y := 0; y < u.OutH; y++ {
				sy := y / u.Scale
				for xx := 0; xx < u.OutW; xx++ {
					dst[dOff+sy*u.InW+xx/u.Scale] += src[sOff+y*u.OutW+xx]
				}
			}
		}
	}
	return dx
}

// Params returns nil: upsampling has no trainable parameters.
func (u *Upsample2D) Params() []*Param { return nil }
