package nn

import (
	"math"

	"odin/internal/tensor"
)

// Optimizer updates parameters in place from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.Mat
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step applies one SGD update to every parameter.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.Grad
		if s.WeightDecay > 0 {
			g = g.Clone()
			g.AddScaled(s.WeightDecay, p.W)
		}
		if s.Momentum > 0 {
			if s.velocity == nil {
				s.velocity = make(map[*Param]*tensor.Mat)
			}
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.W.R, p.W.C)
				s.velocity[p] = v
			}
			v.Scale(s.Momentum)
			v.AddScaled(-s.LR, g)
			p.W.Add(v)
		} else {
			p.W.AddScaled(-s.LR, g)
		}
		p.Invalidate()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t int
	m map[*Param]*tensor.Mat
	v map[*Param]*tensor.Mat
}

// NewAdam returns an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update to every parameter.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make(map[*Param]*tensor.Mat)
		a.v = make(map[*Param]*tensor.Mat)
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.W.R, p.W.C)
			a.m[p] = m
			a.v[p] = tensor.New(p.W.R, p.W.C)
		}
		v := a.v[p]
		for i, g := range p.Grad.V {
			if a.WeightDecay > 0 {
				g += a.WeightDecay * p.W.V[i]
			}
			m.V[i] = a.Beta1*m.V[i] + (1-a.Beta1)*g
			v.V[i] = a.Beta2*v.V[i] + (1-a.Beta2)*g*g
			mh := m.V[i] / bc1
			vh := v.V[i] / bc2
			p.W.V[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.Invalidate()
	}
}

// ClipGrads rescales all gradients so their global L2 norm is at most
// maxNorm; GAN training uses this to keep adversarial updates stable.
func ClipGrads(params []*Param, maxNorm float64) {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.V {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.Grad.Scale(scale)
	}
}
