package nn

import (
	"math"

	"odin/internal/tensor"
)

const lossEps = 1e-7

// Losses dispatch on the prediction's dtype: the loss value and its
// internal math are always float64 (logs and exps need the headroom), while
// the returned gradient matrix is produced in the prediction's dtype so it
// flows straight back through the same backend.

func lossGradFor(pred *tensor.Mat) *tensor.Mat {
	return ws.GetRawOf(pred.DType(), pred.R, pred.C)
}

func mseImpl[T float](pred, target, grad []T) float64 {
	n := float64(len(pred))
	var loss float64
	for i, p := range pred {
		d := float64(p) - float64(target[i])
		loss += d * d
		grad[i] = T(2 * d / n)
	}
	return loss / n
}

// MSE returns the mean squared error over all elements and its gradient
// with respect to pred.
func MSE(pred, target *tensor.Mat) (float64, *tensor.Mat) {
	if pred.R != target.R || pred.C != target.C || pred.DType() != target.DType() {
		panic("nn: mse shape mismatch")
	}
	grad := lossGradFor(pred)
	if pred.V32 != nil {
		return mseImpl(pred.V32, target.V32, grad.V32), grad
	}
	return mseImpl(pred.V, target.V, grad.V), grad
}

func bceImpl[T float](pred, target, grad []T) float64 {
	n := float64(len(pred))
	var loss float64
	for i, pv := range pred {
		p := clamp(float64(pv), lossEps, 1-lossEps)
		t := float64(target[i])
		loss += -(t*math.Log(p) + (1-t)*math.Log(1-p))
		grad[i] = T((p - t) / (p * (1 - p)) / n)
	}
	return loss / n
}

// BCE returns the binary cross-entropy between probabilities pred∈(0,1) and
// targets∈[0,1], averaged over all elements, plus the gradient w.r.t. pred.
// This is the reconstruction loss of Equation 5 and the discriminator loss
// of Equations 3–4 when the network ends in a Sigmoid.
func BCE(pred, target *tensor.Mat) (float64, *tensor.Mat) {
	if pred.R != target.R || pred.C != target.C || pred.DType() != target.DType() {
		panic("nn: bce shape mismatch")
	}
	grad := lossGradFor(pred)
	if pred.V32 != nil {
		return bceImpl(pred.V32, target.V32, grad.V32), grad
	}
	return bceImpl(pred.V, target.V, grad.V), grad
}

func bceScalarImpl[T float](pred []T, target float64, grad []T) float64 {
	n := float64(len(pred))
	var loss float64
	for i, pv := range pred {
		p := clamp(float64(pv), lossEps, 1-lossEps)
		loss += -(target*math.Log(p) + (1-target)*math.Log(1-p))
		grad[i] = T((p - target) / (p * (1 - p)) / n)
	}
	return loss / n
}

// BCEScalarTarget is BCE against a constant target (all-ones or all-zeros),
// the common case for GAN discriminator updates.
func BCEScalarTarget(pred *tensor.Mat, target float64) (float64, *tensor.Mat) {
	grad := lossGradFor(pred)
	if pred.V32 != nil {
		return bceScalarImpl(pred.V32, target, grad.V32), grad
	}
	return bceScalarImpl(pred.V, target, grad.V), grad
}

func bceLogitsImpl[T float](logits []T, target float64, grad []T) float64 {
	n := float64(len(logits))
	var loss float64
	for i, zv := range logits {
		z := float64(zv)
		// loss = max(z,0) − z*t + log(1+exp(−|z|))
		loss += math.Max(z, 0) - z*target + math.Log1p(math.Exp(-math.Abs(z)))
		grad[i] = T((sigmoid(z) - target) / n)
	}
	return loss / n
}

// BCEWithLogits computes the numerically stable binary cross-entropy on raw
// logits against a constant target, returning the gradient w.r.t. logits.
func BCEWithLogits(logits *tensor.Mat, target float64) (float64, *tensor.Mat) {
	grad := lossGradFor(logits)
	if logits.V32 != nil {
		return bceLogitsImpl(logits.V32, target, grad.V32), grad
	}
	return bceLogitsImpl(logits.V, target, grad.V), grad
}

// SoftmaxCE computes mean softmax cross-entropy for a batch of logit rows
// against integer class labels, returning the gradient w.r.t. logits.
// Float32 logit rows are widened into a float64 scratch row so the softmax
// op order (and hence the probabilities) matches the float64 path exactly.
func SoftmaxCE(logits *tensor.Mat, labels []int) (float64, *tensor.Mat) {
	if logits.R != len(labels) {
		panic("nn: softmax-ce batch mismatch")
	}
	grad := lossGradFor(logits)
	probs := make([]float64, logits.C)
	var row64 []float64
	if logits.V32 != nil {
		row64 = make([]float64, logits.C)
	}
	var loss float64
	inv := 1 / float64(logits.R)
	for i := 0; i < logits.R; i++ {
		row := logits.Row64(i, row64)
		softmaxInto(probs, row)
		t := labels[i]
		loss += -math.Log(clamp(probs[t], lossEps, 1))
		if grad.V32 != nil {
			grow := grad.Row32(i)
			for j, p := range probs {
				grow[j] = float32(p * inv)
			}
			grow[t] -= float32(inv)
		} else {
			grow := grad.Row(i)
			for j, p := range probs {
				grow[j] = p * inv
			}
			grow[t] -= inv
		}
	}
	return loss * inv, grad
}

// Softmax returns the softmax of a logit row.
func Softmax(row []float64) []float64 { return softmax(row) }

// SoftmaxInto writes softmax(row) into out (len(out) == len(row)) without
// allocating — the single source of the softmax op order, so callers that
// avoid the allocating Softmax still get bit-identical probabilities.
func SoftmaxInto(out, row []float64) { softmaxInto(out, row) }

func softmax(row []float64) []float64 {
	out := make([]float64, len(row))
	softmaxInto(out, row)
	return out
}

func softmaxInto(out, row []float64) {
	maxv := math.Inf(-1)
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range row {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// SigmoidScalar exposes the logistic function for single scores.
func SigmoidScalar(z float64) float64 { return sigmoid(z) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
