package nn

import (
	"math"

	"odin/internal/tensor"
)

const lossEps = 1e-7

// MSE returns the mean squared error over all elements and its gradient
// with respect to pred.
func MSE(pred, target *tensor.Mat) (float64, *tensor.Mat) {
	if pred.R != target.R || pred.C != target.C {
		panic("nn: mse shape mismatch")
	}
	n := float64(len(pred.V))
	grad := ws.GetRaw(pred.R, pred.C)
	var loss float64
	for i, p := range pred.V {
		d := p - target.V[i]
		loss += d * d
		grad.V[i] = 2 * d / n
	}
	return loss / n, grad
}

// BCE returns the binary cross-entropy between probabilities pred∈(0,1) and
// targets∈[0,1], averaged over all elements, plus the gradient w.r.t. pred.
// This is the reconstruction loss of Equation 5 and the discriminator loss
// of Equations 3–4 when the network ends in a Sigmoid.
func BCE(pred, target *tensor.Mat) (float64, *tensor.Mat) {
	if pred.R != target.R || pred.C != target.C {
		panic("nn: bce shape mismatch")
	}
	n := float64(len(pred.V))
	grad := ws.GetRaw(pred.R, pred.C)
	var loss float64
	for i, p := range pred.V {
		p = clamp(p, lossEps, 1-lossEps)
		t := target.V[i]
		loss += -(t*math.Log(p) + (1-t)*math.Log(1-p))
		grad.V[i] = (p - t) / (p * (1 - p)) / n
	}
	return loss / n, grad
}

// BCEScalarTarget is BCE against a constant target (all-ones or all-zeros),
// the common case for GAN discriminator updates.
func BCEScalarTarget(pred *tensor.Mat, target float64) (float64, *tensor.Mat) {
	n := float64(len(pred.V))
	grad := ws.GetRaw(pred.R, pred.C)
	var loss float64
	for i, p := range pred.V {
		p = clamp(p, lossEps, 1-lossEps)
		loss += -(target*math.Log(p) + (1-target)*math.Log(1-p))
		grad.V[i] = (p - target) / (p * (1 - p)) / n
	}
	return loss / n, grad
}

// BCEWithLogits computes the numerically stable binary cross-entropy on raw
// logits against a constant target, returning the gradient w.r.t. logits.
func BCEWithLogits(logits *tensor.Mat, target float64) (float64, *tensor.Mat) {
	n := float64(len(logits.V))
	grad := ws.GetRaw(logits.R, logits.C)
	var loss float64
	for i, z := range logits.V {
		// loss = max(z,0) − z*t + log(1+exp(−|z|))
		loss += math.Max(z, 0) - z*target + math.Log1p(math.Exp(-math.Abs(z)))
		grad.V[i] = (sigmoid(z) - target) / n
	}
	return loss / n, grad
}

// SoftmaxCE computes mean softmax cross-entropy for a batch of logit rows
// against integer class labels, returning the gradient w.r.t. logits.
func SoftmaxCE(logits *tensor.Mat, labels []int) (float64, *tensor.Mat) {
	if logits.R != len(labels) {
		panic("nn: softmax-ce batch mismatch")
	}
	grad := ws.GetRaw(logits.R, logits.C)
	probs := make([]float64, logits.C)
	var loss float64
	inv := 1 / float64(logits.R)
	for i := 0; i < logits.R; i++ {
		row := logits.Row(i)
		softmaxInto(probs, row)
		t := labels[i]
		loss += -math.Log(clamp(probs[t], lossEps, 1))
		grow := grad.Row(i)
		for j, p := range probs {
			grow[j] = p * inv
		}
		grow[t] -= inv
	}
	return loss * inv, grad
}

// Softmax returns the softmax of a logit row.
func Softmax(row []float64) []float64 { return softmax(row) }

// SoftmaxInto writes softmax(row) into out (len(out) == len(row)) without
// allocating — the single source of the softmax op order, so callers that
// avoid the allocating Softmax still get bit-identical probabilities.
func SoftmaxInto(out, row []float64) { softmaxInto(out, row) }

func softmax(row []float64) []float64 {
	out := make([]float64, len(row))
	softmaxInto(out, row)
	return out
}

func softmaxInto(out, row []float64) {
	maxv := math.Inf(-1)
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range row {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// SigmoidScalar exposes the logistic function for single scores.
func SigmoidScalar(z float64) float64 { return sigmoid(z) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
