package nn

import (
	"math"
	"testing"

	"odin/internal/tensor"
)

// numericalGrad estimates dLoss/dx by central differences for an arbitrary
// scalar loss of the network output, and compares against Backward.
func checkLayerGradient(t *testing.T, layer Layer, in *tensor.Mat, tol float64) {
	t.Helper()
	probe := layer.Forward(in, true)
	target := tensor.New(probe.R, probe.C)
	for i := range target.V {
		target.V[i] = 0.3 * float64(i%3)
	}
	lossOf := func(x *tensor.Mat) float64 {
		out := layer.Forward(x, true)
		l, _ := MSE(out, target)
		return l
	}

	// Analytic input gradient.
	out := layer.Forward(in, true)
	_, g := MSE(out, target)
	analytic := layer.Backward(g)

	const h = 1e-5
	for i := range in.V {
		orig := in.V[i]
		in.V[i] = orig + h
		lp := lossOf(in)
		in.V[i] = orig - h
		lm := lossOf(in)
		in.V[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-analytic.V[i]) > tol*(1+math.Abs(numeric)) {
			t.Fatalf("input grad mismatch at %d: analytic=%g numeric=%g", i, analytic.V[i], numeric)
		}
	}

	// Analytic parameter gradients.
	for _, p := range layer.Params() {
		p.Grad.Zero()
	}
	out = layer.Forward(in, true)
	_, g = MSE(out, target)
	layer.Backward(g)
	for pi, p := range layer.Params() {
		for i := range p.W.V {
			orig := p.W.V[i]
			p.W.V[i] = orig + h
			lp := lossOf(in)
			p.W.V[i] = orig - h
			lm := lossOf(in)
			p.W.V[i] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-p.Grad.V[i]) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %d grad mismatch at %d: analytic=%g numeric=%g", pi, i, p.Grad.V[i], numeric)
			}
		}
	}
}

func randomBatch(r, c int, seed uint64) *tensor.Mat {
	rng := tensor.NewRNG(seed)
	m := tensor.New(r, c)
	rng.FillNormal(m, 1)
	return m
}

func TestDenseGradient(t *testing.T) {
	rng := tensor.NewRNG(1)
	checkLayerGradient(t, NewDense(5, 4, rng), randomBatch(3, 5, 2), 1e-4)
}

func TestReLUGradient(t *testing.T) {
	// Shift inputs away from the kink at 0.
	in := randomBatch(2, 6, 3)
	for i := range in.V {
		if math.Abs(in.V[i]) < 0.1 {
			in.V[i] = 0.5
		}
	}
	checkLayerGradient(t, NewReLU(), in, 1e-4)
}

func TestLeakyReLUGradient(t *testing.T) {
	in := randomBatch(2, 6, 4)
	for i := range in.V {
		if math.Abs(in.V[i]) < 0.1 {
			in.V[i] = -0.5
		}
	}
	checkLayerGradient(t, NewLeakyReLU(0.2), in, 1e-4)
}

func TestSigmoidGradient(t *testing.T) {
	checkLayerGradient(t, NewSigmoid(), randomBatch(2, 5, 5), 1e-4)
}

func TestTanhGradient(t *testing.T) {
	checkLayerGradient(t, NewTanh(), randomBatch(2, 5, 6), 1e-4)
}

func TestConv2DGradient(t *testing.T) {
	rng := tensor.NewRNG(7)
	layer := NewConv2D(2, 5, 5, 3, 3, 1, 1, rng)
	checkLayerGradient(t, layer, randomBatch(2, 2*5*5, 8), 1e-4)
}

func TestConv2DStridedGradient(t *testing.T) {
	rng := tensor.NewRNG(9)
	layer := NewConv2D(1, 6, 6, 2, 3, 2, 1, rng)
	checkLayerGradient(t, layer, randomBatch(2, 36, 10), 1e-4)
}

func TestUpsampleGradient(t *testing.T) {
	layer := NewUpsample2D(2, 3, 3, 2)
	checkLayerGradient(t, layer, randomBatch(2, 18, 11), 1e-4)
}

func TestBatchNormGradient(t *testing.T) {
	layer := NewBatchNorm(4)
	checkLayerGradient(t, layer, randomBatch(6, 4, 12), 1e-3)
}

func TestSequentialNetworkGradient(t *testing.T) {
	rng := tensor.NewRNG(13)
	net := NewNetwork("mlp",
		NewDense(6, 8, rng),
		NewTanh(),
		NewDense(8, 3, rng),
		NewSigmoid(),
	)
	checkLayerGradient(t, net, randomBatch(4, 6, 14), 1e-4)
}

func TestConvNetworkGradient(t *testing.T) {
	rng := tensor.NewRNG(15)
	conv := NewConv2D(1, 6, 6, 2, 3, 1, 1, rng)
	net := NewNetwork("convnet",
		conv,
		NewLeakyReLU(0.1),
		NewDense(conv.OutSize(), 4, rng),
		NewTanh(),
	)
	in := randomBatch(2, 36, 16)
	for i := range in.V {
		if math.Abs(in.V[i]) < 0.05 {
			in.V[i] = 0.3
		}
	}
	checkLayerGradient(t, net, in, 2e-4)
}
