package nn

import (
	"math"

	"odin/internal/tensor"
)

// Element-wise transforms shared by the layer Forwards (dst and src
// distinct) and the fused Dense+activation inference path (dst == src);
// see Network.Forward.

func reluInto(dst, src []float64) {
	for i, x := range src {
		if x < 0 {
			dst[i] = 0
		} else {
			dst[i] = x
		}
	}
}

func leakyReLUInto(dst, src []float64, alpha float64) {
	for i, x := range src {
		if x < 0 {
			dst[i] = x * alpha
		} else {
			dst[i] = x
		}
	}
}

func sigmoidInto(dst, src []float64) {
	for i, x := range src {
		dst[i] = 1 / (1 + math.Exp(-x))
	}
}

func tanhInto(dst, src []float64) {
	for i, x := range src {
		dst[i] = math.Tanh(x)
	}
}

// ReLU is the rectified linear activation max(0, x).
type ReLU struct {
	lastIn *tensor.Mat
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) element-wise. The backward cache is only
// written on training passes; inference passes touch no layer state, so
// concurrent inference is race-free.
func (r *ReLU) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if train {
		r.lastIn = x
	}
	out := ws.GetRaw(x.R, x.C)
	reluInto(out.V, x.V)
	return out
}

// Backward zeroes the gradient where the input was negative.
func (r *ReLU) Backward(grad *tensor.Mat) *tensor.Mat {
	out := ws.GetRaw(grad.R, grad.C)
	for i, v := range r.lastIn.V {
		if v < 0 {
			out.V[i] = 0
		} else {
			out.V[i] = grad.V[i]
		}
	}
	return out
}

// Params returns nil: ReLU has no trainable parameters.
func (r *ReLU) Params() []*Param { return nil }

// LeakyReLU is max(x, alpha*x), the activation used by GAN discriminators.
type LeakyReLU struct {
	Alpha  float64
	lastIn *tensor.Mat
}

// NewLeakyReLU returns a leaky ReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward applies the leaky rectifier element-wise. Layer state is only
// written on training passes.
func (l *LeakyReLU) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if train {
		l.lastIn = x
	}
	out := ws.GetRaw(x.R, x.C)
	leakyReLUInto(out.V, x.V, l.Alpha)
	return out
}

// Backward scales the gradient by alpha where the input was negative.
func (l *LeakyReLU) Backward(grad *tensor.Mat) *tensor.Mat {
	out := ws.GetRaw(grad.R, grad.C)
	for i, v := range l.lastIn.V {
		if v < 0 {
			out.V[i] = grad.V[i] * l.Alpha
		} else {
			out.V[i] = grad.V[i]
		}
	}
	return out
}

// Params returns nil: LeakyReLU has no trainable parameters.
func (l *LeakyReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation 1/(1+e^-x).
type Sigmoid struct {
	lastOut *tensor.Mat
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function element-wise.
func (s *Sigmoid) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := ws.GetRaw(x.R, x.C)
	sigmoidInto(out.V, x.V)
	if train {
		s.lastOut = out
	}
	return out
}

// Backward multiplies the gradient by σ(x)(1−σ(x)).
func (s *Sigmoid) Backward(grad *tensor.Mat) *tensor.Mat {
	out := ws.GetRaw(grad.R, grad.C)
	for i, y := range s.lastOut.V {
		out.V[i] = grad.V[i] * y * (1 - y)
	}
	return out
}

// Params returns nil: Sigmoid has no trainable parameters.
func (s *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOut *tensor.Mat
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := ws.GetRaw(x.R, x.C)
	tanhInto(out.V, x.V)
	if train {
		t.lastOut = out
	}
	return out
}

// Backward multiplies the gradient by 1−tanh²(x).
func (t *Tanh) Backward(grad *tensor.Mat) *tensor.Mat {
	out := ws.GetRaw(grad.R, grad.C)
	for i, y := range t.lastOut.V {
		out.V[i] = grad.V[i] * (1 - y*y)
	}
	return out
}

// Params returns nil: Tanh has no trainable parameters.
func (t *Tanh) Params() []*Param { return nil }

// Dropout randomly zeroes activations during training with probability P,
// scaling survivors by 1/(1−P) (inverted dropout). At inference it is the
// identity.
type Dropout struct {
	P    float64
	rng  *tensor.RNG
	mask []float64
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward applies the dropout mask when train is true. Inference is the
// identity and touches no layer state (re-entrant).
func (d *Dropout) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if !train {
		return x
	}
	if d.P <= 0 {
		d.mask = nil
		return x
	}
	out := ws.GetRaw(x.R, x.C)
	if len(d.mask) != len(x.V) {
		d.mask = make([]float64, len(x.V))
	}
	keep := 1 - d.P
	inv := 1 / keep
	for i, v := range x.V {
		if d.rng.Float64() < keep {
			d.mask[i] = inv
			out.V[i] = v * inv
		} else {
			d.mask[i] = 0
			out.V[i] = 0
		}
	}
	return out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Mat) *tensor.Mat {
	if d.mask == nil {
		return grad
	}
	out := ws.GetRaw(grad.R, grad.C)
	for i, m := range d.mask {
		out.V[i] = grad.V[i] * m
	}
	return out
}

// Params returns nil: Dropout has no trainable parameters.
func (d *Dropout) Params() []*Param { return nil }
