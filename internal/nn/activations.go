package nn

import (
	"math"

	"odin/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x).
type ReLU struct {
	lastIn *tensor.Mat
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) element-wise.
func (r *ReLU) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	r.lastIn = x
	out := x.Clone()
	for i, v := range out.V {
		if v < 0 {
			out.V[i] = 0
		}
	}
	return out
}

// Backward zeroes the gradient where the input was negative.
func (r *ReLU) Backward(grad *tensor.Mat) *tensor.Mat {
	out := grad.Clone()
	for i, v := range r.lastIn.V {
		if v < 0 {
			out.V[i] = 0
		}
	}
	return out
}

// Params returns nil: ReLU has no trainable parameters.
func (r *ReLU) Params() []*Param { return nil }

// LeakyReLU is max(x, alpha*x), the activation used by GAN discriminators.
type LeakyReLU struct {
	Alpha  float64
	lastIn *tensor.Mat
}

// NewLeakyReLU returns a leaky ReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward applies the leaky rectifier element-wise.
func (l *LeakyReLU) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	l.lastIn = x
	out := x.Clone()
	for i, v := range out.V {
		if v < 0 {
			out.V[i] = v * l.Alpha
		}
	}
	return out
}

// Backward scales the gradient by alpha where the input was negative.
func (l *LeakyReLU) Backward(grad *tensor.Mat) *tensor.Mat {
	out := grad.Clone()
	for i, v := range l.lastIn.V {
		if v < 0 {
			out.V[i] *= l.Alpha
		}
	}
	return out
}

// Params returns nil: LeakyReLU has no trainable parameters.
func (l *LeakyReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation 1/(1+e^-x).
type Sigmoid struct {
	lastOut *tensor.Mat
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function element-wise.
func (s *Sigmoid) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := x.Clone()
	for i, v := range out.V {
		out.V[i] = 1 / (1 + math.Exp(-v))
	}
	s.lastOut = out
	return out
}

// Backward multiplies the gradient by σ(x)(1−σ(x)).
func (s *Sigmoid) Backward(grad *tensor.Mat) *tensor.Mat {
	out := grad.Clone()
	for i, y := range s.lastOut.V {
		out.V[i] *= y * (1 - y)
	}
	return out
}

// Params returns nil: Sigmoid has no trainable parameters.
func (s *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOut *tensor.Mat
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := x.Clone()
	for i, v := range out.V {
		out.V[i] = math.Tanh(v)
	}
	t.lastOut = out
	return out
}

// Backward multiplies the gradient by 1−tanh²(x).
func (t *Tanh) Backward(grad *tensor.Mat) *tensor.Mat {
	out := grad.Clone()
	for i, y := range t.lastOut.V {
		out.V[i] *= 1 - y*y
	}
	return out
}

// Params returns nil: Tanh has no trainable parameters.
func (t *Tanh) Params() []*Param { return nil }

// Dropout randomly zeroes activations during training with probability P,
// scaling survivors by 1/(1−P) (inverted dropout). At inference it is the
// identity.
type Dropout struct {
	P    float64
	rng  *tensor.RNG
	mask []float64
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward applies the dropout mask when train is true.
func (d *Dropout) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	out := x.Clone()
	d.mask = make([]float64, len(x.V))
	keep := 1 - d.P
	inv := 1 / keep
	for i := range out.V {
		if d.rng.Float64() < keep {
			d.mask[i] = inv
			out.V[i] *= inv
		} else {
			d.mask[i] = 0
			out.V[i] = 0
		}
	}
	return out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Mat) *tensor.Mat {
	if d.mask == nil {
		return grad
	}
	out := grad.Clone()
	for i := range out.V {
		out.V[i] *= d.mask[i]
	}
	return out
}

// Params returns nil: Dropout has no trainable parameters.
func (d *Dropout) Params() []*Param { return nil }
