package nn

import (
	"math"

	"odin/internal/tensor"
)

// float constrains the element-wise helpers to the two storage dtypes the
// tensor backends expose. Activation math runs natively in the activation
// dtype (transcendentals round-trip through float64, which is exact for
// float32 inputs), so a layer's output dtype always follows its input.
type float interface{ ~float32 | ~float64 }

// Element-wise transforms shared by the layer Forwards (dst and src
// distinct) and the fused Dense+activation inference path (dst == src);
// see Network.Forward.

func reluInto[T float](dst, src []T) {
	for i, x := range src {
		if x < 0 {
			dst[i] = 0
		} else {
			dst[i] = x
		}
	}
}

func leakyReLUInto[T float](dst, src []T, alpha T) {
	for i, x := range src {
		if x < 0 {
			dst[i] = x * alpha
		} else {
			dst[i] = x
		}
	}
}

func sigmoidInto[T float](dst, src []T) {
	for i, x := range src {
		dst[i] = T(1 / (1 + math.Exp(-float64(x))))
	}
}

func tanhInto[T float](dst, src []T) {
	for i, x := range src {
		dst[i] = T(math.Tanh(float64(x)))
	}
}

// ReLU is the rectified linear activation max(0, x).
type ReLU struct {
	lastIn *tensor.Mat
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) element-wise. The backward cache is only
// written on training passes; inference passes touch no layer state, so
// concurrent inference is race-free.
func (r *ReLU) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if train {
		r.lastIn = x
	}
	out := ws.GetRawOf(x.DType(), x.R, x.C)
	if x.V32 != nil {
		reluInto(out.V32, x.V32)
	} else {
		reluInto(out.V, x.V)
	}
	return out
}

func reluBack[T float](dst, in, g []T) {
	for i, v := range in {
		if v < 0 {
			dst[i] = 0
		} else {
			dst[i] = g[i]
		}
	}
}

// Backward zeroes the gradient where the input was negative.
func (r *ReLU) Backward(grad *tensor.Mat) *tensor.Mat {
	out := ws.GetRawOf(grad.DType(), grad.R, grad.C)
	if grad.V32 != nil {
		reluBack(out.V32, r.lastIn.V32, grad.V32)
	} else {
		reluBack(out.V, r.lastIn.V, grad.V)
	}
	return out
}

// Params returns nil: ReLU has no trainable parameters.
func (r *ReLU) Params() []*Param { return nil }

// LeakyReLU is max(x, alpha*x), the activation used by GAN discriminators.
type LeakyReLU struct {
	Alpha  float64
	lastIn *tensor.Mat
}

// NewLeakyReLU returns a leaky ReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward applies the leaky rectifier element-wise. Layer state is only
// written on training passes.
func (l *LeakyReLU) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if train {
		l.lastIn = x
	}
	out := ws.GetRawOf(x.DType(), x.R, x.C)
	if x.V32 != nil {
		leakyReLUInto(out.V32, x.V32, float32(l.Alpha))
	} else {
		leakyReLUInto(out.V, x.V, l.Alpha)
	}
	return out
}

func leakyBack[T float](dst, in, g []T, alpha T) {
	for i, v := range in {
		if v < 0 {
			dst[i] = g[i] * alpha
		} else {
			dst[i] = g[i]
		}
	}
}

// Backward scales the gradient by alpha where the input was negative.
func (l *LeakyReLU) Backward(grad *tensor.Mat) *tensor.Mat {
	out := ws.GetRawOf(grad.DType(), grad.R, grad.C)
	if grad.V32 != nil {
		leakyBack(out.V32, l.lastIn.V32, grad.V32, float32(l.Alpha))
	} else {
		leakyBack(out.V, l.lastIn.V, grad.V, l.Alpha)
	}
	return out
}

// Params returns nil: LeakyReLU has no trainable parameters.
func (l *LeakyReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation 1/(1+e^-x).
type Sigmoid struct {
	lastOut *tensor.Mat
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function element-wise.
func (s *Sigmoid) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := ws.GetRawOf(x.DType(), x.R, x.C)
	if x.V32 != nil {
		sigmoidInto(out.V32, x.V32)
	} else {
		sigmoidInto(out.V, x.V)
	}
	if train {
		s.lastOut = out
	}
	return out
}

func sigmoidBack[T float](dst, y, g []T) {
	for i, v := range y {
		dst[i] = g[i] * v * (1 - v)
	}
}

// Backward multiplies the gradient by σ(x)(1−σ(x)).
func (s *Sigmoid) Backward(grad *tensor.Mat) *tensor.Mat {
	out := ws.GetRawOf(grad.DType(), grad.R, grad.C)
	if grad.V32 != nil {
		sigmoidBack(out.V32, s.lastOut.V32, grad.V32)
	} else {
		sigmoidBack(out.V, s.lastOut.V, grad.V)
	}
	return out
}

// Params returns nil: Sigmoid has no trainable parameters.
func (s *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOut *tensor.Mat
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := ws.GetRawOf(x.DType(), x.R, x.C)
	if x.V32 != nil {
		tanhInto(out.V32, x.V32)
	} else {
		tanhInto(out.V, x.V)
	}
	if train {
		t.lastOut = out
	}
	return out
}

func tanhBack[T float](dst, y, g []T) {
	for i, v := range y {
		dst[i] = g[i] * (1 - v*v)
	}
}

// Backward multiplies the gradient by 1−tanh²(x).
func (t *Tanh) Backward(grad *tensor.Mat) *tensor.Mat {
	out := ws.GetRawOf(grad.DType(), grad.R, grad.C)
	if grad.V32 != nil {
		tanhBack(out.V32, t.lastOut.V32, grad.V32)
	} else {
		tanhBack(out.V, t.lastOut.V, grad.V)
	}
	return out
}

// Params returns nil: Tanh has no trainable parameters.
func (t *Tanh) Params() []*Param { return nil }

// Dropout randomly zeroes activations during training with probability P,
// scaling survivors by 1/(1−P) (inverted dropout). At inference it is the
// identity.
type Dropout struct {
	P    float64
	rng  *tensor.RNG
	mask []float64
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	return &Dropout{P: p, rng: rng}
}

func dropoutApply[T float](dst, src []T, mask []float64, rng *tensor.RNG, keep, inv float64) {
	for i, v := range src {
		if rng.Float64() < keep {
			mask[i] = inv
			dst[i] = v * T(inv)
		} else {
			mask[i] = 0
			dst[i] = 0
		}
	}
}

// Forward applies the dropout mask when train is true. Inference is the
// identity and touches no layer state (re-entrant). The mask itself stays
// float64 on both backends so the RNG stream consumption is identical.
func (d *Dropout) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if !train {
		return x
	}
	if d.P <= 0 {
		d.mask = nil
		return x
	}
	out := ws.GetRawOf(x.DType(), x.R, x.C)
	if len(d.mask) != x.Len() {
		d.mask = make([]float64, x.Len())
	}
	keep := 1 - d.P
	inv := 1 / keep
	if x.V32 != nil {
		dropoutApply(out.V32, x.V32, d.mask, d.rng, keep, inv)
	} else {
		dropoutApply(out.V, x.V, d.mask, d.rng, keep, inv)
	}
	return out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Mat) *tensor.Mat {
	if d.mask == nil {
		return grad
	}
	out := ws.GetRawOf(grad.DType(), grad.R, grad.C)
	if grad.V32 != nil {
		for i, m := range d.mask {
			out.V32[i] = grad.V32[i] * float32(m)
		}
	} else {
		for i, m := range d.mask {
			out.V[i] = grad.V[i] * m
		}
	}
	return out
}

// Params returns nil: Dropout has no trainable parameters.
func (d *Dropout) Params() []*Param { return nil }
