package nn

import (
	"sync"
	"testing"

	"odin/internal/tensor"
)

// The batched-im2col conv and pooled workspace exist to make training steps
// allocation-free at steady state. These tests pin that property down: the
// naive per-sample kernels sat at ~217 allocs per conv forward+backward,
// the batched ones must stay in single digits (a little headroom is left
// for the worker-pool job headers on multi-core machines).

func TestConvTrainingStepAllocs(t *testing.T) {
	rng := tensor.NewRNG(1)
	layer := NewConv2D(3, 32, 32, 16, 3, 1, 1, rng)
	x := tensor.New(16, 3*32*32)
	rng.FillNormal(x, 1)
	out := layer.Forward(x, true)
	grad := tensor.New(out.R, out.C)
	tensor.NewRNG(2).FillNormal(grad, 1)
	Recycle(out)

	avg := testing.AllocsPerRun(10, func() {
		o := layer.Forward(x, true)
		dx := layer.Backward(grad)
		Recycle(o, dx)
	})
	if avg > 32 {
		t.Fatalf("conv forward+backward allocates %.0f/op, want steady-state reuse (≤32)", avg)
	}
}

func TestDenseTrainingStepAllocs(t *testing.T) {
	rng := tensor.NewRNG(3)
	layer := NewDense(512, 128, rng)
	x := tensor.New(32, 512)
	rng.FillNormal(x, 1)
	out := layer.Forward(x, true)
	grad := tensor.New(out.R, out.C)
	tensor.NewRNG(4).FillNormal(grad, 1)
	Recycle(out)

	avg := testing.AllocsPerRun(10, func() {
		o := layer.Forward(x, true)
		dx := layer.Backward(grad)
		Recycle(o, dx)
	})
	if avg > 16 {
		t.Fatalf("dense forward+backward allocates %.0f/op, want steady-state reuse (≤16)", avg)
	}
}

// TestNetworkTrainingStepAllocs drives a whole MLP step — forward, loss,
// backward — through the canonical recycle pattern and checks the workspace
// pool absorbs it.
func TestNetworkTrainingStepAllocs(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := NewNetwork("mlp",
		NewDense(64, 48, rng),
		NewTanh(),
		NewDense(48, 16, rng),
		NewSigmoid(),
	)
	x := tensor.New(8, 64)
	rng.FillNormal(x, 1)
	y := tensor.New(8, 16)
	rng.FillUniform(y, 0, 1)

	step := func() {
		out := net.Forward(x, true)
		_, grad := BCE(out, y)
		net.ZeroGrad()
		dx := net.Backward(grad)
		Recycle(out, grad, dx)
	}
	step() // warm the pool
	avg := testing.AllocsPerRun(20, func() { step() })
	// ZeroGrad builds a params slice and the net is tiny, so the bound is
	// loose — the point is that it does not scale with layer count × batch.
	if avg > 24 {
		t.Fatalf("network step allocates %.0f/op, want steady-state reuse (≤24)", avg)
	}
}

// TestInferencePredictAllocs pins the streaming hot path: a detector-shaped
// inference pass (conv → batchnorm → leaky ReLU → 1×1 head) must draw every
// scratch matrix — including the im2col patch buffer and the batchnorm
// affine scratch — from the workspace pool. This is the per-frame `Detect`
// path of the streaming core (ROADMAP: "recycle the remaining inference
// paths"); before the pooled-inference rework it allocated the patch matrix
// and BN scratch on every frame.
func TestInferencePredictAllocs(t *testing.T) {
	rng := tensor.NewRNG(9)
	conv := NewConv2D(3, 16, 16, 8, 3, 2, 1, rng)
	net := NewNetwork("det",
		conv,
		NewBatchNorm(conv.OutSize()),
		NewLeakyReLU(0.1),
		NewConv2D(8, conv.OutH, conv.OutW, 10, 1, 1, 0, rng),
	)
	x := tensor.New(1, 3*16*16)
	rng.FillNormal(x, 1)

	step := func() {
		out := net.Predict(x)
		Recycle(out)
	}
	step() // warm the pool
	avg := testing.AllocsPerRun(20, func() { step() })
	// The only residue is the parallel-loop closure headers (a few dozen
	// bytes); every matrix comes from the pool.
	if avg > 8 {
		t.Fatalf("inference pass allocates %.0f/op, want pooled reuse (≤8)", avg)
	}
}

// TestPredictConcurrentConsistency runs inference on a shared network from
// many goroutines at once and pins every result to the sequential output.
// Inference Forwards must not touch layer state (see Layer contract) — this
// is what the sharded streaming pipeline relies on, and `go test -race`
// turns any regression into a hard failure.
func TestPredictConcurrentConsistency(t *testing.T) {
	rng := tensor.NewRNG(11)
	conv := NewConv2D(3, 12, 12, 6, 3, 1, 1, rng)
	net := NewNetwork("det",
		conv,
		NewBatchNorm(conv.OutSize()),
		NewLeakyReLU(0.1),
		NewConv2D(6, conv.OutH, conv.OutW, 4, 1, 1, 0, rng),
	)
	const inputs = 6
	xs := make([]*tensor.Mat, inputs)
	want := make([][]float64, inputs)
	for i := range xs {
		xs[i] = tensor.New(1, 3*12*12)
		rng.FillNormal(xs[i], 1)
		out := net.Predict(xs[i])
		want[i] = append([]float64(nil), out.Row(0)...)
		Recycle(out)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				i := (g + rep) % inputs
				out := net.Predict(xs[i])
				for j, v := range out.Row(0) {
					if v != want[i][j] {
						select {
						case errs <- "concurrent predict diverged from sequential":
						default:
						}
						break
					}
				}
				Recycle(out)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestConvParallelConsistency pins the worker-pool kernels to the serial
// results (row partitioning is deterministic, so equality is exact) and
// gives `go test -race` real concurrency to chew on even on one core.
func TestConvParallelConsistency(t *testing.T) {
	run := func() (*tensor.Mat, *tensor.Mat, *tensor.Mat, *tensor.Mat) {
		rng := tensor.NewRNG(7)
		layer := NewConv2D(3, 16, 16, 8, 3, 2, 1, rng)
		x := tensor.New(12, 3*16*16)
		rng.FillNormal(x, 1)
		out := layer.Forward(x, true)
		grad := tensor.New(out.R, out.C)
		tensor.NewRNG(8).FillNormal(grad, 1)
		dx := layer.Backward(grad)
		return out, dx, layer.Weight.Grad, layer.Bias.Grad
	}
	prev := tensor.Parallelism()
	tensor.SetParallelism(1)
	sOut, sDx, sDW, sDB := run()
	tensor.SetParallelism(8)
	pOut, pDx, pDW, pDB := run()
	tensor.SetParallelism(prev)

	for name, pair := range map[string][2]*tensor.Mat{
		"output": {sOut, pOut},
		"dx":     {sDx, pDx},
		"dW":     {sDW, pDW},
		"db":     {sDB, pDB},
	} {
		a, b := pair[0], pair[1]
		for i := range a.V {
			if a.V[i] != b.V[i] {
				t.Fatalf("%s differs at %d under parallelism: %v vs %v", name, i, a.V[i], b.V[i])
			}
		}
	}
}
