package nn

import "odin/internal/tensor"

// ws is the package-wide workspace: every layer, loss and training loop
// draws scratch and output matrices from this pool instead of allocating.
// Backward passes hand dead intermediates back (see Network.Backward), so
// a steady-state training step recycles its entire working set.
var ws = tensor.NewPool()

// GetMat returns an all-zero r×c matrix from the shared workspace pool.
func GetMat(r, c int) *tensor.Mat { return ws.Get(r, c) }

// GetMatRaw returns an r×c workspace matrix with unspecified contents, for
// callers that overwrite every element before reading.
func GetMatRaw(r, c int) *tensor.Mat { return ws.GetRaw(r, c) }

// GetMatOf returns an all-zero r×c matrix in the requested dtype.
func GetMatOf(dt tensor.DType, r, c int) *tensor.Mat { return ws.GetOf(dt, r, c) }

// GetMatRawOf returns an r×c matrix in the requested dtype with unspecified
// contents, for callers that overwrite every element before reading.
func GetMatRawOf(dt tensor.DType, r, c int) *tensor.Mat { return ws.GetRawOf(dt, r, c) }

// Recycle hands matrices back to the shared workspace pool. Training loops
// call this on batch matrices, loss gradients and final backward outputs
// once a step is done; a recycled matrix must not be used again.
func Recycle(ms ...*tensor.Mat) { ws.Put(ms...) }
