package nn

import (
	"testing"

	"odin/internal/tensor"
)

// CIFAR-like shapes: 3×32×32 inputs, 16 3×3 filters for the conv stack and
// a 3072→256 projection for the dense stack, batch 16/64 — the shapes the
// DA-GAN bootstrap and detector training loops spend their time in.

func benchConv() (*Conv2D, *tensor.Mat) {
	rng := tensor.NewRNG(1)
	layer := NewConv2D(3, 32, 32, 16, 3, 1, 1, rng)
	x := tensor.New(16, 3*32*32)
	rng.FillNormal(x, 1)
	return layer, x
}

func BenchmarkConv2DForward(b *testing.B) {
	layer, x := benchConv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Recycling the output matches a real training step, where
		// Network.Backward hands every intermediate back to the pool.
		Recycle(layer.Forward(x, true))
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	layer, x := benchConv()
	out := layer.Forward(x, true)
	grad := tensor.New(out.R, out.C)
	tensor.NewRNG(2).FillNormal(grad, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Weight.Grad.Zero()
		layer.Bias.Grad.Zero()
		Recycle(layer.Backward(grad))
	}
}

func benchDense() (*Dense, *tensor.Mat) {
	rng := tensor.NewRNG(3)
	layer := NewDense(3072, 256, rng)
	x := tensor.New(64, 3072)
	rng.FillNormal(x, 1)
	return layer, x
}

func BenchmarkDenseForward(b *testing.B) {
	layer, x := benchDense()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Recycle(layer.Forward(x, true))
	}
}

func BenchmarkDenseBackward(b *testing.B) {
	layer, x := benchDense()
	out := layer.Forward(x, true)
	grad := tensor.New(out.R, out.C)
	tensor.NewRNG(4).FillNormal(grad, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Weight.Grad.Zero()
		layer.Bias.Grad.Zero()
		Recycle(layer.Backward(grad))
	}
}
