package nn

import "fmt"

// NetState is a value snapshot of everything that shapes a network's
// inference behaviour: the float64 master parameter tensors plus the
// non-parameter layer state that Params() does not reach (BatchNorm running
// statistics). Optimizer moments are deliberately not captured — a restored
// network serves inference bit-identically; resumed training restarts its
// optimizer state. All fields are exported so the struct gob-encodes.
type NetState struct {
	Name string
	// Params holds one entry per net.Params() element, in traversal order:
	// the parameter name, its shape, and a copy of the float64 master values.
	Params []ParamState
	// BatchNorms holds, per BatchNorm layer in depth-first layer order, the
	// running mean/variance vectors that accumulate outside Params().
	BatchNorms []BatchNormState
}

// ParamState is one parameter tensor's snapshot.
type ParamState struct {
	Name string
	Rows int
	Cols int
	W    []float64
}

// BatchNormState is the running-statistics snapshot of one BatchNorm layer.
type BatchNormState struct {
	RunMean []float64
	RunVar  []float64
}

// CaptureState snapshots net into a NetState. The copy is deep: mutating the
// network afterwards does not alter the snapshot.
func CaptureState(net *Network) NetState {
	st := NetState{Name: net.Name}
	for _, p := range net.Params() {
		w := make([]float64, len(p.W.V))
		copy(w, p.W.V)
		st.Params = append(st.Params, ParamState{
			Name: p.Name,
			Rows: p.W.R,
			Cols: p.W.C,
			W:    w,
		})
	}
	for _, bn := range collectBatchNorms(net) {
		mean := make([]float64, len(bn.RunMean))
		copy(mean, bn.RunMean)
		vari := make([]float64, len(bn.RunVar))
		copy(vari, bn.RunVar)
		st.BatchNorms = append(st.BatchNorms, BatchNormState{RunMean: mean, RunVar: vari})
	}
	return st
}

// RestoreState loads a snapshot captured by CaptureState into net. The
// network must have been built with the same architecture: parameter count,
// shapes and BatchNorm layout are checked and a descriptive error returned on
// mismatch. Float32 shadows are invalidated so both backends observe the
// restored weights.
func RestoreState(net *Network, st NetState) error {
	params := net.Params()
	if len(params) != len(st.Params) {
		return fmt.Errorf("nn: restore %q: have %d params, snapshot has %d", net.Name, len(params), len(st.Params))
	}
	for i, p := range params {
		ps := st.Params[i]
		if p.W.R != ps.Rows || p.W.C != ps.Cols {
			return fmt.Errorf("nn: restore %q: param %d (%s) is %dx%d, snapshot is %dx%d",
				net.Name, i, p.Name, p.W.R, p.W.C, ps.Rows, ps.Cols)
		}
	}
	bns := collectBatchNorms(net)
	if len(bns) != len(st.BatchNorms) {
		return fmt.Errorf("nn: restore %q: have %d batchnorm layers, snapshot has %d", net.Name, len(bns), len(st.BatchNorms))
	}
	for i, bn := range bns {
		bs := st.BatchNorms[i]
		if len(bn.RunMean) != len(bs.RunMean) || len(bn.RunVar) != len(bs.RunVar) {
			return fmt.Errorf("nn: restore %q: batchnorm %d dim mismatch (%d/%d vs snapshot %d/%d)",
				net.Name, i, len(bn.RunMean), len(bn.RunVar), len(bs.RunMean), len(bs.RunVar))
		}
	}
	// All shapes verified; now mutate.
	for i, p := range params {
		copy(p.W.V, st.Params[i].W)
		p.Invalidate()
	}
	for i, bn := range bns {
		copy(bn.RunMean, st.BatchNorms[i].RunMean)
		copy(bn.RunVar, st.BatchNorms[i].RunVar)
	}
	return nil
}

// collectBatchNorms walks layers depth-first (recursing into nested
// Networks, mirroring Network.Params traversal order) and returns every
// BatchNorm layer.
func collectBatchNorms(net *Network) []*BatchNorm {
	var out []*BatchNorm
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *BatchNorm:
			out = append(out, v)
		case *Network:
			for _, ll := range v.Layers {
				walk(ll)
			}
		}
	}
	for _, l := range net.Layers {
		walk(l)
	}
	return out
}
