// Package nn is a from-scratch reverse-mode neural-network library used as
// the training substrate for every model in the repository: autoencoders,
// adversarial autoencoders, the DA-GAN, the YOLO-style grid detectors and
// the lightweight query filters. It supports dense and convolutional layers,
// batch normalisation, dropout, the standard activation functions, BCE /
// MSE / softmax cross-entropy losses and SGD / Adam optimizers.
//
// Data layout: a batch is a tensor.Mat whose rows are flattened examples.
// Spatial layers (Conv2D, Upsample2D) carry their own (C, H, W) input shape
// and interpret each row as channel-major C×H×W.
package nn

import (
	"fmt"

	"odin/internal/tensor"
)

// Param is one trainable parameter tensor together with its gradient
// accumulator. Optimizers update W in place using Grad.
type Param struct {
	Name string
	W    *tensor.Mat
	Grad *tensor.Mat
}

func newParam(name string, r, c int) *Param {
	return &Param{Name: name, W: tensor.New(r, c), Grad: tensor.New(r, c)}
}

// Layer is a differentiable network stage. Forward consumes a batch and
// produces a batch; Backward consumes the gradient of the loss with respect
// to the layer output and returns the gradient with respect to the layer
// input, accumulating parameter gradients along the way.
type Layer interface {
	Forward(x *tensor.Mat, train bool) *tensor.Mat
	Backward(grad *tensor.Mat) *tensor.Mat
	Params() []*Param
}

// Network is a sequential container of layers. It itself satisfies Layer,
// so networks can be nested.
type Network struct {
	Name   string
	Layers []Layer
}

// NewNetwork builds a sequential network from layers.
func NewNetwork(name string, layers ...Layer) *Network {
	return &Network{Name: name, Layers: layers}
}

// Forward runs the batch through every layer in order.
func (n *Network) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates grad through the layers in reverse order and returns
// the gradient with respect to the network input.
func (n *Network) Backward(grad *tensor.Mat) *tensor.Mat {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns every trainable parameter in the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar weights.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W.V)
	}
	return total
}

// String summarises the network for logs.
func (n *Network) String() string {
	return fmt.Sprintf("%s(%d layers, %d params)", n.Name, len(n.Layers), n.NumParams())
}

// Predict is Forward in inference mode (train=false).
func (n *Network) Predict(x *tensor.Mat) *tensor.Mat { return n.Forward(x, false) }
