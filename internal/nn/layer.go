// Package nn is a from-scratch reverse-mode neural-network library used as
// the training substrate for every model in the repository: autoencoders,
// adversarial autoencoders, the DA-GAN, the YOLO-style grid detectors and
// the lightweight query filters. It supports dense and convolutional layers,
// batch normalisation, dropout, the standard activation functions, BCE /
// MSE / softmax cross-entropy losses and SGD / Adam optimizers.
//
// Data layout: a batch is a tensor.Mat whose rows are flattened examples.
// Spatial layers (Conv2D, Upsample2D) carry their own (C, H, W) input shape
// and interpret each row as channel-major C×H×W.
package nn

import (
	"fmt"
	"sync/atomic"

	"odin/internal/tensor"
)

// Param is one trainable parameter tensor together with its gradient
// accumulator. Optimizers update W in place using Grad.
//
// The master weights and gradients are always float64, whatever compute
// backend the layer runs on: gradients from float32 activations accumulate
// into float64, so tiny updates are never lost to 24-bit rounding. Layers
// running on the float32 backend read weights through W32, a lazily packed
// float32 shadow that anyone mutating W must drop via Invalidate.
type Param struct {
	Name string
	W    *tensor.Mat
	Grad *tensor.Mat

	w32 atomic.Pointer[tensor.Mat]
}

func newParam(name string, r, c int) *Param {
	return &Param{Name: name, W: tensor.New(r, c), Grad: tensor.New(r, c)}
}

// W32 returns the float32 shadow of W, packing it on first use after an
// Invalidate. Concurrent inference goroutines may race to pack; both produce
// identical bytes, so the last store winning is harmless.
func (p *Param) W32() *tensor.Mat {
	if m := p.w32.Load(); m != nil {
		return m
	}
	m := tensor.NewOf(tensor.F32, p.W.R, p.W.C)
	tensor.ConvertInto(m, p.W)
	p.w32.Store(m)
	return m
}

// Invalidate drops the float32 shadow. Every W mutation — optimizer steps,
// weight loading, manual perturbation in tests — must call it, or float32
// forwards keep reading stale weights.
func (p *Param) Invalidate() { p.w32.Store(nil) }

// Layer is a differentiable network stage. Forward consumes a batch and
// produces a batch; Backward consumes the gradient of the loss with respect
// to the layer output and returns the gradient with respect to the layer
// input, accumulating parameter gradients along the way.
//
// Backward must follow a Forward with train=true on the same layer.
// Inference Forwards (train=false) write no layer state at all — they draw
// any scratch from the workspace pool — so any number of goroutines may run
// inference concurrently on a shared network; this is what lets N streams
// share one model set in the sharded pipeline. BatchNorm additionally
// supports an inference-mode backward from running statistics alone.
type Layer interface {
	Forward(x *tensor.Mat, train bool) *tensor.Mat
	Backward(grad *tensor.Mat) *tensor.Mat
	Params() []*Param
}

// Network is a sequential container of layers. It itself satisfies Layer,
// so networks can be nested.
type Network struct {
	Name   string
	Layers []Layer

	// fwdIn/fwdOuts record the most recent training forward pass so
	// Backward can hand each intermediate back to the workspace pool the
	// moment its consumers are done with it.
	fwdIn   *tensor.Mat
	fwdOuts []*tensor.Mat
}

// NewNetwork builds a sequential network from layers.
func NewNetwork(name string, layers ...Layer) *Network {
	return &Network{Name: name, Layers: layers}
}

// inferenceEpilogue returns an in-place transform for activation layers
// that can fuse onto a preceding Dense at inference time, where no backward
// caches are needed; nil when the layer cannot fuse. The transform operates
// on whichever storage the matrix carries, so fusion works identically on
// both backends.
func inferenceEpilogue(l Layer) func(*tensor.Mat) {
	switch a := l.(type) {
	case *ReLU:
		return func(m *tensor.Mat) {
			if m.V32 != nil {
				reluInto(m.V32, m.V32)
			} else {
				reluInto(m.V, m.V)
			}
		}
	case *LeakyReLU:
		alpha := a.Alpha
		return func(m *tensor.Mat) {
			if m.V32 != nil {
				leakyReLUInto(m.V32, m.V32, float32(alpha))
			} else {
				leakyReLUInto(m.V, m.V, alpha)
			}
		}
	case *Sigmoid:
		return func(m *tensor.Mat) {
			if m.V32 != nil {
				sigmoidInto(m.V32, m.V32)
			} else {
				sigmoidInto(m.V, m.V)
			}
		}
	case *Tanh:
		return func(m *tensor.Mat) {
			if m.V32 != nil {
				tanhInto(m.V32, m.V32)
			} else {
				tanhInto(m.V, m.V)
			}
		}
	}
	return nil
}

// Forward runs the batch through every layer in order. A training pass
// records each intermediate so Backward can recycle it; an inference pass
// fuses Dense+activation pairs and recycles each intermediate as soon as
// the next layer has consumed it, since no layer keeps caches when
// train is false.
func (n *Network) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if train {
		n.fwdIn = x
		n.fwdOuts = n.fwdOuts[:0]
		for _, l := range n.Layers {
			x = l.Forward(x, true)
			n.fwdOuts = append(n.fwdOuts, x)
		}
		return x
	}
	cur := x
	for i := 0; i < len(n.Layers); {
		var next *tensor.Mat
		if d, ok := n.Layers[i].(*Dense); ok && i+1 < len(n.Layers) {
			if act := inferenceEpilogue(n.Layers[i+1]); act != nil {
				next = d.forwardFused(cur, act)
				i += 2
			}
		}
		if next == nil {
			next = n.Layers[i].Forward(cur, false)
			i++
		}
		if next != cur && cur != x {
			ws.Put(cur)
		}
		cur = next
	}
	return cur
}

// Backward propagates grad through the layers in reverse order and returns
// the gradient with respect to the network input. Intermediates of the
// recorded forward pass and gradients produced by inner layers are handed
// back to the workspace pool once their last consumer has run; the incoming
// grad and the returned gradient stay owned by the caller.
func (n *Network) Backward(grad *tensor.Mat) *tensor.Mat {
	outs := n.fwdOuts
	if len(outs) != len(n.Layers) {
		outs = nil
	}
	var final *tensor.Mat
	if outs != nil {
		final = outs[len(outs)-1]
	}
	owned := false
	for i := len(n.Layers) - 1; i >= 0; i-- {
		next := n.Layers[i].Backward(grad)
		if next != grad {
			if owned {
				ws.Put(grad)
			}
			owned = true
		}
		grad = next
		if outs != nil && i < len(n.Layers)-1 {
			// The output of layer i was consumed by layer i+1's backward and
			// (for Sigmoid/Tanh) by layer i's own; both are done now. Skip
			// passthrough aliases and anything the caller can still see.
			out := outs[i]
			in := n.fwdIn
			if i > 0 {
				in = outs[i-1]
			}
			if out != in && out != final {
				ws.Put(out)
			}
			outs[i] = nil
		}
	}
	n.fwdOuts = n.fwdOuts[:0]
	n.fwdIn = nil
	return grad
}

// Params returns every trainable parameter in the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar weights.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Len()
	}
	return total
}

// String summarises the network for logs.
func (n *Network) String() string {
	return fmt.Sprintf("%s(%d layers, %d params)", n.Name, len(n.Layers), n.NumParams())
}

// Predict is Forward in inference mode (train=false).
func (n *Network) Predict(x *tensor.Mat) *tensor.Mat { return n.Forward(x, false) }
