package nn

import (
	"math"

	"odin/internal/tensor"
)

// Dense is a fully connected layer computing y = xW + b.
type Dense struct {
	In, Out int
	Weight  *Param
	Bias    *Param

	lastIn *tensor.Mat // cached input for backward
}

// NewDense creates a dense layer with He-uniform initialised weights.
func NewDense(in, out int, rng *tensor.RNG) *Dense {
	d := &Dense{
		In:     in,
		Out:    out,
		Weight: newParam("dense.W", in, out),
		Bias:   newParam("dense.b", 1, out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	rng.FillUniform(d.Weight.W, -bound, bound)
	return d
}

// weights returns the weight and bias matrices in the requested dtype: the
// float64 masters, or their lazily packed float32 shadows.
func (d *Dense) weights(dt tensor.DType) (w, b *tensor.Mat) {
	if dt == tensor.F32 {
		return d.Weight.W32(), d.Bias.W32()
	}
	return d.Weight.W, d.Bias.W
}

// Forward computes xW + b for a batch x (rows are examples), with the bias
// folded into the matmul epilogue. The compute dtype follows the input: a
// float32 batch runs entirely through the float32 backend against shadow
// weights. The backward cache is only written on training passes; inference
// passes touch no layer state at all, so any number of goroutines may run
// inference Forwards concurrently (Backward must follow a Forward with
// train=true).
func (d *Dense) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != d.In {
		panic("nn: dense input width mismatch")
	}
	if train {
		d.lastIn = x
	}
	w, b := d.weights(x.DType())
	out := ws.GetRawOf(x.DType(), x.R, d.Out)
	tensor.MatMulBiasInto(out, x, w, b)
	return out
}

// forwardFused is the inference-only path: xW + b with the following
// activation applied in place while the output is cache-hot. No backward
// caches are recorded and no layer state is touched (re-entrant).
func (d *Dense) forwardFused(x *tensor.Mat, act func(*tensor.Mat)) *tensor.Mat {
	if x.C != d.In {
		panic("nn: dense input width mismatch")
	}
	w, b := d.weights(x.DType())
	out := ws.GetRawOf(x.DType(), x.R, d.Out)
	tensor.MatMulBiasInto(out, x, w, b)
	act(out)
	return out
}

// Backward accumulates dW = xᵀg, db = Σ rows of g and returns dx = gWᵀ.
// The matmuls run in the gradient's dtype; the per-layer results then
// accumulate into the float64 master gradients.
func (d *Dense) Backward(grad *tensor.Mat) *tensor.Mat {
	x := d.lastIn
	dt := grad.DType()
	dW := ws.GetRawOf(dt, d.In, d.Out)
	tensor.MatMulATInto(dW, x, grad)
	d.Weight.Grad.Add(dW)
	ws.Put(dW)
	if grad.V32 != nil {
		for i := 0; i < grad.R; i++ {
			for j, g := range grad.Row32(i) {
				d.Bias.Grad.V[j] += float64(g)
			}
		}
	} else {
		for i := 0; i < grad.R; i++ {
			for j, g := range grad.Row(i) {
				d.Bias.Grad.V[j] += g
			}
		}
	}
	w, _ := d.weights(dt)
	dx := ws.GetRawOf(dt, grad.R, d.In)
	tensor.MatMulBTInto(dx, grad, w)
	return dx
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }
