package nn

import (
	"math"

	"odin/internal/tensor"
)

// Dense is a fully connected layer computing y = xW + b.
type Dense struct {
	In, Out int
	Weight  *Param
	Bias    *Param

	lastIn *tensor.Mat // cached input for backward
}

// NewDense creates a dense layer with He-uniform initialised weights.
func NewDense(in, out int, rng *tensor.RNG) *Dense {
	d := &Dense{
		In:     in,
		Out:    out,
		Weight: newParam("dense.W", in, out),
		Bias:   newParam("dense.b", 1, out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	rng.FillUniform(d.Weight.W, -bound, bound)
	return d
}

// Forward computes xW + b for a batch x (rows are examples), with the bias
// folded into the matmul epilogue. The backward cache is only written on
// training passes; inference passes touch no layer state at all, so any
// number of goroutines may run inference Forwards concurrently (Backward
// must follow a Forward with train=true).
func (d *Dense) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != d.In {
		panic("nn: dense input width mismatch")
	}
	if train {
		d.lastIn = x
	}
	out := ws.GetRaw(x.R, d.Out)
	tensor.MatMulBiasInto(out, x, d.Weight.W, d.Bias.W.V)
	return out
}

// forwardFused is the inference-only path: xW + b with the following
// activation applied in place while the output is cache-hot. No backward
// caches are recorded and no layer state is touched (re-entrant).
func (d *Dense) forwardFused(x *tensor.Mat, act func([]float64)) *tensor.Mat {
	if x.C != d.In {
		panic("nn: dense input width mismatch")
	}
	out := ws.GetRaw(x.R, d.Out)
	tensor.MatMulBiasInto(out, x, d.Weight.W, d.Bias.W.V)
	act(out.V)
	return out
}

// Backward accumulates dW = xᵀg, db = Σ rows of g and returns dx = gWᵀ.
func (d *Dense) Backward(grad *tensor.Mat) *tensor.Mat {
	x := d.lastIn
	dW := ws.GetRaw(d.In, d.Out)
	tensor.MatMulATInto(dW, x, grad)
	d.Weight.Grad.Add(dW)
	ws.Put(dW)
	for i := 0; i < grad.R; i++ {
		row := grad.Row(i)
		for j, g := range row {
			d.Bias.Grad.V[j] += g
		}
	}
	dx := ws.GetRaw(grad.R, d.In)
	tensor.MatMulBTInto(dx, grad, d.Weight.W)
	return dx
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }
