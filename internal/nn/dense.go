package nn

import (
	"math"

	"odin/internal/tensor"
)

// Dense is a fully connected layer computing y = xW + b.
type Dense struct {
	In, Out int
	Weight  *Param
	Bias    *Param

	lastIn *tensor.Mat // cached input for backward
}

// NewDense creates a dense layer with He-uniform initialised weights.
func NewDense(in, out int, rng *tensor.RNG) *Dense {
	d := &Dense{
		In:     in,
		Out:    out,
		Weight: newParam("dense.W", in, out),
		Bias:   newParam("dense.b", 1, out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	rng.FillUniform(d.Weight.W, -bound, bound)
	return d
}

// Forward computes xW + b for a batch x (rows are examples).
func (d *Dense) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != d.In {
		panic("nn: dense input width mismatch")
	}
	d.lastIn = x
	out := tensor.New(x.R, d.Out)
	tensor.MatMulInto(out, x, d.Weight.W)
	for i := 0; i < out.R; i++ {
		row := out.Row(i)
		for j, b := range d.Bias.W.V {
			row[j] += b
		}
	}
	return out
}

// Backward accumulates dW = xᵀg, db = Σ rows of g and returns dx = gWᵀ.
func (d *Dense) Backward(grad *tensor.Mat) *tensor.Mat {
	x := d.lastIn
	dW := tensor.New(d.In, d.Out)
	tensor.MatMulATInto(dW, x, grad)
	d.Weight.Grad.Add(dW)
	for i := 0; i < grad.R; i++ {
		row := grad.Row(i)
		for j, g := range row {
			d.Bias.Grad.V[j] += g
		}
	}
	dx := tensor.New(grad.R, d.In)
	tensor.MatMulBTInto(dx, grad, d.Weight.W)
	return dx
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }
