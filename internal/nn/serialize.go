package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// weightsBlob is the on-wire representation of a network's parameters.
type weightsBlob struct {
	Name   string
	Shapes [][2]int
	Values [][]float64
}

// SaveWeights serialises all parameters of net to w (gob encoding). Only
// weights are stored; the caller must rebuild the same architecture before
// calling LoadWeights.
func SaveWeights(net *Network, w io.Writer) error {
	ps := net.Params()
	blob := weightsBlob{Name: net.Name}
	for _, p := range ps {
		blob.Shapes = append(blob.Shapes, [2]int{p.W.R, p.W.C})
		vals := make([]float64, len(p.W.V))
		copy(vals, p.W.V)
		blob.Values = append(blob.Values, vals)
	}
	return gob.NewEncoder(w).Encode(blob)
}

// LoadWeights restores parameters previously written with SaveWeights into
// net. The architectures must match exactly.
func LoadWeights(net *Network, r io.Reader) error {
	var blob weightsBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return fmt.Errorf("nn: decode weights: %w", err)
	}
	ps := net.Params()
	if len(ps) != len(blob.Values) {
		return fmt.Errorf("nn: weight count mismatch: net has %d tensors, blob has %d", len(ps), len(blob.Values))
	}
	for i, p := range ps {
		sh := blob.Shapes[i]
		if p.W.R != sh[0] || p.W.C != sh[1] {
			return fmt.Errorf("nn: tensor %d shape mismatch: net %dx%d, blob %dx%d", i, p.W.R, p.W.C, sh[0], sh[1])
		}
		copy(p.W.V, blob.Values[i])
		p.Invalidate()
	}
	return nil
}
