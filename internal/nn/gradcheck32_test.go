package nn

import (
	"math"
	"testing"

	"odin/internal/tensor"
)

// Float32-backend gradient checks. The master weights stay float64, so the
// central-difference probes perturb them directly and call Invalidate to
// force the float32 shadow to repack. Step sizes and tolerances are wider
// than the float64 suite: each forward rounds activations to 24 bits, so
// the difference quotient carries ~1e-7/h of rounding noise — h=1e-2 keeps
// that near 1e-5 while the truncation error stays O(h²). The per-layer
// tolerances below are the audit numbers quoted in DESIGN.md §8.
func checkLayerGradient32(t *testing.T, layer Layer, in *tensor.Mat, tol float64) {
	t.Helper()
	if in.DType() != tensor.F32 {
		t.Fatal("checkLayerGradient32 needs a float32 batch")
	}
	probe := layer.Forward(in, true)
	target := tensor.NewOf(tensor.F32, probe.R, probe.C)
	for i := range target.V32 {
		target.V32[i] = 0.3 * float32(i%3)
	}
	lossOf := func(x *tensor.Mat) float64 {
		out := layer.Forward(x, true)
		l, _ := MSE(out, target)
		return l
	}

	// Analytic input gradient.
	out := layer.Forward(in, true)
	_, g := MSE(out, target)
	analytic := layer.Backward(g)

	const h = 1e-2
	for i := range in.V32 {
		orig := in.V32[i]
		xp := orig + float32(h)
		xm := orig - float32(h)
		in.V32[i] = xp
		lp := lossOf(in)
		in.V32[i] = xm
		lm := lossOf(in)
		in.V32[i] = orig
		// The realised step is the float32-rounded one, not h itself.
		numeric := (lp - lm) / (float64(xp) - float64(xm))
		got := float64(analytic.V32[i])
		if math.Abs(numeric-got) > tol*(1+math.Abs(numeric)) {
			t.Fatalf("input grad mismatch at %d: analytic=%g numeric=%g", i, got, numeric)
		}
	}

	// Analytic parameter gradients (float64 masters, float32 compute).
	for _, p := range layer.Params() {
		p.Grad.Zero()
	}
	out = layer.Forward(in, true)
	_, g = MSE(out, target)
	layer.Backward(g)
	for pi, p := range layer.Params() {
		for i := range p.W.V {
			orig := p.W.V[i]
			p.W.V[i] = orig + h
			p.Invalidate()
			lp := lossOf(in)
			p.W.V[i] = orig - h
			p.Invalidate()
			lm := lossOf(in)
			p.W.V[i] = orig
			p.Invalidate()
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-p.Grad.V[i]) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %d grad mismatch at %d: analytic=%g numeric=%g", pi, i, p.Grad.V[i], numeric)
			}
		}
	}
}

func randomBatch32(r, c int, seed uint64) *tensor.Mat {
	rng := tensor.NewRNG(seed)
	m := tensor.NewOf(tensor.F32, r, c)
	rng.FillNormal(m, 1)
	return m
}

func TestDenseGradientF32(t *testing.T) {
	rng := tensor.NewRNG(1)
	checkLayerGradient32(t, NewDense(5, 4, rng), randomBatch32(3, 5, 2), 5e-3)
}

func TestReLUGradientF32(t *testing.T) {
	// Shift inputs away from the kink at 0 by more than the probe step.
	in := randomBatch32(2, 6, 3)
	for i := range in.V32 {
		if math.Abs(float64(in.V32[i])) < 0.1 {
			in.V32[i] = 0.5
		}
	}
	checkLayerGradient32(t, NewReLU(), in, 5e-3)
}

func TestLeakyReLUGradientF32(t *testing.T) {
	in := randomBatch32(2, 6, 4)
	for i := range in.V32 {
		if math.Abs(float64(in.V32[i])) < 0.1 {
			in.V32[i] = -0.5
		}
	}
	checkLayerGradient32(t, NewLeakyReLU(0.2), in, 5e-3)
}

func TestSigmoidGradientF32(t *testing.T) {
	checkLayerGradient32(t, NewSigmoid(), randomBatch32(2, 5, 5), 5e-3)
}

func TestTanhGradientF32(t *testing.T) {
	checkLayerGradient32(t, NewTanh(), randomBatch32(2, 5, 6), 5e-3)
}

func TestConv2DGradientF32(t *testing.T) {
	rng := tensor.NewRNG(7)
	layer := NewConv2D(2, 5, 5, 3, 3, 1, 1, rng)
	checkLayerGradient32(t, layer, randomBatch32(2, 2*5*5, 8), 1e-2)
}

func TestUpsampleGradientF32(t *testing.T) {
	layer := NewUpsample2D(2, 3, 3, 2)
	checkLayerGradient32(t, layer, randomBatch32(2, 18, 11), 5e-3)
}

func TestBatchNormGradientF32(t *testing.T) {
	layer := NewBatchNorm(4)
	checkLayerGradient32(t, layer, randomBatch32(6, 4, 12), 2e-2)
}

func TestSequentialNetworkGradientF32(t *testing.T) {
	rng := tensor.NewRNG(13)
	net := NewNetwork("mlp32",
		NewDense(6, 8, rng),
		NewTanh(),
		NewDense(8, 3, rng),
		NewSigmoid(),
	)
	checkLayerGradient32(t, net, randomBatch32(4, 6, 14), 1e-2)
}

// TestForwardParityAcrossBackends bounds the float32/float64 divergence of
// a full inference pass on the same weights — the cross-backend tolerance
// half of the audit (within-backend determinism is exact and pinned by the
// fingerprint tests).
func TestForwardParityAcrossBackends(t *testing.T) {
	rng := tensor.NewRNG(21)
	net := NewNetwork("parity",
		NewDense(12, 32, rng),
		NewReLU(),
		NewDense(32, 16, rng),
		NewTanh(),
		NewDense(16, 4, rng),
		NewSigmoid(),
	)
	in64 := randomBatch(5, 12, 22)
	in32 := tensor.NewOf(tensor.F32, 5, 12)
	tensor.ConvertInto(in32, in64)

	out64 := net.Predict(in64)
	out32 := net.Predict(in32)
	if out32.DType() != tensor.F32 {
		t.Fatalf("float32 input produced %v output", out32.DType())
	}
	for i := 0; i < out64.R; i++ {
		for j := 0; j < out64.C; j++ {
			d := math.Abs(out64.At(i, j) - out32.At(i, j))
			if d > 1e-5 {
				t.Fatalf("(%d,%d): |f64−f32| = %g exceeds 1e-5", i, j, d)
			}
		}
	}
}

// TestInvalidateRefreshesShadow pins the staleness contract: a float32
// forward after an optimizer step must see the updated weights.
func TestInvalidateRefreshesShadow(t *testing.T) {
	rng := tensor.NewRNG(31)
	d := NewDense(3, 2, rng)
	in := randomBatch32(1, 3, 32)
	before := d.Forward(in, false).Clone()

	// Train one step on the float32 path.
	out := d.Forward(in, true)
	target := tensor.NewOf(tensor.F32, out.R, out.C)
	_, g := MSE(out, target)
	d.Backward(g)
	NewSGD(0.5).Step(d.Params())

	after := d.Forward(in, false)
	same := true
	for i := range after.V32 {
		if after.V32[i] != before.V32[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("float32 forward unchanged after SGD step: stale weight shadow")
	}
}
