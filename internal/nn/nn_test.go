package nn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"odin/internal/tensor"
)

func TestMSEKnownValue(t *testing.T) {
	pred := tensor.FromSlice(1, 2, []float64{1, 3})
	target := tensor.FromSlice(1, 2, []float64{0, 0})
	loss, grad := MSE(pred, target)
	if math.Abs(loss-5) > 1e-12 {
		t.Fatalf("loss=%v, want 5", loss)
	}
	if math.Abs(grad.V[0]-1) > 1e-12 || math.Abs(grad.V[1]-3) > 1e-12 {
		t.Fatalf("grad=%v", grad.V)
	}
}

func TestBCEPerfectPrediction(t *testing.T) {
	pred := tensor.FromSlice(1, 2, []float64{1 - 1e-9, 1e-9})
	target := tensor.FromSlice(1, 2, []float64{1, 0})
	loss, _ := BCE(pred, target)
	if loss > 1e-5 {
		t.Fatalf("perfect prediction should give ~0 loss, got %v", loss)
	}
}

func TestBCEGradientDirection(t *testing.T) {
	pred := tensor.FromSlice(1, 1, []float64{0.3})
	target := tensor.FromSlice(1, 1, []float64{1})
	_, grad := BCE(pred, target)
	if grad.V[0] >= 0 {
		t.Fatalf("gradient should push prediction up, got %v", grad.V[0])
	}
}

func TestBCEWithLogitsMatchesSigmoidBCE(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		logits := tensor.New(2, 3)
		rng.FillNormal(logits, 2)
		for _, target := range []float64{0, 1} {
			l1, _ := BCEWithLogits(logits, target)
			probs := logits.Clone()
			for i, z := range probs.V {
				probs.V[i] = 1 / (1 + math.Exp(-z))
				_ = z
			}
			l2, _ := BCEScalarTarget(probs, target)
			if math.Abs(l1-l2) > 1e-6 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxCE(t *testing.T) {
	logits := tensor.FromSlice(1, 3, []float64{10, 0, 0})
	loss, grad := SoftmaxCE(logits, []int{0})
	if loss > 1e-3 {
		t.Fatalf("confident correct prediction should have low loss: %v", loss)
	}
	loss2, _ := SoftmaxCE(logits, []int{1})
	if loss2 < 5 {
		t.Fatalf("confident wrong prediction should have high loss: %v", loss2)
	}
	// Gradient rows sum to ~0 (softmax property).
	var sum float64
	for _, g := range grad.Row(0) {
		sum += g
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("softmax grad row should sum to 0: %v", sum)
	}
}

func TestSoftmaxNormalised(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		row := rng.NormVec(5)
		p := Softmax(row)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSGDReducesQuadratic(t *testing.T) {
	p := &Param{W: tensor.FromSlice(1, 1, []float64{5}), Grad: tensor.New(1, 1)}
	opt := NewSGD(0.1)
	for i := 0; i < 100; i++ {
		p.Grad.V[0] = 2 * p.W.V[0] // d/dw w²
		opt.Step([]*Param{p})
		p.Grad.Zero()
	}
	if math.Abs(p.W.V[0]) > 1e-6 {
		t.Fatalf("SGD did not converge: %v", p.W.V[0])
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := &Param{W: tensor.FromSlice(1, 1, []float64{5}), Grad: tensor.New(1, 1)}
	opt := &SGD{LR: 0.05, Momentum: 0.9}
	for i := 0; i < 200; i++ {
		p.Grad.V[0] = 2 * p.W.V[0]
		opt.Step([]*Param{p})
		p.Grad.Zero()
	}
	if math.Abs(p.W.V[0]) > 1e-4 {
		t.Fatalf("momentum SGD did not converge: %v", p.W.V[0])
	}
}

func TestAdamConverges(t *testing.T) {
	p := &Param{W: tensor.FromSlice(1, 2, []float64{5, -3}), Grad: tensor.New(1, 2)}
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad.V[0] = 2 * p.W.V[0]
		p.Grad.V[1] = 2 * p.W.V[1]
		opt.Step([]*Param{p})
		p.Grad.Zero()
	}
	if math.Abs(p.W.V[0]) > 1e-3 || math.Abs(p.W.V[1]) > 1e-3 {
		t.Fatalf("Adam did not converge: %v", p.W.V)
	}
}

func TestClipGrads(t *testing.T) {
	p := &Param{W: tensor.New(1, 2), Grad: tensor.FromSlice(1, 2, []float64{3, 4})}
	ClipGrads([]*Param{p}, 1)
	norm := math.Hypot(p.Grad.V[0], p.Grad.V[1])
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("clipped norm=%v, want 1", norm)
	}
	// Already below threshold: unchanged.
	p2 := &Param{W: tensor.New(1, 1), Grad: tensor.FromSlice(1, 1, []float64{0.5})}
	ClipGrads([]*Param{p2}, 1)
	if p2.Grad.V[0] != 0.5 {
		t.Fatal("small gradient should be untouched")
	}
}

// TestMLPLearnsXOR is the classic end-to-end sanity check: a 2-layer MLP
// must drive XOR loss near zero.
func TestMLPLearnsXOR(t *testing.T) {
	rng := tensor.NewRNG(42)
	net := NewNetwork("xor",
		NewDense(2, 8, rng),
		NewTanh(),
		NewDense(8, 1, rng),
		NewSigmoid(),
	)
	x := tensor.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	y := tensor.FromSlice(4, 1, []float64{0, 1, 1, 0})
	opt := NewAdam(0.05)
	var loss float64
	for i := 0; i < 2000; i++ {
		out := net.Forward(x, true)
		var grad *tensor.Mat
		loss, grad = BCE(out, y)
		net.ZeroGrad()
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if loss > 0.05 {
		t.Fatalf("XOR loss did not converge: %v", loss)
	}
	out := net.Predict(x)
	for i, want := range y.V {
		got := out.V[i]
		if (want == 1 && got < 0.5) || (want == 0 && got >= 0.5) {
			t.Fatalf("XOR row %d misclassified: %v", i, got)
		}
	}
}

func TestConvNetLearnsVerticalVsHorizontal(t *testing.T) {
	// 6x6 single-channel images with a vertical or horizontal bar; a tiny
	// conv net must separate them.
	rng := tensor.NewRNG(7)
	makeImage := func(vertical bool, pos int) []float64 {
		img := make([]float64, 36)
		for i := 0; i < 6; i++ {
			if vertical {
				img[i*6+pos] = 1
			} else {
				img[pos*6+i] = 1
			}
		}
		return img
	}
	var rows []float64
	var labels []float64
	for pos := 0; pos < 6; pos++ {
		rows = append(rows, makeImage(true, pos)...)
		labels = append(labels, 1)
		rows = append(rows, makeImage(false, pos)...)
		labels = append(labels, 0)
	}
	x := tensor.FromSlice(12, 36, rows)
	y := tensor.FromSlice(12, 1, labels)

	conv := NewConv2D(1, 6, 6, 4, 3, 1, 1, rng)
	net := NewNetwork("bars",
		conv,
		NewReLU(),
		NewDense(conv.OutSize(), 1, rng),
		NewSigmoid(),
	)
	opt := NewAdam(0.02)
	var loss float64
	for i := 0; i < 300; i++ {
		out := net.Forward(x, true)
		var grad *tensor.Mat
		loss, grad = BCE(out, y)
		net.ZeroGrad()
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if loss > 0.1 {
		t.Fatalf("conv net failed to learn bars: loss=%v", loss)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := tensor.NewRNG(3)
	d := NewDropout(0.5, rng)
	x := tensor.New(1, 1000)
	x.Fill(1)
	// Eval: identity.
	out := d.Forward(x, false)
	for _, v := range out.V {
		if v != 1 {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
	// Train: roughly half dropped, survivors scaled by 2.
	out = d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.V {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("drop rate off: %d/1000 zeros", zeros)
	}
	if zeros+twos != 1000 {
		t.Fatal("dropout mask inconsistent")
	}
}

func TestBatchNormNormalises(t *testing.T) {
	bn := NewBatchNorm(2)
	rng := tensor.NewRNG(4)
	x := tensor.New(64, 2)
	for i := 0; i < x.R; i++ {
		x.Set(i, 0, 5+2*rng.Norm())
		x.Set(i, 1, -3+0.5*rng.Norm())
	}
	out := bn.Forward(x, true)
	for j := 0; j < 2; j++ {
		var sum, sq float64
		for i := 0; i < out.R; i++ {
			v := out.At(i, j)
			sum += v
			sq += v * v
		}
		mean := sum / float64(out.R)
		variance := sq/float64(out.R) - mean*mean
		if math.Abs(mean) > 1e-6 {
			t.Fatalf("bn mean col %d = %v", j, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("bn var col %d = %v", j, variance)
		}
	}
}

func TestNetworkNumParamsAndString(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := NewNetwork("n", NewDense(3, 4, rng), NewReLU(), NewDense(4, 2, rng))
	want := 3*4 + 4 + 4*2 + 2
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams=%d, want %d", got, want)
	}
	if net.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSaveLoadWeightsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(6)
	build := func(r *tensor.RNG) *Network {
		return NewNetwork("rt", NewDense(4, 5, r), NewTanh(), NewDense(5, 2, r))
	}
	src := build(rng)
	var buf bytes.Buffer
	if err := SaveWeights(src, &buf); err != nil {
		t.Fatal(err)
	}
	dst := build(tensor.NewRNG(999))
	if err := LoadWeights(dst, &buf); err != nil {
		t.Fatal(err)
	}
	in := randomBatch(3, 4, 7)
	a := src.Predict(in)
	b := dst.Predict(in)
	for i := range a.V {
		if a.V[i] != b.V[i] {
			t.Fatal("loaded network differs from saved network")
		}
	}
}

func TestLoadWeightsShapeMismatch(t *testing.T) {
	rng := tensor.NewRNG(8)
	src := NewNetwork("a", NewDense(4, 5, rng))
	var buf bytes.Buffer
	if err := SaveWeights(src, &buf); err != nil {
		t.Fatal(err)
	}
	dst := NewNetwork("b", NewDense(4, 6, rng))
	if err := LoadWeights(dst, &buf); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestConvOutputGeometry(t *testing.T) {
	rng := tensor.NewRNG(9)
	c := NewConv2D(3, 27, 48, 16, 3, 2, 1, rng)
	if c.OutH != 14 || c.OutW != 24 {
		t.Fatalf("conv geometry: got %dx%d", c.OutH, c.OutW)
	}
	x := randomBatch(2, 3*27*48, 10)
	out := c.Forward(x, false)
	if out.R != 2 || out.C != 16*14*24 {
		t.Fatalf("conv output shape: %dx%d", out.R, out.C)
	}
}

func TestUpsampleValues(t *testing.T) {
	u := NewUpsample2D(1, 2, 2, 2)
	x := tensor.FromSlice(1, 4, []float64{1, 2, 3, 4})
	out := u.Forward(x, false)
	want := []float64{1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3, 4, 4}
	for i, v := range out.V {
		if v != want[i] {
			t.Fatalf("upsample values: got %v", out.V)
		}
	}
}
