// Package serveapi defines the JSON wire format of the odin-serve HTTP
// front-end, shared by the server (cmd/odin-serve) and its clients
// (cmd/odin-conform, the CI conformance driver).
//
// Determinism note: frames cross the wire as raw float64 pixel/box values.
// encoding/json renders float64 with the shortest representation that
// round-trips exactly, so a frame POSTed to a replica is bit-identical to
// the frame the client generated — which is what lets the cross-process
// conformance tests compare fingerprints bit-for-bit.
package serveapi

import (
	"odin/internal/detect"
	"odin/internal/synth"
)

// Frame is one video frame on the wire.
type Frame struct {
	Index    int       `json:"index"`
	C        int       `json:"c"`
	H        int       `json:"h"`
	W        int       `json:"w"`
	Pix      []float64 `json:"pix"`
	Boxes    []Box     `json:"boxes,omitempty"`
	Time     int       `json:"time"`
	Weather  int       `json:"weather"`
	Location int       `json:"location"`
}

// Box is an object bounding box on the wire.
type Box struct {
	Class int     `json:"class"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	W     float64 `json:"w"`
	H     float64 `json:"h"`
}

// Detection is one detected object on the wire.
type Detection struct {
	Box   Box     `json:"box"`
	Score float64 `json:"score"`
}

// Result is the outcome of processing one frame through a stream session.
// Fingerprint is computed server-side (Result.Fingerprint of the facade),
// so clients can compare replica results bit-for-bit without re-deriving
// the reduction. A Dropped result is an admission-queue shed marker: it
// keeps the frame's sequence slot but carries no fingerprint, detections
// or count.
type Result struct {
	Seq             int         `json:"seq"`
	Fingerprint     string      `json:"fingerprint,omitempty"`
	ClusterID       int         `json:"cluster_id"`
	ModelsUsed      []string    `json:"models_used,omitempty"`
	ModelGen        uint64      `json:"model_gen"`
	RecoveryPending bool        `json:"recovery_pending,omitempty"`
	Drift           bool        `json:"drift,omitempty"`
	SimLatency      float64     `json:"sim_latency"`
	Fidelity        string      `json:"fidelity,omitempty"`
	Count           int         `json:"count,omitempty"`
	Dropped         bool        `json:"dropped,omitempty"`
	Detections      []Detection `json:"detections,omitempty"`
}

// QueryResult is an aggregation query's output on the wire.
type QueryResult struct {
	Count          int           `json:"count"`
	PerFrame       []int         `json:"per_frame,omitempty"`
	Detections     [][]Detection `json:"detections,omitempty"`
	FramesScanned  int           `json:"frames_scanned"`
	FramesFiltered int           `json:"frames_filtered"`
	ModelFrames    int           `json:"model_frames"`
}

// WindowEvent is one standing-query window on the SSE subscription feed.
type WindowEvent struct {
	Window          int    `json:"window"`
	StartSeq        int    `json:"start_seq"`
	EndSeq          int    `json:"end_seq"`
	GenLo           uint64 `json:"gen_lo"`
	GenHi           uint64 `json:"gen_hi"`
	RecoveryPending int    `json:"recovery_pending"`
	Degraded        int    `json:"degraded,omitempty"`
	Count           int    `json:"count"`
	PerFrame        []int  `json:"per_frame,omitempty"`
	Err             string `json:"err,omitempty"`
}

// FromFrame converts an internal frame to its wire form.
func FromFrame(f *synth.Frame) Frame {
	w := Frame{
		Index:    f.Index,
		C:        f.Image.C,
		H:        f.Image.H,
		W:        f.Image.W,
		Pix:      f.Image.Pix,
		Time:     int(f.Domain.Time),
		Weather:  int(f.Domain.Weather),
		Location: int(f.Domain.Location),
	}
	for _, b := range f.Boxes {
		w.Boxes = append(w.Boxes, Box{Class: b.Class, X: b.X, Y: b.Y, W: b.W, H: b.H})
	}
	return w
}

// ToFrame converts a wire frame to its internal form.
func ToFrame(w Frame) *synth.Frame {
	f := &synth.Frame{
		Index: w.Index,
		Image: &synth.Image{C: w.C, H: w.H, W: w.W, Pix: w.Pix},
		Domain: synth.Domain{
			Time:     synth.TimeOfDay(w.Time),
			Weather:  synth.Weather(w.Weather),
			Location: synth.Location(w.Location),
		},
	}
	for _, b := range w.Boxes {
		f.Boxes = append(f.Boxes, synth.Box{Class: b.Class, X: b.X, Y: b.Y, W: b.W, H: b.H})
	}
	return f
}

// FromDetections converts internal detections to wire form.
func FromDetections(ds []detect.Detection) []Detection {
	if ds == nil {
		return nil
	}
	out := make([]Detection, len(ds))
	for i, d := range ds {
		out[i] = Detection{
			Box:   Box{Class: d.Box.Class, X: d.Box.X, Y: d.Box.Y, W: d.Box.W, H: d.Box.H},
			Score: d.Score,
		}
	}
	return out
}

// Request/response bodies of the session endpoints.
type (
	// CreateStreamRequest opens a stream session.
	CreateStreamRequest struct {
		Name     string `json:"name"`
		Workers  int    `json:"workers,omitempty"`
		MaxBatch int    `json:"max_batch,omitempty"`
		// Weight is the session's share of the dispatcher's flush budget
		// (see odin.StreamOptions.Weight). 0 means an equal share.
		Weight int `json:"weight,omitempty"`
	}
	// CreateStreamResponse returns the session handle.
	CreateStreamResponse struct {
		ID string `json:"id"`
	}
	// FramesRequest submits a frame batch to a session.
	FramesRequest struct {
		Frames []Frame `json:"frames"`
	}
	// FramesResponse returns the batch's results in frame order. Dropped
	// counts the batch's admission-queue shed markers (each also appears
	// in Results with its Dropped flag set — the ledger stays exact).
	FramesResponse struct {
		Results []Result `json:"results"`
		Dropped int      `json:"dropped,omitempty"`
	}
	// QueryRequest executes a one-shot SQL query over frames.
	QueryRequest struct {
		SQL    string  `json:"sql"`
		Frames []Frame `json:"frames"`
	}
	// PrepareRequest compiles a SQL query for repeated execution.
	PrepareRequest struct {
		SQL string `json:"sql"`
	}
	// PrepareResponse returns the prepared-query handle and its plan.
	PrepareResponse struct {
		ID      string `json:"id"`
		Explain string `json:"explain"`
	}
	// ExecuteRequest executes a prepared query over frames.
	ExecuteRequest struct {
		Frames []Frame `json:"frames"`
	}
	// GenerateResponse returns server-generated synthetic frames.
	GenerateResponse struct {
		Frames []Frame `json:"frames"`
	}
	// CheckpointResponse reports where a checkpoint was stored.
	CheckpointResponse struct {
		Path string `json:"path"`
	}
	// RestoreRequest restores server state from the checkpoint store.
	RestoreRequest struct {
		// Path selects a checkpoint file; empty means the store's latest.
		Path string `json:"path,omitempty"`
	}
	// StatsResponse is the /v1/stats document.
	StatsResponse struct {
		Frames            int     `json:"frames"`
		Outliers          int     `json:"outliers"`
		DriftEvents       int     `json:"drift_events"`
		SimTime           float64 `json:"sim_time"`
		NumClusters       int     `json:"num_clusters"`
		NumModels         int     `json:"num_models"`
		ModelGen          uint64  `json:"model_gen"`
		PendingRecoveries int     `json:"pending_recoveries"`
		MemoryMB          float64 `json:"memory_mb"`

		// QoS accounting: per-fidelity frame counters and the
		// admission-drop total across every stream of the server.
		FullFrames  int `json:"full_frames"`
		LiteFrames  int `json:"lite_frames,omitempty"`
		CountFrames int `json:"count_frames,omitempty"`
		SkipFrames  int `json:"skip_frames,omitempty"`
		Dropped     int `json:"dropped,omitempty"`

		Trainer  *TrainerStats  `json:"trainer,omitempty"`
		Registry *RegistryStats `json:"registry,omitempty"`
		Dispatch *DispatchStats `json:"dispatch,omitempty"`
	}
	// DispatchStats mirrors odin.DispatchStats on the wire: merged-batch
	// counters plus the weighted-flush queue depth.
	DispatchStats struct {
		Batches        int `json:"batches"`
		Windows        int `json:"windows"`
		Frames         int `json:"frames"`
		MaxMerge       int `json:"max_merge"`
		PartialFlushes int `json:"partial_flushes"`
		QueuedWindows  int `json:"queued_windows"`
		QueuedFrames   int `json:"queued_frames"`
	}
	// TrainerStats mirrors odin.TrainerStats on the wire.
	TrainerStats struct {
		Trained   int `json:"trained"`
		Scratch   int `json:"scratch"`
		Warm      int `json:"warm"`
		Adopted   int `json:"adopted"`
		Coalesced int `json:"coalesced"`
		Dropped   int `json:"dropped"`
		Failed    int `json:"failed"`
	}
	// RegistryStats mirrors odin.RegistryStats on the wire.
	RegistryStats struct {
		Size      int `json:"size"`
		Capacity  int `json:"capacity"`
		Lookups   int `json:"lookups"`
		AdoptHits int `json:"adopt_hits"`
		WarmHits  int `json:"warm_hits"`
		Coalesced int `json:"coalesced"`
		Misses    int `json:"misses"`
		Published int `json:"published"`
		Evicted   int `json:"evicted"`
	}
	// ErrorResponse is the body of every non-2xx response.
	ErrorResponse struct {
		Error string `json:"error"`
	}
	// HealthResponse is the /healthz document.
	HealthResponse struct {
		OK     bool `json:"ok"`
		Booted bool `json:"booted"`
	}
)
