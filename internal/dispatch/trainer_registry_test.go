package dispatch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"odin/internal/cluster"
	"odin/internal/core"
	"odin/internal/detect"
	"odin/internal/registry"
	"odin/internal/synth"
)

// regSig builds a synthetic regime signature centred at x with unit scale,
// so test distances are controlled exactly: entries at the same x adopt,
// |∆x| = 1 lands in the warm band, |∆x| ≥ 100 misses.
func regSig(x float64) *cluster.Signature {
	return &cluster.Signature{
		Key:      "t",
		Centroid: []float64{x, 0, 0, 0},
		Scale:    1,
		Hist:     []float64{0.25, 0.25, 0.25, 0.25},
	}
}

var regTestPol = registry.Policy{AdoptDistance: 0.25, WarmDistance: 0.6}

// seedRegistry publishes a model for the regime at x and returns it.
func seedRegistry(t *testing.T, reg *registry.Registry, x float64, kind detect.Kind, m *core.Model) *core.Model {
	t.Helper()
	res := reg.Resolve(regSig(x), kind, "seed", regTestPol)
	if res.Outcome != registry.OutcomeMiss {
		t.Fatalf("seeding expected miss, got %v", res.Outcome)
	}
	res.Claim.Publish(m, 1)
	return m
}

// liveJob makes clusterID live in the pipe (so FinishJob installs rather
// than rejecting an evicted cluster) and returns a signed job for it.
func liveJob(pipe *core.Odin, gen *synth.SceneGen, kind detect.Kind, clusterID int, x float64) core.TrainJob {
	f := gen.GenerateSubset(synth.DayData)
	pipe.Manager.AddFrame(clusterID, f)
	return core.TrainJob{Kind: kind, ClusterID: clusterID, AtFrame: 1, Sig: regSig(x)}
}

func waitTrainer(t *testing.T, tr *Trainer) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := tr.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestTrainerAdoptsFromRegistry: a job whose regime matches a published
// entry installs the cached model directly — zero training — sharing the
// immutable detector across pipelines.
func TestTrainerAdoptsFromRegistry(t *testing.T) {
	pipe, gen := trainerTestPipe(t)
	tr := NewTrainer(pipe)
	defer tr.Close()
	reg := registry.New(4)
	tr.AttachRegistry(reg, "cam1", regTestPol)
	tr.SetBuild(func(core.TrainJob) (*core.Model, error) {
		t.Error("adopt path must not build")
		return nil, errors.New("unexpected build")
	})

	det := detect.NewGridDetector(detect.LiteConfig(pipe.Cfg.Scene.H, pipe.Cfg.Scene.W))
	published := seedRegistry(t, reg, 0, detect.KindLite,
		&core.Model{Kind: detect.KindLite, Det: det, ClusterID: 1, TrainedOn: 33})

	tr.Enqueue([]core.TrainJob{liveJob(pipe, gen, detect.KindLite, 5, 0.01)})
	waitTrainer(t, tr)

	st := tr.Stats()
	if st.Trained != 1 || st.Adopted != 1 || st.Scratch != 0 || st.Failed != 0 {
		t.Fatalf("stats %+v, want one adopted install", st)
	}
	m := pipe.Manager.Models()[5]
	if m == nil {
		t.Fatal("adopted model not installed")
	}
	if m.Det != published.Det {
		t.Fatal("adopted model must share the published detector")
	}
	if m == published || m.ClusterID != 5 || m.TrainedOn != 33 {
		t.Fatalf("adopted model must be a re-labelled clone: %+v", m)
	}
	if rst := reg.Stats(); rst.AdoptHits != 1 {
		t.Fatalf("registry stats %+v", rst)
	}
}

// TestTrainerWarmStartsFromRegistry: a regime-adjacent entry seeds training
// via the warm-start build path instead of scratch.
func TestTrainerWarmStartsFromRegistry(t *testing.T) {
	pipe, gen := trainerTestPipe(t)
	tr := NewTrainer(pipe)
	defer tr.Close()
	reg := registry.New(4)
	tr.AttachRegistry(reg, "cam1", regTestPol)

	published := seedRegistry(t, reg, 0, detect.KindLite, &core.Model{Kind: detect.KindLite})
	var mu sync.Mutex
	var warmFrom *core.Model
	tr.SetBuildFrom(func(job core.TrainJob, from *core.Model) (*core.Model, error) {
		mu.Lock()
		warmFrom = from
		mu.Unlock()
		return &core.Model{Kind: job.Kind, ClusterID: job.ClusterID}, nil
	})
	tr.SetBuild(func(core.TrainJob) (*core.Model, error) {
		t.Error("warm path must not scratch-build")
		return nil, errors.New("unexpected build")
	})

	// |∆x| = 1 with unit scales → distance 0.375: warm band.
	tr.Enqueue([]core.TrainJob{liveJob(pipe, gen, detect.KindLite, 5, 1)})
	waitTrainer(t, tr)

	if st := tr.Stats(); st.Trained != 1 || st.Warm != 1 {
		t.Fatalf("stats %+v, want one warm install", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if warmFrom != published {
		t.Fatal("warm build did not receive the registry model")
	}
}

// TestTrainerMissPublishesForFleet: a registry miss builds from scratch and
// publishes the result, which a second trainer then adopts.
func TestTrainerMissPublishesForFleet(t *testing.T) {
	pipeA, genA := trainerTestPipe(t)
	pipeB, genB := trainerTestPipe(t)
	trA, trB := NewTrainer(pipeA), NewTrainer(pipeB)
	defer trA.Close()
	defer trB.Close()
	reg := registry.New(4)
	trA.AttachRegistry(reg, "camA", regTestPol)
	trB.AttachRegistry(reg, "camB", regTestPol)

	trA.Enqueue([]core.TrainJob{liveJob(pipeA, genA, detect.KindLite, 5, 0)})
	waitTrainer(t, trA)
	if st := trA.Stats(); st.Scratch != 1 {
		t.Fatalf("A stats %+v, want one scratch install", st)
	}
	if rst := reg.Stats(); rst.Published != 1 || rst.Misses != 1 {
		t.Fatalf("registry stats %+v", rst)
	}

	trB.Enqueue([]core.TrainJob{liveJob(pipeB, genB, detect.KindLite, 7, 0)})
	waitTrainer(t, trB)
	if st := trB.Stats(); st.Adopted != 1 || st.Scratch != 0 {
		t.Fatalf("B stats %+v, want one adopted install", st)
	}
	if pipeB.Manager.Models()[7].Det != pipeA.Manager.Models()[5].Det {
		t.Fatal("fleet adoption must share the built detector")
	}
}

// TestTrainerCoalescesConcurrentBuilds: two trainers hitting the same
// regime concurrently share one build — the second installs the first's
// result without training.
func TestTrainerCoalescesConcurrentBuilds(t *testing.T) {
	pipeA, genA := trainerTestPipe(t)
	pipeB, genB := trainerTestPipe(t)
	trA, trB := NewTrainer(pipeA), NewTrainer(pipeB)
	defer trA.Close()
	defer trB.Close()
	reg := registry.New(4)
	trA.AttachRegistry(reg, "camA", regTestPol)
	trB.AttachRegistry(reg, "camB", regTestPol)

	release := make(chan struct{})
	built := &core.Model{Kind: detect.KindLite, Det: detect.NewGridDetector(detect.LiteConfig(8, 8))}
	trA.SetBuild(func(core.TrainJob) (*core.Model, error) {
		<-release
		return built, nil
	})
	trB.SetBuild(func(core.TrainJob) (*core.Model, error) {
		t.Error("B must coalesce, not build")
		return nil, errors.New("unexpected build")
	})

	// A claims the regime at enqueue; B's enqueue then coalesces onto it.
	trA.Enqueue([]core.TrainJob{liveJob(pipeA, genA, detect.KindLite, 5, 0)})
	trB.Enqueue([]core.TrainJob{liveJob(pipeB, genB, detect.KindLite, 7, 0)})
	if rst := reg.Stats(); rst.Coalesced != 1 {
		t.Fatalf("registry stats %+v, want B coalesced at enqueue", rst)
	}
	close(release)
	waitTrainer(t, trA)
	waitTrainer(t, trB)

	if st := trA.Stats(); st.Scratch != 1 {
		t.Fatalf("A stats %+v", st)
	}
	if st := trB.Stats(); st.Coalesced != 1 || st.Scratch != 0 {
		t.Fatalf("B stats %+v, want one coalesced install", st)
	}
	if pipeB.Manager.Models()[7].Det != built.Det {
		t.Fatal("coalesced install must carry the builder's detector")
	}
}

// TestTrainerCoalesceFallsBackOnAbort: when the builder fails, coalesced
// waiters scratch-build their own model instead of hanging or failing.
func TestTrainerCoalesceFallsBackOnAbort(t *testing.T) {
	pipeA, genA := trainerTestPipe(t)
	pipeB, genB := trainerTestPipe(t)
	trA, trB := NewTrainer(pipeA), NewTrainer(pipeB)
	defer trA.Close()
	defer trB.Close()
	reg := registry.New(4)
	trA.AttachRegistry(reg, "camA", regTestPol)
	trB.AttachRegistry(reg, "camB", regTestPol)

	release := make(chan struct{})
	trA.SetBuild(func(core.TrainJob) (*core.Model, error) {
		<-release
		return nil, errors.New("builder crash")
	})
	trB.SetBuild(func(job core.TrainJob) (*core.Model, error) {
		return &core.Model{Kind: job.Kind, ClusterID: job.ClusterID}, nil
	})

	trA.Enqueue([]core.TrainJob{liveJob(pipeA, genA, detect.KindLite, 5, 0)})
	trB.Enqueue([]core.TrainJob{liveJob(pipeB, genB, detect.KindLite, 7, 0)})
	close(release)
	waitTrainer(t, trA)
	waitTrainer(t, trB)

	if st := trA.Stats(); st.Failed != 1 || st.Trained != 0 {
		t.Fatalf("A stats %+v, want failed build", st)
	}
	if st := trB.Stats(); st.Scratch != 1 || st.Coalesced != 0 || st.Failed != 0 {
		t.Fatalf("B stats %+v, want scratch fallback", st)
	}
	if pipeB.Manager.Models()[7] == nil {
		t.Fatal("fallback build not installed")
	}
}

// TestTrainerCloseDropsCoalescedWaiters: Close while one job waits on a
// coalesced build (and another coalesced job sits queued) drops both,
// rolls their recoveries back and still joins the goroutine.
func TestTrainerCloseDropsCoalescedWaiters(t *testing.T) {
	pipeA, genA := trainerTestPipe(t)
	pipeB, genB := trainerTestPipe(t)
	trA, trB := NewTrainer(pipeA), NewTrainer(pipeB)
	defer trA.Close()
	reg := registry.New(4)
	trA.AttachRegistry(reg, "camA", regTestPol)
	trB.AttachRegistry(reg, "camB", regTestPol)

	release := make(chan struct{})
	trA.SetBuild(func(core.TrainJob) (*core.Model, error) {
		<-release
		return &core.Model{Kind: detect.KindLite}, nil
	})

	trA.Enqueue([]core.TrainJob{liveJob(pipeA, genA, detect.KindLite, 5, 0)})
	// Both of B's jobs coalesce onto A's still-blocked build: the first
	// reaches the ticket wait, the second stays queued behind it.
	trB.Enqueue([]core.TrainJob{liveJob(pipeB, genB, detect.KindLite, 7, 0)})
	trB.Enqueue([]core.TrainJob{liveJob(pipeB, genB, detect.KindLite, 8, 0)})
	if rst := reg.Stats(); rst.Coalesced != 2 {
		t.Fatalf("registry stats %+v, want both B jobs coalesced", rst)
	}

	closed := make(chan struct{})
	go func() { trB.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung on a coalesce wait")
	}

	if st := trB.Stats(); st.Dropped != 2 || st.Trained != 0 {
		t.Fatalf("B stats %+v, want both waiters dropped", st)
	}
	if pipeB.PendingRecoveries() != 0 {
		t.Fatal("dropped coalesced waiters left recoveries pending")
	}
	// A's build is unaffected by B's shutdown.
	close(release)
	waitTrainer(t, trA)
	if st := trA.Stats(); st.Scratch != 1 {
		t.Fatalf("A stats %+v", st)
	}
}

// TestTrainerAdoptSupersededRollback: an adopted lite model arriving after
// a specialized model already landed for the cluster is rejected by the
// same FinishJob downgrade guard as a trained one.
func TestTrainerAdoptSupersededRollback(t *testing.T) {
	pipe, gen := trainerTestPipe(t)
	tr := NewTrainer(pipe)
	defer tr.Close()
	reg := registry.New(4)
	tr.AttachRegistry(reg, "cam1", regTestPol)
	seedRegistry(t, reg, 0, detect.KindLite, &core.Model{Kind: detect.KindLite})

	// Land a specialized model for cluster 5 first.
	spec := liveJob(pipe, gen, detect.KindSpecialized, 5, 100)
	spec.Sig = nil // bypass the registry: plain scratch install
	tr.SetBuild(func(job core.TrainJob) (*core.Model, error) {
		return &core.Model{Kind: job.Kind, ClusterID: job.ClusterID}, nil
	})
	tr.Enqueue([]core.TrainJob{spec})
	waitTrainer(t, tr)
	genBefore := pipe.ModelGen()

	// A late lite adoption for the same cluster must roll back.
	tr.Enqueue([]core.TrainJob{liveJob(pipe, gen, detect.KindLite, 5, 0)})
	waitTrainer(t, tr)

	st := tr.Stats()
	if st.Failed != 1 || st.Adopted != 0 {
		t.Fatalf("stats %+v, want the adoption rejected", st)
	}
	if m := pipe.Manager.Models()[5]; m.Kind != detect.KindSpecialized {
		t.Fatalf("specialized model displaced by adopted lite: %v", m.Kind)
	}
	if pipe.ModelGen() != genBefore {
		t.Fatal("rejected adoption bumped the model generation")
	}
}

// TestTrainerEvictedClusterRejectsAdopted: an adoption for a cluster that
// was evicted while the job queued rolls back like any other late landing.
func TestTrainerEvictedClusterRejectsAdopted(t *testing.T) {
	pipe, gen := trainerTestPipe(t)
	tr := NewTrainer(pipe)
	defer tr.Close()
	reg := registry.New(4)
	tr.AttachRegistry(reg, "cam1", regTestPol)
	seedRegistry(t, reg, 0, detect.KindLite, &core.Model{Kind: detect.KindLite})

	job := liveJob(pipe, gen, detect.KindLite, 5, 0)
	pipe.Manager.DropCluster(5) // evicted before the adoption lands
	tr.Enqueue([]core.TrainJob{job})
	waitTrainer(t, tr)

	st := tr.Stats()
	if st.Failed != 1 || st.Adopted != 0 || st.Trained != 0 {
		t.Fatalf("stats %+v, want the adoption rejected", st)
	}
	if pipe.Manager.NumModels() != 0 {
		t.Fatal("adopted model installed for an evicted cluster")
	}
}
