// Package dispatch is the server-level fleet scheduler: it merges ready
// frame windows from many concurrent camera sessions into shared
// ProcessBatch calls (cross-stream batched detection, the ECCO-style
// sharing lever) and moves drift-triggered specializer training off the
// serving path onto a background trainer (the EdgeMA-style async
// adaptation). See DESIGN.md §7.
package dispatch

import (
	"context"
	"sort"
	"sync"
	"time"

	"odin/internal/core"
	"odin/internal/synth"
)

// Pipeline is the slice of the core pipeline the batcher needs.
type Pipeline interface {
	ProcessBatch(frames []*synth.Frame, workers int) []core.Result
}

// Config tunes the batcher's flush policy.
type Config struct {
	// MaxBatch flushes the assembler as soon as the pending windows hold at
	// least this many frames, bounding the merged batch (a single window
	// larger than MaxBatch still flushes whole). 0 picks 64.
	MaxBatch int
	// MaxLinger bounds how long a submitted window waits to be co-batched
	// with other sessions' windows. It is the batcher's no-starvation
	// guarantee: every submitted window is processed within MaxLinger even
	// if no other session ever submits. 0 picks 2ms.
	MaxLinger time.Duration
	// Workers is the ProcessBatch fan-out for merged batches. 0 picks 1.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxLinger <= 0 {
		c.MaxLinger = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// window is one session's submitted frame window awaiting a flush.
type window struct {
	sessID uint64
	frames []*synth.Frame
	res    chan []core.Result // buffered 1: flushes never block on a consumer
}

// Stats is batcher telemetry.
type Stats struct {
	// Batches is the number of ProcessBatch calls issued.
	Batches int
	// Windows is the number of session windows flushed.
	Windows int
	// Frames is the total frames processed.
	Frames int
	// MaxMerge is the largest number of windows merged into one batch.
	MaxMerge int
}

// Batcher assembles cross-stream batches: sessions submit in-order frame
// windows, and the batcher flushes the assembler into one merged
// ProcessBatch call when (a) the pending frames reach MaxBatch, (b) every
// joined session has a window waiting — the fleet is ready, merging more
// would stall someone — or (c) the oldest pending window has lingered
// MaxLinger.
//
// Determinism: within a merged batch, windows are ordered by session join
// order, so when sessions proceed in lock-step (every session submits a
// window before any receives results — the shape Stream.Run produces when
// all cameras are live), the serialized drift stage observes frames in
// round-robin session order, reproducing the per-stream interleaving
// exactly. See DESIGN.md §7 for the full contract.
type Batcher struct {
	pipe Pipeline
	cfg  Config

	mu            sync.Mutex
	nextID        uint64
	sessions      map[uint64]bool
	pending       []*window
	pendingFrames int
	timerGen      uint64 // invalidates linger timers armed for a flushed assembler
	stats         Stats
}

// NewBatcher creates a batcher over the pipeline.
func NewBatcher(pipe Pipeline, cfg Config) *Batcher {
	return &Batcher{
		pipe:     pipe,
		cfg:      cfg.withDefaults(),
		sessions: make(map[uint64]bool),
	}
}

// Stats returns a snapshot of the batcher telemetry.
func (b *Batcher) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Session is one stream's handle on the batcher. Sessions are not safe for
// concurrent use: a session carries at most one outstanding Submit at a
// time (the natural shape of a Stream.Run loop).
type Session struct {
	b    *Batcher
	id   uint64
	left bool
}

// Join registers a new session. A joined session counts toward the
// fleet-ready flush condition, so an idle joined session delays merged
// flushes by up to MaxLinger; Leave when the session's window source ends.
func (b *Batcher) Join() *Session {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	id := b.nextID
	b.sessions[id] = true
	return &Session{b: b, id: id}
}

// Leave unregisters the session. The remaining sessions may now be
// fleet-ready, so Leave can trigger a flush. Idempotent.
func (s *Session) Leave() {
	b := s.b
	b.mu.Lock()
	if s.left {
		b.mu.Unlock()
		return
	}
	s.left = true
	delete(b.sessions, s.id)
	flush := b.takeReadyLocked()
	b.mu.Unlock()
	b.process(flush)
}

// Submit hands one in-order window of the session's frames to the batcher
// and blocks until the merged batch containing it has been processed,
// returning the window's results in frame order. On ctx cancellation a
// window still in the assembler is withdrawn — its frames are never
// processed — while a window already merged into an in-flight batch is
// processed but its results discarded; either way Submit returns ctx.Err().
func (s *Session) Submit(ctx context.Context, frames []*synth.Frame) ([]core.Result, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b := s.b
	w := &window{sessID: s.id, frames: frames, res: make(chan []core.Result, 1)}
	b.mu.Lock()
	b.pending = append(b.pending, w)
	b.pendingFrames += len(frames)
	flush := b.takeReadyLocked()
	if flush == nil {
		b.armLingerLocked()
	}
	b.mu.Unlock()
	b.process(flush)

	select {
	case rs := <-w.res:
		return rs, nil
	case <-ctx.Done():
		b.withdraw(w)
		// The flush may have raced the cancellation; prefer real results.
		select {
		case rs := <-w.res:
			return rs, nil
		default:
		}
		return nil, ctx.Err()
	}
}

// takeReadyLocked empties the assembler if a flush condition holds and
// returns the windows to process (nil otherwise). Caller holds b.mu.
func (b *Batcher) takeReadyLocked() []*window {
	if b.pendingFrames == 0 {
		return nil
	}
	if b.pendingFrames < b.cfg.MaxBatch && !b.fleetReadyLocked() {
		return nil
	}
	return b.takeAllLocked()
}

// fleetReadyLocked reports whether every joined session has a window in
// the assembler.
func (b *Batcher) fleetReadyLocked() bool {
	if len(b.sessions) == 0 || len(b.pending) < len(b.sessions) {
		return false
	}
	have := make(map[uint64]bool, len(b.pending))
	for _, w := range b.pending {
		have[w.sessID] = true
	}
	for id := range b.sessions {
		if !have[id] {
			return false
		}
	}
	return true
}

// takeAllLocked empties the assembler and invalidates any armed linger
// timer. Caller holds b.mu.
func (b *Batcher) takeAllLocked() []*window {
	ws := b.pending
	b.pending = nil
	b.pendingFrames = 0
	b.timerGen++
	return ws
}

// armLingerLocked starts the no-starvation timer when the assembler goes
// non-empty. Caller holds b.mu.
func (b *Batcher) armLingerLocked() {
	if len(b.pending) != 1 {
		return // already armed for this assembler generation
	}
	gen := b.timerGen
	time.AfterFunc(b.cfg.MaxLinger, func() {
		b.mu.Lock()
		if gen != b.timerGen || len(b.pending) == 0 {
			b.mu.Unlock()
			return
		}
		flush := b.takeAllLocked()
		b.mu.Unlock()
		b.process(flush)
	})
}

// withdraw removes a window from the assembler if it has not been flushed
// yet (cancelled Submit).
func (b *Batcher) withdraw(w *window) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, pw := range b.pending {
		if pw == w {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			b.pendingFrames -= len(w.frames)
			return
		}
	}
}

// process runs one merged batch: windows ordered by session join order (a
// stable, deterministic cross-stream merge), frames concatenated, one
// ProcessBatch call, results split back per window.
func (b *Batcher) process(ws []*window) {
	if len(ws) == 0 {
		return
	}
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].sessID < ws[j].sessID })
	total := 0
	for _, w := range ws {
		total += len(w.frames)
	}
	merged := make([]*synth.Frame, 0, total)
	for _, w := range ws {
		merged = append(merged, w.frames...)
	}
	results := b.pipe.ProcessBatch(merged, b.cfg.Workers)
	off := 0
	for _, w := range ws {
		w.res <- results[off : off+len(w.frames) : off+len(w.frames)]
		off += len(w.frames)
	}
	b.mu.Lock()
	b.stats.Batches++
	b.stats.Windows += len(ws)
	b.stats.Frames += total
	if len(ws) > b.stats.MaxMerge {
		b.stats.MaxMerge = len(ws)
	}
	b.mu.Unlock()
}
