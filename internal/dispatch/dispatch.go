// Package dispatch is the server-level fleet scheduler: it merges ready
// frame windows from many concurrent camera sessions into shared
// ProcessBatch calls (cross-stream batched detection, the ECCO-style
// sharing lever) and moves drift-triggered specializer training off the
// serving path onto a background trainer (the EdgeMA-style async
// adaptation). See DESIGN.md §7.
package dispatch

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"odin/internal/core"
	"odin/internal/obs"
	"odin/internal/qos"
	"odin/internal/synth"
)

// Pipeline is the slice of the core pipeline the batcher needs.
type Pipeline interface {
	ProcessBatch(frames []*synth.Frame, workers int) []core.Result
}

// FidPipeline is the optional fidelity-aware extension: pipelines that
// implement it (core.Odin does) receive the per-frame QoS fidelity
// assignments submitted with SubmitFid. A plain Pipeline silently treats
// every frame as full fidelity.
type FidPipeline interface {
	Pipeline
	ProcessBatchFid(frames []*synth.Frame, workers int, fids []qos.Fidelity) []core.Result
}

// Config tunes the batcher's flush policy.
type Config struct {
	// MaxBatch flushes the assembler as soon as the pending windows hold at
	// least this many frames, bounding the merged batch (a single window
	// larger than MaxBatch still flushes whole). 0 picks 64.
	MaxBatch int
	// MaxLinger bounds how long a submitted window waits to be co-batched
	// with other sessions' windows. It is the batcher's no-starvation
	// guarantee: every submitted window is processed within MaxLinger even
	// if no other session ever submits. 0 picks 2ms.
	MaxLinger time.Duration
	// Workers is the ProcessBatch fan-out for merged batches. 0 picks 1.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxLinger <= 0 {
		c.MaxLinger = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// window is one session's submitted frame window awaiting a flush.
type window struct {
	sessID uint64
	weight int
	frames []*synth.Frame
	fids   []qos.Fidelity     // nil = full fidelity
	res    chan []core.Result // buffered 1: flushes never block on a consumer
	at     time.Time          // submit time; zero unless an observer is attached
}

// Stats is batcher telemetry.
type Stats struct {
	// Batches is the number of ProcessBatch calls issued.
	Batches int
	// Windows is the number of session windows flushed.
	Windows int
	// Frames is the total frames processed.
	Frames int
	// MaxMerge is the largest number of windows merged into one batch.
	MaxMerge int
	// PartialFlushes counts flushes that hit the weighted-round-robin
	// frame budget and left windows in the assembler — each one is a
	// flush where take-all would have let one session's backlog inflate
	// another camera's latency.
	PartialFlushes int
	// QueuedWindows and QueuedFrames snapshot the assembler backlog at
	// the moment Stats was called.
	QueuedWindows int
	QueuedFrames  int
}

// Batcher assembles cross-stream batches: sessions submit in-order frame
// windows, and the batcher flushes the assembler into a merged
// ProcessBatch call when (a) the pending frames reach MaxBatch, (b) every
// joined session has a window waiting — the fleet is ready, merging more
// would stall someone — or (c) the oldest pending window has lingered
// MaxLinger. A flush selects windows by weighted round-robin under a
// MaxBatch frame budget (takeWeightedLocked) instead of taking the whole
// assembler, so one camera's backlog cannot inflate every other camera's
// latency; windows left behind are drained by the processing loop or
// their re-armed linger timer.
//
// Determinism: within a merged batch, windows are ordered by session join
// order, so when sessions proceed in lock-step (every session submits a
// window before any receives results — the shape Stream.Run produces when
// all cameras are live), the serialized drift stage observes frames in
// round-robin session order, reproducing the per-stream interleaving
// exactly; and when the pending windows fit the budget the weighted
// selection IS take-all, so at/under capacity the merge is unchanged.
// See DESIGN.md §7 and §11 for the full contract.
type Batcher struct {
	pipe    Pipeline
	fidPipe FidPipeline // non-nil when pipe understands fidelities

	cfg Config

	mu            sync.Mutex
	nextID        uint64
	sessions      map[uint64]bool
	pending       []*window
	pendingFrames int
	timerGen      uint64 // invalidates linger timers armed for a flushed assembler
	lingerArmed   bool   // a live timer exists for the current timerGen
	rrNext        uint64 // session id the weighted round-robin resumes at
	stats         Stats

	// obsv is the optional observability hook: merge widths and
	// window-assembly waits. Strictly observational.
	obsv atomic.Pointer[obs.Observer]
}

// NewBatcher creates a batcher over the pipeline.
func NewBatcher(pipe Pipeline, cfg Config) *Batcher {
	fp, _ := pipe.(FidPipeline)
	return &Batcher{
		pipe:     pipe,
		fidPipe:  fp,
		cfg:      cfg.withDefaults(),
		sessions: make(map[uint64]bool),
	}
}

// SetObserver installs (or, with nil, removes) the observability hook.
// Install before serving so every window's assembly wait is stamped.
func (b *Batcher) SetObserver(ob *obs.Observer) {
	b.obsv.Store(ob)
}

// Stats returns a snapshot of the batcher telemetry.
func (b *Batcher) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.QueuedWindows = len(b.pending)
	st.QueuedFrames = b.pendingFrames
	return st
}

// Session is one stream's handle on the batcher. Sessions are not safe for
// concurrent use: a session carries at most one outstanding Submit at a
// time (the natural shape of a Stream.Run loop).
type Session struct {
	b      *Batcher
	id     uint64
	weight int
	left   bool
}

// Join registers a new session with weight 1. A joined session counts
// toward the fleet-ready flush condition, so an idle joined session delays
// merged flushes by up to MaxLinger; Leave when the session's window
// source ends.
func (b *Batcher) Join() *Session {
	return b.JoinWeighted(1)
}

// JoinWeighted registers a session with a flush weight: when a flush hits
// the frame budget, a session's windows are charged budget at 1/weight, so
// a weight-2 camera fits twice the frames of a weight-1 camera into one
// merged batch before the round-robin cuts it off. Weights below 1 clamp
// to 1.
func (b *Batcher) JoinWeighted(weight int) *Session {
	if weight < 1 {
		weight = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	id := b.nextID
	b.sessions[id] = true
	return &Session{b: b, id: id, weight: weight}
}

// Leave unregisters the session. The remaining sessions may now be
// fleet-ready, so Leave can trigger a flush. Idempotent.
func (s *Session) Leave() {
	b := s.b
	b.mu.Lock()
	if s.left {
		b.mu.Unlock()
		return
	}
	s.left = true
	delete(b.sessions, s.id)
	flush := b.takeReadyLocked()
	b.mu.Unlock()
	b.process(flush)
}

// Submit hands one in-order window of the session's frames to the batcher
// and blocks until the merged batch containing it has been processed,
// returning the window's results in frame order. On ctx cancellation a
// window still in the assembler is withdrawn — its frames are never
// processed — while a window already merged into an in-flight batch is
// processed but its results discarded; either way Submit returns ctx.Err().
func (s *Session) Submit(ctx context.Context, frames []*synth.Frame) ([]core.Result, error) {
	return s.SubmitFid(ctx, frames, nil)
}

// SubmitFid is Submit with a per-frame fidelity assignment from the QoS
// layer (fids[i] governs frames[i]; nil means full fidelity). Fidelities
// ride along into the merged batch; a pipeline that does not implement
// FidPipeline processes every frame at full fidelity.
func (s *Session) SubmitFid(ctx context.Context, frames []*synth.Frame, fids []qos.Fidelity) ([]core.Result, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b := s.b
	w := &window{sessID: s.id, weight: s.weight, frames: frames, fids: fids, res: make(chan []core.Result, 1)}
	if b.obsv.Load() != nil {
		w.at = time.Now()
	}
	b.mu.Lock()
	b.pending = append(b.pending, w)
	b.pendingFrames += len(frames)
	flush := b.takeReadyLocked()
	if flush == nil {
		b.armLingerLocked()
	}
	b.mu.Unlock()
	b.process(flush)

	select {
	case rs := <-w.res:
		return rs, nil
	case <-ctx.Done():
		b.withdraw(w)
		// The flush may have raced the cancellation; prefer real results.
		select {
		case rs := <-w.res:
			return rs, nil
		default:
		}
		return nil, ctx.Err()
	}
}

// takeReadyLocked selects a flush if a flush condition holds — pending
// frames at the MaxBatch budget, or every joined session has a window
// waiting — and returns the windows to process (nil otherwise). Caller
// holds b.mu.
func (b *Batcher) takeReadyLocked() []*window {
	if b.pendingFrames == 0 {
		return nil
	}
	if b.pendingFrames < b.cfg.MaxBatch && !b.fleetReadyLocked() {
		return nil
	}
	return b.takeWeightedLocked()
}

// fleetReadyLocked reports whether every joined session has a window in
// the assembler.
func (b *Batcher) fleetReadyLocked() bool {
	if len(b.sessions) == 0 || len(b.pending) < len(b.sessions) {
		return false
	}
	have := make(map[uint64]bool, len(b.pending))
	for _, w := range b.pending {
		have[w.sessID] = true
	}
	for id := range b.sessions {
		if !have[id] {
			return false
		}
	}
	return true
}

// takeWeightedLocked selects the next merged batch by weighted round-robin
// over the sessions with pending windows, bounded by the MaxBatch frame
// budget. Sessions are visited in id (join) order starting at the rrNext
// cursor; each visit takes the session's oldest window, charged against
// the budget at len(frames)/weight. When the budget runs out mid-rotation
// the cursor parks on the session that was cut off, so it is served first
// next flush — that rotation is what bounds a camera's wait to one budget
// cycle instead of one take-all backlog. At least one window is always
// taken (a single window larger than MaxBatch still flushes whole), and
// when everything pending fits the budget the selection equals take-all —
// which is why lock-step fleets see the exact pre-QoS merge. Leftover
// windows stay pending with a fresh linger timer. Caller holds b.mu.
func (b *Batcher) takeWeightedLocked() []*window {
	type queue struct {
		id     uint64
		weight int
		wins   []*window
	}
	byID := make(map[uint64]*queue)
	var order []*queue
	for _, w := range b.pending {
		q := byID[w.sessID]
		if q == nil {
			q = &queue{id: w.sessID, weight: w.weight}
			byID[w.sessID] = q
			order = append(order, q)
		}
		q.wins = append(q.wins, w)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].id < order[j].id })
	start := 0
	for i, q := range order {
		if q.id >= b.rrNext {
			start = i
			break
		}
	}

	budget := b.cfg.MaxBatch
	spent := 0
	sel := make(map[*window]bool)
	var selected []*window
	cut := false
	for !cut {
		took := false
		for k := 0; k < len(order); k++ {
			q := order[(start+k)%len(order)]
			if len(q.wins) == 0 {
				continue
			}
			w := q.wins[0]
			cost := (len(w.frames) + q.weight - 1) / q.weight
			if spent+cost > budget && len(selected) > 0 {
				b.rrNext = q.id
				cut = true
				break
			}
			q.wins = q.wins[1:]
			sel[w] = true
			selected = append(selected, w)
			spent += cost
			took = true
		}
		if !took {
			break
		}
	}

	remaining := b.pending[:0]
	remFrames := 0
	for _, w := range b.pending {
		if !sel[w] {
			remaining = append(remaining, w)
			remFrames += len(w.frames)
		}
	}
	for i := len(remaining); i < len(b.pending); i++ {
		b.pending[i] = nil
	}
	b.pending = remaining
	b.pendingFrames = remFrames
	b.timerGen++
	b.lingerArmed = false
	if len(b.pending) > 0 {
		b.stats.PartialFlushes++
		b.armLingerLocked()
	}
	return selected
}

// armLingerLocked starts the no-starvation timer for the current assembler
// generation if none is live. Caller holds b.mu.
func (b *Batcher) armLingerLocked() {
	if b.lingerArmed || len(b.pending) == 0 {
		return
	}
	b.lingerArmed = true
	gen := b.timerGen
	time.AfterFunc(b.cfg.MaxLinger, func() {
		b.mu.Lock()
		if gen != b.timerGen {
			b.mu.Unlock()
			return
		}
		b.lingerArmed = false
		if len(b.pending) == 0 {
			b.mu.Unlock()
			return
		}
		flush := b.takeWeightedLocked()
		b.mu.Unlock()
		b.process(flush)
	})
}

// withdraw removes a window from the assembler if it has not been flushed
// yet (cancelled Submit).
func (b *Batcher) withdraw(w *window) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, pw := range b.pending {
		if pw == w {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			b.pendingFrames -= len(w.frames)
			return
		}
	}
}

// process runs the selected batch, then keeps draining: a partial
// (budget-cut) flush can leave the assembler over the flush threshold, and
// nothing else is guaranteed to trigger promptly — blocked Submits wait on
// these very results — so the processing goroutine re-checks until the
// backlog is below budget again (leftovers under the threshold flush via
// their linger timer).
func (b *Batcher) process(ws []*window) {
	for len(ws) > 0 {
		b.runBatch(ws)
		b.mu.Lock()
		ws = b.takeReadyLocked()
		b.mu.Unlock()
	}
}

// runBatch runs one merged batch: windows ordered by session join order (a
// stable, deterministic cross-stream merge), frames concatenated, one
// ProcessBatch call, results split back per window. Windows carrying QoS
// fidelities route through the fidelity-aware pipeline when available.
func (b *Batcher) runBatch(ws []*window) {
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].sessID < ws[j].sessID })
	total := 0
	degraded := false
	for _, w := range ws {
		total += len(w.frames)
		degraded = degraded || w.fids != nil
	}
	if ob := b.obsv.Load(); ob != nil {
		ob.MergeWindows(len(ws))
		for _, w := range ws {
			if !w.at.IsZero() {
				ob.StageDur(obs.StageAssembly, time.Since(w.at), len(w.frames))
			}
		}
	}
	merged := make([]*synth.Frame, 0, total)
	for _, w := range ws {
		merged = append(merged, w.frames...)
	}
	var results []core.Result
	if degraded && b.fidPipe != nil {
		fids := make([]qos.Fidelity, 0, total)
		for _, w := range ws {
			if w.fids != nil {
				fids = append(fids, w.fids...)
			} else {
				fids = append(fids, make([]qos.Fidelity, len(w.frames))...)
			}
		}
		results = b.fidPipe.ProcessBatchFid(merged, b.cfg.Workers, fids)
	} else {
		results = b.pipe.ProcessBatch(merged, b.cfg.Workers)
	}
	off := 0
	for _, w := range ws {
		w.res <- results[off : off+len(w.frames) : off+len(w.frames)]
		off += len(w.frames)
	}
	b.mu.Lock()
	b.stats.Batches++
	b.stats.Windows += len(ws)
	b.stats.Frames += total
	if len(ws) > b.stats.MaxMerge {
		b.stats.MaxMerge = len(ws)
	}
	b.mu.Unlock()
}
