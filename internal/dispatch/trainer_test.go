package dispatch

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"odin/internal/cluster"
	"odin/internal/core"
	"odin/internal/detect"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// trainerStatsProjector mirrors core's test stand-in for the DA-GAN: cheap
// appearance statistics that separate the synthetic domains.
type trainerStatsProjector struct{}

func (trainerStatsProjector) LatentDim() int { return 8 }

func (trainerStatsProjector) Project(x []float64) []float64 {
	n := len(x)
	third := n / 3
	z := make([]float64, 8)
	z[0] = tensor.Mean(x) * 10
	z[1] = math.Sqrt(tensor.Variance(x)) * 10
	for c := 0; c < 3; c++ {
		z[2+c] = tensor.Mean(x[c*third:(c+1)*third]) * 10
	}
	z[5] = tensor.Mean(x[:n/2]) * 10
	z[6] = tensor.Mean(x[n/2:]) * 10
	z[7] = (z[5] - z[6]) * 2
	return z
}

// trainerTestPipe builds a small async pipeline that drifts quickly.
func trainerTestPipe(t *testing.T) (*core.Odin, *synth.SceneGen) {
	t.Helper()
	scene := synth.DefaultSceneConfig()
	gen := synth.NewSceneGen(6, scene)
	base := detect.NewGridDetector(detect.YOLOConfig(scene.H, scene.W))
	base.Fit(detect.SamplesFromFrames(gen.Dataset(synth.FullData, 60)), 4, 16)
	cfg := core.DefaultConfig(scene)
	ccfg := cluster.DefaultConfig()
	ccfg.MinPoints = 40
	ccfg.StabilitySteps = 10
	ccfg.TempWindow = 80
	cfg.Cluster = ccfg
	cfg.Spec.LiteEpochs = 2
	cfg.Spec.SpecEpochs = 2
	cfg.Spec.LabelDelay = 10_000
	cfg.Spec.MaxTrainFrames = 120
	cfg.AsyncTrain = true
	return core.New(cfg, trainerStatsProjector{}, base), gen
}

// driftOnce processes frames until the first drift event.
func driftOnce(t *testing.T, o *core.Odin, gen *synth.SceneGen) {
	t.Helper()
	for i := 0; i < 400; i++ {
		if r := o.Process(gen.GenerateSubset(synth.DayData)); r.Drift != nil {
			return
		}
	}
	t.Fatal("no drift within 400 frames")
}

// TestTrainerLandsRecovery: a drift-scheduled job trains on the background
// goroutine and swaps in; Wait observes the swap.
func TestTrainerLandsRecovery(t *testing.T) {
	pipe, gen := trainerTestPipe(t)
	tr := NewTrainer(pipe)
	defer tr.Close()

	driftOnce(t, pipe, gen)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := tr.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if pipe.Manager.NumModels() != 1 {
		t.Fatalf("models resident %d after recovery", pipe.Manager.NumModels())
	}
	if pipe.PendingRecoveries() != 0 {
		t.Fatal("recovery still pending after Wait")
	}
	if st := tr.Stats(); st.Trained != 1 || st.Failed != 0 {
		t.Fatalf("trainer stats %+v", st)
	}
	if pipe.ModelGen() != 1 {
		t.Fatalf("model generation %d", pipe.ModelGen())
	}
}

// TestTrainerFailureRollsBack: a failing build leaves the prior model
// serving and counts as Failed — the satellite's rollback contract.
func TestTrainerFailureRollsBack(t *testing.T) {
	pipe, gen := trainerTestPipe(t)
	tr := NewTrainer(pipe)
	defer tr.Close()
	boom := errors.New("synthetic trainer crash")
	tr.SetBuild(func(core.TrainJob) (*core.Model, error) { return nil, boom })

	driftOnce(t, pipe, gen)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := tr.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if pipe.Manager.NumModels() != 0 {
		t.Fatal("failed build must not install a model")
	}
	if st := tr.Stats(); st.Failed != 1 || st.Trained != 0 {
		t.Fatalf("trainer stats %+v", st)
	}
	// The pipeline keeps serving on the previous-best model (the baseline).
	r := pipe.Process(gen.GenerateSubset(synth.DayData))
	if len(r.ModelsUsed) != 1 || r.ModelsUsed[0] != "YOLO" {
		t.Fatalf("rollback should keep the baseline serving, got %v", r.ModelsUsed)
	}
	if r.ModelGen != 0 {
		t.Fatalf("generation bumped by a failed job: %d", r.ModelGen)
	}
}

// TestTrainerCloseDropsQueue: Close with queued jobs drops them, rolls
// their recoveries back, and still joins the goroutine mid-build.
func TestTrainerCloseDropsQueue(t *testing.T) {
	pipe, _ := trainerTestPipe(t)
	tr := NewTrainer(pipe)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	tr.SetBuild(func(core.TrainJob) (*core.Model, error) {
		once.Do(func() { close(started) })
		<-release
		return nil, errors.New("aborted")
	})
	job := core.TrainJob{Kind: detect.KindLite, ClusterID: 999}
	tr.Enqueue([]core.TrainJob{job})
	<-started // first job is mid-build
	tr.Enqueue([]core.TrainJob{{Kind: detect.KindSpecialized, ClusterID: 998}})

	done := make(chan struct{})
	go func() { tr.Close(); close(done) }()
	// Let Close mark the trainer closed (dropping the queued job) before
	// releasing the in-flight build.
	for {
		tr.mu.Lock()
		closed := tr.closed
		tr.mu.Unlock()
		if closed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not join the trainer goroutine")
	}
	st := tr.Stats()
	if st.Dropped != 1 {
		t.Fatalf("dropped %d queued jobs, want 1", st.Dropped)
	}
	// Jobs enqueued after Close are dropped immediately, not leaked.
	tr.Enqueue([]core.TrainJob{{Kind: detect.KindLite, ClusterID: 997}})
	if st := tr.Stats(); st.Dropped != 2 {
		t.Fatalf("post-close enqueue not dropped: %+v", st)
	}
	if pipe.PendingRecoveries() != 0 {
		t.Fatal("dropped jobs left recoveries pending")
	}
}
