package dispatch

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"odin/internal/core"
	"odin/internal/qos"
	"odin/internal/synth"
)

// slowPipe delays every batch so tests can arrange concurrent events
// while a flush is in flight.
type slowPipe struct {
	*fakePipe
	delay time.Duration
}

func (s *slowPipe) ProcessBatch(frames []*synth.Frame, workers int) []core.Result {
	time.Sleep(s.delay)
	return s.fakePipe.ProcessBatch(frames, workers)
}

// fidPipe records the fidelity slice handed to the merged batch.
type fidPipe struct {
	*fakePipe
	fidCalls [][]qos.Fidelity
}

func (f *fidPipe) ProcessBatchFid(frames []*synth.Frame, workers int, fids []qos.Fidelity) []core.Result {
	f.mu.Lock()
	f.fidCalls = append(f.fidCalls, append([]qos.Fidelity(nil), fids...))
	f.mu.Unlock()
	return f.fakePipe.ProcessBatch(frames, workers)
}

// TestWeightedFlushSelection pins the weighted-round-robin cut rule
// white-box: with equal weights the budget admits one six-frame window per
// flush, the cursor parks on the session that was cut, and the next flush
// resumes there.
func TestWeightedFlushSelection(t *testing.T) {
	fp := newFakePipe()
	b := NewBatcher(fp, Config{MaxBatch: 8, MaxLinger: time.Minute})
	s1, s2 := b.Join(), b.Join()

	mk := func(s *Session, n int) *window {
		return &window{sessID: s.id, weight: s.weight, frames: fp.frames(n), res: make(chan []core.Result, 1)}
	}
	w1, w2 := mk(s1, 6), mk(s2, 6)
	b.mu.Lock()
	b.pending = []*window{w1, w2}
	b.pendingFrames = 12
	sel := b.takeWeightedLocked()
	b.mu.Unlock()
	if len(sel) != 1 || sel[0] != w1 {
		t.Fatalf("first flush selected %d windows, want just session 1's", len(sel))
	}
	if b.rrNext != s2.id {
		t.Fatalf("cursor at %d, want session 2 (%d)", b.rrNext, s2.id)
	}
	if st := b.Stats(); st.PartialFlushes != 1 || st.QueuedWindows != 1 || st.QueuedFrames != 6 {
		t.Fatalf("stats after partial flush: %+v", st)
	}

	// Second flush resumes at the cut session even though session 1 has a
	// fresh window queued ahead of it.
	w1b := mk(s1, 6)
	b.mu.Lock()
	b.pending = append(b.pending, w1b)
	b.pendingFrames += 6
	sel = b.takeWeightedLocked()
	b.mu.Unlock()
	if len(sel) != 1 || sel[0] != w2 {
		t.Fatalf("rotation broken: second flush did not resume at the cut session")
	}
}

// TestWeightedFlushWeightShare: a weight-2 session's frames are charged at
// half cost, so its 8-frame window and a weight-1 session's 4-frame window
// fit one 8-budget flush together — with equal weights the same pair is
// split across two flushes.
func TestWeightedFlushWeightShare(t *testing.T) {
	fp := newFakePipe()
	b := NewBatcher(fp, Config{MaxBatch: 8, MaxLinger: time.Minute})
	heavy, light := b.JoinWeighted(2), b.Join()

	mk := func(s *Session, n int) *window {
		return &window{sessID: s.id, weight: s.weight, frames: fp.frames(n), res: make(chan []core.Result, 1)}
	}
	w1, w2 := mk(heavy, 8), mk(light, 4)
	b.mu.Lock()
	b.pending = []*window{w1, w2}
	b.pendingFrames = 12
	sel := b.takeWeightedLocked()
	b.mu.Unlock()
	if len(sel) != 2 {
		t.Fatalf("weighted selection took %d windows, want both (8/2 + 4/1 = 8 ≤ budget)", len(sel))
	}
	if st := b.Stats(); st.PartialFlushes != 0 {
		t.Fatalf("unexpected partial flush: %+v", st)
	}
}

// TestWeightedFlushBoundsBatches: three sessions submitting six-frame
// windows against an eight-frame budget never see their windows merged
// past the budget — the per-camera latency bound — and every Submit still
// gets exactly its own results.
func TestWeightedFlushBoundsBatches(t *testing.T) {
	fp := newFakePipe()
	b := NewBatcher(fp, Config{MaxBatch: 8, MaxLinger: 10 * time.Millisecond})
	const sessions = 3
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		sess := b.Join()
		frames := fp.frames(6)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sess.Leave()
			rs, err := sess.Submit(context.Background(), frames)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			checkResults(t, fp, frames, rs)
		}()
	}
	wg.Wait()
	fp.mu.Lock()
	defer fp.mu.Unlock()
	for i, batch := range fp.batches {
		if len(batch) > 8 {
			t.Fatalf("batch %d merged %d frames past the 8-frame budget", i, len(batch))
		}
	}
}

// TestSubmitCancelRacesLingerFlush races a Submit cancellation against the
// linger timer's flush, repeatedly: whichever wins, Submit must return
// either its own results or ctx.Err(), never hang, misroute, or trip the
// race detector.
func TestSubmitCancelRacesLingerFlush(t *testing.T) {
	fp := newFakePipe()
	b := NewBatcher(fp, Config{MaxBatch: 1 << 20, MaxLinger: time.Millisecond})
	sess := b.Join()
	b.Join() // idle second session keeps fleet-ready off — only the timer flushes
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		frames := fp.frames(2)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			rs, err := sess.Submit(ctx, frames)
			switch {
			case err == nil:
				checkResults(t, fp, frames, rs)
			case err == context.Canceled:
			default:
				t.Errorf("iteration %d: %v", i, err)
			}
		}()
		time.Sleep(time.Duration(rng.Intn(2500)) * time.Microsecond)
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: Submit hung after cancel/linger race", i)
		}
	}
}

// TestLeaveDuringInFlightWeightedFlush: a session leaves while a weighted
// flush is in flight and another window waits in the assembler. The leave
// must complete the fleet-ready condition for the queued window without
// disturbing the in-flight batch (run under -race in CI).
func TestLeaveDuringInFlightWeightedFlush(t *testing.T) {
	fp := newFakePipe()
	sp := &slowPipe{fakePipe: fp, delay: 30 * time.Millisecond}
	b := NewBatcher(sp, Config{MaxBatch: 4, MaxLinger: time.Minute})
	s1, s2, idle := b.Join(), b.Join(), b.Join()

	f1 := fp.frames(6) // over budget: flushes immediately, slowly
	r1 := make(chan []core.Result, 1)
	go func() {
		rs, err := s1.Submit(context.Background(), f1)
		if err != nil {
			t.Errorf("s1: %v", err)
		}
		r1 <- rs
	}()
	// Give the oversized window time to start its (slow) flush.
	time.Sleep(10 * time.Millisecond)
	if fp.batchCount() != 0 {
		t.Fatal("setup: first flush already completed; nothing is in flight")
	}
	f2 := fp.frames(2)
	r2 := make(chan []core.Result, 1)
	go func() {
		rs, err := s2.Submit(context.Background(), f2)
		if err != nil {
			t.Errorf("s2: %v", err)
		}
		r2 <- rs
	}()
	// Leave while the weighted flush is in flight: the departure must not
	// disturb the in-flight batch or the queued window.
	time.Sleep(5 * time.Millisecond)
	idle.Leave()

	select {
	case rs := <-r1:
		checkResults(t, fp, f1, rs)
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight flush never completed after mid-flight Leave")
	}
	// With s1 gone the fleet is just s2, so its queued window becomes
	// fleet-ready through this Leave.
	s1.Leave()
	select {
	case rs := <-r2:
		checkResults(t, fp, f2, rs)
	case <-time.After(10 * time.Second):
		t.Fatal("queued window never flushed after the fleet drained")
	}
	s2.Leave()
}

// TestSubmitFidRoutesFidelities: windows submitted with fidelities reach a
// fidelity-aware pipeline as one merged slice in join order, padded with
// Full for plain windows.
func TestSubmitFidRoutesFidelities(t *testing.T) {
	fp := &fidPipe{fakePipe: newFakePipe()}
	b := NewBatcher(fp, Config{MaxBatch: 1 << 20, MaxLinger: time.Minute})
	s1, s2 := b.Join(), b.Join()
	f1, f2 := fp.frames(2), fp.frames(3)
	fids1 := []qos.Fidelity{qos.Lite, qos.Skip}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rs, err := s1.SubmitFid(context.Background(), f1, fids1)
		if err != nil {
			t.Errorf("s1: %v", err)
			return
		}
		checkResults(t, fp.fakePipe, f1, rs)
	}()
	go func() {
		defer wg.Done()
		rs, err := s2.Submit(context.Background(), f2)
		if err != nil {
			t.Errorf("s2: %v", err)
			return
		}
		checkResults(t, fp.fakePipe, f2, rs)
	}()
	wg.Wait()

	fp.mu.Lock()
	defer fp.mu.Unlock()
	if len(fp.fidCalls) != 1 {
		t.Fatalf("fidelity-aware path saw %d calls, want 1 merged batch", len(fp.fidCalls))
	}
	got := fp.fidCalls[0]
	want := []qos.Fidelity{qos.Lite, qos.Skip, qos.Full, qos.Full, qos.Full}
	if len(got) != len(want) {
		t.Fatalf("merged fids %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged fids %v, want %v", got, want)
		}
	}
}
