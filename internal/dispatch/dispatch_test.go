package dispatch

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"odin/internal/core"
	"odin/internal/synth"
)

// fakePipe records every ProcessBatch call and tags each frame's Result
// with a per-frame identity (via ClusterID), so tests can verify the demux
// returned exactly the right results to the right session.
type fakePipe struct {
	mu      sync.Mutex
	ids     map[*synth.Frame]int
	next    int
	batches [][]*synth.Frame
}

func newFakePipe() *fakePipe { return &fakePipe{ids: make(map[*synth.Frame]int)} }

func (f *fakePipe) frames(n int) []*synth.Frame {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*synth.Frame, n)
	for i := range out {
		out[i] = &synth.Frame{}
		f.ids[out[i]] = f.next
		f.next++
	}
	return out
}

func (f *fakePipe) id(fr *synth.Frame) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ids[fr]
}

func (f *fakePipe) ProcessBatch(frames []*synth.Frame, workers int) []core.Result {
	f.mu.Lock()
	f.batches = append(f.batches, append([]*synth.Frame(nil), frames...))
	out := make([]core.Result, len(frames))
	for i, fr := range frames {
		out[i] = core.Result{ClusterID: f.ids[fr]}
	}
	f.mu.Unlock()
	return out
}

func (f *fakePipe) batchCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.batches)
}

// checkResults asserts a Submit returned exactly its own frames' results,
// in order.
func checkResults(t *testing.T, fp *fakePipe, frames []*synth.Frame, results []core.Result) {
	t.Helper()
	if len(results) != len(frames) {
		t.Fatalf("got %d results for %d frames", len(results), len(frames))
	}
	for i, fr := range frames {
		if results[i].ClusterID != fp.id(fr) {
			t.Fatalf("result %d carries id %d, want %d (demux misrouted)", i, results[i].ClusterID, fp.id(fr))
		}
	}
}

// TestFleetReadyMergesInJoinOrder: three sessions submitting concurrently
// are merged into ONE ProcessBatch whose frame order is session join
// order — the deterministic cross-stream merge.
func TestFleetReadyMergesInJoinOrder(t *testing.T) {
	fp := newFakePipe()
	b := NewBatcher(fp, Config{MaxBatch: 1 << 20, MaxLinger: time.Minute})
	const sessions = 3
	sess := make([]*Session, sessions)
	wins := make([][]*synth.Frame, sessions)
	for i := range sess {
		sess[i] = b.Join()
		wins[i] = fp.frames(4 + i)
	}
	var wg sync.WaitGroup
	for i := range sess {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := sess[i].Submit(context.Background(), wins[i])
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			checkResults(t, fp, wins[i], rs)
		}(i)
	}
	wg.Wait()
	if n := fp.batchCount(); n != 1 {
		t.Fatalf("fleet-ready flush issued %d batches, want 1 merged batch", n)
	}
	var want []*synth.Frame
	for _, w := range wins {
		want = append(want, w...)
	}
	for i, fr := range fp.batches[0] {
		if fr != want[i] {
			t.Fatalf("merged batch position %d out of join order", i)
		}
	}
	if st := b.Stats(); st.Batches != 1 || st.Windows != 3 || st.Frames != len(want) || st.MaxMerge != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// TestMaxBatchFlushesWithoutFleet: a window pushing the assembler past
// MaxBatch flushes immediately, without waiting for the other session.
func TestMaxBatchFlushesWithoutFleet(t *testing.T) {
	fp := newFakePipe()
	b := NewBatcher(fp, Config{MaxBatch: 4, MaxLinger: time.Minute})
	a := b.Join()
	b.Join() // second session, never submits
	frames := fp.frames(5)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rs, err := a.Submit(context.Background(), frames)
		if err != nil {
			t.Error(err)
			return
		}
		checkResults(t, fp, frames, rs)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("MaxBatch overflow did not flush")
	}
	if fp.batchCount() != 1 {
		t.Fatalf("batches %d", fp.batchCount())
	}
}

// TestLingerBoundsStarvation: with one session idle, the other's window
// still flushes within MaxLinger — the no-starvation guarantee.
func TestLingerBoundsStarvation(t *testing.T) {
	fp := newFakePipe()
	b := NewBatcher(fp, Config{MaxBatch: 1 << 20, MaxLinger: 20 * time.Millisecond})
	a := b.Join()
	b.Join() // idle: blocks fleet-ready forever
	frames := fp.frames(3)
	start := time.Now()
	rs, err := a.Submit(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, fp, frames, rs)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("linger flush took %v", d)
	}
}

// TestLeaveUnblocksFleet: a session leaving mid-batch completes the
// fleet-ready condition for the remaining sessions (join/leave mid-batch,
// without waiting out the linger).
func TestLeaveUnblocksFleet(t *testing.T) {
	fp := newFakePipe()
	b := NewBatcher(fp, Config{MaxBatch: 1 << 20, MaxLinger: time.Minute})
	a, idle := b.Join(), b.Join()
	frames := fp.frames(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rs, err := a.Submit(context.Background(), frames)
		if err != nil {
			t.Error(err)
			return
		}
		checkResults(t, fp, frames, rs)
	}()
	// Let a's window reach the assembler, then retire the idle session.
	for i := 0; i < 1000; i++ {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	idle.Leave()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Leave did not trigger the fleet-ready flush")
	}
	idle.Leave() // idempotent
}

// TestCancelWithdrawsFromAssembler: cancelling a Submit whose window is
// still in the assembler withdraws it — the frames are never processed —
// and later flushes exclude it.
func TestCancelWithdrawsFromAssembler(t *testing.T) {
	fp := newFakePipe()
	b := NewBatcher(fp, Config{MaxBatch: 1 << 20, MaxLinger: time.Minute})
	a, other := b.Join(), b.Join()
	ctx, cancel := context.WithCancel(context.Background())
	frames := fp.frames(3)
	errc := make(chan error, 1)
	go func() {
		_, err := a.Submit(ctx, frames)
		errc <- err
	}()
	for i := 0; i < 1000; i++ {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Submit returned %v", err)
	}

	// The withdrawn frames must never appear in any batch: a leaves, and
	// the other session's flush carries only its own frames.
	a.Leave()
	oframes := fp.frames(2)
	rs, err := other.Submit(context.Background(), oframes)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, fp, oframes, rs)
	fp.mu.Lock()
	defer fp.mu.Unlock()
	for _, batch := range fp.batches {
		for _, fr := range batch {
			for _, withdrawn := range frames {
				if fr == withdrawn {
					t.Fatal("withdrawn frame was processed")
				}
			}
		}
	}
}

// TestBatcherStress: sessions churn (join, submit random windows, leave)
// concurrently; every Submit must get exactly its own results. Run under
// -race in CI.
func TestBatcherStress(t *testing.T) {
	fp := newFakePipe()
	b := NewBatcher(fp, Config{MaxBatch: 32, MaxLinger: time.Millisecond})
	var wg sync.WaitGroup
	for s := 0; s < 6; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			sess := b.Join()
			defer sess.Leave()
			for r := 0; r < 25; r++ {
				frames := fp.frames(1 + rng.Intn(7))
				rs, err := sess.Submit(context.Background(), frames)
				if err != nil {
					t.Errorf("session %d round %d: %v", s, r, err)
					return
				}
				checkResults(t, fp, frames, rs)
			}
		}(s)
	}
	wg.Wait()
	st := b.Stats()
	if st.Windows != 6*25 {
		t.Fatalf("flushed %d windows, want %d", st.Windows, 6*25)
	}
	if st.Batches > st.Windows {
		t.Fatalf("stats %+v: more batches than windows", st)
	}
	t.Logf("stress: %d windows in %d batches (max merge %d)", st.Windows, st.Batches, st.MaxMerge)
}

// TestEmptySubmit: a zero-frame window is a no-op.
func TestEmptySubmit(t *testing.T) {
	b := NewBatcher(newFakePipe(), Config{})
	s := b.Join()
	rs, err := s.Submit(context.Background(), nil)
	if err != nil || rs != nil {
		t.Fatalf("empty submit: %v %v", rs, err)
	}
	s.Leave()
}
