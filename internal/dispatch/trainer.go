package dispatch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"odin/internal/core"
	"odin/internal/obs"
	"odin/internal/registry"
)

// ErrTrainerClosed marks training jobs dropped because the trainer shut
// down before they ran; their recoveries roll back to the prior model.
var ErrTrainerClosed = errors.New("dispatch: trainer closed")

// TrainerStats is trainer telemetry.
type TrainerStats struct {
	// Trained counts jobs whose model was built and swapped in. It always
	// equals Scratch + Warm + Adopted + Coalesced.
	Trained int
	// Failed counts jobs whose build errored or whose swap was rejected
	// (cluster evicted mid-training, superseded model) — the pipeline kept
	// the prior model.
	Failed int
	// Dropped counts jobs discarded by Close before they ran.
	Dropped int

	// Scratch counts installed models trained from scratch initialisation
	// (registry miss, no registry, or fallback after an aborted coalesce).
	Scratch int
	// Warm counts installed models trained warm-started from a
	// regime-adjacent registry model.
	Warm int
	// Adopted counts installed models taken directly from the registry —
	// zero training.
	Adopted int
	// Coalesced counts installed models received from another pipeline's
	// concurrent build of the same regime — this pipeline trained nothing.
	Coalesced int
}

// queuedJob pairs a training job with its registry resolution, taken at
// enqueue time. Resolving at enqueue — not when the job reaches the front
// of the queue — is what makes fleet recovery deterministic and
// deadlock-free: under deterministic driving the enqueue order is fixed, so
// the builder of every coalesced regime is fixed; and because claims are
// registered in enqueue order while queues drain FIFO, a coalesce wait
// cycle across trainers would need strictly decreasing enqueue times around
// the cycle, which is impossible (DESIGN.md §9).
type queuedJob struct {
	job core.TrainJob
	res registry.Resolution
}

// Trainer drains drift-recovery training jobs on a single background
// goroutine: each job's model is built from its frame snapshot outside the
// pipeline lock (core.ModelManager.BuildModel), then swapped in atomically
// via core.Odin.FinishJob. While a job trains, the pipeline keeps serving
// every stream with the previous-best model — training is entirely off the
// real-time path, which is what flattens the recovery-stall latency spike
// (see odin-bench -exp dispatch).
//
// Jobs run in FIFO order, so a cluster's lite model always lands before
// its specialized upgrade; overlapping drift events on different streams
// simply queue. A failed build rolls back: FinishJob drops the job and the
// prior model keeps serving.
//
// With a fleet registry attached (AttachRegistry), each job is resolved
// against the fleet's recovered models before building: adopt installs a
// cached model directly, warm-start seeds training from cached weights,
// coalesce waits for another pipeline's in-flight build of the same regime,
// and a miss claims the regime, builds from scratch and publishes the
// result for the rest of the fleet. Every path lands through the same
// FinishJob atomic swap, so rollback semantics (evicted cluster, superseded
// lite) are identical with and without the registry.
type Trainer struct {
	pipe      *core.Odin
	build     func(core.TrainJob) (*core.Model, error)
	buildFrom func(core.TrainJob, *core.Model) (*core.Model, error)

	mu      sync.Mutex
	queue   []queuedJob
	busy    bool
	closed  bool
	waiters []chan struct{}
	stats   TrainerStats

	reg    *registry.Registry
	source string
	pol    registry.Policy

	wake    chan struct{}
	done    chan struct{}
	closing chan struct{}

	// obsv is the optional observability hook: recovery-path lifecycle
	// events and build-duration histograms. Strictly observational.
	obsv atomic.Pointer[obs.Observer]
}

// NewTrainer starts a trainer over the pipeline and installs itself as the
// pipeline's train sink. Close it to stop the background goroutine.
func NewTrainer(pipe *core.Odin) *Trainer {
	t := &Trainer{
		pipe: pipe,
		build: func(job core.TrainJob) (*core.Model, error) {
			return pipe.Manager.BuildModel(job), nil
		},
		buildFrom: func(job core.TrainJob, from *core.Model) (*core.Model, error) {
			return pipe.Manager.BuildModelFrom(job, from), nil
		},
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		closing: make(chan struct{}),
	}
	pipe.SetTrainSink(t.Enqueue)
	go t.loop()
	return t
}

// AttachRegistry connects the trainer to a fleet model registry: every
// subsequent job carrying a regime signature is resolved against it. source
// names this pipeline in registry provenance; pol sets the adoption gates
// (zero fields fall back to registry defaults). Call before serving frames.
func (t *Trainer) AttachRegistry(reg *registry.Registry, source string, pol registry.Policy) {
	t.mu.Lock()
	t.reg = reg
	t.source = source
	t.pol = pol
	t.mu.Unlock()
}

// SetBuild replaces the scratch model-build function (tests inject failures
// with it). Call before any job is scheduled.
func (t *Trainer) SetBuild(fn func(core.TrainJob) (*core.Model, error)) {
	t.mu.Lock()
	t.build = fn
	t.mu.Unlock()
}

// SetBuildFrom replaces the warm-start build function (tests). Call before
// any job is scheduled.
func (t *Trainer) SetBuildFrom(fn func(core.TrainJob, *core.Model) (*core.Model, error)) {
	t.mu.Lock()
	t.buildFrom = fn
	t.mu.Unlock()
}

// SetObserver installs (or, with nil, removes) the observability hook.
func (t *Trainer) SetObserver(ob *obs.Observer) {
	t.obsv.Store(ob)
}

// observer returns the current hook (nil when disabled) plus the registry
// source label naming this pipeline in events.
func (t *Trainer) observer() (*obs.Observer, string) {
	ob := t.obsv.Load()
	if ob == nil {
		return nil, ""
	}
	t.mu.Lock()
	src := t.source
	t.mu.Unlock()
	return ob, src
}

// Stats returns a snapshot of the trainer telemetry.
func (t *Trainer) Stats() TrainerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Enqueue appends jobs to the training queue without blocking, resolving
// each against the fleet registry (when attached) at enqueue time. Jobs
// enqueued after Close are dropped immediately (their recoveries roll
// back), never silently leaked.
func (t *Trainer) Enqueue(jobs []core.TrainJob) {
	if len(jobs) == 0 {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.stats.Dropped += len(jobs)
		t.mu.Unlock()
		ob, src := t.observer()
		for _, job := range jobs {
			ob.Event(obs.EvRecoveryDropped, src, job.ClusterID, -1, "trainer closed")
			t.pipe.FinishJob(job, nil, 0, ErrTrainerClosed)
		}
		return
	}
	for _, job := range jobs {
		q := queuedJob{job: job}
		if t.reg != nil && job.Sig != nil {
			q.res = t.reg.Resolve(job.Sig, job.Kind, t.source, t.pol)
		}
		t.queue = append(t.queue, q)
	}
	t.mu.Unlock()
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// loop is the trainer goroutine: pop, build (lock-free), swap.
func (t *Trainer) loop() {
	defer close(t.done)
	for {
		t.mu.Lock()
		if len(t.queue) == 0 {
			t.busy = false
			t.notifyIdleLocked()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return
			}
			<-t.wake
			continue
		}
		q := t.queue[0]
		t.queue = t.queue[1:]
		t.busy = true
		t.mu.Unlock()

		t.runJob(q)
	}
}

// runJob executes one dequeued job down the path its registry resolution
// chose. Every branch terminates in exactly one FinishJob call, so the
// pipeline's outstanding-recovery accounting stays balanced.
func (t *Trainer) runJob(q queuedJob) {
	job := q.job
	ob, src := t.observer()
	switch q.res.Outcome {
	case registry.OutcomeAdopt:
		ob.Event(obs.EvRecoveryAdopted, src, job.ClusterID, -1, "fleet model adopted")
		t.finish(job, adoptModel(q.res.Model, job), 0, nil, &t.stats.Adopted)

	case registry.OutcomeCoalesce:
		m, _, _, err := q.res.Ticket.Wait(t.closing)
		switch {
		case errors.Is(err, registry.ErrCanceled):
			// Trainer is closing: drop the job like Close drops queued ones.
			ob.Event(obs.EvRecoveryDropped, src, job.ClusterID, -1, "coalesce canceled on close")
			t.pipe.FinishJob(job, nil, 0, ErrTrainerClosed)
			t.mu.Lock()
			t.stats.Dropped++
			t.mu.Unlock()
		case err != nil:
			// Builder aborted; fall back to our own scratch build.
			t.runScratch(job, nil)
		default:
			ob.Event(obs.EvRecoveryCoalesced, src, job.ClusterID, -1, "joined in-flight fleet build")
			t.finish(job, adoptModel(m, job), 0, nil, &t.stats.Coalesced)
		}

	case registry.OutcomeWarm:
		start := time.Now()
		m, err := t.buildFrom(job, q.res.Model)
		dur := time.Since(start)
		ob.Event(obs.EvRecoveryWarm, src, job.ClusterID, -1, "warm-started from fleet model")
		ob.BuildSeconds("warm", dur)
		t.finish(job, m, dur, err, &t.stats.Warm)

	case registry.OutcomeMiss:
		t.runScratch(job, q.res.Claim)

	default: // OutcomeNone: no registry or unsigned job
		t.runScratch(job, nil)
	}
}

// runScratch builds from scratch and, when the job holds a registry claim,
// publishes the result for the fleet (or aborts the claim on failure, so
// coalesced waiters fall back instead of hanging). The model is published
// even if this pipeline's install is rejected (e.g. its cluster was evicted
// mid-build): the weights are still a valid recovery for the regime.
func (t *Trainer) runScratch(job core.TrainJob, claim *registry.Claim) {
	start := time.Now()
	m, err := t.build(job)
	dur := time.Since(start)
	if claim != nil {
		if err != nil || m == nil {
			claim.Abort()
		} else {
			defer func() { claim.Publish(m, t.pipe.ModelGen()) }()
		}
	}
	ob, src := t.observer()
	ob.Event(obs.EvRecoveryScratch, src, job.ClusterID, -1, "")
	ob.BuildSeconds("scratch", dur)
	t.finish(job, m, dur, err, &t.stats.Scratch)
}

// finish swaps the model in via FinishJob and books the outcome: Trained
// plus the given breakdown counter on install, Failed on rollback.
func (t *Trainer) finish(job core.TrainJob, m *core.Model, dur time.Duration, err error, kind *int) {
	installed := t.pipe.FinishJob(job, m, dur, err)
	t.mu.Lock()
	if installed {
		t.stats.Trained++
		*kind++
	} else {
		t.stats.Failed++
	}
	t.mu.Unlock()
}

// adoptModel clones a registry model for installation into this pipeline:
// same immutable detector (GridDetector inference is stateless, so sharing
// the pointer across pipelines is safe), fresh cluster identity and
// creation frame. TrainedOn carries over — it describes the weights.
func adoptModel(src *core.Model, job core.TrainJob) *core.Model {
	if src == nil {
		return nil
	}
	m := *src
	m.ClusterID = job.ClusterID
	m.CreatedAt = job.AtFrame
	return &m
}

// notifyIdleLocked wakes Wait callers when the trainer drains.
func (t *Trainer) notifyIdleLocked() {
	for _, ch := range t.waiters {
		close(ch)
	}
	t.waiters = nil
}

// Wait blocks until every scheduled recovery has landed or rolled back —
// the trainer queue is empty, no job is mid-build, and the pipeline
// reports no outstanding jobs — or ctx is done.
func (t *Trainer) Wait(ctx context.Context) error {
	for {
		t.mu.Lock()
		idle := len(t.queue) == 0 && !t.busy
		var ch chan struct{}
		if !idle {
			ch = make(chan struct{})
			t.waiters = append(t.waiters, ch)
		}
		t.mu.Unlock()
		if idle {
			if t.pipe.PendingRecoveries() == 0 {
				return nil
			}
			// A job is scheduled but not yet enqueued (the scheduling
			// goroutine is between releasing the pipeline lock and calling
			// the sink) — yield briefly and re-check.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(200 * time.Microsecond):
			}
			continue
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Close stops the trainer: queued jobs are dropped (their recoveries roll
// back to the prior model, their registry claims abort so coalesced waiters
// on other trainers fall back) and the call blocks until the background
// goroutine — including any job mid-build or mid-coalesce-wait — has
// exited. Idempotent.
func (t *Trainer) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		<-t.done
		return
	}
	t.closed = true
	dropped := t.queue
	t.queue = nil
	t.stats.Dropped += len(dropped)
	t.mu.Unlock()
	close(t.closing) // unblocks a coalesce wait in flight
	ob, src := t.observer()
	for _, q := range dropped {
		if q.res.Claim != nil {
			q.res.Claim.Abort()
		}
		ob.Event(obs.EvRecoveryDropped, src, q.job.ClusterID, -1, "trainer closed")
		t.pipe.FinishJob(q.job, nil, 0, ErrTrainerClosed)
	}
	select {
	case t.wake <- struct{}{}:
	default:
	}
	<-t.done
}
