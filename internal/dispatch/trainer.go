package dispatch

import (
	"context"
	"errors"
	"sync"
	"time"

	"odin/internal/core"
)

// ErrTrainerClosed marks training jobs dropped because the trainer shut
// down before they ran; their recoveries roll back to the prior model.
var ErrTrainerClosed = errors.New("dispatch: trainer closed")

// TrainerStats is trainer telemetry.
type TrainerStats struct {
	// Trained counts jobs whose model was built and swapped in.
	Trained int
	// Failed counts jobs whose build errored or whose swap was rejected
	// (cluster evicted mid-training, superseded model) — the pipeline kept
	// the prior model.
	Failed int
	// Dropped counts jobs discarded by Close before they ran.
	Dropped int
}

// Trainer drains drift-recovery training jobs on a single background
// goroutine: each job's model is built from its frame snapshot outside the
// pipeline lock (core.ModelManager.BuildModel), then swapped in atomically
// via core.Odin.FinishJob. While a job trains, the pipeline keeps serving
// every stream with the previous-best model — training is entirely off the
// real-time path, which is what flattens the recovery-stall latency spike
// (see odin-bench -exp dispatch).
//
// Jobs run in FIFO order, so a cluster's lite model always lands before
// its specialized upgrade; overlapping drift events on different streams
// simply queue. A failed build rolls back: FinishJob drops the job and the
// prior model keeps serving.
type Trainer struct {
	pipe  *core.Odin
	build func(core.TrainJob) (*core.Model, error)

	mu      sync.Mutex
	queue   []core.TrainJob
	busy    bool
	closed  bool
	waiters []chan struct{}
	stats   TrainerStats

	wake chan struct{}
	done chan struct{}
}

// NewTrainer starts a trainer over the pipeline and installs itself as the
// pipeline's train sink. Close it to stop the background goroutine.
func NewTrainer(pipe *core.Odin) *Trainer {
	t := &Trainer{
		pipe: pipe,
		build: func(job core.TrainJob) (*core.Model, error) {
			return pipe.Manager.BuildModel(job), nil
		},
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	pipe.SetTrainSink(t.Enqueue)
	go t.loop()
	return t
}

// SetBuild replaces the model-build function (tests inject failures with
// it). Call before any job is scheduled.
func (t *Trainer) SetBuild(fn func(core.TrainJob) (*core.Model, error)) {
	t.mu.Lock()
	t.build = fn
	t.mu.Unlock()
}

// Stats returns a snapshot of the trainer telemetry.
func (t *Trainer) Stats() TrainerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Enqueue appends jobs to the training queue without blocking. Jobs
// enqueued after Close are dropped immediately (their recoveries roll
// back), never silently leaked.
func (t *Trainer) Enqueue(jobs []core.TrainJob) {
	if len(jobs) == 0 {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.stats.Dropped += len(jobs)
		t.mu.Unlock()
		for _, job := range jobs {
			t.pipe.FinishJob(job, nil, 0, ErrTrainerClosed)
		}
		return
	}
	t.queue = append(t.queue, jobs...)
	t.mu.Unlock()
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// loop is the trainer goroutine: pop, build (lock-free), swap.
func (t *Trainer) loop() {
	defer close(t.done)
	for {
		t.mu.Lock()
		if len(t.queue) == 0 {
			t.busy = false
			t.notifyIdleLocked()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return
			}
			<-t.wake
			continue
		}
		job := t.queue[0]
		t.queue = t.queue[1:]
		t.busy = true
		build := t.build
		t.mu.Unlock()

		start := time.Now()
		m, err := build(job)
		installed := t.pipe.FinishJob(job, m, time.Since(start), err)

		t.mu.Lock()
		if installed {
			t.stats.Trained++
		} else {
			t.stats.Failed++
		}
		t.mu.Unlock()
	}
}

// notifyIdleLocked wakes Wait callers when the trainer drains.
func (t *Trainer) notifyIdleLocked() {
	for _, ch := range t.waiters {
		close(ch)
	}
	t.waiters = nil
}

// Wait blocks until every scheduled recovery has landed or rolled back —
// the trainer queue is empty, no job is mid-build, and the pipeline
// reports no outstanding jobs — or ctx is done.
func (t *Trainer) Wait(ctx context.Context) error {
	for {
		t.mu.Lock()
		idle := len(t.queue) == 0 && !t.busy
		var ch chan struct{}
		if !idle {
			ch = make(chan struct{})
			t.waiters = append(t.waiters, ch)
		}
		t.mu.Unlock()
		if idle {
			if t.pipe.PendingRecoveries() == 0 {
				return nil
			}
			// A job is scheduled but not yet enqueued (the scheduling
			// goroutine is between releasing the pipeline lock and calling
			// the sink) — yield briefly and re-check.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(200 * time.Microsecond):
			}
			continue
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Close stops the trainer: queued jobs are dropped (their recoveries roll
// back to the prior model) and the call blocks until the background
// goroutine — including any job mid-build — has exited. Idempotent.
func (t *Trainer) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		<-t.done
		return
	}
	t.closed = true
	dropped := t.queue
	t.queue = nil
	t.stats.Dropped += len(dropped)
	t.mu.Unlock()
	for _, job := range dropped {
		t.pipe.FinishJob(job, nil, 0, ErrTrainerClosed)
	}
	select {
	case t.wake <- struct{}{}:
	default:
	}
	<-t.done
}
