package obs

import (
	"sync"
	"time"
)

// Lifecycle event kinds. The set is closed: every kind has a
// pre-registered odin_events_total{kind} counter so the exposition family
// layout is stable from the first scrape.
const (
	EvDrift             = "drift"              // drift detected on a cluster
	EvRecoveryEnqueued  = "recovery_enqueued"  // training job scheduled
	EvRecoveryScratch   = "recovery_scratch"   // job trained from scratch
	EvRecoveryWarm      = "recovery_warm"      // job warm-started from a fleet model
	EvRecoveryAdopted   = "recovery_adopted"   // fleet model adopted without training
	EvRecoveryCoalesced = "recovery_coalesced" // job coalesced onto an in-flight build
	EvRecoverySwapped   = "recovery_swapped"   // recovered model installed (atomic swap)
	EvRecoveryRollback  = "recovery_rollback"  // recovery discarded (stale gen or no win)
	EvRecoveryFailed    = "recovery_failed"    // training errored
	EvRecoveryDropped   = "recovery_dropped"   // job dropped (canceled coalesce target)
	EvFidelityDegrade   = "fidelity_degrade"   // QoS controller stepped a stream down
	EvFidelityRestore   = "fidelity_restore"   // QoS controller stepped a stream up
	EvCheckpointSave    = "checkpoint_save"    // Checkpoint wrote a snapshot
	EvCheckpointRestore = "checkpoint_restore" // Restore rebuilt a server
)

// EventKinds lists every lifecycle event kind, in emission-category order.
func EventKinds() []string {
	return []string{
		EvDrift,
		EvRecoveryEnqueued, EvRecoveryScratch, EvRecoveryWarm, EvRecoveryAdopted,
		EvRecoveryCoalesced, EvRecoverySwapped, EvRecoveryRollback, EvRecoveryFailed,
		EvRecoveryDropped,
		EvFidelityDegrade, EvFidelityRestore,
		EvCheckpointSave, EvCheckpointRestore,
	}
}

// Event is one structured lifecycle record: what happened, where, and when.
// Events are operator telemetry — they never feed back into the pipeline,
// and their timestamps are wall-clock (they are not part of any
// determinism contract).
type Event struct {
	Seq     uint64    `json:"seq"`              // monotonically increasing per log
	Time    time.Time `json:"time"`             // wall-clock emission time
	Kind    string    `json:"kind"`             // one of the Ev* constants
	Stream  string    `json:"stream,omitempty"` // stream name, when known
	Cluster int       `json:"cluster"`          // drift-cluster id, -1 when not applicable
	Gen     int       `json:"gen"`              // model generation, -1 when not applicable
	Detail  string    `json:"detail,omitempty"` // free-form context
}

// EventLog is a bounded ring of recent events. Emission takes a mutex —
// events are rare (drift, recoveries, fidelity transitions), never
// per-frame — and the ring never grows past its capacity.
type EventLog struct {
	mu   sync.Mutex
	buf  []Event
	next int // write cursor
	n    int // filled entries, ≤ len(buf)
	seq  uint64
}

// NewEventLog creates a ring holding the most recent capacity events
// (capacity ≤ 0 selects 256).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Append records e, stamping Seq and (if unset) Time.
func (l *EventLog) Append(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// Recent returns up to n most recent events, oldest first. n ≤ 0 returns
// everything retained.
func (l *EventLog) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.n {
		n = l.n
	}
	out := make([]Event, n)
	start := l.next - n
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = l.buf[(start+i)%len(l.buf)]
	}
	return out
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
