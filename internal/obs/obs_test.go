package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	// Re-registration returns the same series.
	if r.Counter("c_total", "help") != c {
		t.Fatal("re-registering a counter returned a new series")
	}
	// Nil receivers are no-ops.
	var nc *Counter
	nc.Inc()
	nc.Add(1)
	var ng *Gauge
	ng.Set(1)
	if nc.Value() != 0 || ng.Value() != 0 {
		t.Fatal("nil metrics should read zero")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 3, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got := h.Sum(); math.Abs(got-116.7) > 1e-9 {
		t.Fatalf("sum = %v, want 116.7", got)
	}
	// rank math: ceil(0.5*7)=4 → 4th sample lands in the (2,4] bucket.
	if got := h.Quantile(0.5); got != 4 {
		t.Fatalf("p50 = %v, want bucket bound 4", got)
	}
	// p99 → rank 7 → overflow bucket clamps to the largest finite bound.
	if got := h.Quantile(0.99); got != 8 {
		t.Fatalf("p99 = %v, want clamp 8", got)
	}
	var nh *Histogram
	nh.Observe(1)
	if nh.Count() != 0 || nh.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should read zero")
	}
	if (&Histogram{}).Sum() != 0 {
		t.Fatal("zero sum expected")
	}
	if NewHistogram(nil).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	samples := []float64{5, 1, 3, 2, 4}
	sort.Float64s(samples)
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.99, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.p); got != c.want {
			t.Fatalf("Percentile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Histogram quantile agrees with exact percentile up to bucket width.
	h := NewHistogram(LinearBounds(1, 1, 8))
	for _, v := range samples {
		h.Observe(v)
	}
	for _, p := range []float64{0.25, 0.5, 0.75, 0.99} {
		exact := Percentile(samples, p)
		if got := h.Quantile(p); got != exact {
			t.Fatalf("unit-width bucket quantile p=%v: %v, want exact %v", p, got, exact)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("odin_test_total", "A test counter.", Label{Key: "kind", Value: "b"})
	c.Add(3)
	r.Counter("odin_test_total", "A test counter.", Label{Key: "kind", Value: "a"}).Inc()
	r.Gauge("odin_test_gauge", "A gauge.").Set(1.5)
	r.GaugeFunc("odin_test_fn", "A callback gauge.", func() float64 { return 9 })
	h := r.Histogram("odin_test_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP odin_test_fn A callback gauge.
# TYPE odin_test_fn gauge
odin_test_fn 9
# HELP odin_test_gauge A gauge.
# TYPE odin_test_gauge gauge
odin_test_gauge 1.5
# HELP odin_test_seconds A histogram.
# TYPE odin_test_seconds histogram
odin_test_seconds_bucket{le="0.1"} 1
odin_test_seconds_bucket{le="1"} 2
odin_test_seconds_bucket{le="+Inf"} 3
odin_test_seconds_sum 5.55
odin_test_seconds_count 3
# HELP odin_test_total A test counter.
# TYPE odin_test_total counter
odin_test_total{kind="a"} 1
odin_test_total{kind="b"} 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Append(Event{Kind: EvDrift, Cluster: i})
	}
	if l.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", l.Len())
	}
	got := l.Recent(0)
	if len(got) != 3 || got[0].Cluster != 2 || got[2].Cluster != 4 {
		t.Fatalf("ring contents = %+v, want clusters 2..4 oldest-first", got)
	}
	if got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("seq = %d..%d, want 3..5", got[0].Seq, got[2].Seq)
	}
	if got[0].Time.IsZero() {
		t.Fatal("Append should stamp Time")
	}
	if r := l.Recent(2); len(r) != 2 || r[1].Cluster != 4 {
		t.Fatalf("Recent(2) = %+v, want last two", r)
	}
	var nl *EventLog
	nl.Append(Event{})
	if nl.Recent(1) != nil || nl.Len() != 0 {
		t.Fatal("nil event log should be inert")
	}
}

func TestObserverNilSafe(t *testing.T) {
	var o *Observer
	t0 := o.Now()
	if !t0.IsZero() {
		t.Fatal("nil observer Now() should be the zero time")
	}
	o.Stage(StageProject, t0, 1)
	o.StageDur(StageDetect, time.Millisecond, 1)
	o.Event(EvDrift, "s", 0, 0, "")
	o.DroppedFrames(3)
	o.RejectedFrames(1)
	o.MergeWindows(2)
	o.BuildSeconds("scratch", time.Second)
	if o.Registry() != nil || o.Tracer() != nil || o.Events() != nil {
		t.Fatal("nil observer accessors should return nil")
	}
	var tr *Tracer
	tr.Observe(StageProject, time.Second, 1)
	if tr.StageFrames(StageProject) != 0 || tr.StageSeconds(StageProject) != nil {
		t.Fatal("nil tracer should be inert")
	}
}

func TestObserverEventCounters(t *testing.T) {
	o := New(8)
	o.Event(EvDrift, "cam-0", 2, 1, "")
	o.Event(EvDrift, "cam-1", 3, 1, "")
	o.Event(EvRecoverySwapped, "cam-0", 2, 2, "")
	o.Event("unknown_kind", "", -1, -1, "") // logged but not counted
	if got := o.Events().Len(); got != 4 {
		t.Fatalf("event log len = %d, want 4", got)
	}
	var b strings.Builder
	if err := o.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`odin_events_total{kind="drift"} 2`,
		`odin_events_total{kind="recovery_swapped"} 1`,
		`odin_events_total{kind="checkpoint_save"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHotPathAllocFree is the unit-level half of the `-exp obs` alloc gate:
// every per-frame instrumentation primitive must be allocation-free.
func TestHotPathAllocFree(t *testing.T) {
	o := New(16)
	h := NewHistogram(nil)
	c := o.Registry().Counter("alloc_test_total", "x")
	g := o.Registry().Gauge("alloc_test_gauge", "x")
	t0 := time.Now()
	cases := map[string]func(){
		"counter":   func() { c.Add(1) },
		"gauge":     func() { g.Set(1) },
		"histogram": func() { h.Observe(0.001) },
		"tracer":    func() { o.Stage(StageProject, t0, 8) },
		"dropped":   func() { o.DroppedFrames(1) },
		"merge":     func() { o.MergeWindows(3) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on the hot path, want 0", name, allocs)
		}
	}
}

// TestRegistryConcurrent hammers scrapes against concurrent metric updates
// — run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	o := New(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				o.Stage(StageAdvance, time.Now().Add(-time.Millisecond), 4)
				o.Event(EvDrift, "cam", i, 1, "")
				o.DroppedFrames(1)
				o.MergeWindows(i + 1)
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := o.Registry().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		o.Events().Recent(16)
		o.Tracer().StageSeconds(StageAdvance).Quantile(0.99)
	}
	close(stop)
	wg.Wait()
}
