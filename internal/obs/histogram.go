package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram safe for concurrent Observe. The
// bucket layout is frozen at construction, so the hot path is one linear
// scan over ~30 float compares plus three atomic adds — no allocation, no
// locking. Quantiles come from the bucket counts (Quantile, resolution =
// bucket width); for exact quantiles over raw samples use Percentile.
//
// The zero value is unusable; obtain one from NewHistogram or
// Registry.Histogram.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits, CAS-add
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// Nil or empty bounds select DefLatencyBounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBounds()
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// DefLatencyBounds is the default latency bucket layout: exponential
// doubling from 1µs to ~8.4s (24 finite buckets), matching the dynamic
// range between a single blocked-kernel frame and a full inline training
// stall.
func DefLatencyBounds() []float64 {
	bounds := make([]float64, 24)
	v := 1e-6
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// LinearBounds returns n ascending bounds start, start+step, ... — used for
// small-integer distributions such as merge widths.
func LinearBounds(start, step float64, n int) []float64 {
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = start + float64(i)*step
	}
	return bounds
}

// Observe records one sample. Allocation-free and safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns a consistent-enough copy of the bucket counts for
// exposition: each bucket is read atomically; cross-bucket skew is bounded
// by in-flight Observes and is the standard Prometheus trade-off.
func (h *Histogram) snapshot() []uint64 {
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return counts
}

// Quantile returns the p-quantile (0..1) estimated from the bucket counts
// by nearest rank: the upper bound of the bucket containing the ranked
// sample (the largest finite bound for overflow samples). Returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // overflow bucket: clamp
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Percentile returns the exact p-quantile (0..1) of sorted samples by
// nearest rank — the shared implementation of the quantile math the bench
// harnesses previously hand-rolled. The input must be sorted ascending.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
