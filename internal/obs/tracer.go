package obs

import "time"

// Stage identifies one per-frame serving stage, in pipeline order. The
// tracer keeps a latency histogram and a frame counter per stage, exported
// as odin_stage_seconds{stage} / odin_stage_frames_total{stage}.
type Stage uint8

const (
	// StageAdmission is the time a producer spends pushing one frame into
	// the bounded QoS admission queue (blocking under the Block policy).
	StageAdmission Stage = iota
	// StageQueueWait is the time a frame waits inside the admission queue,
	// from push to pop.
	StageQueueWait
	// StageAssembly is batch-assembly wait: the legacy fill-loop window, or
	// the dispatcher window from submit to flush.
	StageAssembly
	// StageProject is the pure DA-GAN projection (ODIN Project).
	StageProject
	// StageAdvance is the serialized drift-state advance (ODIN Advance).
	StageAdvance
	// StageDetect is detector execution over the batch (ODIN Execute).
	StageDetect
	// StageEmit is the time spent handing a finished result to the
	// consumer (channel send on the stream's out channel).
	StageEmit

	numStages
)

// stageNames are the label values, in Stage order.
var stageNames = [numStages]string{
	"admission", "queue_wait", "assembly", "project", "advance", "detect", "emit",
}

// String returns the stage's metric label value.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Tracer records per-stage latencies and frame counts. All methods are
// nil-receiver-safe and allocation-free, so instrumented code calls them
// unconditionally and a disabled observer costs one nil check.
type Tracer struct {
	seconds [numStages]*Histogram
	frames  [numStages]*Counter
}

// newTracer registers the per-stage series in reg.
func newTracer(reg *Registry) *Tracer {
	t := &Tracer{}
	for i := Stage(0); i < numStages; i++ {
		lbl := Label{Key: "stage", Value: i.String()}
		t.seconds[i] = reg.Histogram("odin_stage_seconds",
			"Per-stage serving latency in seconds.", nil, lbl)
		t.frames[i] = reg.Counter("odin_stage_frames_total",
			"Frames that passed through each serving stage.", lbl)
	}
	return t
}

// Observe records one stage sample covering frames frames.
func (t *Tracer) Observe(s Stage, d time.Duration, frames int) {
	if t == nil {
		return
	}
	t.seconds[s].Observe(d.Seconds())
	t.frames[s].Add(frames)
}

// StageSeconds returns the stage's latency histogram (nil on a nil tracer).
func (t *Tracer) StageSeconds(s Stage) *Histogram {
	if t == nil {
		return nil
	}
	return t.seconds[s]
}

// StageFrames returns the cumulative frame count for a stage.
func (t *Tracer) StageFrames(s Stage) uint64 {
	if t == nil {
		return 0
	}
	return t.frames[s].Value()
}
