package obs

import "time"

// Observer bundles the registry, tracer and event log one server exports.
// Every method is nil-receiver-safe: the serving stack calls them
// unconditionally, and a server without WithObservability holds a nil
// *Observer, making the disabled cost one predictable nil check per hook.
//
// Direct instrumentation (tracer stages, event counters, QoS drop/reject
// counters, dispatcher merge widths, trainer build durations) lives here;
// counters a subsystem already maintains under its own lock (core Stats,
// TrainerStats, RegistryStats, DispatchStats) are exported via scrape-time
// CounterFunc/GaugeFunc callbacks instead of being double-counted on the
// hot path.
type Observer struct {
	reg    *Registry
	trace  *Tracer
	events *EventLog

	evCount map[string]*Counter // fixed at New; read-only afterwards

	qosDropped  *Counter
	qosRejected *Counter
	mergeWidth  *Histogram
	buildSecs   map[string]*Histogram // "scratch" | "warm"
}

// New builds an observer with an empty registry, the per-stage tracer and
// an event ring of eventCap entries (≤ 0 selects 256).
func New(eventCap int) *Observer {
	reg := NewRegistry()
	o := &Observer{
		reg:       reg,
		trace:     newTracer(reg),
		events:    NewEventLog(eventCap),
		evCount:   make(map[string]*Counter, len(EventKinds())),
		buildSecs: make(map[string]*Histogram, 2),
	}
	for _, kind := range EventKinds() {
		o.evCount[kind] = reg.Counter("odin_events_total",
			"Lifecycle events by kind (drift, recovery, fidelity, checkpoint).",
			Label{Key: "kind", Value: kind})
	}
	o.qosDropped = reg.Counter("odin_qos_dropped_frames_total",
		"Frames dropped by the bounded admission queue (drop-newest/oldest markers).")
	o.qosRejected = reg.Counter("odin_qos_rejected_frames_total",
		"Frames rejected by non-blocking admission offers (TryPush).")
	o.mergeWidth = reg.Histogram("odin_dispatch_merge_windows",
		"Windows merged per dispatcher flush.", LinearBounds(1, 1, 16))
	for _, mode := range []string{"scratch", "warm"} {
		o.buildSecs[mode] = reg.Histogram("odin_train_build_seconds",
			"Recovery training build duration in seconds.", nil,
			Label{Key: "mode", Value: mode})
	}
	return o
}

// Registry returns the metric registry (nil on a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the per-stage tracer (nil on a nil observer).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.trace
}

// Events returns the lifecycle event ring (nil on a nil observer).
func (o *Observer) Events() *EventLog {
	if o == nil {
		return nil
	}
	return o.events
}

// Now returns the current time on an enabled observer and the zero time on
// a nil one, so instrumented code pays no clock read when disabled:
//
//	t0 := o.Now()
//	... stage ...
//	o.Stage(obs.StageProject, t0, n)
func (o *Observer) Now() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// Stage records time.Since(t0) against stage s for frames frames.
func (o *Observer) Stage(s Stage, t0 time.Time, frames int) {
	if o == nil {
		return
	}
	o.trace.Observe(s, time.Since(t0), frames)
}

// StageDur records an already-measured duration against stage s.
func (o *Observer) StageDur(s Stage, d time.Duration, frames int) {
	if o == nil {
		return
	}
	o.trace.Observe(s, d, frames)
}

// Event appends a lifecycle event to the ring and bumps its kind counter.
// Pass cluster/gen -1 when not applicable.
func (o *Observer) Event(kind, stream string, cluster, gen int, detail string) {
	if o == nil {
		return
	}
	o.evCount[kind].Inc() // nil-safe for unknown kinds
	o.events.Append(Event{Kind: kind, Stream: stream, Cluster: cluster, Gen: gen, Detail: detail})
}

// DroppedFrames books n frames dropped by a bounded admission queue.
func (o *Observer) DroppedFrames(n int) {
	if o == nil {
		return
	}
	o.qosDropped.Add(n)
}

// RejectedFrames books n frames rejected by non-blocking admission.
func (o *Observer) RejectedFrames(n int) {
	if o == nil {
		return
	}
	o.qosRejected.Add(n)
}

// MergeWindows records the number of windows merged into one dispatcher
// flush.
func (o *Observer) MergeWindows(n int) {
	if o == nil {
		return
	}
	o.mergeWidth.Observe(float64(n))
}

// BuildSeconds records one recovery training build ("scratch" or "warm").
func (o *Observer) BuildSeconds(mode string, d time.Duration) {
	if o == nil {
		return
	}
	o.buildSecs[mode].Observe(d.Seconds())
}
