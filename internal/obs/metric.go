// Package obs is ODIN's unified observability layer: a low-overhead
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms with exact quantile extraction), a per-frame pipeline tracer
// that times every serving stage, and a bounded ring of structured
// lifecycle events (drift, recovery, fidelity transitions, checkpoints).
//
// The package is designed around two constraints from DESIGN.md §12:
//
//   - Allocation-free hot path. Counter.Add, Gauge.Set and
//     Histogram.Observe touch only pre-allocated atomics; label rendering
//     and map lookups happen once, at registration time. The per-frame
//     cost of an enabled observer is a handful of atomic adds plus two
//     monotonic clock reads per stage.
//
//   - Strictly observational. Nothing in this package feeds back into the
//     pipeline: instrumentation reads timestamps and increments counters
//     but never influences batching, scheduling, fidelity or model state.
//     Every hook in the serving stack is nil-receiver-safe, so a disabled
//     observer is a nil pointer and the instrumented binary executes the
//     same computation bit-for-bit (gated by `odin-bench -exp obs`).
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain one from Registry.Counter so it is exported on scrape.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters are monotonic).
func (c *Counter) Add(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is unusable;
// obtain one from Registry.Gauge.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
