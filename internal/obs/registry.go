package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one metric dimension, rendered as key="value" on exposition.
type Label struct {
	Key, Value string
}

// metric kinds, matching the Prometheus TYPE vocabulary.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// child is one labeled series inside a family. Exactly one of the value
// sources is set.
type child struct {
	labels  []Label
	key     string // rendered label set, for dedup + sorted output
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // scrape-time callback (counter or gauge family)
}

// family is one metric name: HELP, TYPE and its labeled children.
type family struct {
	name     string
	help     string
	typ      string
	children []*child
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration takes the registry lock; reading and
// updating registered metrics does not (they are plain atomics), so the
// serving hot path never contends with scrapes. Scrape-time callbacks
// (CounterFunc/GaugeFunc) run under the registry lock during
// WritePrometheus — they must not call back into the registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or returns the existing) counter series name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.series(name, help, typeCounter, labels)
	if c.counter == nil {
		c.counter = &Counter{}
	}
	return c.counter
}

// Gauge registers (or returns the existing) gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.series(name, help, typeGauge, labels)
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// Histogram registers (or returns the existing) histogram series
// name{labels} over the given bucket bounds (nil selects
// DefLatencyBounds). Bounds are fixed by the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	c := r.series(name, help, typeHistogram, labels)
	if c.hist == nil {
		c.hist = NewHistogram(bounds)
	}
	return c.hist
}

// CounterFunc registers a counter series whose value is read by fn at
// scrape time — used to export counters a subsystem already tracks under
// its own lock (Server.Stats, TrainerStats, ...) without double
// bookkeeping on the hot path.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.series(name, help, typeCounter, labels)
	c.fn = fn
}

// GaugeFunc registers a gauge series whose value is read by fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.series(name, help, typeGauge, labels)
	c.fn = fn
}

// series finds or creates the child for name{labels}, panicking on a TYPE
// conflict (programmer error: one name, one type).
func (r *Registry) series(name, help, typ string, labels []Label) *child {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	for _, c := range f.children {
		if c.key == key {
			return c
		}
	}
	c := &child{labels: append([]Label(nil), labels...), key: key}
	f.children = append(f.children, c)
	return c
}

// Families returns the registered family names, sorted.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (families and series in sorted order, so output is stable for
// golden tests).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		children := append([]*child(nil), f.children...)
		sort.Slice(children, func(i, j int) bool { return children[i].key < children[j].key })
		for _, c := range children {
			switch {
			case c.hist != nil:
				writeHistogram(&b, f.name, c)
			case c.fn != nil:
				writeSample(&b, f.name, c.key, c.fn())
			case c.counter != nil:
				writeSample(&b, f.name, c.key, float64(c.counter.Value()))
			case c.gauge != nil:
				writeSample(&b, f.name, c.key, c.gauge.Value())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one `name{labels} value` line.
func writeSample(b *strings.Builder, name, labelKey string, v float64) {
	b.WriteString(name)
	if labelKey != "" {
		b.WriteByte('{')
		b.WriteString(labelKey)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// writeHistogram emits the cumulative _bucket series plus _sum and _count.
func writeHistogram(b *strings.Builder, name string, c *child) {
	counts := c.hist.snapshot()
	var cum uint64
	for i, n := range counts {
		cum += n
		le := "+Inf"
		if i < len(c.hist.bounds) {
			le = formatValue(c.hist.bounds[i])
		}
		b.WriteString(name)
		b.WriteString("_bucket{")
		if c.key != "" {
			b.WriteString(c.key)
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	writeSample(b, name+"_sum", c.key, c.hist.Sum())
	writeSample(b, name+"_count", c.key, float64(c.hist.Count()))
}

// renderLabels renders a sorted key="value" list (no braces).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a float in the shortest exact form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
