package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"odin/internal/cluster"
	"odin/internal/detect"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// statsProjector is a fast stand-in for the DA-GAN in unit tests: it maps a
// frame to simple appearance statistics (global mean, contrast, per-channel
// means, upper/lower-half means), which separate the synthetic domains the
// same way the DA-GAN latent does.
type statsProjector struct{ dim int }

func (s statsProjector) LatentDim() int { return 8 }

func (s statsProjector) Project(x []float64) []float64 {
	n := len(x)
	third := n / 3
	z := make([]float64, 8)
	z[0] = tensor.Mean(x) * 10
	z[1] = math.Sqrt(tensor.Variance(x)) * 10
	for c := 0; c < 3; c++ {
		z[2+c] = tensor.Mean(x[c*third:(c+1)*third]) * 10
	}
	z[5] = tensor.Mean(x[:n/2]) * 10
	z[6] = tensor.Mean(x[n/2:]) * 10
	z[7] = (z[5] - z[6]) * 2
	return z
}

func testClusterConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.MinPoints = 40
	cfg.StabilitySteps = 10
	cfg.TempWindow = 80
	return cfg
}

func TestDownsampleEncoderDims(t *testing.T) {
	scene := synth.DefaultSceneConfig()
	gen := synth.NewSceneGen(1, scene)
	f := gen.GenerateSubset(synth.DayData)
	enc := DownsampleEncoder(2)
	v := enc(f.Image)
	if len(v) != EncodedDim(scene, 2) {
		t.Fatalf("encoded dim %d, want %d", len(v), EncodedDim(scene, 2))
	}
	enc1 := DownsampleEncoder(1)
	if len(enc1(f.Image)) != f.Image.Dim() {
		t.Fatal("factor 1 must be identity")
	}
}

func TestDetectorObserveFormsClusters(t *testing.T) {
	scene := synth.DefaultSceneConfig()
	gen := synth.NewSceneGen(2, scene)
	d := NewDetector(statsProjector{}, testClusterConfig(), DownsampleEncoder(2))

	var drift bool
	for i := 0; i < 300; i++ {
		obs := d.Observe(gen.GenerateSubset(synth.DayData).Image)
		if obs.Assignment.Drift != nil {
			drift = true
		}
		if len(obs.Latent) != 8 {
			t.Fatal("latent dim")
		}
	}
	if !drift {
		t.Fatal("stationary day stream should form a cluster")
	}
	// A night frame must be an outlier for the day cluster.
	obs := d.Observe(gen.GenerateSubset(synth.NightData).Image)
	if !obs.Assignment.Outlier {
		t.Fatal("night frame should be an outlier of the day cluster")
	}
}

func TestFuseDetectionsSingleSet(t *testing.T) {
	dets := []detect.Detection{
		{Box: synth.Box{Class: 0, X: 5, Y: 5, W: 8, H: 4}, Score: 0.8},
	}
	out := FuseDetections([][]detect.Detection{dets}, []float64{1})
	if len(out) != 1 || math.Abs(out[0].Score-0.8) > 1e-9 {
		t.Fatalf("single-set fusion changed results: %+v", out)
	}
}

func TestFuseDetectionsMergesOverlaps(t *testing.T) {
	a := []detect.Detection{{Box: synth.Box{Class: 0, X: 5, Y: 5, W: 8, H: 4}, Score: 0.6}}
	b := []detect.Detection{{Box: synth.Box{Class: 0, X: 5.5, Y: 5, W: 8, H: 4}, Score: 0.8}}
	out := FuseDetections([][]detect.Detection{a, b}, []float64{0.5, 0.5})
	if len(out) != 1 {
		t.Fatalf("overlapping boxes should merge: %d", len(out))
	}
	want := 0.5*0.6 + 0.5*0.8
	if math.Abs(out[0].Score-want) > 1e-9 {
		t.Fatalf("fused score %v, want %v", out[0].Score, want)
	}
}

func TestFuseDetectionsKeepsDistinctClasses(t *testing.T) {
	a := []detect.Detection{{Box: synth.Box{Class: 0, X: 5, Y: 5, W: 8, H: 4}, Score: 0.8}}
	b := []detect.Detection{{Box: synth.Box{Class: 1, X: 5, Y: 5, W: 8, H: 4}, Score: 0.8}}
	out := FuseDetections([][]detect.Detection{a, b}, []float64{0.5, 0.5})
	if len(out) != 2 {
		t.Fatalf("distinct classes must not merge: %d", len(out))
	}
}

func TestFuseDetectionsDropsNoise(t *testing.T) {
	// A low-weight model's lone detection fuses to below the noise floor.
	a := []detect.Detection{{Box: synth.Box{Class: 0, X: 5, Y: 5, W: 8, H: 4}, Score: 0.5}}
	out := FuseDetections([][]detect.Detection{a}, []float64{0.05})
	if len(out) != 0 {
		t.Fatalf("noise detection should be dropped: %+v", out)
	}
}

// buildClusterAt forms a cluster set with clusters at the given centres.
func buildClusterAt(t *testing.T, centres [][]float64) *cluster.Set {
	t.Helper()
	rng := tensor.NewRNG(77)
	s := cluster.NewSet(testClusterConfig())
	for _, c := range centres {
		for i := 0; i < 300; i++ {
			p := make([]float64, len(c))
			for j, v := range c {
				p[j] = v + 0.3*rng.Norm()
			}
			s.Observe(p)
		}
	}
	if len(s.Permanent) != len(centres) {
		t.Fatalf("setup: %d clusters, want %d", len(s.Permanent), len(centres))
	}
	return s
}

func TestSelectorPolicies(t *testing.T) {
	set := buildClusterAt(t, [][]float64{{0, 0}, {10, 0}})
	m0 := &Model{Kind: detect.KindSpecialized, ClusterID: set.Permanent[0].ID}
	m1 := &Model{Kind: detect.KindSpecialized, ClusterID: set.Permanent[1].ID}
	byCluster := map[int]*Model{m0.ClusterID: m0, m1.ClusterID: m1}

	// KNN-U: equal weights.
	sel := Selector{Policy: PolicyKNNU, K: 2}
	out := sel.Select([]float64{1, 0}, set, byCluster, m1)
	if len(out) != 2 || math.Abs(out[0].Weight-0.5) > 1e-9 {
		t.Fatalf("KNN-U weights: %+v", out)
	}

	// KNN-W: closer cluster gets the larger weight (Equation 8).
	sel = Selector{Policy: PolicyKNNW, K: 2}
	out = sel.Select([]float64{1, 0}, set, byCluster, m1)
	if len(out) != 2 {
		t.Fatalf("KNN-W size: %d", len(out))
	}
	var w0, w1 float64
	for _, wm := range out {
		if wm.Model == m0 {
			w0 = wm.Weight
		} else {
			w1 = wm.Weight
		}
	}
	if w0 <= w1 {
		t.Fatalf("closer model must weigh more: w0=%v w1=%v", w0, w1)
	}
	if math.Abs(w0+w1-1) > 1e-9 {
		t.Fatalf("weights must sum to 1: %v", w0+w1)
	}

	// ∆-BM: a point inside cluster 0's band selects only model 0.
	sel = Selector{Policy: PolicyDeltaBM, K: 2}
	inBand := []float64{0.3, 0.1}
	if !set.Permanent[0].Contains(inBand) {
		t.Skip("probe point not inside band; geometry shifted")
	}
	out = sel.Select(inBand, set, byCluster, m1)
	if len(out) != 1 || out[0].Model != m0 {
		t.Fatalf("∆-BM should select the band's model: %+v", out)
	}

	// ∆-BM fallback: a point far outside all bands falls back to KNN-W.
	out = sel.Select([]float64{5, 40}, set, byCluster, m1)
	if len(out) == 0 {
		t.Fatal("∆-BM fallback must return models")
	}

	// MostRecent.
	sel = Selector{Policy: PolicyMostRecent}
	out = sel.Select([]float64{0, 0}, set, byCluster, m1)
	if len(out) != 1 || out[0].Model != m1 {
		t.Fatalf("MostRecent: %+v", out)
	}
	if got := sel.Select([]float64{0, 0}, set, byCluster, nil); got != nil {
		t.Fatal("MostRecent with no model should return nil")
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyKNNU: "KNN-U", PolicyKNNW: "KNN-W", PolicyDeltaBM: "∆-BM", PolicyMostRecent: "MOST-RECENT",
	} {
		if p.String() != want {
			t.Fatalf("%v != %v", p.String(), want)
		}
	}
}

func TestModelManagerBuffersAndMemory(t *testing.T) {
	scene := synth.DefaultSceneConfig()
	gen := synth.NewSceneGen(5, scene)
	cfg := DefaultSpecializerConfig()
	cfg.MaxTrainFrames = 5

	base := detect.NewGridDetector(detect.YOLOConfig(scene.H, scene.W))
	mm := NewModelManager(cfg, scene, base)

	// Empty manager reports the baseline's footprint.
	yoloMB := detect.CostOf(detect.KindYOLO).SizeMB
	if math.Abs(mm.MemoryMB()-yoloMB) > 1e-9 {
		t.Fatalf("baseline memory %v, want %v", mm.MemoryMB(), yoloMB)
	}

	for i := 0; i < 10; i++ {
		mm.AddFrame(3, gen.GenerateSubset(synth.DayData))
	}
	if len(mm.buffers[3]) != 5 {
		t.Fatalf("buffer should cap at 5, got %d", len(mm.buffers[3]))
	}

	mm.byCluster[3] = &Model{Kind: detect.KindSpecialized, Cost: detect.CostOf(detect.KindSpecialized)}
	specMB := detect.CostOf(detect.KindSpecialized).SizeMB
	if math.Abs(mm.MemoryMB()-specMB) > 1e-9 {
		t.Fatalf("one-model memory %v, want %v", mm.MemoryMB(), specMB)
	}

	mm.DropCluster(3)
	if mm.NumModels() != 0 || len(mm.buffers[3]) != 0 {
		t.Fatal("DropCluster should remove model and buffer")
	}
}

func TestModelName(t *testing.T) {
	var m *Model
	if m.Name() != "none" {
		t.Fatal("nil model name")
	}
	m = &Model{Kind: detect.KindLite}
	if m.Name() != "YOLO-LITE" {
		t.Fatal("model name")
	}
}

func TestStatsFPS(t *testing.T) {
	s := Stats{Frames: 100, SimTime: 2}
	if s.FPS() != 50 {
		t.Fatalf("fps %v", s.FPS())
	}
	if (Stats{}).FPS() != 0 {
		t.Fatal("zero stats fps")
	}
}

// TestOdinEndToEndDriftRecovery runs a compact full-pipeline scenario: a
// day stream forms a cluster and trains models; a night phase triggers
// drift and a second specialist. Uses the fast stub projector and small
// training budgets.
func TestOdinEndToEndDriftRecovery(t *testing.T) {
	scene := synth.DefaultSceneConfig()
	gen := synth.NewSceneGen(6, scene)

	base := detect.NewGridDetector(detect.YOLOConfig(scene.H, scene.W))
	base.Fit(detect.SamplesFromFrames(gen.Dataset(synth.FullData, 60)), 4, 16)

	cfg := DefaultConfig(scene)
	cfg.Cluster = testClusterConfig()
	cfg.Spec.LiteEpochs = 3
	cfg.Spec.SpecEpochs = 4
	cfg.Spec.LabelDelay = 120
	cfg.Spec.MaxTrainFrames = 120
	o := New(cfg, statsProjector{}, base)

	for i := 0; i < 320; i++ {
		o.Process(gen.GenerateSubset(synth.DayData))
	}
	if o.Stats().DriftEvents < 1 {
		t.Fatal("day phase should trigger at least one drift event")
	}
	for i := 0; i < 320; i++ {
		o.Process(gen.GenerateSubset(synth.NightData))
	}
	st := o.Stats()
	if st.DriftEvents < 2 {
		t.Fatalf("night phase should trigger a second drift event, got %d", st.DriftEvents)
	}
	if o.Manager.NumModels() < 2 {
		t.Fatalf("expected ≥2 models, got %d", o.Manager.NumModels())
	}
	// Specialized models must have replaced lites after the label delay.
	specs := 0
	for _, ev := range o.Manager.TrainLog() {
		if ev.Kind == detect.KindSpecialized {
			specs++
		}
	}
	if specs == 0 {
		t.Fatal("no specialized model was trained after the label delay")
	}
	if st.Frames != 640 {
		t.Fatalf("frames %d", st.Frames)
	}
	if st.FPS() <= 0 {
		t.Fatal("simulated FPS should be positive")
	}
	// Memory: resident specialized/lite models, far below the baseline.
	if o.MemoryMB() >= detect.CostOf(detect.KindYOLO).SizeMB*float64(o.Manager.NumModels()) {
		t.Fatalf("memory %v not reduced vs heavyweight models", o.MemoryMB())
	}
}

func TestOdinStaticMode(t *testing.T) {
	scene := synth.DefaultSceneConfig()
	gen := synth.NewSceneGen(7, scene)
	base := detect.NewGridDetector(detect.YOLOConfig(scene.H, scene.W))

	cfg := DefaultConfig(scene)
	cfg.DriftRecovery = false
	o := New(cfg, statsProjector{}, base)
	for i := 0; i < 20; i++ {
		r := o.Process(gen.GenerateSubset(synth.DayData))
		if len(r.ModelsUsed) != 1 || r.ModelsUsed[0] != "YOLO" {
			t.Fatalf("static mode must use only the baseline: %v", r.ModelsUsed)
		}
	}
	if o.Stats().DriftEvents != 0 {
		t.Fatal("static mode must not detect drift")
	}
	// Static FPS equals the heavyweight model's simulated FPS.
	want := detect.CostOf(detect.KindYOLO).FPS
	if math.Abs(o.Stats().FPS()-want) > 0.5 {
		t.Fatalf("static fps %v, want %v", o.Stats().FPS(), want)
	}
}

func TestOdinMaxClustersEvictsModels(t *testing.T) {
	scene := synth.DefaultSceneConfig()
	gen := synth.NewSceneGen(8, scene)
	base := detect.NewGridDetector(detect.YOLOConfig(scene.H, scene.W))
	base.Fit(detect.SamplesFromFrames(gen.Dataset(synth.FullData, 40)), 2, 16)

	cfg := DefaultConfig(scene)
	cfg.Cluster = testClusterConfig()
	cfg.Cluster.MaxClusters = 2
	cfg.Spec.LiteEpochs = 2
	cfg.Spec.SpecEpochs = 2
	cfg.Spec.LabelDelay = 100
	o := New(cfg, statsProjector{}, base)

	for _, sub := range []synth.Subset{synth.DayData, synth.NightData, synth.SnowData} {
		for i := 0; i < 300; i++ {
			o.Process(gen.GenerateSubset(sub))
		}
	}
	if n := len(o.Detector.Clusters.Permanent); n > 2 {
		t.Fatalf("cluster count %d exceeds MaxClusters", n)
	}
	if o.Manager.NumModels() > 2 {
		t.Fatalf("model count %d exceeds MaxClusters", o.Manager.NumModels())
	}
}

// streamTestPipeline builds a deterministic pipeline for the sharding
// tests: seeded generator, fast-trained baseline, stub projector. Two calls
// produce bit-identical pipelines.
func streamTestPipeline(t *testing.T) *Odin {
	t.Helper()
	scene := synth.DefaultSceneConfig()
	gen := synth.NewSceneGen(6, scene)
	base := detect.NewGridDetector(detect.YOLOConfig(scene.H, scene.W))
	base.Fit(detect.SamplesFromFrames(gen.Dataset(synth.FullData, 60)), 4, 16)
	cfg := DefaultConfig(scene)
	cfg.Cluster = testClusterConfig()
	cfg.Spec.LiteEpochs = 3
	cfg.Spec.SpecEpochs = 4
	cfg.Spec.LabelDelay = 120
	cfg.Spec.MaxTrainFrames = 120
	return New(cfg, statsProjector{}, base)
}

// driftTestStream renders a two-phase drifting stream (day → night).
func driftTestStream(n int) []*synth.Frame {
	gen := synth.NewSceneGen(21, synth.DefaultSceneConfig())
	out := make([]*synth.Frame, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out, gen.GenerateSubset(synth.DayData))
	}
	for i := 0; i < n; i++ {
		out = append(out, gen.GenerateSubset(synth.NightData))
	}
	return out
}

// requireResultsEqual asserts two per-frame results are identical —
// detections bit-for-bit, cluster assignments, drift events, models and
// simulated latency.
func requireResultsEqual(t *testing.T, tag string, i int, want, got Result) {
	t.Helper()
	if got.ClusterID != want.ClusterID {
		t.Fatalf("%s frame %d: cluster %d, want %d", tag, i, got.ClusterID, want.ClusterID)
	}
	if (got.Drift == nil) != (want.Drift == nil) {
		t.Fatalf("%s frame %d: drift presence mismatch", tag, i)
	}
	if got.Drift != nil && (got.Drift.Cluster.ID != want.Drift.Cluster.ID || got.Drift.AtPoint != want.Drift.AtPoint) {
		t.Fatalf("%s frame %d: drift event differs", tag, i)
	}
	if len(got.ModelsUsed) != len(want.ModelsUsed) {
		t.Fatalf("%s frame %d: models %v, want %v", tag, i, got.ModelsUsed, want.ModelsUsed)
	}
	for k := range got.ModelsUsed {
		if got.ModelsUsed[k] != want.ModelsUsed[k] {
			t.Fatalf("%s frame %d: models %v, want %v", tag, i, got.ModelsUsed, want.ModelsUsed)
		}
	}
	if got.SimLatency != want.SimLatency {
		t.Fatalf("%s frame %d: sim latency %v, want %v", tag, i, got.SimLatency, want.SimLatency)
	}
	if len(got.Detections) != len(want.Detections) {
		t.Fatalf("%s frame %d: %d detections, want %d", tag, i, len(got.Detections), len(want.Detections))
	}
	for k := range got.Detections {
		if got.Detections[k] != want.Detections[k] {
			t.Fatalf("%s frame %d: detection %d differs: %+v vs %+v", tag, i, k, got.Detections[k], want.Detections[k])
		}
	}
}

// TestProcessBatchMatchesSequential pins the sharded streaming path to the
// sequential one: for 1, 4 and 8 workers, ProcessBatch over a drifting
// stream must yield bit-identical detections, cluster assignments, drift
// events and stats. Run under -race in CI, this also proves the
// inference/drift synchronization split is data-race free.
func TestProcessBatchMatchesSequential(t *testing.T) {
	stream := driftTestStream(300)

	seq := streamTestPipeline(t)
	want := make([]Result, len(stream))
	for i, f := range stream {
		want[i] = seq.Process(f)
	}
	wantStats := seq.Stats()
	if wantStats.DriftEvents < 2 {
		t.Fatalf("setup: stream triggered only %d drift events; sharding paths untested", wantStats.DriftEvents)
	}

	for _, workers := range []int{1, 4, 8} {
		o := streamTestPipeline(t)
		window := 4 * workers
		if window < 8 {
			window = 8
		}
		got := make([]Result, 0, len(stream))
		for lo := 0; lo < len(stream); lo += window {
			hi := lo + window
			if hi > len(stream) {
				hi = len(stream)
			}
			got = append(got, o.ProcessBatch(stream[lo:hi], workers)...)
		}
		for i := range want {
			requireResultsEqual(t, fmt.Sprintf("workers=%d", workers), i, want[i], got[i])
		}
		if st := o.Stats(); st != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, st, wantStats)
		}
	}
}

// TestConcurrentStreamsShareModelSet runs two goroutines Process-ing
// frames against one shared pipeline. The interleaving is nondeterministic
// by nature; the test asserts race-freedom (via -race in CI), that every
// frame is served, and that drift recovery on the shared model set still
// happens.
func TestConcurrentStreamsShareModelSet(t *testing.T) {
	o := streamTestPipeline(t)
	streams := [][]*synth.Frame{driftTestStream(150), driftTestStream(150)}

	var wg sync.WaitGroup
	served := make([]int, len(streams))
	for s := range streams {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for _, f := range streams[s] {
				r := o.Process(f)
				if len(r.ModelsUsed) > 0 {
					served[s]++
				}
			}
		}(s)
	}
	wg.Wait()
	for s, n := range served {
		if n != 300 {
			t.Fatalf("stream %d: served %d of 300 frames", s, n)
		}
	}
	st := o.Stats()
	if st.Frames != 600 {
		t.Fatalf("frames %d, want 600", st.Frames)
	}
	if st.DriftEvents == 0 {
		t.Fatal("shared pipeline should have detected drift")
	}
}
