package core

import (
	"errors"
	"testing"
	"time"

	"odin/internal/detect"
	"odin/internal/synth"
)

// asyncTestPipeline builds a deterministic pipeline with deferred training:
// scheduled jobs land in the returned slice instead of training inline.
func asyncTestPipeline(t *testing.T, sink func([]TrainJob)) (*Odin, *synth.SceneGen) {
	t.Helper()
	scene := synth.DefaultSceneConfig()
	gen := synth.NewSceneGen(6, scene)
	base := detect.NewGridDetector(detect.YOLOConfig(scene.H, scene.W))
	base.Fit(detect.SamplesFromFrames(gen.Dataset(synth.FullData, 60)), 4, 16)
	cfg := DefaultConfig(scene)
	cfg.Cluster = testClusterConfig()
	cfg.Spec.LiteEpochs = 2
	cfg.Spec.SpecEpochs = 2
	cfg.Spec.LabelDelay = 10_000 // keep the specialized job out of the way
	cfg.Spec.MaxTrainFrames = 120
	cfg.AsyncTrain = true
	o := New(cfg, statsProjector{}, base)
	if sink != nil {
		o.SetTrainSink(sink)
	}
	return o, gen
}

// driveToDrift processes frames until the first drift event and returns
// the frame count consumed.
func driveToDrift(t *testing.T, o *Odin, gen *synth.SceneGen, sub synth.Subset) int {
	t.Helper()
	for i := 0; i < 400; i++ {
		if r := o.Process(gen.GenerateSubset(sub)); r.Drift != nil {
			return i + 1
		}
	}
	t.Fatal("no drift event within 400 frames")
	return 0
}

// TestAsyncAdvanceSchedulesInsteadOfTraining is the observe/decide vs
// train split: with async training on, the drift stage returns training
// jobs through the sink instead of training under the lock, the model set
// stays empty (previous-best interim), and frames of the drifted cluster
// are flagged RecoveryPending until FinishJob swaps the model in.
func TestAsyncAdvanceSchedulesInsteadOfTraining(t *testing.T) {
	var jobs []TrainJob
	o, gen := asyncTestPipeline(t, func(js []TrainJob) { jobs = append(jobs, js...) })

	driveToDrift(t, o, gen, synth.DayData)
	if len(jobs) != 1 || jobs[0].Kind != detect.KindLite {
		t.Fatalf("drift should schedule exactly one lite job, got %+v", jobs)
	}
	if n := o.Manager.NumModels(); n != 0 {
		t.Fatalf("async drift trained %d models inline", n)
	}
	if o.PendingRecoveries() != 1 {
		t.Fatalf("pending recoveries %d, want 1", o.PendingRecoveries())
	}
	if len(jobs[0].Frames) == 0 {
		t.Fatal("job carries no seed-frame snapshot")
	}

	// Interim: the drifted cluster's frames keep flowing, served by the
	// baseline and flagged as pending.
	sawPending := false
	for i := 0; i < 20; i++ {
		r := o.Process(gen.GenerateSubset(synth.DayData))
		if r.RecoveryPending {
			sawPending = true
			if r.ModelGen != 0 {
				t.Fatalf("interim frame reports generation %d before any swap", r.ModelGen)
			}
		}
	}
	if !sawPending {
		t.Fatal("no frame was flagged RecoveryPending while the job was outstanding")
	}

	// The swap: build on the snapshot (no lock needed), land it.
	m := o.Manager.BuildModel(jobs[0])
	if m == nil || m.Kind != detect.KindLite {
		t.Fatalf("BuildModel returned %+v", m)
	}
	if !o.FinishJob(jobs[0], m, time.Millisecond, nil) {
		t.Fatal("FinishJob rejected a healthy job")
	}
	if o.PendingRecoveries() != 0 {
		t.Fatalf("pending recoveries %d after swap", o.PendingRecoveries())
	}
	if o.Manager.NumModels() != 1 {
		t.Fatalf("models resident %d after swap", o.Manager.NumModels())
	}
	if o.ModelGen() != 1 {
		t.Fatalf("model generation %d after first swap", o.ModelGen())
	}
	r := o.Process(gen.GenerateSubset(synth.DayData))
	if r.RecoveryPending {
		t.Fatal("frame still flagged pending after the swap landed")
	}
	if r.ModelGen != 1 {
		t.Fatalf("post-swap frame reports generation %d", r.ModelGen)
	}
}

// TestAsyncTrainerFailureRollsBack: a failed training job must leave the
// prior model serving — here the baseline (no model was ever resident for
// the cluster) — and clear the pending flag.
func TestAsyncTrainerFailureRollsBack(t *testing.T) {
	var jobs []TrainJob
	o, gen := asyncTestPipeline(t, func(js []TrainJob) { jobs = append(jobs, js...) })
	driveToDrift(t, o, gen, synth.DayData)

	if o.FinishJob(jobs[0], nil, 0, errors.New("trainer crashed")) {
		t.Fatal("a failed job must not install")
	}
	if o.Manager.NumModels() != 0 || o.ModelGen() != 0 {
		t.Fatalf("failed job mutated the model set: models=%d gen=%d", o.Manager.NumModels(), o.ModelGen())
	}
	if o.PendingRecoveries() != 0 {
		t.Fatal("failed job left the recovery pending")
	}
	r := o.Process(gen.GenerateSubset(synth.DayData))
	if len(r.ModelsUsed) != 1 || r.ModelsUsed[0] != "YOLO" {
		t.Fatalf("rollback should keep the baseline serving, got %v", r.ModelsUsed)
	}
}

// TestAsyncEvictedClusterAbortsSwap: a model whose cluster was evicted
// while it trained must not be swapped in.
func TestAsyncEvictedClusterAbortsSwap(t *testing.T) {
	var jobs []TrainJob
	o, gen := asyncTestPipeline(t, func(js []TrainJob) { jobs = append(jobs, js...) })
	driveToDrift(t, o, gen, synth.DayData)

	m := o.Manager.BuildModel(jobs[0])
	o.mu.Lock()
	o.Manager.DropCluster(jobs[0].ClusterID)
	o.mu.Unlock()
	if o.FinishJob(jobs[0], m, time.Millisecond, nil) {
		t.Fatal("swap must abort for an evicted cluster")
	}
	if o.Manager.NumModels() != 0 {
		t.Fatal("evicted cluster got a model installed")
	}
}

// TestAsyncLiteNeverDowngradesSpecialized: if the specialized model lands
// before a straggling lite job, the lite swap is dropped.
func TestAsyncLiteNeverDowngradesSpecialized(t *testing.T) {
	var jobs []TrainJob
	o, gen := asyncTestPipeline(t, func(js []TrainJob) { jobs = append(jobs, js...) })
	driveToDrift(t, o, gen, synth.DayData)

	lite := jobs[0]
	spec := TrainJob{Kind: detect.KindSpecialized, ClusterID: lite.ClusterID,
		AtFrame: lite.AtFrame, Seed: lite.Seed + 1, Frames: lite.Frames}
	o.mu.Lock()
	o.Manager.outstanding[spec.ClusterID]++ // as MaturePending would
	o.mu.Unlock()

	if !o.FinishJob(spec, o.Manager.BuildModel(spec), time.Millisecond, nil) {
		t.Fatal("specialized swap failed")
	}
	if o.FinishJob(lite, o.Manager.BuildModel(lite), time.Millisecond, nil) {
		t.Fatal("late lite must not overwrite the specialized model")
	}
	if got := o.Manager.Models()[lite.ClusterID].Kind; got != detect.KindSpecialized {
		t.Fatalf("resident model is %v, want specialized", got)
	}
}

// TestAsyncWithoutSinkTrainsSynchronously: async mode with no sink
// installed must still converge — jobs train on the scheduling goroutine
// (off the lock) rather than being dropped.
func TestAsyncWithoutSinkTrainsSynchronously(t *testing.T) {
	o, gen := asyncTestPipeline(t, nil)
	driveToDrift(t, o, gen, synth.DayData)
	if o.Manager.NumModels() != 1 {
		t.Fatalf("sinkless async scheduled %d models, want 1 (synchronous fallback)", o.Manager.NumModels())
	}
	if o.PendingRecoveries() != 0 {
		t.Fatal("sinkless async left recoveries pending")
	}
}

// TestCountBatchMatchesProcessBatch: the pipeline-level COUNT pushdown
// advances drift state identically and produces counts equal to filtering
// the full path's detections.
func TestCountBatchMatchesProcessBatch(t *testing.T) {
	mkFrames := func(gen *synth.SceneGen) []*synth.Frame {
		var frames []*synth.Frame
		for _, sub := range []synth.Subset{synth.DayData, synth.NightData} {
			for i := 0; i < 150; i++ {
				frames = append(frames, gen.GenerateSubset(sub))
			}
		}
		return frames
	}

	full := streamTestPipeline(t)
	genA := synth.NewSceneGen(9, synth.DefaultSceneConfig())
	framesA := mkFrames(genA)
	var wantCounts []int
	const class, minScore = 0, 0.3
	for _, res := range full.ProcessBatch(framesA, 2) {
		wantCounts = append(wantCounts, countKept(res.Detections, class, minScore))
	}
	wantStats := full.Stats()
	if wantStats.DriftEvents == 0 {
		t.Fatal("count-pushdown stream produced no drift; the test would be vacuous")
	}

	counting := streamTestPipeline(t)
	genB := synth.NewSceneGen(9, synth.DefaultSceneConfig())
	framesB := mkFrames(genB)
	got := counting.CountBatch(framesB, 2, class, minScore)
	for i := range wantCounts {
		if got[i] != wantCounts[i] {
			t.Fatalf("frame %d: pushdown count %d, full-path count %d", i, got[i], wantCounts[i])
		}
	}
	if gs := counting.Stats(); gs != wantStats {
		t.Fatalf("pushdown stats diverged: got %+v want %+v", gs, wantStats)
	}
}
