package core

import (
	"time"

	"odin/internal/cluster"
	"odin/internal/detect"
	"odin/internal/synth"
)

// Model is one deployed detection model managed by the MODELMANAGER.
type Model struct {
	Kind      detect.Kind
	Det       *detect.GridDetector
	ClusterID int // -1 for the non-specialized baseline
	Cost      detect.Cost
	CreatedAt int // frame index at creation
	TrainedOn int // number of training frames
}

// Name renders the model for logs and results.
func (m *Model) Name() string {
	if m == nil {
		return "none"
	}
	return m.Kind.String()
}

// SpecializerConfig tunes the §5 drift-recovery behaviour.
type SpecializerConfig struct {
	LiteEpochs int // epochs for the distilled YOLO-Lite student
	SpecEpochs int // epochs for the oracle-labelled YOLO-Specialized model
	Batch      int

	// MaxTrainFrames caps the per-cluster training buffer.
	MaxTrainFrames int
	// LabelDelay is the number of stream frames after a drift event until
	// oracle labels become available (§5.2: lite first, specialized after
	// labels arrive). Zero trains the specialized model immediately.
	LabelDelay int
	// DistillMinScore filters teacher detections used as student labels.
	DistillMinScore float64
}

// DefaultSpecializerConfig returns the configuration used in experiments.
func DefaultSpecializerConfig() SpecializerConfig {
	return SpecializerConfig{
		LiteEpochs:      25,
		SpecEpochs:      40,
		Batch:           16,
		MaxTrainFrames:  400,
		LabelDelay:      600,
		DistillMinScore: 0.4,
	}
}

// TrainEvent records one model-training action for diagnostics and the
// model-generation-time comparisons of §6.3.
type TrainEvent struct {
	Kind      detect.Kind
	ClusterID int
	AtFrame   int
	NumFrames int
	Duration  time.Duration
}

// pendingSpec tracks a cluster awaiting oracle labels.
type pendingSpec struct {
	clusterID int
	readyAt   int
}

// ModelManager owns the baseline model and the per-cluster specialized
// models, and implements the SPECIALIZER (Algorithm 2's model-generation
// half): on drift it immediately distills a YOLO-Lite from the baseline's
// outputs, then swaps in an oracle-trained YOLO-Specialized once labels
// arrive.
type ModelManager struct {
	Cfg   SpecializerConfig
	Scene synth.SceneConfig

	Baseline *Model

	byCluster  map[int]*Model
	mostRecent *Model
	buffers    map[int][]*synth.Frame
	pending    []pendingSpec
	trainLog   []TrainEvent
	seq        uint64
}

// NewModelManager wraps a baseline detector.
func NewModelManager(cfg SpecializerConfig, scene synth.SceneConfig, baseline *detect.GridDetector) *ModelManager {
	var base *Model
	if baseline != nil {
		base = &Model{
			Kind:      detect.KindYOLO,
			Det:       baseline,
			ClusterID: -1,
			Cost:      detect.CostOf(detect.KindYOLO),
		}
	}
	return &ModelManager{
		Cfg:       cfg,
		Scene:     scene,
		Baseline:  base,
		byCluster: make(map[int]*Model),
		buffers:   make(map[int][]*synth.Frame),
	}
}

// Models returns the live cluster→model map (not to be mutated).
func (mm *ModelManager) Models() map[int]*Model { return mm.byCluster }

// MostRecent returns the most recently created model (the −SELECTOR
// ablation policy).
func (mm *ModelManager) MostRecent() *Model { return mm.mostRecent }

// TrainLog returns all training events so far.
func (mm *ModelManager) TrainLog() []TrainEvent { return mm.trainLog }

// NumModels returns the number of resident specialized/lite models.
func (mm *ModelManager) NumModels() int { return len(mm.byCluster) }

// MemoryMB returns the simulated resident memory: the per-cluster models
// once they exist, otherwise the heavyweight baseline.
func (mm *ModelManager) MemoryMB() float64 {
	if len(mm.byCluster) == 0 {
		if mm.Baseline == nil {
			return 0
		}
		return mm.Baseline.Cost.SizeMB
	}
	var total float64
	for _, m := range mm.byCluster {
		total += m.Cost.SizeMB
	}
	return total
}

// AddFrame buffers a frame for its assigned cluster (Algorithm 2 line 5).
func (mm *ModelManager) AddFrame(clusterID int, f *synth.Frame) {
	buf := mm.buffers[clusterID]
	if len(buf) >= mm.Cfg.MaxTrainFrames {
		// Reservoir-free: keep the newest frames by sliding.
		copy(buf, buf[1:])
		buf[len(buf)-1] = f
		mm.buffers[clusterID] = buf
		return
	}
	mm.buffers[clusterID] = append(buf, f)
}

// OnDrift reacts to a cluster promotion: seeds the new cluster's buffer and
// trains an immediate YOLO-Lite student from the baseline's outputs, then
// schedules the oracle-labelled specialized model.
func (mm *ModelManager) OnDrift(ev *cluster.DriftEvent, seeds []*synth.Frame, atFrame int) {
	id := ev.Cluster.ID
	buf := append([]*synth.Frame(nil), seeds...)
	if len(buf) > mm.Cfg.MaxTrainFrames {
		buf = buf[len(buf)-mm.Cfg.MaxTrainFrames:]
	}
	mm.buffers[id] = buf

	if ev.Evicted != nil {
		mm.DropCluster(ev.Evicted.ID)
	}

	// Immediate lite model from teacher outputs — no labels needed.
	if mm.Baseline != nil && len(buf) > 0 && mm.Cfg.LiteEpochs > 0 {
		start := time.Now()
		cfg := detect.LiteConfig(mm.Scene.H, mm.Scene.W)
		cfg.Seed = mm.nextSeed()
		lite := detect.NewGridDetector(cfg)
		samples := detect.DistillSamples(mm.Baseline.Det, buf, mm.Cfg.DistillMinScore)
		lite.Fit(samples, mm.Cfg.LiteEpochs, mm.Cfg.Batch)
		m := &Model{
			Kind:      detect.KindLite,
			Det:       lite,
			ClusterID: id,
			Cost:      detect.CostOf(detect.KindLite),
			CreatedAt: atFrame,
			TrainedOn: len(buf),
		}
		mm.byCluster[id] = m
		mm.mostRecent = m
		mm.trainLog = append(mm.trainLog, TrainEvent{
			Kind: detect.KindLite, ClusterID: id, AtFrame: atFrame,
			NumFrames: len(buf), Duration: time.Since(start),
		})
	}

	mm.pending = append(mm.pending, pendingSpec{clusterID: id, readyAt: atFrame + mm.Cfg.LabelDelay})
	mm.MaturePending(atFrame)
}

// MaturePending trains oracle-labelled specialized models for clusters
// whose label delay has elapsed (§5.2: specialized replaces lite).
func (mm *ModelManager) MaturePending(atFrame int) {
	var remaining []pendingSpec
	for _, p := range mm.pending {
		if atFrame < p.readyAt {
			remaining = append(remaining, p)
			continue
		}
		buf := mm.buffers[p.clusterID]
		if len(buf) == 0 {
			continue // cluster evicted or empty; drop silently
		}
		start := time.Now()
		cfg := detect.SpecializedConfig(mm.Scene.H, mm.Scene.W)
		cfg.Seed = mm.nextSeed()
		spec := detect.NewGridDetector(cfg)
		spec.Fit(detect.SamplesFromFrames(buf), mm.Cfg.SpecEpochs, mm.Cfg.Batch)
		m := &Model{
			Kind:      detect.KindSpecialized,
			Det:       spec,
			ClusterID: p.clusterID,
			Cost:      detect.CostOf(detect.KindSpecialized),
			CreatedAt: atFrame,
			TrainedOn: len(buf),
		}
		mm.byCluster[p.clusterID] = m
		mm.mostRecent = m
		mm.trainLog = append(mm.trainLog, TrainEvent{
			Kind: detect.KindSpecialized, ClusterID: p.clusterID, AtFrame: atFrame,
			NumFrames: len(buf), Duration: time.Since(start),
		})
	}
	mm.pending = remaining
}

// DropCluster removes the model and buffer of an evicted cluster (§6.5
// model-count threshold).
func (mm *ModelManager) DropCluster(clusterID int) {
	delete(mm.byCluster, clusterID)
	delete(mm.buffers, clusterID)
	var remaining []pendingSpec
	for _, p := range mm.pending {
		if p.clusterID != clusterID {
			remaining = append(remaining, p)
		}
	}
	mm.pending = remaining
}

func (mm *ModelManager) nextSeed() uint64 {
	mm.seq++
	return 1000 + mm.seq
}
