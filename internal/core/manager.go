package core

import (
	"time"

	"odin/internal/cluster"
	"odin/internal/detect"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// Model is one deployed detection model managed by the MODELMANAGER.
type Model struct {
	Kind      detect.Kind
	Det       *detect.GridDetector
	ClusterID int // -1 for the non-specialized baseline
	Cost      detect.Cost
	CreatedAt int // frame index at creation
	TrainedOn int // number of training frames
}

// Name renders the model for logs and results.
func (m *Model) Name() string {
	if m == nil {
		return "none"
	}
	return m.Kind.String()
}

// SpecializerConfig tunes the §5 drift-recovery behaviour.
type SpecializerConfig struct {
	LiteEpochs int // epochs for the distilled YOLO-Lite student
	SpecEpochs int // epochs for the oracle-labelled YOLO-Specialized model
	Batch      int

	// MaxTrainFrames caps the per-cluster training buffer.
	MaxTrainFrames int
	// LabelDelay is the number of stream frames after a drift event until
	// oracle labels become available (§5.2: lite first, specialized after
	// labels arrive). Zero trains the specialized model immediately.
	LabelDelay int
	// DistillMinScore filters teacher detections used as student labels.
	DistillMinScore float64

	// DType is the compute backend the recovery models train and serve on
	// (zero value float64; tensor.F32 selects the float32 backend).
	DType tensor.DType
}

// DefaultSpecializerConfig returns the configuration used in experiments.
func DefaultSpecializerConfig() SpecializerConfig {
	return SpecializerConfig{
		LiteEpochs:      25,
		SpecEpochs:      40,
		Batch:           16,
		MaxTrainFrames:  400,
		LabelDelay:      600,
		DistillMinScore: 0.4,
	}
}

// TrainEvent records one model-training action for diagnostics and the
// model-generation-time comparisons of §6.3.
type TrainEvent struct {
	Kind      detect.Kind
	ClusterID int
	AtFrame   int
	NumFrames int
	Duration  time.Duration
}

// pendingSpec tracks a cluster awaiting oracle labels.
type pendingSpec struct {
	clusterID int
	readyAt   int
}

// TrainJob is one deferred specializer-training task: everything needed to
// build a model off the serving path. Frames is a snapshot taken when the
// job was scheduled (under the pipeline lock), so an async trainer never
// races the live per-cluster buffer; Seed is drawn at schedule time, so the
// seed sequence is identical whether training runs inline or deferred.
type TrainJob struct {
	Kind      detect.Kind
	ClusterID int
	AtFrame   int // pipeline frame counter when the job was scheduled
	Seed      uint64
	Frames    []*synth.Frame

	// Sig is the cluster's drift-regime signature at schedule time, stamped
	// under the pipeline lock so a fleet registry can match the job against
	// other cameras' recoveries. Nil when the cluster is already gone or no
	// registry consumer is attached — such jobs always build from scratch.
	Sig *cluster.Signature
}

// ModelManager owns the baseline model and the per-cluster specialized
// models, and implements the SPECIALIZER (Algorithm 2's model-generation
// half): on drift it immediately distills a YOLO-Lite from the baseline's
// outputs, then swaps in an oracle-trained YOLO-Specialized once labels
// arrive.
type ModelManager struct {
	Cfg   SpecializerConfig
	Scene synth.SceneConfig

	Baseline *Model

	byCluster  map[int]*Model
	mostRecent *Model
	buffers    map[int][]*synth.Frame
	pending    []pendingSpec
	trainLog   []TrainEvent
	seq        uint64

	// async defers training: OnDrift/MaturePending return TrainJobs instead
	// of training inline, and a background trainer lands them via install.
	async bool
	// gen is the model-set generation: it increments on every model swap
	// (inline or async), so results can be attributed to the exact model
	// set that served them.
	gen uint64
	// outstanding counts scheduled-but-unlanded jobs per cluster — the
	// "recovery pending" signal surfaced on results while the interim
	// (previous-best) model serves.
	outstanding map[int]int
}

// NewModelManager wraps a baseline detector.
func NewModelManager(cfg SpecializerConfig, scene synth.SceneConfig, baseline *detect.GridDetector) *ModelManager {
	var base *Model
	if baseline != nil {
		base = &Model{
			Kind:      detect.KindYOLO,
			Det:       baseline,
			ClusterID: -1,
			Cost:      detect.CostOf(detect.KindYOLO),
		}
	}
	return &ModelManager{
		Cfg:         cfg,
		Scene:       scene,
		Baseline:    base,
		byCluster:   make(map[int]*Model),
		buffers:     make(map[int][]*synth.Frame),
		outstanding: make(map[int]int),
	}
}

// SetAsync switches the manager between inline training (the default:
// OnDrift/MaturePending train and swap before returning) and deferred
// training (they return TrainJobs for a background trainer). Call before
// serving frames.
func (mm *ModelManager) SetAsync(on bool) { mm.async = on }

// Gen returns the current model-set generation.
func (mm *ModelManager) Gen() uint64 { return mm.gen }

// Outstanding returns the total number of scheduled-but-unlanded jobs.
func (mm *ModelManager) Outstanding() int {
	total := 0
	for _, n := range mm.outstanding {
		total += n
	}
	return total
}

// pendingFor reports whether frames of cluster id are currently served by
// an interim model while a recovery trains: the cluster itself has an
// outstanding job, or the frame is an outlier (id < 0) while any recovery
// is in flight.
func (mm *ModelManager) pendingFor(id int) bool {
	if id < 0 {
		return len(mm.outstanding) > 0
	}
	return mm.outstanding[id] > 0
}

// Models returns the live cluster→model map (not to be mutated).
func (mm *ModelManager) Models() map[int]*Model { return mm.byCluster }

// MostRecent returns the most recently created model (the −SELECTOR
// ablation policy).
func (mm *ModelManager) MostRecent() *Model { return mm.mostRecent }

// TrainLog returns all training events so far.
func (mm *ModelManager) TrainLog() []TrainEvent { return mm.trainLog }

// NumModels returns the number of resident specialized/lite models.
func (mm *ModelManager) NumModels() int { return len(mm.byCluster) }

// MemoryMB returns the simulated resident memory: the per-cluster models
// once they exist, otherwise the heavyweight baseline.
func (mm *ModelManager) MemoryMB() float64 {
	if len(mm.byCluster) == 0 {
		if mm.Baseline == nil {
			return 0
		}
		return mm.Baseline.Cost.SizeMB
	}
	var total float64
	for _, m := range mm.byCluster {
		total += m.Cost.SizeMB
	}
	return total
}

// AddFrame buffers a frame for its assigned cluster (Algorithm 2 line 5).
func (mm *ModelManager) AddFrame(clusterID int, f *synth.Frame) {
	buf := mm.buffers[clusterID]
	if len(buf) >= mm.Cfg.MaxTrainFrames {
		// Reservoir-free: keep the newest frames by sliding.
		copy(buf, buf[1:])
		buf[len(buf)-1] = f
		mm.buffers[clusterID] = buf
		return
	}
	mm.buffers[clusterID] = append(buf, f)
}

// OnDrift reacts to a cluster promotion: seeds the new cluster's buffer,
// arranges an immediate YOLO-Lite student from the baseline's outputs, and
// schedules the oracle-labelled specialized model. Inline mode trains and
// swaps before returning (nil result); async mode returns the training
// jobs for a background trainer and keeps serving with the previous-best
// model in the interim.
func (mm *ModelManager) OnDrift(ev *cluster.DriftEvent, seeds []*synth.Frame, atFrame int) []TrainJob {
	id := ev.Cluster.ID
	buf := append([]*synth.Frame(nil), seeds...)
	if len(buf) > mm.Cfg.MaxTrainFrames {
		buf = buf[len(buf)-mm.Cfg.MaxTrainFrames:]
	}
	mm.buffers[id] = buf

	if ev.Evicted != nil {
		mm.DropCluster(ev.Evicted.ID)
	}

	var jobs []TrainJob
	// Immediate lite model from teacher outputs — no labels needed.
	if mm.Baseline != nil && len(buf) > 0 && mm.Cfg.LiteEpochs > 0 {
		jobs = mm.dispatch(jobs, TrainJob{
			Kind: detect.KindLite, ClusterID: id, AtFrame: atFrame,
			Seed: mm.nextSeed(), Frames: mm.snapshot(buf),
		})
	}

	mm.pending = append(mm.pending, pendingSpec{clusterID: id, readyAt: atFrame + mm.Cfg.LabelDelay})
	return append(jobs, mm.MaturePending(atFrame)...)
}

// MaturePending arranges oracle-labelled specialized models for clusters
// whose label delay has elapsed (§5.2: specialized replaces lite) — inline
// or as returned jobs, matching OnDrift.
func (mm *ModelManager) MaturePending(atFrame int) []TrainJob {
	var jobs []TrainJob
	var remaining []pendingSpec
	for _, p := range mm.pending {
		if atFrame < p.readyAt {
			remaining = append(remaining, p)
			continue
		}
		buf := mm.buffers[p.clusterID]
		if len(buf) == 0 {
			continue // cluster evicted or empty; drop silently
		}
		jobs = mm.dispatch(jobs, TrainJob{
			Kind: detect.KindSpecialized, ClusterID: p.clusterID, AtFrame: atFrame,
			Seed: mm.nextSeed(), Frames: mm.snapshot(buf),
		})
	}
	mm.pending = remaining
	return jobs
}

// snapshot freezes a training buffer for a deferred job. Inline training
// consumes the buffer before the lock is released, so only async mode pays
// for the copy (the live buffer slides in place under AddFrame).
func (mm *ModelManager) snapshot(buf []*synth.Frame) []*synth.Frame {
	if !mm.async {
		return buf
	}
	return append([]*synth.Frame(nil), buf...)
}

// dispatch either trains a job inline (swap before returning) or queues it
// for the background trainer, bumping the cluster's outstanding count.
func (mm *ModelManager) dispatch(jobs []TrainJob, job TrainJob) []TrainJob {
	if mm.async {
		mm.outstanding[job.ClusterID]++
		return append(jobs, job)
	}
	start := time.Now()
	mm.install(job, mm.BuildModel(job), time.Since(start))
	return jobs
}

// BuildModel trains the job's model from scratch. It reads only immutable
// manager state (config, scene, the frozen baseline detector) and the job's
// frame snapshot, so it is safe to run outside the pipeline lock — the
// async trainer's whole point. The swap happens separately via
// Odin.FinishJob.
func (mm *ModelManager) BuildModel(job TrainJob) *Model {
	return mm.buildModel(job, nil)
}

// BuildModelFrom trains the job's model warm-started from another model's
// weights — the fleet-recovery path where a regime-adjacent model from a
// correlated camera seeds training. The warm model must be the same kind;
// on kind or architecture mismatch training silently falls back to scratch
// (the warm start is an optimisation, never a correctness requirement). A
// successful weight copy halves the epoch budget: the borrowed weights are
// already near a regime optimum, and the shortened fit is where the fleet's
// aggregate recovery cost drops. Like BuildModel, safe outside the lock.
func (mm *ModelManager) BuildModelFrom(job TrainJob, from *Model) *Model {
	if from == nil || from.Det == nil || from.Kind != job.Kind {
		from = nil
	}
	return mm.buildModel(job, from)
}

func (mm *ModelManager) buildModel(job TrainJob, warm *Model) *Model {
	switch job.Kind {
	case detect.KindLite:
		cfg := detect.LiteConfig(mm.Scene.H, mm.Scene.W)
		cfg.Seed = job.Seed
		cfg.DType = mm.Cfg.DType
		lite := detect.NewGridDetector(cfg)
		epochs := mm.Cfg.LiteEpochs
		if warm != nil && lite.CopyWeightsFrom(warm.Det) == nil {
			epochs = (epochs + 1) / 2
		}
		samples := detect.DistillSamples(mm.Baseline.Det, job.Frames, mm.Cfg.DistillMinScore)
		lite.Fit(samples, epochs, mm.Cfg.Batch)
		return &Model{
			Kind: detect.KindLite, Det: lite, ClusterID: job.ClusterID,
			Cost: detect.CostOf(detect.KindLite), CreatedAt: job.AtFrame, TrainedOn: len(job.Frames),
		}
	case detect.KindSpecialized:
		cfg := detect.SpecializedConfig(mm.Scene.H, mm.Scene.W)
		cfg.Seed = job.Seed
		cfg.DType = mm.Cfg.DType
		spec := detect.NewGridDetector(cfg)
		epochs := mm.Cfg.SpecEpochs
		if warm != nil && spec.CopyWeightsFrom(warm.Det) == nil {
			epochs = (epochs + 1) / 2
		}
		spec.Fit(detect.SamplesFromFrames(job.Frames), epochs, mm.Cfg.Batch)
		return &Model{
			Kind: detect.KindSpecialized, Det: spec, ClusterID: job.ClusterID,
			Cost: detect.CostOf(detect.KindSpecialized), CreatedAt: job.AtFrame, TrainedOn: len(job.Frames),
		}
	}
	return nil
}

// install swaps a trained model in and stamps the bookkeeping: the
// cluster→model pointer, the most-recent pointer, the generation counter
// and the train log. Caller holds the pipeline lock.
func (mm *ModelManager) install(job TrainJob, m *Model, dur time.Duration) {
	mm.byCluster[job.ClusterID] = m
	mm.mostRecent = m
	mm.gen++
	mm.trainLog = append(mm.trainLog, TrainEvent{
		Kind: job.Kind, ClusterID: job.ClusterID, AtFrame: job.AtFrame,
		NumFrames: len(job.Frames), Duration: dur,
	})
}

// finishJob lands (or rolls back) a deferred job under the pipeline lock:
// the outstanding count always drops, and the swap is skipped — leaving the
// prior model serving — when training failed, the cluster was evicted
// mid-training, or a specialized model already superseded a late lite.
func (mm *ModelManager) finishJob(job TrainJob, m *Model, dur time.Duration, failed bool) bool {
	if n := mm.outstanding[job.ClusterID]; n <= 1 {
		delete(mm.outstanding, job.ClusterID)
	} else {
		mm.outstanding[job.ClusterID] = n - 1
	}
	if failed || m == nil {
		return false
	}
	if _, live := mm.buffers[job.ClusterID]; !live {
		return false // cluster evicted while the job trained
	}
	if cur := mm.byCluster[job.ClusterID]; cur != nil &&
		cur.Kind == detect.KindSpecialized && job.Kind == detect.KindLite {
		return false // never downgrade a landed specialized model
	}
	mm.install(job, m, dur)
	return true
}

// DropCluster removes the model and buffer of an evicted cluster (§6.5
// model-count threshold).
func (mm *ModelManager) DropCluster(clusterID int) {
	delete(mm.byCluster, clusterID)
	delete(mm.buffers, clusterID)
	var remaining []pendingSpec
	for _, p := range mm.pending {
		if p.clusterID != clusterID {
			remaining = append(remaining, p)
		}
	}
	mm.pending = remaining
}

func (mm *ModelManager) nextSeed() uint64 {
	mm.seq++
	return 1000 + mm.seq
}
