package core

import (
	"fmt"

	"odin/internal/cluster"
	"odin/internal/detect"
	"odin/internal/gan"
	"odin/internal/synth"
)

// ModelState is a value snapshot of one deployed recovery model. Cost is
// not stored — it is a pure function of the kind and recomputed on restore.
type ModelState struct {
	Kind      detect.Kind
	ClusterID int
	CreatedAt int
	TrainedOn int
	Det       detect.State
}

// CaptureModel snapshots a model.
func CaptureModel(m *Model) ModelState {
	return ModelState{
		Kind:      m.Kind,
		ClusterID: m.ClusterID,
		CreatedAt: m.CreatedAt,
		TrainedOn: m.TrainedOn,
		Det:       m.Det.State(),
	}
}

// ModelFromState rebuilds a model from a snapshot.
func ModelFromState(st ModelState) (*Model, error) {
	det, err := detect.FromState(st.Det)
	if err != nil {
		return nil, fmt.Errorf("core: restore model for cluster %d: %w", st.ClusterID, err)
	}
	return &Model{
		Kind:      st.Kind,
		Det:       det,
		ClusterID: st.ClusterID,
		Cost:      detect.CostOf(st.Kind),
		CreatedAt: st.CreatedAt,
		TrainedOn: st.TrainedOn,
	}, nil
}

// PendingState mirrors one label-delay entry (a drifted cluster whose
// specialized build is scheduled for a future frame index).
type PendingState struct {
	ClusterID int
	ReadyAt   int
}

// ManagerState is a value snapshot of the model manager's recoverable
// state: the deployed per-cluster models, the ∆-BM most-recent pointer, the
// per-cluster training frame buffers, the label-delay queue and the
// seed/generation counters. The baseline model is not stored here — the
// facade serializes the baseline detector once and the manager is rebuilt
// around it. The training log (diagnostics) and outstanding-job counters
// are not captured: snapshots are taken at trainer quiescence, where no
// jobs are in flight.
type ManagerState struct {
	Models []ModelState
	// MostRecentCluster is the cluster ID the ∆-BM "most recent" pointer
	// aliases, or -1 when unset. When the pointer references a model that
	// is no longer deployed for its cluster, MostRecentOwn carries its full
	// state instead.
	MostRecentCluster int
	MostRecentOwn     *ModelState
	Buffers           map[int][]*synth.Frame
	Pending           []PendingState
	Seq               uint64
	Gen               uint64
}

// OutlierState is one buffered outlier frame with its latent projection.
type OutlierState struct {
	Frame  *synth.Frame
	Latent []float64
}

// PipelineState is the full recoverable state of one Odin pipeline:
// cluster set, model manager, the outlier ring and the serving statistics.
type PipelineState struct {
	Clusters cluster.SetState
	Manager  ManagerState
	Outliers []OutlierState
	Stats    Stats
}

// Snapshot captures the pipeline's recoverable state under the pipeline
// lock. The caller must ensure training quiescence first (no in-flight
// async jobs): outstanding-job counters are not captured, so a snapshot
// taken mid-recovery would silently drop the pending swap.
func (o *Odin) Snapshot() PipelineState {
	o.mu.Lock()
	defer o.mu.Unlock()

	mm := o.Manager
	st := PipelineState{
		Clusters: o.Detector.Clusters.State(),
		Manager: ManagerState{
			MostRecentCluster: -1,
			Seq:               mm.seq,
			Gen:               mm.gen,
		},
		Stats: o.stats,
	}
	// Deterministic order: ascending cluster ID.
	for _, id := range sortedKeys(mm.byCluster) {
		st.Manager.Models = append(st.Manager.Models, CaptureModel(mm.byCluster[id]))
	}
	if mr := mm.mostRecent; mr != nil {
		if mm.byCluster[mr.ClusterID] == mr {
			st.Manager.MostRecentCluster = mr.ClusterID
		} else {
			own := CaptureModel(mr)
			st.Manager.MostRecentOwn = &own
		}
	}
	if len(mm.buffers) > 0 {
		st.Manager.Buffers = make(map[int][]*synth.Frame, len(mm.buffers))
		for id, frames := range mm.buffers {
			st.Manager.Buffers[id] = append([]*synth.Frame(nil), frames...)
		}
	}
	for _, p := range mm.pending {
		st.Manager.Pending = append(st.Manager.Pending, PendingState{ClusterID: p.clusterID, ReadyAt: p.readyAt})
	}
	for _, b := range o.outlierRing {
		st.Outliers = append(st.Outliers, OutlierState{
			Frame:  b.frame,
			Latent: append([]float64(nil), b.latent...),
		})
	}
	return st
}

// FromSnapshot rebuilds a pipeline that continues bit-identically from a
// snapshot. cfg supplies the serving topology (async mode, specializer
// schedule, drift-recovery switch) exactly as New does; the snapshot
// supplies the learned state. cfg.Cluster is overridden by the snapshot's
// cluster config so routing geometry always matches the restored set.
func FromSnapshot(cfg Config, proj gan.Projector, baseline *detect.GridDetector, st PipelineState) (*Odin, error) {
	cfg.Cluster = st.Clusters.Config
	o := New(cfg, proj, baseline)

	set, err := cluster.SetFromState(st.Clusters)
	if err != nil {
		return nil, err
	}
	o.Detector.Clusters = set

	mm := o.Manager
	for _, ms := range st.Manager.Models {
		m, err := ModelFromState(ms)
		if err != nil {
			return nil, err
		}
		mm.byCluster[m.ClusterID] = m
	}
	switch {
	case st.Manager.MostRecentOwn != nil:
		m, err := ModelFromState(*st.Manager.MostRecentOwn)
		if err != nil {
			return nil, err
		}
		mm.mostRecent = m
	case st.Manager.MostRecentCluster >= 0:
		m, ok := mm.byCluster[st.Manager.MostRecentCluster]
		if !ok {
			return nil, fmt.Errorf("core: restore: most-recent pointer references missing cluster %d", st.Manager.MostRecentCluster)
		}
		mm.mostRecent = m
	}
	for id, frames := range st.Manager.Buffers {
		mm.buffers[id] = append([]*synth.Frame(nil), frames...)
	}
	for _, p := range st.Manager.Pending {
		mm.pending = append(mm.pending, pendingSpec{clusterID: p.ClusterID, readyAt: p.ReadyAt})
	}
	mm.seq = st.Manager.Seq
	mm.gen = st.Manager.Gen

	for _, b := range st.Outliers {
		o.outlierRing = append(o.outlierRing, bufferedOutlier{
			frame:  b.Frame,
			latent: append([]float64(nil), b.Latent...),
		})
	}
	o.stats = st.Stats
	return o, nil
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(m map[int]*Model) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
