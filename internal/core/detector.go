// Package core implements the ODIN system of §3: the drift DETECTOR
// (DA-GAN latent projection + ∆-band clustering), the SPECIALIZER
// (per-cluster model generation, lite-then-specialized life cycle), the
// SELECTOR (KNN-U / KNN-W / ∆-BM ensemble policies) and the MODELMANAGER
// binding them into the end-to-end pipeline.
package core

import (
	"odin/internal/cluster"
	"odin/internal/gan"
	"odin/internal/synth"
)

// FrameEncoder converts a frame image to the flattened vector the projector
// was trained on. The default downsamples by 2 to the manifold resolution.
type FrameEncoder func(*synth.Image) []float64

// DownsampleEncoder returns an encoder that downsamples frames by factor
// before flattening.
func DownsampleEncoder(factor int) FrameEncoder {
	return func(im *synth.Image) []float64 {
		if factor <= 1 {
			return im.Flat()
		}
		return im.Downsample(factor).Flat()
	}
}

// EncodedDim returns the encoder output dimensionality for a scene config.
func EncodedDim(cfg synth.SceneConfig, factor int) int {
	if factor <= 1 {
		return 3 * cfg.H * cfg.W
	}
	return 3 * (cfg.H / factor) * (cfg.W / factor)
}

// Detector is ODIN's drift DETECTOR (§4): it projects frames into the
// DA-GAN latent space and routes the projections through the online
// ∆-band cluster set.
type Detector struct {
	Proj     gan.Projector
	Clusters *cluster.Set
	Encode   FrameEncoder
}

// NewDetector assembles a drift detector from a trained projector.
func NewDetector(proj gan.Projector, cfg cluster.Config, enc FrameEncoder) *Detector {
	if enc == nil {
		enc = DownsampleEncoder(2)
	}
	return &Detector{Proj: proj, Clusters: cluster.NewSet(cfg), Encode: enc}
}

// Observation is the outcome of processing one frame through the detector.
type Observation struct {
	Latent     []float64
	Assignment cluster.Assignment
}

// Observe projects a frame and updates the cluster set.
func (d *Detector) Observe(img *synth.Image) Observation {
	z := d.Proj.Project(d.Encode(img))
	return Observation{Latent: z, Assignment: d.Clusters.Observe(z)}
}

// Project returns a frame's latent without updating cluster state (used by
// selection-only paths).
func (d *Detector) Project(img *synth.Image) []float64 {
	return d.Proj.Project(d.Encode(img))
}

// TrainDAGAN is a convenience that trains a DA-GAN on held-out frames (the
// paper's ~20K unlabeled bootstrap images, §6.2) and returns it.
func TrainDAGAN(frames []*synth.Frame, enc FrameEncoder, cfg gan.Config, epochs, batch int) *gan.DAGAN {
	rows := make([][]float64, len(frames))
	for i, f := range frames {
		rows[i] = enc(f.Image)
	}
	dg := gan.NewDAGAN(cfg)
	dg.Fit(rows, epochs, batch)
	return dg
}
