package core

import (
	"odin/internal/detect"
	"odin/internal/gan"
	"odin/internal/obs"
	"odin/internal/qos"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// This file is the sharded streaming path (ROADMAP "Sharded streaming"):
// ProcessBatch runs a window of frames through the pipeline with the pure
// stages fanned out across a bounded worker pool and the mutating drift
// stage serialized in frame order. Two properties make it fast without
// sacrificing reproducibility:
//
//  1. Stage sharding. Projection and detection are pure (see Odin's
//     concurrency model), so frames split across tensor.ParallelWorkers;
//     each index writes only its own slot, which re-orders results back to
//     frame order for free.
//  2. Same-model batching. Frames whose Plan selected the same single
//     model run as one DetectBatch — batch-level im2col turns N small
//     matmuls into one large one (the PR-1 substrate's 2.3× conv win).
//     The matmul kernels accumulate each output element over k in a fixed
//     order regardless of batch width, so batched detection is
//     bit-identical to per-frame detection.
//
// The result: ProcessBatch(frames, w) equals the sequence of Process(f)
// calls exactly — detections, cluster assignments, drift events and even
// the simulated-time stats — for every worker count.

// ProcessBatch processes frames in stream order with the project and
// detect stages sharded across at most workers concurrent executors.
// Results are identical to calling Process on each frame in order.
func (o *Odin) ProcessBatch(frames []*synth.Frame, workers int) []Result {
	return o.ProcessBatchFid(frames, workers, nil)
}

// ProcessBatchFid is ProcessBatch with a per-frame fidelity assignment
// from the QoS layer. A nil fids slice is the legacy full-fidelity path,
// bit-identical to ProcessBatch before fidelity existed. Otherwise
// fids[i] governs frames[i]: Skip frames bypass projection, drift
// bookkeeping and detection entirely (their Result carries only the
// fidelity stamp and model generation); Count frames run the
// count-pushdown execute (Result.Count, no Detections); Lite and Full
// frames run detection, Lite on the plan's single cheapest model. The
// result slice always has one entry per input frame, in order — the QoS
// layer's zero-silent-loss contract.
func (o *Odin) ProcessBatchFid(frames []*synth.Frame, workers int, fids []qos.Fidelity) []Result {
	n := len(frames)
	if n == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}

	// Stages 1+2 — project (parallel, pure), then advance (serialized, in
	// frame order, one lock acquisition for the whole window).
	plans := o.advanceAllFid(frames, workers, fids)

	// Stage 3 — execute (parallel, pure): group single-model frames by
	// model for batched detection, shard the ensemble frames. Count-only
	// plans take the counting kernel instead.
	ob := o.observer()
	t0 := ob.Now()
	results := make([]Result, n)
	if fids == nil {
		o.executeBatched(frames, plans, results, workers, nil)
	} else {
		var detIdx, cntIdx []int
		for i := range plans {
			if plans[i].countOnly {
				cntIdx = append(cntIdx, i)
			} else {
				detIdx = append(detIdx, i)
			}
		}
		o.executeBatched(frames, plans, results, workers, detIdx)
		o.executeCount(frames, plans, results, workers, cntIdx)
	}
	ob.Stage(obs.StageDetect, t0, n)

	// Simulated time accumulates in frame order so the sharded and
	// sequential paths report bit-identical stats.
	o.mu.Lock()
	for i := range results {
		o.stats.SimTime += results[i].SimLatency
	}
	o.mu.Unlock()
	return results
}

// advanceAll runs the batched front half shared by ProcessBatch and
// CountBatch: every frame's latent (sharded), then the serialized drift
// stage in frame order under one lock acquisition. Training jobs the
// window scheduled (async mode) are handed off outside the lock. Keeping
// this in one place is what guarantees the count-only path advances
// cluster evolution, drift events, stats and training jobs identically to
// the full path.
func (o *Odin) advanceAll(frames []*synth.Frame, workers int) []Plan {
	return o.advanceAllFid(frames, workers, nil)
}

// advanceAllFid is advanceAll with a per-frame fidelity assignment (nil =
// all full). Skip frames are excluded from projection and short-circuit
// inside advanceLocked, so a shed frame costs only its result slot.
func (o *Odin) advanceAllFid(frames []*synth.Frame, workers int, fids []qos.Fidelity) []Plan {
	ob := o.observer()
	t0 := ob.Now()
	latents := o.projectAllFid(frames, workers, fids)
	ob.Stage(obs.StageProject, t0, len(frames))
	plans := make([]Plan, len(frames))
	t0 = ob.Now()
	o.mu.Lock()
	for i, f := range frames {
		fid := qos.Full
		if fids != nil {
			fid = fids[i]
		}
		plans[i] = o.advanceLocked(f, latents[i], fid)
	}
	jobs := o.pendingJobs
	o.pendingJobs = nil
	o.mu.Unlock()
	// The advance sample includes lock wait by design: this is the
	// pipeline's single serialization point, and queueing behind it is
	// exactly what the stage metric should surface.
	ob.Stage(obs.StageAdvance, t0, len(frames))
	o.submitJobs(jobs)
	return plans
}

// groupSingleModel partitions a window's plans for the execute stage:
// frames whose plan selected exactly one detecting model, grouped by that
// model (batched detection), and the rest (ensembles, model-less frames)
// for per-frame execution. A non-nil idx restricts the partition to that
// subset of plan indices (the fidelity-split execute paths).
func groupSingleModel(plans []Plan, idx []int) (groups map[*Model][]int, rest []int) {
	groups = make(map[*Model][]int)
	add := func(i int) {
		p := plans[i]
		if len(p.models) == 1 && p.models[0].Model != nil && p.models[0].Model.Det != nil {
			m := p.models[0].Model
			groups[m] = append(groups[m], i)
		} else {
			rest = append(rest, i)
		}
	}
	if idx == nil {
		for i := range plans {
			add(i)
		}
	} else {
		for _, i := range idx {
			add(i)
		}
	}
	return groups, rest
}

// projectAll computes every frame's latent. Encoding shards across the
// worker pool; the projector encodes the whole window in one forward pass
// when it supports batching (the DA-GAN does), otherwise per-frame
// projection shards too.
func (o *Odin) projectAll(frames []*synth.Frame, workers int) [][]float64 {
	n := len(frames)
	latents := make([][]float64, n)
	if !o.Cfg.DriftRecovery {
		return latents // static mode projects nothing
	}
	bp, batched := o.Detector.Proj.(gan.BatchProjector)
	if batched && n > 1 {
		rows := make([][]float64, n)
		tensor.ParallelWorkers(n, workers, func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				rows[i] = o.Detector.Encode(frames[i].Image)
			}
		})
		return bp.ProjectBatch(rows)
	}
	tensor.ParallelWorkers(n, workers, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			latents[i] = o.Detector.Project(frames[i].Image)
		}
	})
	return latents
}

// projectAllFid is projectAll minus the Skip frames: shed frames never
// reach the projector. Excluding rows from the batched projection is safe
// for bit-identity of the remaining frames because the matmul kernels
// accumulate each output element in a fixed order regardless of batch
// width. nil fids delegates to the untouched legacy path.
func (o *Odin) projectAllFid(frames []*synth.Frame, workers int, fids []qos.Fidelity) [][]float64 {
	if fids == nil {
		return o.projectAll(frames, workers)
	}
	n := len(frames)
	latents := make([][]float64, n)
	if !o.Cfg.DriftRecovery {
		return latents
	}
	idx := make([]int, 0, n)
	for i := range frames {
		if fids[i] != qos.Skip {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return latents
	}
	bp, batched := o.Detector.Proj.(gan.BatchProjector)
	if batched && len(idx) > 1 {
		rows := make([][]float64, len(idx))
		tensor.ParallelWorkers(len(idx), workers, func(k0, k1 int) {
			for k := k0; k < k1; k++ {
				rows[k] = o.Detector.Encode(frames[idx[k]].Image)
			}
		})
		out := bp.ProjectBatch(rows)
		for k, i := range idx {
			latents[i] = out[k]
		}
		return latents
	}
	tensor.ParallelWorkers(len(idx), workers, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			latents[idx[k]] = o.Detector.Project(frames[idx[k]].Image)
		}
	})
	return latents
}

// executeBatched fills results[i] = Execute(frames[i], plans[i]), batching
// frames that selected the same single model through DetectBatch and
// sharding the rest. A non-nil idx restricts execution to that subset
// (nil = every plan).
func (o *Odin) executeBatched(frames []*synth.Frame, plans []Plan, results []Result, workers int, idx []int) {
	groups, rest := groupSingleModel(plans, idx)

	for m, idx := range groups {
		if len(idx) == 1 {
			rest = append(rest, idx[0])
			continue
		}
		imgs := make([]*synth.Image, len(idx))
		for k, i := range idx {
			imgs[k] = frames[i].Image
		}
		dets := m.Det.DetectBatch(imgs)
		for k, i := range idx {
			res := plans[i].res
			res.Detections = dets[k]
			res.ModelsUsed = append(res.ModelsUsed, m.Name())
			if m.Cost.FPS > 0 {
				res.SimLatency += 1 / m.Cost.FPS
			}
			results[i] = res
		}
	}

	tensor.ParallelWorkers(len(rest), workers, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			i := rest[k]
			results[i] = o.Execute(frames[i], plans[i])
		}
	})
}

// executeCount fills results[i] for the count-pushdown plans in idx: the
// plan's single model runs its allocation-free counting kernel (class -1,
// minScore 0, so Count equals the length of the detections the same model
// would have materialised), ensemble or model-less stragglers fall back
// to a full execute whose output is counted and discarded.
func (o *Odin) executeCount(frames []*synth.Frame, plans []Plan, results []Result, workers int, idx []int) {
	if len(idx) == 0 {
		return
	}
	groups, rest := groupSingleModel(plans, idx)
	for m, gi := range groups {
		imgs := make([]*synth.Image, len(gi))
		for k, i := range gi {
			imgs[k] = frames[i].Image
		}
		cs := m.Det.CountBatch(imgs, -1, 0)
		for k, i := range gi {
			res := plans[i].res
			res.Count = cs[k]
			res.ModelsUsed = append(res.ModelsUsed, m.Name())
			if m.Cost.FPS > 0 {
				res.SimLatency += 1 / m.Cost.FPS
			}
			results[i] = res
		}
	}
	tensor.ParallelWorkers(len(rest), workers, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			i := rest[k]
			res := o.Execute(frames[i], plans[i])
			res.Count = countKept(res.Detections, -1, 0)
			res.Detections = nil
			results[i] = res
		}
	})
}

var _ detect.BatchDetector = (*detect.GridDetector)(nil)
