package core

import (
	"odin/internal/detect"
	"odin/internal/gan"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// This file is the sharded streaming path (ROADMAP "Sharded streaming"):
// ProcessBatch runs a window of frames through the pipeline with the pure
// stages fanned out across a bounded worker pool and the mutating drift
// stage serialized in frame order. Two properties make it fast without
// sacrificing reproducibility:
//
//  1. Stage sharding. Projection and detection are pure (see Odin's
//     concurrency model), so frames split across tensor.ParallelWorkers;
//     each index writes only its own slot, which re-orders results back to
//     frame order for free.
//  2. Same-model batching. Frames whose Plan selected the same single
//     model run as one DetectBatch — batch-level im2col turns N small
//     matmuls into one large one (the PR-1 substrate's 2.3× conv win).
//     The matmul kernels accumulate each output element over k in a fixed
//     order regardless of batch width, so batched detection is
//     bit-identical to per-frame detection.
//
// The result: ProcessBatch(frames, w) equals the sequence of Process(f)
// calls exactly — detections, cluster assignments, drift events and even
// the simulated-time stats — for every worker count.

// ProcessBatch processes frames in stream order with the project and
// detect stages sharded across at most workers concurrent executors.
// Results are identical to calling Process on each frame in order.
func (o *Odin) ProcessBatch(frames []*synth.Frame, workers int) []Result {
	n := len(frames)
	if n == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}

	// Stages 1+2 — project (parallel, pure), then advance (serialized, in
	// frame order, one lock acquisition for the whole window).
	plans := o.advanceAll(frames, workers)

	// Stage 3 — execute (parallel, pure): group single-model frames by
	// model for batched detection, shard the ensemble frames.
	results := make([]Result, n)
	o.executeBatched(frames, plans, results, workers)

	// Simulated time accumulates in frame order so the sharded and
	// sequential paths report bit-identical stats.
	o.mu.Lock()
	for i := range results {
		o.stats.SimTime += results[i].SimLatency
	}
	o.mu.Unlock()
	return results
}

// advanceAll runs the batched front half shared by ProcessBatch and
// CountBatch: every frame's latent (sharded), then the serialized drift
// stage in frame order under one lock acquisition. Training jobs the
// window scheduled (async mode) are handed off outside the lock. Keeping
// this in one place is what guarantees the count-only path advances
// cluster evolution, drift events, stats and training jobs identically to
// the full path.
func (o *Odin) advanceAll(frames []*synth.Frame, workers int) []Plan {
	latents := o.projectAll(frames, workers)
	plans := make([]Plan, len(frames))
	o.mu.Lock()
	for i, f := range frames {
		plans[i] = o.advanceLocked(f, latents[i])
	}
	jobs := o.pendingJobs
	o.pendingJobs = nil
	o.mu.Unlock()
	o.submitJobs(jobs)
	return plans
}

// groupSingleModel partitions a window's plans for the execute stage:
// frames whose plan selected exactly one detecting model, grouped by that
// model (batched detection), and the rest (ensembles, model-less frames)
// for per-frame execution.
func groupSingleModel(plans []Plan) (groups map[*Model][]int, rest []int) {
	groups = make(map[*Model][]int)
	for i, p := range plans {
		if len(p.models) == 1 && p.models[0].Model != nil && p.models[0].Model.Det != nil {
			m := p.models[0].Model
			groups[m] = append(groups[m], i)
		} else {
			rest = append(rest, i)
		}
	}
	return groups, rest
}

// projectAll computes every frame's latent. Encoding shards across the
// worker pool; the projector encodes the whole window in one forward pass
// when it supports batching (the DA-GAN does), otherwise per-frame
// projection shards too.
func (o *Odin) projectAll(frames []*synth.Frame, workers int) [][]float64 {
	n := len(frames)
	latents := make([][]float64, n)
	if !o.Cfg.DriftRecovery {
		return latents // static mode projects nothing
	}
	bp, batched := o.Detector.Proj.(gan.BatchProjector)
	if batched && n > 1 {
		rows := make([][]float64, n)
		tensor.ParallelWorkers(n, workers, func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				rows[i] = o.Detector.Encode(frames[i].Image)
			}
		})
		return bp.ProjectBatch(rows)
	}
	tensor.ParallelWorkers(n, workers, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			latents[i] = o.Detector.Project(frames[i].Image)
		}
	})
	return latents
}

// executeBatched fills results[i] = Execute(frames[i], plans[i]), batching
// frames that selected the same single model through DetectBatch and
// sharding the rest.
func (o *Odin) executeBatched(frames []*synth.Frame, plans []Plan, results []Result, workers int) {
	groups, rest := groupSingleModel(plans)

	for m, idx := range groups {
		if len(idx) == 1 {
			rest = append(rest, idx[0])
			continue
		}
		imgs := make([]*synth.Image, len(idx))
		for k, i := range idx {
			imgs[k] = frames[i].Image
		}
		dets := m.Det.DetectBatch(imgs)
		for k, i := range idx {
			res := plans[i].res
			res.Detections = dets[k]
			res.ModelsUsed = append(res.ModelsUsed, m.Name())
			if m.Cost.FPS > 0 {
				res.SimLatency += 1 / m.Cost.FPS
			}
			results[i] = res
		}
	}

	tensor.ParallelWorkers(len(rest), workers, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			i := rest[k]
			results[i] = o.Execute(frames[i], plans[i])
		}
	})
}

var _ detect.BatchDetector = (*detect.GridDetector)(nil)
