package core

import (
	"testing"

	"odin/internal/qos"
)

// mixedFids assigns a repeating full→lite→count→skip ladder across n
// frames, exercising every fidelity in one window.
func mixedFids(n int) []qos.Fidelity {
	ladder := []qos.Fidelity{qos.Full, qos.Lite, qos.Count, qos.Skip}
	fids := make([]qos.Fidelity, n)
	for i := range fids {
		fids[i] = ladder[i%len(ladder)]
	}
	return fids
}

// TestProcessBatchFidNilMatchesExplicitFull pins the legacy contract: a
// nil fidelity slice and an explicit all-Full slice are the same path —
// bit-identical results and stats.
func TestProcessBatchFidNilMatchesExplicitFull(t *testing.T) {
	stream := driftTestStream(120)

	a := streamTestPipeline(t)
	want := a.ProcessBatch(stream, 4)
	wantStats := a.Stats()

	b := streamTestPipeline(t)
	full := make([]qos.Fidelity, len(stream))
	got := b.ProcessBatchFid(stream, 4, full)
	for i := range want {
		if want[i].Fingerprint() != got[i].Fingerprint() {
			t.Fatalf("frame %d: %s != %s", i, got[i].Fingerprint(), want[i].Fingerprint())
		}
	}
	if st := b.Stats(); st != wantStats {
		t.Fatalf("stats %+v, want %+v", st, wantStats)
	}
	if wantStats.FullFrames != len(stream) || wantStats.Dropped != 0 {
		t.Fatalf("full-frame counter %d/%d, want %d/0", wantStats.FullFrames, wantStats.Dropped, len(stream))
	}
}

// TestFidelityLadderSemantics checks what each rung actually does to a
// frame's result: skip yields a stamped husk, count yields a count and no
// boxes, lite collapses to a single model, and the stats counters account
// for every frame by fidelity.
func TestFidelityLadderSemantics(t *testing.T) {
	stream := driftTestStream(120)
	fids := mixedFids(len(stream))
	o := streamTestPipeline(t)
	results := o.ProcessBatchFid(stream, 4, fids)
	if len(results) != len(stream) {
		t.Fatalf("%d results for %d frames", len(results), len(stream))
	}
	for i, r := range results {
		if r.Fidelity != fids[i] {
			t.Fatalf("frame %d: fidelity %v, want %v", i, r.Fidelity, fids[i])
		}
		switch fids[i] {
		case qos.Skip:
			if r.ClusterID != -1 || len(r.ModelsUsed) != 0 || r.Detections != nil || r.SimLatency != 0 {
				t.Fatalf("frame %d: skip result did work: %+v", i, r)
			}
		case qos.Count:
			if r.Detections != nil {
				t.Fatalf("frame %d: count result materialised detections", i)
			}
			if len(r.ModelsUsed) != 1 {
				t.Fatalf("frame %d: count used %v, want one model", i, r.ModelsUsed)
			}
		case qos.Lite:
			if len(r.ModelsUsed) != 1 {
				t.Fatalf("frame %d: lite used %v, want one model", i, r.ModelsUsed)
			}
		}
	}
	st := o.Stats()
	n := len(stream) / 4
	if st.FullFrames != n || st.LiteFrames != n || st.CountFrames != n || st.SkipFrames != n {
		t.Fatalf("fidelity counters %+v, want %d each", st, n)
	}
	if st.Frames != len(stream) {
		t.Fatalf("frames %d, want %d", st.Frames, len(stream))
	}
}

// TestCountFidelityMatchesLiteDetections pins the count-pushdown contract
// at the fidelity layer: Count and Lite pick the same (cheapest single)
// model and advance identically, so a count-fidelity frame's Count must
// equal the number of detections the lite-fidelity run materialises.
func TestCountFidelityMatchesLiteDetections(t *testing.T) {
	stream := driftTestStream(120)

	lite := streamTestPipeline(t)
	fidsL := make([]qos.Fidelity, len(stream))
	for i := range fidsL {
		fidsL[i] = qos.Lite
	}
	liteRes := lite.ProcessBatchFid(stream, 4, fidsL)

	cnt := streamTestPipeline(t)
	fidsC := make([]qos.Fidelity, len(stream))
	for i := range fidsC {
		fidsC[i] = qos.Count
	}
	cntRes := cnt.ProcessBatchFid(stream, 4, fidsC)

	for i := range liteRes {
		if cntRes[i].Count != len(liteRes[i].Detections) {
			t.Fatalf("frame %d: count %d, lite materialised %d", i, cntRes[i].Count, len(liteRes[i].Detections))
		}
		if len(cntRes[i].ModelsUsed) != 1 || cntRes[i].ModelsUsed[0] != liteRes[i].ModelsUsed[0] {
			t.Fatalf("frame %d: models %v vs %v", i, cntRes[i].ModelsUsed, liteRes[i].ModelsUsed)
		}
	}
	if lite.Stats().SimTime != cnt.Stats().SimTime {
		t.Fatalf("sim time diverged: %v vs %v", lite.Stats().SimTime, cnt.Stats().SimTime)
	}
}

// TestFidelityDeterministicAcrossWorkers is the degraded-mode determinism
// contract: given the same per-frame fidelity assignment, results are
// bit-identical at 1, 4 and 8 workers.
func TestFidelityDeterministicAcrossWorkers(t *testing.T) {
	stream := driftTestStream(150)
	fids := mixedFids(len(stream))

	ref := streamTestPipeline(t)
	want := make([]string, len(stream))
	for i, r := range ref.ProcessBatchFid(stream, 1, fids) {
		want[i] = r.Fingerprint()
	}
	wantStats := ref.Stats()

	for _, workers := range []int{4, 8} {
		o := streamTestPipeline(t)
		got := o.ProcessBatchFid(stream, workers, fids)
		for i := range want {
			if fp := got[i].Fingerprint(); fp != want[i] {
				t.Fatalf("workers=%d frame %d:\n got %s\nwant %s", workers, i, fp, want[i])
			}
		}
		if st := o.Stats(); st != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, st, wantStats)
		}
	}
}

// TestAddDropped pins the admission-drop counter.
func TestAddDropped(t *testing.T) {
	o := streamTestPipeline(t)
	o.AddDropped(3)
	o.AddDropped(0)
	o.AddDropped(-1)
	if st := o.Stats(); st.Dropped != 3 {
		t.Fatalf("dropped %d, want 3", st.Dropped)
	}
}
