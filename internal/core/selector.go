package core

import (
	"math"

	"odin/internal/cluster"
	"odin/internal/detect"
	"odin/internal/synth"
)

// Policy identifies a SELECTOR model-selection policy (§5.3).
type Policy int

// Selection policies.
const (
	// PolicyKNNU picks the k nearest models, unweighted.
	PolicyKNNU Policy = iota
	// PolicyKNNW picks the k nearest models, weighted inversely to
	// distance (Equation 8).
	PolicyKNNW
	// PolicyDeltaBM picks the models of every cluster whose ∆-band
	// contains the point, falling back to KNN-W outside all bands.
	PolicyDeltaBM
	// PolicyMostRecent always uses the most recently created model — the
	// naive policy of the §6.7 ablation ("-SELECTOR").
	PolicyMostRecent
)

// String returns the paper's policy name.
func (p Policy) String() string {
	switch p {
	case PolicyKNNU:
		return "KNN-U"
	case PolicyKNNW:
		return "KNN-W"
	case PolicyDeltaBM:
		return "∆-BM"
	case PolicyMostRecent:
		return "MOST-RECENT"
	}
	return "unknown"
}

// WeightedModel is one model chosen by the selector with its ensemble
// weight.
type WeightedModel struct {
	Model  *Model
	Weight float64
}

// Selector implements the model-ensemble selection policies over the
// model manager's per-cluster models.
type Selector struct {
	Policy Policy
	K      int // ensemble size for the KNN policies
}

// Select returns the weighted models to run on a point with latent z.
// clusters is the live cluster set; byCluster maps cluster id → model.
func (s *Selector) Select(z []float64, clusters *cluster.Set, byCluster map[int]*Model, mostRecent *Model) []WeightedModel {
	switch s.Policy {
	case PolicyMostRecent:
		if mostRecent == nil {
			return nil
		}
		return []WeightedModel{{Model: mostRecent, Weight: 1}}
	case PolicyDeltaBM:
		var in []WeightedModel
		for _, c := range clusters.Permanent {
			if m := byCluster[c.ID]; m != nil && c.Contains(z) {
				in = append(in, WeightedModel{Model: m})
			}
		}
		if len(in) > 0 {
			// Overlapping bands share equal weights (§6.4).
			w := 1 / float64(len(in))
			for i := range in {
				in[i].Weight = w
			}
			return in
		}
		return s.knn(z, clusters, byCluster, true)
	case PolicyKNNW:
		return s.knn(z, clusters, byCluster, true)
	default:
		return s.knn(z, clusters, byCluster, false)
	}
}

// knn implements the KNN-U / KNN-W policies over raw latent distances.
func (s *Selector) knn(z []float64, clusters *cluster.Set, byCluster map[int]*Model, weighted bool) []WeightedModel {
	k := s.K
	if k <= 0 {
		k = 4
	}
	cs, ds := clusters.NearestRaw(z, k)
	var out []WeightedModel
	var dist []float64
	for i, c := range cs {
		if m := byCluster[c.ID]; m != nil {
			out = append(out, WeightedModel{Model: m})
			dist = append(dist, ds[i])
		}
	}
	if len(out) == 0 {
		return nil
	}
	if !weighted {
		w := 1 / float64(len(out))
		for i := range out {
			out[i].Weight = w
		}
		return out
	}
	// Equation 8: inverted distances normalised to weights.
	maxD := 0.0
	for _, d := range dist {
		maxD = math.Max(maxD, d)
	}
	if maxD == 0 {
		maxD = 1
	}
	var sum float64
	inv := make([]float64, len(dist))
	for i, d := range dist {
		if d <= 1e-12 {
			d = 1e-12
		}
		inv[i] = maxD / d
		sum += inv[i]
	}
	for i := range out {
		out[i].Weight = inv[i] / sum
	}
	return out
}

// FuseDetections combines per-model detections into one set using weighted
// box fusion: same-class boxes overlapping at IoU ≥ 0.5 are merged, their
// coordinates averaged by weight·score and their fused score accumulated
// as Σ wᵢ·scoreᵢ (clamped to 1).
func FuseDetections(sets [][]detect.Detection, weights []float64) []detect.Detection {
	type group struct {
		rep   synth.Box
		score float64
		sumW  float64
		x, y  float64
		w, h  float64
	}
	var groups []*group
	for si, dets := range sets {
		wgt := weights[si]
		for _, d := range dets {
			var best *group
			bestIoU := 0.0
			for _, g := range groups {
				if g.rep.Class != d.Box.Class {
					continue
				}
				if iou := g.rep.IoU(d.Box); iou >= 0.5 && iou > bestIoU {
					best = g
					bestIoU = iou
				}
			}
			contrib := wgt * d.Score
			if best == nil {
				groups = append(groups, &group{
					rep:   d.Box,
					score: contrib,
					sumW:  contrib,
					x:     d.Box.X * contrib,
					y:     d.Box.Y * contrib,
					w:     d.Box.W * contrib,
					h:     d.Box.H * contrib,
				})
				continue
			}
			best.score += contrib
			best.sumW += contrib
			best.x += d.Box.X * contrib
			best.y += d.Box.Y * contrib
			best.w += d.Box.W * contrib
			best.h += d.Box.H * contrib
		}
	}
	// Fused detections below this score are ensemble noise: contributions
	// from far-away models that Equation 8 already down-weighted.
	const minFusedScore = 0.12
	out := make([]detect.Detection, 0, len(groups))
	for _, g := range groups {
		if g.sumW <= 0 || g.score < minFusedScore {
			continue
		}
		box := synth.Box{
			Class: g.rep.Class,
			X:     g.x / g.sumW,
			Y:     g.y / g.sumW,
			W:     g.w / g.sumW,
			H:     g.h / g.sumW,
		}
		out = append(out, detect.Detection{Box: box, Score: math.Min(g.score, 1)})
	}
	return detect.NMS(out, 0.5)
}
