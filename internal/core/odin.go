package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"odin/internal/cluster"
	"odin/internal/detect"
	"odin/internal/gan"
	"odin/internal/obs"
	"odin/internal/qos"
	"odin/internal/synth"
)

// Config assembles a full ODIN pipeline.
type Config struct {
	Scene            synth.SceneConfig
	DownsampleFactor int // frame → projector input reduction (default 2)
	Cluster          cluster.Config
	Selector         Selector
	Spec             SpecializerConfig

	// DriftRecovery disables the DETECTOR/SPECIALIZER/SELECTOR stack when
	// false, leaving the static heavyweight baseline — the paper's
	// "static system" comparison point.
	DriftRecovery bool

	// AsyncTrain defers drift-triggered specializer training off the
	// serving path: Advance schedules TrainJobs (handed to the sink set
	// with SetTrainSink) instead of training under the lock, and frames
	// are served by the previous-best model until the trained model is
	// swapped in via FinishJob. False keeps the deterministic inline
	// behaviour.
	AsyncTrain bool
}

// DefaultConfig returns the experiment configuration.
func DefaultConfig(scene synth.SceneConfig) Config {
	return Config{
		Scene:            scene,
		DownsampleFactor: 2,
		Cluster:          cluster.DefaultConfig(),
		Selector:         Selector{Policy: PolicyDeltaBM, K: 4},
		Spec:             DefaultSpecializerConfig(),
		DriftRecovery:    true,
	}
}

// Result is the outcome of processing one frame.
type Result struct {
	Detections []detect.Detection
	// ClusterID is the primary cluster assignment (-1 when the frame was
	// an outlier routed to the temporary cluster).
	ClusterID int
	// Drift is non-nil when this frame triggered a drift event.
	Drift *cluster.DriftEvent
	// ModelsUsed names the models that served this frame.
	ModelsUsed []string
	// SimLatency is the simulated per-frame GPU time (seconds) of the
	// models that ran, from the architecture cost model.
	SimLatency float64
	// ModelGen is the model-set generation that served this frame; it
	// increments every time a trained model is swapped in, so a latency or
	// accuracy sample can be attributed to the exact model set behind it.
	ModelGen uint64
	// RecoveryPending marks a frame served while a drift recovery was
	// still training (async mode): its cluster had a scheduled-but-unlanded
	// training job, so the previous-best model served it in the interim.
	// Always false with inline training.
	RecoveryPending bool
	// Fidelity is the treatment level the QoS layer chose for this frame
	// (qos.Full unless load-adaptive degradation was active).
	Fidelity qos.Fidelity
	// Count is the frame's detection count under count-pushdown fidelity,
	// where Detections are never materialised. Zero otherwise.
	Count int
}

// Fingerprint reduces the Result to a comparable summary for determinism
// checks: the sharded path must reproduce sequential results exactly, so
// the facade tests and `odin-bench -exp stream` compare fingerprints
// frame by frame. Drift events are identified by cluster label and seed
// count because cluster pointers differ across separately constructed
// pipelines.
func (r Result) Fingerprint() string {
	drift := ""
	if r.Drift != nil {
		drift = fmt.Sprintf("%s/%d", r.Drift.Cluster.Label, r.Drift.NumSeeds)
	}
	return fmt.Sprintf("c=%d m=%v d=%s g=%d p=%v f=%s n=%d lat=%.9f dets=%v",
		r.ClusterID, r.ModelsUsed, drift, r.ModelGen, r.RecoveryPending, r.Fidelity, r.Count, r.SimLatency, r.Detections)
}

// Stats aggregates pipeline telemetry. The per-fidelity counters split
// Frames by the QoS treatment level each frame was advanced at; on paths
// that never degrade, every frame counts as full fidelity. Dropped counts
// frames shed by admission control before reaching the pipeline (they are
// not part of Frames).
type Stats struct {
	Frames      int
	Outliers    int
	DriftEvents int
	SimTime     float64 // total simulated GPU seconds

	FullFrames  int
	LiteFrames  int
	CountFrames int
	SkipFrames  int
	Dropped     int
}

// FPS returns the simulated end-to-end throughput so far.
func (s Stats) FPS() float64 {
	if s.SimTime <= 0 {
		return 0
	}
	return float64(s.Frames) / s.SimTime
}

// bufferedOutlier pairs an outlier frame with its latent projection so
// drift-time seed filtering can test cluster membership.
type bufferedOutlier struct {
	frame  *synth.Frame
	latent []float64
}

// Odin is the end-to-end system of Figure 3: DETECTOR → (SPECIALIZER on
// drift) → SELECTOR → detection.
//
// Concurrency model: per-frame processing is split into three stages so N
// streams can share one model set.
//
//	Project — pure: frame → DA-GAN latent. Lock-free; the projector is
//	          immutable after construction.
//	Advance — mutating: cluster assignment, outlier buffering, drift
//	          handling, specializer training and model selection. This is
//	          the single explicit synchronization point (mu); calls are
//	          serialized in frame order, and the returned Plan freezes the
//	          selected models so later mutations cannot affect this frame.
//	Execute — pure: runs the Plan's models on the frame and fuses
//	          detections. Lock-free; deployed models are immutable once
//	          trained (drift swaps pointers in Advance, it never retrains
//	          a deployed model in place).
//
// Process composes the three sequentially; ProcessBatch shards the pure
// stages across a bounded worker pool and batches same-model detection,
// producing bit-identical results (see processbatch.go).
type Odin struct {
	Cfg      Config
	Detector *Detector
	Manager  *ModelManager

	// mu guards every mutation of shared pipeline state: the cluster set,
	// the outlier ring, the model manager's maps and the stats counters.
	mu          sync.Mutex
	outlierRing []bufferedOutlier
	stats       Stats

	// pendingJobs collects training jobs scheduled by the drift stage
	// (async mode); they are drained after the lock is released and handed
	// to sink, so training never runs under mu.
	pendingJobs []TrainJob
	sink        func([]TrainJob)

	// obsv is the optional observability hook (stage timings, lifecycle
	// events). Strictly observational: nothing read from it feeds back into
	// processing. Atomic so hot-path loads never contend with mu.
	obsv atomic.Pointer[obs.Observer]
}

// New assembles ODIN from a trained projector and a baseline heavyweight
// detector. The projector is the DA-GAN encoder trained on bootstrap data
// (§4.4); the baseline plays the role of the pre-trained YOLO teacher.
func New(cfg Config, proj gan.Projector, baseline *detect.GridDetector) *Odin {
	enc := DownsampleEncoder(cfg.DownsampleFactor)
	mm := NewModelManager(cfg.Spec, cfg.Scene, baseline)
	mm.SetAsync(cfg.AsyncTrain)
	return &Odin{
		Cfg:      cfg,
		Detector: NewDetector(proj, cfg.Cluster, enc),
		Manager:  mm,
	}
}

// SetTrainSink installs the consumer of async training jobs (typically a
// dispatch.Trainer). The sink is invoked outside the pipeline lock, on the
// goroutine whose Advance scheduled the jobs, and must not block for long —
// queue and return. Install it before serving frames. Without a sink,
// async-scheduled jobs are trained synchronously on the scheduling
// goroutine (off the lock, but on the serving path), so recoveries are
// never silently dropped.
func (o *Odin) SetTrainSink(fn func([]TrainJob)) {
	o.mu.Lock()
	o.sink = fn
	o.mu.Unlock()
}

// SetObserver installs (or, with nil, removes) the observability hook.
// Instrumentation is strictly observational — installing an observer must
// not change any Result. Install before serving to capture every frame.
func (o *Odin) SetObserver(ob *obs.Observer) {
	o.obsv.Store(ob)
}

// observer returns the current observability hook (nil when disabled; every
// obs method is nil-receiver-safe).
func (o *Odin) observer() *obs.Observer {
	return o.obsv.Load()
}

// FinishJob lands a deferred training job: the trained model is swapped in
// atomically under the pipeline lock (bumping the model generation), or —
// when training failed, the model is nil, or the cluster was evicted while
// the job trained — the swap is skipped and the prior model keeps serving
// (rollback). The cluster's pending-recovery count drops either way.
// Returns whether the model was installed.
func (o *Odin) FinishJob(job TrainJob, m *Model, dur time.Duration, trainErr error) bool {
	o.mu.Lock()
	installed := o.Manager.finishJob(job, m, dur, trainErr != nil)
	gen := int(o.Manager.Gen())
	o.mu.Unlock()
	if ob := o.observer(); ob != nil {
		switch {
		case installed:
			ob.Event(obs.EvRecoverySwapped, "", job.ClusterID, gen,
				fmt.Sprintf("build %.1fms", dur.Seconds()*1e3))
		case trainErr != nil:
			ob.Event(obs.EvRecoveryFailed, "", job.ClusterID, gen, trainErr.Error())
		default:
			ob.Event(obs.EvRecoveryRollback, "", job.ClusterID, gen, "")
		}
	}
	return installed
}

// PendingRecoveries returns the number of scheduled training jobs whose
// models have not been swapped in yet (always 0 with inline training).
func (o *Odin) PendingRecoveries() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.Manager.Outstanding()
}

// ModelGen returns the current model-set generation.
func (o *Odin) ModelGen() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.Manager.Gen()
}

// Stats returns aggregate telemetry.
func (o *Odin) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// MemoryMB returns the simulated resident model memory.
func (o *Odin) MemoryMB() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.Manager.MemoryMB()
}

// NumClusters returns the number of permanent concept clusters.
func (o *Odin) NumClusters() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.Detector.Clusters.Permanent)
}

// NumModels returns the number of resident specialized/lite models.
func (o *Odin) NumModels() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.Manager.NumModels()
}

// RegimeSignature returns the current drift-regime signature of a
// permanent cluster, or false when no such cluster exists. Training jobs
// carry the signature taken at schedule time (TrainJob.Sig); this accessor
// exposes the live one for introspection and fleet tooling.
func (o *Odin) RegimeSignature(clusterID int) (cluster.Signature, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.Detector.Clusters.ByID(clusterID)
	if c == nil {
		return cluster.Signature{}, false
	}
	return c.Signature(), true
}

// Plan is the frozen outcome of Advance for one frame: the partial result
// (cluster assignment, drift event) plus the captured model selection that
// Execute will run. Capturing the selection is what decouples the ordered,
// mutating drift stage from the parallel detection stage.
type Plan struct {
	res    Result
	models []WeightedModel
	// countOnly marks a count-pushdown plan: execute counts the single
	// selected model's detections instead of materialising them.
	countOnly bool
}

// Project computes the frame's DA-GAN latent — stage one of the pipeline.
// It reads only immutable state and may run concurrently with everything.
// Returns nil in static (no drift recovery) mode, where no projection is
// needed.
func (o *Odin) Project(f *synth.Frame) []float64 {
	if !o.Cfg.DriftRecovery {
		return nil
	}
	return o.Detector.Project(f.Image)
}

// Advance runs the serialized drift stage for one frame: cluster
// observation, outlier buffering, drift-triggered training, and model
// selection. z must be the frame's Project output (nil in static mode).
// Frames must be advanced in stream order for reproducible cluster
// evolution; the mutex serializes concurrent streams.
func (o *Odin) Advance(f *synth.Frame, z []float64) Plan {
	o.mu.Lock()
	p := o.advanceLocked(f, z, qos.Full)
	jobs := o.pendingJobs
	o.pendingJobs = nil
	o.mu.Unlock()
	o.submitJobs(jobs)
	return p
}

// submitJobs hands freshly scheduled training jobs to the sink, outside
// the pipeline lock. With no sink installed the jobs train synchronously
// here — still off the lock, so concurrent streams keep serving, but on
// this goroutine's serving path.
func (o *Odin) submitJobs(jobs []TrainJob) {
	if len(jobs) == 0 {
		return
	}
	ob := o.observer()
	for i := range jobs {
		ob.Event(obs.EvRecoveryEnqueued, "", jobs[i].ClusterID, -1, "")
	}
	o.mu.Lock()
	sink := o.sink
	o.mu.Unlock()
	if sink != nil {
		sink(jobs)
		return
	}
	for _, job := range jobs {
		start := time.Now()
		m := o.Manager.BuildModel(job)
		dur := time.Since(start)
		ob.Event(obs.EvRecoveryScratch, "", job.ClusterID, -1, "inline")
		ob.BuildSeconds("scratch", dur)
		o.FinishJob(job, m, dur, nil)
	}
}

// advanceLocked is Advance with o.mu held (ProcessBatch holds it across a
// whole batch). fid is the QoS treatment level: Skip short-circuits the
// whole drift stage (no cluster observation, no drift bookkeeping — the
// frame was shed except for its place in the result stream), Lite and
// Count degrade the selection to its single cheapest model, Full is the
// legacy behaviour.
func (o *Odin) advanceLocked(f *synth.Frame, z []float64, fid qos.Fidelity) Plan {
	o.stats.Frames++
	switch fid {
	case qos.Lite:
		o.stats.LiteFrames++
	case qos.Count:
		o.stats.CountFrames++
	case qos.Skip:
		o.stats.SkipFrames++
	default:
		o.stats.FullFrames++
	}

	if fid == qos.Skip {
		return Plan{res: Result{
			ClusterID: -1,
			Fidelity:  qos.Skip,
			ModelGen:  o.Manager.Gen(),
		}}
	}

	if !o.Cfg.DriftRecovery {
		return Plan{
			res:       Result{ClusterID: -1, Fidelity: fid},
			models:    []WeightedModel{{Model: o.Manager.Baseline, Weight: 1}},
			countOnly: fid == qos.Count,
		}
	}

	a := o.Detector.Clusters.Observe(z)
	res := Result{ClusterID: -1}
	if a.Outlier {
		o.stats.Outliers++
		o.bufferOutlier(f, z)
	} else if a.Primary != nil {
		res.ClusterID = a.Primary.ID
		o.Manager.AddFrame(a.Primary.ID, f)
	}
	if a.Drift != nil {
		o.stats.DriftEvents++
		res.Drift = a.Drift
		seeds := o.takeOutliers(a.Drift.Cluster)
		o.pendingJobs = append(o.pendingJobs, o.Manager.OnDrift(a.Drift, seeds, o.stats.Frames)...)
		if ob := o.observer(); ob != nil {
			ob.Event(obs.EvDrift, "", a.Drift.Cluster.ID, int(o.Manager.Gen()),
				fmt.Sprintf("%s/%d seeds", a.Drift.Cluster.Label, a.Drift.NumSeeds))
		}
	}
	o.pendingJobs = append(o.pendingJobs, o.Manager.MaturePending(o.stats.Frames)...)
	// Stamp each freshly scheduled job with its cluster's regime signature
	// while the lock still freezes the cluster set — the snapshot a fleet
	// registry matches against. Stamping at schedule time keeps the
	// signature deterministic under deterministic driving.
	for i := range o.pendingJobs {
		j := &o.pendingJobs[i]
		if j.Sig == nil {
			if c := o.Detector.Clusters.ByID(j.ClusterID); c != nil {
				sig := c.Signature()
				j.Sig = &sig
			}
		}
	}

	// SELECTOR: pick the ensemble, fall back to the baseline when no
	// specialized model exists yet. With async training the fallback IS the
	// interim policy: a drifted cluster has no model until its job lands,
	// so the previous-best selection (neighbouring cluster models or the
	// baseline) keeps serving, flagged via RecoveryPending.
	selection := o.Manager.selectFor(z, o.Detector.Clusters, o.Cfg.Selector)
	if len(selection) == 0 {
		selection = []WeightedModel{{Model: o.Manager.Baseline, Weight: 1}}
	}
	// Degraded fidelities collapse the selection to its single cheapest
	// model: ensembles and specialized-over-lite preferences cost more
	// than overload allows.
	if fid == qos.Lite || fid == qos.Count {
		selection = cheapestSingle(selection)
	}
	res.Fidelity = fid
	res.ModelGen = o.Manager.Gen()
	res.RecoveryPending = o.Manager.pendingFor(res.ClusterID)
	return Plan{res: res, models: selection, countOnly: fid == qos.Count}
}

// cheapestSingle reduces a selection to its single cheapest model —
// highest simulated FPS, ties broken by selection order, so the choice is
// deterministic for a given plan.
func cheapestSingle(sel []WeightedModel) []WeightedModel {
	best := -1
	for i, wm := range sel {
		if wm.Model == nil || wm.Model.Det == nil {
			continue
		}
		if best < 0 || wm.Model.Cost.FPS > sel[best].Model.Cost.FPS {
			best = i
		}
	}
	if best < 0 {
		return sel
	}
	return []WeightedModel{{Model: sel[best].Model, Weight: 1}}
}

// Execute runs the Plan's captured models on the frame and fuses their
// detections — stage three. It reads only the frozen Plan and immutable
// model weights, so any number of Executes may run concurrently; simulated
// time is accounted separately (addSimTime) to keep this stage pure.
func (o *Odin) Execute(f *synth.Frame, p Plan) Result {
	res := p.res
	sets := make([][]detect.Detection, 0, len(p.models))
	weights := make([]float64, 0, len(p.models))
	for _, wm := range p.models {
		if wm.Model == nil || wm.Model.Det == nil {
			continue
		}
		sets = append(sets, wm.Model.Det.Detect(f.Image))
		weights = append(weights, wm.Weight)
		res.ModelsUsed = append(res.ModelsUsed, wm.Model.Name())
		if wm.Model.Cost.FPS > 0 {
			res.SimLatency += 1 / wm.Model.Cost.FPS
		}
	}
	if len(sets) == 1 {
		res.Detections = sets[0]
	} else if len(sets) > 1 {
		res.Detections = FuseDetections(sets, weights)
	}
	return res
}

// addSimTime accumulates simulated GPU seconds in frame order, so the
// sharded and sequential paths produce bit-identical stats.
func (o *Odin) addSimTime(t float64) {
	o.mu.Lock()
	o.stats.SimTime += t
	o.mu.Unlock()
}

// AddDropped records n frames shed by admission control before they
// reached the pipeline, so Server.Stats() surfaces queue drops alongside
// the processed-frame counters.
func (o *Odin) AddDropped(n int) {
	if n <= 0 {
		return
	}
	o.mu.Lock()
	o.stats.Dropped += n
	o.mu.Unlock()
}

// selectFor adapts the Selector to the manager's internal maps.
func (mm *ModelManager) selectFor(z []float64, clusters *cluster.Set, sel Selector) []WeightedModel {
	return sel.Select(z, clusters, mm.byCluster, mm.mostRecent)
}

// Process runs one frame through the pipeline: Project → Advance → Execute.
func (o *Odin) Process(f *synth.Frame) Result {
	ob := o.observer()
	t0 := ob.Now()
	z := o.Project(f)
	ob.Stage(obs.StageProject, t0, 1)
	t0 = ob.Now()
	p := o.Advance(f, z)
	ob.Stage(obs.StageAdvance, t0, 1)
	t0 = ob.Now()
	res := o.Execute(f, p)
	ob.Stage(obs.StageDetect, t0, 1)
	o.addSimTime(res.SimLatency)
	return res
}

// bufferOutlier keeps the recent outlier frames aligned with the
// temporary cluster's sliding window; they become the training seeds of
// the next promoted cluster. Caller holds o.mu.
func (o *Odin) bufferOutlier(f *synth.Frame, z []float64) {
	limit := o.Cfg.Cluster.TempWindow
	if limit <= 0 {
		limit = 200
	}
	o.outlierRing = append(o.outlierRing, bufferedOutlier{frame: f, latent: z})
	if len(o.outlierRing) > limit {
		o.outlierRing = o.outlierRing[1:]
	}
}

// takeOutliers drains the outlier ring, keeping only the frames that
// actually belong to the newly promoted cluster. The ring also holds
// unrelated stragglers (other domains' out-of-band tails); training a
// specialized model on those would contaminate it, so seeds are filtered
// by cluster membership. Caller holds o.mu.
func (o *Odin) takeOutliers(c *cluster.Cluster) []*synth.Frame {
	var seeds []*synth.Frame
	for _, b := range o.outlierRing {
		if c.Contains(b.latent) || c.Distance(b.latent) <= c.Band().Hi {
			seeds = append(seeds, b.frame)
		}
	}
	o.outlierRing = nil
	return seeds
}
