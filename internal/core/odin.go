package core

import (
	"odin/internal/cluster"
	"odin/internal/detect"
	"odin/internal/gan"
	"odin/internal/synth"
)

// Config assembles a full ODIN pipeline.
type Config struct {
	Scene            synth.SceneConfig
	DownsampleFactor int // frame → projector input reduction (default 2)
	Cluster          cluster.Config
	Selector         Selector
	Spec             SpecializerConfig

	// DriftRecovery disables the DETECTOR/SPECIALIZER/SELECTOR stack when
	// false, leaving the static heavyweight baseline — the paper's
	// "static system" comparison point.
	DriftRecovery bool
}

// DefaultConfig returns the experiment configuration.
func DefaultConfig(scene synth.SceneConfig) Config {
	return Config{
		Scene:            scene,
		DownsampleFactor: 2,
		Cluster:          cluster.DefaultConfig(),
		Selector:         Selector{Policy: PolicyDeltaBM, K: 4},
		Spec:             DefaultSpecializerConfig(),
		DriftRecovery:    true,
	}
}

// Result is the outcome of processing one frame.
type Result struct {
	Detections []detect.Detection
	// ClusterID is the primary cluster assignment (-1 when the frame was
	// an outlier routed to the temporary cluster).
	ClusterID int
	// Drift is non-nil when this frame triggered a drift event.
	Drift *cluster.DriftEvent
	// ModelsUsed names the models that served this frame.
	ModelsUsed []string
	// SimLatency is the simulated per-frame GPU time (seconds) of the
	// models that ran, from the architecture cost model.
	SimLatency float64
}

// Stats aggregates pipeline telemetry.
type Stats struct {
	Frames      int
	Outliers    int
	DriftEvents int
	SimTime     float64 // total simulated GPU seconds
}

// FPS returns the simulated end-to-end throughput so far.
func (s Stats) FPS() float64 {
	if s.SimTime <= 0 {
		return 0
	}
	return float64(s.Frames) / s.SimTime
}

// Odin is the end-to-end system of Figure 3: DETECTOR → (SPECIALIZER on
// drift) → SELECTOR → detection.
// bufferedOutlier pairs an outlier frame with its latent projection so
// drift-time seed filtering can test cluster membership.
type bufferedOutlier struct {
	frame  *synth.Frame
	latent []float64
}

type Odin struct {
	Cfg      Config
	Detector *Detector
	Manager  *ModelManager

	outlierRing []bufferedOutlier
	stats       Stats
}

// New assembles ODIN from a trained projector and a baseline heavyweight
// detector. The projector is the DA-GAN encoder trained on bootstrap data
// (§4.4); the baseline plays the role of the pre-trained YOLO teacher.
func New(cfg Config, proj gan.Projector, baseline *detect.GridDetector) *Odin {
	enc := DownsampleEncoder(cfg.DownsampleFactor)
	return &Odin{
		Cfg:      cfg,
		Detector: NewDetector(proj, cfg.Cluster, enc),
		Manager:  NewModelManager(cfg.Spec, cfg.Scene, baseline),
	}
}

// Stats returns aggregate telemetry.
func (o *Odin) Stats() Stats { return o.stats }

// MemoryMB returns the simulated resident model memory.
func (o *Odin) MemoryMB() float64 { return o.Manager.MemoryMB() }

// Process runs one frame through the pipeline.
func (o *Odin) Process(f *synth.Frame) Result {
	o.stats.Frames++

	if !o.Cfg.DriftRecovery {
		return o.processStatic(f)
	}

	obs := o.Detector.Observe(f.Image)
	res := Result{ClusterID: -1}

	a := obs.Assignment
	if a.Outlier {
		o.stats.Outliers++
		o.bufferOutlier(f, obs.Latent)
	} else if a.Primary != nil {
		res.ClusterID = a.Primary.ID
		o.Manager.AddFrame(a.Primary.ID, f)
	}
	if a.Drift != nil {
		o.stats.DriftEvents++
		res.Drift = a.Drift
		seeds := o.takeOutliers(a.Drift.Cluster)
		o.Manager.OnDrift(a.Drift, seeds, o.stats.Frames)
	}
	o.Manager.MaturePending(o.stats.Frames)

	// SELECTOR: pick the ensemble, fall back to the baseline when no
	// specialized model exists yet.
	selection := o.Manager.selectFor(obs.Latent, o.Detector.Clusters, o.Cfg.Selector)
	if len(selection) == 0 {
		return o.runModels(f, []WeightedModel{{Model: o.Manager.Baseline, Weight: 1}}, res)
	}
	return o.runModels(f, selection, res)
}

// selectFor adapts the Selector to the manager's internal maps.
func (mm *ModelManager) selectFor(z []float64, clusters *cluster.Set, sel Selector) []WeightedModel {
	return sel.Select(z, clusters, mm.byCluster, mm.mostRecent)
}

// processStatic is the no-drift-recovery path: the heavyweight baseline
// serves every frame.
func (o *Odin) processStatic(f *synth.Frame) Result {
	return o.runModels(f, []WeightedModel{{Model: o.Manager.Baseline, Weight: 1}}, Result{ClusterID: -1})
}

// runModels executes the weighted ensemble, fuses detections and accounts
// simulated latency.
func (o *Odin) runModels(f *synth.Frame, models []WeightedModel, res Result) Result {
	sets := make([][]detect.Detection, 0, len(models))
	weights := make([]float64, 0, len(models))
	for _, wm := range models {
		if wm.Model == nil || wm.Model.Det == nil {
			continue
		}
		sets = append(sets, wm.Model.Det.Detect(f.Image))
		weights = append(weights, wm.Weight)
		res.ModelsUsed = append(res.ModelsUsed, wm.Model.Name())
		if wm.Model.Cost.FPS > 0 {
			res.SimLatency += 1 / wm.Model.Cost.FPS
		}
	}
	if len(sets) == 1 {
		res.Detections = sets[0]
	} else if len(sets) > 1 {
		res.Detections = FuseDetections(sets, weights)
	}
	o.stats.SimTime += res.SimLatency
	return res
}

// bufferOutlier keeps the recent outlier frames aligned with the
// temporary cluster's sliding window; they become the training seeds of
// the next promoted cluster.
func (o *Odin) bufferOutlier(f *synth.Frame, z []float64) {
	limit := o.Cfg.Cluster.TempWindow
	if limit <= 0 {
		limit = 200
	}
	o.outlierRing = append(o.outlierRing, bufferedOutlier{frame: f, latent: z})
	if len(o.outlierRing) > limit {
		o.outlierRing = o.outlierRing[1:]
	}
}

// takeOutliers drains the outlier ring, keeping only the frames that
// actually belong to the newly promoted cluster. The ring also holds
// unrelated stragglers (other domains' out-of-band tails); training a
// specialized model on those would contaminate it, so seeds are filtered
// by cluster membership.
func (o *Odin) takeOutliers(c *cluster.Cluster) []*synth.Frame {
	var seeds []*synth.Frame
	for _, b := range o.outlierRing {
		if c.Contains(b.latent) || c.Distance(b.latent) <= c.Band().Hi {
			seeds = append(seeds, b.frame)
		}
	}
	o.outlierRing = nil
	return seeds
}
