package core

import (
	"testing"
	"testing/quick"

	"odin/internal/detect"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// randomDetections builds a plausible detection set.
func randomDetections(rng *tensor.RNG, n int) []detect.Detection {
	out := make([]detect.Detection, n)
	for i := range out {
		out[i] = detect.Detection{
			Box: synth.Box{
				Class: rng.Intn(synth.NumClasses),
				X:     rng.Range(0, 40), Y: rng.Range(0, 20),
				W: rng.Range(2, 10), H: rng.Range(2, 8),
			},
			Score: rng.Range(0.2, 1),
		}
	}
	return out
}

// TestFuseDetectionsScoreBounds: fused scores stay in (0, 1].
func TestFuseDetectionsScoreBounds(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		nSets := 1 + rng.Intn(4)
		sets := make([][]detect.Detection, nSets)
		weights := make([]float64, nSets)
		var wSum float64
		for i := range sets {
			sets[i] = randomDetections(rng, rng.Intn(6))
			weights[i] = rng.Range(0.1, 1)
			wSum += weights[i]
		}
		for i := range weights {
			weights[i] /= wSum
		}
		for _, d := range FuseDetections(sets, weights) {
			if d.Score <= 0 || d.Score > 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFuseDetectionsOutputBounded: fusion never produces more detections
// than it receives.
func TestFuseDetectionsOutputBounded(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		a := randomDetections(rng, rng.Intn(8))
		b := randomDetections(rng, rng.Intn(8))
		out := FuseDetections([][]detect.Detection{a, b}, []float64{0.5, 0.5})
		return len(out) <= len(a)+len(b)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFuseDetectionsClassPreserved: fusion never invents a class absent
// from its inputs.
func TestFuseDetectionsClassPreserved(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		a := randomDetections(rng, 1+rng.Intn(5))
		in := map[int]bool{}
		for _, d := range a {
			in[d.Box.Class] = true
		}
		for _, d := range FuseDetections([][]detect.Detection{a}, []float64{1}) {
			if !in[d.Box.Class] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFuseDetectionsEmptyInputs: degenerate inputs behave.
func TestFuseDetectionsEmptyInputs(t *testing.T) {
	if out := FuseDetections(nil, nil); len(out) != 0 {
		t.Fatal("nil fusion should be empty")
	}
	if out := FuseDetections([][]detect.Detection{nil, nil}, []float64{0.5, 0.5}); len(out) != 0 {
		t.Fatal("empty-set fusion should be empty")
	}
}

// TestSelectorWeightsNormalised: every policy returns weights summing
// to ~1 when any models are returned.
func TestSelectorWeightsNormalised(t *testing.T) {
	set := buildClusterAt(t, [][]float64{{0, 0}, {10, 0}})
	byCluster := map[int]*Model{
		set.Permanent[0].ID: {ClusterID: set.Permanent[0].ID},
		set.Permanent[1].ID: {ClusterID: set.Permanent[1].ID},
	}
	rng := tensor.NewRNG(11)
	for _, policy := range []Policy{PolicyKNNU, PolicyKNNW, PolicyDeltaBM} {
		sel := Selector{Policy: policy, K: 2}
		for i := 0; i < 50; i++ {
			z := []float64{rng.Range(-2, 12), rng.Range(-2, 2)}
			out := sel.Select(z, set, byCluster, nil)
			if len(out) == 0 {
				continue
			}
			var sum float64
			for _, wm := range out {
				if wm.Weight < 0 {
					t.Fatalf("%v produced negative weight", policy)
				}
				sum += wm.Weight
			}
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("%v weights sum to %v", policy, sum)
			}
		}
	}
}
