package core

import (
	"odin/internal/detect"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// This file is the COUNT projection pushdown (ROADMAP follow-on from the
// query planner split): when a query only needs per-frame detection counts,
// the pipeline's execute stage can count matches directly instead of
// materialising Detection slices for every frame. Projection and the
// serialized drift stage run exactly as in ProcessBatch — cluster
// evolution, drift events, stats and scheduled training jobs are identical
// — only the execute stage differs, and detect.CountBatch guarantees its
// counts equal len(filtered DetectBatch output) bit for bit.

// CountBatch advances frames exactly like ProcessBatch but executes a
// count-only projection: per frame, the number of post-NMS detections
// clearing minScore whose class matches class (class < 0 counts every
// class). Single-model frames count through the detector's allocation-free
// counting path; ensemble frames fall back to the full fused execute and
// count its output, so counts always equal what ProcessBatch would have
// produced.
func (o *Odin) CountBatch(frames []*synth.Frame, workers, class int, minScore float64) []int {
	n := len(frames)
	if n == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}

	// Stages 1+2 are ProcessBatch's exact front half (advanceAll), so the
	// drift stage cannot diverge between the two paths.
	plans := o.advanceAll(frames, workers)

	counts := make([]int, n)
	simLat := make([]float64, n)

	// Group single-model frames by model for the batched counting path;
	// ensembles (and model-less frames) take the full execute fallback.
	groups, rest := groupSingleModel(plans, nil)
	for m, idx := range groups {
		imgs := make([]*synth.Image, len(idx))
		for k, i := range idx {
			imgs[k] = frames[i].Image
		}
		cs := m.Det.CountBatch(imgs, class, minScore)
		for k, i := range idx {
			counts[i] = cs[k]
			if m.Cost.FPS > 0 {
				simLat[i] = 1 / m.Cost.FPS
			}
		}
	}
	tensor.ParallelWorkers(len(rest), workers, func(k0, k1 int) {
		for k := k0; k < k1; k++ {
			i := rest[k]
			res := o.Execute(frames[i], plans[i])
			counts[i] = countKept(res.Detections, class, minScore)
			simLat[i] = res.SimLatency
		}
	})

	// Simulated time accumulates in frame order, matching ProcessBatch.
	o.mu.Lock()
	for i := range simLat {
		o.stats.SimTime += simLat[i]
	}
	o.mu.Unlock()
	return counts
}

// countKept counts the detections that clear minScore and match class.
func countKept(dets []detect.Detection, class int, minScore float64) int {
	n := 0
	for _, d := range dets {
		if d.Score < minScore {
			continue
		}
		if class < 0 || d.Box.Class == class {
			n++
		}
	}
	return n
}
