package registry

import (
	"fmt"

	"odin/internal/cluster"
	"odin/internal/core"
	"odin/internal/detect"
)

// EntryState is a value snapshot of one published registry entry.
type EntryState struct {
	Sig       cluster.Signature
	Kind      detect.Kind
	Model     core.ModelState
	Source    string
	SourceGen uint64
	Hits      int
	LastUse   uint64
}

// State is a value snapshot of the fleet model registry: the resident
// entries (LRU order preserved via LastUse), the logical clock and the
// lifetime counters. In-flight builds are not captured — snapshots are
// taken at trainer quiescence, where no claims are outstanding.
type State struct {
	Capacity int
	Tick     uint64
	Stats    Stats
	Entries  []EntryState
}

// State snapshots the registry.
func (r *Registry) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := State{Capacity: r.capacity, Tick: r.tick, Stats: r.stats}
	st.Stats.Size = len(r.entries)
	st.Stats.Capacity = r.capacity
	for _, e := range r.entries {
		st.Entries = append(st.Entries, EntryState{
			Sig:       e.sig,
			Kind:      e.kind,
			Model:     core.CaptureModel(e.model),
			Source:    e.source,
			SourceGen: e.sourceGen,
			Hits:      e.hits,
			LastUse:   e.lastUse,
		})
	}
	return st
}

// FromState rebuilds a registry from a snapshot, preserving entry order,
// the LRU clock and the lifetime counters.
func FromState(st State) (*Registry, error) {
	r := New(st.Capacity)
	r.tick = st.Tick
	r.stats = st.Stats
	for _, es := range st.Entries {
		m, err := core.ModelFromState(es.Model)
		if err != nil {
			return nil, fmt.Errorf("registry: restore entry %q: %w", es.Sig.Key, err)
		}
		r.entries = append(r.entries, &entry{
			sig:       es.Sig,
			kind:      es.Kind,
			model:     m,
			source:    es.Source,
			sourceGen: es.SourceGen,
			hits:      es.Hits,
			lastUse:   es.LastUse,
		})
	}
	return r, nil
}
