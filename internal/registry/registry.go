// Package registry implements the fleet-level model registry of the
// ECCO-style correlated-recovery path: a bounded store of recovered drift
// models keyed by quantized regime signature (cluster.Signature), shared by
// the trainers of pipelines that share a bootstrap substrate. A trainer
// about to build a drift recovery resolves its job's signature here first:
//
//	adopt     — a stored model's regime is within the adoption distance;
//	            install it directly, no training.
//	coalesce  — another pipeline is already building a model for this
//	            regime; wait for that build and install its result
//	            (one training job serves every correlated stream).
//	warm      — a stored model is regime-adjacent; warm-start training
//	            from its weights instead of scratch initialisation.
//	miss      — nothing close enough; claim the regime and build from
//	            scratch, then publish for the rest of the fleet.
//
// Resolution happens at job-schedule time (trainer enqueue), so with a
// deterministic schedule the builder identity — and therefore every
// adopted model's weights — is deterministic. Claims registered at enqueue
// plus FIFO trainer queues also make cross-trainer coalesce waits
// deadlock-free: a wait cycle would need every waiter to have been
// enqueued after its builder claim yet before its own queue's builder,
// which orders the enqueue times in a strictly decreasing cycle —
// impossible (see DESIGN.md §9).
package registry

import (
	"errors"
	"fmt"
	"sync"

	"odin/internal/cluster"
	"odin/internal/core"
	"odin/internal/detect"
)

// Defaults for capacity and the adoption gates.
const (
	DefaultCapacity      = 32
	DefaultAdoptDistance = 0.25
	DefaultWarmDistance  = 0.6
)

// Sentinel errors returned by Ticket.Wait.
var (
	// ErrBuildAborted marks a coalesced build whose builder failed or was
	// dropped; the waiter should fall back to building on its own.
	ErrBuildAborted = errors.New("registry: coalesced build aborted")
	// ErrCanceled marks a wait abandoned because the waiter itself is
	// shutting down.
	ErrCanceled = errors.New("registry: wait canceled")
)

// Policy is the per-pipeline adoption gate: how close a stored (or
// in-flight) regime must be before its model is reused. Distances are
// cluster.Signature.DistanceTo values in [0, 1].
type Policy struct {
	// AdoptDistance is the threshold at or under which a stored model is
	// adopted outright and an in-flight build is coalesced onto. Keeping it
	// tight is the guard against transient accuracy fluctuations pulling in
	// a foreign model.
	AdoptDistance float64
	// WarmDistance is the threshold at or under which a stored model's
	// weights warm-start a new build. Must be ≥ AdoptDistance.
	WarmDistance float64
}

// DefaultPolicy returns the default adoption gates.
func DefaultPolicy() Policy {
	return Policy{AdoptDistance: DefaultAdoptDistance, WarmDistance: DefaultWarmDistance}
}

// Stats is a snapshot of registry telemetry.
type Stats struct {
	// Size and Capacity describe the resident entry set.
	Size, Capacity int
	// Lookups counts Resolve calls; every lookup ends as exactly one of
	// AdoptHits, Coalesced, WarmHits or Misses.
	Lookups int
	// AdoptHits counts resolutions that returned a stored model for direct
	// installation.
	AdoptHits int
	// WarmHits counts resolutions that returned a stored model as a
	// warm-start source.
	WarmHits int
	// Coalesced counts resolutions attached to an in-flight build.
	Coalesced int
	// Misses counts resolutions that claimed a fresh build.
	Misses int
	// Published counts models stored via Claim.Publish.
	Published int
	// Evicted counts entries displaced by the LRU capacity bound.
	Evicted int
}

// EntryInfo describes one resident entry for introspection.
type EntryInfo struct {
	Key       string
	Kind      detect.Kind
	Source    string
	SourceGen uint64
	Hits      int
}

// entry is one resident model.
type entry struct {
	sig       cluster.Signature
	kind      detect.Kind
	model     *core.Model
	source    string
	sourceGen uint64
	hits      int
	lastUse   uint64
}

// build is one in-flight claimed build and its coalesced waiters (FIFO).
type build struct {
	sig     cluster.Signature
	kind    detect.Kind
	source  string
	tickets []*Ticket
	done    bool
}

// Registry is the fleet-level model store. All methods are safe for
// concurrent use by any number of trainers.
type Registry struct {
	mu       sync.Mutex
	capacity int
	tick     uint64
	entries  []*entry
	inflight []*build
	stats    Stats
}

// New returns an empty registry bounded to capacity resident models
// (DefaultCapacity when capacity ≤ 0).
func New(capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Registry{capacity: capacity}
}

// Outcome classifies a resolution.
type Outcome int

// Resolution outcomes. OutcomeNone is the zero value: the registry was not
// consulted (no registry attached, or the job carries no signature).
const (
	OutcomeNone Outcome = iota
	OutcomeMiss
	OutcomeAdopt
	OutcomeWarm
	OutcomeCoalesce
)

// String names the outcome for logs and benches.
func (o Outcome) String() string {
	switch o {
	case OutcomeMiss:
		return "miss"
	case OutcomeAdopt:
		return "adopt"
	case OutcomeWarm:
		return "warm"
	case OutcomeCoalesce:
		return "coalesce"
	}
	return "none"
}

// Resolution is the registry's verdict for one training job.
type Resolution struct {
	Outcome Outcome
	// Model is the stored model to install (OutcomeAdopt) or to warm-start
	// from (OutcomeWarm).
	Model *core.Model
	// Source and SourceGen are the publishing pipeline and its model
	// generation at publish time — the provenance of Model.
	Source    string
	SourceGen uint64
	// Dist is the signature distance to the matched entry or in-flight
	// build.
	Dist float64
	// Ticket is the wait handle of a coalesced resolution.
	Ticket *Ticket
	// Claim is the build claim of a miss; the resolver MUST eventually
	// Publish or Abort it, or coalesced waiters hang.
	Claim *Claim
}

// Ticket is a coalesced waiter's handle on an in-flight build.
type Ticket struct {
	done  chan struct{}
	model *core.Model
	src   string
	gen   uint64
}

// Wait blocks until the build publishes (returning its model and
// provenance), aborts (ErrBuildAborted), or cancel fires (ErrCanceled).
func (t *Ticket) Wait(cancel <-chan struct{}) (*core.Model, string, uint64, error) {
	select {
	case <-t.done:
	case <-cancel:
		// Re-check: a concurrent publish beats cancellation.
		select {
		case <-t.done:
		default:
			return nil, "", 0, ErrCanceled
		}
	}
	if t.model == nil {
		return nil, "", 0, ErrBuildAborted
	}
	return t.model, t.src, t.gen, nil
}

// Claim is a builder's exclusive hold on a regime while its model trains.
type Claim struct {
	r *Registry
	b *build
}

// Resolve decides how a training job for regime sig should proceed, under
// the given adoption policy. sig must be non-nil; jobs without a signature
// should bypass the registry entirely. source names the resolving pipeline
// for provenance.
func (r *Registry) Resolve(sig *cluster.Signature, kind detect.Kind, source string, pol Policy) Resolution {
	if pol.AdoptDistance <= 0 {
		pol.AdoptDistance = DefaultAdoptDistance
	}
	if pol.WarmDistance <= 0 {
		pol.WarmDistance = DefaultWarmDistance
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tick++
	r.stats.Lookups++

	var best *entry
	bestD := 0.0
	for _, e := range r.entries {
		if e.kind != kind {
			continue
		}
		if d := sig.DistanceTo(e.sig); best == nil || d < bestD {
			best, bestD = e, d
		}
	}
	if best != nil && bestD <= pol.AdoptDistance {
		best.hits++
		best.lastUse = r.tick
		r.stats.AdoptHits++
		return Resolution{
			Outcome: OutcomeAdopt, Model: best.model,
			Source: best.source, SourceGen: best.sourceGen, Dist: bestD,
		}
	}
	// Coalesce onto an adopt-close in-flight build before settling for a
	// warm start: the fresh build is for exactly this regime.
	for _, b := range r.inflight {
		if b.kind != kind {
			continue
		}
		if d := sig.DistanceTo(b.sig); d <= pol.AdoptDistance {
			t := &Ticket{done: make(chan struct{})}
			b.tickets = append(b.tickets, t) // FIFO: publish order = registration order
			r.stats.Coalesced++
			return Resolution{Outcome: OutcomeCoalesce, Ticket: t, Source: b.source, Dist: d}
		}
	}
	if best != nil && bestD <= pol.WarmDistance {
		best.hits++
		best.lastUse = r.tick
		r.stats.WarmHits++
		return Resolution{
			Outcome: OutcomeWarm, Model: best.model,
			Source: best.source, SourceGen: best.sourceGen, Dist: bestD,
		}
	}
	r.stats.Misses++
	b := &build{sig: *sig, kind: kind, source: source}
	r.inflight = append(r.inflight, b)
	return Resolution{Outcome: OutcomeMiss, Claim: &Claim{r: r, b: b}}
}

// Publish stores the claim's finished model (evicting the least recently
// used entry past capacity) and hands it to every coalesced waiter in FIFO
// order. gen is the builder pipeline's model generation — the ModelGen
// provenance recorded with the entry. Idempotent after the first
// Publish/Abort.
func (c *Claim) Publish(m *core.Model, gen uint64) {
	if m == nil {
		c.Abort()
		return
	}
	r := c.r
	r.mu.Lock()
	if c.b.done {
		r.mu.Unlock()
		return
	}
	c.b.done = true
	r.removeInflight(c.b)
	r.tick++
	r.entries = append(r.entries, &entry{
		sig: c.b.sig, kind: c.b.kind, model: m,
		source: c.b.source, sourceGen: gen, lastUse: r.tick,
	})
	r.stats.Published++
	for len(r.entries) > r.capacity {
		r.evictLRULocked()
	}
	tickets := c.b.tickets
	r.mu.Unlock()
	for _, t := range tickets {
		t.model, t.src, t.gen = m, c.b.source, gen
		close(t.done)
	}
}

// Abort releases the claim without publishing: coalesced waiters observe
// ErrBuildAborted and fall back to their own builds. Idempotent.
func (c *Claim) Abort() {
	r := c.r
	r.mu.Lock()
	if c.b.done {
		r.mu.Unlock()
		return
	}
	c.b.done = true
	r.removeInflight(c.b)
	tickets := c.b.tickets
	r.mu.Unlock()
	for _, t := range tickets {
		close(t.done) // model stays nil → ErrBuildAborted
	}
}

// removeInflight drops b from the in-flight list. Caller holds r.mu.
func (r *Registry) removeInflight(b *build) {
	for i, ib := range r.inflight {
		if ib == b {
			r.inflight = append(r.inflight[:i], r.inflight[i+1:]...)
			return
		}
	}
}

// evictLRULocked removes the least recently used entry. Caller holds r.mu.
func (r *Registry) evictLRULocked() {
	idx := 0
	for i, e := range r.entries {
		if e.lastUse < r.entries[idx].lastUse {
			idx = i
		}
	}
	r.entries = append(r.entries[:idx], r.entries[idx+1:]...)
	r.stats.Evicted++
}

// Stats returns a snapshot of the registry telemetry.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.Size = len(r.entries)
	st.Capacity = r.capacity
	return st
}

// Entries lists the resident entries (most recently published last).
func (r *Registry) Entries() []EntryInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EntryInfo, len(r.entries))
	for i, e := range r.entries {
		out[i] = EntryInfo{
			Key: e.sig.Key, Kind: e.kind,
			Source: e.source, SourceGen: e.sourceGen, Hits: e.hits,
		}
	}
	return out
}

// String renders a one-line summary for logs.
func (r *Registry) String() string {
	st := r.Stats()
	return fmt.Sprintf("registry(%d/%d entries, %d adopt, %d coalesce, %d warm, %d miss)",
		st.Size, st.Capacity, st.AdoptHits, st.Coalesced, st.WarmHits, st.Misses)
}
