package registry

import (
	"errors"
	"sync"
	"testing"

	"odin/internal/cluster"
	"odin/internal/core"
	"odin/internal/detect"
)

// sigAt builds a synthetic signature centred at x with unit scale and a
// fixed ∆-band PMF, so distances are controlled by the centroid alone.
func sigAt(x float64) *cluster.Signature {
	return &cluster.Signature{
		Key:      "t",
		Centroid: []float64{x, 0, 0, 0},
		Scale:    1,
		Hist:     []float64{0.25, 0.25, 0.25, 0.25},
	}
}

func testModel(kind detect.Kind) *core.Model {
	return &core.Model{Kind: kind, ClusterID: 1}
}

var testPol = Policy{AdoptDistance: 0.25, WarmDistance: 0.6}

// publishAt resolves a miss at x and publishes a model for it.
func publishAt(t *testing.T, r *Registry, x float64, kind detect.Kind, src string) *core.Model {
	t.Helper()
	res := r.Resolve(sigAt(x), kind, src, testPol)
	if res.Outcome != OutcomeMiss {
		t.Fatalf("expected miss at %v, got %v", x, res.Outcome)
	}
	m := testModel(kind)
	res.Claim.Publish(m, 1)
	return m
}

func TestResolveMissThenAdopt(t *testing.T) {
	r := New(4)
	m := publishAt(t, r, 0, detect.KindSpecialized, "cam0")

	res := r.Resolve(sigAt(0.01), detect.KindSpecialized, "cam1", testPol)
	if res.Outcome != OutcomeAdopt {
		t.Fatalf("expected adopt, got %v", res.Outcome)
	}
	if res.Model != m || res.Source != "cam0" || res.SourceGen != 1 {
		t.Fatalf("adopt provenance wrong: %+v", res)
	}
	st := r.Stats()
	if st.Lookups != 2 || st.Misses != 1 || st.AdoptHits != 1 || st.Published != 1 || st.Size != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestResolveWarmAtMediumDistance(t *testing.T) {
	r := New(4)
	publishAt(t, r, 0, detect.KindSpecialized, "cam0")

	// Centroid distance 1 with unit scales → dc = 1/(1+1) = 0.5, identical
	// PMFs → total 0.75·0.5 = 0.375: outside adopt (0.25), inside warm (0.6).
	res := r.Resolve(sigAt(1), detect.KindSpecialized, "cam1", testPol)
	if res.Outcome != OutcomeWarm {
		t.Fatalf("expected warm at distance 0.375, got %v (d=%v)", res.Outcome, res.Dist)
	}
	if res.Model == nil {
		t.Fatal("warm resolution must carry the source model")
	}
}

func TestResolveFarIsMiss(t *testing.T) {
	r := New(4)
	publishAt(t, r, 0, detect.KindSpecialized, "cam0")
	res := r.Resolve(sigAt(100), detect.KindSpecialized, "cam1", testPol)
	if res.Outcome != OutcomeMiss {
		t.Fatalf("expected miss far away, got %v", res.Outcome)
	}
	res.Claim.Abort()
}

func TestResolveKindMismatchNeverMatches(t *testing.T) {
	r := New(4)
	publishAt(t, r, 0, detect.KindSpecialized, "cam0")
	res := r.Resolve(sigAt(0), detect.KindLite, "cam1", testPol)
	if res.Outcome != OutcomeMiss {
		t.Fatalf("lite lookup must not match specialized entry, got %v", res.Outcome)
	}
	res.Claim.Abort()
}

func TestCoalesceFIFOFulfillment(t *testing.T) {
	r := New(4)
	res := r.Resolve(sigAt(0), detect.KindSpecialized, "cam0", testPol)
	if res.Outcome != OutcomeMiss {
		t.Fatalf("expected miss, got %v", res.Outcome)
	}

	const waiters = 3
	tickets := make([]*Ticket, waiters)
	for i := 0; i < waiters; i++ {
		w := r.Resolve(sigAt(0.01), detect.KindSpecialized, "cam1", testPol)
		if w.Outcome != OutcomeCoalesce {
			t.Fatalf("waiter %d: expected coalesce, got %v", i, w.Outcome)
		}
		tickets[i] = w.Ticket
	}

	m := testModel(detect.KindSpecialized)
	var wg sync.WaitGroup
	got := make([]*core.Model, waiters)
	for i, tk := range tickets {
		wg.Add(1)
		go func(i int, tk *Ticket) {
			defer wg.Done()
			gm, src, gen, err := tk.Wait(nil)
			if err != nil || src != "cam0" || gen != 7 {
				t.Errorf("waiter %d: wait = (%v,%q,%d,%v)", i, gm, src, gen, err)
			}
			got[i] = gm
		}(i, tk)
	}
	res.Claim.Publish(m, 7)
	wg.Wait()
	for i, gm := range got {
		if gm != m {
			t.Fatalf("waiter %d got %v, want the published model", i, gm)
		}
	}
	if st := r.Stats(); st.Coalesced != waiters || st.Published != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestAbortFailsWaiters(t *testing.T) {
	r := New(4)
	res := r.Resolve(sigAt(0), detect.KindSpecialized, "cam0", testPol)
	w := r.Resolve(sigAt(0), detect.KindSpecialized, "cam1", testPol)
	if w.Outcome != OutcomeCoalesce {
		t.Fatalf("expected coalesce, got %v", w.Outcome)
	}
	res.Claim.Abort()
	if _, _, _, err := w.Ticket.Wait(nil); !errors.Is(err, ErrBuildAborted) {
		t.Fatalf("wait after abort = %v, want ErrBuildAborted", err)
	}
	// After the abort the regime is unclaimed again: a new lookup misses.
	res2 := r.Resolve(sigAt(0), detect.KindSpecialized, "cam2", testPol)
	if res2.Outcome != OutcomeMiss {
		t.Fatalf("expected fresh miss after abort, got %v", res2.Outcome)
	}
	res2.Claim.Abort()
}

func TestWaitCancel(t *testing.T) {
	r := New(4)
	res := r.Resolve(sigAt(0), detect.KindSpecialized, "cam0", testPol)
	w := r.Resolve(sigAt(0), detect.KindSpecialized, "cam1", testPol)
	cancel := make(chan struct{})
	close(cancel)
	if _, _, _, err := w.Ticket.Wait(cancel); !errors.Is(err, ErrCanceled) {
		t.Fatalf("wait = %v, want ErrCanceled", err)
	}
	res.Claim.Abort()
}

func TestPublishBeatsCancel(t *testing.T) {
	r := New(4)
	res := r.Resolve(sigAt(0), detect.KindSpecialized, "cam0", testPol)
	w := r.Resolve(sigAt(0), detect.KindSpecialized, "cam1", testPol)
	m := testModel(detect.KindSpecialized)
	res.Claim.Publish(m, 1)
	cancel := make(chan struct{})
	close(cancel) // already-published ticket wins over a closed cancel
	gm, _, _, err := w.Ticket.Wait(cancel)
	if err != nil || gm != m {
		t.Fatalf("wait = (%v, %v), want published model", gm, err)
	}
}

func TestPublishNilAborts(t *testing.T) {
	r := New(4)
	res := r.Resolve(sigAt(0), detect.KindSpecialized, "cam0", testPol)
	res.Claim.Publish(nil, 1)
	if st := r.Stats(); st.Published != 0 || st.Size != 0 {
		t.Fatalf("nil publish must abort: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	r := New(2)
	publishAt(t, r, 0, detect.KindSpecialized, "cam0")
	publishAt(t, r, 100, detect.KindSpecialized, "cam0")
	// Touch the first entry so the second becomes LRU.
	if res := r.Resolve(sigAt(0), detect.KindSpecialized, "cam1", testPol); res.Outcome != OutcomeAdopt {
		t.Fatalf("expected adopt, got %v", res.Outcome)
	}
	publishAt(t, r, 200, detect.KindSpecialized, "cam0")

	st := r.Stats()
	if st.Size != 2 || st.Evicted != 1 {
		t.Fatalf("expected eviction at capacity 2: %+v", st)
	}
	// The touched entry survived; the untouched one is gone.
	if res := r.Resolve(sigAt(0), detect.KindSpecialized, "cam1", testPol); res.Outcome != OutcomeAdopt {
		t.Fatalf("recently used entry was evicted")
	}
	res := r.Resolve(sigAt(100), detect.KindSpecialized, "cam1", testPol)
	if res.Outcome == OutcomeAdopt {
		t.Fatalf("LRU entry should have been evicted")
	}
	if res.Claim != nil {
		res.Claim.Abort()
	}
}

func TestPublishAbortIdempotent(t *testing.T) {
	r := New(4)
	res := r.Resolve(sigAt(0), detect.KindSpecialized, "cam0", testPol)
	m := testModel(detect.KindSpecialized)
	res.Claim.Publish(m, 1)
	res.Claim.Publish(m, 2) // no double insert
	res.Claim.Abort()       // no panic on closed tickets
	if st := r.Stats(); st.Published != 1 || st.Size != 1 {
		t.Fatalf("idempotence violated: %+v", st)
	}
}

func TestConcurrentResolvePublish(t *testing.T) {
	r := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res := r.Resolve(sigAt(float64(i%4)*100), detect.KindSpecialized, "cam", testPol)
				switch res.Outcome {
				case OutcomeMiss:
					res.Claim.Publish(testModel(detect.KindSpecialized), 1)
				case OutcomeCoalesce:
					res.Ticket.Wait(nil)
				}
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if st.Lookups != 400 {
		t.Fatalf("lookups = %d, want 400", st.Lookups)
	}
	if st.AdoptHits+st.WarmHits+st.Coalesced+st.Misses != st.Lookups {
		t.Fatalf("resolution counters don't partition lookups: %+v", st)
	}
}
