// Package exp contains one runner per table and figure of the paper's
// evaluation (§6), plus the shared experiment context that trains and
// caches the models the experiments share (DA-GAN, baseline YOLO,
// per-subset specialized and lite models). Each runner prints the same
// rows/series the paper reports and returns structured results for the
// benchmark harness.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"odin/internal/core"
	"odin/internal/detect"
	"odin/internal/gan"
	"odin/internal/synth"
)

// Scale selects the experiment size: Quick keeps the full suite in the
// minutes range for `go test -bench`; Full uses larger streams and training
// budgets (closer to the paper's counts) for `odin-bench -scale full`.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// String returns the CLI name ParseScale accepts.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "", "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return Quick, fmt.Errorf("exp: unknown scale %q (want quick or full)", s)
}

// Params bundles the per-scale workload sizes and training budgets. The
// training-budget parity between the baseline and the specialists follows
// Table 3's protocol ("we train each model on the same number of
// samples"); see DESIGN.md.
type Params struct {
	// Detection models.
	TrainFrames int // per-model training frames (baseline and specialists)
	TrainEpochs int
	LiteEpochs  int
	TestFrames  int

	// DA-GAN bootstrap.
	BootFrames  int
	DAGANEpochs int

	// Table 1.
	T1TrainPerClass int
	T1TestInliers   int
	T1GenEpochs     int

	// Streaming experiments.
	Table2PerSubset int // frames per introduced subset
	Fig9PhaseLen    int // frames per drift phase
	Fig9Window      int // mAP reporting window
	Table6Frames    int // query stream length
	FilterEpochs    int
}

// ParamsFor returns the workload parameters of a scale.
func ParamsFor(s Scale) Params {
	if s == Full {
		return Params{
			TrainFrames: 800, TrainEpochs: 60, LiteEpochs: 40, TestFrames: 200,
			BootFrames: 1500, DAGANEpochs: 15,
			T1TrainPerClass: 120, T1TestInliers: 200, T1GenEpochs: 15,
			Table2PerSubset: 900, Fig9PhaseLen: 1500, Fig9Window: 300,
			Table6Frames: 600, FilterEpochs: 15,
		}
	}
	return Params{
		TrainFrames: 400, TrainEpochs: 40, LiteEpochs: 25, TestFrames: 80,
		BootFrames: 600, DAGANEpochs: 8,
		T1TrainPerClass: 60, T1TestInliers: 120, T1GenEpochs: 8,
		Table2PerSubset: 600, Fig9PhaseLen: 800, Fig9Window: 200,
		Table6Frames: 300, FilterEpochs: 10,
	}
}

// Context owns the shared, lazily trained artifacts. All randomness is
// seeded, so results are deterministic per scale.
type Context struct {
	Scale Scale
	P     Params
	Scene synth.SceneConfig

	dagan    *gan.DAGAN
	baseline *detect.GridDetector
	spec     map[synth.Subset]*detect.GridDetector
	lite     map[synth.Subset]*detect.GridDetector
	tests    map[synth.Subset][]*synth.Frame

	log io.Writer
}

// NewContext creates an experiment context at the given scale.
func NewContext(scale Scale) *Context {
	return &Context{
		Scale: scale,
		P:     ParamsFor(scale),
		Scene: synth.DefaultSceneConfig(),
		spec:  make(map[synth.Subset]*detect.GridDetector),
		lite:  make(map[synth.Subset]*detect.GridDetector),
		tests: make(map[synth.Subset][]*synth.Frame),
	}
}

// SetLog directs progress messages (model training notices) to w.
func (c *Context) SetLog(w io.Writer) { c.log = w }

func (c *Context) logf(format string, args ...interface{}) {
	if c.log != nil {
		fmt.Fprintf(c.log, format+"\n", args...)
	}
}

// Encoder returns the frame→projector-input encoder (downsample by 2).
func (c *Context) Encoder() core.FrameEncoder { return core.DownsampleEncoder(2) }

// DAGANConfig returns the scene DA-GAN architecture.
func (c *Context) DAGANConfig() gan.Config {
	return gan.Config{
		InputDim: core.EncodedDim(c.Scene, 2),
		Latent:   16,
		Hidden:   []int{128, 48},
		LR:       0.001,
		Seed:     7,
	}
}

// DAGAN lazily trains the scene DA-GAN on bootstrap frames (§6.2: trained
// on a held-out unlabeled subset).
func (c *Context) DAGAN() *gan.DAGAN {
	if c.dagan == nil {
		start := time.Now()
		gen := synth.NewSceneGen(1, c.Scene)
		boot := gen.Dataset(synth.FullData, c.P.BootFrames)
		c.dagan = core.TrainDAGAN(boot, c.Encoder(), c.DAGANConfig(), c.P.DAGANEpochs, 32)
		c.logf("trained DA-GAN on %d frames in %s", c.P.BootFrames, time.Since(start).Round(time.Second))
	}
	return c.dagan
}

// Baseline lazily trains the heavyweight YOLO baseline on FULL-DATA with
// the per-model training budget.
func (c *Context) Baseline() *detect.GridDetector {
	if c.baseline == nil {
		start := time.Now()
		gen := synth.NewSceneGen(99, c.Scene)
		d := detect.NewGridDetector(detect.YOLOConfig(c.Scene.H, c.Scene.W))
		d.Fit(detect.SamplesFromFrames(gen.Dataset(synth.FullData, c.P.TrainFrames)), c.P.TrainEpochs, 16)
		c.baseline = d
		c.logf("trained baseline YOLO in %s", time.Since(start).Round(time.Second))
	}
	return c.baseline
}

// Specialized lazily trains the YOLO-Specialized model for a subset.
func (c *Context) Specialized(s synth.Subset) *detect.GridDetector {
	if d, ok := c.spec[s]; ok {
		return d
	}
	start := time.Now()
	gen := synth.NewSceneGen(200+uint64(s), c.Scene)
	cfg := detect.SpecializedConfig(c.Scene.H, c.Scene.W)
	cfg.Seed = 300 + uint64(s)
	d := detect.NewGridDetector(cfg)
	d.Fit(detect.SamplesFromFrames(gen.Dataset(s, c.P.TrainFrames)), c.P.TrainEpochs, 16)
	c.spec[s] = d
	c.logf("trained YOLO-Specialized(%v) in %s", s, time.Since(start).Round(time.Second))
	return d
}

// Lite lazily distills the YOLO-Lite student for a subset from the
// baseline's outputs.
func (c *Context) Lite(s synth.Subset) *detect.GridDetector {
	if d, ok := c.lite[s]; ok {
		return d
	}
	start := time.Now()
	gen := synth.NewSceneGen(400+uint64(s), c.Scene)
	frames := gen.Dataset(s, c.P.TrainFrames)
	cfg := detect.LiteConfig(c.Scene.H, c.Scene.W)
	cfg.Seed = 500 + uint64(s)
	d := detect.NewGridDetector(cfg)
	d.Fit(detect.DistillSamples(c.Baseline(), frames, 0.4), c.P.LiteEpochs, 16)
	c.lite[s] = d
	c.logf("distilled YOLO-Lite(%v) in %s", s, time.Since(start).Round(time.Second))
	return d
}

// TestSet lazily renders the held-out evaluation frames of a subset.
func (c *Context) TestSet(s synth.Subset) []*synth.Frame {
	if f, ok := c.tests[s]; ok {
		return f
	}
	gen := synth.NewSceneGen(600+uint64(s), c.Scene)
	f := gen.Dataset(s, c.P.TestFrames)
	c.tests[s] = f
	return f
}

// MAPOn evaluates a detector on a subset's test set.
func (c *Context) MAPOn(d detect.Detector, s synth.Subset) float64 {
	return detect.EvaluateDetector(d, c.TestSet(s), 0.5).MAP
}

// --- table rendering ---

// Table accumulates aligned rows for terminal output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; values are formatted with %v, floats with 4 digits.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct renders a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
