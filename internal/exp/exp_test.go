package exp

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"odin/internal/detect"
)

// tinyContext returns a context with minimal budgets for unit tests.
func tinyContext() *Context {
	c := NewContext(Quick)
	c.P = Params{
		TrainFrames: 60, TrainEpochs: 3, LiteEpochs: 2, TestFrames: 20,
		BootFrames: 60, DAGANEpochs: 1,
		T1TrainPerClass: 10, T1TestInliers: 20, T1GenEpochs: 1,
		Table2PerSubset: 150, Fig9PhaseLen: 120, Fig9Window: 60,
		Table6Frames: 30, FilterEpochs: 1,
	}
	return c
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"": Quick, "quick": Quick, "Full": Full} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale should error")
	}
}

func TestParamsScalesOrdered(t *testing.T) {
	q, f := ParamsFor(Quick), ParamsFor(Full)
	if f.TrainFrames <= q.TrainFrames || f.Fig9PhaseLen <= q.Fig9PhaseLen {
		t.Fatal("full scale must be larger than quick")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "A", "B")
	tb.Add("x", 0.5)
	tb.Add("longer-cell", 1)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "longer-cell") {
		t.Fatalf("table output wrong:\n%s", out)
	}
	if !strings.Contains(out, "0.5000") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.25) != "25%" {
		t.Fatalf("Pct: %s", Pct(0.25))
	}
}

func TestContextCachesModels(t *testing.T) {
	c := tinyContext()
	a := c.Baseline()
	b := c.Baseline()
	if a != b {
		t.Fatal("baseline should be cached")
	}
	s1 := c.Specialized(1)
	s2 := c.Specialized(1)
	if s1 != s2 {
		t.Fatal("specialist should be cached")
	}
	if len(c.TestSet(0)) != c.P.TestFrames {
		t.Fatal("test set size")
	}
}

func TestRunTable4Shape(t *testing.T) {
	c := tinyContext()
	var buf bytes.Buffer
	r := RunTable4(c, &buf)
	if len(r.Costs) != 3 || len(r.MeasuredGo) != 3 {
		t.Fatalf("table4 result incomplete: %+v", r)
	}
	yolo := r.Costs[detect.KindYOLO]
	spec := r.Costs[detect.KindSpecialized]
	if yolo.FPS >= spec.FPS || yolo.SizeMB <= spec.SizeMB {
		t.Fatal("cost ordering violated")
	}
	if !strings.Contains(buf.String(), "Table 4") {
		t.Fatal("table not rendered")
	}
}

func TestRunFig4Shape(t *testing.T) {
	c := tinyContext()
	r := RunFig4(c, io.Discard)
	if r.Band.Lo < 0 || r.Band.Hi > 1 || r.Band.Lo >= r.Band.Hi {
		t.Fatalf("band invalid: %v", r.Band)
	}
	if r.InBand < 0.5 {
		t.Fatalf("∆=0.75 band should hold most mass, got %v", r.InBand)
	}
}

func TestRunFig5Shape(t *testing.T) {
	c := tinyContext()
	c.P.T1GenEpochs = 5
	r := RunFig5(c, io.Discard)
	if r.OutlierErr <= 0 || r.InlierErr <= 0 {
		t.Fatal("reconstruction errors must be positive")
	}
	if r.OutlierErr < r.InlierErr {
		t.Fatalf("unseen digits should reconstruct worse: in=%v out=%v", r.InlierErr, r.OutlierErr)
	}
}

func TestFig9StreamSchedule(t *testing.T) {
	c := tinyContext()
	stream := fig9Stream(c, 5)
	if len(stream) != 4*c.P.Fig9PhaseLen {
		t.Fatalf("stream length %d", len(stream))
	}
	// Phase 1 must be pure night.
	for _, f := range stream[:c.P.Fig9PhaseLen] {
		if f.Domain.Time.String() != "night" {
			t.Fatalf("phase 1 should be night-only, got %v", f.Domain)
		}
	}
	// Later phases include day.
	day := false
	for _, f := range stream[c.P.Fig9PhaseLen:] {
		if f.Domain.Time.String() == "day" {
			day = true
			break
		}
	}
	if !day {
		t.Fatal("later phases should include day frames")
	}
}

func TestAblationBands(t *testing.T) {
	c := tinyContext()
	r := RunAblationBands(c, io.Discard)
	if len(r.Rows) != 9 {
		t.Fatalf("expected 9 sweep rows, got %d", len(r.Rows))
	}
	// The default configuration (∆=0.75, margin=0.5) must find exactly the
	// two concepts and detect the second one.
	for _, row := range r.Rows {
		if row.Delta == 0.75 && row.TailMargin == 0.5 {
			if row.Clusters != 2 {
				t.Fatalf("default config found %d clusters, want 2", row.Clusters)
			}
			if row.DriftAt < 0 {
				t.Fatal("default config missed the second concept")
			}
		}
	}
	// The tail margin must reduce temp-cluster pollution vs no margin at
	// the same ∆.
	var noMargin, withMargin int
	for _, row := range r.Rows {
		if row.Delta == 0.75 {
			switch row.TailMargin {
			case 0:
				noMargin = row.Outliers
			case 0.5:
				withMargin = row.Outliers
			}
		}
	}
	if withMargin >= noMargin {
		t.Fatalf("tail margin should reduce temp routing: %d vs %d", withMargin, noMargin)
	}
}
