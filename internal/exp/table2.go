package exp

import (
	"fmt"
	"io"

	"odin/internal/cluster"
	"odin/internal/core"
	"odin/internal/synth"
)

// Table2Result is the unsupervised-cluster × labelled-subset distribution
// matrix of Table 2.
type Table2Result struct {
	// Clusters discovered by the DETECTOR, in promotion order.
	ClusterLabels []string
	// Subsets lists the 15 weather×time domains.
	Subsets []synth.Domain
	// Share[cluster][subset] is the fraction of that subset's probe frames
	// assigned to the cluster.
	Share [][]float64
	// Unassigned[subset] is the out-of-band fraction.
	Unassigned  []float64
	NumClusters int
}

// RunTable2 streams scenes with gradual drift through the DETECTOR (DA-GAN
// projection + ∆-band clustering) and reports how the discovered clusters
// partition the 15 labelled weather×time subsets — the Table 2 experiment.
func RunTable2(c *Context, w io.Writer) Table2Result {
	dg := c.DAGAN()
	ccfg := cluster.DefaultConfig()
	det := core.NewDetector(dg, ccfg, c.Encoder())

	// Gradual-drift workload: the four major environments are introduced
	// one after another, mirroring §6.2's "workload that exhibits gradual
	// drift by introducing images from the outlier subsets".
	order := []synth.Subset{synth.DayData, synth.NightData, synth.RainData, synth.SnowData}
	gen := synth.NewSceneGen(71, c.Scene)
	for _, sub := range order {
		for i := 0; i < c.P.Table2PerSubset; i++ {
			det.Observe(gen.GenerateSubset(sub).Image)
		}
	}

	subsets := synth.LabeledSubsets()
	clusters := det.Clusters.Permanent
	res := Table2Result{
		Subsets:     subsets,
		NumClusters: len(clusters),
		Unassigned:  make([]float64, len(subsets)),
	}
	greek := []string{"C-α", "C-β", "C-γ", "C-δ", "C-ε", "C-ζ", "C-η"}
	for i := range clusters {
		label := fmt.Sprintf("C-%d", i)
		if i < len(greek) {
			label = greek[i]
		}
		res.ClusterLabels = append(res.ClusterLabels, label)
	}
	res.Share = make([][]float64, len(clusters))
	for i := range res.Share {
		res.Share[i] = make([]float64, len(subsets))
	}

	// Probe each labelled subset with fresh frames; assign by nearest
	// containing cluster (falling back to nearest centroid, as SELECTOR
	// would).
	probeGen := synth.NewSceneGen(72, c.Scene)
	perSubset := 40
	if c.Scale == Full {
		perSubset = 100
	}
	for si, dom := range subsets {
		for i := 0; i < perSubset; i++ {
			f := probeGen.Generate(dom)
			z := det.Project(f.Image)
			best := -1
			bestD := 0.0
			for ci, cl := range clusters {
				if cl.Contains(z) {
					if d := cl.Distance(z); best == -1 || d < bestD {
						best = ci
						bestD = d
					}
				}
			}
			if best == -1 {
				res.Unassigned[si] += 1 / float64(perSubset)
				// Nearest-centroid fallback for the distribution table.
				for ci, cl := range clusters {
					if d := cl.Distance(z); best == -1 || d < bestD {
						best = ci
						bestD = d
					}
				}
			}
			if best >= 0 {
				res.Share[best][si] += 1 / float64(perSubset)
			}
		}
	}

	header := []string{"Cluster"}
	for _, d := range subsets {
		header = append(header, d.String())
	}
	t := NewTable(fmt.Sprintf("Table 2: Distribution of frames across %d discovered clusters", len(clusters)), header...)
	for ci := range clusters {
		row := []interface{}{res.ClusterLabels[ci]}
		for si := range subsets {
			row = append(row, Pct(res.Share[ci][si]))
		}
		t.Add(row...)
	}
	t.Render(w)
	fmt.Fprintf(w, "clusters discovered: %d (paper: 4); drift events: %d\n",
		len(clusters), len(det.Clusters.Events()))
	return res
}
