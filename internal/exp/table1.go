package exp

import (
	"fmt"
	"io"

	"odin/internal/gan"
	"odin/internal/outlier"
)

// Table1Result holds drift-detection F1 per detector per outlier fraction
// for both datasets.
type Table1Result struct {
	Fractions []float64
	// MNIST[detector][fraction index], detectors: LOF, DRAE, AE, AAE, PCA, DG.
	MNIST map[string][]float64
	// CIFAR[detector][fraction index], detectors: AE, AAE, DG.
	CIFAR map[string][]float64
}

// table1Fractions mirrors the paper's outlier-percentage sweep.
var table1Fractions = []float64{0, 0.10, 0.20, 0.30, 0.40, 0.50}

// RunTable1 reproduces Table 1: drift-detection F1 of LOF / DRAE / AE /
// AAE / PCA / DA-GAN (DG) on the MNIST-like digits, and AE / AAE / DG on
// the CIFAR-like textures, as the outlier fraction sweeps 0–50%.
func RunTable1(c *Context, w io.Writer) Table1Result {
	res := Table1Result{
		Fractions: table1Fractions,
		MNIST:     make(map[string][]float64),
		CIFAR:     make(map[string][]float64),
	}

	inlierClasses := []int{0, 1, 2, 3, 4, 5, 6, 7}
	outlierClasses := []int{8, 9}

	// --- MNIST-like digits ---
	trainM := digitRows(51, inlierClasses, c.P.T1TrainPerClass)
	ganCfg := gan.Config{InputDim: len(trainM[0]), Latent: 16, Hidden: []int{128, 48}, LR: 0.002, Seed: 11}

	// The DA-GAN splits each pass across five objectives, so it gets a
	// proportionally larger epoch budget than the single-objective models.
	mnistDetectors := map[string]outlier.Detector{
		"LOF":  outlier.NewLOF(10),
		"DRAE": outlier.NewDRAE(ganCfg, c.P.T1GenEpochs, 32),
		"AE":   outlier.NewAEDetector(ganCfg, c.P.T1GenEpochs, 32, 5),
		"AAE":  outlier.NewAAEDetector(ganCfg, c.P.T1GenEpochs, 32, 5),
		"PCA":  outlier.NewPCA(16),
		"DG":   outlier.NewDAGANDetector(ganCfg, c.P.T1GenEpochs*3, 32, 5),
	}
	mnistOrder := []string{"LOF", "DRAE", "AE", "AAE", "PCA", "DG"}
	for name, det := range mnistDetectors {
		det.Fit(trainM)
		res.MNIST[name] = sweepF1(det, trainM, 52, digitRows, inlierClasses, outlierClasses, c.P.T1TestInliers)
	}

	// --- CIFAR-like textures ---
	trainC := textureRows(61, inlierClasses, c.P.T1TrainPerClass)
	ganCfgC := gan.Config{InputDim: len(trainC[0]), Latent: 16, Hidden: []int{192, 64}, LR: 0.002, Seed: 12}
	cifarDetectors := map[string]outlier.Detector{
		"AE":  outlier.NewAEDetector(ganCfgC, c.P.T1GenEpochs, 32, 5),
		"AAE": outlier.NewAAEDetector(ganCfgC, c.P.T1GenEpochs, 32, 5),
		"DG":  outlier.NewDAGANDetector(ganCfgC, c.P.T1GenEpochs*3, 32, 5),
	}
	cifarOrder := []string{"AE", "AAE", "DG"}
	for name, det := range cifarDetectors {
		det.Fit(trainC)
		res.CIFAR[name] = sweepF1(det, trainC, 62, textureRows, inlierClasses, outlierClasses, c.P.T1TestInliers)
	}

	// Render in the paper's layout.
	t := NewTable("Table 1: Drift-detection F1 vs outlier fraction",
		append([]string{"Outliers"}, append(prefixAll("MNIST/", mnistOrder), prefixAll("CIFAR/", cifarOrder)...)...)...)
	for fi, frac := range table1Fractions {
		row := []interface{}{Pct(frac)}
		for _, name := range mnistOrder {
			row = append(row, trunc2(res.MNIST[name][fi]))
		}
		for _, name := range cifarOrder {
			row = append(row, trunc2(res.CIFAR[name][fi]))
		}
		t.Add(row...)
	}
	t.Render(w)
	return res
}

// sweepF1 evaluates a fitted detector over the outlier-fraction sweep
// using the unsupervised train-calibrated protocol: the operating
// threshold is the 99th percentile of the detector's scores on its own
// training data (no test labels are used). At 0% outliers this reports the
// fraction of inliers correctly retained (≈0.99 by construction — the
// paper's 0% row), and at higher fractions the outlier-class F1.
func sweepF1(det outlier.Detector, train [][]float64, seed uint64,
	gen func(uint64, []int, int) [][]float64, inCls, outCls []int, nInliers int) []float64 {
	trainScores := make([]float64, len(train))
	for i, x := range train {
		trainScores[i] = det.Score(x)
	}
	thr := outlier.Quantile(trainScores, 0.99)

	out := make([]float64, len(table1Fractions))
	for fi, frac := range table1Fractions {
		nOut := int(frac * float64(nInliers) / (1 - frac + 1e-9))
		perIn := nInliers / len(inCls)
		if perIn == 0 {
			perIn = 1
		}
		inliers := gen(seed+uint64(fi), inCls, perIn)
		var outliers [][]float64
		if nOut > 0 {
			perOut := nOut / len(outCls)
			if perOut == 0 {
				perOut = 1
			}
			outliers = gen(seed+100+uint64(fi), outCls, perOut)
		}
		var scores []float64
		var labels []bool
		for _, x := range inliers {
			scores = append(scores, det.Score(x))
			labels = append(labels, false)
		}
		for _, x := range outliers {
			scores = append(scores, det.Score(x))
			labels = append(labels, true)
		}
		if len(outliers) == 0 {
			kept := 0
			for _, s := range scores {
				if s <= thr {
					kept++
				}
			}
			out[fi] = float64(kept) / float64(len(scores))
			continue
		}
		out[fi] = outlier.Evaluate(scores, labels, thr).F1()
	}
	return out
}

func prefixAll(p string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = p + n
	}
	return out
}

func trunc2(v float64) string { return fmt.Sprintf("%.2f", v) }
