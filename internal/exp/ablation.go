package exp

import (
	"fmt"
	"io"

	"odin/internal/cluster"
	"odin/internal/tensor"
)

// AblationRow is one configuration's outcome on the two-concept stream.
type AblationRow struct {
	Delta      float64
	TailMargin float64
	Clusters   int
	Outliers   int
	DriftAt    int // stream position of the second concept's detection (-1 = missed)
}

// AblationResult sweeps the ∆-band design choices.
type AblationResult struct {
	Rows []AblationRow
}

// RunAblationBands sweeps the two detector design parameters DESIGN.md
// calls out — the ∆ mass fraction (the paper uses 0.5–0.75) and the tail
// routing margin (this implementation's addition) — on a controlled
// two-concept latent stream, reporting how many clusters form, how many
// points were routed to the temporary cluster, and how quickly the second
// concept was detected. The sweep shows why the defaults are what they
// are: small ∆ inflates the outlier tail; no tail margin lets that tail
// spawn spurious clusters; large ∆ delays detection.
func RunAblationBands(c *Context, w io.Writer) AblationResult {
	var res AblationResult
	for _, delta := range []float64{0.5, 0.75, 0.9} {
		for _, margin := range []float64{0, 0.5, 1.0} {
			cfg := cluster.DefaultConfig()
			cfg.Delta = delta
			cfg.TailMargin = margin
			cfg.MinPoints = 50
			cfg.StabilitySteps = 15
			cfg.TempWindow = 120
			res.Rows = append(res.Rows, runAblationStream(cfg))
		}
	}
	t := NewTable("Ablation: ∆-band design choices (two-concept stream)",
		"∆", "Tail margin", "Clusters (want 2)", "Temp-routed points", "2nd concept detected at")
	for _, r := range res.Rows {
		at := "missed"
		if r.DriftAt >= 0 {
			at = fmt.Sprintf("%d", r.DriftAt)
		}
		t.Add(fmt.Sprintf("%.2f", r.Delta), fmt.Sprintf("%.1f", r.TailMargin),
			r.Clusters, r.Outliers, at)
	}
	t.Render(w)
	return res
}

// runAblationStream streams concept A (1200 points), then a 50/50 mix of
// A and B (1200 points), through one cluster-set configuration.
func runAblationStream(cfg cluster.Config) AblationRow {
	rng := tensor.NewRNG(2024)
	set := cluster.NewSet(cfg)
	blob := func(centre []float64) []float64 {
		p := make([]float64, len(centre))
		for i, v := range centre {
			p[i] = v + 0.4*rng.Norm()
		}
		return p
	}
	a := []float64{0, 0, 0, 0}
	b := []float64{7, 7, 0, 0}

	row := AblationRow{Delta: cfg.Delta, TailMargin: cfg.TailMargin, DriftAt: -1}
	outliers := 0
	for i := 0; i < 1200; i++ {
		if set.Observe(blob(a)).Outlier {
			outliers++
		}
	}
	firstClusters := len(set.Permanent)
	for i := 0; i < 1200; i++ {
		var p []float64
		if i%2 == 0 {
			p = blob(b)
		} else {
			p = blob(a)
		}
		asn := set.Observe(p)
		if asn.Outlier {
			outliers++
		}
		if asn.Drift != nil && row.DriftAt < 0 && len(set.Permanent) > firstClusters {
			row.DriftAt = 1200 + i
		}
	}
	row.Clusters = len(set.Permanent)
	row.Outliers = outliers
	return row
}
