package exp

import (
	"context"
	"fmt"
	"io"

	"odin/internal/core"
	"odin/internal/detect"
	"odin/internal/query"
	"odin/internal/synth"
)

// Table6Row is one configuration's aggregation-query outcome.
type Table6Row struct {
	Name      string
	CarAcc    float64
	TruckAcc  float64
	FPS       float64
	CarRed    float64 // data reduction (filter configs only)
	TruckRed  float64
	HasFilter bool
}

// Table6Result holds all configurations.
type Table6Result struct {
	Rows []Table6Row
}

// filterArch is the 3-conv lightweight filter's full-scale cost
// architecture (a few small conv layers at 416², §6.6).
func filterArch() detect.Arch {
	return detect.Arch{
		Name: "filter-3conv", InputH: 416, InputW: 416,
		Layers: []detect.ConvSpec{
			{In: 3, Out: 8, K: 3, Stride: 2},
			{In: 8, Out: 16, K: 3, Stride: 2},
			{In: 16, Out: 16, K: 3, Stride: 2},
		},
	}
}

// RunTable6 reproduces Table 6: aggregation-query accuracy and throughput
// for cars and trucks under (1) the static system, (2) ODIN with
// specialized models, (3) ODIN-HEAVY with per-cluster heavyweight models,
// (4) ODIN-FILTER with per-cluster specialized filters, and (5) ODIN-PP
// with a single unspecialized filter.
func RunTable6(c *Context, w io.Writer) Table6Result {
	set, ids := clusterSetFromSubsets(c)
	dg := c.DAGAN()
	enc := c.Encoder()

	// Specialist map for the selector.
	byCluster := make(map[int]*core.Model)
	var mostRecent *core.Model
	for _, s := range specSubsets {
		if id, ok := ids[s]; ok {
			m := &core.Model{
				Kind: detect.KindSpecialized, Det: c.Specialized(s),
				ClusterID: id, Cost: detect.CostOf(detect.KindSpecialized),
			}
			byCluster[id] = m
			mostRecent = m
		}
	}
	sel := core.Selector{Policy: core.PolicyDeltaBM, K: 4}
	odinModel := func(f *synth.Frame) []detect.Detection {
		z := dg.Project(enc(f.Image))
		choice := sel.Select(z, set, byCluster, mostRecent)
		if len(choice) == 0 {
			return c.Baseline().Detect(f.Image)
		}
		var sets [][]detect.Detection
		var weights []float64
		for _, wm := range choice {
			sets = append(sets, wm.Model.Det.Detect(f.Image))
			weights = append(weights, wm.Weight)
		}
		return core.FuseDetections(sets, weights)
	}
	staticModel := func(f *synth.Frame) []detect.Detection {
		return c.Baseline().Detect(f.Image)
	}

	// ODIN-HEAVY: per-cluster heavyweight models. To keep the quick scale
	// tractable only the two dominant clusters (day, night) get heavy
	// specialists; other frames fall back to the baseline.
	heavy := make(map[int]*detect.GridDetector)
	heavySubsets := []synth.Subset{synth.DayData, synth.NightData}
	if c.Scale == Full {
		heavySubsets = specSubsets
	}
	for _, s := range heavySubsets {
		id, ok := ids[s]
		if !ok {
			continue
		}
		gen := synth.NewSceneGen(700+uint64(s), c.Scene)
		cfg := detect.YOLOConfig(c.Scene.H, c.Scene.W)
		cfg.Seed = 800 + uint64(s)
		d := detect.NewGridDetector(cfg)
		d.Fit(detect.SamplesFromFrames(gen.Dataset(s, c.P.TrainFrames)), c.P.TrainEpochs, 16)
		heavy[id] = d
		c.logf("trained ODIN-HEAVY(%v)", s)
	}
	heavyModel := func(f *synth.Frame) []detect.Detection {
		z := dg.Project(enc(f.Image))
		cs, _ := set.NearestRaw(z, 1)
		if len(cs) > 0 {
			if d, ok := heavy[cs[0].ID]; ok {
				return d.Detect(f.Image)
			}
		}
		return c.Baseline().Detect(f.Image)
	}

	// Filters: specialized per cluster (ODIN-FILTER) vs one unspecialized
	// (ODIN-PP), per class.
	gen := synth.NewSceneGen(710, c.Scene)
	trainFilter := func(class int, s synth.Subset, seed uint64) *query.FilterNet {
		fn := query.NewFilterNet(class, c.Scene.H, c.Scene.W, seed)
		fn.Fit(gen.Dataset(s, c.P.TrainFrames/2), c.P.FilterEpochs, 16)
		return fn
	}
	specFilters := map[int]map[int]*query.FilterNet{} // class → clusterID → filter
	ppFilters := map[int]*query.FilterNet{}           // class → filter
	for _, class := range []int{synth.ClassCar, synth.ClassTruck} {
		ppFilters[class] = trainFilter(class, synth.FullData, 900+uint64(class))
		specFilters[class] = map[int]*query.FilterNet{}
		for _, s := range heavySubsets {
			if id, ok := ids[s]; ok {
				specFilters[class][id] = trainFilter(class, s, 920+uint64(class)*10+uint64(s))
			}
		}
	}
	specializedFilter := func(class int) query.FilterFunc {
		return func(f *synth.Frame) bool {
			z := dg.Project(enc(f.Image))
			cs, _ := set.NearestRaw(z, 1)
			if len(cs) > 0 {
				if fn, ok := specFilters[class][cs[0].ID]; ok {
					return fn.Pass(f)
				}
			}
			return ppFilters[class].Pass(f)
		}
	}

	// Query stream: the drifting FULL distribution.
	streamGen := synth.NewSceneGen(93, c.Scene)
	frames := streamGen.Dataset(synth.FullData, c.P.Table6Frames)

	eng := query.NewEngine()
	eng.RegisterModel("yolo", staticModel)
	eng.RegisterModel("yolo_specialized", odinModel)
	eng.RegisterModel("yolo_heavy", heavyModel)
	eng.RegisterFilter("car_filter", specializedFilter(synth.ClassCar))
	eng.RegisterFilter("truck_filter", specializedFilter(synth.ClassTruck))
	eng.RegisterFilter("car_filter_pp", ppFilters[synth.ClassCar].Pass)
	eng.RegisterFilter("truck_filter_pp", ppFilters[synth.ClassTruck].Pass)

	// Simulated throughput per configuration, from the cost model.
	dev := detect.PaperDevice()
	tYOLO := 1 / detect.CostOf(detect.KindYOLO).FPS
	tSpec := 1 / detect.CostOf(detect.KindSpecialized).FPS
	tFilter := 1 / dev.FPS(filterArch())
	fpsOf := func(modelTime, reduction float64, filtered bool) float64 {
		t := modelTime * (1 - reduction)
		if filtered {
			t += tFilter
		}
		return 1 / t
	}

	type config struct {
		name   string
		model  string
		filter map[int]string // class → filter name ("" = none)
		mTime  float64
	}
	configs := []config{
		{"Static", "yolo", map[int]string{synth.ClassCar: "", synth.ClassTruck: ""}, tYOLO},
		{"ODIN", "yolo_specialized", map[int]string{synth.ClassCar: "", synth.ClassTruck: ""}, tSpec},
		{"ODIN-HEAVY", "yolo_heavy", map[int]string{synth.ClassCar: "", synth.ClassTruck: ""}, tYOLO * 1.2},
		{"ODIN-FILTER", "yolo_specialized", map[int]string{synth.ClassCar: "car_filter", synth.ClassTruck: "truck_filter"}, tSpec},
		{"ODIN-PP", "yolo_specialized", map[int]string{synth.ClassCar: "car_filter_pp", synth.ClassTruck: "truck_filter_pp"}, tSpec},
	}

	classes := map[int]string{synth.ClassCar: "car", synth.ClassTruck: "truck"}
	var res Table6Result
	for _, cf := range configs {
		row := Table6Row{Name: cf.name}
		var reductions []float64
		for _, class := range []int{synth.ClassCar, synth.ClassTruck} {
			var sql string
			if cf.filter[class] == "" {
				sql = fmt.Sprintf("SELECT COUNT(detections) FROM bdd USING MODEL %s WHERE class='%s'",
					cf.model, classes[class])
			} else {
				sql = fmt.Sprintf(
					"SELECT COUNT(detections) FROM (SELECT * FROM bdd USING FILTER %s) USING MODEL %s WHERE class='%s'",
					cf.filter[class], cf.model, classes[class])
				row.HasFilter = true
			}
			out, err := eng.Run(context.Background(), sql, frames)
			if err != nil {
				panic(fmt.Sprintf("table6: %v", err))
			}
			acc := query.QueryAccuracy(out.PerFrame, query.TrueCounts(frames, class))
			red := out.DataReduction()
			reductions = append(reductions, red)
			if class == synth.ClassCar {
				row.CarAcc, row.CarRed = acc, red
			} else {
				row.TruckAcc, row.TruckRed = acc, red
			}
		}
		meanRed := (reductions[0] + reductions[1]) / 2
		row.FPS = fpsOf(cf.mTime, ifFilter(row.HasFilter, meanRed, 0), row.HasFilter)
		res.Rows = append(res.Rows, row)
	}

	t := NewTable("Table 6: Aggregation queries and lightweight filters",
		"Architecture", "Car acc", "Truck acc", "FPS", "Car reduction", "Truck reduction")
	for _, r := range res.Rows {
		carRed, truckRed := "-", "-"
		if r.HasFilter {
			carRed, truckRed = Pct(r.CarRed), Pct(r.TruckRed)
		}
		t.Add(r.Name, r.CarAcc, r.TruckAcc, fmt.Sprintf("%.0f", r.FPS), carRed, truckRed)
	}
	t.Render(w)
	return res
}

func ifFilter(has bool, a, b float64) float64 {
	if has {
		return a
	}
	return b
}
