package exp

import (
	"fmt"
	"io"
	"math"

	"odin/internal/band"
	"odin/internal/detect"
	"odin/internal/gan"
	"odin/internal/query"
	"odin/internal/synth"
)

// Fig1Result reproduces the motivating example (Figure 1): a static system
// trained on RAIN-DATA versus ODIN's specialized models when the stream
// drifts to DAY-DATA.
type Fig1Result struct {
	StaticMAP, OdinMAP     float64
	StaticQAcc, OdinQAcc   float64
	StaticFPS, OdinFPS     float64
	StaticMemMB, OdinMemMB float64
}

// RunFig1 executes the motivating example.
func RunFig1(c *Context, w io.Writer) Fig1Result {
	// The static system: a heavyweight YOLO trained only on RAIN-DATA.
	gen := synth.NewSceneGen(31, c.Scene)
	static := detect.NewGridDetector(detect.YOLOConfig(c.Scene.H, c.Scene.W))
	static.Fit(detect.SamplesFromFrames(gen.Dataset(synth.RainData, c.P.TrainFrames)), c.P.TrainEpochs, 16)

	// ODIN: after detecting the drift it deploys the DAY specialist.
	specDay := c.Specialized(synth.DayData)

	test := c.TestSet(synth.DayData)
	staticMAP := detect.EvaluateDetector(static, test, 0.5).MAP
	odinMAP := detect.EvaluateDetector(specDay, test, 0.5).MAP

	// Query accuracy: car counting on the drifted data.
	truth := query.TrueCounts(test, synth.ClassCar)
	count := func(d detect.Detector) float64 {
		pred := make([]int, len(test))
		for i, f := range test {
			pred[i] = detect.CountClass(d.Detect(f.Image), synth.ClassCar, 0.3)
		}
		return query.QueryAccuracy(pred, truth)
	}
	res := Fig1Result{
		StaticMAP:   staticMAP,
		OdinMAP:     odinMAP,
		StaticQAcc:  count(static),
		OdinQAcc:    count(specDay),
		StaticFPS:   detect.CostOf(detect.KindYOLO).FPS,
		OdinFPS:     detect.CostOf(detect.KindSpecialized).FPS,
		StaticMemMB: detect.CostOf(detect.KindYOLO).SizeMB,
		// ODIN holds the two specialists (RAIN + DAY).
		OdinMemMB: 2 * detect.CostOf(detect.KindSpecialized).SizeMB,
	}

	t := NewTable("Figure 1: Motivating example (train RAIN-DATA → stream DAY-DATA)",
		"System", "Detection mAP", "Query acc", "Throughput (FPS)", "Memory (MB)")
	t.Add("Static", res.StaticMAP, res.StaticQAcc, fmt.Sprintf("%.0f", res.StaticFPS), fmt.Sprintf("%.0f", res.StaticMemMB))
	t.Add("ODIN", res.OdinMAP, res.OdinQAcc, fmt.Sprintf("%.0f", res.OdinFPS), fmt.Sprintf("%.0f", res.OdinMemMB))
	t.Render(w)
	return res
}

// Fig2Result quantifies the latent-space comparison of Figure 2: cycle
// error measures holes (high = holes), reconstruction error measures
// information loss (high = blur).
type Fig2Result struct {
	AECycle, AAECycle, DGCycle float64
	AERecon, AAERecon, DGRecon float64
}

// RunFig2 trains AE / AAE / DA-GAN on digits and measures latent quality.
func RunFig2(c *Context, w io.Writer) Fig2Result {
	classes := []int{0, 1, 2, 3, 4}
	rows := digitRows(41, classes, c.P.T1TrainPerClass)
	cfg := gan.Config{InputDim: len(rows[0]), Latent: 16, Hidden: []int{128, 48}, LR: 0.002, Seed: 5}

	ae := gan.NewAutoencoder(cfg)
	ae.Fit(rows, c.P.T1GenEpochs*2, 32)
	aae := gan.NewAAE(cfg)
	aae.Fit(rows, c.P.T1GenEpochs*2, 32)
	dg := gan.NewDAGAN(cfg)
	dg.Fit(rows, c.P.T1GenEpochs*2, 32)

	res := Fig2Result{
		AECycle:  gan.CycleError(ae, ae, 100, 9),
		AAECycle: gan.CycleError(aae, aae, 100, 9),
		DGCycle:  gan.CycleError(dg, dg, 100, 9),
		AERecon:  gan.MeanReconError(ae, rows),
		AAERecon: gan.MeanReconError(aae, rows),
		DGRecon:  gan.MeanReconError(dg, rows),
	}
	t := NewTable("Figure 2: Latent-space quality (cycle error ≈ holes, recon error ≈ blur)",
		"Model", "Cycle error", "Recon error")
	t.Add("Standard AE", res.AECycle, res.AERecon)
	t.Add("Adversarial AE", res.AAECycle, res.AAERecon)
	t.Add("DA-GAN", res.DGCycle, res.DGRecon)
	t.Render(w)
	return res
}

// Fig4Result is the ∆-band visualisation: the distance histogram of one
// embedded cluster and its band bounds.
type Fig4Result struct {
	Band      band.Band
	Histogram []float64
	InBand    float64 // fraction of mass inside the band
}

// RunFig4 embeds one digit class with the DA-GAN and derives its ∆-band.
func RunFig4(c *Context, w io.Writer) Fig4Result {
	rows := digitRows(43, []int{0, 1, 2}, c.P.T1TrainPerClass)
	cfg := gan.Config{InputDim: len(rows[0]), Latent: 16, Hidden: []int{128, 48}, LR: 0.002, Seed: 6}
	dg := gan.NewDAGAN(cfg)
	dg.Fit(rows, c.P.T1GenEpochs, 32)

	cluster := digitRows(44, []int{0}, c.P.T1TestInliers)
	latents := dg.ProjectBatch(cluster)
	centroid := centroidOf(latents)
	var raw []float64
	var mean float64
	for _, z := range latents {
		d := l2(z, centroid)
		raw = append(raw, d)
		mean += d
	}
	mean /= float64(len(raw))

	hist := band.NewHistogram(24)
	for _, r := range raw {
		hist.Add(r / (r + mean))
	}
	b := band.Compute(hist, 0.75)
	in := 0
	for _, r := range raw {
		if b.Contains(r / (r + mean)) {
			in++
		}
	}
	res := Fig4Result{Band: b, Histogram: hist.Counts, InBand: float64(in) / float64(len(raw))}

	fmt.Fprintf(w, "\n== Figure 4: ∆-band over one cluster's distance histogram ==\n")
	fmt.Fprintf(w, "band = %v, mass inside = %s\n", b, Pct(res.InBand))
	maxC := 1.0
	for _, v := range hist.Counts {
		if v > maxC {
			maxC = v
		}
	}
	for i, v := range hist.Counts {
		lo := float64(i) / float64(len(hist.Counts))
		marker := " "
		if b.Contains(lo + 0.5/float64(len(hist.Counts))) {
			marker = "∆"
		}
		fmt.Fprintf(w, "%.2f %s %s\n", lo, marker, barOf(v, maxC, 40))
	}
	return res
}

func barOf(v, max float64, width int) string {
	n := int(v / max * float64(width))
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// Fig5Result reproduces the projection-failure experiment: an AE trained
// on digits 0–2 reconstructs unseen digits far worse.
type Fig5Result struct {
	PerDigit   [10]float64
	InlierErr  float64
	OutlierErr float64
}

// RunFig5 trains the paper's 4-dense-layer, latent-64 AE on digits 0–2 and
// reports per-digit reconstruction error.
func RunFig5(c *Context, w io.Writer) Fig5Result {
	train := digitRows(45, []int{0, 1, 2}, c.P.T1TrainPerClass*2)
	// Paper Figure 5 architecture: Dense-512 → Dense-128 → Latent-64.
	cfg := gan.Config{InputDim: len(train[0]), Latent: 64, Hidden: []int{512, 128}, LR: 0.001, Seed: 8}
	ae := gan.NewAutoencoder(cfg)
	ae.Fit(train, c.P.T1GenEpochs*2, 32)

	var res Fig5Result
	t := NewTable("Figure 5: Projection failure (AE trained on digits 0-2)",
		"Digit", "Recon error", "Seen in training")
	var inSum, outSum float64
	for d := 0; d < 10; d++ {
		rows := digitRows(46+uint64(d), []int{d}, 30)
		var e float64
		for _, x := range rows {
			e += ae.ReconError(x)
		}
		e /= float64(len(rows))
		res.PerDigit[d] = e
		seen := "no"
		if d <= 2 {
			seen = "yes"
			inSum += e
		} else {
			outSum += e
		}
		t.Add(d, e, seen)
	}
	res.InlierErr = inSum / 3
	res.OutlierErr = outSum / 7
	t.Add("avg 0-2", res.InlierErr, "yes")
	t.Add("avg 3-9", res.OutlierErr, "no")
	t.Render(w)
	return res
}

// --- small shared helpers ---

func digitRows(seed uint64, classes []int, n int) [][]float64 {
	ds := synth.DigitDataset(seed, classes, n)
	rows := make([][]float64, len(ds))
	for i, li := range ds {
		rows[i] = li.Image.Flat()
	}
	return rows
}

func textureRows(seed uint64, classes []int, n int) [][]float64 {
	ds := synth.TextureDataset(seed, classes, n)
	rows := make([][]float64, len(ds))
	for i, li := range ds {
		rows[i] = li.Image.Flat()
	}
	return rows
}

func centroidOf(vs [][]float64) []float64 {
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		for i, x := range v {
			out[i] += x
		}
	}
	for i := range out {
		out[i] /= float64(len(vs))
	}
	return out
}

func l2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
