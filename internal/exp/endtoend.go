package exp

import (
	"fmt"
	"io"

	"odin/internal/core"
	"odin/internal/detect"
	"odin/internal/query"
	"odin/internal/synth"
)

// fig9Stream builds the paper's drifting 4-phase sequence: NIGHT only,
// then +DAY, then +SNOW, then +RAIN, with unadjusted mixing ("the chance
// for selecting an image of any subset is not adjusted").
func fig9Stream(c *Context, seed uint64) []*synth.Frame {
	gen := synth.NewSceneGen(seed, c.Scene)
	phase := c.P.Fig9PhaseLen
	pools := [][]synth.Subset{
		{synth.NightData},
		{synth.NightData, synth.DayData},
		{synth.NightData, synth.DayData, synth.SnowData},
		{synth.NightData, synth.DayData, synth.SnowData, synth.RainData},
	}
	var out []*synth.Frame
	idx := 0
	for _, pool := range pools {
		for i := 0; i < phase; i++ {
			out = append(out, gen.GenerateSubset(pool[idx%len(pool)]))
			idx++
		}
	}
	return out
}

// Fig9Config names one end-to-end configuration.
type Fig9Config struct {
	Name        string
	Recovery    bool
	MaxClusters int
}

// Fig9Result holds the windowed mAP series per configuration.
type Fig9Result struct {
	Window  int
	Configs []string
	// Series[config][window index].
	Series [][]float64
	// DriftAt[config] lists frame indices of drift events.
	DriftAt [][]int
	// FPS and memory at end of stream.
	FPS   []float64
	MemMB []float64
}

// RunFig9 reproduces Figure 9: end-to-end detection accuracy over the
// drifting stream under (1) the static baseline, (2) ODIN with the ∆-BM
// policy, and (3) ODIN with ∆-BM plus a three-model count threshold.
func RunFig9(c *Context, w io.Writer) Fig9Result {
	stream := fig9Stream(c, 91)
	configs := []Fig9Config{
		{Name: "Baseline", Recovery: false},
		{Name: "∆-BM", Recovery: true},
		{Name: "∆-BM+max3", Recovery: true, MaxClusters: 3},
	}
	res := Fig9Result{Window: c.P.Fig9Window}
	for _, cf := range configs {
		res.Configs = append(res.Configs, cf.Name)
		series, drifts, fps, mem := c.runPipeline(stream, cf)
		res.Series = append(res.Series, series)
		res.DriftAt = append(res.DriftAt, drifts)
		res.FPS = append(res.FPS, fps)
		res.MemMB = append(res.MemMB, mem)
	}

	t := NewTable("Figure 9: End-to-end mAP over the drifting stream (per window)",
		append([]string{"Frames"}, res.Configs...)...)
	for wi := range res.Series[0] {
		row := []interface{}{fmt.Sprintf("%d-%d", wi*res.Window, (wi+1)*res.Window-1)}
		for ci := range res.Series {
			row = append(row, res.Series[ci][wi])
		}
		t.Add(row...)
	}
	t.Render(w)
	for ci, name := range res.Configs {
		fmt.Fprintf(w, "%-10s drift events at %v, final FPS %.0f, memory %.0f MB\n",
			name, res.DriftAt[ci], res.FPS[ci], res.MemMB[ci])
	}
	return res
}

// runPipeline executes one configuration over the stream, reporting
// windowed mAP, drift positions and final FPS/memory.
func (c *Context) runPipeline(stream []*synth.Frame, cf Fig9Config) (series []float64, drifts []int, fps, mem float64) {
	cfg := core.DefaultConfig(c.Scene)
	cfg.DriftRecovery = cf.Recovery
	cfg.Cluster.MaxClusters = cf.MaxClusters
	// Interleaved arrival (new concept mixed ~1:2 with known concepts)
	// keeps the temp window's KL churn above the sequential-stream level;
	// the stability threshold is loosened accordingly. Training seeds are
	// band-filtered at promotion, so a slightly mixed window still yields
	// a clean specialist.
	cfg.Cluster.StabilityEps = 0.025
	cfg.Spec.SpecEpochs = c.P.TrainEpochs
	cfg.Spec.LiteEpochs = c.P.LiteEpochs
	cfg.Spec.MaxTrainFrames = c.P.TrainFrames
	cfg.Spec.LabelDelay = c.P.Fig9PhaseLen / 2
	o := core.New(cfg, c.DAGAN(), c.Baseline())

	win := c.P.Fig9Window
	var dets [][]detect.Detection
	var truth [][]synth.Box
	for i, f := range stream {
		r := o.Process(f)
		if r.Drift != nil {
			drifts = append(drifts, i)
		}
		dets = append(dets, r.Detections)
		truth = append(truth, f.Boxes)
		if (i+1)%win == 0 {
			lo := i + 1 - win
			series = append(series, detect.MeanAveragePrecision(dets[lo:i+1], truth[lo:i+1], 0.5).MAP)
		}
	}
	return series, drifts, o.Stats().FPS(), o.MemoryMB()
}

// Table7Result is the component ablation.
type Table7Result struct {
	Rows   []string
	MAP    []float64
	QAcc   []float64
	FPS    []float64
	MemMB  []float64
	Drifts []int
}

// RunTable7 reproduces the §6.7 ablation: the full system, the system with
// the SELECTOR replaced by most-recent-model selection, and the static
// baseline.
func RunTable7(c *Context, w io.Writer) Table7Result {
	stream := fig9Stream(c, 95)
	configs := []struct {
		name     string
		recovery bool
		policy   core.Policy
	}{
		{"End-to-End", true, core.PolicyDeltaBM},
		{"-SELECTOR", true, core.PolicyMostRecent},
		{"Baseline", false, core.PolicyDeltaBM},
	}
	var res Table7Result
	for _, cf := range configs {
		cfg := core.DefaultConfig(c.Scene)
		cfg.DriftRecovery = cf.recovery
		cfg.Selector.Policy = cf.policy
		cfg.Cluster.StabilityEps = 0.025 // see runPipeline
		cfg.Spec.SpecEpochs = c.P.TrainEpochs
		cfg.Spec.LiteEpochs = c.P.LiteEpochs
		cfg.Spec.MaxTrainFrames = c.P.TrainFrames
		cfg.Spec.LabelDelay = c.P.Fig9PhaseLen / 2
		o := core.New(cfg, c.DAGAN(), c.Baseline())

		var dets [][]detect.Detection
		var truth [][]synth.Box
		pred := make([]int, 0, len(stream))
		gt := make([]int, 0, len(stream))
		// Score the second half of the stream (after recovery warm-up).
		half := len(stream) / 2
		for i, f := range stream {
			r := o.Process(f)
			if i < half {
				continue
			}
			dets = append(dets, r.Detections)
			truth = append(truth, f.Boxes)
			pred = append(pred, detect.CountClass(r.Detections, synth.ClassCar, 0.3))
			n := 0
			for _, b := range f.Boxes {
				if b.Class == synth.ClassCar {
					n++
				}
			}
			gt = append(gt, n)
		}
		res.Rows = append(res.Rows, cf.name)
		res.MAP = append(res.MAP, detect.MeanAveragePrecision(dets, truth, 0.5).MAP)
		res.QAcc = append(res.QAcc, query.QueryAccuracy(pred, gt))
		res.FPS = append(res.FPS, o.Stats().FPS())
		res.MemMB = append(res.MemMB, o.MemoryMB())
		res.Drifts = append(res.Drifts, o.Stats().DriftEvents)
	}
	t := NewTable("Table 7: Ablation study",
		"Experiment", "mAP", "Query acc", "Throughput (FPS)", "Memory (MB)")
	for i, name := range res.Rows {
		t.Add(name, res.MAP[i], res.QAcc[i],
			fmt.Sprintf("%.0f", res.FPS[i]), fmt.Sprintf("%.0f", res.MemMB[i]))
	}
	t.Render(w)
	return res
}
