package exp

import (
	"fmt"
	"io"
	"time"

	"odin/internal/cluster"
	"odin/internal/core"
	"odin/internal/detect"
	"odin/internal/synth"
)

// specSubsets are the four cluster-aligned specialization domains
// (C-α…C-δ ≈ day / night / rain / snow per Table 2).
var specSubsets = []synth.Subset{synth.DayData, synth.NightData, synth.RainData, synth.SnowData}

// evalSubsets are the five test subsets of §6.2's "BDD Clusters".
var evalSubsets = []synth.Subset{synth.FullData, synth.DayData, synth.NightData, synth.RainData, synth.SnowData}

// Fig8Result holds per-subset mAP for the three model families.
type Fig8Result struct {
	Subsets     []synth.Subset
	YOLO        []float64
	Lite        []float64
	Specialized []float64
}

// RunFig8 reproduces Figure 8: detection accuracy of the static YOLO vs
// YOLO-Lite vs YOLO-Specialized on each subset (each specialist evaluated
// on its own subset).
func RunFig8(c *Context, w io.Writer) Fig8Result {
	res := Fig8Result{Subsets: evalSubsets}
	for _, s := range evalSubsets {
		res.YOLO = append(res.YOLO, c.MAPOn(c.Baseline(), s))
		res.Lite = append(res.Lite, c.MAPOn(c.Lite(s), s))
		res.Specialized = append(res.Specialized, c.MAPOn(c.Specialized(s), s))
	}
	t := NewTable("Figure 8: Model specialization accuracy (mAP@0.5)",
		"Subset", "YOLO", "YOLO-LITE", "YOLO-SPECIALIZED")
	for i, s := range evalSubsets {
		t.Add(s.String(), res.YOLO[i], res.Lite[i], res.Specialized[i])
	}
	t.Render(w)
	return res
}

// Table3Result is the cross-subset mAP matrix.
type Table3Result struct {
	TestSubsets []synth.Subset
	Baseline    []float64
	// Cross[spec][test]: specialist trained on specSubsets[spec],
	// evaluated on TestSubsets[test].
	Cross [][]float64
}

// RunTable3 reproduces Table 3: every cluster specialist evaluated on
// every subset, against the baseline column.
func RunTable3(c *Context, w io.Writer) Table3Result {
	res := Table3Result{TestSubsets: evalSubsets}
	for _, s := range evalSubsets {
		res.Baseline = append(res.Baseline, c.MAPOn(c.Baseline(), s))
	}
	res.Cross = make([][]float64, len(specSubsets))
	for i, spec := range specSubsets {
		model := c.Specialized(spec)
		res.Cross[i] = make([]float64, len(evalSubsets))
		for j, test := range evalSubsets {
			res.Cross[i][j] = c.MAPOn(model, test)
		}
	}
	t := NewTable("Table 3: Cross-subset detection accuracy (mAP@0.5)",
		"Data", "Baseline", "C-α (day)", "C-β (night)", "C-γ (rain)", "C-δ (snow)")
	for j, test := range evalSubsets {
		t.Add(test.String(), res.Baseline[j],
			res.Cross[0][j], res.Cross[1][j], res.Cross[2][j], res.Cross[3][j])
	}
	t.Render(w)
	return res
}

// Table4Result carries the architecture cost-model outputs plus the
// measured pure-Go throughput of the miniature counterparts.
type Table4Result struct {
	Costs      map[detect.Kind]detect.Cost
	MeasuredGo map[detect.Kind]float64 // frames/sec of the miniature nets
}

// RunTable4 reproduces Table 4: throughput and memory footprint of the
// three model families on the paper-calibrated simulated device, plus the
// measured Go throughput of the miniature networks actually trained here.
func RunTable4(c *Context, w io.Writer) Table4Result {
	res := Table4Result{
		Costs:      make(map[detect.Kind]detect.Cost),
		MeasuredGo: make(map[detect.Kind]float64),
	}
	gen := synth.NewSceneGen(81, c.Scene)
	frames := gen.Dataset(synth.FullData, 40)
	measure := func(d *detect.GridDetector) float64 {
		start := time.Now()
		for _, f := range frames {
			d.Detect(f.Image)
		}
		return float64(len(frames)) / time.Since(start).Seconds()
	}
	models := map[detect.Kind]*detect.GridDetector{
		detect.KindYOLO:        c.Baseline(),
		detect.KindSpecialized: c.Specialized(synth.DayData),
		detect.KindLite:        c.Lite(synth.DayData),
	}
	t := NewTable("Table 4: Performance and memory footprint",
		"Model", "Architecture", "Sim FPS", "Size (MB)", "Params (M)", "Go FPS (mini)")
	for _, k := range []detect.Kind{detect.KindYOLO, detect.KindSpecialized, detect.KindLite} {
		cost := detect.CostOf(k)
		res.Costs[k] = cost
		res.MeasuredGo[k] = measure(models[k])
		t.Add(k.String(), detect.ArchForKind(k).Name,
			fmt.Sprintf("%.0f", cost.FPS), fmt.Sprintf("%.0f", cost.SizeMB),
			fmt.Sprintf("%.1f", float64(cost.Params)/1e6),
			fmt.Sprintf("%.0f", res.MeasuredGo[k]))
	}
	t.Render(w)
	return res
}

// Table5Result holds the selection-policy comparison.
type Table5Result struct {
	Subsets  []synth.Subset
	Baseline []float64
	KNNU     []float64
	KNNW     []float64
	DeltaBM  []float64
}

// clusterSetFromSubsets builds a cluster set whose clusters correspond to
// the four specialization domains, by streaming each domain's latents, and
// returns it with the subset→cluster-id mapping.
func clusterSetFromSubsets(c *Context) (*cluster.Set, map[synth.Subset]int) {
	dg := c.DAGAN()
	enc := c.Encoder()
	ccfg := cluster.DefaultConfig()
	set := cluster.NewSet(ccfg)
	gen := synth.NewSceneGen(82, c.Scene)
	ids := make(map[synth.Subset]int)
	for _, s := range specSubsets {
		before := len(set.Permanent)
		for i := 0; i < c.P.Table2PerSubset; i++ {
			set.Observe(dg.Project(enc(gen.GenerateSubset(s).Image)))
		}
		// Associate the subset with the cluster(s) formed during its
		// streaming phase; the first new cluster is its primary.
		if len(set.Permanent) > before {
			ids[s] = set.Permanent[before].ID
		}
	}
	return set, ids
}

// RunTable5 reproduces Table 5: detection accuracy of the KNN-U, KNN-W and
// ∆-BM selection policies over the four specialists, against the static
// baseline.
func RunTable5(c *Context, w io.Writer) Table5Result {
	set, ids := clusterSetFromSubsets(c)

	// Bind each domain cluster to its specialist.
	byCluster := make(map[int]*core.Model)
	var mostRecent *core.Model
	for _, s := range specSubsets {
		id, ok := ids[s]
		if !ok {
			continue
		}
		m := &core.Model{
			Kind:      detect.KindSpecialized,
			Det:       c.Specialized(s),
			ClusterID: id,
			Cost:      detect.CostOf(detect.KindSpecialized),
		}
		byCluster[id] = m
		mostRecent = m
	}

	dg := c.DAGAN()
	enc := c.Encoder()
	evalPolicy := func(policy core.Policy, s synth.Subset) float64 {
		sel := core.Selector{Policy: policy, K: 4}
		frames := c.TestSet(s)
		dets := make([][]detect.Detection, len(frames))
		truth := make([][]synth.Box, len(frames))
		for i, f := range frames {
			z := dg.Project(enc(f.Image))
			choice := sel.Select(z, set, byCluster, mostRecent)
			var sets [][]detect.Detection
			var weights []float64
			for _, wm := range choice {
				sets = append(sets, wm.Model.Det.Detect(f.Image))
				weights = append(weights, wm.Weight)
			}
			dets[i] = core.FuseDetections(sets, weights)
			truth[i] = f.Boxes
		}
		return detect.MeanAveragePrecision(dets, truth, 0.5).MAP
	}

	res := Table5Result{Subsets: evalSubsets}
	for _, s := range evalSubsets {
		res.Baseline = append(res.Baseline, c.MAPOn(c.Baseline(), s))
		res.KNNU = append(res.KNNU, evalPolicy(core.PolicyKNNU, s))
		res.KNNW = append(res.KNNW, evalPolicy(core.PolicyKNNW, s))
		res.DeltaBM = append(res.DeltaBM, evalPolicy(core.PolicyDeltaBM, s))
	}
	t := NewTable("Table 5: Model-selection policies (mAP@0.5)",
		"Data", "Baseline", "KNN-U", "KNN-W", "∆-BM")
	for i, s := range evalSubsets {
		t.Add(s.String(), res.Baseline[i], res.KNNU[i], res.KNNW[i], res.DeltaBM[i])
	}
	t.Render(w)
	fmt.Fprintf(w, "clusters bound to specialists: %d of %d\n", len(byCluster), len(specSubsets))
	return res
}
