package cluster

import (
	"testing"
	"testing/quick"

	"odin/internal/tensor"
)

func buildIndexedSet(t *testing.T, seed uint64, centres [][]float64) (*Set, *LSHIndex) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	s := NewSet(quickConfig())
	for _, c := range centres {
		for i := 0; i < 300; i++ {
			s.Observe(gaussianBlob(rng, c, 0.3))
		}
	}
	if len(s.Permanent) != len(centres) {
		t.Skipf("clustering produced %d clusters, want %d", len(s.Permanent), len(centres))
	}
	idx := NewLSHIndex(len(centres[0]), 6, 6, 1)
	idx.Rebuild(s)
	return s, idx
}

func TestLSHSamePointSameBucket(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		idx := NewLSHIndex(8, 3, 8, seed)
		z := rng.NormVec(8)
		for tb := 0; tb < idx.Tables; tb++ {
			if idx.hash(tb, z) != idx.hash(tb, z) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLSHNearbyPointsCollide(t *testing.T) {
	rng := tensor.NewRNG(2)
	idx := NewLSHIndex(8, 8, 6, 3)
	base := rng.NormVec(8)
	near := make([]float64, 8)
	copy(near, base)
	near[0] += 0.01
	collisions := 0
	for tb := 0; tb < idx.Tables; tb++ {
		if idx.hash(tb, base) == idx.hash(tb, near) {
			collisions++
		}
	}
	if collisions == 0 {
		t.Fatal("nearly identical points should collide in at least one table")
	}
}

func TestLSHCandidatesFindOwnCluster(t *testing.T) {
	centres := [][]float64{{0, 0, 0, 0}, {12, 0, 0, 0}, {0, 12, 0, 0}}
	s, idx := buildIndexedSet(t, 4, centres)
	rng := tensor.NewRNG(5)
	hits := 0
	total := 0
	for _, c := range centres {
		for i := 0; i < 20; i++ {
			z := gaussianBlob(rng, c, 0.3)
			total++
			for _, cand := range idx.Candidates(z) {
				if tensor.L2(cand.Centroid(), c) < 2 {
					hits++
					break
				}
			}
		}
	}
	_ = s
	if float64(hits)/float64(total) < 0.8 {
		t.Fatalf("LSH recall too low: %d/%d", hits, total)
	}
}

func TestNearestWithIndexAgreesWithFullScan(t *testing.T) {
	centres := [][]float64{{0, 0, 0, 0}, {12, 0, 0, 0}}
	s, idx := buildIndexedSet(t, 6, centres)
	rng := tensor.NewRNG(7)
	agreements := 0
	const n = 50
	for i := 0; i < n; i++ {
		z := gaussianBlob(rng, centres[i%2], 0.5)
		fast := idx.NearestWithIndex(s, z)
		cs, _ := s.NearestRaw(z, 1)
		if fast == cs[0] {
			agreements++
		}
	}
	if agreements < n*8/10 {
		t.Fatalf("index nearest agrees with scan only %d/%d times", agreements, n)
	}
}

func TestNearestWithIndexEmptySet(t *testing.T) {
	s := NewSet(quickConfig())
	idx := NewLSHIndex(4, 4, 6, 9)
	if idx.NearestWithIndex(s, []float64{1, 2, 3, 4}) != nil {
		t.Fatal("empty set should return nil")
	}
}

func TestLSHDefaults(t *testing.T) {
	idx := NewLSHIndex(4, 0, 0, 1)
	if idx.Tables != 4 || idx.Bits != 8 {
		t.Fatalf("defaults wrong: %+v", idx)
	}
}
