package cluster

import (
	"odin/internal/tensor"
)

// LSHIndex is a random-hyperplane locality-sensitive hash over latent
// points. The paper's §7 notes that DETECTOR's per-input scan over all
// cluster ∆-bands degrades as clusters accumulate and suggests LSH as the
// remedy; this index implements that remedy: it prunes the candidate
// clusters for a query to those sharing a hash bucket in at least one
// table, falling back to the full scan when no bucket matches.
type LSHIndex struct {
	Tables int // number of hash tables
	Bits   int // hyperplanes (bits) per table
	Dim    int

	planes  [][][]float64 // [table][bit] → hyperplane normal
	biases  [][]float64   // [table][bit] → hyperplane offset
	buckets []map[uint64][]*Cluster
}

// NewLSHIndex builds an index for dim-dimensional latents.
func NewLSHIndex(dim, tables, bits int, seed uint64) *LSHIndex {
	if tables <= 0 {
		tables = 4
	}
	if bits <= 0 || bits > 60 {
		bits = 8
	}
	rng := tensor.NewRNG(seed)
	idx := &LSHIndex{Tables: tables, Bits: bits, Dim: dim}
	idx.planes = make([][][]float64, tables)
	idx.biases = make([][]float64, tables)
	idx.buckets = make([]map[uint64][]*Cluster, tables)
	for t := 0; t < tables; t++ {
		idx.planes[t] = make([][]float64, bits)
		idx.biases[t] = make([]float64, bits)
		for b := 0; b < bits; b++ {
			idx.planes[t][b] = rng.NormVec(dim)
			// Offset hyperplanes make the hash translation-sensitive, so a
			// cluster sitting at the origin still hashes consistently.
			idx.biases[t][b] = rng.Norm() * 2
		}
		idx.buckets[t] = make(map[uint64][]*Cluster)
	}
	return idx
}

// hash computes the signature of a point in one table.
func (l *LSHIndex) hash(table int, z []float64) uint64 {
	var sig uint64
	for b, plane := range l.planes[table] {
		if tensor.Dot(plane, z)+l.biases[table][b] >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// Insert registers a cluster under its centroid's buckets. Call again
// after significant centroid movement (Rebuild handles the common case).
func (l *LSHIndex) Insert(c *Cluster) {
	if c.Centroid() == nil {
		return
	}
	for t := 0; t < l.Tables; t++ {
		sig := l.hash(t, c.Centroid())
		l.buckets[t][sig] = append(l.buckets[t][sig], c)
	}
}

// Rebuild reindexes all clusters of a set (centroids drift as clusters
// absorb points, so periodic rebuilds keep buckets fresh).
func (l *LSHIndex) Rebuild(s *Set) {
	for t := range l.buckets {
		l.buckets[t] = make(map[uint64][]*Cluster)
	}
	for _, c := range s.Permanent {
		l.Insert(c)
	}
}

// Candidates returns the clusters sharing at least one bucket with z,
// deduplicated. An empty result means the caller should fall back to a
// full scan.
func (l *LSHIndex) Candidates(z []float64) []*Cluster {
	seen := make(map[*Cluster]bool)
	var out []*Cluster
	for t := 0; t < l.Tables; t++ {
		for _, c := range l.buckets[t][l.hash(t, z)] {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// NearestWithIndex returns the nearest cluster to z using the index's
// candidate set, falling back to the set's full scan when the index
// returns nothing.
func (l *LSHIndex) NearestWithIndex(s *Set, z []float64) *Cluster {
	cands := l.Candidates(z)
	if len(cands) == 0 {
		cs, _ := s.NearestRaw(z, 1)
		if len(cs) == 0 {
			return nil
		}
		return cs[0]
	}
	var best *Cluster
	bestD := 0.0
	for _, c := range cands {
		d := c.RawDistance(z)
		if best == nil || d < bestD {
			best = c
			bestD = d
		}
	}
	return best
}
