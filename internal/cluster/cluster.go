// Package cluster implements the DETECTOR's online cluster set (paper
// §4.5): permanent clusters with ∆-bands, a sliding-window temporary
// cluster that absorbs outliers, KL-divergence stability detection, and
// promotion of stable temporary clusters into permanent ones — the drift
// event that triggers the SPECIALIZER.
package cluster

import (
	"fmt"
	"math"

	"odin/internal/band"
	"odin/internal/tensor"
)

// Config tunes the online clustering behaviour.
type Config struct {
	Bins  int     // histogram resolution for ∆-bands
	Delta float64 // band mass fraction ∆ (paper uses 0.5–0.75)

	// StabilityEps is the threshold on the smoothed KL divergence under
	// which the temporary cluster counts as "not changing" (DKL → 0,
	// Equation 2). The KL of single insertions into a sliding window has
	// an O(1/window) noise floor, so the signal is smoothed with an EWMA
	// before thresholding.
	StabilityEps float64
	// KLAlpha is the EWMA smoothing factor for the KL signal.
	KLAlpha float64
	// StabilitySteps is the minimum number of temp-cluster observations
	// since the last promotion before a new promotion may fire.
	StabilitySteps int
	MinPoints      int // minimum temp-cluster size before promotion
	TempWindow     int // sliding window length of the temporary cluster
	MaxClusters    int // 0 = unlimited; otherwise evict the smallest cluster

	// TailMargin widens each cluster's *routing* reach beyond its ∆-band:
	// a point whose normalised distance lies within
	// Hi + TailMargin·(Hi−Lo) of a cluster is treated as that concept's
	// out-of-band tail — it is served by the cluster (Assignment.Primary)
	// but neither updates the cluster nor enters the temporary cluster.
	// Without this, the ~25% of in-concept mass outside a ∆=0.75 band
	// floods the temporary cluster and prevents genuinely new concepts
	// from stabilising.
	TailMargin float64

	// MergeFactor controls subsumption at promotion time: when the
	// stabilised temporary cluster's centroid lies within MergeFactor ×
	// scale of an existing cluster, its points are absorbed into that
	// cluster instead of creating a new concept. This both prevents the
	// ∆-band's own out-of-band tail (the ~25% of in-concept points outside
	// a ∆=0.75 band) from spawning ring clusters, and reproduces the
	// paper's observation that DETECTOR subsumes similar subsets into one
	// cluster (Table 2).
	MergeFactor float64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Bins:           24,
		Delta:          0.75,
		StabilityEps:   0.01,
		KLAlpha:        0.25,
		StabilitySteps: 30,
		MinPoints:      60,
		TempWindow:     200,
		MaxClusters:    0,
		TailMargin:     0.5,
		MergeFactor:    2.0,
	}
}

// Cluster is one permanent concept cluster: a streaming centroid, a
// normalisation scale for distances, and a ∆-band tracker over the
// normalised distance distribution.
type Cluster struct {
	ID    int
	Label string

	n        int
	sum      []float64
	centroid []float64
	scale    float64 // running mean raw distance to centroid

	Tracker *band.Tracker
}

func newCluster(id, bins int, delta float64) *Cluster {
	return &Cluster{
		ID:      id,
		Label:   fmt.Sprintf("C-%d", id),
		Tracker: band.NewTracker(bins, delta),
	}
}

// Size returns the number of points absorbed by the cluster.
func (c *Cluster) Size() int { return c.n }

// Centroid returns the cluster centroid (aliased; callers must not mutate).
func (c *Cluster) Centroid() []float64 { return c.centroid }

// Band returns the cluster's current ∆-band.
func (c *Cluster) Band() band.Band { return c.Tracker.Band() }

// Distance returns the normalised distance d(z, centroid) ∈ [0, 1):
// r/(r+s) where s is the running mean raw distance. The normalisation is
// what lets one [0,1] band machinery serve clusters of any latent radius
// (the d: ℜⁿ → [0,1] metric of §4.1).
func (c *Cluster) Distance(z []float64) float64 {
	if c.n == 0 {
		return 0
	}
	r := tensor.L2(z, c.centroid)
	s := c.scale
	if s <= 0 {
		s = 1e-9
	}
	return r / (r + s)
}

// RawDistance returns the unnormalised Euclidean distance to the centroid.
func (c *Cluster) RawDistance(z []float64) float64 {
	if c.n == 0 {
		return math.Inf(1)
	}
	return tensor.L2(z, c.centroid)
}

// Contains reports whether z falls inside the cluster's ∆-band.
func (c *Cluster) Contains(z []float64) bool {
	if c.n == 0 {
		return false
	}
	return c.Band().Contains(c.Distance(z))
}

// InTail reports whether z lies in the cluster's out-of-band tail: beyond
// the ∆-band but within margin band-widths of its outer bound.
func (c *Cluster) InTail(z []float64, margin float64) bool {
	if c.n == 0 || margin <= 0 {
		return false
	}
	b := c.Band()
	d := c.Distance(z)
	return d > b.Hi && d <= b.Hi+margin*b.Width()
}

// Add absorbs a point: updates the streaming centroid, the distance scale
// and the ∆-band distribution.
func (c *Cluster) Add(z []float64) {
	if c.n == 0 {
		c.sum = make([]float64, len(z))
		c.centroid = make([]float64, len(z))
	}
	for i, v := range z {
		c.sum[i] += v
	}
	c.n++
	inv := 1 / float64(c.n)
	for i := range c.centroid {
		c.centroid[i] = c.sum[i] * inv
	}
	r := tensor.L2(z, c.centroid)
	// Running mean of raw distances.
	c.scale += (r - c.scale) / float64(c.n)
	c.Tracker.Observe(c.Distance(z))
}

// seedFrom initialises a cluster from a window of points all at once
// (promotion path): centroid and scale from the batch, band rebuilt.
func (c *Cluster) seedFrom(points [][]float64) {
	c.centroid = tensor.Centroid(points)
	c.sum = make([]float64, len(c.centroid))
	for i, v := range c.centroid {
		c.sum[i] = v * float64(len(points))
	}
	c.n = len(points)
	var mean float64
	raw := make([]float64, len(points))
	for i, p := range points {
		raw[i] = tensor.L2(p, c.centroid)
		mean += raw[i]
	}
	c.scale = mean / float64(len(points))
	dists := make([]float64, len(points))
	for i, r := range raw {
		s := c.scale
		if s <= 0 {
			s = 1e-9
		}
		dists[i] = r / (r + s)
	}
	c.Tracker.Rebuild(dists)
}

// DriftEvent records the promotion of a temporary cluster to a permanent
// concept cluster — the signal that drift occurred (§4.5).
type DriftEvent struct {
	Cluster  *Cluster
	AtPoint  int // stream position at which drift was declared
	Evicted  *Cluster
	NumSeeds int
}

// Assignment is the outcome of observing one point.
type Assignment struct {
	// Primary is the nearest permanent cluster containing the point, or
	// nil when the point was an outlier (routed to the temporary cluster).
	Primary *Cluster
	// Containing lists every permanent cluster whose ∆-band contains the
	// point (Algorithm 2 updates all of them; ∆-BM selection uses them).
	Containing []*Cluster
	// Outlier reports whether the point fell outside every permanent band.
	Outlier bool
	// Drift is non-nil when this observation triggered a promotion.
	Drift *DriftEvent
}

// Set is the online cluster collection: zero or more permanent clusters
// plus one temporary cluster fed by outliers.
type Set struct {
	cfg Config

	Permanent []*Cluster
	nextID    int

	tempPoints [][]float64 // sliding window
	tempDists  []float64   // cached normalised distances (parallel to tempPoints)
	temp       *Cluster
	klEWMA     float64 // smoothed KL stability signal
	tempObs    int     // temp observations since the last promotion

	seen   int
	events []DriftEvent
}

// NewSet returns an empty cluster set.
func NewSet(cfg Config) *Set {
	if cfg.Bins <= 0 || cfg.Delta <= 0 || cfg.Delta > 1 {
		panic(fmt.Sprintf("cluster: invalid config %+v", cfg))
	}
	return &Set{cfg: cfg}
}

// Config returns the set's configuration.
func (s *Set) Config() Config { return s.cfg }

// Events returns all drift events so far.
func (s *Set) Events() []DriftEvent { return s.events }

// Seen returns the number of points observed.
func (s *Set) Seen() int { return s.seen }

// TempSize returns the current temporary-cluster window fill.
func (s *Set) TempSize() int { return len(s.tempPoints) }

// Observe routes one latent point through the DETECTOR's clustering logic
// and returns the assignment.
func (s *Set) Observe(z []float64) Assignment {
	s.seen++
	var a Assignment

	// 1. Check permanent clusters (Algorithm 2 lines 2–9): the point
	// updates every cluster whose band contains it; the nearest containing
	// cluster is the primary assignment.
	bestD := math.Inf(1)
	for _, c := range s.Permanent {
		if c.Contains(z) {
			a.Containing = append(a.Containing, c)
			if d := c.Distance(z); d < bestD {
				bestD = d
				a.Primary = c
			}
		}
	}
	if a.Primary != nil {
		for _, c := range a.Containing {
			c.Add(z)
		}
		return a
	}

	// 2. Tail: a point just beyond a cluster's band is that concept's
	// out-of-band tail; serve it from the nearest such cluster without
	// polluting either the cluster statistics or the temporary cluster.
	for _, c := range s.Permanent {
		if c.InTail(z, s.cfg.TailMargin) {
			if d := c.Distance(z); d < bestD {
				bestD = d
				a.Primary = c
			}
		}
	}
	if a.Primary != nil {
		return a
	}

	// 3. Outlier: route to the temporary cluster (Algorithm 2 lines 10–16).
	a.Outlier = true
	a.Drift = s.observeTemp(z)
	return a
}

// observeTemp adds a point to the sliding-window temporary cluster,
// recomputes its distribution and promotes it when stable.
func (s *Set) observeTemp(z []float64) *DriftEvent {
	cp := make([]float64, len(z))
	copy(cp, z)
	s.tempPoints = append(s.tempPoints, cp)
	if len(s.tempPoints) > s.cfg.TempWindow {
		s.tempPoints = s.tempPoints[1:]
	}

	if s.temp == nil {
		s.temp = newCluster(-1, s.cfg.Bins, s.cfg.Delta)
	}
	// Recompute the window's centroid, scale and distance distribution:
	// the temporary cluster must forget old outliers so a new concept can
	// stabilise even after a mixed transition period.
	t := s.temp
	t.centroid = tensor.Centroid(s.tempPoints)
	var mean float64
	raw := make([]float64, len(s.tempPoints))
	for i, p := range s.tempPoints {
		raw[i] = tensor.L2(p, t.centroid)
		mean += raw[i]
	}
	t.scale = mean / float64(len(s.tempPoints))
	t.n = len(s.tempPoints)
	prior := t.Tracker.Hist.Probs()
	s.tempDists = s.tempDists[:0]
	for _, r := range raw {
		sc := t.scale
		if sc <= 0 {
			sc = 1e-9
		}
		s.tempDists = append(s.tempDists, r/(r+sc))
	}
	t.Tracker.Rebuild(s.tempDists)
	posterior := t.Tracker.Hist.Probs()
	kl := band.KL(prior, posterior)

	alpha := s.cfg.KLAlpha
	if alpha <= 0 {
		alpha = 0.25
	}
	s.tempObs++
	if s.tempObs == 1 {
		s.klEWMA = kl
	} else {
		s.klEWMA += alpha * (kl - s.klEWMA)
	}

	if s.klEWMA >= s.cfg.StabilityEps ||
		s.tempObs < s.cfg.StabilitySteps ||
		len(s.tempPoints) < s.cfg.MinPoints {
		return nil
	}
	return s.promote()
}

// promote converts the temporary cluster into a permanent cluster, evicting
// the smallest permanent cluster when MaxClusters is exceeded (§6.5 "Model
// Count Threshold"). When the stabilised window is subsumed by an existing
// cluster (MergeFactor test) its points are merged instead and no drift is
// declared.
func (s *Set) promote() *DriftEvent {
	if host := s.subsumedBy(); host != nil {
		for _, p := range s.tempPoints {
			host.Add(p)
		}
		s.tempPoints = nil
		s.tempDists = nil
		s.temp = nil
		s.klEWMA = 0
		s.tempObs = 0
		return nil
	}

	c := newCluster(s.nextID, s.cfg.Bins, s.cfg.Delta)
	s.nextID++
	c.seedFrom(s.tempPoints)
	s.Permanent = append(s.Permanent, c)

	ev := DriftEvent{Cluster: c, AtPoint: s.seen, NumSeeds: len(s.tempPoints)}
	if s.cfg.MaxClusters > 0 && len(s.Permanent) > s.cfg.MaxClusters {
		ev.Evicted = s.evictSmallest(c)
	}
	s.events = append(s.events, ev)

	// Fresh temporary cluster.
	s.tempPoints = nil
	s.tempDists = nil
	s.temp = nil
	s.klEWMA = 0
	s.tempObs = 0
	return &s.events[len(s.events)-1]
}

// subsumedBy returns the existing cluster that should absorb the current
// temporary window, or nil when the window is a genuinely new concept.
func (s *Set) subsumedBy() *Cluster {
	if s.cfg.MergeFactor <= 0 || len(s.Permanent) == 0 {
		return nil
	}
	cand := tensor.Centroid(s.tempPoints)
	var best *Cluster
	bestRatio := math.Inf(1)
	for _, c := range s.Permanent {
		if c.scale <= 0 {
			continue
		}
		ratio := tensor.L2(cand, c.centroid) / c.scale
		if ratio < bestRatio {
			bestRatio = ratio
			best = c
		}
	}
	if bestRatio < s.cfg.MergeFactor {
		return best
	}
	return nil
}

// evictSmallest removes the permanent cluster with the fewest points,
// never evicting the just-promoted cluster keep.
func (s *Set) evictSmallest(keep *Cluster) *Cluster {
	idx := -1
	for i, c := range s.Permanent {
		if c == keep {
			continue
		}
		if idx == -1 || c.n < s.Permanent[idx].n {
			idx = i
		}
	}
	if idx == -1 {
		return nil
	}
	victim := s.Permanent[idx]
	s.Permanent = append(s.Permanent[:idx], s.Permanent[idx+1:]...)
	return victim
}

// Nearest returns the k permanent clusters closest to z by normalised
// distance, nearest first, together with their distances.
func (s *Set) Nearest(z []float64, k int) ([]*Cluster, []float64) {
	type cd struct {
		c *Cluster
		d float64
	}
	all := make([]cd, 0, len(s.Permanent))
	for _, c := range s.Permanent {
		all = append(all, cd{c, c.Distance(z)})
	}
	// Insertion sort: cluster counts are tiny.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].d < all[j-1].d; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if k > len(all) {
		k = len(all)
	}
	cs := make([]*Cluster, k)
	ds := make([]float64, k)
	for i := 0; i < k; i++ {
		cs[i] = all[i].c
		ds[i] = all[i].d
	}
	return cs, ds
}

// NearestRaw is Nearest with unnormalised Euclidean centroid distances —
// the distances Equation 8's inverse weighting needs (normalised distances
// saturate toward 1 far from a cluster, flattening the weights).
func (s *Set) NearestRaw(z []float64, k int) ([]*Cluster, []float64) {
	type cd struct {
		c *Cluster
		d float64
	}
	all := make([]cd, 0, len(s.Permanent))
	for _, c := range s.Permanent {
		all = append(all, cd{c, c.RawDistance(z)})
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].d < all[j-1].d; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if k > len(all) {
		k = len(all)
	}
	cs := make([]*Cluster, k)
	ds := make([]float64, k)
	for i := 0; i < k; i++ {
		cs[i] = all[i].c
		ds[i] = all[i].d
	}
	return cs, ds
}

// ByID returns the permanent cluster with the given id, or nil.
func (s *Set) ByID(id int) *Cluster {
	for _, c := range s.Permanent {
		if c.ID == id {
			return c
		}
	}
	return nil
}
