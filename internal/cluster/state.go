package cluster

import (
	"fmt"

	"odin/internal/band"
	"odin/internal/tensor"
)

// ClusterState is a value snapshot of one permanent cluster. All fields are
// exported so the struct gob-encodes; slices are deep copies.
type ClusterState struct {
	ID       int
	Label    string
	N        int
	Sum      []float64
	Centroid []float64
	Scale    float64
	Tracker  band.TrackerState
}

// SetState is a value snapshot of the full online cluster set. The
// temporary cluster is not stored explicitly: its centroid, scale and
// distance distribution are a pure function of the sliding window
// (observeTemp recomputes them on every observation), so SetFromState
// rebuilds them from TempPoints. Past drift events are telemetry, not
// behaviour, and are not captured — a restored set reports Events() from
// the restore point onward.
type SetState struct {
	Config     Config
	Permanent  []ClusterState
	NextID     int
	TempPoints [][]float64
	KLEWMA     float64
	TempObs    int
	Seen       int
}

// State snapshots the set.
func (s *Set) State() SetState {
	st := SetState{
		Config:  s.cfg,
		NextID:  s.nextID,
		KLEWMA:  s.klEWMA,
		TempObs: s.tempObs,
		Seen:    s.seen,
	}
	for _, c := range s.Permanent {
		st.Permanent = append(st.Permanent, ClusterState{
			ID:       c.ID,
			Label:    c.Label,
			N:        c.n,
			Sum:      append([]float64(nil), c.sum...),
			Centroid: append([]float64(nil), c.centroid...),
			Scale:    c.scale,
			Tracker:  c.Tracker.State(),
		})
	}
	for _, p := range s.tempPoints {
		st.TempPoints = append(st.TempPoints, append([]float64(nil), p...))
	}
	return st
}

// SetFromState rebuilds a cluster set that continues bit-identically from
// the snapshot: the next Observe sees the same permanent clusters, the same
// temporary window and the same smoothed KL signal the live set had.
func SetFromState(st SetState) (*Set, error) {
	if st.Config.Bins <= 0 || st.Config.Delta <= 0 || st.Config.Delta > 1 {
		return nil, fmt.Errorf("cluster: restore: invalid config %+v", st.Config)
	}
	s := &Set{
		cfg:     st.Config,
		nextID:  st.NextID,
		klEWMA:  st.KLEWMA,
		tempObs: st.TempObs,
		seen:    st.Seen,
	}
	for _, cs := range st.Permanent {
		if cs.N > 0 && (len(cs.Sum) != len(cs.Centroid) || len(cs.Centroid) == 0) {
			return nil, fmt.Errorf("cluster: restore: cluster %d has inconsistent centroid state", cs.ID)
		}
		c := &Cluster{
			ID:       cs.ID,
			Label:    cs.Label,
			n:        cs.N,
			sum:      append([]float64(nil), cs.Sum...),
			centroid: append([]float64(nil), cs.Centroid...),
			scale:    cs.Scale,
			Tracker:  band.TrackerFromState(cs.Tracker),
		}
		s.Permanent = append(s.Permanent, c)
	}
	for _, p := range st.TempPoints {
		s.tempPoints = append(s.tempPoints, append([]float64(nil), p...))
	}
	if len(s.tempPoints) > 0 {
		s.rebuildTemp()
	}
	return s, nil
}

// rebuildTemp reconstructs the temporary cluster from the sliding window,
// mirroring the recomputation observeTemp performs on every observation so
// the restored in-memory state matches the live one exactly.
func (s *Set) rebuildTemp() {
	t := newCluster(-1, s.cfg.Bins, s.cfg.Delta)
	t.centroid = tensor.Centroid(s.tempPoints)
	var mean float64
	raw := make([]float64, len(s.tempPoints))
	for i, p := range s.tempPoints {
		raw[i] = tensor.L2(p, t.centroid)
		mean += raw[i]
	}
	t.scale = mean / float64(len(s.tempPoints))
	t.n = len(s.tempPoints)
	s.tempDists = s.tempDists[:0]
	for _, r := range raw {
		sc := t.scale
		if sc <= 0 {
			sc = 1e-9
		}
		s.tempDists = append(s.tempDists, r/(r+sc))
	}
	t.Tracker.Rebuild(s.tempDists)
	s.temp = t
}
