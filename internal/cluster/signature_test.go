package cluster

import (
	"math"
	"testing"

	"odin/internal/tensor"
)

// grownCluster drives a fresh set with a stationary concept until a cluster
// forms and returns it.
func grownCluster(t *testing.T, seed uint64, centre []float64, sigma float64) *Cluster {
	t.Helper()
	rng := tensor.NewRNG(seed)
	s := NewSet(quickConfig())
	for i := 0; i < 400; i++ {
		s.Observe(gaussianBlob(rng, centre, sigma))
	}
	if len(s.Permanent) != 1 {
		t.Fatalf("expected 1 cluster, got %d", len(s.Permanent))
	}
	return s.Permanent[0]
}

func TestSignatureSelfDistanceZero(t *testing.T) {
	c := grownCluster(t, 1, []float64{2, -1, 0.5, 3}, 0.3)
	sig := c.Signature()
	if d := sig.DistanceTo(sig); d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
	if len(sig.Centroid) != 4 || sig.Scale <= 0 || len(sig.Hist) == 0 || sig.Key == "" {
		t.Fatalf("signature not fully populated: %+v", sig)
	}
}

func TestSignatureIsSnapshot(t *testing.T) {
	rng := tensor.NewRNG(1)
	centre := []float64{2, -1, 0.5, 3}
	s := NewSet(quickConfig())
	for i := 0; i < 400; i++ {
		s.Observe(gaussianBlob(rng, centre, 0.3))
	}
	c := s.Permanent[0]
	sig := c.Signature()
	saved := append([]float64(nil), sig.Centroid...)
	// Keep evolving the live cluster far away; the snapshot must not move.
	for i := 0; i < 200; i++ {
		s.Observe(gaussianBlob(rng, []float64{2.5, -0.5, 1, 3.5}, 0.3))
	}
	for i := range saved {
		if sig.Centroid[i] != saved[i] {
			t.Fatalf("signature centroid mutated at dim %d", i)
		}
	}
}

func TestSignatureSameRegimeAcrossSubstrates(t *testing.T) {
	// Two independently grown clusters over the same concept (different
	// sample noise) must be close; a different concept must be far.
	centre := []float64{2, -1, 0.5, 3}
	a := grownCluster(t, 1, centre, 0.3).Signature()
	b := grownCluster(t, 2, centre, 0.3).Signature()
	far := grownCluster(t, 3, []float64{-4, 5, -2, 0}, 0.3).Signature()

	same := a.DistanceTo(b)
	diff := a.DistanceTo(far)
	if same >= 0.25 {
		t.Fatalf("same-regime distance = %v, want < 0.25 (adopt gate)", same)
	}
	if diff <= 0.6 {
		t.Fatalf("cross-regime distance = %v, want > 0.6 (outside warm gate)", diff)
	}
	if same >= diff {
		t.Fatalf("same-regime %v not closer than cross-regime %v", same, diff)
	}
}

func TestSignatureDistanceSymmetric(t *testing.T) {
	a := grownCluster(t, 1, []float64{2, -1, 0.5, 3}, 0.3).Signature()
	b := grownCluster(t, 2, []float64{1, 0, 1, 2}, 0.4).Signature()
	if d1, d2 := a.DistanceTo(b), b.DistanceTo(a); math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("distance not symmetric: %v vs %v", d1, d2)
	}
}

func TestSignatureDimensionMismatchInfinite(t *testing.T) {
	a := grownCluster(t, 1, []float64{2, -1, 0.5, 3}, 0.3).Signature()
	b := Signature{Centroid: []float64{1, 2}, Scale: 1}
	if d := a.DistanceTo(b); !math.IsInf(d, 1) {
		t.Fatalf("dimension mismatch distance = %v, want +Inf", d)
	}
	var empty Signature
	if d := empty.DistanceTo(empty); !math.IsInf(d, 1) {
		t.Fatalf("empty signature distance = %v, want +Inf", d)
	}
}

func TestSignatureKeyStableUnderQuantization(t *testing.T) {
	// Identical driving produces identical keys.
	a := grownCluster(t, 7, []float64{2, -1, 0.5, 3}, 0.3).Signature()
	b := grownCluster(t, 7, []float64{2, -1, 0.5, 3}, 0.3).Signature()
	if a.Key != b.Key {
		t.Fatalf("identically grown clusters differ in key: %q vs %q", a.Key, b.Key)
	}
}
