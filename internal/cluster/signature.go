package cluster

import (
	"math"
	"strconv"
	"strings"

	"odin/internal/tensor"
)

// Signature is a quantized fingerprint of a cluster's drift regime: the
// centroid and distance scale of the cluster in latent space plus the
// probability mass function of its ∆-band distance histogram. Two cameras
// that share a bootstrap substrate (same projector) and enter the same
// visual regime — dawn breaking, snow starting — produce clusters whose
// signatures lie close under DistanceTo, which is what lets a fleet-level
// model registry recognise "another camera already recovered from this"
// (ECCO-style correlated recovery). Signatures are value snapshots: the
// live cluster keeps evolving after Signature() is taken.
type Signature struct {
	// Key is the quantized exact-match key: centroid coordinates rounded to
	// a grid of half the cluster's distance scale. Identically evolved
	// clusters (same substrate, same frames) share a Key bit-for-bit;
	// same-regime clusters on different cameras usually do, but the
	// distance test below is the authoritative matcher — Key is only a
	// cheap prefilter and a stable label for logs.
	Key string
	// Centroid is the cluster centroid in the projector's latent space.
	Centroid []float64
	// Scale is the cluster's running mean raw distance to the centroid —
	// the normalisation constant of the paper's d: ℜⁿ → [0,1) metric.
	Scale float64
	// Hist is the Laplace-smoothed PMF of the cluster's normalised-distance
	// histogram (the ∆-band distribution).
	Hist []float64
}

// Signature returns the cluster's current drift-regime signature.
func (c *Cluster) Signature() Signature {
	sig := Signature{
		Centroid: append([]float64(nil), c.centroid...),
		Scale:    c.scale,
		Hist:     c.Tracker.Hist.Probs(),
	}
	sig.Key = quantKey(sig.Centroid, sig.Scale)
	return sig
}

// quantKey renders centroid coordinates quantized to a scale-relative grid.
func quantKey(centroid []float64, scale float64) string {
	step := scale / 2
	if step <= 0 {
		step = 1e-9
	}
	var b strings.Builder
	for i, v := range centroid {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.FormatInt(int64(math.Round(v/step)), 10))
	}
	return b.String()
}

// DistanceTo returns a dissimilarity in [0, 1] between two regimes: the
// normalised centroid distance r/(r+s̄) — the paper's d metric with s̄ the
// mean of both clusters' scales — blended with half the L1 divergence
// between their ∆-band distance distributions. 0 means identical regimes;
// values near 1 mean the centroids are many cluster radii apart.
// Signatures over different latent spaces (dimension mismatch) are
// infinitely far apart.
func (s Signature) DistanceTo(o Signature) float64 {
	if len(s.Centroid) == 0 || len(s.Centroid) != len(o.Centroid) {
		return math.Inf(1)
	}
	r := tensor.L2(s.Centroid, o.Centroid)
	sbar := (s.Scale + o.Scale) / 2
	if sbar <= 0 {
		sbar = 1e-9
	}
	dc := r / (r + sbar)

	// ∆-band distribution divergence: ½·L1 between PMFs ∈ [0,1]. A regime
	// with the same centroid but a very different distance spread (e.g. a
	// transient fluctuation vs a settled concept) is pushed apart, which is
	// part of the adoption gate against pulling in a foreign model.
	hl1 := 1.0
	if len(s.Hist) == len(o.Hist) && len(s.Hist) > 0 {
		var l1 float64
		for i := range s.Hist {
			l1 += math.Abs(s.Hist[i] - o.Hist[i])
		}
		hl1 = l1 / 2
	}
	return 0.75*dc + 0.25*hl1
}
