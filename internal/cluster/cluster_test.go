package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"odin/internal/tensor"
)

// gaussianBlob samples points around a centre with given spread.
func gaussianBlob(rng *tensor.RNG, centre []float64, sigma float64) []float64 {
	out := make([]float64, len(centre))
	for i, c := range centre {
		out[i] = c + sigma*rng.Norm()
	}
	return out
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.MinPoints = 40
	cfg.StabilitySteps = 10
	cfg.TempWindow = 80
	cfg.MergeFactor = 2.0
	return cfg
}

func TestNewSetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid config")
		}
	}()
	NewSet(Config{Bins: 0, Delta: 0.5})
}

func TestFirstConceptFormsCluster(t *testing.T) {
	rng := tensor.NewRNG(1)
	s := NewSet(quickConfig())
	centre := []float64{2, -1, 0.5, 3}
	var drifted bool
	for i := 0; i < 400; i++ {
		a := s.Observe(gaussianBlob(rng, centre, 0.3))
		if a.Drift != nil {
			drifted = true
		}
	}
	if !drifted {
		t.Fatal("a stationary concept stream must form a cluster")
	}
	if len(s.Permanent) != 1 {
		t.Fatalf("expected exactly 1 cluster, got %d", len(s.Permanent))
	}
	c := s.Permanent[0]
	for i, want := range centre {
		if math.Abs(c.Centroid()[i]-want) > 0.2 {
			t.Fatalf("centroid dim %d = %v, want ~%v", i, c.Centroid()[i], want)
		}
	}
}

func TestSecondConceptTriggersDrift(t *testing.T) {
	rng := tensor.NewRNG(2)
	s := NewSet(quickConfig())
	c1 := []float64{0, 0, 0, 0}
	c2 := []float64{8, 8, 8, 8}
	for i := 0; i < 400; i++ {
		s.Observe(gaussianBlob(rng, c1, 0.3))
	}
	if len(s.Permanent) != 1 {
		t.Fatalf("setup: expected 1 cluster, got %d", len(s.Permanent))
	}
	// Concept 1 points keep landing mostly in the existing cluster. A
	// ∆=0.75 band excludes ~25% of in-concept mass by construction, so the
	// expectation is "majority inside", not "all inside".
	outliers := 0
	for i := 0; i < 50; i++ {
		a := s.Observe(gaussianBlob(rng, c1, 0.3))
		if a.Outlier {
			outliers++
		}
	}
	if outliers > 25 {
		t.Fatalf("too many in-concept points flagged as outliers: %d/50", outliers)
	}
	// Concept 2 arrives: drift must be detected.
	var drift bool
	for i := 0; i < 400 && !drift; i++ {
		a := s.Observe(gaussianBlob(rng, c2, 0.3))
		drift = drift || a.Drift != nil
	}
	if !drift {
		t.Fatal("second concept did not trigger drift")
	}
	if len(s.Permanent) != 2 {
		t.Fatalf("expected 2 clusters, got %d", len(s.Permanent))
	}
	if len(s.Events()) != 2 {
		t.Fatalf("expected 2 drift events, got %d", len(s.Events()))
	}
}

func TestOutlierRouting(t *testing.T) {
	rng := tensor.NewRNG(3)
	s := NewSet(quickConfig())
	for i := 0; i < 400; i++ {
		s.Observe(gaussianBlob(rng, []float64{0, 0}, 0.3))
	}
	a := s.Observe([]float64{50, 50})
	if !a.Outlier || a.Primary != nil {
		t.Fatalf("far point must be an outlier: %+v", a)
	}
	if s.TempSize() == 0 {
		t.Fatal("outlier should land in the temporary cluster")
	}
}

func TestMaxClustersEviction(t *testing.T) {
	rng := tensor.NewRNG(4)
	cfg := quickConfig()
	cfg.MaxClusters = 2
	s := NewSet(cfg)
	centres := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	for _, c := range centres {
		for i := 0; i < 400; i++ {
			s.Observe(gaussianBlob(rng, c, 0.3))
		}
	}
	if len(s.Permanent) > 2 {
		t.Fatalf("MaxClusters=2 violated: %d clusters", len(s.Permanent))
	}
	// The last event must record an eviction.
	evs := s.Events()
	if len(evs) < 3 {
		t.Fatalf("expected 3 drift events, got %d", len(evs))
	}
	if evs[len(evs)-1].Evicted == nil {
		t.Fatal("third promotion should have evicted a cluster")
	}
}

func TestNearestOrdering(t *testing.T) {
	rng := tensor.NewRNG(5)
	s := NewSet(quickConfig())
	for _, c := range [][]float64{{0, 0}, {10, 0}} {
		for i := 0; i < 400; i++ {
			s.Observe(gaussianBlob(rng, c, 0.3))
		}
	}
	if len(s.Permanent) != 2 {
		t.Skipf("clustering produced %d clusters; need 2", len(s.Permanent))
	}
	cs, ds := s.Nearest([]float64{1, 0}, 2)
	if len(cs) != 2 {
		t.Fatalf("Nearest returned %d clusters", len(cs))
	}
	if ds[0] > ds[1] {
		t.Fatal("Nearest must sort by distance")
	}
	if tensor.L2(cs[0].Centroid(), []float64{0, 0}) > tensor.L2(cs[0].Centroid(), []float64{10, 0}) {
		t.Fatal("nearest cluster should be the one at the origin")
	}
	// k larger than cluster count.
	cs, _ = s.Nearest([]float64{0, 0}, 10)
	if len(cs) != 2 {
		t.Fatalf("k overflow should clamp: %d", len(cs))
	}
}

func TestByID(t *testing.T) {
	rng := tensor.NewRNG(6)
	s := NewSet(quickConfig())
	for i := 0; i < 400; i++ {
		s.Observe(gaussianBlob(rng, []float64{3, 3}, 0.3))
	}
	if len(s.Permanent) == 0 {
		t.Fatal("no cluster formed")
	}
	id := s.Permanent[0].ID
	if s.ByID(id) != s.Permanent[0] {
		t.Fatal("ByID lookup failed")
	}
	if s.ByID(999) != nil {
		t.Fatal("unknown id should return nil")
	}
}

func TestClusterDistanceNormalised(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		c := newCluster(0, 16, 0.75)
		centre := rng.NormVec(4)
		for i := 0; i < 50; i++ {
			c.Add(gaussianBlob(rng, centre, 0.5))
		}
		for i := 0; i < 20; i++ {
			d := c.Distance(rng.NormVec(4))
			if d < 0 || d >= 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClusterDistanceMonotoneInRadius(t *testing.T) {
	rng := tensor.NewRNG(7)
	c := newCluster(0, 16, 0.75)
	for i := 0; i < 100; i++ {
		c.Add(gaussianBlob(rng, []float64{0, 0}, 1))
	}
	d1 := c.Distance([]float64{1, 0})
	d2 := c.Distance([]float64{5, 0})
	d3 := c.Distance([]float64{20, 0})
	if !(d1 < d2 && d2 < d3) {
		t.Fatalf("distance not monotone: %v %v %v", d1, d2, d3)
	}
}

func TestEmptyClusterBehaviour(t *testing.T) {
	c := newCluster(0, 16, 0.75)
	if c.Contains([]float64{1, 2}) {
		t.Fatal("empty cluster cannot contain points")
	}
	if !math.IsInf(c.RawDistance([]float64{1, 2}), 1) {
		t.Fatal("empty cluster raw distance should be +inf")
	}
	if c.Distance([]float64{1, 2}) != 0 {
		t.Fatal("empty cluster normalised distance defined as 0")
	}
}

func TestSeenCounter(t *testing.T) {
	rng := tensor.NewRNG(8)
	s := NewSet(quickConfig())
	for i := 0; i < 25; i++ {
		s.Observe(gaussianBlob(rng, []float64{0}, 1))
	}
	if s.Seen() != 25 {
		t.Fatalf("Seen=%d, want 25", s.Seen())
	}
}

// TestMixedTransitionStillConverges verifies the sliding window lets a new
// concept stabilise even when the temp cluster initially holds stale
// outliers from a noisy transition period.
func TestMixedTransitionStillConverges(t *testing.T) {
	rng := tensor.NewRNG(9)
	cfg := quickConfig()
	s := NewSet(cfg)
	for i := 0; i < 400; i++ {
		s.Observe(gaussianBlob(rng, []float64{0, 0}, 0.3))
	}
	// Noise burst: scattered outliers that should NOT form a cluster.
	for i := 0; i < 30; i++ {
		s.Observe(rng.NormVec(2))
	}
	before := len(s.Permanent)
	// Now a coherent new concept.
	var drift bool
	for i := 0; i < 600 && !drift; i++ {
		a := s.Observe(gaussianBlob(rng, []float64{9, -9}, 0.3))
		drift = drift || a.Drift != nil
	}
	if !drift {
		t.Fatal("new concept after noisy transition did not stabilise")
	}
	if len(s.Permanent) != before+1 {
		t.Fatalf("expected %d clusters, got %d", before+1, len(s.Permanent))
	}
}
