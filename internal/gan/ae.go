package gan

import (
	"odin/internal/nn"
	"odin/internal/tensor"
)

// Autoencoder is the standard AE of §2.3: encoder + decoder trained with
// reconstruction loss only. Its latent space develops holes under drift
// (Figure 2a), which is exactly the failure mode DA-GAN exists to fix; it
// is retained both as a Table 1 baseline and as the body of DRAE.
type Autoencoder struct {
	Cfg Config
	Enc *nn.Network
	Dec *nn.Network

	opt nn.Optimizer
	rng *tensor.RNG
}

// NewAutoencoder builds an AE from the config.
func NewAutoencoder(cfg Config) *Autoencoder {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	rng := tensor.NewRNG(cfg.Seed)
	return &Autoencoder{
		Cfg: cfg,
		Enc: buildEncoder(cfg, rng),
		Dec: buildDecoder(cfg, rng),
		opt: nn.NewAdam(cfg.LR),
		rng: rng,
	}
}

// Fit trains the AE for the given number of epochs and returns the final
// epoch's mean reconstruction loss.
func (a *Autoencoder) Fit(data [][]float64, epochs, batch int) float64 {
	var last float64
	for e := 0; e < epochs; e++ {
		last = a.TrainEpoch(data, batch)
	}
	return last
}

// TrainEpoch runs one epoch of minibatch reconstruction training and
// returns the mean loss.
func (a *Autoencoder) TrainEpoch(data [][]float64, batch int) float64 {
	var total float64
	batches := miniBatches(len(data), batch, a.rng)
	for _, idx := range batches {
		x := gather(a.Cfg.DType, data, idx)
		z := a.Enc.Forward(x, true)
		xr := a.Dec.Forward(z, true)
		loss, grad := nn.BCE(xr, x)
		total += loss
		a.Enc.ZeroGrad()
		a.Dec.ZeroGrad()
		gz := a.Dec.Backward(grad)
		dIn := a.Enc.Backward(gz)
		a.opt.Step(append(a.Enc.Params(), a.Dec.Params()...))
		// Everything this step produced is dead now; hand it back so the
		// next minibatch allocates nothing.
		nn.Recycle(x, z, xr, grad, gz, dIn)
	}
	return total / float64(len(batches))
}

// Project encodes one image into the latent space.
func (a *Autoencoder) Project(x []float64) []float64 {
	out := a.Enc.Predict(fromVec(a.Cfg.DType, x))
	return rowCopy(out, 0)
}

// LatentDim returns the latent dimensionality.
func (a *Autoencoder) LatentDim() int { return a.Cfg.Latent }

// ProjectBatch encodes many images in one forward pass.
func (a *Autoencoder) ProjectBatch(rows [][]float64) [][]float64 {
	return projectBatch(a.Enc, a.Cfg.DType, rows)
}

// Reconstruct encodes then decodes one image.
func (a *Autoencoder) Reconstruct(x []float64) []float64 {
	z := a.Enc.Predict(fromVec(a.Cfg.DType, x))
	out := a.Dec.Predict(z)
	return rowCopy(out, 0)
}

// ReconError returns the mean squared reconstruction error of one image,
// the drift signal of DRAE and Figure 5.
func (a *Autoencoder) ReconError(x []float64) float64 {
	r := a.Reconstruct(x)
	var s float64
	for i, v := range r {
		d := v - x[i]
		s += d * d
	}
	return s / float64(len(x))
}

// Decode maps a latent point back to image space.
func (a *Autoencoder) Decode(z []float64) []float64 {
	out := a.Dec.Predict(fromVec(a.Cfg.DType, z))
	return rowCopy(out, 0)
}

var _ Projector = (*Autoencoder)(nil)
