package gan

import (
	"math"

	"odin/internal/tensor"
)

// Decoder is any model that can map a latent point back to image space;
// AE, AAE and DA-GAN all satisfy it.
type Decoder interface {
	Decode(z []float64) []float64
}

// Reconstructor is any model that can auto-encode an image.
type Reconstructor interface {
	Reconstruct(x []float64) []float64
}

// CycleError quantifies latent-space holes (Figure 2): sample z ~ N(0,1),
// decode, re-encode, and measure ‖E(G(z)) − z‖ / √latent. A smooth,
// hole-free latent space (AAE, DA-GAN) re-encodes decoded points close to
// where they came from; a holey AE latent space does not, because the
// decoder produces invalid images inside the holes.
func CycleError(p Projector, d Decoder, nSamples int, seed uint64) float64 {
	rng := tensor.NewRNG(seed)
	dim := p.LatentDim()
	var total float64
	for i := 0; i < nSamples; i++ {
		z := rng.NormVec(dim)
		z2 := p.Project(d.Decode(z))
		total += tensor.L2(z, z2) / math.Sqrt(float64(dim))
	}
	return total / float64(nSamples)
}

// MeanReconError is the mean squared reconstruction error over a dataset —
// the blurriness proxy of Figure 2 (higher = more information lost).
func MeanReconError(r Reconstructor, data [][]float64) float64 {
	if len(data) == 0 {
		return 0
	}
	var total float64
	for _, x := range data {
		rec := r.Reconstruct(x)
		var s float64
		for i, v := range rec {
			d := v - x[i]
			s += d * d
		}
		total += s / float64(len(x))
	}
	return total / float64(len(data))
}

// LatentStats summarises where a dataset lands in latent space: per-
// dimension mean magnitude and overall standard deviation. An adversarially
// regularised encoder should land near N(0,1).
type LatentStats struct {
	MeanNorm float64 // mean ‖z‖/√dim: ≈1 under N(0,1)
	Std      float64 // pooled per-dimension standard deviation
}

// ComputeLatentStats projects a dataset and summarises its latent geometry.
func ComputeLatentStats(p Projector, data [][]float64) LatentStats {
	if len(data) == 0 {
		return LatentStats{}
	}
	dim := p.LatentDim()
	var normSum float64
	all := make([]float64, 0, len(data)*dim)
	for _, x := range data {
		z := p.Project(x)
		var s float64
		for _, v := range z {
			s += v * v
		}
		normSum += math.Sqrt(s / float64(dim))
		all = append(all, z...)
	}
	return LatentStats{
		MeanNorm: normSum / float64(len(data)),
		Std:      math.Sqrt(tensor.Variance(all)),
	}
}
