package gan

import "odin/internal/nn"

// State is a value snapshot of a trained DA-GAN: the architecture config,
// all four networks' weights and the generator RNG. Optimizer moments are
// not captured — a restored DA-GAN projects bit-identically; resuming
// adversarial training restarts its Adam state. Override Cfg.DType before
// FromState to rebuild under a different compute backend (the stored
// weights are always float64 masters).
type State struct {
	Cfg     Config
	LambdaR float64
	RNG     uint64
	Enc     nn.NetState
	Dec     nn.NetState
	DZ      nn.NetState
	DI      nn.NetState
}

// State snapshots the DA-GAN.
func (d *DAGAN) State() State {
	return State{
		Cfg:     d.Cfg,
		LambdaR: d.LambdaR,
		RNG:     d.rng.State(),
		Enc:     nn.CaptureState(d.Enc),
		Dec:     nn.CaptureState(d.Dec),
		DZ:      nn.CaptureState(d.DZ),
		DI:      nn.CaptureState(d.DI),
	}
}

// FromState rebuilds a DA-GAN from a snapshot: the architecture is rebuilt
// from st.Cfg (so weight shapes are validated against the config) and the
// stored weights loaded over it.
func FromState(st State) (*DAGAN, error) {
	if err := st.Cfg.validate(); err != nil {
		return nil, err
	}
	d := NewDAGAN(st.Cfg)
	d.LambdaR = st.LambdaR
	d.rng.SetState(st.RNG)
	for _, p := range []struct {
		net *nn.Network
		st  nn.NetState
	}{{d.Enc, st.Enc}, {d.Dec, st.Dec}, {d.DZ, st.DZ}, {d.DI, st.DI}} {
		if err := nn.RestoreState(p.net, p.st); err != nil {
			return nil, err
		}
	}
	return d, nil
}
