package gan

import (
	"odin/internal/nn"
	"odin/internal/tensor"
)

// AAE is the adversarial autoencoder of §2.3: an AE whose latent space is
// pushed toward N(0,1) by a latent discriminator DZ, closing the holes of
// the standard AE at the cost of some blurriness (Figure 2b).
type AAE struct {
	Cfg Config
	Enc *nn.Network
	Dec *nn.Network
	DZ  *nn.Network

	optAE nn.Optimizer
	optDZ nn.Optimizer
	optE  nn.Optimizer
	rng   *tensor.RNG
}

// NewAAE builds an adversarial autoencoder from the config.
func NewAAE(cfg Config) *AAE {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	rng := tensor.NewRNG(cfg.Seed)
	return &AAE{
		Cfg:   cfg,
		Enc:   buildEncoder(cfg, rng),
		Dec:   buildDecoder(cfg, rng),
		DZ:    buildDiscriminator("latent-disc", cfg.Latent, rng),
		optAE: nn.NewAdam(cfg.LR),
		optDZ: nn.NewAdam(cfg.LR),
		optE:  nn.NewAdam(cfg.LR * 0.5),
		rng:   rng,
	}
}

// Fit trains the AAE for the given number of epochs and returns the final
// epoch's mean reconstruction loss.
func (a *AAE) Fit(data [][]float64, epochs, batch int) float64 {
	var last float64
	for e := 0; e < epochs; e++ {
		last = a.TrainEpoch(data, batch)
	}
	return last
}

// TrainEpoch runs one epoch of the three-phase AAE update (reconstruction,
// latent discriminator, encoder regularisation) and returns the mean
// reconstruction loss.
func (a *AAE) TrainEpoch(data [][]float64, batch int) float64 {
	var total float64
	batches := miniBatches(len(data), batch, a.rng)
	for _, idx := range batches {
		x := gather(a.Cfg.DType, data, idx)

		// 1. Reconstruction phase.
		z := a.Enc.Forward(x, true)
		xr := a.Dec.Forward(z, true)
		loss, grad := nn.BCE(xr, x)
		total += loss
		a.Enc.ZeroGrad()
		a.Dec.ZeroGrad()
		gz := a.Dec.Backward(grad)
		dIn := a.Enc.Backward(gz)
		a.optAE.Step(append(a.Enc.Params(), a.Dec.Params()...))
		nn.Recycle(z, xr, grad, gz, dIn)

		// 2. Latent discriminator: N(0,1) real vs encoded fake (Eq. 3).
		zReal := nn.GetMatRawOf(a.Cfg.DType, x.R, a.Cfg.Latent)
		a.rng.FillNormal(zReal, 1)
		zFake := a.Enc.Predict(x)
		a.DZ.ZeroGrad()
		pReal := a.DZ.Forward(zReal, true)
		_, gReal := nn.BCEScalarTarget(pReal, 1)
		dReal := a.DZ.Backward(gReal)
		pFake := a.DZ.Forward(zFake, true)
		_, gFake := nn.BCEScalarTarget(pFake, 0)
		dFake := a.DZ.Backward(gFake)
		nn.ClipGrads(a.DZ.Params(), 5)
		a.optDZ.Step(a.DZ.Params())
		nn.Recycle(zReal, zFake, pReal, gReal, dReal, pFake, gFake, dFake)

		// 3. Encoder regularisation: fool DZ.
		z3 := a.Enc.Forward(x, true)
		p := a.DZ.Forward(z3, true)
		_, g := nn.BCEScalarTarget(p, 1)
		a.Enc.ZeroGrad()
		a.DZ.ZeroGrad()
		gz3 := a.DZ.Backward(g)
		dIn3 := a.Enc.Backward(gz3)
		nn.ClipGrads(a.Enc.Params(), 5)
		a.optE.Step(a.Enc.Params())
		nn.Recycle(x, z3, p, g, gz3, dIn3)
	}
	return total / float64(len(batches))
}

// Project encodes one image into the latent space.
func (a *AAE) Project(x []float64) []float64 {
	out := a.Enc.Predict(fromVec(a.Cfg.DType, x))
	return rowCopy(out, 0)
}

// LatentDim returns the latent dimensionality.
func (a *AAE) LatentDim() int { return a.Cfg.Latent }

// ProjectBatch encodes many images in one forward pass.
func (a *AAE) ProjectBatch(rows [][]float64) [][]float64 {
	return projectBatch(a.Enc, a.Cfg.DType, rows)
}

// Reconstruct encodes then decodes one image.
func (a *AAE) Reconstruct(x []float64) []float64 {
	out := a.Dec.Predict(a.Enc.Predict(fromVec(a.Cfg.DType, x)))
	return rowCopy(out, 0)
}

// Decode maps a latent point back to image space.
func (a *AAE) Decode(z []float64) []float64 {
	out := a.Dec.Predict(fromVec(a.Cfg.DType, z))
	return rowCopy(out, 0)
}

var _ Projector = (*AAE)(nil)
