package gan

import (
	"odin/internal/nn"
	"odin/internal/tensor"
)

// LossReport carries the per-component losses of one DA-GAN training
// iteration (LZ, LI, LR of Equation 6).
type LossReport struct {
	ImageDisc  float64 // LI: image discriminator loss
	LatentDisc float64 // LZ: latent discriminator loss
	Recon      float64 // LR: reconstruction loss
}

// DAGAN is the paper's dual-adversarial GAN (§4.3): encoder E, decoder G,
// latent discriminator DZ and image discriminator DI. DZ smooths the latent
// space (no holes); DI forces informative encodings (no blur). The trained
// encoder is the distance-preserving projection used by the DETECTOR.
//
// Loss weights follow §4.4: λZ = λI = 1 (adversaries must be balanced) and
// λR = 0.5 (reconstruction de-prioritised so it cannot re-open latent
// holes).
type DAGAN struct {
	Cfg Config
	Enc *nn.Network
	Dec *nn.Network
	DZ  *nn.Network
	DI  *nn.Network

	// LambdaR is the reconstruction weight (default 0.5 per the paper).
	LambdaR float64

	optE  nn.Optimizer
	optG  nn.Optimizer
	optDZ nn.Optimizer
	optDI nn.Optimizer
	optAE nn.Optimizer
	rng   *tensor.RNG
}

// NewDAGAN builds a DA-GAN from the config.
func NewDAGAN(cfg Config) *DAGAN {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	rng := tensor.NewRNG(cfg.Seed)
	return &DAGAN{
		Cfg:     cfg,
		Enc:     buildEncoder(cfg, rng),
		Dec:     buildDecoder(cfg, rng),
		DZ:      buildDiscriminator("latent-disc", cfg.Latent, rng),
		DI:      buildDiscriminator("image-disc", cfg.InputDim, rng),
		LambdaR: 0.5,
		// The encoder's fool-DZ step runs at a reduced rate: enough to close
		// latent holes, not enough to collapse unseen content into the
		// prior (which would erase the drift signal the DETECTOR needs).
		optE:  nn.NewAdam(cfg.LR * 0.3),
		optG:  nn.NewAdam(cfg.LR),
		optDZ: nn.NewAdam(cfg.LR),
		optDI: nn.NewAdam(cfg.LR),
		optAE: nn.NewAdam(cfg.LR),
		rng:   rng,
	}
}

// Fit trains the DA-GAN for the given number of epochs and returns the
// final epoch's mean losses.
func (d *DAGAN) Fit(data [][]float64, epochs, batch int) LossReport {
	var last LossReport
	for e := 0; e < epochs; e++ {
		last = d.TrainEpoch(data, batch)
	}
	return last
}

// TrainEpoch runs one epoch of Algorithm 1 iterations over shuffled
// minibatches and returns the mean losses.
func (d *DAGAN) TrainEpoch(data [][]float64, batch int) LossReport {
	var sum LossReport
	batches := miniBatches(len(data), batch, d.rng)
	for _, idx := range batches {
		x := gather(d.Cfg.DType, data, idx)
		r := d.TrainIteration(x)
		nn.Recycle(x)
		sum.ImageDisc += r.ImageDisc
		sum.LatentDisc += r.LatentDisc
		sum.Recon += r.Recon
	}
	n := float64(len(batches))
	return LossReport{ImageDisc: sum.ImageDisc / n, LatentDisc: sum.LatentDisc / n, Recon: sum.Recon / n}
}

// TrainIteration performs one Algorithm 1 update on a batch x:
//
//	(lines 3–4)  sample z′ ~ N(0,1); x′ = G(z′); z = E(x)
//	(lines 5–7)  update DI on real x vs synthetic x′
//	(line 8)     update decoder G to fool DI
//	(lines 9–11) update DZ on z′ vs encoded z
//	(line 12)    update encoder E to fool DZ
//	(line 13)    update E and G on λR · reconstruction loss
func (d *DAGAN) TrainIteration(x *tensor.Mat) LossReport {
	var rep LossReport
	n := x.R

	// Lines 3–4: minibatches.
	zPrime := nn.GetMatRawOf(x.DType(), n, d.Cfg.Latent)
	d.rng.FillNormal(zPrime, 1)
	xPrime := d.Dec.Predict(zPrime)

	// Lines 5–7: image discriminator update.
	d.DI.ZeroGrad()
	pReal := d.DI.Forward(x, true)
	lReal, gReal := nn.BCEScalarTarget(pReal, 1)
	dReal := d.DI.Backward(gReal)
	pFake := d.DI.Forward(xPrime, true)
	lFake, gFake := nn.BCEScalarTarget(pFake, 0)
	dFake := d.DI.Backward(gFake)
	nn.ClipGrads(d.DI.Params(), 5)
	d.optDI.Step(d.DI.Params())
	rep.ImageDisc = lReal + lFake
	nn.Recycle(pReal, gReal, dReal, pFake, gFake, dFake)

	// Line 8: decoder fools DI.
	xg := d.Dec.Forward(zPrime, true)
	p := d.DI.Forward(xg, true)
	_, g := nn.BCEScalarTarget(p, 1)
	d.Dec.ZeroGrad()
	d.DI.ZeroGrad()
	gx := d.DI.Backward(g)
	dz := d.Dec.Backward(gx)
	nn.ClipGrads(d.Dec.Params(), 5)
	d.optG.Step(d.Dec.Params())
	nn.Recycle(xPrime, xg, p, g, gx, dz)

	// Lines 9–11: latent discriminator update.
	z := d.Enc.Predict(x)
	d.DZ.ZeroGrad()
	pzReal := d.DZ.Forward(zPrime, true)
	lzReal, gzReal := nn.BCEScalarTarget(pzReal, 1)
	dzReal := d.DZ.Backward(gzReal)
	pzFake := d.DZ.Forward(z, true)
	lzFake, gzFake := nn.BCEScalarTarget(pzFake, 0)
	dzFake := d.DZ.Backward(gzFake)
	nn.ClipGrads(d.DZ.Params(), 5)
	d.optDZ.Step(d.DZ.Params())
	rep.LatentDisc = lzReal + lzFake
	nn.Recycle(zPrime, z, pzReal, gzReal, dzReal, pzFake, gzFake, dzFake)

	// Line 12: encoder fools DZ.
	ze := d.Enc.Forward(x, true)
	pz := d.DZ.Forward(ze, true)
	_, gz := nn.BCEScalarTarget(pz, 1)
	d.Enc.ZeroGrad()
	d.DZ.ZeroGrad()
	gzi := d.DZ.Backward(gz)
	dxe := d.Enc.Backward(gzi)
	nn.ClipGrads(d.Enc.Params(), 5)
	d.optE.Step(d.Enc.Params())
	nn.Recycle(ze, pz, gz, gzi, dxe)

	// Line 13: reconstruction update of both E and G, weighted by λR.
	z2 := d.Enc.Forward(x, true)
	xr := d.Dec.Forward(z2, true)
	lRec, gRec := nn.BCE(xr, x)
	rep.Recon = lRec
	gRec.Scale(d.LambdaR)
	d.Enc.ZeroGrad()
	d.Dec.ZeroGrad()
	gz2 := d.Dec.Backward(gRec)
	dxr := d.Enc.Backward(gz2)
	params := append(d.Enc.Params(), d.Dec.Params()...)
	nn.ClipGrads(params, 5)
	d.optAE.Step(params)
	nn.Recycle(z2, xr, gRec, gz2, dxr)

	return rep
}

// Project encodes one image into the latent space. After training, this is
// the only DA-GAN component the DETECTOR uses (§4.5).
func (d *DAGAN) Project(x []float64) []float64 {
	out := d.Enc.Predict(fromVec(d.Cfg.DType, x))
	return rowCopy(out, 0)
}

// LatentDim returns the latent dimensionality.
func (d *DAGAN) LatentDim() int { return d.Cfg.Latent }

// ProjectBatch encodes many images in one forward pass.
func (d *DAGAN) ProjectBatch(rows [][]float64) [][]float64 {
	return projectBatch(d.Enc, d.Cfg.DType, rows)
}

// Reconstruct encodes then decodes one image.
func (d *DAGAN) Reconstruct(x []float64) []float64 {
	out := d.Dec.Predict(d.Enc.Predict(fromVec(d.Cfg.DType, x)))
	return rowCopy(out, 0)
}

// ReconError returns the mean squared reconstruction error of one image.
func (d *DAGAN) ReconError(x []float64) float64 {
	r := d.Reconstruct(x)
	var s float64
	for i, v := range r {
		dd := v - x[i]
		s += dd * dd
	}
	return s / float64(len(x))
}

// Decode maps a latent point back to image space.
func (d *DAGAN) Decode(z []float64) []float64 {
	out := d.Dec.Predict(fromVec(d.Cfg.DType, z))
	return rowCopy(out, 0)
}

// LatentRealism returns DZ(E(x)) — the latent discriminator's probability
// that x's encoding came from the smooth prior. §4.3: the latent
// discriminator "is adept at discriminating the inlier frames from the
// outlier frames", because outliers encode away from the prior.
func (d *DAGAN) LatentRealism(x []float64) float64 {
	z := d.Enc.Predict(fromVec(d.Cfg.DType, x))
	return d.DZ.Predict(z).At(0, 0)
}

// ImageRealism returns DI(G(E(x))) — the image discriminator's judgement
// of x's reconstruction. Outliers reconstruct poorly, so DI rejects them.
func (d *DAGAN) ImageRealism(x []float64) float64 {
	rec := d.Dec.Predict(d.Enc.Predict(fromVec(d.Cfg.DType, x)))
	return d.DI.Predict(rec).At(0, 0)
}

var _ Projector = (*DAGAN)(nil)
