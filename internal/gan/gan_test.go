package gan

import (
	"math"
	"testing"

	"odin/internal/synth"
	"odin/internal/tensor"
)

// digitRows renders digits and returns flattened pixel rows.
func digitRows(seed uint64, classes []int, n int) [][]float64 {
	ds := synth.DigitDataset(seed, classes, n)
	rows := make([][]float64, len(ds))
	for i, li := range ds {
		rows[i] = li.Image.Flat()
	}
	return rows
}

func smallConfig(dim int, seed uint64) Config {
	return Config{InputDim: dim, Latent: 12, Hidden: []int{96, 32}, LR: 0.002, Seed: seed}
}

func TestToBatchAndGather(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	m := ToBatch(rows)
	if m.R != 3 || m.C != 2 || m.At(2, 1) != 6 {
		t.Fatalf("ToBatch wrong: %+v", m)
	}
	g := gather(tensor.F64, rows, []int{2, 0})
	if g.At(0, 0) != 5 || g.At(1, 1) != 2 {
		t.Fatalf("gather wrong: %+v", g.V)
	}
	g32 := gather(tensor.F32, rows, []int{2, 0})
	if g32.DType() != tensor.F32 || g32.At(0, 0) != 5 || g32.At(1, 1) != 2 {
		t.Fatalf("float32 gather wrong: %+v", g32.V32)
	}
	empty := ToBatch(nil)
	if empty.R != 0 {
		t.Fatal("empty batch should have 0 rows")
	}
}

func TestMiniBatchesCoverAll(t *testing.T) {
	rng := tensor.NewRNG(3)
	batches := miniBatches(10, 3, rng)
	seen := map[int]bool{}
	for _, b := range batches {
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("minibatches covered %d of 10", len(seen))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{InputDim: 0, Latent: 4, LR: 0.1},
		{InputDim: 4, Latent: 0, LR: 0.1},
		{InputDim: 4, Latent: 4, LR: 0},
	}
	for i, cfg := range bad {
		if cfg.validate() == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
	if DefaultConfig(100).validate() != nil {
		t.Fatal("default config should be valid")
	}
}

func TestAutoencoderLearnsDigits(t *testing.T) {
	rows := digitRows(1, []int{0, 1, 2}, 60)
	ae := NewAutoencoder(smallConfig(len(rows[0]), 1))
	first := ae.TrainEpoch(rows, 32)
	last := ae.Fit(rows, 6, 32)
	if !(last < first) {
		t.Fatalf("reconstruction loss did not decrease: first=%v last=%v", first, last)
	}
	// Projection shape.
	z := ae.Project(rows[0])
	if len(z) != ae.LatentDim() {
		t.Fatalf("latent dim %d, want %d", len(z), ae.LatentDim())
	}
	// Reconstruction shape and range.
	r := ae.Reconstruct(rows[0])
	if len(r) != len(rows[0]) {
		t.Fatal("reconstruction shape")
	}
	for _, v := range r {
		if v < 0 || v > 1 {
			t.Fatalf("reconstruction out of [0,1]: %v", v)
		}
	}
}

// TestProjectionFailure reproduces the Figure 5 phenomenon: an AE trained
// on digits 0–2 reconstructs unseen digits 3–9 much worse — high
// reconstruction error indicates drift.
func TestProjectionFailure(t *testing.T) {
	train := digitRows(2, []int{0, 1, 2}, 100)
	ae := NewAutoencoder(smallConfig(len(train[0]), 2))
	ae.Fit(train, 25, 32)

	inlier := digitRows(3, []int{0, 1, 2}, 20)
	outlier := digitRows(4, []int{5, 6, 7}, 20)
	var inErr, outErr float64
	for _, x := range inlier {
		inErr += ae.ReconError(x)
	}
	for _, x := range outlier {
		outErr += ae.ReconError(x)
	}
	inErr /= float64(len(inlier))
	outErr /= float64(len(outlier))
	if outErr < inErr*1.2 {
		t.Fatalf("outlier recon error (%v) should exceed inlier (%v)", outErr, inErr)
	}
}

func TestAAETrainsAndRegularisesLatent(t *testing.T) {
	rows := digitRows(5, []int{0, 1}, 60)
	cfg := smallConfig(len(rows[0]), 5)
	aae := NewAAE(cfg)
	aae.Fit(rows, 8, 32)

	// The AAE latent distribution should sit near N(0,1): mean norm within
	// a loose band around 1. An unregularised AE has no such constraint.
	stats := ComputeLatentStats(aae, rows)
	if stats.MeanNorm < 0.3 || stats.MeanNorm > 3 {
		t.Fatalf("AAE latent norm %v too far from N(0,1)", stats.MeanNorm)
	}
	z := aae.Project(rows[0])
	if len(z) != cfg.Latent {
		t.Fatal("AAE latent dim")
	}
	r := aae.Reconstruct(rows[0])
	if len(r) != len(rows[0]) {
		t.Fatal("AAE reconstruction shape")
	}
}

func TestDAGANTrainIterationLosses(t *testing.T) {
	rows := digitRows(6, []int{0, 1}, 32)
	d := NewDAGAN(smallConfig(len(rows[0]), 6))
	rep := d.TrainIteration(ToBatch(rows))
	for name, v := range map[string]float64{
		"imageDisc":  rep.ImageDisc,
		"latentDisc": rep.LatentDisc,
		"recon":      rep.Recon,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("loss %s invalid: %v", name, v)
		}
	}
}

func TestDAGANLearnsReconstruction(t *testing.T) {
	rows := digitRows(7, []int{0, 1, 2}, 60)
	d := NewDAGAN(smallConfig(len(rows[0]), 7))
	first := d.TrainEpoch(rows, 32)
	last := d.Fit(rows, 8, 32)
	if !(last.Recon < first.Recon) {
		t.Fatalf("DA-GAN recon loss did not decrease: %v -> %v", first.Recon, last.Recon)
	}
}

// TestDAGANLatentSeparatesClasses is the core property the DETECTOR relies
// on: different concepts land in different latent regions.
func TestDAGANLatentSeparatesClasses(t *testing.T) {
	a := digitRows(8, []int{1}, 50)
	b := digitRows(9, []int{8}, 50)
	train := append(append([][]float64{}, a...), b...)
	d := NewDAGAN(smallConfig(len(a[0]), 8))
	d.Fit(train, 10, 32)

	za := d.ProjectBatch(a)
	zb := d.ProjectBatch(b)
	ca := tensor.Centroid(za)
	cb := tensor.Centroid(zb)
	inter := tensor.L2(ca, cb)
	var intra float64
	for _, z := range za {
		intra += tensor.L2(z, ca)
	}
	intra /= float64(len(za))
	if inter < intra*0.5 {
		t.Fatalf("latent classes not separated: inter=%v intra=%v", inter, intra)
	}
}

func TestDAGANProjectBatchMatchesProject(t *testing.T) {
	rows := digitRows(10, []int{0}, 4)
	d := NewDAGAN(smallConfig(len(rows[0]), 10))
	batch := d.ProjectBatch(rows)
	for i, x := range rows {
		single := d.Project(x)
		for j := range single {
			if math.Abs(single[j]-batch[i][j]) > 1e-12 {
				t.Fatal("batch and single projection disagree")
			}
		}
	}
}

func TestPlainGANTrains(t *testing.T) {
	rows := digitRows(11, []int{0}, 40)
	g := NewGAN(smallConfig(len(rows[0]), 11))
	loss := g.TrainEpoch(rows, 20)
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("GAN discriminator loss invalid: %v", loss)
	}
	img := g.Generate(tensor.NewRNG(1).NormVec(g.Cfg.Latent))
	if len(img) != len(rows[0]) {
		t.Fatal("generated image shape")
	}
	p := g.Discriminate(rows[0])
	if p < 0 || p > 1 {
		t.Fatalf("discriminator output %v not a probability", p)
	}
}

func TestCycleErrorAAEBelowAE(t *testing.T) {
	rows := digitRows(12, []int{0, 1, 2}, 120)
	cfg := smallConfig(len(rows[0]), 12)
	ae := NewAutoencoder(cfg)
	ae.Fit(rows, 20, 32)
	aae := NewAAE(cfg)
	aae.Fit(rows, 20, 32)

	ceAE := CycleError(ae, ae, 50, 99)
	ceAAE := CycleError(aae, aae, 50, 99)
	// The AAE's regularised latent space must re-encode sampled points
	// substantially better than the unregularised AE (Figure 2 holes).
	if ceAAE > ceAE {
		t.Fatalf("AAE cycle error (%v) should be below AE (%v)", ceAAE, ceAE)
	}
}

func TestMeanReconErrorEmptyData(t *testing.T) {
	rows := digitRows(13, []int{0}, 4)
	ae := NewAutoencoder(smallConfig(len(rows[0]), 13))
	if MeanReconError(ae, nil) != 0 {
		t.Fatal("empty data should give 0")
	}
	if MeanReconError(ae, rows) <= 0 {
		t.Fatal("untrained recon error should be positive")
	}
}

func TestComputeLatentStatsEmpty(t *testing.T) {
	rows := digitRows(14, []int{0}, 2)
	ae := NewAutoencoder(smallConfig(len(rows[0]), 14))
	s := ComputeLatentStats(ae, nil)
	if s.MeanNorm != 0 || s.Std != 0 {
		t.Fatal("empty stats should be zero")
	}
}
