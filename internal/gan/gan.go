// Package gan implements the generative models of the paper's §2.3 and
// §4.3–4.4: the standard autoencoder (AE), the adversarial autoencoder
// (AAE), a plain GAN, and the paper's contribution — the dual-adversarial
// GAN (DA-GAN) with its latent discriminator, image discriminator and the
// Algorithm 1 training procedure. The trained DA-GAN encoder is the
// distance-preserving projection used by the drift DETECTOR.
package gan

import (
	"fmt"

	"odin/internal/nn"
	"odin/internal/tensor"
)

// Projector maps a flattened image to its latent representation. The drift
// detector only depends on this interface, so AE / AAE / DA-GAN / PCA
// projections are interchangeable in experiments.
type Projector interface {
	Project(x []float64) []float64
	LatentDim() int
}

// BatchProjector is implemented by projectors that can encode many images
// in one network pass; callers with whole datasets in hand (detector
// calibration, cluster embedding) prefer it when available.
type BatchProjector interface {
	Projector
	ProjectBatch(rows [][]float64) [][]float64
}

// ProjectAll encodes every row, in one pass when proj supports batching.
func ProjectAll(proj Projector, rows [][]float64) [][]float64 {
	if bp, ok := proj.(BatchProjector); ok {
		return bp.ProjectBatch(rows)
	}
	out := make([][]float64, len(rows))
	for i, x := range rows {
		out[i] = proj.Project(x)
	}
	return out
}

// projBatch bounds the encoder batch so one-shot dataset projections do
// not park dataset-sized buffers in the workspace pool (which never
// shrinks) — the pooled working set stays at a few hundred rows.
const projBatch = 256

// projectBatch runs the shared encoder-batch path behind the ProjectBatch
// methods: stack a chunk in the model's compute dtype, one forward pass,
// unstack, recycle.
func projectBatch(enc *nn.Network, dt tensor.DType, rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	zs := make([][]float64, len(rows))
	for start := 0; start < len(rows); start += projBatch {
		end := start + projBatch
		if end > len(rows) {
			end = len(rows)
		}
		x := toBatchOf(dt, rows[start:end])
		out := enc.Predict(x)
		for i := 0; i < out.R; i++ {
			zs[start+i] = rowCopy(out, i)
		}
		nn.Recycle(x, out)
	}
	return zs
}

// rowCopy returns row i of out as a fresh float64 slice, whatever the
// storage dtype. (Row64 aliases float64 storage, so it must be copied —
// out is usually a pooled matrix about to be recycled.)
func rowCopy(out *tensor.Mat, i int) []float64 {
	z := make([]float64, out.C)
	if out.V32 == nil {
		copy(z, out.Row(i))
		return z
	}
	return out.Row64(i, z)
}

// Config describes the shared architecture of the generative models.
type Config struct {
	InputDim int   // flattened image dimensionality
	Latent   int   // latent space dimensionality
	Hidden   []int // encoder hidden layer widths (decoder mirrors them)
	LR       float64
	Seed     uint64

	// DType selects the compute backend the model's batches run on. The
	// zero value is float64 (the reference backend); tensor.F32 stores
	// activations in float32 and runs the vectorized kernels, while master
	// weights and gradient accumulation stay float64 (see nn.Param).
	DType tensor.DType
}

// DefaultConfig returns a compact architecture for inputDim-sized images,
// mirroring the paper's Dense-512 / Dense-128 / Latent-64 shape at reduced
// scale.
func DefaultConfig(inputDim int) Config {
	return Config{
		InputDim: inputDim,
		Latent:   32,
		Hidden:   []int{256, 64},
		LR:       0.001,
		Seed:     1,
	}
}

func (c Config) validate() error {
	if c.InputDim <= 0 || c.Latent <= 0 {
		return fmt.Errorf("gan: invalid config: input=%d latent=%d", c.InputDim, c.Latent)
	}
	if c.LR <= 0 {
		return fmt.Errorf("gan: invalid learning rate %v", c.LR)
	}
	return nil
}

// buildEncoder constructs InputDim → Hidden… → Latent with ReLU between
// layers and a linear latent output.
func buildEncoder(cfg Config, rng *tensor.RNG) *nn.Network {
	var layers []nn.Layer
	in := cfg.InputDim
	for _, h := range cfg.Hidden {
		layers = append(layers, nn.NewDense(in, h, rng), nn.NewReLU())
		in = h
	}
	layers = append(layers, nn.NewDense(in, cfg.Latent, rng))
	return nn.NewNetwork("encoder", layers...)
}

// buildDecoder mirrors the encoder: Latent → reversed Hidden… → InputDim
// with a sigmoid output so reconstructions live in [0,1].
func buildDecoder(cfg Config, rng *tensor.RNG) *nn.Network {
	var layers []nn.Layer
	in := cfg.Latent
	for i := len(cfg.Hidden) - 1; i >= 0; i-- {
		layers = append(layers, nn.NewDense(in, cfg.Hidden[i], rng), nn.NewReLU())
		in = cfg.Hidden[i]
	}
	layers = append(layers, nn.NewDense(in, cfg.InputDim, rng), nn.NewSigmoid())
	return nn.NewNetwork("decoder", layers...)
}

// buildDiscriminator constructs dim → h1 → h2 → 1 with LeakyReLU and a
// sigmoid output, the standard GAN discriminator shape. Width is capped so
// a high-dimensional image discriminator cannot dwarf (and destabilise)
// the generator it trains against.
func buildDiscriminator(name string, dim int, rng *tensor.RNG) *nn.Network {
	h1 := dim / 2
	if h1 < 16 {
		h1 = 16
	}
	if h1 > 256 {
		h1 = 256
	}
	h2 := h1 / 4
	if h2 < 8 {
		h2 = 8
	}
	return nn.NewNetwork(name,
		nn.NewDense(dim, h1, rng),
		nn.NewLeakyReLU(0.2),
		nn.NewDense(h1, h2, rng),
		nn.NewLeakyReLU(0.2),
		nn.NewDense(h2, 1, rng),
		nn.NewSigmoid(),
	)
}

// ToBatch stacks flattened images into a float64 batch matrix drawn from
// the shared nn workspace pool.
func ToBatch(rows [][]float64) *tensor.Mat { return toBatchOf(tensor.F64, rows) }

// toBatchOf stacks flattened images into a batch matrix of the requested
// dtype, drawn from the shared nn workspace pool.
func toBatchOf(dt tensor.DType, rows [][]float64) *tensor.Mat {
	if len(rows) == 0 {
		return tensor.New(0, 0)
	}
	m := nn.GetMatRawOf(dt, len(rows), len(rows[0]))
	for i, r := range rows {
		m.SetRow(i, r)
	}
	return m
}

// fromVec stacks one flattened image as a 1×n matrix in the model's dtype.
// The float64 path aliases x exactly as before (zero-copy); float32
// converts into a fresh matrix, which the cold single-image paths can
// afford.
func fromVec(dt tensor.DType, x []float64) *tensor.Mat {
	if dt != tensor.F32 {
		return tensor.FromVec(x)
	}
	m := tensor.NewOf(tensor.F32, 1, len(x))
	m.SetRow(0, x)
	return m
}

// miniBatches yields index slices of size batch covering a shuffled range.
func miniBatches(n, batch int, rng *tensor.RNG) [][]int {
	perm := rng.Perm(n)
	var out [][]int
	for i := 0; i < n; i += batch {
		j := i + batch
		if j > n {
			j = n
		}
		out = append(out, perm[i:j])
	}
	return out
}

// gather stacks the indexed rows into a workspace batch of the requested
// dtype; training loops recycle it once the step is done.
func gather(dt tensor.DType, data [][]float64, idx []int) *tensor.Mat {
	m := nn.GetMatRawOf(dt, len(idx), len(data[0]))
	for i, id := range idx {
		m.SetRow(i, data[id])
	}
	return m
}
