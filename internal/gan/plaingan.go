package gan

import (
	"odin/internal/nn"
	"odin/internal/tensor"
)

// GAN is the plain generative adversarial network of §2.3: generator G(z)
// and image discriminator DI(x). It synthesises images but does not learn
// an encoder, which is why (as the paper notes) it cannot serve as a drift
// projection on its own — it exists as a building block and comparison
// point for DA-GAN.
type GAN struct {
	Cfg Config
	Gen *nn.Network // decoder-shaped generator
	DI  *nn.Network

	optG nn.Optimizer
	optD nn.Optimizer
	rng  *tensor.RNG
}

// NewGAN builds a plain GAN from the config.
func NewGAN(cfg Config) *GAN {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	rng := tensor.NewRNG(cfg.Seed)
	return &GAN{
		Cfg:  cfg,
		Gen:  buildDecoder(cfg, rng),
		DI:   buildDiscriminator("image-disc", cfg.InputDim, rng),
		optG: nn.NewAdam(cfg.LR),
		optD: nn.NewAdam(cfg.LR),
		rng:  rng,
	}
}

// TrainEpoch runs one epoch of alternating discriminator / generator
// updates and returns the mean discriminator loss.
func (g *GAN) TrainEpoch(data [][]float64, batch int) float64 {
	var total float64
	batches := miniBatches(len(data), batch, g.rng)
	for _, idx := range batches {
		x := gather(g.Cfg.DType, data, idx)

		// Discriminator: real x vs generated G(z').
		zp := nn.GetMatRawOf(x.DType(), x.R, g.Cfg.Latent)
		g.rng.FillNormal(zp, 1)
		xFake := g.Gen.Predict(zp)
		g.DI.ZeroGrad()
		pReal := g.DI.Forward(x, true)
		lr, gReal := nn.BCEScalarTarget(pReal, 1)
		dReal := g.DI.Backward(gReal)
		pFake := g.DI.Forward(xFake, true)
		lf, gFake := nn.BCEScalarTarget(pFake, 0)
		dFake := g.DI.Backward(gFake)
		g.optD.Step(g.DI.Params())
		total += lr + lf
		nn.Recycle(zp, xFake, pReal, gReal, dReal, pFake, gFake, dFake)

		// Generator: fool the discriminator.
		zp2 := nn.GetMatRawOf(x.DType(), x.R, g.Cfg.Latent)
		g.rng.FillNormal(zp2, 1)
		xg := g.Gen.Forward(zp2, true)
		p := g.DI.Forward(xg, true)
		_, gg := nn.BCEScalarTarget(p, 1)
		g.Gen.ZeroGrad()
		g.DI.ZeroGrad()
		gx := g.DI.Backward(gg)
		dz := g.Gen.Backward(gx)
		g.optG.Step(g.Gen.Params())
		nn.Recycle(x, zp2, xg, p, gg, gx, dz)
	}
	return total / float64(len(batches))
}

// Generate synthesises one image from a latent sample.
func (g *GAN) Generate(z []float64) []float64 {
	out := g.Gen.Predict(fromVec(g.Cfg.DType, z))
	return rowCopy(out, 0)
}

// Discriminate returns DI's real-image probability for one image.
func (g *GAN) Discriminate(x []float64) float64 {
	return g.DI.Predict(fromVec(g.Cfg.DType, x)).At(0, 0)
}
