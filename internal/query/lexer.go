// Package query implements the aggregation-query layer of §6.6: a small
// SQL dialect (SELECT COUNT(detections) FROM bdd USING MODEL … WHERE
// class='car', with nested sub-queries and USING FILTER pre-screens), a
// recursive-descent parser, an executor over frame streams, and the
// lightweight class-presence filter networks of ODIN-PP / ODIN-FILTER.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind enumerates lexer token types.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokString
	TokNumber
	TokLParen
	TokRParen
	TokEquals
	TokStar
	TokComma
)

// Token is one lexical unit.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "COUNT": true, "FROM": true, "USING": true,
	"MODEL": true, "FILTER": true, "WHERE": true, "AND": true,
}

// Lex tokenises a query string. Keywords are case-insensitive; identifiers
// keep their case.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, Token{TokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, Token{TokRParen, ")", i})
			i++
		case c == '=':
			toks = append(toks, Token{TokEquals, "=", i})
			i++
		case c == '*':
			toks = append(toks, Token{TokStar, "*", i})
			i++
		case c == ',':
			toks = append(toks, Token{TokComma, ",", i})
			i++
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("query: unterminated string at %d", i)
			}
			toks = append(toks, Token{TokString, input[i+1 : j], i})
			i = j + 1
		case unicode.IsDigit(c):
			j := i
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, Token{TokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			// Identifiers may contain '-' after the first rune (stream
			// names like "cam-0"); the dialect has no arithmetic, so the
			// hyphen is unambiguous.
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_' || input[j] == '-') {
				j++
			}
			word := input[i:j]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, Token{TokKeyword, strings.ToUpper(word), i})
			} else {
				toks = append(toks, Token{TokIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, Token{TokEOF, "", len(input)})
	return toks, nil
}
