package query

import (
	"context"
	"math"
	"strings"
	"testing"

	"odin/internal/detect"
	"odin/internal/synth"
)

func TestLexBasic(t *testing.T) {
	toks, err := Lex("SELECT COUNT(detections) FROM bdd WHERE class='car'")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokKeyword, TokLParen, TokIdent, TokRParen,
		TokKeyword, TokIdent, TokKeyword, TokIdent, TokEquals, TokString, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count %d, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d kind %v, want %v (%q)", i, toks[i].Kind, k, toks[i].Text)
		}
	}
	if toks[10].Text != "car" {
		t.Fatalf("string token %q", toks[10].Text)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string should error")
	}
	if _, err := Lex("SELECT @"); err == nil {
		t.Fatal("bad character should error")
	}
}

func TestLexCaseInsensitiveKeywords(t *testing.T) {
	toks, err := Lex("select count(x) from t")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "SELECT" {
		t.Fatalf("lowercase keyword not recognised: %+v", toks[0])
	}
}

func TestParseFlatQuery(t *testing.T) {
	q, err := Parse("SELECT COUNT(detections) FROM bdd USING MODEL yolo_specialized WHERE class='car'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select != SelectCount || q.Table != "bdd" || q.UseModel != "yolo_specialized" {
		t.Fatalf("parsed query wrong: %+v", q)
	}
	if q.Where == nil || q.Where.Value != "car" {
		t.Fatalf("predicate wrong: %+v", q.Where)
	}
}

func TestParseNestedQueryWithFilter(t *testing.T) {
	sql := `SELECT COUNT(detections)
	FROM (SELECT detections
	      FROM (SELECT * FROM bdd USING FILTER car_filter WHERE class=1))
	USING MODEL yolo_specialized
	WHERE class='car'`
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if q.Sub == nil || q.Sub.Sub == nil {
		t.Fatal("nesting not parsed")
	}
	inner := q.Sub.Sub
	if inner.Table != "bdd" || inner.UseFilter != "car_filter" {
		t.Fatalf("inner query wrong: %+v", inner)
	}
	if q.UseModel != "yolo_specialized" || q.Where.Value != "car" {
		t.Fatalf("outer query wrong: %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM bdd",
		"SELECT COUNT detections FROM bdd",
		"SELECT COUNT(detections) USING MODEL m",
		"SELECT COUNT(detections) FROM (SELECT * FROM bdd",
		"SELECT COUNT(detections) FROM bdd USING TURBO x",
		"SELECT COUNT(detections) FROM bdd WHERE class",
		"SELECT COUNT(detections) FROM bdd extra garbage",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("expected parse error for %q", sql)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	sql := "SELECT COUNT(detections) FROM bdd USING MODEL m WHERE class='car'"
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse of %q failed: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip mismatch: %q vs %q", q.String(), q2.String())
	}
}

// oracleModel returns ground-truth boxes as perfect detections.
func oracleModel(f *synth.Frame) []detect.Detection {
	out := make([]detect.Detection, len(f.Boxes))
	for i, b := range f.Boxes {
		out[i] = detect.Detection{Box: b, Score: 0.99}
	}
	return out
}

func makeFrames(seed uint64, n int) []*synth.Frame {
	gen := synth.NewSceneGen(seed, synth.DefaultSceneConfig())
	return gen.Dataset(synth.DayData, n)
}

func TestEngineCountWithOracle(t *testing.T) {
	frames := makeFrames(1, 20)
	e := NewEngine()
	e.RegisterModel("oracle", oracleModel)
	res, err := e.Run(context.Background(), "SELECT COUNT(detections) FROM bdd USING MODEL oracle WHERE class='car'", frames)
	if err != nil {
		t.Fatal(err)
	}
	truth := TrueCounts(frames, synth.ClassCar)
	want := 0
	for _, c := range truth {
		want += c
	}
	if res.Count != want {
		t.Fatalf("count %d, want %d", res.Count, want)
	}
	if acc := QueryAccuracy(res.PerFrame, truth); math.Abs(acc-1) > 1e-9 {
		t.Fatalf("oracle accuracy %v, want 1", acc)
	}
	if res.ModelFrames != 20 || res.FramesFiltered != 0 {
		t.Fatalf("stage counts wrong: %+v", res)
	}
}

func TestEngineNumericClassPredicate(t *testing.T) {
	frames := makeFrames(2, 10)
	e := NewEngine()
	e.RegisterModel("oracle", oracleModel)
	byName, err := e.Run(context.Background(), "SELECT COUNT(detections) FROM bdd USING MODEL oracle WHERE class='truck'", frames)
	if err != nil {
		t.Fatal(err)
	}
	byID, err := e.Run(context.Background(), "SELECT COUNT(detections) FROM bdd USING MODEL oracle WHERE class=1", frames)
	if err != nil {
		t.Fatal(err)
	}
	if byName.Count != byID.Count {
		t.Fatalf("name (%d) and id (%d) predicates disagree", byName.Count, byID.Count)
	}
}

func TestEngineFilterStage(t *testing.T) {
	frames := makeFrames(3, 30)
	e := NewEngine()
	e.RegisterModel("oracle", oracleModel)
	// A filter that drops every other frame.
	i := 0
	e.RegisterFilter("alternating", func(f *synth.Frame) bool {
		i++
		return i%2 == 0
	})
	sql := `SELECT COUNT(detections) FROM (SELECT * FROM bdd USING FILTER alternating) USING MODEL oracle WHERE class='car'`
	res, err := e.Run(context.Background(), sql, frames)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesFiltered != 15 || res.ModelFrames != 15 {
		t.Fatalf("filter stage wrong: %+v", res)
	}
	if math.Abs(res.DataReduction()-0.5) > 1e-9 {
		t.Fatalf("reduction %v, want 0.5", res.DataReduction())
	}
}

func TestEngineUnknownNames(t *testing.T) {
	frames := makeFrames(4, 2)
	e := NewEngine()
	if _, err := e.Run(context.Background(), "SELECT COUNT(detections) FROM bdd USING MODEL nope WHERE class='car'", frames); err == nil {
		t.Fatal("unknown model should error")
	}
	e.RegisterModel("m", oracleModel)
	if _, err := e.Run(context.Background(), "SELECT COUNT(detections) FROM (SELECT * FROM bdd USING FILTER nope) USING MODEL m", frames); err == nil {
		t.Fatal("unknown filter should error")
	}
	if _, err := e.Run(context.Background(), "SELECT COUNT(detections) FROM bdd USING MODEL m WHERE color='red'", frames); err == nil {
		t.Fatal("unsupported predicate field should error")
	}
	if _, err := e.Run(context.Background(), "SELECT COUNT(detections) FROM bdd USING MODEL m WHERE class='dragon'", frames); err == nil {
		t.Fatal("unknown class should error")
	}
}

func TestEngineScoreThreshold(t *testing.T) {
	frames := makeFrames(5, 5)
	lowScore := func(f *synth.Frame) []detect.Detection {
		out := oracleModel(f)
		for i := range out {
			out[i].Score = 0.1
		}
		return out
	}
	e := NewEngine()
	e.SetMinScore(0.3)
	e.RegisterModel("weak", lowScore)
	res, err := e.Run(context.Background(), "SELECT COUNT(detections) FROM bdd USING MODEL weak WHERE class='car'", frames)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("below-threshold detections must not count: %d", res.Count)
	}
}

func TestQueryAccuracyMetric(t *testing.T) {
	if acc := QueryAccuracy([]int{3, 0, 2}, []int{3, 0, 4}); math.Abs(acc-(1+1+0.5)/3) > 1e-9 {
		t.Fatalf("accuracy %v", acc)
	}
	if QueryAccuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	QueryAccuracy([]int{1}, []int{1, 2})
}

func TestTrueCounts(t *testing.T) {
	frames := makeFrames(6, 10)
	counts := TrueCounts(frames, synth.ClassCar)
	for i, f := range frames {
		want := 0
		for _, b := range f.Boxes {
			if b.Class == synth.ClassCar {
				want++
			}
		}
		if counts[i] != want {
			t.Fatalf("frame %d count %d, want %d", i, counts[i], want)
		}
	}
}

func TestFilterNetLearnsPresence(t *testing.T) {
	gen := synth.NewSceneGen(7, synth.DefaultSceneConfig())
	// Trucks appear in ~35% of frames — a learnable presence signal.
	train := gen.Dataset(synth.DayData, 250)
	test := gen.Dataset(synth.DayData, 80)

	f := NewFilterNet(synth.ClassTruck, 27, 48, 1)
	first := f.Fit(train, 1, 16)
	last := f.Fit(train, 10, 16)
	if last >= first {
		t.Fatalf("filter loss did not decrease: %v -> %v", first, last)
	}
	acc := f.Accuracy(test)
	if acc < 0.6 {
		t.Fatalf("filter accuracy too low: %v", acc)
	}
}

func TestFilterNetFuncAdapters(t *testing.T) {
	gen := synth.NewSceneGen(8, synth.DefaultSceneConfig())
	f := NewFilterNet(synth.ClassCar, 27, 48, 2)
	fr := gen.GenerateSubset(synth.DayData)
	fn := f.Func()
	if fn(fr) != f.Pass(fr) {
		t.Fatal("Func adapter disagrees with Pass")
	}
}

func TestParseWhitespaceRobust(t *testing.T) {
	sql := "  SELECT\n\tCOUNT( detections )\nFROM   bdd  USING  MODEL  m  WHERE  class = 'car'  "
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "COUNT(detections)") {
		t.Fatalf("parse lost structure: %s", q.String())
	}
}

// TestBatchModelMatchesPerFrame pins the batch dispatch path: a batch
// binding must see exactly the live (unfiltered) frames, its results must
// scatter back to input positions, and it must take precedence over a
// per-frame binding of the same name.
func TestBatchModelMatchesPerFrame(t *testing.T) {
	frames := makeFrames(3, 24)
	perFrame := NewEngine()
	perFrame.RegisterModel("oracle", oracleModel)
	batch := NewEngine()
	// Shadowed per-frame binding returns garbage; batch must win.
	batch.RegisterModel("oracle", func(f *synth.Frame) []detect.Detection { return nil })
	var sawBatch int
	batch.RegisterBatchModel("oracle", func(fs []*synth.Frame) [][]detect.Detection {
		sawBatch = len(fs)
		out := make([][]detect.Detection, len(fs))
		for i, f := range fs {
			out[i] = oracleModel(f)
		}
		return out
	})
	batch.RegisterFilter("alternating", func(f *synth.Frame) bool { return true })
	perFrame.RegisterFilter("alternating", func(f *synth.Frame) bool { return true })

	sql := "SELECT COUNT(detections) FROM bdd USING MODEL oracle WHERE class='car'"
	want, err := perFrame.Run(context.Background(), sql, frames)
	if err != nil {
		t.Fatal(err)
	}
	got, err := batch.Run(context.Background(), sql, frames)
	if err != nil {
		t.Fatal(err)
	}
	if sawBatch != len(frames) {
		t.Fatalf("batch model saw %d frames, want %d", sawBatch, len(frames))
	}
	if got.Count != want.Count || got.ModelFrames != want.ModelFrames {
		t.Fatalf("batch result %+v, want %+v", got, want)
	}
	for i := range want.PerFrame {
		if got.PerFrame[i] != want.PerFrame[i] {
			t.Fatalf("per-frame count %d differs: %d vs %d", i, got.PerFrame[i], want.PerFrame[i])
		}
	}
}

// TestBatchModelSeesOnlyLiveFrames: filtered-out frames must not reach the
// batch model, and their slots must report zero.
func TestBatchModelSeesOnlyLiveFrames(t *testing.T) {
	frames := makeFrames(4, 10)
	e := NewEngine()
	i := -1
	e.RegisterFilter("odd", func(f *synth.Frame) bool { i++; return i%2 == 1 })
	e.RegisterBatchModel("oracle", func(fs []*synth.Frame) [][]detect.Detection {
		if len(fs) != 5 {
			t.Fatalf("batch model saw %d frames, want 5", len(fs))
		}
		out := make([][]detect.Detection, len(fs))
		for k, f := range fs {
			out[k] = oracleModel(f)
		}
		return out
	})
	sql := "SELECT COUNT(detections) FROM (SELECT * FROM bdd USING FILTER odd) USING MODEL oracle WHERE class='car'"
	res, err := e.Run(context.Background(), sql, frames)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelFrames != 5 || res.FramesFiltered != 5 {
		t.Fatalf("model frames %d filtered %d, want 5/5", res.ModelFrames, res.FramesFiltered)
	}
	for k := 0; k < len(frames); k += 2 {
		if res.PerFrame[k] != 0 {
			t.Fatalf("filtered frame %d reported %d detections", k, res.PerFrame[k])
		}
	}
}

// TestRunCancelledContext: a cancelled context aborts execution with the
// context's error, for both per-frame and batch bindings.
func TestRunCancelledContext(t *testing.T) {
	frames := makeFrames(5, 8)
	e := NewEngine()
	e.RegisterModel("oracle", oracleModel)
	e.RegisterBatchModel("batch", func(fs []*synth.Frame) [][]detect.Detection {
		t.Fatal("batch model must not run under a cancelled context")
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sql := range []string{
		"SELECT COUNT(detections) FROM bdd USING MODEL oracle WHERE class='car'",
		"SELECT COUNT(detections) FROM bdd USING MODEL batch WHERE class='car'",
	} {
		if _, err := e.Run(ctx, sql, frames); err != context.Canceled {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	}
}
