package query

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"odin/internal/detect"
	"odin/internal/synth"
)

// Typed prepare-time errors. Prepare validates every name a query
// references against the engine registries, so an unknown model, filter or
// class surfaces before any frame is processed (wrapped with the offending
// name; test with errors.Is).
var (
	// ErrUnknownModel: a USING MODEL clause names an unregistered model.
	ErrUnknownModel = errors.New("query: unknown model")
	// ErrUnknownFilter: a USING FILTER clause names an unregistered filter.
	ErrUnknownFilter = errors.New("query: unknown filter")
	// ErrUnknownClass: a WHERE class=… predicate names an unknown class.
	ErrUnknownClass = errors.New("query: unknown class")
	// ErrBadPredicate: a WHERE predicate uses an unsupported field.
	ErrBadPredicate = errors.New("query: unsupported predicate field")
	// ErrMultipleModels: more than one query level carries USING MODEL.
	ErrMultipleModels = errors.New("query: multiple USING MODEL clauses")
)

// PrepareOption adjusts plan construction.
type PrepareOption func(*prepConfig)

type prepConfig struct {
	minScore float64
}

// WithMinScore overrides the engine's detection-confidence floor for this
// plan only. The value is frozen into the plan, so concurrent executions
// never observe a mutated threshold.
func WithMinScore(s float64) PrepareOption {
	return func(c *prepConfig) { c.minScore = s }
}

// planFilter is one bound filter stage.
type planFilter struct {
	name string
	fn   FilterFunc
}

// Plan is a compiled, immutable execution plan: the nested AST flattened
// into an ordered filter→model pipeline with every reference resolved and
// every option frozen at prepare time. A Plan is safe for concurrent and
// repeated Execute calls — re-execution performs no parse or plan work.
type Plan struct {
	sel      SelectKind
	source   string // innermost table name (diagnostics only)
	filters  []planFilter
	model    string
	batch    BatchModelFunc
	single   ModelFunc
	counter  CountModelFunc // COUNT pushdown: non-nil only for COUNT plans
	class    int            // -1: no class predicate
	classVal string         // predicate spelling, for Explain
	minScore float64
}

// Prepare compiles a parsed query into an executable plan. Sub-queries are
// flattened innermost-first into one filter chain; cheap filters are
// ordered ahead of the (single) expensive model stage regardless of
// nesting shape; model, filter and class references are resolved against
// the engine registries now, returning typed errors instead of failing
// mid-execution. Predicates on levels other than the model's are validated
// but inert, matching the executor this planner replaced. The bindings and
// the MinScore threshold are snapshots: later registrations or threshold
// changes do not affect an existing plan.
func (e *Engine) Prepare(q *Query, opts ...PrepareOption) (*Plan, error) {
	cfg := prepConfig{minScore: e.MinScore()}
	for _, o := range opts {
		o(&cfg)
	}
	p := &Plan{sel: q.Select, class: -1, minScore: cfg.minScore}

	// Collect levels outermost→innermost, then walk them in reverse so the
	// innermost filter applies first (it is closest to the scan).
	var levels []*Query
	for cur := q; cur != nil; cur = cur.Sub {
		levels = append(levels, cur)
	}
	p.source = levels[len(levels)-1].Table

	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		if lv.UseFilter != "" {
			fn, ok := e.lookupFilter(lv.UseFilter)
			if !ok {
				return nil, fmt.Errorf("%w %q", ErrUnknownFilter, lv.UseFilter)
			}
			p.filters = append(p.filters, planFilter{name: lv.UseFilter, fn: fn})
		}
		if lv.Where != nil {
			if !strings.EqualFold(lv.Where.Field, "class") {
				return nil, fmt.Errorf("%w %q", ErrBadPredicate, lv.Where.Field)
			}
			if resolveClass(lv.Where.Value) < 0 {
				return nil, fmt.Errorf("%w %q", ErrUnknownClass, lv.Where.Value)
			}
		}
		if lv.UseModel == "" {
			continue
		}
		if p.model != "" {
			return nil, fmt.Errorf("%w (%q and %q)", ErrMultipleModels, p.model, lv.UseModel)
		}
		p.model = lv.UseModel
		bfn, batched, fn, single, cfn := e.lookupModel(lv.UseModel)
		if !batched && !single {
			return nil, fmt.Errorf("%w %q", ErrUnknownModel, lv.UseModel)
		}
		p.batch, p.single = bfn, fn
		// COUNT projection pushdown: a COUNT-only plan needs no boxes, so
		// a count-capable binding replaces the detection stage entirely.
		if p.sel == SelectCount && cfn != nil {
			p.counter = cfn
		}
		if lv.Where != nil {
			p.class = resolveClass(lv.Where.Value)
			p.classVal = lv.Where.Value
		}
	}
	return p, nil
}

// ModelName returns the plan's bound model name ("" for filter-only plans).
func (p *Plan) ModelName() string { return p.model }

// Batched reports whether the plan's model binding is batch-capable.
func (p *Plan) Batched() bool { return p.batch != nil }

// MinScore returns the detection-confidence floor frozen into the plan.
func (p *Plan) MinScore() float64 { return p.minScore }

// Explain renders the plan as a one-line stage pipeline, e.g.
//
//	scan(stream) -> filter(truck_filter) -> model(odin, batched) -> where(class='car') -> min_score(0.30) -> count
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan(%s)", p.source)
	for _, f := range p.filters {
		fmt.Fprintf(&b, " -> filter(%s)", f.name)
	}
	if p.model != "" {
		mode := "per-frame"
		if p.batch != nil {
			mode = "batched"
		}
		if p.counter != nil {
			mode = "count-pushdown"
		}
		fmt.Fprintf(&b, " -> model(%s, %s)", p.model, mode)
		if p.class >= 0 {
			fmt.Fprintf(&b, " -> where(class='%s')", p.classVal)
		}
		fmt.Fprintf(&b, " -> min_score(%.2f)", p.minScore)
	}
	switch {
	case p.model == "":
		b.WriteString(" -> collect")
	case p.sel == SelectCount:
		b.WriteString(" -> count")
	case p.sel == SelectDetections:
		b.WriteString(" -> detections")
	default:
		b.WriteString(" -> frames")
	}
	return b.String()
}

// Execute runs the plan over frames: filters first (each drop is counted),
// then the model over the surviving frames (one batch call when the
// binding is batch-capable), then the class predicate and score floor. The
// context is consulted before each model invocation; a cancelled run
// returns ctx.Err(). Execute performs no parse or plan work and is safe
// for concurrent use.
func (p *Plan) Execute(ctx context.Context, frames []*synth.Frame) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{FramesScanned: len(frames)}
	live := make([]bool, len(frames))
	for i := range live {
		live[i] = true
	}
	p.runFilters(frames, live, res)
	if p.model == "" {
		return res, nil
	}

	// Gather survivors so batch models see one contiguous window; liveIdx
	// maps batch positions back to input positions.
	liveFrames := make([]*synth.Frame, 0, len(frames))
	liveIdx := make([]int, 0, len(frames))
	for i, f := range frames {
		if live[i] {
			liveFrames = append(liveFrames, f)
			liveIdx = append(liveIdx, i)
		}
	}
	// COUNT pushdown: the count binding applies the score floor and class
	// predicate inside the model's execute stage, so no detection boxes are
	// materialised anywhere on the path.
	if p.counter != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		counts := p.counter(liveFrames, p.class, p.minScore)
		if len(counts) != len(liveFrames) {
			return nil, fmt.Errorf("query: count model %q returned %d counts for %d frames",
				p.model, len(counts), len(liveFrames))
		}
		res.PerFrame = make([]int, len(frames))
		for k, i := range liveIdx {
			res.ModelFrames++
			res.PerFrame[i] = counts[k]
			res.Count += counts[k]
		}
		return res, nil
	}

	var dets [][]detect.Detection
	if p.batch != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dets = p.batch(liveFrames)
		if len(dets) != len(liveFrames) {
			return nil, fmt.Errorf("query: batch model %q returned %d results for %d frames",
				p.model, len(dets), len(liveFrames))
		}
	} else {
		dets = make([][]detect.Detection, len(liveFrames))
		for k, f := range liveFrames {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			dets[k] = p.single(f)
		}
	}

	res.PerFrame = make([]int, len(frames))
	if p.sel != SelectCount {
		res.Detections = make([][]detect.Detection, len(frames))
	}
	for k, i := range liveIdx {
		res.ModelFrames++
		p.reduceInto(res, i, dets[k])
	}
	return res, nil
}

// ExecuteOver applies the plan's filter, predicate and projection stages
// to detections already produced for frames — the shared-pipeline path of
// continuous queries, where the stream session has run the drift pipeline
// over the window once and every subscription reduces the same results.
// Filters act as counting filters here: a dropped frame reports zero and
// its detections are ignored, but no model work is saved (the shared
// pipeline must observe every frame for drift detection).
func (p *Plan) ExecuteOver(frames []*synth.Frame, dets [][]detect.Detection) *Result {
	res := &Result{FramesScanned: len(frames)}
	live := make([]bool, len(frames))
	for i := range live {
		live[i] = true
	}
	p.runFilters(frames, live, res)
	res.PerFrame = make([]int, len(frames))
	if p.sel != SelectCount {
		res.Detections = make([][]detect.Detection, len(frames))
	}
	for i := range frames {
		if !live[i] {
			continue
		}
		res.ModelFrames++
		p.reduceInto(res, i, dets[i])
	}
	return res
}

// runFilters applies the plan's filter chain in order, clearing live slots
// and counting drops. A frame dropped by one filter is not offered to the
// next.
func (p *Plan) runFilters(frames []*synth.Frame, live []bool, res *Result) {
	for _, pf := range p.filters {
		for i, f := range frames {
			if live[i] && !pf.fn(f) {
				live[i] = false
				res.FramesFiltered++
			}
		}
	}
}

// reduceInto applies the score floor and class predicate to one frame's
// detections and accumulates the projection. COUNT plans count without
// materialising the kept detections.
func (p *Plan) reduceInto(res *Result, i int, dets []detect.Detection) {
	if p.sel == SelectCount {
		n := 0
		for _, d := range dets {
			if p.keeps(d) {
				n++
			}
		}
		res.PerFrame[i] = n
		res.Count += n
		return
	}
	var kept []detect.Detection
	for _, d := range dets {
		if p.keeps(d) {
			kept = append(kept, d)
		}
	}
	res.Detections[i] = kept
	res.PerFrame[i] = len(kept)
	res.Count += len(kept)
}

// keeps reports whether a detection survives the plan's score floor and
// class predicate.
func (p *Plan) keeps(d detect.Detection) bool {
	if d.Score < p.minScore {
		return false
	}
	return p.class < 0 || d.Box.Class == p.class
}
