package query

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"odin/internal/detect"
	"odin/internal/synth"
)

// TestParseErrorPaths is the table-driven malformed-SQL sweep: every case
// must fail at Parse (not at prepare or mid-execution).
func TestParseErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		sql  string
	}{
		{"empty input", ""},
		{"empty select", "SELECT FROM bdd"},
		{"missing from", "SELECT COUNT(detections) USING MODEL m"},
		{"unterminated sub-query", "SELECT COUNT(detections) FROM (SELECT * FROM bdd"},
		{"unterminated sub-query nested", "SELECT * FROM (SELECT * FROM (SELECT * FROM bdd)"},
		{"unknown keyword after using", "SELECT COUNT(detections) FROM bdd USING TURBO x"},
		{"count without parens", "SELECT COUNT detections FROM bdd"},
		{"count unclosed", "SELECT COUNT(detections FROM bdd"},
		{"predicate without value", "SELECT COUNT(detections) FROM bdd WHERE class"},
		{"predicate without equals", "SELECT COUNT(detections) FROM bdd WHERE class 'car'"},
		{"trailing garbage", "SELECT COUNT(detections) FROM bdd extra garbage"},
		{"unterminated string", "SELECT COUNT(detections) FROM bdd WHERE class='car"},
		{"bad character", "SELECT @ FROM bdd"},
		{"missing table", "SELECT * FROM USING MODEL m"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.sql); err == nil {
				t.Fatalf("expected parse error for %q", c.sql)
			}
		})
	}
}

// TestPrepareValidation pins the typed prepare-time errors: unknown
// names and bad predicates fail at Prepare with errors.Is-testable
// sentinels, before any frame is touched.
func TestPrepareValidation(t *testing.T) {
	e := NewEngine()
	e.RegisterModel("m", oracleModel)
	e.RegisterFilter("f", func(*synth.Frame) bool { return true })

	cases := []struct {
		name string
		sql  string
		want error
	}{
		{"unknown model", "SELECT COUNT(detections) FROM bdd USING MODEL nope", ErrUnknownModel},
		{"unknown filter", "SELECT * FROM bdd USING FILTER nope", ErrUnknownFilter},
		{"unknown filter nested", "SELECT COUNT(detections) FROM (SELECT * FROM bdd USING FILTER nope) USING MODEL m", ErrUnknownFilter},
		{"unknown class name", "SELECT COUNT(detections) FROM bdd USING MODEL m WHERE class='dragon'", ErrUnknownClass},
		{"class id out of range", "SELECT COUNT(detections) FROM bdd USING MODEL m WHERE class=99", ErrUnknownClass},
		{"bad predicate field", "SELECT COUNT(detections) FROM bdd USING MODEL m WHERE color='red'", ErrBadPredicate},
		{"bad predicate inner level", "SELECT COUNT(detections) FROM (SELECT * FROM bdd WHERE color='red') USING MODEL m", ErrBadPredicate},
		{"multiple models", "SELECT COUNT(detections) FROM (SELECT detections FROM bdd USING MODEL m) USING MODEL m", ErrMultipleModels},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q, err := Parse(c.sql)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := e.Prepare(q); !errors.Is(err, c.want) {
				t.Fatalf("Prepare error %v, want %v", err, c.want)
			}
		})
	}

	// The sentinel carries the offending name.
	q, _ := Parse("SELECT COUNT(detections) FROM bdd USING MODEL ghost")
	if _, err := e.Prepare(q); err == nil || !strings.Contains(err.Error(), `"ghost"`) {
		t.Fatalf("error should name the missing model: %v", err)
	}
}

// TestExplainGolden pins the Explain rendering of representative plans.
func TestExplainGolden(t *testing.T) {
	e := NewEngine()
	e.RegisterModel("oracle", oracleModel)
	e.RegisterBatchModel("batched_oracle", func(fs []*synth.Frame) [][]detect.Detection {
		out := make([][]detect.Detection, len(fs))
		for i, f := range fs {
			out[i] = oracleModel(f)
		}
		return out
	})
	e.RegisterFilter("car_filter", func(*synth.Frame) bool { return true })
	e.RegisterFilter("day_filter", func(*synth.Frame) bool { return true })

	cases := []struct {
		sql  string
		opts []PrepareOption
		want string
	}{
		{
			sql:  "SELECT COUNT(detections) FROM stream USING MODEL oracle WHERE class='car'",
			want: "scan(stream) -> model(oracle, per-frame) -> where(class='car') -> min_score(0.30) -> count",
		},
		{
			sql: "SELECT COUNT(detections) FROM (SELECT * FROM (SELECT * FROM bdd USING FILTER day_filter) USING FILTER car_filter) USING MODEL batched_oracle WHERE class='car'",
			want: "scan(bdd) -> filter(day_filter) -> filter(car_filter) " +
				"-> model(batched_oracle, batched) -> where(class='car') -> min_score(0.30) -> count",
		},
		{
			sql:  "SELECT detections FROM stream USING MODEL oracle",
			opts: []PrepareOption{WithMinScore(0.5)},
			want: "scan(stream) -> model(oracle, per-frame) -> min_score(0.50) -> detections",
		},
		{
			sql:  "SELECT * FROM stream USING FILTER car_filter",
			want: "scan(stream) -> filter(car_filter) -> collect",
		},
	}
	for _, c := range cases {
		q, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("parse %q: %v", c.sql, err)
		}
		p, err := e.Prepare(q, c.opts...)
		if err != nil {
			t.Fatalf("prepare %q: %v", c.sql, err)
		}
		if got := p.Explain(); got != c.want {
			t.Errorf("Explain mismatch for %q:\n got  %s\n want %s", c.sql, got, c.want)
		}
	}
}

// TestPlannerFlattensFilterBeforeModel: the planner orders cheap filters
// ahead of the expensive model even when the SQL nests the model inside
// the filter level, so filtered frames never reach the model.
func TestPlannerFlattensFilterBeforeModel(t *testing.T) {
	frames := makeFrames(21, 12)
	e := NewEngine()
	seen := 0
	e.RegisterModel("counting", func(f *synth.Frame) []detect.Detection {
		seen++
		return oracleModel(f)
	})
	i := -1
	e.RegisterFilter("odd", func(*synth.Frame) bool { i++; return i%2 == 1 })
	sql := "SELECT COUNT(detections) FROM (SELECT detections FROM bdd USING MODEL counting WHERE class='car') USING FILTER odd"
	res, err := e.Run(context.Background(), sql, frames)
	if err != nil {
		t.Fatal(err)
	}
	if seen != 6 {
		t.Fatalf("model ran on %d frames; planner should filter first (want 6)", seen)
	}
	if res.FramesFiltered != 6 || res.ModelFrames != 6 {
		t.Fatalf("stage counts wrong: %+v", res)
	}
}

// TestPlanMinScoreOption: the score floor is frozen per plan; plans with
// different thresholds over the same engine disagree exactly as expected,
// and mutating the engine default after Prepare changes nothing.
func TestPlanMinScoreOption(t *testing.T) {
	frames := makeFrames(22, 6)
	e := NewEngine()
	e.RegisterModel("half", func(f *synth.Frame) []detect.Detection {
		out := oracleModel(f)
		for i := range out {
			out[i].Score = 0.5
		}
		return out
	})
	q, err := Parse("SELECT COUNT(detections) FROM bdd USING MODEL half WHERE class='car'")
	if err != nil {
		t.Fatal(err)
	}
	loose, err := e.Prepare(q, WithMinScore(0.3))
	if err != nil {
		t.Fatal(err)
	}
	strict, err := e.Prepare(q, WithMinScore(0.9))
	if err != nil {
		t.Fatal(err)
	}
	e.SetMinScore(0.99) // must not retro-affect prepared plans

	lres, err := loose.Execute(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := strict.Execute(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Count == 0 {
		t.Fatal("loose plan should count 0.5-score detections")
	}
	if sres.Count != 0 {
		t.Fatalf("strict plan counted %d detections above 0.9", sres.Count)
	}
	if loose.MinScore() != 0.3 || strict.MinScore() != 0.9 {
		t.Fatal("plans should freeze their thresholds")
	}
}

// TestMinScoreConcurrentAccess: SetMinScore races against concurrent
// prepare+execute without tripping the race detector (the former bare
// field was a data race).
func TestMinScoreConcurrentAccess(t *testing.T) {
	frames := makeFrames(23, 4)
	e := NewEngine()
	e.RegisterModel("oracle", oracleModel)
	q, err := Parse("SELECT COUNT(detections) FROM bdd USING MODEL oracle WHERE class='car'")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if w%2 == 0 {
					e.SetMinScore(float64(i%10) / 10)
					continue
				}
				p, err := e.Prepare(q)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := p.Execute(context.Background(), frames); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPrepareExecuteMatchesRun: the prepared path and the one-shot Run
// path produce identical results.
func TestPrepareExecuteMatchesRun(t *testing.T) {
	frames := makeFrames(24, 16)
	e := NewEngine()
	e.RegisterModel("oracle", oracleModel)
	i := -1
	e.RegisterFilter("odd", func(*synth.Frame) bool { i++; return i%2 == 1 })
	sql := "SELECT COUNT(detections) FROM (SELECT * FROM bdd USING FILTER odd) USING MODEL oracle WHERE class='car'"

	i = -1
	want, err := e.Run(context.Background(), sql, frames)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	i = -1
	got, err := p.Execute(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count || got.ModelFrames != want.ModelFrames || got.FramesFiltered != want.FramesFiltered {
		t.Fatalf("prepared result %+v, want %+v", got, want)
	}
	for i := range want.PerFrame {
		if got.PerFrame[i] != want.PerFrame[i] {
			t.Fatalf("per-frame %d: %d vs %d", i, got.PerFrame[i], want.PerFrame[i])
		}
	}
}

// TestExecuteOverMatchesExecute: the shared-detection reduction path
// (continuous queries) agrees with Execute when handed the detections the
// model would have produced.
func TestExecuteOverMatchesExecute(t *testing.T) {
	frames := makeFrames(25, 10)
	e := NewEngine()
	e.RegisterModel("oracle", oracleModel)
	q, err := Parse("SELECT COUNT(detections) FROM bdd USING MODEL oracle WHERE class='car'")
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Execute(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	dets := make([][]detect.Detection, len(frames))
	for i, f := range frames {
		dets[i] = oracleModel(f)
	}
	got := p.ExecuteOver(frames, dets)
	if got.Count != want.Count || got.ModelFrames != want.ModelFrames {
		t.Fatalf("ExecuteOver %+v, want %+v", got, want)
	}
	for i := range want.PerFrame {
		if got.PerFrame[i] != want.PerFrame[i] {
			t.Fatalf("per-frame %d: %d vs %d", i, got.PerFrame[i], want.PerFrame[i])
		}
	}
}

// countingOracle returns the count binding equivalent to oracleModel.
func countingOracle(calls *int) CountModelFunc {
	return func(frames []*synth.Frame, class int, minScore float64) []int {
		if calls != nil {
			*calls++
		}
		out := make([]int, len(frames))
		for i, f := range frames {
			for _, d := range oracleModel(f) {
				if d.Score >= minScore && (class < 0 || d.Box.Class == class) {
					out[i]++
				}
			}
		}
		return out
	}
}

// TestCountPushdown: a COUNT plan compiled against a count-capable model
// executes the count binding (no detection stage) and matches the full
// path's result exactly — filters still run first, and the score floor
// and class predicate are pushed into the binding.
func TestCountPushdown(t *testing.T) {
	frames := makeFrames(27, 14)
	sql := "SELECT COUNT(detections) FROM (SELECT * FROM bdd USING FILTER odd) USING MODEL oracle WHERE class='car'"

	mkEngine := func(pushdown bool, calls *int) *Engine {
		e := NewEngine()
		e.RegisterModel("oracle", oracleModel)
		if pushdown {
			e.RegisterCountModel("oracle", countingOracle(calls))
		}
		i := -1
		e.RegisterFilter("odd", func(*synth.Frame) bool { i++; return i%2 == 1 })
		return e
	}

	want, err := mkEngine(false, nil).Run(context.Background(), sql, frames)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	e := mkEngine(true, &calls)
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := "scan(bdd) -> filter(odd) -> model(oracle, count-pushdown) -> where(class='car') -> min_score(0.30) -> count"; p.Explain() != want {
		t.Fatalf("Explain:\n got  %s\n want %s", p.Explain(), want)
	}
	got, err := p.Execute(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("count binding ran %d times, want 1", calls)
	}
	if got.Count != want.Count || got.ModelFrames != want.ModelFrames || got.FramesFiltered != want.FramesFiltered {
		t.Fatalf("pushdown result %+v, want %+v", got, want)
	}
	for i := range want.PerFrame {
		if got.PerFrame[i] != want.PerFrame[i] {
			t.Fatalf("per-frame %d: %d vs %d", i, got.PerFrame[i], want.PerFrame[i])
		}
	}
	if got.Detections != nil {
		t.Fatal("COUNT pushdown must not materialise detections")
	}

	// Non-COUNT projections must ignore the count binding.
	q2, err := Parse("SELECT detections FROM bdd USING MODEL oracle")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Prepare(q2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p2.Explain(), "count-pushdown") {
		t.Fatalf("SELECT detections plan used the count binding: %s", p2.Explain())
	}
	res2, err := p2.Execute(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Detections == nil {
		t.Fatal("SELECT detections should materialise boxes")
	}

	// A count binding alone never makes an unregistered name valid.
	e2 := NewEngine()
	e2.RegisterCountModel("ghost", countingOracle(nil))
	q3, _ := Parse("SELECT COUNT(detections) FROM bdd USING MODEL ghost")
	if _, err := e2.Prepare(q3); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("count-only binding should stay unknown, got %v", err)
	}
}

// TestCountPushdownBadBinding: a count binding returning the wrong shape
// is a typed execution error, not a panic or silent truncation.
func TestCountPushdownBadBinding(t *testing.T) {
	frames := makeFrames(28, 4)
	e := NewEngine()
	e.RegisterModel("oracle", oracleModel)
	e.RegisterCountModel("oracle", func(fs []*synth.Frame, class int, minScore float64) []int {
		return make([]int, len(fs)-1)
	})
	q, _ := Parse("SELECT COUNT(detections) FROM bdd USING MODEL oracle")
	p, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(context.Background(), frames); err == nil || !strings.Contains(err.Error(), "count model") {
		t.Fatalf("short count result should error, got %v", err)
	}
}

// TestFilterOnlyPlan: a query with no model is a pure filter scan.
func TestFilterOnlyPlan(t *testing.T) {
	frames := makeFrames(26, 8)
	e := NewEngine()
	i := -1
	e.RegisterFilter("odd", func(*synth.Frame) bool { i++; return i%2 == 1 })
	res, err := e.Run(context.Background(), "SELECT * FROM bdd USING FILTER odd", frames)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesScanned != 8 || res.FramesFiltered != 4 || res.ModelFrames != 0 || res.Count != 0 {
		t.Fatalf("filter-only result wrong: %+v", res)
	}
}
