package query

import (
	"odin/internal/nn"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// FilterNet is the lightweight class-presence DNN of §6.6: a small conv
// network (3 conv layers in the paper) that predicts whether a frame
// contains any instance of a target class, letting the engine skip the
// heavyweight detector on empty frames. ODIN-PP uses one unspecialized
// filter; ODIN-FILTER trains one per cluster.
type FilterNet struct {
	Class     int
	Threshold float64
	Net       *nn.Network

	h, w int
	opt  nn.Optimizer
	rng  *tensor.RNG
}

// NewFilterNet builds a 3-conv-layer presence filter for a class.
func NewFilterNet(class, h, w int, seed uint64) *FilterNet {
	rng := tensor.NewRNG(seed)
	c1 := nn.NewConv2D(3, h, w, 6, 3, 2, 1, rng)
	c2 := nn.NewConv2D(6, c1.OutH, c1.OutW, 8, 3, 2, 1, rng)
	c3 := nn.NewConv2D(8, c2.OutH, c2.OutW, 8, 3, 2, 1, rng)
	net := nn.NewNetwork("filter",
		c1, nn.NewLeakyReLU(0.1),
		c2, nn.NewLeakyReLU(0.1),
		c3, nn.NewLeakyReLU(0.1),
		nn.NewDense(c3.OutSize(), 1, rng),
		nn.NewSigmoid(),
	)
	return &FilterNet{
		Class:     class,
		Threshold: 0.5,
		Net:       net,
		h:         h,
		w:         w,
		opt:       nn.NewAdam(0.002),
		rng:       rng,
	}
}

// Fit trains the filter on frames labelled by ground-truth class presence.
func (f *FilterNet) Fit(frames []*synth.Frame, epochs, batch int) float64 {
	if batch <= 0 {
		batch = 16
	}
	labels := make([]float64, len(frames))
	for i, fr := range frames {
		for _, b := range fr.Boxes {
			if b.Class == f.Class {
				labels[i] = 1
				break
			}
		}
	}
	var last float64
	for e := 0; e < epochs; e++ {
		perm := f.rng.Perm(len(frames))
		var total float64
		nb := 0
		for start := 0; start < len(perm); start += batch {
			end := start + batch
			if end > len(perm) {
				end = len(perm)
			}
			idx := perm[start:end]
			x := nn.GetMatRaw(len(idx), frames[0].Image.Dim())
			y := nn.GetMat(len(idx), 1)
			for i, id := range idx {
				copy(x.Row(i), frames[id].Image.Flat())
				y.Set(i, 0, labels[id])
			}
			out := f.Net.Forward(x, true)
			loss, grad := nn.BCE(out, y)
			total += loss
			nb++
			f.Net.ZeroGrad()
			dx := f.Net.Backward(grad)
			f.opt.Step(f.Net.Params())
			nn.Recycle(x, y, out, grad, dx)
		}
		last = total / float64(nb)
	}
	return last
}

// Pass reports whether the frame likely contains the target class.
func (f *FilterNet) Pass(fr *synth.Frame) bool {
	out := f.Net.Predict(tensor.FromVec(fr.Image.Flat()))
	return out.V[0] >= f.Threshold
}

// Func adapts the filter to the engine's FilterFunc signature.
func (f *FilterNet) Func() FilterFunc { return f.Pass }

// Accuracy measures presence-classification accuracy on labelled frames.
func (f *FilterNet) Accuracy(frames []*synth.Frame) float64 {
	if len(frames) == 0 {
		return 0
	}
	correct := 0
	for _, fr := range frames {
		truth := false
		for _, b := range fr.Boxes {
			if b.Class == f.Class {
				truth = true
				break
			}
		}
		if f.Pass(fr) == truth {
			correct++
		}
	}
	return float64(correct) / float64(len(frames))
}
