package query

import (
	"context"
	"strconv"
	"strings"
	"sync"

	"odin/internal/detect"
	"odin/internal/synth"
)

// ModelFunc produces detections for one frame — bound to a static model or
// to ODIN's selector-driven pipeline.
type ModelFunc func(f *synth.Frame) []detect.Detection

// BatchModelFunc produces detections for a window of frames at once,
// aligned with the input order. Batch bindings let the engine hand the
// whole live-frame set to models that amortise work across frames (the
// sharded ODIN pipeline, the baseline's batched forward pass); when both a
// batch and a per-frame binding exist for a name, the batch one wins.
type BatchModelFunc func(frames []*synth.Frame) [][]detect.Detection

// FilterFunc is a lightweight boolean pre-screen: false drops the frame
// before the heavyweight model runs (§6.6 "lightweight filters").
type FilterFunc func(f *synth.Frame) bool

// CountModelFunc is the COUNT-pushdown binding of a model: it returns, per
// frame, the number of detections clearing minScore whose class matches
// class (class < 0 counts every class) — without materialising detection
// boxes. COUNT-only plans prefer it over the batch/per-frame bindings; its
// counts must equal filtering the full binding's output.
type CountModelFunc func(frames []*synth.Frame, class int, minScore float64) []int

// Engine prepares and executes queries over a frame source. Registration,
// preparation and execution are safe for concurrent use: the registries
// and the score floor are guarded by a read-write mutex (registrations are
// rare, queries are hot), and each prepared Plan freezes the bindings and
// threshold it was compiled with.
type Engine struct {
	mu          sync.RWMutex
	models      map[string]ModelFunc
	batchModels map[string]BatchModelFunc
	countModels map[string]CountModelFunc
	filters     map[string]FilterFunc
	minScore    float64
}

// DefaultMinScore is the engine's initial detection-confidence floor.
const DefaultMinScore = 0.3

// NewEngine returns an engine with empty registries.
func NewEngine() *Engine {
	return &Engine{
		models:      make(map[string]ModelFunc),
		batchModels: make(map[string]BatchModelFunc),
		countModels: make(map[string]CountModelFunc),
		filters:     make(map[string]FilterFunc),
		minScore:    DefaultMinScore,
	}
}

// SetMinScore sets the default detection-confidence floor new plans
// inherit. Plans already prepared keep the threshold they were compiled
// with (use the WithMinScore prepare option for a per-plan override).
func (e *Engine) SetMinScore(s float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.minScore = s
}

// MinScore returns the engine's current default score floor.
func (e *Engine) MinScore() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.minScore
}

// RegisterModel binds a model name usable in USING MODEL clauses.
func (e *Engine) RegisterModel(name string, fn ModelFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.models[name] = fn
}

// RegisterBatchModel binds a batch-capable model name usable in USING
// MODEL clauses; it takes precedence over a per-frame binding of the same
// name.
func (e *Engine) RegisterBatchModel(name string, fn BatchModelFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.batchModels[name] = fn
}

// RegisterCountModel binds a count-only fast path for an already
// registered model name: COUNT plans compiled after the registration
// execute it instead of the batch/per-frame binding, skipping detection
// materialisation. It never makes an otherwise unregistered name valid —
// a model must still have a batch or per-frame binding.
func (e *Engine) RegisterCountModel(name string, fn CountModelFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.countModels[name] = fn
}

// RegisterFilter binds a filter name usable in USING FILTER clauses.
func (e *Engine) RegisterFilter(name string, fn FilterFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.filters[name] = fn
}

// lookupFilter returns the registered filter, if any.
func (e *Engine) lookupFilter(name string) (FilterFunc, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	fn, ok := e.filters[name]
	return fn, ok
}

// lookupModel returns the registered batch, per-frame and count bindings
// of name.
func (e *Engine) lookupModel(name string) (BatchModelFunc, bool, ModelFunc, bool, CountModelFunc) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	bfn, batched := e.batchModels[name]
	fn, single := e.models[name]
	return bfn, batched, fn, single, e.countModels[name]
}

// Result is the output of executing a query.
type Result struct {
	// Count is the total detection count (COUNT queries).
	Count int
	// PerFrame is the per-input-frame count, aligned with the input order;
	// frames dropped by filters report 0.
	PerFrame []int
	// Detections holds per-frame detections for SELECT detections queries.
	Detections [][]detect.Detection

	FramesScanned  int
	FramesFiltered int // frames dropped by USING FILTER
	ModelFrames    int // frames actually processed by a model
}

// DataReduction is the fraction of frames the filter eliminated.
func (r Result) DataReduction() float64 {
	if r.FramesScanned == 0 {
		return 0
	}
	return float64(r.FramesFiltered) / float64(r.FramesScanned)
}

// Run parses, plans and executes a query string over frames — the
// one-shot convenience path. Callers issuing the same query repeatedly
// should Prepare once and Execute the Plan instead. The context cancels
// execution between per-frame model invocations (and before each batch
// invocation); a cancelled run returns ctx.Err().
func (e *Engine) Run(ctx context.Context, sql string, frames []*synth.Frame) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Execute(ctx, q, frames)
}

// Execute plans and runs a parsed query over frames.
func (e *Engine) Execute(ctx context.Context, q *Query, frames []*synth.Frame) (*Result, error) {
	p, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.Execute(ctx, frames)
}

// resolveClass accepts a class name ('car') or a numeric id.
func resolveClass(v string) int {
	if id, err := strconv.Atoi(v); err == nil {
		if id >= 0 && id < synth.NumClasses {
			return id
		}
		return -1
	}
	return synth.ClassByName(strings.ToLower(v))
}

// QueryAccuracy is the symmetric per-frame relative count accuracy used in
// the Table 6 reproduction: mean over frames of 1 − |pred−true| /
// max(pred, true, 1). (The paper does not define its query-accuracy metric
// precisely; this one is 1.0 for exact counts and degrades smoothly.)
func QueryAccuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("query: accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	for i := range pred {
		p, tr := pred[i], truth[i]
		den := p
		if tr > den {
			den = tr
		}
		if den == 0 {
			sum++
			continue
		}
		diff := p - tr
		if diff < 0 {
			diff = -diff
		}
		sum += 1 - float64(diff)/float64(den)
	}
	return sum / float64(len(pred))
}

// TrueCounts extracts the per-frame ground-truth count of a class.
func TrueCounts(frames []*synth.Frame, class int) []int {
	out := make([]int, len(frames))
	for i, f := range frames {
		for _, b := range f.Boxes {
			if b.Class == class {
				out[i]++
			}
		}
	}
	return out
}
