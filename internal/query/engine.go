package query

import (
	"fmt"
	"strconv"
	"strings"

	"odin/internal/detect"
	"odin/internal/synth"
)

// ModelFunc produces detections for one frame — bound to a static model or
// to ODIN's selector-driven pipeline.
type ModelFunc func(f *synth.Frame) []detect.Detection

// FilterFunc is a lightweight boolean pre-screen: false drops the frame
// before the heavyweight model runs (§6.6 "lightweight filters").
type FilterFunc func(f *synth.Frame) bool

// Engine executes parsed queries over a frame source.
type Engine struct {
	Models  map[string]ModelFunc
	Filters map[string]FilterFunc
	// MinScore is the detection-confidence floor for counting.
	MinScore float64
}

// NewEngine returns an engine with empty registries.
func NewEngine() *Engine {
	return &Engine{
		Models:   make(map[string]ModelFunc),
		Filters:  make(map[string]FilterFunc),
		MinScore: 0.3,
	}
}

// RegisterModel binds a model name usable in USING MODEL clauses.
func (e *Engine) RegisterModel(name string, fn ModelFunc) { e.Models[name] = fn }

// RegisterFilter binds a filter name usable in USING FILTER clauses.
func (e *Engine) RegisterFilter(name string, fn FilterFunc) { e.Filters[name] = fn }

// Result is the output of executing a query.
type Result struct {
	// Count is the total detection count (COUNT queries).
	Count int
	// PerFrame is the per-input-frame count, aligned with the input order;
	// frames dropped by filters report 0.
	PerFrame []int
	// Detections holds per-frame detections for SELECT detections queries.
	Detections [][]detect.Detection

	FramesScanned  int
	FramesFiltered int // frames dropped by USING FILTER
	ModelFrames    int // frames actually processed by a model
}

// DataReduction is the fraction of frames the filter eliminated.
func (r Result) DataReduction() float64 {
	if r.FramesScanned == 0 {
		return 0
	}
	return float64(r.FramesFiltered) / float64(r.FramesScanned)
}

// Run parses and executes a query string over frames.
func (e *Engine) Run(sql string, frames []*synth.Frame) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Execute(q, frames)
}

// Execute runs a parsed query over frames.
func (e *Engine) Execute(q *Query, frames []*synth.Frame) (*Result, error) {
	res := &Result{FramesScanned: len(frames)}
	live := make([]bool, len(frames))
	for i := range live {
		live[i] = true
	}
	if err := e.exec(q, frames, live, res); err != nil {
		return nil, err
	}
	return res, nil
}

// exec evaluates the query tree: sub-queries first (they narrow the live
// frame set via filters), then this level's filter, model, predicate and
// projection.
func (e *Engine) exec(q *Query, frames []*synth.Frame, live []bool, res *Result) error {
	if q.Sub != nil {
		if err := e.exec(q.Sub, frames, live, res); err != nil {
			return err
		}
	}

	// Filter stage.
	if q.UseFilter != "" {
		fn, ok := e.Filters[q.UseFilter]
		if !ok {
			return fmt.Errorf("query: unknown filter %q", q.UseFilter)
		}
		for i, f := range frames {
			if live[i] && !fn(f) {
				live[i] = false
				res.FramesFiltered++
			}
		}
	}

	// Model + projection stage. Only the query level that names a model
	// (or the outermost level for SELECT */detections pass-throughs)
	// produces output.
	if q.UseModel == "" {
		return nil
	}
	fn, ok := e.Models[q.UseModel]
	if !ok {
		return fmt.Errorf("query: unknown model %q", q.UseModel)
	}
	classFilter := -1
	if q.Where != nil {
		if !strings.EqualFold(q.Where.Field, "class") {
			return fmt.Errorf("query: unsupported predicate field %q", q.Where.Field)
		}
		classFilter = resolveClass(q.Where.Value)
		if classFilter < 0 {
			return fmt.Errorf("query: unknown class %q", q.Where.Value)
		}
	}

	res.PerFrame = make([]int, len(frames))
	res.Detections = make([][]detect.Detection, len(frames))
	for i, f := range frames {
		if !live[i] {
			continue
		}
		res.ModelFrames++
		dets := fn(f)
		var kept []detect.Detection
		for _, d := range dets {
			if d.Score < e.MinScore {
				continue
			}
			if classFilter >= 0 && d.Box.Class != classFilter {
				continue
			}
			kept = append(kept, d)
		}
		res.Detections[i] = kept
		res.PerFrame[i] = len(kept)
		res.Count += len(kept)
	}
	return nil
}

// resolveClass accepts a class name ('car') or a numeric id.
func resolveClass(v string) int {
	if id, err := strconv.Atoi(v); err == nil {
		if id >= 0 && id < synth.NumClasses {
			return id
		}
		return -1
	}
	return synth.ClassByName(strings.ToLower(v))
}

// QueryAccuracy is the symmetric per-frame relative count accuracy used in
// the Table 6 reproduction: mean over frames of 1 − |pred−true| /
// max(pred, true, 1). (The paper does not define its query-accuracy metric
// precisely; this one is 1.0 for exact counts and degrades smoothly.)
func QueryAccuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("query: accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	for i := range pred {
		p, tr := pred[i], truth[i]
		den := p
		if tr > den {
			den = tr
		}
		if den == 0 {
			sum++
			continue
		}
		diff := p - tr
		if diff < 0 {
			diff = -diff
		}
		sum += 1 - float64(diff)/float64(den)
	}
	return sum / float64(len(pred))
}

// TrueCounts extracts the per-frame ground-truth count of a class.
func TrueCounts(frames []*synth.Frame, class int) []int {
	out := make([]int, len(frames))
	for i, f := range frames {
		for _, b := range f.Boxes {
			if b.Class == class {
				out[i]++
			}
		}
	}
	return out
}
