package query

import (
	"fmt"
	"strings"
)

// SelectKind is what the query projects.
type SelectKind int

// Projection kinds.
const (
	SelectAll        SelectKind = iota // SELECT *
	SelectDetections                   // SELECT detections
	SelectCount                        // SELECT COUNT(detections)
)

// Pred is a WHERE class=<value> predicate. Value may be a class name
// ('car') or a numeric class id.
type Pred struct {
	Field string
	Value string
}

// Query is the parsed AST. Exactly one of Table / Sub is set as the source.
type Query struct {
	Select SelectKind
	Table  string
	Sub    *Query

	UseModel  string
	UseFilter string
	Where     *Pred
}

// String re-renders the query (useful for logs and tests).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch q.Select {
	case SelectAll:
		b.WriteString("*")
	case SelectDetections:
		b.WriteString("detections")
	case SelectCount:
		b.WriteString("COUNT(detections)")
	}
	b.WriteString(" FROM ")
	if q.Sub != nil {
		b.WriteString("(" + q.Sub.String() + ")")
	} else {
		b.WriteString(q.Table)
	}
	if q.UseFilter != "" {
		b.WriteString(" USING FILTER " + q.UseFilter)
	}
	if q.UseModel != "" {
		b.WriteString(" USING MODEL " + q.UseModel)
	}
	if q.Where != nil {
		b.WriteString(fmt.Sprintf(" WHERE %s='%s'", q.Where.Field, q.Where.Value))
	}
	return b.String()
}

// Parse parses a query string into an AST.
func Parse(input string) (*Query, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, fmt.Errorf("query: trailing input at %d: %q", p.peek().Pos, p.peek().Text)
	}
	return q, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.Kind != TokKeyword || t.Text != kw {
		return fmt.Errorf("query: expected %s at %d, got %q", kw, t.Pos, t.Text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}

	// Projection.
	switch t := p.next(); {
	case t.Kind == TokStar:
		q.Select = SelectAll
	case t.Kind == TokKeyword && t.Text == "COUNT":
		if tk := p.next(); tk.Kind != TokLParen {
			return nil, fmt.Errorf("query: expected ( after COUNT at %d", tk.Pos)
		}
		arg := p.next()
		if arg.Kind != TokIdent && arg.Kind != TokStar {
			return nil, fmt.Errorf("query: expected COUNT argument at %d", arg.Pos)
		}
		if tk := p.next(); tk.Kind != TokRParen {
			return nil, fmt.Errorf("query: expected ) at %d", tk.Pos)
		}
		q.Select = SelectCount
	case t.Kind == TokIdent && strings.EqualFold(t.Text, "detections"):
		q.Select = SelectDetections
	default:
		return nil, fmt.Errorf("query: unsupported projection %q at %d", t.Text, t.Pos)
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}

	// Source: table or sub-query.
	if p.peek().Kind == TokLParen {
		p.next()
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if tk := p.next(); tk.Kind != TokRParen {
			return nil, fmt.Errorf("query: expected ) closing sub-query at %d", tk.Pos)
		}
		q.Sub = sub
	} else {
		t := p.next()
		if t.Kind != TokIdent {
			return nil, fmt.Errorf("query: expected table name at %d, got %q", t.Pos, t.Text)
		}
		q.Table = t.Text
	}

	// Optional clauses in any order: USING MODEL/FILTER, WHERE.
	for {
		t := p.peek()
		if t.Kind != TokKeyword {
			break
		}
		switch t.Text {
		case "USING":
			p.next()
			kind := p.next()
			if kind.Kind != TokKeyword || (kind.Text != "MODEL" && kind.Text != "FILTER") {
				return nil, fmt.Errorf("query: expected MODEL or FILTER at %d", kind.Pos)
			}
			name := p.next()
			if name.Kind != TokIdent {
				return nil, fmt.Errorf("query: expected name after USING %s at %d", kind.Text, name.Pos)
			}
			if kind.Text == "MODEL" {
				q.UseModel = name.Text
			} else {
				q.UseFilter = name.Text
			}
		case "WHERE":
			p.next()
			field := p.next()
			if field.Kind != TokIdent {
				return nil, fmt.Errorf("query: expected predicate field at %d", field.Pos)
			}
			if eq := p.next(); eq.Kind != TokEquals {
				return nil, fmt.Errorf("query: expected = at %d", eq.Pos)
			}
			val := p.next()
			if val.Kind != TokString && val.Kind != TokNumber && val.Kind != TokIdent {
				return nil, fmt.Errorf("query: expected predicate value at %d", val.Pos)
			}
			q.Where = &Pred{Field: field.Text, Value: val.Text}
		default:
			return q, nil
		}
	}
	return q, nil
}
