package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the shared parallel substrate for every kernel in the
// repository. Instead of spawning goroutines and filling a fresh channel on
// every call (as the old tensor.parallelRows and nn.parallelFor both did),
// a persistent pool of workers pulls chunk ranges off an atomic cursor, so
// the steady-state cost of a parallel loop is one job allocation and a few
// channel sends.

// job is one Parallel invocation. Workers (and the submitting goroutine)
// claim half-open ranges [start, end) by advancing the atomic cursor until
// n is exhausted. The WaitGroup counts *chunks*, not queued copies: the
// submitter's Wait returns as soon as every chunk has run, no matter
// whether the queued copies were ever dequeued — so a submitter that ends
// up doing all the work itself (e.g. nested Parallel while every worker
// is busy) never blocks on the queue.
type job struct {
	fn    func(start, end int)
	n     int
	chunk int
	next  atomic.Int64
	wg    sync.WaitGroup
}

// run claims and executes chunks until the job is drained, marking one
// WaitGroup unit per completed chunk. Stale copies dequeued after the
// cursor is exhausted are no-ops.
func (j *job) run() {
	for {
		start := int(j.next.Add(int64(j.chunk))) - j.chunk
		if start >= j.n {
			return
		}
		end := start + j.chunk
		if end > j.n {
			end = j.n
		}
		j.fn(start, end)
		j.wg.Done()
	}
}

var (
	parMu      sync.Mutex
	parTarget  atomic.Int64 // workers Parallel fans out to (incl. the caller)
	parStarted int          // background worker goroutines launched so far
	jobCh      chan *job
)

func init() {
	parTarget.Store(int64(runtime.GOMAXPROCS(0)))
}

// Parallelism returns the number of workers Parallel fans out to, the
// submitting goroutine included.
func Parallelism() int { return int(parTarget.Load()) }

// SetParallelism sets the worker count used by Parallel (the submitting
// goroutine counts as one worker). n < 1 resets to GOMAXPROCS. Background
// workers are started lazily and never torn down; raising the value above
// GOMAXPROCS is mainly useful to exercise the concurrent paths in tests.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	parTarget.Store(int64(n))
}

// ensureWorkers launches background workers so at least want-1 helpers
// exist alongside the caller.
func ensureWorkers(want int) {
	parMu.Lock()
	defer parMu.Unlock()
	if jobCh == nil {
		jobCh = make(chan *job, 256)
	}
	for parStarted < want-1 {
		parStarted++
		go func() {
			for j := range jobCh {
				j.run()
			}
		}()
	}
}

// parallelMinWork is the estimated scalar-op count below which fan-out
// costs more than it saves and the loop runs inline.
const parallelMinWork = 1 << 17

// runsInline reports whether Parallel would run a loop of this size on the
// calling goroutine. Kernels consult it before constructing their range
// closure: the inline path then calls a top-level function directly, so
// sub-threshold kernel invocations (and every invocation on a single-core
// runner) allocate nothing at all.
func runsInline(n, work int) bool {
	w := int(parTarget.Load())
	if w > n {
		w = n
	}
	return w <= 1 || work < parallelMinWork
}

// Parallel runs fn over chunked subranges of [0, n). When work — an
// estimate of the total scalar operations — is large enough to amortise
// hand-off, chunks are distributed across the persistent worker pool; the
// caller participates, so the loop always makes progress even when every
// background worker is busy. fn must be safe to run concurrently on
// disjoint ranges.
func Parallel(n, work int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	w := int(parTarget.Load())
	if w > n {
		w = n
	}
	if w <= 1 || work < parallelMinWork {
		fn(0, n)
		return
	}
	dispatch(n, w, fn)
}

// ParallelWorkers is the frame-level sharding primitive of the streaming
// pipeline: it runs fn over chunked subranges of [0, n) with the fan-out
// capped at workers concurrent executors (the caller included), independent
// of the global parallelism target and with no minimum-work gate — callers
// use it when each index is a whole frame's worth of compute. Chunks are
// claimed off the same persistent worker pool Parallel uses, so the
// steady-state cost is one job allocation. fn must be safe to run
// concurrently on disjoint ranges; which indices land on which worker is
// unspecified, so determinism requires each index to write only its own
// output slot.
func ParallelWorkers(n, workers int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	dispatch(n, workers, fn)
}

// dispatch fans fn out across w executors via the persistent worker pool.
func dispatch(n, w int, fn func(start, end int)) {
	ensureWorkers(w)

	j := &job{fn: fn, n: n}
	// Oversubscribe chunks ×4 so a straggler worker cannot hold the whole
	// loop hostage; the cursor hands out the slack dynamically.
	j.chunk = (n + 4*w - 1) / (4 * w)
	if j.chunk < 1 {
		j.chunk = 1
	}
	chunks := (n + j.chunk - 1) / j.chunk
	j.wg.Add(chunks)
	for h := 0; h < w-1 && h < chunks-1; h++ {
		// Non-blocking: if the queue is full, the caller simply runs the
		// remainder itself — blocking here could deadlock with every
		// worker submitting.
		select {
		case jobCh <- j:
		default:
			h = chunks // queue full; stop offering copies
		}
	}
	j.run()
	j.wg.Wait()
}
