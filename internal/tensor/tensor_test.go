package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapesAndAccess(t *testing.T) {
	m := New(3, 4)
	if m.R != 3 || m.C != 4 || len(m.V) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2)=%v, want 7.5", got)
	}
	if got := m.Row(1)[2]; got != 7.5 {
		t.Fatalf("Row alias broken: %v", got)
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong length")
		}
	}()
	FromSlice(2, 3, []float64{1, 2})
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestAddSubScaleHadamard(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{4, 3, 2, 1})
	a.Add(b)
	want := []float64{5, 5, 5, 5}
	for i, v := range a.V {
		if v != want[i] {
			t.Fatalf("add: got %v", a.V)
		}
	}
	a.Sub(b)
	a.Scale(2)
	if a.At(1, 1) != 8 {
		t.Fatalf("scale: got %v", a.V)
	}
	a.Hadamard(b)
	if a.At(0, 0) != 8 || a.At(1, 1) != 8 {
		t.Fatalf("hadamard: got %v", a.V)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range c.V {
		if v != want[i] {
			t.Fatalf("matmul: got %v, want %v", c.V, want)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulATMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(1)
	a := New(4, 3)
	b := New(4, 5)
	rng.FillNormal(a, 1)
	rng.FillNormal(b, 1)
	got := New(3, 5)
	MatMulATInto(got, a, b)
	want := MatMul(a.Transpose(), b)
	for i := range got.V {
		if math.Abs(got.V[i]-want.V[i]) > 1e-12 {
			t.Fatalf("AT mismatch at %d: %v vs %v", i, got.V[i], want.V[i])
		}
	}
}

func TestMatMulBTMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(2)
	a := New(4, 3)
	b := New(5, 3)
	rng.FillNormal(a, 1)
	rng.FillNormal(b, 1)
	got := New(4, 5)
	MatMulBTInto(got, a, b)
	want := MatMul(a, b.Transpose())
	for i := range got.V {
		if math.Abs(got.V[i]-want.V[i]) > 1e-12 {
			t.Fatalf("BT mismatch at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := NewRNG(seed)
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		m := New(r, c)
		rng.FillNormal(m, 1)
		tt := m.Transpose().Transpose()
		if tt.R != m.R || tt.C != m.C {
			return false
		}
		for i := range m.V {
			if m.V[i] != tt.V[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSumMeanNorm(t *testing.T) {
	m := FromSlice(1, 4, []float64{1, 2, 3, 4})
	if m.Sum() != 10 {
		t.Fatalf("sum=%v", m.Sum())
	}
	if m.Mean() != 2.5 {
		t.Fatalf("mean=%v", m.Mean())
	}
	if got := m.Norm2(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("norm=%v", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("maxabs=%v", got)
	}
	empty := New(0, 0)
	if empty.Mean() != 0 || empty.MaxAbs() != 0 {
		t.Fatal("empty matrix stats should be 0")
	}
}

func TestDotAndL2(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("dot=%v", Dot(a, b))
	}
	if got := L2(a, b); math.Abs(got-math.Sqrt(27)) > 1e-12 {
		t.Fatalf("l2=%v", got)
	}
}

func TestL2PropertyNonNegativeSymmetric(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(10)
		a := rng.NormVec(n)
		b := rng.NormVec(n)
		d1 := L2(a, b)
		d2 := L2(b, a)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-12 && L2(a, a) == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeanVariance(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatalf("mean=%v", Mean(v))
	}
	if Variance(v) != 4 {
		t.Fatalf("var=%v", Variance(v))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty slice stats should be 0")
	}
}

func TestCentroid(t *testing.T) {
	vs := [][]float64{{0, 0}, {2, 4}}
	c := Centroid(vs)
	if c[0] != 1 || c[1] != 2 {
		t.Fatalf("centroid=%v", c)
	}
	if Centroid(nil) != nil {
		t.Fatal("empty centroid should be nil")
	}
}

func TestAXPY(t *testing.T) {
	dst := []float64{1, 1}
	AXPY(2, []float64{3, 4}, dst)
	if dst[0] != 7 || dst[1] != 9 {
		t.Fatalf("axpy=%v", dst)
	}
}
