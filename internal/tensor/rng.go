package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 core with
// a xoshiro-style scramble) used everywhere in the repository so that every
// experiment is reproducible independent of the Go runtime's rand package.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so nearby seeds diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// State returns the generator's internal state so it can be checkpointed.
// A generator rebuilt via SetState continues the exact sample sequence.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the internal state with a value previously captured by
// State. Unlike NewRNG it performs no warm-up draws: the next Uint64 is the
// one the captured generator would have produced.
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal sample (Box–Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormVec fills a fresh length-n vector with standard normal samples.
func (r *RNG) NormVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Norm()
	}
	return v
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes idx in place.
func (r *RNG) Shuffle(idx []int) {
	for i := len(idx) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// Split returns a new generator whose stream is decorrelated from r's,
// suitable for handing to a sub-component.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

// FillNormal fills m with sigma-scaled normal samples. The draw count per
// element is dtype-independent, so a float32 fill consumes exactly the
// stream a float64 fill of the same shape would — seeds stay aligned
// across backends.
func (r *RNG) FillNormal(m *Mat, sigma float64) {
	for i := range m.V {
		m.V[i] = r.Norm() * sigma
	}
	for i := range m.V32 {
		m.V32[i] = float32(r.Norm() * sigma)
	}
}

// FillUniform fills m with uniform samples in [lo, hi).
func (r *RNG) FillUniform(m *Mat, lo, hi float64) {
	for i := range m.V {
		m.V[i] = r.Range(lo, hi)
	}
	for i := range m.V32 {
		m.V32[i] = float32(r.Range(lo, hi))
	}
}
