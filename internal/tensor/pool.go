package tensor

import "sync"

// Pool recycles matrices across calls so steady-state training and
// inference allocate (almost) nothing: the NN stack draws every scratch
// and output matrix from a shared Pool and hands dead ones back. Buckets
// are keyed by (dtype, element count) — network shapes repeat exactly step
// to step, so an exact-size free list hits nearly always after warm-up,
// and float32 workspaces never bleed into float64 callers or vice versa.
type Pool struct {
	mu   sync.Mutex
	free map[poolKey][]*Mat
}

type poolKey struct {
	dt DType
	n  int
}

// NewPool returns an empty workspace pool.
func NewPool() *Pool { return &Pool{free: make(map[poolKey][]*Mat)} }

// GetRawOf returns an r×c matrix of dtype dt with unspecified contents.
// Use it when every element will be written before being read; use GetOf
// otherwise.
func (p *Pool) GetRawOf(dt DType, r, c int) *Mat {
	key := poolKey{dt, r * c}
	p.mu.Lock()
	if bucket := p.free[key]; len(bucket) > 0 {
		m := bucket[len(bucket)-1]
		bucket[len(bucket)-1] = nil
		p.free[key] = bucket[:len(bucket)-1]
		p.mu.Unlock()
		m.R, m.C = r, c
		return m
	}
	p.mu.Unlock()
	return NewOf(dt, r, c)
}

// GetOf returns an all-zero r×c matrix of dtype dt.
func (p *Pool) GetOf(dt DType, r, c int) *Mat {
	m := p.GetRawOf(dt, r, c)
	m.Zero()
	return m
}

// GetRaw returns a float64 r×c matrix with unspecified contents.
func (p *Pool) GetRaw(r, c int) *Mat { return p.GetRawOf(F64, r, c) }

// Get returns an all-zero float64 r×c matrix.
func (p *Pool) Get(r, c int) *Mat { return p.GetOf(F64, r, c) }

// Put hands matrices back to the pool. A matrix must not be used — or put
// again — after being put; nil and empty matrices are ignored.
func (p *Pool) Put(ms ...*Mat) {
	p.mu.Lock()
	for _, m := range ms {
		if m == nil || m.Len() == 0 {
			continue
		}
		key := poolKey{m.DType(), m.Len()}
		p.free[key] = append(p.free[key], m)
	}
	p.mu.Unlock()
}
