package tensor

import "sync"

// Pool recycles matrices across calls so steady-state training and
// inference allocate (almost) nothing: the NN stack draws every scratch
// and output matrix from a shared Pool and hands dead ones back. Buckets
// are keyed by element count — network shapes repeat exactly step to step,
// so an exact-size free list hits nearly always after warm-up.
type Pool struct {
	mu   sync.Mutex
	free map[int][]*Mat
}

// NewPool returns an empty workspace pool.
func NewPool() *Pool { return &Pool{free: make(map[int][]*Mat)} }

// GetRaw returns an r×c matrix with unspecified contents. Use it when
// every element will be written before being read; use Get otherwise.
func (p *Pool) GetRaw(r, c int) *Mat {
	n := r * c
	p.mu.Lock()
	if bucket := p.free[n]; len(bucket) > 0 {
		m := bucket[len(bucket)-1]
		bucket[len(bucket)-1] = nil
		p.free[n] = bucket[:len(bucket)-1]
		p.mu.Unlock()
		m.R, m.C = r, c
		return m
	}
	p.mu.Unlock()
	return New(r, c)
}

// Get returns an all-zero r×c matrix.
func (p *Pool) Get(r, c int) *Mat {
	m := p.GetRaw(r, c)
	m.Zero()
	return m
}

// Put hands matrices back to the pool. A matrix must not be used — or put
// again — after being put; nil and empty matrices are ignored.
func (p *Pool) Put(ms ...*Mat) {
	p.mu.Lock()
	for _, m := range ms {
		if m == nil || len(m.V) == 0 {
			continue
		}
		n := len(m.V)
		p.free[n] = append(p.free[n], m)
	}
	p.mu.Unlock()
}
