// Package tensor provides the dense float64 matrix and vector primitives
// that the neural-network substrate and the drift-detection algorithms are
// built on. It is deliberately small: row-major matrices, a handful of
// BLAS-like kernels, and deterministic random initialisation helpers.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// matmulWorkers bounds row-parallelism in the matmul kernels.
var matmulWorkers = runtime.GOMAXPROCS(0)

// parallelRows runs fn(i) for each row index, fanning out to goroutines
// when the total work is large enough to amortise scheduling.
func parallelRows(rows int, work int, fn func(i int)) {
	if work < 200_000 || rows < 4 || matmulWorkers <= 1 {
		for i := 0; i < rows; i++ {
			fn(i)
		}
		return
	}
	workers := matmulWorkers
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func(start int) {
			defer wg.Done()
			end := start + chunk
			if end > rows {
				end = rows
			}
			for i := start; i < end; i++ {
				fn(i)
			}
		}(w * chunk)
	}
	wg.Wait()
}

// Mat is a dense, row-major matrix with R rows and C columns. A Mat with
// R==1 doubles as a vector. The zero value is an empty matrix.
type Mat struct {
	R, C int
	V    []float64
}

// New returns an all-zero matrix with r rows and c columns.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", r, c))
	}
	return &Mat{R: r, C: c, V: make([]float64, r*c)}
}

// FromSlice wraps v (not copied) as an r-by-c matrix.
func FromSlice(r, c int, v []float64) *Mat {
	if len(v) != r*c {
		panic(fmt.Sprintf("tensor: slice of len %d cannot form %dx%d", len(v), r, c))
	}
	return &Mat{R: r, C: c, V: v}
}

// FromVec wraps v (not copied) as a 1-by-len(v) row vector.
func FromVec(v []float64) *Mat { return &Mat{R: 1, C: len(v), V: v} }

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.V[i*m.C+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.V[i*m.C+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) []float64 { return m.V[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := New(m.R, m.C)
	copy(out.V, m.V)
	return out
}

// CopyFrom copies src's contents into m. Shapes must match.
func (m *Mat) CopyFrom(src *Mat) {
	m.mustSameShape(src)
	copy(m.V, src.V)
}

// Zero sets every element to 0.
func (m *Mat) Zero() {
	for i := range m.V {
		m.V[i] = 0
	}
}

// Fill sets every element to v.
func (m *Mat) Fill(v float64) {
	for i := range m.V {
		m.V[i] = v
	}
}

func (m *Mat) mustSameShape(o *Mat) {
	if m.R != o.R || m.C != o.C {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", m.R, m.C, o.R, o.C))
	}
}

// Add adds o element-wise into m (m += o).
func (m *Mat) Add(o *Mat) {
	m.mustSameShape(o)
	for i, v := range o.V {
		m.V[i] += v
	}
}

// Sub subtracts o element-wise from m (m -= o).
func (m *Mat) Sub(o *Mat) {
	m.mustSameShape(o)
	for i, v := range o.V {
		m.V[i] -= v
	}
}

// Scale multiplies every element of m by s.
func (m *Mat) Scale(s float64) {
	for i := range m.V {
		m.V[i] *= s
	}
}

// AddScaled performs m += s*o.
func (m *Mat) AddScaled(s float64, o *Mat) {
	m.mustSameShape(o)
	for i, v := range o.V {
		m.V[i] += s * v
	}
}

// Hadamard multiplies m element-wise by o (m ⊙= o).
func (m *Mat) Hadamard(o *Mat) {
	m.mustSameShape(o)
	for i, v := range o.V {
		m.V[i] *= v
	}
}

// MatMul returns a new matrix holding m×o.
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, b.C)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a×b, reusing dst's storage. dst must not alias
// a or b.
func MatMulInto(dst, a, b *Mat) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic("tensor: matmul-into shape mismatch")
	}
	dst.Zero()
	parallelRows(a.R, a.R*a.C*b.C, func(i int) {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.C; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	})
}

// MatMulATInto computes dst = aᵀ×b.
func MatMulATInto(dst, a, b *Mat) {
	if a.R != b.R || dst.R != a.C || dst.C != b.C {
		panic("tensor: matmul-aT shape mismatch")
	}
	dst.Zero()
	for k := 0; k < a.R; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulBTInto computes dst = a×bᵀ.
func MatMulBTInto(dst, a, b *Mat) {
	if a.C != b.C || dst.R != a.R || dst.C != b.R {
		panic("tensor: matmul-bT shape mismatch")
	}
	parallelRows(a.R, a.R*a.C*b.R, func(i int) {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.R; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	})
}

// Transpose returns a new matrix holding mᵀ.
func (m *Mat) Transpose() *Mat {
	out := New(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Mat) Sum() float64 {
	var s float64
	for _, v := range m.V {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty matrices).
func (m *Mat) Mean() float64 {
	if len(m.V) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.V))
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Mat) MaxAbs() float64 {
	var s float64
	for _, v := range m.V {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Norm2 returns the Euclidean norm of all elements.
func (m *Mat) Norm2() float64 {
	var s float64
	for _, v := range m.V {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// L2 returns the Euclidean distance between two equal-length vectors.
func L2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: l2 length mismatch")
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AXPY performs dst += s*src on raw slices.
func AXPY(s float64, src, dst []float64) {
	if len(src) != len(dst) {
		panic("tensor: axpy length mismatch")
	}
	for i, v := range src {
		dst[i] += s * v
	}
}

// Mean returns the mean of a slice (0 when empty).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of a slice (0 when len < 1).
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Centroid returns the element-wise mean of a set of equal-length vectors.
func Centroid(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		for i, x := range v {
			out[i] += x
		}
	}
	inv := 1 / float64(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out
}
