// Package tensor provides the dense float64 matrix and vector primitives
// that the neural-network substrate and the drift-detection algorithms are
// built on. It is deliberately small: row-major matrices, a handful of
// BLAS-like kernels, and deterministic random initialisation helpers.
package tensor

import (
	"fmt"
	"math"
)

// Mat is a dense, row-major matrix with R rows and C columns. A Mat with
// R==1 doubles as a vector. The zero value is an empty matrix.
type Mat struct {
	R, C int
	V    []float64
}

// New returns an all-zero matrix with r rows and c columns.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", r, c))
	}
	return &Mat{R: r, C: c, V: make([]float64, r*c)}
}

// FromSlice wraps v (not copied) as an r-by-c matrix.
func FromSlice(r, c int, v []float64) *Mat {
	if len(v) != r*c {
		panic(fmt.Sprintf("tensor: slice of len %d cannot form %dx%d", len(v), r, c))
	}
	return &Mat{R: r, C: c, V: v}
}

// FromVec wraps v (not copied) as a 1-by-len(v) row vector.
func FromVec(v []float64) *Mat { return &Mat{R: 1, C: len(v), V: v} }

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.V[i*m.C+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.V[i*m.C+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) []float64 { return m.V[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := New(m.R, m.C)
	copy(out.V, m.V)
	return out
}

// CopyFrom copies src's contents into m. Shapes must match.
func (m *Mat) CopyFrom(src *Mat) {
	m.mustSameShape(src)
	copy(m.V, src.V)
}

// Zero sets every element to 0.
func (m *Mat) Zero() {
	for i := range m.V {
		m.V[i] = 0
	}
}

// Fill sets every element to v.
func (m *Mat) Fill(v float64) {
	for i := range m.V {
		m.V[i] = v
	}
}

func (m *Mat) mustSameShape(o *Mat) {
	if m.R != o.R || m.C != o.C {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", m.R, m.C, o.R, o.C))
	}
}

// Add adds o element-wise into m (m += o).
func (m *Mat) Add(o *Mat) {
	m.mustSameShape(o)
	for i, v := range o.V {
		m.V[i] += v
	}
}

// Sub subtracts o element-wise from m (m -= o).
func (m *Mat) Sub(o *Mat) {
	m.mustSameShape(o)
	for i, v := range o.V {
		m.V[i] -= v
	}
}

// Scale multiplies every element of m by s.
func (m *Mat) Scale(s float64) {
	for i := range m.V {
		m.V[i] *= s
	}
}

// AddScaled performs m += s*o.
func (m *Mat) AddScaled(s float64, o *Mat) {
	m.mustSameShape(o)
	for i, v := range o.V {
		m.V[i] += s * v
	}
}

// Hadamard multiplies m element-wise by o (m ⊙= o).
func (m *Mat) Hadamard(o *Mat) {
	m.mustSameShape(o)
	for i, v := range o.V {
		m.V[i] *= v
	}
}

// MatMul returns a new matrix holding m×o.
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, b.C)
	MatMulInto(out, a, b)
	return out
}

// mmKBlock is the k-panel depth of the cache-blocked kernels: the panel of
// b rows touched per pass (mmKBlock × dst.C floats) stays L2-resident while
// every dst row in the worker's range streams over it.
const mmKBlock = 256

// MatMulInto computes dst = a×b, reusing dst's storage. dst must not alias
// a or b.
func MatMulInto(dst, a, b *Mat) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic("tensor: matmul-into shape mismatch")
	}
	matmulBias(dst, a, b, nil)
}

// MatMulBiasInto computes dst = a×b + bias, with the row-vector bias
// broadcast over dst's rows and folded into the accumulation epilogue so
// the result needs no second pass. dst must not alias a or b.
func MatMulBiasInto(dst, a, b *Mat, bias []float64) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic("tensor: matmul-into shape mismatch")
	}
	if len(bias) != dst.C {
		panic("tensor: matmul bias length mismatch")
	}
	matmulBias(dst, a, b, bias)
}

// matmulBias is the shared cache-blocked, 4-way k-unrolled kernel behind
// MatMulInto and MatMulBiasInto. Each worker owns a contiguous block of dst
// rows; the k dimension is tiled so the active panel of b stays in cache,
// and four a-coefficients are applied per pass over a dst row to quarter
// the dst load/store traffic of the naive saxpy loop.
func matmulBias(dst, a, b *Mat, bias []float64) {
	kk, n := a.C, b.C
	Parallel(a.R, 2*a.R*kk*n, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			drow := dst.V[i*n : i*n+n]
			if bias == nil {
				for j := range drow {
					drow[j] = 0
				}
			} else {
				copy(drow, bias)
			}
		}
		for k0 := 0; k0 < kk; k0 += mmKBlock {
			k1 := k0 + mmKBlock
			if k1 > kk {
				k1 = kk
			}
			for i := i0; i < i1; i++ {
				arow := a.V[i*kk : i*kk+kk]
				drow := dst.V[i*n : i*n+n]
				k := k0
				for ; k+3 < k1; k += 4 {
					a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						// ReLU activations feed these kernels: whole-zero
						// groups are common enough to be worth skipping.
						continue
					}
					b0 := b.V[k*n : k*n+n]
					b1 := b.V[(k+1)*n : (k+1)*n+n]
					b2 := b.V[(k+2)*n : (k+2)*n+n]
					b3 := b.V[(k+3)*n : (k+3)*n+n]
					for j, d := range drow {
						drow[j] = d + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; k < k1; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := b.V[k*n : k*n+n]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	})
}

// MatMulATInto computes dst = aᵀ×b. dst must not alias a or b.
func MatMulATInto(dst, a, b *Mat) {
	if a.R != b.R || dst.R != a.C || dst.C != b.C {
		panic("tensor: matmul-aT shape mismatch")
	}
	kk, m, n := a.R, a.C, b.C
	Parallel(m, 2*m*kk*n, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			drow := dst.V[i*n : i*n+n]
			for j := range drow {
				drow[j] = 0
			}
		}
		for k0 := 0; k0 < kk; k0 += mmKBlock {
			k1 := k0 + mmKBlock
			if k1 > kk {
				k1 = kk
			}
			for i := i0; i < i1; i++ {
				drow := dst.V[i*n : i*n+n]
				k := k0
				for ; k+3 < k1; k += 4 {
					a0 := a.V[k*m+i]
					a1 := a.V[(k+1)*m+i]
					a2 := a.V[(k+2)*m+i]
					a3 := a.V[(k+3)*m+i]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					b0 := b.V[k*n : k*n+n]
					b1 := b.V[(k+1)*n : (k+1)*n+n]
					b2 := b.V[(k+2)*n : (k+2)*n+n]
					b3 := b.V[(k+3)*n : (k+3)*n+n]
					for j, d := range drow {
						drow[j] = d + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; k < k1; k++ {
					av := a.V[k*m+i]
					if av == 0 {
						continue
					}
					brow := b.V[k*n : k*n+n]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	})
}

// MatMulBTInto computes dst = a×bᵀ. dst must not alias a or b.
func MatMulBTInto(dst, a, b *Mat) {
	if a.C != b.C || dst.R != a.R || dst.C != b.R {
		panic("tensor: matmul-bT shape mismatch")
	}
	kk, n := a.C, b.R
	Parallel(a.R, 2*a.R*kk*n, func(i0, i1 int) {
		i := i0
		// 2×2 register tile: two a rows against two b rows share every
		// operand load across two dot products, doubling the flops per load
		// of the naive one-dot-at-a-time loop.
		for ; i+1 < i1; i += 2 {
			ar0 := a.V[i*kk : i*kk+kk]
			ar1 := a.V[(i+1)*kk : (i+1)*kk+kk]
			dr0 := dst.V[i*n : i*n+n]
			dr1 := dst.V[(i+1)*n : (i+1)*n+n]
			j := 0
			for ; j+1 < n; j += 2 {
				br0 := b.V[j*kk : j*kk+kk]
				br1 := b.V[(j+1)*kk : (j+1)*kk+kk]
				var s00, s01, s10, s11 float64
				for k, a0 := range ar0 {
					a1 := ar1[k]
					b0 := br0[k]
					b1 := br1[k]
					s00 += a0 * b0
					s01 += a0 * b1
					s10 += a1 * b0
					s11 += a1 * b1
				}
				dr0[j] = s00
				dr0[j+1] = s01
				dr1[j] = s10
				dr1[j+1] = s11
			}
			if j < n {
				brow := b.V[j*kk : j*kk+kk]
				dr0[j] = dotSeq(ar0, brow)
				dr1[j] = dotSeq(ar1, brow)
			}
		}
		if i < i1 {
			arow := a.V[i*kk : i*kk+kk]
			drow := dst.V[i*n : i*n+n]
			for j := 0; j < n; j++ {
				drow[j] = dotSeq(arow, b.V[j*kk:j*kk+kk])
			}
		}
	})
}

// dotSeq is a single-chain inner product. The edge rows and columns of the
// 2×2 tile use it so every dst element is accumulated in the same k-order
// no matter how the worker pool partitions the rows — results must be
// bit-identical across parallelism levels.
func dotSeq(a, b []float64) float64 {
	var s float64
	for k, av := range a {
		s += av * b[k]
	}
	return s
}

// Transpose returns a new matrix holding mᵀ.
func (m *Mat) Transpose() *Mat {
	out := New(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Mat) Sum() float64 {
	var s float64
	for _, v := range m.V {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty matrices).
func (m *Mat) Mean() float64 {
	if len(m.V) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.V))
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Mat) MaxAbs() float64 {
	var s float64
	for _, v := range m.V {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Norm2 returns the Euclidean norm of all elements.
func (m *Mat) Norm2() float64 {
	var s float64
	for _, v := range m.V {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// L2 returns the Euclidean distance between two equal-length vectors.
func L2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: l2 length mismatch")
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AXPY performs dst += s*src on raw slices.
func AXPY(s float64, src, dst []float64) {
	if len(src) != len(dst) {
		panic("tensor: axpy length mismatch")
	}
	for i, v := range src {
		dst[i] += s * v
	}
}

// Mean returns the mean of a slice (0 when empty).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of a slice (0 when len < 1).
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Centroid returns the element-wise mean of a set of equal-length vectors.
func Centroid(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		for i, x := range v {
			out[i] += x
		}
	}
	inv := 1 / float64(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out
}
