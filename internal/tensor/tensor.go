// Package tensor provides the dense matrix and vector primitives that the
// neural-network substrate and the drift-detection algorithms are built on.
// It is deliberately small: row-major matrices, a handful of BLAS-like
// kernels behind a per-dtype Backend seam (float64 reference kernels plus
// register-tiled float32 kernels), and deterministic random initialisation
// helpers.
package tensor

import (
	"fmt"
	"math"
)

// Mat is a dense, row-major matrix with R rows and C columns. A Mat with
// R==1 doubles as a vector. Exactly one of V (float64) or V32 (float32) is
// non-nil; DType reports which. The zero value is an empty float64 matrix.
type Mat struct {
	R, C int
	V    []float64
	V32  []float32
}

// New returns an all-zero matrix with r rows and c columns.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", r, c))
	}
	return &Mat{R: r, C: c, V: make([]float64, r*c)}
}

// FromSlice wraps v (not copied) as an r-by-c matrix.
func FromSlice(r, c int, v []float64) *Mat {
	if len(v) != r*c {
		panic(fmt.Sprintf("tensor: slice of len %d cannot form %dx%d", len(v), r, c))
	}
	return &Mat{R: r, C: c, V: v}
}

// FromVec wraps v (not copied) as a 1-by-len(v) row vector.
func FromVec(v []float64) *Mat { return &Mat{R: 1, C: len(v), V: v} }

// At returns the element at row i, column j, widened to float64.
func (m *Mat) At(i, j int) float64 { return m.at(i*m.C + j) }

// Set assigns the element at row i, column j, narrowing if m is float32.
func (m *Mat) Set(i, j int, v float64) { m.set(i*m.C+j, v) }

// Row returns row i of a float64 matrix as a slice aliasing the storage.
// See Row32 / Row64 for float32 matrices.
func (m *Mat) Row(i int) []float64 { return m.V[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy of m, preserving its dtype.
func (m *Mat) Clone() *Mat {
	out := NewOf(m.DType(), m.R, m.C)
	copy(out.V, m.V)
	copy(out.V32, m.V32)
	return out
}

// CopyFrom copies src's contents into m, converting if the dtypes differ.
// Shapes must match.
func (m *Mat) CopyFrom(src *Mat) {
	ConvertInto(m, src)
}

// Zero sets every element to 0.
func (m *Mat) Zero() {
	for i := range m.V {
		m.V[i] = 0
	}
	for i := range m.V32 {
		m.V32[i] = 0
	}
}

// Fill sets every element to v.
func (m *Mat) Fill(v float64) {
	for i := range m.V {
		m.V[i] = v
	}
	v32 := float32(v)
	for i := range m.V32 {
		m.V32[i] = v32
	}
}

func (m *Mat) mustSameShape(o *Mat) {
	if m.R != o.R || m.C != o.C {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", m.R, m.C, o.R, o.C))
	}
}

// Add adds o element-wise into m (m += o). Mixed dtypes are supported —
// the mixed-precision training path accumulates float32 gradients into
// float64 master parameters through exactly this entry point.
func (m *Mat) Add(o *Mat) {
	m.mustSameShape(o)
	switch {
	case m.V32 == nil && o.V32 == nil:
		for i, v := range o.V {
			m.V[i] += v
		}
	case m.V32 != nil && o.V32 != nil:
		addSlices(m.V32, o.V32)
	case m.V32 == nil:
		addSlices(m.V, o.V32)
	default:
		addSlices(m.V32, o.V)
	}
}

// Sub subtracts o element-wise from m (m -= o). Mixed dtypes convert
// element-wise like Add.
func (m *Mat) Sub(o *Mat) {
	m.mustSameShape(o)
	switch {
	case m.V32 == nil && o.V32 == nil:
		for i, v := range o.V {
			m.V[i] -= v
		}
	case m.V32 != nil && o.V32 != nil:
		subSlices(m.V32, o.V32)
	case m.V32 == nil:
		subSlices(m.V, o.V32)
	default:
		subSlices(m.V32, o.V)
	}
}

// Scale multiplies every element of m by s.
func (m *Mat) Scale(s float64) {
	for i := range m.V {
		m.V[i] *= s
	}
	if m.V32 != nil {
		s32 := float32(s)
		for i := range m.V32 {
			m.V32[i] *= s32
		}
	}
}

// AddScaled performs m += s*o. Mixed dtypes convert element-wise like Add;
// when m is float32 the scale itself rounds to float32 first.
func (m *Mat) AddScaled(s float64, o *Mat) {
	m.mustSameShape(o)
	switch {
	case m.V32 == nil && o.V32 == nil:
		for i, v := range o.V {
			m.V[i] += s * v
		}
	case m.V32 != nil && o.V32 != nil:
		addScaledSlices(m.V32, float32(s), o.V32)
	case m.V32 == nil:
		addScaledSlices(m.V, s, o.V32)
	default:
		addScaledSlices(m.V32, float32(s), o.V)
	}
}

// Hadamard multiplies m element-wise by o (m ⊙= o).
func (m *Mat) Hadamard(o *Mat) {
	m.mustSameShape(o)
	switch {
	case m.V32 == nil && o.V32 == nil:
		for i, v := range o.V {
			m.V[i] *= v
		}
	case m.V32 != nil && o.V32 != nil:
		mulSlices(m.V32, o.V32)
	case m.V32 == nil:
		mulSlices(m.V, o.V32)
	default:
		mulSlices(m.V32, o.V)
	}
}

// MatMul returns a new matrix holding m×o, in the operands' dtype.
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewOf(a.DType(), a.R, b.C)
	MatMulInto(out, a, b)
	return out
}

// mmKBlock is the k-panel depth of the cache-blocked kernels: the panel of
// b rows touched per pass (mmKBlock × dst.C floats) stays L2-resident while
// every dst row in the worker's range streams over it.
const mmKBlock = 256

// MatMulInto computes dst = a×b, reusing dst's storage. All operands must
// share a dtype — the matching backend's kernel runs. dst must not alias a
// or b.
func MatMulInto(dst, a, b *Mat) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic("tensor: matmul-into shape mismatch")
	}
	dt := dst.DType()
	mustSameDType(dt, a, b)
	For(dt).MatMulBias(dst, a, b, nil)
}

// MatMulBiasInto computes dst = a×b + bias, with the row-vector bias
// broadcast over dst's rows and folded into the accumulation epilogue so
// the result needs no second pass. bias must hold dst.C elements in the
// operands' dtype. dst must not alias a or b.
func MatMulBiasInto(dst, a, b, bias *Mat) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic("tensor: matmul-into shape mismatch")
	}
	if bias.Len() != dst.C {
		panic("tensor: matmul bias length mismatch")
	}
	dt := dst.DType()
	mustSameDType(dt, a, b, bias)
	For(dt).MatMulBias(dst, a, b, bias)
}

// matmulBias is the shared cache-blocked, 4-way k-unrolled kernel behind
// MatMulInto and MatMulBiasInto. Each worker owns a contiguous block of dst
// rows; the k dimension is tiled so the active panel of b stays in cache,
// and four a-coefficients are applied per pass over a dst row to quarter
// the dst load/store traffic of the naive saxpy loop.
func matmulBias(dst, a, b *Mat, bias []float64) {
	work := 2 * a.R * a.C * b.C
	if runsInline(a.R, work) {
		matmulBiasRange(dst, a, b, bias, 0, a.R)
		return
	}
	Parallel(a.R, work, func(i0, i1 int) {
		matmulBiasRange(dst, a, b, bias, i0, i1)
	})
}

// matmulBiasRange applies the kernel to dst rows [i0, i1).
func matmulBiasRange(dst, a, b *Mat, bias []float64, i0, i1 int) {
	kk, n := a.C, b.C
	{
		for i := i0; i < i1; i++ {
			drow := dst.V[i*n : i*n+n]
			if bias == nil {
				for j := range drow {
					drow[j] = 0
				}
			} else {
				copy(drow, bias)
			}
		}
		for k0 := 0; k0 < kk; k0 += mmKBlock {
			k1 := k0 + mmKBlock
			if k1 > kk {
				k1 = kk
			}
			for i := i0; i < i1; i++ {
				arow := a.V[i*kk : i*kk+kk]
				drow := dst.V[i*n : i*n+n]
				k := k0
				for ; k+3 < k1; k += 4 {
					a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						// ReLU activations feed these kernels: whole-zero
						// groups are common enough to be worth skipping.
						continue
					}
					b0 := b.V[k*n : k*n+n]
					b1 := b.V[(k+1)*n : (k+1)*n+n]
					b2 := b.V[(k+2)*n : (k+2)*n+n]
					b3 := b.V[(k+3)*n : (k+3)*n+n]
					for j, d := range drow {
						drow[j] = d + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; k < k1; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := b.V[k*n : k*n+n]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulATInto computes dst = aᵀ×b. All operands must share a dtype. dst
// must not alias a or b.
func MatMulATInto(dst, a, b *Mat) {
	if a.R != b.R || dst.R != a.C || dst.C != b.C {
		panic("tensor: matmul-aT shape mismatch")
	}
	dt := dst.DType()
	mustSameDType(dt, a, b)
	For(dt).MatMulAT(dst, a, b)
}

// matmulAT is the float64 aᵀ×b kernel: same cache blocking and k-unroll as
// matmulBias, with strided column loads from a.
func matmulAT(dst, a, b *Mat) {
	m := a.C
	work := 2 * m * a.R * b.C
	if runsInline(m, work) {
		matmulATRange(dst, a, b, 0, m)
		return
	}
	Parallel(m, work, func(i0, i1 int) {
		matmulATRange(dst, a, b, i0, i1)
	})
}

// matmulATRange applies the aᵀ×b kernel to dst rows [i0, i1).
func matmulATRange(dst, a, b *Mat, i0, i1 int) {
	kk, m, n := a.R, a.C, b.C
	{
		for i := i0; i < i1; i++ {
			drow := dst.V[i*n : i*n+n]
			for j := range drow {
				drow[j] = 0
			}
		}
		for k0 := 0; k0 < kk; k0 += mmKBlock {
			k1 := k0 + mmKBlock
			if k1 > kk {
				k1 = kk
			}
			for i := i0; i < i1; i++ {
				drow := dst.V[i*n : i*n+n]
				k := k0
				for ; k+3 < k1; k += 4 {
					a0 := a.V[k*m+i]
					a1 := a.V[(k+1)*m+i]
					a2 := a.V[(k+2)*m+i]
					a3 := a.V[(k+3)*m+i]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					b0 := b.V[k*n : k*n+n]
					b1 := b.V[(k+1)*n : (k+1)*n+n]
					b2 := b.V[(k+2)*n : (k+2)*n+n]
					b3 := b.V[(k+3)*n : (k+3)*n+n]
					for j, d := range drow {
						drow[j] = d + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; k < k1; k++ {
					av := a.V[k*m+i]
					if av == 0 {
						continue
					}
					brow := b.V[k*n : k*n+n]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulBTInto computes dst = a×bᵀ. All operands must share a dtype. dst
// must not alias a or b.
func MatMulBTInto(dst, a, b *Mat) {
	if a.C != b.C || dst.R != a.R || dst.C != b.R {
		panic("tensor: matmul-bT shape mismatch")
	}
	dt := dst.DType()
	mustSameDType(dt, a, b)
	For(dt).MatMulBT(dst, a, b)
}

// matmulBT is the float64 a×bᵀ kernel with the 2×2 register tile.
func matmulBT(dst, a, b *Mat) {
	work := 2 * a.R * a.C * b.R
	if runsInline(a.R, work) {
		matmulBTRange(dst, a, b, 0, a.R)
		return
	}
	Parallel(a.R, work, func(i0, i1 int) {
		matmulBTRange(dst, a, b, i0, i1)
	})
}

// matmulBTRange applies the a×bᵀ kernel to dst rows [i0, i1).
func matmulBTRange(dst, a, b *Mat, i0, i1 int) {
	kk, n := a.C, b.R
	{
		i := i0
		// 2×2 register tile: two a rows against two b rows share every
		// operand load across two dot products, doubling the flops per load
		// of the naive one-dot-at-a-time loop.
		for ; i+1 < i1; i += 2 {
			ar0 := a.V[i*kk : i*kk+kk]
			ar1 := a.V[(i+1)*kk : (i+1)*kk+kk]
			dr0 := dst.V[i*n : i*n+n]
			dr1 := dst.V[(i+1)*n : (i+1)*n+n]
			j := 0
			for ; j+1 < n; j += 2 {
				br0 := b.V[j*kk : j*kk+kk]
				br1 := b.V[(j+1)*kk : (j+1)*kk+kk]
				var s00, s01, s10, s11 float64
				for k, a0 := range ar0 {
					a1 := ar1[k]
					b0 := br0[k]
					b1 := br1[k]
					s00 += a0 * b0
					s01 += a0 * b1
					s10 += a1 * b0
					s11 += a1 * b1
				}
				dr0[j] = s00
				dr0[j+1] = s01
				dr1[j] = s10
				dr1[j+1] = s11
			}
			if j < n {
				brow := b.V[j*kk : j*kk+kk]
				dr0[j] = dotSeq(ar0, brow)
				dr1[j] = dotSeq(ar1, brow)
			}
		}
		if i < i1 {
			arow := a.V[i*kk : i*kk+kk]
			drow := dst.V[i*n : i*n+n]
			for j := 0; j < n; j++ {
				drow[j] = dotSeq(arow, b.V[j*kk:j*kk+kk])
			}
		}
	}
}

// dotSeq is a single-chain inner product. The edge rows and columns of the
// 2×2 tile use it so every dst element is accumulated in the same k-order
// no matter how the worker pool partitions the rows — results must be
// bit-identical across parallelism levels.
func dotSeq(a, b []float64) float64 {
	var s float64
	for k, av := range a {
		s += av * b[k]
	}
	return s
}

// Transpose returns a new matrix holding mᵀ, preserving the dtype.
func (m *Mat) Transpose() *Mat {
	out := NewOf(m.DType(), m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Sum returns the sum of all elements, accumulated in float64 regardless
// of storage dtype.
func (m *Mat) Sum() float64 {
	var s float64
	for _, v := range m.V {
		s += v
	}
	for _, v := range m.V32 {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty matrices).
func (m *Mat) Mean() float64 {
	if m.Len() == 0 {
		return 0
	}
	return m.Sum() / float64(m.Len())
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Mat) MaxAbs() float64 {
	var s float64
	for _, v := range m.V {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	for _, v := range m.V32 {
		if a := math.Abs(float64(v)); a > s {
			s = a
		}
	}
	return s
}

// Norm2 returns the Euclidean norm of all elements, accumulated in float64.
func (m *Mat) Norm2() float64 {
	var s float64
	for _, v := range m.V {
		s += v * v
	}
	for _, v := range m.V32 {
		f := float64(v)
		s += f * f
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// L2 returns the Euclidean distance between two equal-length vectors.
func L2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: l2 length mismatch")
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AXPY performs dst += s*src on raw slices.
func AXPY(s float64, src, dst []float64) {
	if len(src) != len(dst) {
		panic("tensor: axpy length mismatch")
	}
	for i, v := range src {
		dst[i] += s * v
	}
}

// Mean returns the mean of a slice (0 when empty).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of a slice (0 when len < 1).
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Centroid returns the element-wise mean of a set of equal-length vectors.
func Centroid(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		for i, x := range v {
			out[i] += x
		}
	}
	inv := 1 / float64(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out
}
