package tensor

import (
	"sync/atomic"
	"testing"
)

// forceParallel runs fn with the worker pool fanned out wide enough that
// chunks really are claimed concurrently (even on one core), restoring the
// previous setting afterwards.
func forceParallel(t *testing.T, workers int, fn func()) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(workers)
	defer SetParallelism(prev)
	fn()
}

func TestParallelCoversRangeExactlyOnce(t *testing.T) {
	forceParallel(t, 8, func() {
		const n = 10_000
		hits := make([]int64, n)
		Parallel(n, 1<<20, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt64(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("index %d visited %d times", i, h)
			}
		}
	})
}

func TestParallelSmallRunsInline(t *testing.T) {
	// Below the work threshold the loop must run on the calling goroutine
	// in order, so side effects need no synchronisation.
	var order []int
	Parallel(16, 10, func(start, end int) {
		for i := start; i < end; i++ {
			order = append(order, i)
		}
	})
	if len(order) != 16 {
		t.Fatalf("visited %d of 16", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline run out of order at %d: %v", i, v)
		}
	}
}

// TestParallelNested: a Parallel body that itself calls Parallel must
// complete even when every worker is occupied — completion is tracked by
// chunk execution, not by queue consumption, so submitters that end up
// doing all the inner work themselves never block on the queue.
func TestParallelNested(t *testing.T) {
	forceParallel(t, 4, func() {
		var total atomic.Int64
		Parallel(8, 1<<20, func(s, e int) {
			for i := s; i < e; i++ {
				Parallel(100, 1<<20, func(s2, e2 int) {
					total.Add(int64(e2 - s2))
				})
			}
		})
		if got := total.Load(); got != 800 {
			t.Fatalf("nested parallel covered %d of 800", got)
		}
	})
}

// TestParallelWorkersCoversRangeExactlyOnce: the bounded-fan-out variant
// must visit every index exactly once regardless of the requested worker
// count, including counts above GOMAXPROCS and above the global target.
func TestParallelWorkersCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 33} {
		const n = 5_000
		hits := make([]int64, n)
		ParallelWorkers(n, workers, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt64(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

// TestParallelWorkersSingleRunsInline: workers ≤ 1 must run on the calling
// goroutine in order (no pool hand-off), like Parallel under the threshold.
func TestParallelWorkersSingleRunsInline(t *testing.T) {
	var order []int
	ParallelWorkers(16, 1, func(start, end int) {
		for i := start; i < end; i++ {
			order = append(order, i)
		}
	})
	if len(order) != 16 {
		t.Fatalf("visited %d of 16", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline run out of order at %d: %v", i, v)
		}
	}
	ParallelWorkers(0, 4, func(start, end int) { t.Fatal("fn must not run for empty ranges") })
}

// TestParallelWorkersNestedKernels: a sharded frame loop whose body calls
// the kernel-level Parallel (the streaming pipeline's shape) must complete
// without deadlock and cover all inner work.
func TestParallelWorkersNestedKernels(t *testing.T) {
	var total atomic.Int64
	ParallelWorkers(8, 4, func(s, e int) {
		for i := s; i < e; i++ {
			Parallel(100, 1<<20, func(s2, e2 int) {
				total.Add(int64(e2 - s2))
			})
		}
	})
	if got := total.Load(); got != 800 {
		t.Fatalf("nested work covered %d of 800", got)
	}
}

func TestParallelZeroAndNegative(t *testing.T) {
	called := false
	Parallel(0, 1<<20, func(start, end int) { called = true })
	Parallel(-3, 1<<20, func(start, end int) { called = true })
	if called {
		t.Fatal("fn must not run for empty ranges")
	}
}

// TestMatMulParallelMatchesSerial: each dst row is computed by exactly one
// worker with a fixed k-order, so results are bit-identical no matter how
// many workers claim chunks.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(3)
	a := New(37, 61)
	b := New(61, 43)
	rng.FillNormal(a, 1)
	rng.FillNormal(b, 1)

	serialAB := New(37, 43)
	serialAT := New(61, 43)
	serialBT := New(37, 61)
	bt := New(61, 61)
	rng.FillNormal(bt, 1)
	prev := Parallelism()
	SetParallelism(1)
	MatMulInto(serialAB, a, b)
	MatMulATInto(serialAT, a, serialAB)
	MatMulBTInto(serialBT, a, bt)
	SetParallelism(prev)

	forceParallel(t, 8, func() {
		gotAB := New(37, 43)
		gotAT := New(61, 43)
		gotBT := New(37, 61)
		MatMulInto(gotAB, a, b)
		MatMulATInto(gotAT, a, gotAB)
		MatMulBTInto(gotBT, a, bt)
		for i := range gotAB.V {
			if gotAB.V[i] != serialAB.V[i] {
				t.Fatalf("MatMul differs at %d under parallelism", i)
			}
		}
		for i := range gotAT.V {
			if gotAT.V[i] != serialAT.V[i] {
				t.Fatalf("MatMulAT differs at %d under parallelism", i)
			}
		}
		for i := range gotBT.V {
			if gotBT.V[i] != serialBT.V[i] {
				t.Fatalf("MatMulBT differs at %d under parallelism", i)
			}
		}
	})
}

func TestMatMulBiasInto(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	bias := FromVec([]float64{0.5, -1})
	got := New(2, 2)
	MatMulBiasInto(got, a, b, bias)
	want := []float64{58.5, 63, 139.5, 153}
	for i, v := range got.V {
		if v != want[i] {
			t.Fatalf("matmul+bias: got %v, want %v", got.V, want)
		}
	}
}

func TestPoolRecyclesExactShapes(t *testing.T) {
	p := NewPool()
	m := p.Get(4, 5)
	for i := range m.V {
		m.V[i] = float64(i)
	}
	p.Put(m)
	// Same element count, different shape: storage is reused, contents of
	// Get are zeroed, GetRaw's are unspecified.
	r := p.Get(5, 4)
	if r.R != 5 || r.C != 4 {
		t.Fatalf("bad shape %dx%d", r.R, r.C)
	}
	if &r.V[0] != &m.V[0] {
		t.Fatal("pool did not reuse storage of the same size class")
	}
	for i, v := range r.V {
		if v != 0 {
			t.Fatalf("Get returned non-zero element %d: %v", i, v)
		}
	}
	p.Put(r)
	if raw := p.GetRaw(4, 5); &raw.V[0] != &m.V[0] {
		t.Fatal("GetRaw did not reuse storage")
	}
	// Mismatched size class allocates fresh storage.
	if other := p.Get(3, 3); &other.V[0] == &m.V[0] {
		t.Fatal("pool handed out a buffer of the wrong size")
	}
	// nil and empty puts are ignored.
	p.Put(nil, New(0, 0))
}
