// AVX2 row-update primitives for the float32 backend. Each dst element is
// accumulated in the exact left-associated order of the pure-Go fallback
// expression (VMULPS+VADDPS, never FMA), so the vector path, the scalar
// tail, and the non-amd64 fallback all produce bit-identical results.

//go:build amd64

#include "textflag.h"

// func axpy4x32(dst, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32)
// dst[j] = ((((dst[j] + a0*b0[j]) + a1*b1[j]) + a2*b2[j]) + a3*b3[j])
TEXT ·axpy4x32(SB), NOSPLIT, $0-136
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ b0_base+24(FP), R8
	MOVQ b1_base+48(FP), R9
	MOVQ b2_base+72(FP), R10
	MOVQ b3_base+96(FP), R11
	VBROADCASTSS a0+120(FP), Y0
	VBROADCASTSS a1+124(FP), Y1
	VBROADCASTSS a2+128(FP), Y2
	VBROADCASTSS a3+132(FP), Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX

loop16:
	CMPQ AX, DX
	JGE  loop8start
	VMOVUPS (DI)(AX*4), Y4
	VMOVUPS 32(DI)(AX*4), Y6
	VMOVUPS (R8)(AX*4), Y5
	VMOVUPS 32(R8)(AX*4), Y7
	VMULPS  Y0, Y5, Y5
	VMULPS  Y0, Y7, Y7
	VADDPS  Y5, Y4, Y4
	VADDPS  Y7, Y6, Y6
	VMOVUPS (R9)(AX*4), Y5
	VMOVUPS 32(R9)(AX*4), Y7
	VMULPS  Y1, Y5, Y5
	VMULPS  Y1, Y7, Y7
	VADDPS  Y5, Y4, Y4
	VADDPS  Y7, Y6, Y6
	VMOVUPS (R10)(AX*4), Y5
	VMOVUPS 32(R10)(AX*4), Y7
	VMULPS  Y2, Y5, Y5
	VMULPS  Y2, Y7, Y7
	VADDPS  Y5, Y4, Y4
	VADDPS  Y7, Y6, Y6
	VMOVUPS (R11)(AX*4), Y5
	VMOVUPS 32(R11)(AX*4), Y7
	VMULPS  Y3, Y5, Y5
	VMULPS  Y3, Y7, Y7
	VADDPS  Y5, Y4, Y4
	VADDPS  Y7, Y6, Y6
	VMOVUPS Y4, (DI)(AX*4)
	VMOVUPS Y6, 32(DI)(AX*4)
	ADDQ    $16, AX
	JMP     loop16

loop8start:
	MOVQ CX, DX
	ANDQ $-8, DX

loop8:
	CMPQ AX, DX
	JGE  tail
	VMOVUPS (DI)(AX*4), Y4
	VMOVUPS (R8)(AX*4), Y5
	VMULPS  Y0, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R9)(AX*4), Y5
	VMULPS  Y1, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R10)(AX*4), Y5
	VMULPS  Y2, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R11)(AX*4), Y5
	VMULPS  Y3, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS Y4, (DI)(AX*4)
	ADDQ    $8, AX
	JMP     loop8

tail:
	CMPQ AX, CX
	JGE  done
	VMOVSS (DI)(AX*4), X4
	VMOVSS (R8)(AX*4), X5
	VMULSS X0, X5, X5
	VADDSS X5, X4, X4
	VMOVSS (R9)(AX*4), X5
	VMULSS X1, X5, X5
	VADDSS X5, X4, X4
	VMOVSS (R10)(AX*4), X5
	VMULSS X2, X5, X5
	VADDSS X5, X4, X4
	VMOVSS (R11)(AX*4), X5
	VMULSS X3, X5, X5
	VADDSS X5, X4, X4
	VMOVSS X4, (DI)(AX*4)
	INCQ   AX
	JMP    tail

done:
	VZEROUPPER
	RET

// func axpy1x32(dst, b []float32, a float32)
// dst[j] += a * b[j]
TEXT ·axpy1x32(SB), NOSPLIT, $0-52
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ b_base+24(FP), R8
	VBROADCASTSS a+48(FP), Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

loop8:
	CMPQ AX, DX
	JGE  tail
	VMOVUPS (DI)(AX*4), Y4
	VMOVUPS (R8)(AX*4), Y5
	VMULPS  Y0, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS Y4, (DI)(AX*4)
	ADDQ    $8, AX
	JMP     loop8

tail:
	CMPQ AX, CX
	JGE  done
	VMOVSS (DI)(AX*4), X4
	VMOVSS (R8)(AX*4), X5
	VMULSS X0, X5, X5
	VADDSS X5, X4, X4
	VMOVSS X4, (DI)(AX*4)
	INCQ   AX
	JMP    tail

done:
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
