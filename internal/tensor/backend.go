package tensor

import "fmt"

// Backend is the compute seam: one kernel set per storage dtype. The
// package-level MatMul* entry points validate shapes and dtypes once, then
// dispatch on the destination's dtype, so every layer above this package is
// precision-agnostic — it computes in whatever dtype its matrices carry.
//
// Contract: within one backend, every method is bit-deterministic across
// worker counts — each output element is accumulated in a fixed k-ascending
// order independent of how Parallel partitions rows (see DESIGN.md §8).
// Across backends only approximate agreement holds (float32 rounds).
type Backend interface {
	// Name identifies the backend ("float64", "float32").
	Name() string
	// DType is the element type this backend's kernels operate on.
	DType() DType

	// MatMulBias computes dst = a×b (+ bias broadcast over rows when bias
	// is non-nil). Shapes are pre-validated by the caller.
	MatMulBias(dst, a, b, bias *Mat)
	// MatMulAT computes dst = aᵀ×b.
	MatMulAT(dst, a, b *Mat)
	// MatMulBT computes dst = a×bᵀ.
	MatMulBT(dst, a, b *Mat)

	// Axpy performs dst += s*src.
	Axpy(s float64, src, dst *Mat)
	// Dot returns the inner product of two equal-shape matrices, widened
	// to float64.
	Dot(a, b *Mat) float64
	// Sum, MaxAbs and Norm2 reduce in float64 regardless of storage dtype.
	Sum(m *Mat) float64
	MaxAbs(m *Mat) float64
	Norm2(m *Mat) float64

	// Elementwise in-place operations.
	Scale(m *Mat, s float64)
	Fill(m *Mat, v float64)
	Add(dst, o *Mat)
	Sub(dst, o *Mat)
	AddScaled(dst *Mat, s float64, o *Mat)
	Hadamard(dst, o *Mat)
}

var backendReg [numDTypes]Backend

// Register installs b as the backend serving its dtype, replacing any
// previous registration. Both built-in backends register at init.
func Register(b Backend) { backendReg[b.DType()] = b }

// For returns the backend registered for dt.
func For(dt DType) Backend {
	b := backendReg[dt]
	if b == nil {
		panic(fmt.Sprintf("tensor: no backend registered for %v", dt))
	}
	return b
}

// Backends returns every registered backend, float64 first.
func Backends() []Backend {
	out := make([]Backend, 0, numDTypes)
	for _, b := range backendReg {
		if b != nil {
			out = append(out, b)
		}
	}
	return out
}

func init() {
	Register(backend64{})
	Register(backend32{})
}

// mustSameDType panics unless every operand carries dtype dt.
func mustSameDType(dt DType, ms ...*Mat) {
	for _, m := range ms {
		if m != nil && m.DType() != dt {
			panic(fmt.Sprintf("tensor: dtype mismatch: %v operand in %v kernel", m.DType(), dt))
		}
	}
}

// backend64 is the float64 reference backend wrapping the original scalar
// kernels. It is the precision ground truth: results are unchanged from the
// pre-seam implementation bit for bit.
type backend64 struct{}

func (backend64) Name() string { return "float64" }
func (backend64) DType() DType { return F64 }

func (backend64) MatMulBias(dst, a, b, bias *Mat) {
	if bias == nil {
		matmulBias(dst, a, b, nil)
		return
	}
	matmulBias(dst, a, b, bias.V)
}
func (backend64) MatMulAT(dst, a, b *Mat) { matmulAT(dst, a, b) }
func (backend64) MatMulBT(dst, a, b *Mat) { matmulBT(dst, a, b) }

func (backend64) Axpy(s float64, src, dst *Mat) { addScaledSlices(dst.V, s, src.V) }
func (backend64) Dot(a, b *Mat) float64         { return Dot(a.V, b.V) }
func (backend64) Sum(m *Mat) float64            { return m.Sum() }
func (backend64) MaxAbs(m *Mat) float64         { return m.MaxAbs() }
func (backend64) Norm2(m *Mat) float64          { return m.Norm2() }

func (backend64) Scale(m *Mat, s float64) { m.Scale(s) }
func (backend64) Fill(m *Mat, v float64)  { m.Fill(v) }
func (backend64) Add(dst, o *Mat)         { dst.Add(o) }
func (backend64) Sub(dst, o *Mat)         { dst.Sub(o) }
func (backend64) AddScaled(dst *Mat, s float64, o *Mat) {
	dst.AddScaled(s, o)
}
func (backend64) Hadamard(dst, o *Mat) { dst.Hadamard(o) }

// backend32 serves packed float32 storage with the register-tiled kernels
// in kernels32.go. Reductions still widen to float64 so downstream drift
// statistics keep their dynamic range.
type backend32 struct{}

func (backend32) Name() string { return "float32" }
func (backend32) DType() DType { return F32 }

func (backend32) MatMulBias(dst, a, b, bias *Mat) {
	if bias == nil {
		matmulBias32(dst, a, b, nil)
		return
	}
	matmulBias32(dst, a, b, bias.V32)
}
func (backend32) MatMulAT(dst, a, b *Mat) { matmulAT32(dst, a, b) }
func (backend32) MatMulBT(dst, a, b *Mat) { matmulBT32(dst, a, b) }

func (backend32) Axpy(s float64, src, dst *Mat) {
	addScaledSlices(dst.V32, float32(s), src.V32)
}

func (backend32) Dot(a, b *Mat) float64 {
	var s float64
	for i, v := range a.V32 {
		s += float64(v) * float64(b.V32[i])
	}
	return s
}
func (backend32) Sum(m *Mat) float64    { return m.Sum() }
func (backend32) MaxAbs(m *Mat) float64 { return m.MaxAbs() }
func (backend32) Norm2(m *Mat) float64  { return m.Norm2() }

func (backend32) Scale(m *Mat, s float64) { m.Scale(s) }
func (backend32) Fill(m *Mat, v float64)  { m.Fill(v) }
func (backend32) Add(dst, o *Mat)         { dst.Add(o) }
func (backend32) Sub(dst, o *Mat)         { dst.Sub(o) }
func (backend32) AddScaled(dst *Mat, s float64, o *Mat) {
	dst.AddScaled(s, o)
}
func (backend32) Hadamard(dst, o *Mat) { dst.Hadamard(o) }
