package tensor

import (
	"fmt"
	"testing"
)

// Kernel benchmarks at the shapes the NN stack actually produces: square
// GEMMs for dense stacks, wide-and-short GEMMs for the batched im2col
// convolution path (weights OutC×(K²·InC) against a patch matrix with one
// column per output pixel of the whole batch). Every benchmark runs once
// per registered backend and reports GFLOP/s so the float32 and float64
// kernels can be compared directly from one `go test -bench` run.
func benchShapes() []struct{ m, k, n int } {
	return []struct{ m, k, n int }{
		{128, 128, 128},
		{256, 256, 256},
		{512, 512, 512},
		{1024, 1024, 1024},
		{16, 27, 16384}, // conv2d 3→16ch 32×32 batch-16 forward
		{64, 3072, 256}, // dense CIFAR batch-64 forward
	}
}

func randMat(r, c int, seed uint64) *Mat { return randMatOf(F64, r, c, seed) }

func randMatOf(dt DType, r, c int, seed uint64) *Mat {
	m := NewOf(dt, r, c)
	NewRNG(seed).FillNormal(m, 1)
	return m
}

// reportGFLOPS attaches the achieved GFLOP/s (2mn·k flops per multiply) to
// the benchmark line alongside the byte-throughput SetBytes gives us.
func reportGFLOPS(b *testing.B, m, k, n int) {
	flops := 2 * float64(m) * float64(k) * float64(n) * float64(b.N)
	b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func benchBackends(b *testing.B, run func(b *testing.B, bk Backend, m, k, n int)) {
	for _, bk := range Backends() {
		for _, s := range benchShapes() {
			b.Run(fmt.Sprintf("%s/%dx%dx%d", bk.Name(), s.m, s.k, s.n), func(b *testing.B) {
				run(b, bk, s.m, s.k, s.n)
			})
		}
	}
}

func BenchmarkMatMul(b *testing.B) {
	benchBackends(b, func(b *testing.B, bk Backend, m, k, n int) {
		a := randMatOf(bk.DType(), m, k, 1)
		bb := randMatOf(bk.DType(), k, n, 2)
		dst := NewOf(bk.DType(), m, n)
		b.SetBytes(int64(bk.DType().Size() * m * k * n))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MatMulInto(dst, a, bb)
		}
		reportGFLOPS(b, m, k, n)
	})
}

func BenchmarkMatMulAT(b *testing.B) {
	benchBackends(b, func(b *testing.B, bk Backend, m, k, n int) {
		a := randMatOf(bk.DType(), k, m, 1) // aᵀ is m×k
		bb := randMatOf(bk.DType(), k, n, 2)
		dst := NewOf(bk.DType(), m, n)
		b.SetBytes(int64(bk.DType().Size() * m * k * n))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MatMulATInto(dst, a, bb)
		}
		reportGFLOPS(b, m, k, n)
	})
}

func BenchmarkMatMulBT(b *testing.B) {
	benchBackends(b, func(b *testing.B, bk Backend, m, k, n int) {
		a := randMatOf(bk.DType(), m, k, 1)
		bb := randMatOf(bk.DType(), n, k, 2) // bᵀ is k×n
		dst := NewOf(bk.DType(), m, n)
		b.SetBytes(int64(bk.DType().Size() * m * k * n))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MatMulBTInto(dst, a, bb)
		}
		reportGFLOPS(b, m, k, n)
	})
}

// TestMatMulKernelAllocs pins the pool discipline for the float32 kernel
// paths: with operands and destination pre-allocated, the kernels must run
// alloc-free in steady state, exactly like the float64 reference. The loop
// runs inline (parallelism 1) so the assertion isolates the kernels — the
// parallel dispatch path's one job header per fan-out is accounted for
// separately and predates the backend seam.
func TestMatMulKernelAllocs(t *testing.T) {
	SetParallelism(1)
	defer SetParallelism(0)
	for _, bk := range Backends() {
		dt := bk.DType()
		a := randMatOf(dt, 64, 48, 1)
		bm := randMatOf(dt, 48, 32, 2)
		bias := randMatOf(dt, 1, 32, 5)
		at := randMatOf(dt, 48, 64, 3) // aᵀ operand for MatMulATInto
		bt := randMatOf(dt, 32, 48, 4) // bᵀ operand for MatMulBTInto
		dst := NewOf(dt, 64, 32)
		kernels := map[string]func(){
			"matmul":     func() { MatMulInto(dst, a, bm) },
			"matmulBias": func() { MatMulBiasInto(dst, a, bm, bias) },
			"matmulAT":   func() { MatMulATInto(dst, at, bm) },
			"matmulBT":   func() { MatMulBTInto(dst, a, bt) },
		}
		for name, fn := range kernels {
			fn() // warm up worker pool
			if allocs := testing.AllocsPerRun(10, fn); allocs > 0 {
				t.Errorf("%s/%s: %v allocs/op in steady state, want 0", bk.Name(), name, allocs)
			}
		}
	}
}
