package tensor

import (
	"fmt"
	"testing"
)

// Kernel benchmarks at the shapes the NN stack actually produces: square
// GEMMs for dense stacks, wide-and-short GEMMs for the batched im2col
// convolution path (weights OutC×(K²·InC) against a patch matrix with one
// column per output pixel of the whole batch).
func benchShapes() []struct{ m, k, n int } {
	return []struct{ m, k, n int }{
		{128, 128, 128},
		{256, 256, 256},
		{16, 27, 16384}, // conv2d 3→16ch 32×32 batch-16 forward
		{64, 3072, 256}, // dense CIFAR batch-64 forward
	}
}

func randMat(r, c int, seed uint64) *Mat {
	m := New(r, c)
	NewRNG(seed).FillNormal(m, 1)
	return m
}

func BenchmarkMatMul(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			a := randMat(s.m, s.k, 1)
			bb := randMat(s.k, s.n, 2)
			dst := New(s.m, s.n)
			b.SetBytes(int64(8 * s.m * s.k * s.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, bb)
			}
		})
	}
}

func BenchmarkMatMulAT(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			a := randMat(s.k, s.m, 1) // aᵀ is m×k
			bb := randMat(s.k, s.n, 2)
			dst := New(s.m, s.n)
			b.SetBytes(int64(8 * s.m * s.k * s.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulATInto(dst, a, bb)
			}
		})
	}
}

func BenchmarkMatMulBT(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			a := randMat(s.m, s.k, 1)
			bb := randMat(s.n, s.k, 2) // bᵀ is k×n
			dst := New(s.m, s.n)
			b.SetBytes(int64(8 * s.m * s.k * s.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulBTInto(dst, a, bb)
			}
		})
	}
}
