package tensor

import "fmt"

// DType identifies the element type a Mat stores and, through the backend
// registry, which kernel set operates on it. The zero value is F64, so every
// pre-existing construction path keeps its float64 semantics untouched.
type DType uint8

const (
	// F64 is the float64 reference precision; all master weights and every
	// accumulation-sensitive statistic stay in it.
	F64 DType = iota
	// F32 is the packed float32 compute precision: half the memory traffic
	// per matmul/conv, served by the width-unrolled kernels in kernels32.go.
	F32

	numDTypes = 2
)

// String names the dtype ("float64" / "float32").
func (d DType) String() string {
	switch d {
	case F64:
		return "float64"
	case F32:
		return "float32"
	}
	return fmt.Sprintf("DType(%d)", uint8(d))
}

// Size returns the element width in bytes.
func (d DType) Size() int {
	if d == F32 {
		return 4
	}
	return 8
}

// DType reports which element type m stores. A Mat holds exactly one of V
// (float64) or V32 (float32); the nil slice decides.
func (m *Mat) DType() DType {
	if m.V32 != nil {
		return F32
	}
	return F64
}

// NewOf returns an all-zero r×c matrix backed by dt storage.
func NewOf(dt DType, r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", r, c))
	}
	if dt == F32 {
		return &Mat{R: r, C: c, V32: make([]float32, r*c)}
	}
	return New(r, c)
}

// FromSlice32 wraps v (not copied) as an r-by-c float32 matrix.
func FromSlice32(r, c int, v []float32) *Mat {
	if len(v) != r*c {
		panic(fmt.Sprintf("tensor: slice of len %d cannot form %dx%d", len(v), r, c))
	}
	return &Mat{R: r, C: c, V32: v}
}

// Len returns the element count regardless of dtype.
func (m *Mat) Len() int {
	if m.V32 != nil {
		return len(m.V32)
	}
	return len(m.V)
}

// Row32 returns row i of a float32 matrix as a slice aliasing its storage.
func (m *Mat) Row32(i int) []float32 { return m.V32[i*m.C : (i+1)*m.C] }

// Row64 returns row i widened to float64. For a float64 matrix it aliases
// the storage (zero copy); for float32 it converts into buf, growing it as
// needed, so callers can reuse one scratch slice across a whole batch.
func (m *Mat) Row64(i int, buf []float64) []float64 {
	if m.V32 == nil {
		return m.Row(i)
	}
	row := m.Row32(i)
	if cap(buf) < len(row) {
		buf = make([]float64, len(row))
	}
	buf = buf[:len(row)]
	for j, v := range row {
		buf[j] = float64(v)
	}
	return buf
}

// SetRow copies a float64 row into row i, narrowing if m is float32.
func (m *Mat) SetRow(i int, src []float64) {
	if len(src) != m.C {
		panic("tensor: SetRow length mismatch")
	}
	if m.V32 == nil {
		copy(m.Row(i), src)
		return
	}
	row := m.Row32(i)
	for j, v := range src {
		row[j] = float32(v)
	}
}

// ConvertInto copies src into dst element-wise, converting between dtypes
// as needed. Shapes must match; same-dtype copies degrade to copy().
func ConvertInto(dst, src *Mat) {
	dst.mustSameShape(src)
	switch {
	case dst.V32 == nil && src.V32 == nil:
		copy(dst.V, src.V)
	case dst.V32 != nil && src.V32 != nil:
		copy(dst.V32, src.V32)
	case dst.V32 != nil:
		for i, v := range src.V {
			dst.V32[i] = float32(v)
		}
	default:
		for i, v := range src.V32 {
			dst.V[i] = float64(v)
		}
	}
}

// ToDType returns m itself when it already stores dt, or a freshly
// allocated converted copy otherwise.
func (m *Mat) ToDType(dt DType) *Mat {
	if m.DType() == dt {
		return m
	}
	out := NewOf(dt, m.R, m.C)
	ConvertInto(out, m)
	return out
}

// at/set are the dtype-agnostic element accessors behind At/Set.
func (m *Mat) at(idx int) float64 {
	if m.V32 != nil {
		return float64(m.V32[idx])
	}
	return m.V[idx]
}

func (m *Mat) set(idx int, v float64) {
	if m.V32 != nil {
		m.V32[idx] = float32(v)
		return
	}
	m.V[idx] = v
}

// number covers the two element types so shared element-wise helpers can be
// written once and instantiated per dtype combination.
type number interface{ ~float32 | ~float64 }

func addSlices[D, S number](dst []D, src []S) {
	for i, v := range src {
		dst[i] += D(v)
	}
}

func subSlices[D, S number](dst []D, src []S) {
	for i, v := range src {
		dst[i] -= D(v)
	}
}

func addScaledSlices[D, S number](dst []D, s D, src []S) {
	for i, v := range src {
		dst[i] += s * D(v)
	}
}

func mulSlices[D, S number](dst []D, src []S) {
	for i, v := range src {
		dst[i] *= D(v)
	}
}
