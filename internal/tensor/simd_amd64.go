//go:build amd64

package tensor

// The float32 backend's inner row updates dispatch to AVX2 when the CPU
// supports it. The assembly mirrors the scalar accumulation order exactly
// (see simd_amd64.s), so enabling or disabling vectorization never changes
// a single output bit — it only changes how many elements retire per cycle.

//go:noescape
func axpy4x32(dst, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32)

//go:noescape
func axpy1x32(dst, b []float32, a float32)

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// vecEnabled gates the AVX2 paths. It is a plain bool set once at init
// (and flipped only by tests, before any kernels run concurrently).
var vecEnabled = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// OS must manage YMM state (XCR0 bits 1 and 2).
	xcr0, _ := xgetbv0()
	if xcr0&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// Vectorized reports whether the float32 kernels are using the AVX2 paths.
func Vectorized() bool { return vecEnabled }

// setVectorized is a test hook: the conformance suite runs the float32
// kernels both vectorized and scalar and asserts bit-equal output.
func setVectorized(on bool) bool {
	if on && !detectAVX2() {
		return false
	}
	vecEnabled = on
	return true
}
